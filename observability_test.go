package pciesim

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
)

// faultObsConfig returns a platform configuration exercising the whole
// error path under observation: stochastic corruption on the disk link
// plus a surprise-dead window mid-transfer, with every containment
// timeout armed so the run terminates.
func faultObsConfig(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DD.StartupOverhead /= 64
	cfg.CompletionTimeout = 100 * Microsecond
	cfg.DiskCmdTimeout = 2 * Millisecond
	cfg.DiskDMATimeout = 500 * Microsecond
	r := FaultRates{TLPCorrupt: 1e-2, DLLPCorrupt: 1e-2, Drop: 5e-3}
	cfg.DiskLinkFault = &FaultPlan{Seed: 7, Up: FaultProfile{Rates: r}, Down: FaultProfile{Rates: r}}

	// Kill the link mid-stream (boot is deterministic, so probing one
	// throwaway platform places the window identically for every run).
	probe := New(cfg)
	if _, err := probe.Boot(); err != nil {
		t.Fatal(err)
	}
	cfg.DiskLinkFault.Windows = []FaultWindow{{
		At: probe.Eng.Now() + cfg.DD.StartupOverhead + 500*Microsecond,
	}}
	return cfg
}

// runFaulted runs one dd block over the faulted configuration and
// drains stragglers, leaving the engine stopped for dumping.
func runFaulted(t *testing.T, cfg Config) *System {
	t.Helper()
	s := New(cfg)
	s.Eng.SampleEvery(100 * Microsecond)
	if _, err := s.RunDD(256 << 10); err != nil {
		t.Fatal(err)
	}
	s.Eng.Run()
	return s
}

// TestStatsDumpDeterministic runs the same seeded fault scenario twice
// and requires byte-identical JSON dumps — the reproducibility contract
// the observability layer must not break.
func TestStatsDumpDeterministic(t *testing.T) {
	dump := func() []byte {
		s := runFaulted(t, faultObsConfig(t))
		var b bytes.Buffer
		if err := s.Eng.Stats().WriteJSON(&b, uint64(s.Eng.Now())); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a, b := dump(), dump()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed stats dumps differ:\nlen %d vs %d", len(a), len(b))
	}

	// The dump must be valid JSON carrying counters and histograms from
	// every layer of the platform.
	var parsed struct {
		Counters   map[string]uint64          `json:"counters"`
		Histograms map[string]json.RawMessage `json:"histograms"`
		Series     *struct {
			Ticks []uint64 `json:"ticks"`
		} `json:"series"`
	}
	if err := json.Unmarshal(a, &parsed); err != nil {
		t.Fatalf("stats dump is not valid JSON: %v", err)
	}
	for _, c := range []string{
		"pcie.disklink.up.accepted", "aer.uncorrectable", "kernel.aer.records",
		"dram.reads", "disk.chunks", "cpu0.reads",
	} {
		if _, ok := parsed.Counters[c]; !ok {
			t.Errorf("dump missing counter %q", c)
		}
	}
	for _, h := range []string{
		"pcie.disklink.up.ack_latency",  // link
		"membus.master[dram].reqq.wait", // xbar
		"iobridge.reqq.wait",            // bridge
		"dram.service_latency",          // memctrl
		"disk.chunk_latency",            // device DMA
		"iocache.fill_latency",          // cache
		"rc.completion_latency",         // RC completion tracking
		"dd.request_latency",            // workload
	} {
		if _, ok := parsed.Histograms[h]; !ok {
			t.Errorf("dump missing histogram %q", h)
		}
	}
	if parsed.Series == nil || len(parsed.Series.Ticks) == 0 {
		t.Error("dump missing sampler series despite SampleEvery")
	}
}

// TestFaultRunRecordsErrorCounters is the regression guard for the
// error-path instrumentation: a faulted run must surface nonzero replay
// and uncorrectable-AER counts through the registry.
func TestFaultRunRecordsErrorCounters(t *testing.T) {
	s := runFaulted(t, faultObsConfig(t))
	r := s.Eng.Stats()
	up, _ := r.CounterValue("pcie.disklink.up.replays")
	down, _ := r.CounterValue("pcie.disklink.down.replays")
	if up+down == 0 {
		t.Error("faulted run recorded no link replays")
	}
	unc, ok := r.CounterValue("aer.uncorrectable")
	if !ok || unc == 0 {
		t.Errorf("faulted run recorded no uncorrectable AER errors (ok=%v, n=%d)", ok, unc)
	}
	if recs, err := s.ScanAER(); err != nil || len(recs) == 0 {
		t.Errorf("AER scan after faulted run: recs=%d err=%v", len(recs), err)
	}
}

// TestDeadLinkRatesFinite guards the LinkStats rate accessors against
// division by zero: a link that never transmitted must report 0, not
// NaN, through the public alias.
func TestDeadLinkRatesFinite(t *testing.T) {
	var st LinkStats
	if r := st.ReplayRate(); r != 0 {
		t.Errorf("zero-traffic ReplayRate = %v, want 0", r)
	}
	if r := st.TimeoutRate(); r != 0 {
		t.Errorf("zero-traffic TimeoutRate = %v, want 0", r)
	}
}

// TestTracingDisabledCostsNoAllocations proves that an installed tracer
// with every category masked off adds zero allocations to the TLP path:
// the run's total allocation count must match the nil-tracer baseline
// exactly (the simulation is single-threaded and deterministic, so
// allocation counts are reproducible).
func TestTracingDisabledCostsNoAllocations(t *testing.T) {
	run := func(masked bool) uint64 {
		cfg := DefaultConfig()
		cfg.DD.StartupOverhead /= 64
		s := New(cfg)
		if masked {
			s.Eng.SetTracer(NewTracer(0))
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := s.RunDD(256 << 10); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	// Warm both paths once so one-time runtime costs don't skew the
	// comparison, then measure.
	run(false)
	run(true)
	base, masked := run(false), run(true)
	// Tolerate a sliver of runtime noise (goroutine stack growth is not
	// attributable to the tracer), but a per-TLP cost would show up as
	// thousands of extra allocations on this ~16k-packet run.
	const slack = 50
	if masked > base+slack {
		t.Errorf("masked tracer run allocated %d objects vs baseline %d", masked, base)
	}
}

package pciesim

import (
	"bytes"
	"fmt"
	"strings"

	"pciesim/internal/campaign"
	"pciesim/internal/sim"
	"pciesim/internal/topo"
	"pciesim/internal/workload"
)

// WLPoint is one arrival-process measurement of the workload figure:
// the same NIC receive traffic offered by a Poisson and a bursty
// generator at identical mean rate.
type WLPoint struct {
	// Label names the generator ("poisson", "bursty").
	Label string
	// Ops and Dropped are delivered and shed frame counts.
	Ops, Dropped int
	// MeanGapUs is the offered mean inter-arrival time.
	MeanGapUs float64
	// GoodputGbps is delivered payload over the flow span.
	GoodputGbps float64
	// Lat is the per-frame latency (completion minus scheduled
	// arrival, so queueing behind a burst counts).
	Lat LatencySummary
}

// WLMatrixRow is one contention-matrix measurement: n identical
// random-read flows pinned to the disks of a fanout topology.
type WLMatrixRow struct {
	// Flows is the concurrent flow count.
	Flows int
	// PerFlowGbps is each flow's goodput, in topology order.
	PerFlowGbps []float64
	// AggregateGbps sums them.
	AggregateGbps float64
	// Fairness is max/min per-flow goodput (1.0 = perfectly fair).
	Fairness float64
	// P99Us is each flow's p99 latency in microseconds.
	P99Us []float64
}

// WLFigure is the workload-engine figure: Poisson-vs-bursty tail
// latency at equal offered load, the flow-count contention matrix, and
// the capture/replay lockdown verdict.
type WLFigure struct {
	Title  string
	Points []WLPoint
	Matrix []WLMatrixRow
	// ReplayIdentical reports whether re-feeding the Poisson run's
	// captured trace through a fresh platform reproduced the original
	// stats dump byte-for-byte.
	ReplayIdentical bool
}

// Format renders the figure as aligned tables.
func (f WLFigure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-10s %8s %8s %10s %10s %10s %10s %10s\n",
		"arrival", "ops", "dropped", "gap(us)", "Gb/s", "p50(us)", "p99(us)", "max(us)")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%-10s %8d %8d %10.1f %10.3f %10.1f %10.1f %10.1f\n",
			p.Label, p.Ops, p.Dropped, p.MeanGapUs, p.GoodputGbps,
			usOf(p.Lat.P50), usOf(p.Lat.P99), usOf(p.Lat.Max))
	}
	fmt.Fprintf(&b, "\ncontention matrix (random-read flows on switch:x4(disk*N)):\n")
	fmt.Fprintf(&b, "%-6s %12s %10s %10s  %s\n", "flows", "aggregate", "fairness", "p99(us)", "per-flow Gb/s")
	for _, m := range f.Matrix {
		maxP99 := 0.0
		for _, v := range m.P99Us {
			if v > maxP99 {
				maxP99 = v
			}
		}
		per := make([]string, len(m.PerFlowGbps))
		for i, g := range m.PerFlowGbps {
			per[i] = fmt.Sprintf("%.3f", g)
		}
		fmt.Fprintf(&b, "%-6d %12.3f %10.3f %10.1f  %s\n",
			m.Flows, m.AggregateGbps, m.Fairness, maxP99, strings.Join(per, " "))
	}
	fmt.Fprintf(&b, "\ntrace replay byte-identical: %v\n", f.ReplayIdentical)
	return b.String()
}

// CSV renders the figure as CSV (figwl rows for the arrival points,
// figwlmatrix rows for the contention matrix).
func (f WLFigure) CSV() string {
	var b strings.Builder
	b.WriteString("figwl,arrival,ops,dropped,gap_us,gbps,p50_us,p99_us,max_us\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "figwl,%s,%d,%d,%g,%g,%g,%g,%g\n",
			p.Label, p.Ops, p.Dropped, p.MeanGapUs, p.GoodputGbps,
			usOf(p.Lat.P50), usOf(p.Lat.P99), usOf(p.Lat.Max))
	}
	b.WriteString("figwlmatrix,flows,aggregate_gbps,fairness,max_p99_us\n")
	for _, m := range f.Matrix {
		maxP99 := 0.0
		for _, v := range m.P99Us {
			if v > maxP99 {
				maxP99 = v
			}
		}
		fmt.Fprintf(&b, "figwlmatrix,%d,%g,%g,%g\n", m.Flows, m.AggregateGbps, m.Fairness, maxP99)
	}
	fmt.Fprintf(&b, "figwlreplay,identical,%v\n", f.ReplayIdentical)
	return b.String()
}

// Workload-figure parameters: both NIC generators offer the same mean
// load (one 1500-byte frame per 8us, ~1.5 Gb/s against a ~3.3 Gb/s x1
// Gen2 receive path), the bursty one as 16-frame trains at 1us
// spacing. The matrix reads one 4 KiB sector per op per flow.
const (
	wlFrames    = 300
	wlFrameLen  = 1500
	wlFrameGap  = 12 * sim.Microsecond
	wlBurstLen  = 16
	wlBurstGap  = 1 * sim.Microsecond
	wlBlockOps  = 150
	wlBlockLen  = 4096
	wlBlockGap  = 25 * sim.Microsecond
	wlMatrixMax = 4
)

// wlNICFlow is the arrival-comparison flow spec on the validation
// topology's NIC.
func wlNICFlow(arrival workload.ArrivalKind) []workload.FlowSpec {
	return []workload.FlowSpec{{
		Endpoint: "nic",
		Op:       workload.OpRx,
		Arrival:  arrival,
		Ops:      wlFrames,
		Len:      wlFrameLen,
		MeanGap:  wlFrameGap,
		BurstLen: wlBurstLen,
		BurstGap: wlBurstGap,
		Seed:     1,
	}}
}

// wlMatrixFlows pins one random-read flow to each of n disks
// (disk0..disk<n-1> of a "switch:x4(disk*n)" spec), distinct seeds.
func wlMatrixFlows(n int) []workload.FlowSpec {
	flows := make([]workload.FlowSpec, n)
	for i := range flows {
		flows[i] = workload.FlowSpec{
			Endpoint: fmt.Sprintf("disk%d", i),
			Op:       workload.OpRead,
			Arrival:  workload.ArrivalPoisson,
			Ops:      wlBlockOps,
			Len:      wlBlockLen,
			MeanGap:  wlBlockGap,
			Seed:     uint64(11 + i),
		}
	}
	return flows
}

// wlRun is one independent simulation of the workload figure.
type wlRun struct {
	label string
	spec  string // canned name or topology grammar
	trace *workload.Trace
}

// wlOutcome carries a run's per-flow results plus its full stats dump,
// which the replay check compares byte-for-byte.
type wlOutcome struct {
	res  workload.Result
	dump []byte
}

// wlExecute builds a fresh platform for the spec and executes the
// trace on it. Every caller — campaign worker or replay check — goes
// through here, so a run is a function of (spec, trace) alone.
func wlExecute(spec string, tr *workload.Trace) (wlOutcome, error) {
	ts := topo.Canned(spec)
	if ts == nil {
		var err error
		ts, err = topo.Parse(spec)
		if err != nil {
			return wlOutcome{}, err
		}
	}
	cfg := topo.DefaultConfig()
	cfg.EnableMSI = true // exercise the e1000e MSI interrupt path
	sys, err := topo.Build(ts, cfg)
	if err != nil {
		return wlOutcome{}, err
	}
	res, err := workload.Run(sys, tr, workload.RunConfig{})
	if err != nil {
		return wlOutcome{}, err
	}
	sys.Eng.Run() // drain stragglers so the dump is a fixed point
	var buf bytes.Buffer
	if err := sys.Eng.Stats().WriteJSON(&buf, uint64(sys.Eng.Now())); err != nil {
		return wlOutcome{}, err
	}
	return wlOutcome{res: res, dump: buf.Bytes()}, nil
}

// RunFigWL runs the workload-engine figure: Poisson vs bursty ON/OFF
// NIC receive traffic at equal offered load on the validation
// topology, a 1/2/4-flow random-read contention matrix on fanout
// topologies, and a capture/replay byte-identity check on the Poisson
// run. Options.Jobs fans the independent runs; Scale does not apply
// (the op counts are fixed).
func RunFigWL(opt Options) (WLFigure, error) {
	opt = opt.normalize()

	poisson, err := workload.Synthesize(wlNICFlow(workload.ArrivalPoisson))
	if err != nil {
		return WLFigure{}, err
	}
	bursty, err := workload.Synthesize(wlNICFlow(workload.ArrivalBursty))
	if err != nil {
		return WLFigure{}, err
	}
	runs := []wlRun{
		{label: "poisson", spec: "validation", trace: poisson},
		{label: "bursty", spec: "validation", trace: bursty},
	}
	for n := 1; n <= wlMatrixMax; n *= 2 {
		tr, err := workload.Synthesize(wlMatrixFlows(n))
		if err != nil {
			return WLFigure{}, err
		}
		runs = append(runs, wlRun{
			label: fmt.Sprintf("matrix%d", n),
			spec:  fmt.Sprintf("switch:x4(disk*%d)", n),
			trace: tr,
		})
	}

	outcomes := make([]wlOutcome, len(runs))
	err = campaign.RunCollect(opt.jobs(), len(runs),
		func(i int) (wlOutcome, error) {
			o, err := wlExecute(runs[i].spec, runs[i].trace)
			if err != nil {
				return wlOutcome{}, fmt.Errorf("%s: %w", runs[i].label, err)
			}
			return o, nil
		},
		func(i int, o wlOutcome) error {
			outcomes[i] = o
			return nil
		})
	if err != nil {
		return WLFigure{}, err
	}

	fig := WLFigure{Title: "Workload engines — Poisson vs bursty at equal offered load"}
	for i := 0; i < 2; i++ {
		f := outcomes[i].res.Flows[0]
		fig.Points = append(fig.Points, WLPoint{
			Label:       runs[i].label,
			Ops:         f.Ops,
			Dropped:     f.Dropped,
			MeanGapUs:   usOf(wlFrameGap),
			GoodputGbps: f.GoodputGbps(),
			Lat:         f.Lat,
		})
	}
	for i := 2; i < len(runs); i++ {
		res := outcomes[i].res
		row := WLMatrixRow{Flows: len(res.Flows), Fairness: res.FairnessSpread()}
		for _, f := range res.Flows {
			row.PerFlowGbps = append(row.PerFlowGbps, f.GoodputGbps())
			row.AggregateGbps += f.GoodputGbps()
			row.P99Us = append(row.P99Us, usOf(f.Lat.P99))
		}
		fig.Matrix = append(fig.Matrix, row)
	}

	// Capture/replay lockdown: encode the Poisson trace, parse it back
	// (the round trip a -wl-capture file takes), run it on a fresh
	// platform, and demand the identical stats dump.
	replayed, err := workload.ParseString(poisson.EncodeString())
	if err != nil {
		return WLFigure{}, fmt.Errorf("replay parse: %w", err)
	}
	replay, err := wlExecute(runs[0].spec, replayed)
	if err != nil {
		return WLFigure{}, fmt.Errorf("replay run: %w", err)
	}
	fig.ReplayIdentical = bytes.Equal(replay.dump, outcomes[0].dump)
	return fig, nil
}

module pciesim

go 1.22

package pciesim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pciesim/internal/workload"
)

// goldenWLCases pin the workload engines' observable behavior the same
// way goldenCases pin dd's: each materializes a synthetic schedule,
// executes it on a fresh topology platform, and compares the complete
// stats dump byte-for-byte against testdata/golden/wl-*.json. Any
// drift in the generators (a different gap drawn, a different address)
// or in the executor (an op issued a tick late) shows up as a diff.
var goldenWLCases = []struct {
	name  string
	spec  string
	flows []workload.FlowSpec
}{
	{"wl-poisson-rx", "validation", wlNICFlow(workload.ArrivalPoisson)},
	{"wl-bursty-rx", "validation", wlNICFlow(workload.ArrivalBursty)},
	{"wl-matrix2", "switch:x4(disk*2)", wlMatrixFlows(2)},
}

// TestGoldenWLDumps: same binary, same flow specs, same seeds must
// reproduce the workload stats dump to the byte. Regenerate with
// `go test -run TestGoldenWLDumps -update` after an intentional
// behavior change, and review the diff like code.
func TestGoldenWLDumps(t *testing.T) {
	for _, tc := range goldenWLCases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := workload.Synthesize(tc.flows)
			if err != nil {
				t.Fatal(err)
			}
			out, err := wlExecute(tc.spec, tr)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, out.dump, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(out.dump, want) {
				t.Fatalf("stats dump differs from %s (-update after intentional changes);\n got %d bytes, want %d\n%s",
					path, len(out.dump), len(want), firstDiff(out.dump, want))
			}
		})
	}
}

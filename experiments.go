package pciesim

import (
	"fmt"
	"sort"
	"strings"

	"pciesim/internal/campaign"
	"pciesim/internal/fault"
	"pciesim/internal/pcie"
	"pciesim/internal/sim"
)

// Options scales the evaluation workloads. The paper transfers single
// dd blocks of 64-512 MiB; Scale divides both the block sizes and dd's
// fixed startup overhead by the same factor, which leaves the reported
// throughput curve mathematically unchanged (throughput depends only on
// their ratio plus per-sector terms) while cutting simulation time.
type Options struct {
	// Scale divides the paper's block sizes; 1 reproduces them at full
	// size. DefaultOptions uses 16 (4-32 MiB blocks).
	Scale int
	// BlockMB overrides the block-size sweep (pre-scaling); defaults to
	// the paper's {64, 128, 256, 512}.
	BlockMB []int
	// Jobs is the worker count for fanning independent runs across
	// CPUs. 1 (and 0) runs serially; -1 uses one worker per CPU. Each
	// run still owns a single-threaded engine, so results are
	// byte-identical at any job count.
	Jobs int
	// Observe, when set, is called with each freshly built platform's
	// root engine before its workload runs — the hook for installing
	// tracers and samplers. It serves both the hardwired platform and
	// the generic topology builder's scenario runs, which is why it
	// receives the engine rather than a platform type. The label
	// identifies the run ("x8@512MB", "dead"). With Jobs > 1 it is
	// called concurrently from worker goroutines: it must only touch
	// the engine it is handed. A non-nil error aborts the sweep.
	Observe func(eng *sim.Engine, label string) error
	// ObserveDone, when set, is called after the run's workload (and any
	// straggler drain) completes, before the platform is discarded. It
	// is always called serially, in sweep submission order, whatever
	// Jobs is — the safe place for printing and file output.
	ObserveDone func(eng *sim.Engine, label string) error
	// Par requests the conservative parallel engine with this many
	// timing domains per simulation (the -par flag). 0 and 1 keep the
	// serial engine. Unlike Jobs — which fans independent runs across
	// CPUs — Par parallelizes within one simulation; results stay
	// byte-identical to serial at any value.
	Par int
}

// DefaultOptions returns the 16x-scaled workload.
func DefaultOptions() Options { return Options{Scale: 16} }

func (o Options) normalize() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if len(o.BlockMB) == 0 {
		o.BlockMB = []int{64, 128, 256, 512}
	}
	return o
}

// jobs maps the Options knob onto the campaign runner's convention:
// 0 (unset) means serial, negative means one worker per CPU.
func (o Options) jobs() int {
	if o.Jobs == 0 {
		return 1
	}
	return o.Jobs
}

func (o Options) scaledConfig(base Config) Config {
	base.DD.StartupOverhead /= sim.Tick(o.Scale)
	base.Domains = o.Par
	return base
}

func (o Options) blockBytes(mb int) uint64 { return uint64(mb) << 20 / uint64(o.Scale) }

// Point is one measurement in a figure series.
type Point struct {
	// X is the block size in (unscaled) MiB.
	X int
	// Gbps is the dd-reported throughput.
	Gbps float64
	// ReplayPct and TimeoutPct are the protocol-health metrics on the
	// congested upstream link (0 where not applicable).
	ReplayPct  float64
	TimeoutPct float64
	// ReqLat summarizes the dd per-request latency distribution.
	ReqLat LatencySummary
}

// Series is one configuration's sweep across block sizes.
type Series struct {
	Label  string
	Points []Point
}

// Figure is the result of regenerating one figure.
type Figure struct {
	ID     string
	Title  string
	Series []Series
}

// sweepSpec names one configuration of a figure's sweep.
type sweepSpec struct {
	label string
	cfg   Config
}

// runSweeps evaluates every (configuration, block size) pair of a
// figure as one flat campaign, so Jobs > 1 overlaps runs across series
// as well as within them — a figure of S series and B block sizes is
// S×B independent single-threaded simulations. Results come back in
// the exact order the serial loops produced them.
func runSweeps(specs []sweepSpec, opt Options) ([]Series, error) {
	nb := len(opt.BlockMB)
	out := make([]Series, len(specs))
	for i, sp := range specs {
		out[i] = Series{Label: sp.label, Points: make([]Point, nb)}
	}
	type outcome struct {
		p     Point
		sys   *System
		label string
	}
	err := campaign.RunCollect(opt.jobs(), len(specs)*nb,
		func(k int) (outcome, error) {
			si, bi := k/nb, k%nb
			mb := opt.BlockMB[bi]
			sys := New(specs[si].cfg)
			runLabel := fmt.Sprintf("%s@%dMB", specs[si].label, mb)
			if opt.Observe != nil {
				if err := opt.Observe(sys.Eng, runLabel); err != nil {
					return outcome{}, err
				}
			}
			res, err := sys.RunDD(opt.blockBytes(mb))
			if err != nil {
				return outcome{}, fmt.Errorf("%s @%dMB: %w", specs[si].label, mb, err)
			}
			// Congestion metrics: take the worst upstream direction
			// across the two links on the disk's DMA path.
			disk := sys.DiskLink.Down().Stats()
			up := sys.Uplink.Down().Stats()
			replay := disk.ReplayRate()
			if r := up.ReplayRate(); r > replay {
				replay = r
			}
			timeout := disk.TimeoutRate()
			if r := up.TimeoutRate(); r > timeout {
				timeout = r
			}
			return outcome{
				p: Point{
					X:          mb,
					Gbps:       res.ThroughputGbps(),
					ReplayPct:  replay * 100,
					TimeoutPct: timeout * 100,
					ReqLat:     res.ReqLat,
				},
				sys:   sys,
				label: runLabel,
			}, nil
		},
		func(k int, o outcome) error {
			if opt.ObserveDone != nil {
				if err := opt.ObserveDone(o.sys.Eng, o.label); err != nil {
					return err
				}
			}
			out[k/nb].Points[k%nb] = o.p
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunFig9a regenerates Fig 9(a): dd throughput on the physical
// reference versus the simulated platform with switch latencies of 50,
// 100 and 150 ns.
func RunFig9a(opt Options) (Figure, error) {
	opt = opt.normalize()
	fig := Figure{ID: "fig9a", Title: "dd throughput: phys vs simulated, switch latency sweep"}

	physCfg := DefaultPhysConfig()
	physCfg.StartupOverhead /= sim.Tick(opt.Scale)
	physSeries := Series{Label: "phys"}
	for _, mb := range opt.BlockMB {
		physSeries.Points = append(physSeries.Points, Point{
			X:    mb,
			Gbps: physCfg.DDThroughputGbps(opt.blockBytes(mb)),
		})
	}
	fig.Series = append(fig.Series, physSeries)

	var specs []sweepSpec
	for _, lat := range []sim.Tick{50, 100, 150} {
		cfg := opt.scaledConfig(DefaultConfig())
		cfg.SwitchLatency = lat * sim.Nanosecond
		specs = append(specs, sweepSpec{fmt.Sprintf("L%dns", lat), cfg})
	}
	series, err := runSweeps(specs, opt)
	if err != nil {
		return Figure{}, err
	}
	fig.Series = append(fig.Series, series...)
	return fig, nil
}

// RunFig9b regenerates Fig 9(b): every link in the fabric swept across
// widths x1/x2/x4/x8.
func RunFig9b(opt Options) (Figure, error) {
	opt = opt.normalize()
	fig := Figure{ID: "fig9b", Title: "dd throughput vs PCI-Express link width"}
	var specs []sweepSpec
	for _, w := range []int{1, 2, 4, 8} {
		cfg := opt.scaledConfig(DefaultConfig())
		cfg.UplinkWidth = w
		cfg.DiskLinkWidth = w
		specs = append(specs, sweepSpec{fmt.Sprintf("x%d", w), cfg})
	}
	series, err := runSweeps(specs, opt)
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}

// RunFig9c regenerates Fig 9(c): x8 links with replay buffer sizes 1-4.
func RunFig9c(opt Options) (Figure, error) {
	opt = opt.normalize()
	fig := Figure{ID: "fig9c", Title: "x8 dd throughput vs replay buffer size"}
	var specs []sweepSpec
	for _, rb := range []int{1, 2, 3, 4} {
		cfg := opt.scaledConfig(DefaultConfig())
		cfg.UplinkWidth = 8
		cfg.DiskLinkWidth = 8
		cfg.ReplayBufferSize = rb
		specs = append(specs, sweepSpec{fmt.Sprintf("rb%d", rb), cfg})
	}
	series, err := runSweeps(specs, opt)
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}

// RunFig9d regenerates Fig 9(d): x8 links with switch/root port buffer
// sizes 16-28.
func RunFig9d(opt Options) (Figure, error) {
	opt = opt.normalize()
	fig := Figure{ID: "fig9d", Title: "x8 dd throughput vs switch/root port buffer size"}
	var specs []sweepSpec
	for _, pb := range []int{16, 20, 24, 28} {
		cfg := opt.scaledConfig(DefaultConfig())
		cfg.UplinkWidth = 8
		cfg.DiskLinkWidth = 8
		cfg.PortBufferSize = pb
		specs = append(specs, sweepSpec{fmt.Sprintf("pb%d", pb), cfg})
	}
	series, err := runSweeps(specs, opt)
	if err != nil {
		return Figure{}, err
	}
	fig.Series = series
	return fig, nil
}

// TableIIRow pairs a root complex latency with the measured MMIO read
// latency.
type TableIIRow struct {
	RCLatencyNs   int
	MMIOLatencyNs float64
}

// RunTableII regenerates Table II: the 4-byte NIC register read latency
// as the root complex latency sweeps 50-150 ns. The five probe runs are
// independent platforms and fan across jobs workers (1 or 0 is serial).
func RunTableII(jobs int) ([]TableIIRow, error) {
	lats := []int{50, 75, 100, 125, 150}
	if jobs == 0 {
		jobs = 1
	}
	return campaign.Run(jobs, len(lats), func(i int) (TableIIRow, error) {
		lat := lats[i]
		cfg := DefaultConfig()
		cfg.RootComplexLatency = sim.Tick(lat) * sim.Nanosecond
		sys := New(cfg)
		res, err := sys.MMIOProbe(64)
		if err != nil {
			return TableIIRow{}, err
		}
		return TableIIRow{RCLatencyNs: lat, MMIOLatencyNs: res.Avg().Nanoseconds()}, nil
	})
}

// TableIRow describes one overhead entry of Table I.
type TableIRow struct {
	Overhead   string
	Type       string
	PacketType string
}

// TableI returns the protocol overhead model (Table I), read back from
// the live configuration rather than restated.
func TableI() []TableIRow {
	o := pcie.DefaultOverheads()
	n2, d2 := Gen2.EncodingOverhead()
	n3, d3 := Gen3.EncodingOverhead()
	return []TableIRow{
		{fmt.Sprintf("%dB", o.TLPHeader), "TLP header", "TLP"},
		{fmt.Sprintf("%dB", o.SeqNum), "sequence number appended by data link layer", "TLP"},
		{fmt.Sprintf("%dB", o.LCRC), "Link CRC appended by data link layer", "TLP"},
		{fmt.Sprintf("%dB", o.Framing), "Framing symbols appended by Physical Layer", "TLP and DLLP"},
		{fmt.Sprintf("%d/%d-%d/%d", d2, n2, d3, n3), "Overhead caused by 8b/10b or 128b/130b encoding", "TLP and DLLP"},
	}
}

// ErrPoint is one error-injection scenario's measurement: a dd run on
// the disk path with a FaultPlan armed on the disk link.
type ErrPoint struct {
	Scenario string
	Gbps     float64
	Requests int
	// Errored counts dd requests answered by error completions
	// (completion timeout / device error) instead of data.
	Errored    int
	ReplayPct  float64
	TimeoutPct float64
	BadDLLPs   uint64
	Dropped    uint64
	Retrains   uint64
	// CompletionTimeouts counts error completions the root complex
	// synthesized for requests stranded on the dead fabric.
	CompletionTimeouts uint64
	LinkDead           bool
	// ReqLat summarizes the dd per-request latency distribution; under
	// faults the tail shows the replay/timeout cost directly.
	ReqLat LatencySummary
}

// ErrFigure is the error-containment sweep (`ddbench -fig err`).
type ErrFigure struct {
	Title  string
	Points []ErrPoint
}

// RunFigErr sweeps dd over increasingly hostile disk links: stochastic
// TLP/DLLP corruption and wire drops at several per-packet rates, a
// transient surprise-down window that retrains, and a permanently dead
// link that the completion-timeout machinery must contain. Every plan
// is seeded, so the sweep replays bit-identically.
func RunFigErr(opt Options) (ErrFigure, error) {
	opt = opt.normalize()
	bytes := opt.blockBytes(opt.BlockMB[0])
	base := opt.scaledConfig(DefaultConfig())
	// Arm the containment mechanisms an error-exploration run needs:
	// without them a dead link is a simulator hang, not a data point.
	base.CompletionTimeout = 100 * sim.Microsecond
	base.DiskCmdTimeout = 2 * sim.Millisecond
	base.DiskDMATimeout = 500 * sim.Microsecond

	// Place link-down windows mid-transfer: boot a throwaway platform
	// to find where dd's request stream starts (boot is deterministic).
	probe := New(base)
	if _, err := probe.Boot(); err != nil {
		return ErrFigure{}, err
	}
	streamStart := probe.Eng.Now() + base.DD.StartupOverhead
	midStream := streamStart + 2*sim.Millisecond

	stochastic := func(rate float64) *fault.Plan {
		r := fault.Rates{TLPCorrupt: rate, DLLPCorrupt: rate, Drop: rate / 2}
		return &fault.Plan{Seed: 42, Up: fault.Profile{Rates: r}, Down: fault.Profile{Rates: r}}
	}
	scenarios := []struct {
		label string
		plan  *fault.Plan
	}{
		{"clean", nil},
		{"p=1e-4", stochastic(1e-4)},
		{"p=1e-3", stochastic(1e-3)},
		{"p=1e-2", stochastic(1e-2)},
		{"p=5e-2", stochastic(5e-2)},
		{"down50us", &fault.Plan{
			Windows:        []fault.Window{{At: midStream, Duration: 50 * sim.Microsecond}},
			RetrainLatency: 20 * sim.Microsecond,
		}},
		{"dead", &fault.Plan{
			Windows: []fault.Window{{At: midStream, Duration: 0}},
		}},
	}

	fig := ErrFigure{Title: "dd under disk-link fault injection"}
	fig.Points = make([]ErrPoint, len(scenarios))
	type outcome struct {
		p   ErrPoint
		sys *System
	}
	err := campaign.RunCollect(opt.jobs(), len(scenarios),
		func(k int) (outcome, error) {
			sc := scenarios[k]
			cfg := base
			cfg.DiskLinkFault = sc.plan
			sys := New(cfg)
			if opt.Observe != nil {
				if err := opt.Observe(sys.Eng, sc.label); err != nil {
					return outcome{}, err
				}
			}
			res, err := sys.RunDD(bytes)
			if err != nil {
				return outcome{}, fmt.Errorf("figerr %s: %w", sc.label, err)
			}
			sys.Eng.Run() // drain stragglers a dead link strands
			return outcome{p: errPoint(sc.label, sys, res), sys: sys}, nil
		},
		func(k int, o outcome) error {
			if opt.ObserveDone != nil {
				if err := opt.ObserveDone(o.sys.Eng, scenarios[k].label); err != nil {
					return err
				}
			}
			fig.Points[k] = o.p
			return nil
		})
	if err != nil {
		return ErrFigure{}, err
	}
	return fig, nil
}

// errPoint gathers one fault scenario's measurement from a finished
// platform.
func errPoint(label string, sys *System, res DDResult) ErrPoint {
	up, down := sys.DiskLink.Up().Stats(), sys.DiskLink.Down().Stats()
	replay := down.ReplayRate()
	if r := up.ReplayRate(); r > replay {
		replay = r
	}
	timeout := down.TimeoutRate()
	if r := up.TimeoutRate(); r > timeout {
		timeout = r
	}
	ctos, _ := sys.RC.CompletionTimeouts()
	return ErrPoint{
		Scenario:           label,
		Gbps:               res.ThroughputGbps(),
		Requests:           res.Requests,
		Errored:            res.Errors,
		ReplayPct:          replay * 100,
		TimeoutPct:         timeout * 100,
		BadDLLPs:           up.BadDLLPs + down.BadDLLPs,
		Dropped:            up.Dropped + down.Dropped,
		Retrains:           sys.DiskLink.Retrains(),
		CompletionTimeouts: ctos,
		LinkDead:           sys.DiskLink.Dead(),
		ReqLat:             res.ReqLat,
	}
}

// figFCPropDelay is the per-direction propagation delay of the credit
// sweep's links: a long (cabled/retimed) fabric whose bandwidth-delay
// product takes several completions in flight to fill.
const figFCPropDelay = 500 * Nanosecond

// FCPoint is one credit configuration's measurement: a dd run on the
// disk path with the completion header-credit pool capped at Credits
// (0 = infinite, the legacy refusal-only link).
type FCPoint struct {
	// Credits is the per-link completion header-credit pool ("inf"
	// renders the legacy infinite pool).
	Credits int
	Gbps    float64
	// CplStalls counts completion TLPs refused admission for lack of
	// credits, summed over the two interfaces that carry DMA
	// completions toward the disk.
	CplStalls uint64
	// UpdateFCs counts credit-return DLLPs across the disk DMA path.
	UpdateFCs uint64
	// ReqLat summarizes the dd per-request latency distribution; credit
	// starvation stretches the tail before throughput collapses.
	ReqLat LatencySummary
}

// CreditsLabel renders the credit count for tables.
func (p FCPoint) CreditsLabel() string {
	if p.Credits == 0 {
		return "inf"
	}
	return fmt.Sprintf("%d", p.Credits)
}

// FCFigure is the flow-control credit sweep (`ddbench -fig fc`).
type FCFigure struct {
	Title   string
	BlockMB int
	Points  []FCPoint
}

// RunFigFC sweeps a dd write against a shrinking completion
// header-credit pool on every link, reproducing the Fig 9(d)-style knee
// with credit-based flow control instead of port-buffer refusal. The
// write direction makes completions the data stream: the disk DMA-reads
// the user buffer, so every 64-byte chunk returns as a read completion
// over the root-complex -> switch -> disk path, and capping Cpl credits
// throttles the transfer exactly where the paper's port buffers did.
// (A dd read moves its data in posted writes whose payload-free
// acknowledgment completions never saturate even one header credit.)
// The links carry figFCPropDelay of propagation delay — a cabled or
// retimed fabric — so each link's bandwidth-delay product needs several
// completions in flight, and the throughput collapses linearly once the
// advertised pool drops below it. Credits 0 runs the same long link
// with the legacy infinite-credit protocol as the baseline.
func RunFigFC(opt Options) (FCFigure, error) {
	opt = opt.normalize()
	mb := opt.BlockMB[0]
	bytes := opt.blockBytes(mb)
	sweep := []int{0, 32, 16, 8, 4, 2, 1}

	fig := FCFigure{Title: "dd under completion-credit starvation", BlockMB: mb}
	fig.Points = make([]FCPoint, len(sweep))
	type outcome struct {
		p   FCPoint
		sys *System
	}
	err := campaign.RunCollect(opt.jobs(), len(sweep),
		func(k int) (outcome, error) {
			credits := sweep[k]
			cfg := opt.scaledConfig(DefaultConfig())
			cfg.PropDelay = figFCPropDelay
			if credits > 0 {
				cfg.Credits = pcie.CreditConfig{CplHdr: credits}
			}
			sys := New(cfg)
			label := fmt.Sprintf("fc=%d@%dMB", credits, mb)
			if opt.Observe != nil {
				if err := opt.Observe(sys.Eng, label); err != nil {
					return outcome{}, err
				}
			}
			res, err := sys.RunDDWrite(bytes)
			if err != nil {
				return outcome{}, fmt.Errorf("figfc credits=%d: %w", credits, err)
			}
			// DMA read completions reach the disk across the uplink (RC ->
			// switch) and the disk link (switch -> disk); their transmit
			// sides are where credit starvation stalls show.
			disk, up := sys.DiskLink, sys.Uplink
			return outcome{p: FCPoint{
				Credits:   credits,
				Gbps:      res.ThroughputGbps(),
				CplStalls: disk.Up().Stats().FCStallsCpl + up.Up().Stats().FCStallsCpl,
				UpdateFCs: disk.Up().Stats().UpdateFCTx + disk.Down().Stats().UpdateFCTx +
					up.Up().Stats().UpdateFCTx + up.Down().Stats().UpdateFCTx,
				ReqLat: res.ReqLat,
			}, sys: sys}, nil
		},
		func(k int, o outcome) error {
			if opt.ObserveDone != nil {
				label := fmt.Sprintf("fc=%d@%dMB", sweep[k], mb)
				if err := opt.ObserveDone(o.sys.Eng, label); err != nil {
					return err
				}
			}
			fig.Points[k] = o.p
			return nil
		})
	if err != nil {
		return FCFigure{}, err
	}
	return fig, nil
}

// Format renders the credit sweep as an aligned text table.
func (f FCFigure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "figfc — %s (%d MB blocks)\n", f.Title, f.BlockMB)
	fmt.Fprintf(&b, "%-10s %8s %11s %10s %10s %10s\n",
		"cpl_hdr", "gbps", "cpl_stalls", "updatefc", "p50(us)", "p99(us)")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%-10s %8.3f %11d %10d %10.1f %10.1f\n",
			p.CreditsLabel(), p.Gbps, p.CplStalls, p.UpdateFCs,
			usOf(p.ReqLat.P50), usOf(p.ReqLat.P99))
	}
	return b.String()
}

// CSV renders the credit sweep as comma-separated values.
func (f FCFigure) CSV() string {
	var b strings.Builder
	b.WriteString("figure,cpl_hdr_credits,block_mb,gbps,cpl_stalls,updatefc_dllps,req_p50_us,req_p95_us,req_p99_us,req_max_us\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "figfc,%s,%d,%.4f,%d,%d,%.2f,%.2f,%.2f,%.2f\n",
			p.CreditsLabel(), f.BlockMB, p.Gbps, p.CplStalls, p.UpdateFCs,
			usOf(p.ReqLat.P50), usOf(p.ReqLat.P95), usOf(p.ReqLat.P99), usOf(p.ReqLat.Max))
	}
	return b.String()
}

// LatAttr is one run's per-segment latency attribution: for every
// instrumented segment, the total simulated time TLPs spent in it
// (the seg.* histogram sums), plus the per-segment share of the total.
type LatAttr struct {
	Label string
	Gbps  float64
	// SegTicks maps segment name ("wire", "fc-stall", ...) to the
	// summed ticks attributed to it.
	SegTicks map[string]uint64
	// Total is the sum over all segments.
	Total uint64
}

// Share returns the fraction (0..1) of the run's attributed time spent
// in the named segment.
func (a LatAttr) Share(seg string) float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.SegTicks[seg]) / float64(a.Total)
}

// LatFigure is the latency-attribution comparison (`ddbench -fig lat`):
// where does a microsecond go on a healthy link versus a
// credit-starved one.
type LatFigure struct {
	Title    string
	BlockMB  int
	Baseline LatAttr
	Starved  LatAttr
}

// latStarvedCredits is the completion header-credit pool of the
// starved run: small enough that completions queue for credits on the
// long link, but not so small that throughput collapses entirely.
const latStarvedCredits = 2

// RunFigLat runs the same dd write twice over the long
// (figFCPropDelay) fabric — once with the legacy infinite-credit links
// and once with the completion header-credit pool capped at
// latStarvedCredits — with span attribution armed, and reports how
// the per-segment latency attribution shifts. On the healthy link the
// time lives in wire/PropDelay and completion turnaround; starving
// the credits moves it into fc-stall. This is the "where does a
// microsecond go" figure: the same question the paper's breakdown
// answers, asked of the simulator's own attribution machinery.
func RunFigLat(opt Options) (LatFigure, error) {
	opt = opt.normalize()
	mb := opt.BlockMB[0]
	bytes := opt.blockBytes(mb)

	fig := LatFigure{Title: "per-segment latency attribution, healthy vs credit-starved", BlockMB: mb}
	runs := []struct {
		label   string
		credits int
		out     *LatAttr
	}{
		{"baseline", 0, &fig.Baseline},
		{fmt.Sprintf("fc=%d", latStarvedCredits), latStarvedCredits, &fig.Starved},
	}
	type outcome struct {
		a   LatAttr
		sys *System
	}
	err := campaign.RunCollect(opt.jobs(), len(runs),
		func(k int) (outcome, error) {
			cfg := opt.scaledConfig(DefaultConfig())
			cfg.PropDelay = figFCPropDelay
			if runs[k].credits > 0 {
				cfg.Credits = pcie.CreditConfig{CplHdr: runs[k].credits}
			}
			sys := New(cfg)
			// Attribution needs only the seg.* histograms, not span
			// trace events, so arm spans directly; an Observe hook may
			// still install a tracer on top.
			sys.Eng.ArmSpans()
			label := fmt.Sprintf("lat-%s@%dMB", runs[k].label, mb)
			if opt.Observe != nil {
				if err := opt.Observe(sys.Eng, label); err != nil {
					return outcome{}, err
				}
			}
			res, err := sys.RunDDWrite(bytes)
			if err != nil {
				return outcome{}, fmt.Errorf("figlat %s: %w", runs[k].label, err)
			}
			a := LatAttr{Label: runs[k].label, Gbps: res.ThroughputGbps(), SegTicks: make(map[string]uint64)}
			reg := sys.Eng.Stats()
			for _, name := range reg.HistogramNames() {
				if !strings.HasPrefix(name, "seg.") {
					continue
				}
				sum := reg.FindHistogram(name).Sum()
				a.SegTicks[strings.TrimPrefix(name, "seg.")] = sum
				a.Total += sum
			}
			return outcome{a: a, sys: sys}, nil
		},
		func(k int, o outcome) error {
			if opt.ObserveDone != nil {
				label := fmt.Sprintf("lat-%s@%dMB", runs[k].label, mb)
				if err := opt.ObserveDone(o.sys.Eng, label); err != nil {
					return err
				}
			}
			*runs[k].out = o.a
			return nil
		})
	if err != nil {
		return LatFigure{}, err
	}
	return fig, nil
}

// segNames returns the union of both runs' segment names, sorted.
func (f LatFigure) segNames() []string {
	seen := make(map[string]bool)
	for _, a := range []LatAttr{f.Baseline, f.Starved} {
		for n := range a.SegTicks {
			seen[n] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Format renders the attribution comparison as an aligned text table.
func (f LatFigure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "figlat — %s (%d MB blocks)\n", f.Title, f.BlockMB)
	fmt.Fprintf(&b, "%-16s %14s %7s %14s %7s\n",
		"segment", "base(us)", "base%", "starved(us)", "strv%")
	for _, n := range f.segNames() {
		fmt.Fprintf(&b, "%-16s %14.1f %6.1f%% %14.1f %6.1f%%\n",
			n,
			usOf(sim.Tick(f.Baseline.SegTicks[n])), 100*f.Baseline.Share(n),
			usOf(sim.Tick(f.Starved.SegTicks[n])), 100*f.Starved.Share(n))
	}
	fmt.Fprintf(&b, "%-16s %14.1f %7s %14.1f\n", "total",
		usOf(sim.Tick(f.Baseline.Total)), "", usOf(sim.Tick(f.Starved.Total)))
	fmt.Fprintf(&b, "throughput: baseline %.3f Gbps, starved %.3f Gbps\n",
		f.Baseline.Gbps, f.Starved.Gbps)
	return b.String()
}

// CSV renders the attribution comparison as comma-separated values.
func (f LatFigure) CSV() string {
	var b strings.Builder
	b.WriteString("figure,segment,baseline_us,baseline_share,starved_us,starved_share\n")
	for _, n := range f.segNames() {
		fmt.Fprintf(&b, "figlat,%s,%.2f,%.4f,%.2f,%.4f\n",
			n,
			usOf(sim.Tick(f.Baseline.SegTicks[n])), f.Baseline.Share(n),
			usOf(sim.Tick(f.Starved.SegTicks[n])), f.Starved.Share(n))
	}
	return b.String()
}

// CampaignResult is a Monte-Carlo fault campaign: the same faulted dd
// workload run under K different injection seeds, with the
// error-recovery outcome distribution across seeds.
type CampaignResult struct {
	Seeds int
	// Rate is the per-transmission TLP/DLLP corruption probability
	// (drops are injected at half this rate), identical in every run;
	// only the RNG seed varies.
	Rate float64
	// Points holds one measurement per seed, in seed order.
	Points []ErrPoint

	// Distribution across seeds.
	GbpsMin, GbpsMedian, GbpsMax float64
	// ErroredRuns counts runs where at least one dd request came back
	// as an error completion; DeadRuns counts runs that ended with the
	// disk link down for good.
	ErroredRuns int
	DeadRuns    int
	// Retrains and CompletionTimeouts are totals across all runs.
	Retrains           uint64
	CompletionTimeouts uint64
}

// RunFaultCampaign runs a Monte-Carlo campaign: seeds independent dd
// runs, each with a stochastic corruption/drop plan on the disk link
// seeded differently, fanned across opt.Jobs workers. Where RunFigErr
// answers "what does each failure mode cost", the campaign answers
// "how wide is the outcome spread under one failure rate" — the
// tail-risk question a single seeded run cannot.
func RunFaultCampaign(seeds int, rate float64, opt Options) (CampaignResult, error) {
	if seeds <= 0 {
		return CampaignResult{}, fmt.Errorf("campaign: seeds = %d", seeds)
	}
	opt = opt.normalize()
	bytes := opt.blockBytes(opt.BlockMB[0])
	base := opt.scaledConfig(DefaultConfig())
	base.CompletionTimeout = 100 * sim.Microsecond
	base.DiskCmdTimeout = 2 * sim.Millisecond
	base.DiskDMATimeout = 500 * sim.Microsecond

	res := CampaignResult{Seeds: seeds, Rate: rate, Points: make([]ErrPoint, seeds)}
	type outcome struct {
		p   ErrPoint
		sys *System
	}
	err := campaign.RunCollect(opt.jobs(), seeds,
		func(k int) (outcome, error) {
			label := fmt.Sprintf("seed%03d", k)
			// Each run builds its own plan: fault.Plan is mutated by the
			// link that adopts it, so sharing one across runs would race.
			r := fault.Rates{TLPCorrupt: rate, DLLPCorrupt: rate, Drop: rate / 2}
			cfg := base
			cfg.DiskLinkFault = &fault.Plan{
				Seed: uint64(k + 1),
				Up:   fault.Profile{Rates: r},
				Down: fault.Profile{Rates: r},
			}
			sys := New(cfg)
			if opt.Observe != nil {
				if err := opt.Observe(sys.Eng, label); err != nil {
					return outcome{}, err
				}
			}
			dd, err := sys.RunDD(bytes)
			if err != nil {
				return outcome{}, fmt.Errorf("campaign %s: %w", label, err)
			}
			sys.Eng.Run() // drain stragglers
			return outcome{p: errPoint(label, sys, dd), sys: sys}, nil
		},
		func(k int, o outcome) error {
			if opt.ObserveDone != nil {
				label := fmt.Sprintf("seed%03d", k)
				if err := opt.ObserveDone(o.sys.Eng, label); err != nil {
					return err
				}
			}
			res.Points[k] = o.p
			return nil
		})
	if err != nil {
		return CampaignResult{}, err
	}

	gbps := make([]float64, seeds)
	for i, p := range res.Points {
		gbps[i] = p.Gbps
		if p.Errored > 0 {
			res.ErroredRuns++
		}
		if p.LinkDead {
			res.DeadRuns++
		}
		res.Retrains += p.Retrains
		res.CompletionTimeouts += p.CompletionTimeouts
	}
	sort.Float64s(gbps)
	res.GbpsMin = gbps[0]
	res.GbpsMedian = gbps[seeds/2]
	res.GbpsMax = gbps[seeds-1]
	return res, nil
}

// Format renders the campaign as a per-seed table plus the summary.
func (c CampaignResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault campaign — %d seeds at p=%g on the disk link\n", c.Seeds, c.Rate)
	fmt.Fprintf(&b, "%-10s %8s %9s %10s %9s %8s %9s %5s %5s\n",
		"seed", "gbps", "errored", "replay%", "badDLLP", "dropped", "retrains", "CTO", "dead")
	for _, p := range c.Points {
		fmt.Fprintf(&b, "%-10s %8.3f %4d/%-4d %10.2f %9d %8d %9d %5d %5v\n",
			p.Scenario, p.Gbps, p.Errored, p.Requests, p.ReplayPct,
			p.BadDLLPs, p.Dropped, p.Retrains, p.CompletionTimeouts, p.LinkDead)
	}
	fmt.Fprintf(&b, "gbps min/median/max: %.3f / %.3f / %.3f\n", c.GbpsMin, c.GbpsMedian, c.GbpsMax)
	fmt.Fprintf(&b, "runs with errored requests: %d/%d; dead links: %d/%d; retrains: %d; completion timeouts: %d\n",
		c.ErroredRuns, c.Seeds, c.DeadRuns, c.Seeds, c.Retrains, c.CompletionTimeouts)
	return b.String()
}

// DegradePoint is one scenario of the adaptive-degradation staircase.
type DegradePoint struct {
	Scenario string
	Gbps     float64
	Requests int
	Errored  int
	// Downtrains/Uptrains count the degradation and upgrade retrains
	// the disk link took during the run.
	Downtrains uint64
	Uptrains   uint64
	// Level, Gen and Width are the disk link's final ladder position.
	Level  int
	Gen    Generation
	Width  int
	ReqLat LatencySummary
}

// DegradeFigure is the adaptive-degradation sweep (`ddbench -fig
// degrade`): dd throughput stepping down the (Gen, Width) ladder and
// recovering through upgrade retrains.
type DegradeFigure struct {
	Title  string
	Points []DegradePoint
}

// RunFigDegrade regenerates the degradation staircase on an x4 Gen2
// disk link: the full link, each of the three ladder levels below it
// (x2, x1, x1@Gen1) held by forced downtrains with upgrade retrains
// pushed past the run, and a "recovered" scenario where the same fully
// degraded link upgrade-retrains back to full speed early in the
// transfer. Every scenario is deterministic — the downtrain schedule
// is scripted, not stochastic.
func RunFigDegrade(opt Options) (DegradeFigure, error) {
	opt = opt.normalize()
	bytes := opt.blockBytes(opt.BlockMB[len(opt.BlockMB)-1])
	base := opt.scaledConfig(DefaultConfig())
	// A wide disk link gives the ladder three steps: x4 -> x2 -> x1 ->
	// x1 @ Gen1.
	base.DiskLinkWidth = 4

	// Hold each degraded level for the whole run: the first upgrade
	// attempt lands far beyond any workload here.
	hold := DefaultDegradeConfig()
	hold.UpgradeBackoff = 10000 * sim.Millisecond
	hold.MaxUpgradeBackoff = hold.UpgradeBackoff
	// The recovering link retries quickly so the upgrade ladder
	// completes early in the transfer.
	recov := DefaultDegradeConfig()
	recov.UpgradeBackoff = 50 * sim.Microsecond
	recov.MaxUpgradeBackoff = 400 * sim.Microsecond

	// Downtrains are scheduled right after boot, spaced wider than the
	// retrain latency so none lands mid-retrain; boot is deterministic.
	probe := New(base)
	if _, err := probe.Boot(); err != nil {
		return DegradeFigure{}, err
	}
	bootEnd := probe.Eng.Now()
	downs := func(n int) []sim.Tick {
		out := make([]sim.Tick, n)
		for i := range out {
			out[i] = bootEnd + sim.Tick(i+1)*50*sim.Microsecond
		}
		return out
	}
	scenarios := []struct {
		label   string
		degrade DegradeConfig
		downs   int
	}{
		{"full", hold, 0},
		{"down1", hold, 1},
		{"down2", hold, 2},
		{"down3", hold, 3},
		{"recovered", recov, 3},
	}

	fig := DegradeFigure{Title: "dd through adaptive link degradation (x4 Gen2 disk link)"}
	fig.Points = make([]DegradePoint, len(scenarios))
	type outcome struct {
		p   DegradePoint
		sys *System
	}
	err := campaign.RunCollect(opt.jobs(), len(scenarios),
		func(k int) (outcome, error) {
			sc := scenarios[k]
			cfg := base
			deg := sc.degrade
			cfg.Degrade = &deg
			if sc.downs > 0 {
				cfg.DiskLinkFault = &fault.Plan{Downtrains: downs(sc.downs)}
			}
			sys := New(cfg)
			if opt.Observe != nil {
				if err := opt.Observe(sys.Eng, sc.label); err != nil {
					return outcome{}, err
				}
			}
			res, err := sys.RunDD(bytes)
			if err != nil {
				return outcome{}, fmt.Errorf("figdegrade %s: %w", sc.label, err)
			}
			// Read the ladder position as dd finishes — draining the
			// engine below fires the held upgrade timers and climbs the
			// link back to level 0.
			l := sys.DiskLink
			p := DegradePoint{
				Scenario:   sc.label,
				Gbps:       res.ThroughputGbps(),
				Requests:   res.Requests,
				Errored:    res.Errors,
				Downtrains: l.Downtrains(),
				Uptrains:   l.Uptrains(),
				Level:      l.DegradeLevel(),
				Gen:        l.CurrentGen(),
				Width:      l.CurrentWidth(),
				ReqLat:     res.ReqLat,
			}
			sys.Eng.Run()
			return outcome{p: p, sys: sys}, nil
		},
		func(k int, o outcome) error {
			if opt.ObserveDone != nil {
				if err := opt.ObserveDone(o.sys.Eng, scenarios[k].label); err != nil {
					return err
				}
			}
			fig.Points[k] = o.p
			return nil
		})
	if err != nil {
		return DegradeFigure{}, err
	}
	return fig, nil
}

// Format renders the degradation staircase as an aligned text table.
func (f DegradeFigure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "figdegrade — %s\n", f.Title)
	fmt.Fprintf(&b, "%-10s %8s %9s %6s %5s %6s %6s %6s %10s %10s\n",
		"scenario", "gbps", "errored", "down", "up", "level", "gen", "width", "p50(us)", "p99(us)")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%-10s %8.3f %4d/%-4d %6d %5d %6d %6v %5dx %10.1f %10.1f\n",
			p.Scenario, p.Gbps, p.Errored, p.Requests, p.Downtrains, p.Uptrains,
			p.Level, p.Gen, p.Width, usOf(p.ReqLat.P50), usOf(p.ReqLat.P99))
	}
	return b.String()
}

// CSV renders the degradation staircase as comma-separated values.
func (f DegradeFigure) CSV() string {
	var b strings.Builder
	b.WriteString("figure,scenario,gbps,requests,errored,downtrains,uptrains,level,gen,width,req_p50_us,req_p99_us\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "figdegrade,%s,%.4f,%d,%d,%d,%d,%d,%d,%d,%.2f,%.2f\n",
			p.Scenario, p.Gbps, p.Requests, p.Errored, p.Downtrains, p.Uptrains,
			p.Level, int(p.Gen), p.Width, usOf(p.ReqLat.P50), usOf(p.ReqLat.P99))
	}
	return b.String()
}

// HotplugPoint is one seed of a surprise hot-plug campaign.
type HotplugPoint struct {
	Scenario string
	Gbps     float64
	Requests int
	Errored  int
	// Permanent marks a removal with no re-insertion.
	Permanent bool
	Removals  uint64
	Reinserts uint64
	// DPC/kernel recovery outcome.
	Triggers  uint64
	Recovered uint64
	Abandoned uint64
	ReqLat    LatencySummary
}

// HotplugCampaignResult is a surprise hot-plug campaign: the same dd
// workload run under K different removal/re-insertion schedules with
// DPC containment and the kernel recovery driver armed.
type HotplugCampaignResult struct {
	Seeds  int
	Points []HotplugPoint

	// Distribution and outcome totals across seeds.
	GbpsMin, GbpsMedian, GbpsMax float64
	RecoveredRuns                int
	AbandonedRuns                int
	ErroredRuns                  int
}

// RunHotplugCampaign runs K dd workloads, each with the disk yanked at
// a schedule-dependent instant mid-transfer; three of every four
// schedules re-seat the card and must end recovered (the kernel driver
// re-enables the slot and replays the boot-time configuration), the
// fourth is a permanent removal that must end contained and abandoned.
// Every run must complete — a single hung dd fails the campaign.
func RunHotplugCampaign(seeds int, opt Options) (HotplugCampaignResult, error) {
	if seeds <= 0 {
		return HotplugCampaignResult{}, fmt.Errorf("hotplug campaign: seeds = %d", seeds)
	}
	opt = opt.normalize()
	bytes := opt.blockBytes(opt.BlockMB[0])
	base := opt.scaledConfig(DefaultConfig())
	base.EnableDPC = true
	base.CompletionTimeout = 100 * sim.Microsecond
	base.DiskCmdTimeout = 2 * sim.Millisecond
	base.DiskDMATimeout = 500 * sim.Microsecond

	probe := New(base)
	if _, err := probe.Boot(); err != nil {
		return HotplugCampaignResult{}, err
	}
	streamStart := probe.Eng.Now() + base.DD.StartupOverhead

	res := HotplugCampaignResult{Seeds: seeds, Points: make([]HotplugPoint, seeds)}
	type outcome struct {
		p   HotplugPoint
		sys *System
	}
	err := campaign.RunCollect(opt.jobs(), seeds,
		func(k int) (outcome, error) {
			label := fmt.Sprintf("seed%03d", k)
			// Deterministic per-seed schedule: the removal instant walks
			// the transfer window, every fourth removal is permanent.
			h := fault.Hotplug{
				RemoveAt: streamStart + sim.Tick(k*613%1500)*sim.Microsecond,
			}
			permanent := k%4 == 3
			if !permanent {
				h.ReinsertAfter = sim.Tick(200+k*97%400) * sim.Microsecond
			}
			cfg := base
			cfg.DiskLinkFault = &fault.Plan{Hotplugs: []fault.Hotplug{h}}
			sys := New(cfg)
			if opt.Observe != nil {
				if err := opt.Observe(sys.Eng, label); err != nil {
					return outcome{}, err
				}
			}
			dd, err := sys.RunDD(bytes)
			if err != nil {
				return outcome{}, fmt.Errorf("hotplug campaign %s: %w", label, err)
			}
			sys.Eng.Run() // recovery polling and stragglers
			triggers, recovered, abandoned := sys.Recovery.Counts()
			return outcome{p: HotplugPoint{
				Scenario:  label,
				Gbps:      dd.ThroughputGbps(),
				Requests:  dd.Requests,
				Errored:   dd.Errors,
				Permanent: permanent,
				Removals:  sys.DiskLink.Removals(),
				Reinserts: sys.DiskLink.Reinserts(),
				Triggers:  triggers,
				Recovered: recovered,
				Abandoned: abandoned,
				ReqLat:    dd.ReqLat,
			}, sys: sys}, nil
		},
		func(k int, o outcome) error {
			if opt.ObserveDone != nil {
				if err := opt.ObserveDone(o.sys.Eng, fmt.Sprintf("seed%03d", k)); err != nil {
					return err
				}
			}
			res.Points[k] = o.p
			return nil
		})
	if err != nil {
		return HotplugCampaignResult{}, err
	}

	gbps := make([]float64, seeds)
	for i, p := range res.Points {
		gbps[i] = p.Gbps
		if p.Recovered > 0 {
			res.RecoveredRuns++
		}
		if p.Abandoned > 0 {
			res.AbandonedRuns++
		}
		if p.Errored > 0 {
			res.ErroredRuns++
		}
	}
	sort.Float64s(gbps)
	res.GbpsMin = gbps[0]
	res.GbpsMedian = gbps[seeds/2]
	res.GbpsMax = gbps[seeds-1]
	return res, nil
}

// Format renders the hot-plug campaign as a per-seed table plus the
// summary.
func (c HotplugCampaignResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hotplug campaign — %d surprise-removal schedules on the disk link\n", c.Seeds)
	fmt.Fprintf(&b, "%-10s %8s %9s %10s %8s %10s %9s %10s %10s\n",
		"seed", "gbps", "errored", "permanent", "removals", "reinserts", "triggers", "recovered", "abandoned")
	for _, p := range c.Points {
		fmt.Fprintf(&b, "%-10s %8.3f %4d/%-4d %10v %8d %10d %9d %10d %10d\n",
			p.Scenario, p.Gbps, p.Errored, p.Requests, p.Permanent,
			p.Removals, p.Reinserts, p.Triggers, p.Recovered, p.Abandoned)
	}
	fmt.Fprintf(&b, "gbps min/median/max: %.3f / %.3f / %.3f\n", c.GbpsMin, c.GbpsMedian, c.GbpsMax)
	fmt.Fprintf(&b, "recovered: %d/%d; abandoned: %d/%d; runs with errors: %d/%d; hung: 0\n",
		c.RecoveredRuns, c.Seeds, c.AbandonedRuns, c.Seeds, c.ErroredRuns, c.Seeds)
	return b.String()
}

// usOf converts a tick count (picoseconds) to microseconds for tables.
func usOf(t sim.Tick) float64 { return float64(t) / 1e6 }

// Format renders the error sweep as an aligned text table.
func (f ErrFigure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "figerr — %s\n", f.Title)
	fmt.Fprintf(&b, "%-10s %8s %9s %10s %11s %9s %8s %9s %5s %5s %10s %10s\n",
		"scenario", "gbps", "errored", "replay%", "timeout%", "badDLLP", "dropped", "retrains", "CTO", "dead",
		"p50(us)", "p99(us)")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%-10s %8.3f %4d/%-4d %10.2f %11.2f %9d %8d %9d %5d %5v %10.1f %10.1f\n",
			p.Scenario, p.Gbps, p.Errored, p.Requests, p.ReplayPct, p.TimeoutPct,
			p.BadDLLPs, p.Dropped, p.Retrains, p.CompletionTimeouts, p.LinkDead,
			usOf(p.ReqLat.P50), usOf(p.ReqLat.P99))
	}
	return b.String()
}

// CSV renders the error sweep as comma-separated values.
func (f ErrFigure) CSV() string {
	var b strings.Builder
	b.WriteString("figure,scenario,gbps,requests,errored,replay_pct,timeout_pct,bad_dllps,dropped,retrains,completion_timeouts,link_dead,req_p50_us,req_p95_us,req_p99_us,req_max_us\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "figerr,%s,%.4f,%d,%d,%.2f,%.2f,%d,%d,%d,%d,%v,%.2f,%.2f,%.2f,%.2f\n",
			p.Scenario, p.Gbps, p.Requests, p.Errored, p.ReplayPct, p.TimeoutPct,
			p.BadDLLPs, p.Dropped, p.Retrains, p.CompletionTimeouts, p.LinkDead,
			usOf(p.ReqLat.P50), usOf(p.ReqLat.P95), usOf(p.ReqLat.P99), usOf(p.ReqLat.Max))
	}
	return b.String()
}

// Format renders the figure as an aligned text table.
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-10s", "block(MB)")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%12s", s.Label)
	}
	b.WriteString("\n")
	for i, p := range f.Series[0].Points {
		fmt.Fprintf(&b, "%-10d", p.X)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "%12.3f", s.Points[i].Gbps)
		}
		b.WriteString("\n")
	}
	// Protocol-health footer (last block size), where meaningful.
	var health []string
	for _, s := range f.Series {
		last := s.Points[len(s.Points)-1]
		if last.ReplayPct > 0.05 || last.TimeoutPct > 0.05 {
			health = append(health, fmt.Sprintf("%s: replay %.1f%%, timeout %.1f%%",
				s.Label, last.ReplayPct, last.TimeoutPct))
		}
	}
	if len(health) > 0 {
		fmt.Fprintf(&b, "congested upstream link: %s\n", strings.Join(health, "; "))
	}
	// Request-latency sub-table (largest block size): the distribution
	// tail is where congestion shows before throughput collapses.
	hasLat := false
	for _, s := range f.Series {
		if s.Points[len(s.Points)-1].ReqLat.Max > 0 {
			hasLat = true
		}
	}
	if hasLat {
		fmt.Fprintf(&b, "request latency at %d MB (µs):\n", f.Series[0].Points[len(f.Series[0].Points)-1].X)
		fmt.Fprintf(&b, "  %-10s %10s %10s %10s %10s\n", "series", "p50", "p95", "p99", "max")
		for _, s := range f.Series {
			l := s.Points[len(s.Points)-1].ReqLat
			if l.Max == 0 {
				continue // analytical series (phys) has no per-request model
			}
			fmt.Fprintf(&b, "  %-10s %10.1f %10.1f %10.1f %10.1f\n",
				s.Label, usOf(l.P50), usOf(l.P95), usOf(l.P99), usOf(l.Max))
		}
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with one row per
// (series, block size) pair.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString("figure,series,block_mb,gbps,replay_pct,timeout_pct,req_p50_us,req_p95_us,req_p99_us,req_max_us\n")
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%s,%d,%.4f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
				f.ID, s.Label, p.X, p.Gbps, p.ReplayPct, p.TimeoutPct,
				usOf(p.ReqLat.P50), usOf(p.ReqLat.P95), usOf(p.ReqLat.P99), usOf(p.ReqLat.Max))
		}
	}
	return b.String()
}

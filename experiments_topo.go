package pciesim

import (
	"fmt"
	"strings"

	"pciesim/internal/campaign"
	"pciesim/internal/sim"
	"pciesim/internal/topo"
)

// ScenarioRow is one measured metric of a topology scenario.
type ScenarioRow struct {
	Scenario string
	Metric   string
	Value    float64
	Unit     string
}

// ScenarioReport is the result of RunScenarios.
type ScenarioReport struct {
	Rows []ScenarioRow
}

// Format renders the report as an aligned table.
func (r ScenarioReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-28s %12s %s\n", "scenario", "metric", "value", "unit")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-28s %12.3f %s\n", row.Scenario, row.Metric, row.Value, row.Unit)
	}
	return b.String()
}

// CSV renders the report as CSV.
func (r ScenarioReport) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,metric,value,unit\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%g,%s\n", row.Scenario, row.Metric, row.Value, row.Unit)
	}
	return b.String()
}

// scenarioRun is one independent simulation of the scenario campaign.
// run returns the measured rows plus the run's root engine so the
// campaign loop can invoke the ObserveDone hook on it; Observe itself
// fires inside run, right after the platform is built.
type scenarioRun struct {
	label string
	run   func() ([]ScenarioRow, *sim.Engine, error)
}

// scaledTopoConfig mirrors Options.scaledConfig for the topology-build
// config.
func (o Options) scaledTopoConfig() topo.Config {
	cfg := topo.DefaultConfig()
	cfg.DD.StartupOverhead /= sim.Tick(o.Scale)
	cfg.Domains = o.Par
	return cfg
}

// RunTopoSweep sweeps the block sizes of Options over an arbitrary
// topology (a canned scenario name or a spec string), running dd on
// every disk concurrently at each size. The result is a one-series
// Figure whose throughput is the aggregate across disks, so it drops
// into ddbench's existing table/CSV printers.
func RunTopoSweep(spec string, opt Options) (Figure, error) {
	opt = opt.normalize()
	ts := CannedTopo(spec)
	if ts == nil {
		var err error
		ts, err = ParseTopo(spec)
		if err != nil {
			return Figure{}, err
		}
	}
	// Normalize once up front: afterwards the spec is read-only, so the
	// concurrent campaign runs below can share it.
	if err := ts.Normalize(); err != nil {
		return Figure{}, err
	}
	cfg := opt.scaledTopoConfig()
	nb := len(opt.BlockMB)
	points := make([]Point, nb)
	type outcome struct {
		p     Point
		eng   *sim.Engine
		label string
	}
	err := campaign.RunCollect(opt.jobs(), nb,
		func(k int) (outcome, error) {
			sys, err := topo.Build(ts, cfg)
			if err != nil {
				return outcome{}, err
			}
			label := fmt.Sprintf("%s@%dMB", ts.Name, opt.BlockMB[k])
			if opt.Observe != nil {
				if err := opt.Observe(sys.Eng, label); err != nil {
					return outcome{}, err
				}
			}
			res, err := sys.RunDDAll(opt.blockBytes(opt.BlockMB[k]))
			if err != nil {
				return outcome{}, fmt.Errorf("%s @%dMB: %w", ts.Name, opt.BlockMB[k], err)
			}
			p := Point{X: opt.BlockMB[k], Gbps: res.AggregateThroughputGbps()}
			return outcome{p: p, eng: sys.Eng, label: label}, nil
		},
		func(k int, o outcome) error {
			if opt.ObserveDone != nil {
				if err := opt.ObserveDone(o.eng, o.label); err != nil {
					return err
				}
			}
			points[k] = o.p
			return nil
		})
	if err != nil {
		return Figure{}, err
	}
	label := ts.Name
	if label == "" {
		label = spec
	}
	return Figure{
		ID:     "topo",
		Title:  fmt.Sprintf("aggregate dd throughput over topology %q", spec),
		Series: []Series{{Label: label, Points: points}},
	}, nil
}

// RunScenarios runs the canned arbitrary-topology scenarios as one
// flat campaign (every build/workload pair is an independent
// single-threaded simulation, fanned across Options.Jobs workers):
//
//   - validation: the §VI-A platform built from the generic topology
//     builder, running the 64 MiB dd read — its throughput must match
//     the hardwired platform's (they are the same simulation).
//   - fanout8: eight x1 disks contending for one x4 switch uplink,
//     plus a single-disk control build for the aggregate comparison.
//   - p2p: disk-to-NIC DMA under a shared switch, once with
//     switch-level turnaround and once forced to reflect off the root
//     complex.
//
// names selects a subset (nil or empty = all).
func RunScenarios(names []string, opt Options) (ScenarioReport, error) {
	opt = opt.normalize()
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	selected := func(n string) bool { return len(want) == 0 || want[n] }

	blockBytes := opt.blockBytes(64)
	cfg := opt.scaledTopoConfig()
	// observe fires the Options.Observe hook for a freshly built
	// scenario platform; label matches the scenarioRun's.
	observe := func(sys *topo.System, label string) error {
		if opt.Observe == nil {
			return nil
		}
		return opt.Observe(sys.Eng, label)
	}

	var runs []scenarioRun
	if selected("validation") {
		runs = append(runs, scenarioRun{label: "validation", run: func() ([]ScenarioRow, *sim.Engine, error) {
			sys, err := topo.Build(topo.Validation(), cfg)
			if err != nil {
				return nil, nil, err
			}
			if err := observe(sys, "validation"); err != nil {
				return nil, nil, err
			}
			res, err := sys.RunDD(blockBytes)
			if err != nil {
				return nil, nil, err
			}
			return []ScenarioRow{
				{"validation", "dd_throughput", res.ThroughputGbps(), "Gb/s"},
				{"validation", "dd_p50_latency", res.ReqLat.P50.Seconds() * 1e6, "us"},
			}, sys.Eng, nil
		}})
	}
	if selected("fanout8") {
		runs = append(runs,
			scenarioRun{label: "fanout8", run: func() ([]ScenarioRow, *sim.Engine, error) {
				sys, err := topo.Build(topo.Fanout8(), cfg)
				if err != nil {
					return nil, nil, err
				}
				if err := observe(sys, "fanout8"); err != nil {
					return nil, nil, err
				}
				res, err := sys.RunDDAll(blockBytes)
				if err != nil {
					return nil, nil, err
				}
				return []ScenarioRow{
					{"fanout8", "aggregate_throughput", res.AggregateThroughputGbps(), "Gb/s"},
					{"fanout8", "fairness_spread", res.FairnessSpread(), "max/min"},
					{"fanout8", "disks", float64(len(res.PerDisk)), "count"},
				}, sys.Eng, nil
			}},
			scenarioRun{label: "fanout1", run: func() ([]ScenarioRow, *sim.Engine, error) {
				spec, err := topo.Parse("switch:x4(disk)")
				if err != nil {
					return nil, nil, err
				}
				sys, err := topo.Build(spec, cfg)
				if err != nil {
					return nil, nil, err
				}
				if err := observe(sys, "fanout1"); err != nil {
					return nil, nil, err
				}
				res, err := sys.RunDD(blockBytes)
				if err != nil {
					return nil, nil, err
				}
				return []ScenarioRow{
					{"fanout8", "single_disk_baseline", res.ThroughputGbps(), "Gb/s"},
				}, sys.Eng, nil
			}},
		)
	}
	if selected("p2p") {
		p2pRun := func(scenario string, noP2P bool) func() ([]ScenarioRow, *sim.Engine, error) {
			return func() ([]ScenarioRow, *sim.Engine, error) {
				c := cfg
				c.NoP2P = noP2P
				sys, err := topo.Build(topo.P2P(), c)
				if err != nil {
					return nil, nil, err
				}
				if err := observe(sys, scenario); err != nil {
					return nil, nil, err
				}
				res, err := sys.RunP2P(64, 4)
				if err != nil {
					return nil, nil, err
				}
				return []ScenarioRow{
					{scenario, "p50_cmd_latency", res.CmdLat.P50.Seconds() * 1e6, "us"},
					{scenario, "throughput", res.ThroughputGbps(), "Gb/s"},
					{scenario, "switch_turnarounds", float64(sys.Turnarounds()), "count"},
					{scenario, "rc_reflections", float64(sys.Reflections()), "count"},
				}, sys.Eng, nil
			}
		}
		runs = append(runs,
			scenarioRun{label: "p2p", run: p2pRun("p2p", false)},
			scenarioRun{label: "p2p-reflect", run: p2pRun("p2p-reflect", true)},
		)
	}
	if len(runs) == 0 {
		return ScenarioReport{}, fmt.Errorf("no known scenario in %v (have %v)", names, topo.CannedNames())
	}

	type outcome struct {
		rows []ScenarioRow
		eng  *sim.Engine
	}
	results := make([][]ScenarioRow, len(runs))
	err := campaign.RunCollect(opt.jobs(), len(runs),
		func(k int) (outcome, error) {
			rows, eng, err := runs[k].run()
			if err != nil {
				return outcome{}, fmt.Errorf("scenario %s: %w", runs[k].label, err)
			}
			return outcome{rows: rows, eng: eng}, nil
		},
		func(k int, o outcome) error {
			if opt.ObserveDone != nil {
				if err := opt.ObserveDone(o.eng, runs[k].label); err != nil {
					return err
				}
			}
			results[k] = o.rows
			return nil
		})
	if err != nil {
		return ScenarioReport{}, err
	}
	var report ScenarioReport
	for _, rows := range results {
		report.Rows = append(report.Rows, rows...)
	}
	return report, nil
}

package pciesim

import (
	"reflect"
	"testing"
)

// TestFigWLShape pins the workload figure's asserted shape: at equal
// offered load the bursty generator's tail is far worse than the
// Poisson one's, the captured trace replays byte-identically, and the
// contention matrix shares the fabric within tight fairness bounds.
func TestFigWLShape(t *testing.T) {
	fig, err := RunFigWL(Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 2 {
		t.Fatalf("got %d arrival points, want 2", len(fig.Points))
	}
	poisson, bursty := fig.Points[0], fig.Points[1]
	if poisson.Label != "poisson" || bursty.Label != "bursty" {
		t.Fatalf("point order: %q, %q", poisson.Label, bursty.Label)
	}
	for _, p := range fig.Points {
		if p.Ops != wlFrames || p.Dropped != 0 {
			t.Errorf("%s: %d ops, %d dropped; want %d/0", p.Label, p.Ops, p.Dropped, wlFrames)
		}
	}
	// The point of the comparison: same mean rate, very different tail.
	if bursty.Lat.P99 < 2*poisson.Lat.P99 {
		t.Errorf("bursty p99 %v is not >> poisson p99 %v", bursty.Lat.P99, poisson.Lat.P99)
	}
	// Equal offered load implies comparable goodput (within 15%).
	ratio := bursty.GoodputGbps / poisson.GoodputGbps
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("goodput ratio %.3f: offered loads are not equal", ratio)
	}

	if len(fig.Matrix) != 3 {
		t.Fatalf("got %d matrix rows, want 3", len(fig.Matrix))
	}
	prevAgg := 0.0
	for _, m := range fig.Matrix {
		if m.Fairness > 1.3 {
			t.Errorf("%d flows: fairness spread %.3f exceeds 1.3", m.Flows, m.Fairness)
		}
		if m.AggregateGbps <= prevAgg {
			t.Errorf("%d flows: aggregate %.3f Gb/s did not grow past %.3f", m.Flows, m.AggregateGbps, prevAgg)
		}
		prevAgg = m.AggregateGbps
	}

	if !fig.ReplayIdentical {
		t.Error("replaying the captured Poisson trace did not reproduce the stats dump byte-for-byte")
	}
}

// TestFigWLParallelEquivalence: the workload figure is deterministic in
// every field at any worker count — the generators materialize the
// schedule up front, so fanning runs across workers changes nothing.
func TestFigWLParallelEquivalence(t *testing.T) {
	serial, err := RunFigWL(Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunFigWL(Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("figure differs between jobs=1 and jobs=4:\n%+v\n%+v", serial, parallel)
	}
}

package mem

import "testing"

func TestCmdPredicates(t *testing.T) {
	cases := []struct {
		cmd                            Cmd
		isReq, isResp, isRead, isWrite bool
	}{
		{ReadReq, true, false, true, false},
		{ReadResp, false, true, true, false},
		{WriteReq, true, false, false, true},
		{WriteResp, false, true, false, true},
	}
	for _, c := range cases {
		if c.cmd.IsRequest() != c.isReq {
			t.Errorf("%v.IsRequest() = %v", c.cmd, !c.isReq)
		}
		if c.cmd.IsResponse() != c.isResp {
			t.Errorf("%v.IsResponse() = %v", c.cmd, !c.isResp)
		}
		if c.cmd.IsRead() != c.isRead {
			t.Errorf("%v.IsRead() = %v", c.cmd, !c.isRead)
		}
		if c.cmd.IsWrite() != c.isWrite {
			t.Errorf("%v.IsWrite() = %v", c.cmd, !c.isWrite)
		}
	}
}

func TestCmdResponseFor(t *testing.T) {
	if ReadReq.ResponseFor() != ReadResp {
		t.Error("ReadReq response should be ReadResp")
	}
	if WriteReq.ResponseFor() != WriteResp {
		t.Error("WriteReq response should be WriteResp")
	}
	defer func() {
		if recover() == nil {
			t.Error("ResponseFor on a response should panic")
		}
	}()
	_ = ReadResp.ResponseFor()
}

func TestCmdNeedsResponse(t *testing.T) {
	// The paper's model is non-posted: every request, including writes,
	// gets a response (§VI-B discusses the resulting bandwidth cost).
	if !WriteReq.NeedsResponse() {
		t.Error("writes are non-posted in this model")
	}
	if !ReadReq.NeedsResponse() {
		t.Error("reads need responses")
	}
	if WriteResp.NeedsResponse() || ReadResp.NeedsResponse() {
		t.Error("responses never need responses")
	}
}

func TestCmdString(t *testing.T) {
	if ReadReq.String() != "ReadReq" || WriteResp.String() != "WriteResp" {
		t.Error("unexpected Cmd string")
	}
	if Cmd(99).String() != "Cmd(99)" {
		t.Errorf("unknown cmd string = %q", Cmd(99).String())
	}
}

func TestAllocatorUniqueIDs(t *testing.T) {
	var a Allocator
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		p := a.NewRequest(ReadReq, 0x1000, 64)
		if seen[p.ID] {
			t.Fatalf("duplicate packet ID %d", p.ID)
		}
		seen[p.ID] = true
		if p.BusNum != NoBus {
			t.Fatalf("new packet BusNum = %d, want NoBus", p.BusNum)
		}
	}
}

func TestAllocatorRejectsResponses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRequest(ReadResp) should panic")
		}
	}()
	var a Allocator
	a.NewRequest(ReadResp, 0, 4)
}

func TestMakeResponsePreservesIdentity(t *testing.T) {
	var a Allocator
	p := a.NewRequest(WriteReq, 0x4000_0000, 64)
	p.BusNum = 2
	p.Context = "tag"
	p.PushRoute("xbar", 3)
	id := p.ID
	p.MakeResponse()
	if p.Cmd != WriteResp {
		t.Errorf("Cmd = %v, want WriteResp", p.Cmd)
	}
	if p.ID != id || p.Addr != 0x4000_0000 || p.Size != 64 || p.BusNum != 2 || p.Context != "tag" {
		t.Error("MakeResponse must preserve identity fields")
	}
	if p.RouteDepth() != 1 {
		t.Error("MakeResponse must preserve the route stack")
	}
}

func TestMakeResponseOnResponsePanics(t *testing.T) {
	p := NewPacket(ReadReq, 0, 4)
	p.MakeResponse()
	defer func() {
		if recover() == nil {
			t.Error("double MakeResponse should panic")
		}
	}()
	p.MakeResponse()
}

func TestRouteStackLIFO(t *testing.T) {
	p := NewPacket(ReadReq, 0x1000, 4)
	a, b := "first", "second"
	p.PushRoute(a, 1)
	p.PushRoute(b, 7)
	if p.RouteDepth() != 2 {
		t.Fatalf("depth = %d, want 2", p.RouteDepth())
	}
	if got := p.PopRoute(b); got != 7 {
		t.Errorf("PopRoute = %d, want 7", got)
	}
	if got := p.PopRoute(a); got != 1 {
		t.Errorf("PopRoute = %d, want 1", got)
	}
	if p.RouteDepth() != 0 {
		t.Errorf("depth = %d, want 0", p.RouteDepth())
	}
}

func TestRouteStackOwnerMismatchPanics(t *testing.T) {
	p := NewPacket(ReadReq, 0x1000, 4)
	p.PushRoute("owner-a", 1)
	defer func() {
		if recover() == nil {
			t.Error("PopRoute with wrong owner should panic")
		}
	}()
	p.PopRoute("owner-b")
}

func TestRouteStackEmptyPopPanics(t *testing.T) {
	p := NewPacket(ReadReq, 0x1000, 4)
	defer func() {
		if recover() == nil {
			t.Error("PopRoute on empty stack should panic")
		}
	}()
	p.PopRoute("anyone")
}

func TestPacketString(t *testing.T) {
	p := NewPacket(WriteReq, 0x2f000000, 64)
	s := p.String()
	if s == "" {
		t.Error("empty packet string")
	}
}

package mem

import (
	"fmt"
	"sort"
)

// AddrRange is a half-open interval [Start, End) of physical addresses.
// Slaves register the ranges they respond to; crossbars, bridges and the
// PCIe routing components forward packets by matching Addr against the
// registered ranges, exactly as gem5's address-range routing does.
type AddrRange struct {
	Start uint64
	End   uint64 // exclusive
}

// Range constructs [start, start+size).
func Range(start, size uint64) AddrRange { return AddrRange{Start: start, End: start + size} }

// Span constructs [start, end).
func Span(start, end uint64) AddrRange { return AddrRange{Start: start, End: end} }

// Valid reports whether the range is non-empty and well formed.
func (r AddrRange) Valid() bool { return r.Start < r.End }

// Size returns the number of bytes covered.
func (r AddrRange) Size() uint64 {
	if !r.Valid() {
		return 0
	}
	return r.End - r.Start
}

// Contains reports whether addr lies inside the range.
func (r AddrRange) Contains(addr uint64) bool { return addr >= r.Start && addr < r.End }

// ContainsRange reports whether other lies entirely inside r. An empty
// other is contained in anything.
func (r AddrRange) ContainsRange(other AddrRange) bool {
	if !other.Valid() {
		return true
	}
	return r.Valid() && other.Start >= r.Start && other.End <= r.End
}

// Overlaps reports whether the two ranges share at least one address.
func (r AddrRange) Overlaps(other AddrRange) bool {
	return r.Valid() && other.Valid() && r.Start < other.End && other.Start < r.End
}

// Intersect returns the common sub-range; the result is invalid when the
// ranges are disjoint.
func (r AddrRange) Intersect(other AddrRange) AddrRange {
	out := AddrRange{Start: max64(r.Start, other.Start), End: min64(r.End, other.End)}
	if !out.Valid() {
		return AddrRange{}
	}
	return out
}

// Offset returns addr's offset from the start of the range. It panics if
// addr is outside the range.
func (r AddrRange) Offset(addr uint64) uint64 {
	if !r.Contains(addr) {
		panic(fmt.Sprintf("mem: %#x outside %v", addr, r))
	}
	return addr - r.Start
}

// String implements fmt.Stringer.
func (r AddrRange) String() string {
	return fmt.Sprintf("[%#x:%#x)", r.Start, r.End)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// RangeList is an ordered collection of ranges with the queries the
// routing components need.
type RangeList []AddrRange

// Contains reports whether any member range contains addr.
func (l RangeList) Contains(addr uint64) bool {
	for _, r := range l {
		if r.Contains(addr) {
			return true
		}
	}
	return false
}

// ContainsRange reports whether some single member contains the range.
func (l RangeList) ContainsRange(r AddrRange) bool {
	for _, m := range l {
		if m.ContainsRange(r) {
			return true
		}
	}
	return false
}

// Overlaps reports whether any member overlaps r.
func (l RangeList) Overlaps(r AddrRange) bool {
	for _, m := range l {
		if m.Overlaps(r) {
			return true
		}
	}
	return false
}

// Normalize sorts the ranges, drops invalid entries, and merges adjacent
// or overlapping members.
func (l RangeList) Normalize() RangeList {
	out := make(RangeList, 0, len(l))
	for _, r := range l {
		if r.Valid() {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && r.Start <= merged[n-1].End {
			if r.End > merged[n-1].End {
				merged[n-1].End = r.End
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// Union returns the normalized union of the two lists.
func (l RangeList) Union(other RangeList) RangeList {
	return append(append(RangeList{}, l...), other...).Normalize()
}

package mem

import "fmt"

// The timing port protocol, after gem5 (§III of the paper):
//
//   - A MasterPort sends requests and receives responses.
//   - A SlavePort receives requests and sends responses.
//   - Every send can be refused (the Recv* hook returns false). A
//     refusing receiver owes the sender exactly one retry notification
//     (SendReqRetry / SendRespRetry) once it can make progress again;
//     the sender then re-attempts its send.
//
// Refusal-plus-retry is the only backpressure mechanism in the system,
// and it is the one the paper's link model leans on: "If the connected
// master or slave ports refuse to accept the TLP, the receiving
// interface does not increment the receiving sequence number and the
// sender retransmits the packets in its replay buffer after a timeout."

// MasterOwner is implemented by components that own a MasterPort.
type MasterOwner interface {
	// RecvTimingResp delivers a response to the owner. Returning false
	// refuses it; the owner will get RecvRespRetry via the port later.
	RecvTimingResp(port *MasterPort, pkt *Packet) bool
	// RecvReqRetry tells the owner a previously refused request may now
	// be retried.
	RecvReqRetry(port *MasterPort)
}

// SlaveOwner is implemented by components that own a SlavePort.
type SlaveOwner interface {
	// RecvTimingReq delivers a request to the owner. Returning false
	// refuses it; the owner will get RecvReqRetry via the port later.
	RecvTimingReq(port *SlavePort, pkt *Packet) bool
	// RecvRespRetry tells the owner a previously refused response may
	// now be retried.
	RecvRespRetry(port *SlavePort)
}

// RangeProvider is optionally implemented by slave owners whose address
// ranges are discoverable (crossbars query it when wiring).
type RangeProvider interface {
	AddrRanges(port *SlavePort) RangeList
}

// MasterPort is the request-sending half of a connection.
type MasterPort struct {
	name  string
	owner MasterOwner
	peer  *SlavePort

	// waitingForRetry is diagnostic state: true between a refused send
	// and the matching retry notification.
	waitingForRetry bool
}

// NewMasterPort creates a master port owned by owner.
func NewMasterPort(name string, owner MasterOwner) *MasterPort {
	return &MasterPort{name: name, owner: owner}
}

// Name returns the port's diagnostic name.
func (p *MasterPort) Name() string { return p.name }

// Peer returns the connected slave port, or nil.
func (p *MasterPort) Peer() *SlavePort { return p.peer }

// Connected reports whether the port has a peer.
func (p *MasterPort) Connected() bool { return p.peer != nil }

// SendTimingReq offers pkt to the connected slave. It returns false if
// the slave refused; the refusal obligates the slave to call
// SendReqRetry later.
func (p *MasterPort) SendTimingReq(pkt *Packet) bool {
	if p.peer == nil {
		panic(fmt.Sprintf("mem: SendTimingReq on unconnected port %q", p.name))
	}
	if !pkt.Cmd.IsRequest() {
		panic(fmt.Sprintf("mem: SendTimingReq with %v on %q", pkt.Cmd, p.name))
	}
	ok := p.peer.owner.RecvTimingReq(p.peer, pkt)
	p.waitingForRetry = !ok
	return ok
}

// SendRespRetry notifies the slave that a previously refused response
// may be retried.
func (p *MasterPort) SendRespRetry() {
	if p.peer == nil {
		panic(fmt.Sprintf("mem: SendRespRetry on unconnected port %q", p.name))
	}
	p.peer.owner.RecvRespRetry(p.peer)
}

// SlavePort is the request-receiving half of a connection.
type SlavePort struct {
	name  string
	owner SlaveOwner
	peer  *MasterPort

	waitingForRetry bool
}

// NewSlavePort creates a slave port owned by owner.
func NewSlavePort(name string, owner SlaveOwner) *SlavePort {
	return &SlavePort{name: name, owner: owner}
}

// Name returns the port's diagnostic name.
func (p *SlavePort) Name() string { return p.name }

// Peer returns the connected master port, or nil.
func (p *SlavePort) Peer() *MasterPort { return p.peer }

// Connected reports whether the port has a peer.
func (p *SlavePort) Connected() bool { return p.peer != nil }

// SendTimingResp offers a response to the connected master. It returns
// false if the master refused; the refusal obligates the master to call
// SendRespRetry later.
func (p *SlavePort) SendTimingResp(pkt *Packet) bool {
	if p.peer == nil {
		panic(fmt.Sprintf("mem: SendTimingResp on unconnected port %q", p.name))
	}
	if !pkt.Cmd.IsResponse() {
		panic(fmt.Sprintf("mem: SendTimingResp with %v on %q", pkt.Cmd, p.name))
	}
	ok := p.peer.owner.RecvTimingResp(p.peer, pkt)
	p.waitingForRetry = !ok
	return ok
}

// SendReqRetry notifies the master that a previously refused request may
// be retried.
func (p *SlavePort) SendReqRetry() {
	if p.peer == nil {
		panic(fmt.Sprintf("mem: SendReqRetry on unconnected port %q", p.name))
	}
	p.peer.owner.RecvReqRetry(p.peer)
}

// Ranges queries the owner's advertised address ranges, if any.
func (p *SlavePort) Ranges() RangeList {
	if rp, ok := p.owner.(RangeProvider); ok {
		return rp.AddrRanges(p)
	}
	return nil
}

// Connect pairs a master port with a slave port. Both must be
// unconnected; topology is fixed at construction time.
func Connect(m *MasterPort, s *SlavePort) {
	if m == nil || s == nil {
		panic("mem: Connect with nil port")
	}
	if m.peer != nil {
		panic(fmt.Sprintf("mem: master port %q already connected to %q", m.name, m.peer.name))
	}
	if s.peer != nil {
		panic(fmt.Sprintf("mem: slave port %q already connected to %q", s.name, s.peer.name))
	}
	m.peer = s
	s.peer = m
}

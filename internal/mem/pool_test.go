package mem

import "testing"

func TestPoolReuseAndAccounting(t *testing.T) {
	pl := NewPool()
	var a Allocator
	a.BindPool(pl)

	p1 := a.NewRequest(ReadReq, 0x1000, 64)
	if got := pl.Stats(); got.Allocs != 1 || got.Reuses != 0 || got.Live() != 1 {
		t.Fatalf("after first alloc: %+v", got)
	}
	p1.PushRoute(t, 3)
	p1.Release()
	if got := pl.Stats(); got.Releases != 1 || got.Live() != 0 {
		t.Fatalf("after release: %+v", got)
	}

	p2 := a.NewRequest(WriteReq, 0x2000, 32)
	if p2 != p1 {
		t.Fatal("pool did not recycle the released packet")
	}
	if got := pl.Stats(); got.Reuses != 1 || got.Live() != 1 {
		t.Fatalf("after reuse: %+v", got)
	}
	// The recycled packet must carry no trace of its previous life.
	if p2.Cmd != WriteReq || p2.Addr != 0x2000 || p2.Size != 32 ||
		p2.RouteDepth() != 0 || p2.Data != nil || p2.Posted || p2.Error || p2.Context != nil {
		t.Fatalf("recycled packet not reset: %+v", p2)
	}
	if p2.ID == p1.ID && p2.ID == 0 {
		t.Fatal("recycled packet did not get a fresh ID")
	}
}

func TestReleaseWithoutPoolIsNoop(t *testing.T) {
	p := NewPacket(ReadReq, 0, 4)
	p.Release() // must not panic or register anywhere

	req := NewPacket(ReadReq, 0x100, 4)
	errResp := req.MakeErrorResponse()
	errResp.Release() // synthesized completions are never pooled
}

func TestUnboundAllocatorStillWorks(t *testing.T) {
	var a Allocator
	p := a.NewRequest(ReadReq, 0x40, 8)
	if p.ID != 1 || p.Cmd != ReadReq {
		t.Fatalf("unbound allocator packet: %+v", p)
	}
	p.Release() // nil pool: no-op
}

// TestPoolSteadyStateZeroAlloc pins the whole point of the pool: once
// warm, an allocate/release cycle performs no heap allocation.
func TestPoolSteadyStateZeroAlloc(t *testing.T) {
	pl := NewPool()
	var a Allocator
	a.BindPool(pl)
	a.NewRequest(ReadReq, 0, 64).Release() // warm the free list

	if n := testing.AllocsPerRun(1000, func() {
		p := a.NewRequest(WriteReq, 0x1000, 64)
		p.Release()
	}); n != 0 {
		t.Fatalf("steady-state allocate/release costs %v allocs/op, want 0", n)
	}
}

func BenchmarkPooledRequest(b *testing.B) {
	b.ReportAllocs()
	pl := NewPool()
	var a Allocator
	a.BindPool(pl)
	for i := 0; i < b.N; i++ {
		a.NewRequest(ReadReq, uint64(i), 64).Release()
	}
}

func BenchmarkUnpooledRequest(b *testing.B) {
	b.ReportAllocs()
	var a Allocator
	for i := 0; i < b.N; i++ {
		a.NewRequest(ReadReq, uint64(i), 64).Release()
	}
}

package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrRangeBasics(t *testing.T) {
	r := Range(0x1000, 0x100)
	if !r.Valid() || r.Size() != 0x100 || r.Start != 0x1000 || r.End != 0x1100 {
		t.Fatalf("Range built %v", r)
	}
	if !r.Contains(0x1000) || !r.Contains(0x10ff) {
		t.Error("range should contain its endpoints-1")
	}
	if r.Contains(0xfff) || r.Contains(0x1100) {
		t.Error("range should be half-open")
	}
	if r.Offset(0x1080) != 0x80 {
		t.Error("bad Offset")
	}
	empty := Span(5, 5)
	if empty.Valid() || empty.Size() != 0 {
		t.Error("empty span should be invalid with size 0")
	}
}

func TestAddrRangeOffsetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Offset outside range should panic")
		}
	}()
	Range(0, 16).Offset(16)
}

func TestAddrRangeContainsRange(t *testing.T) {
	outer := Span(0x1000, 0x2000)
	if !outer.ContainsRange(Span(0x1000, 0x2000)) {
		t.Error("range contains itself")
	}
	if !outer.ContainsRange(Span(0x1800, 0x1900)) {
		t.Error("range contains interior")
	}
	if outer.ContainsRange(Span(0x0800, 0x1800)) || outer.ContainsRange(Span(0x1800, 0x2800)) {
		t.Error("partial overlap is not containment")
	}
	if !outer.ContainsRange(AddrRange{}) {
		t.Error("empty range is contained in anything")
	}
}

func TestAddrRangeOverlapsIntersect(t *testing.T) {
	a := Span(0x1000, 0x2000)
	b := Span(0x1800, 0x2800)
	c := Span(0x2000, 0x3000)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b overlap")
	}
	if a.Overlaps(c) {
		t.Error("adjacent half-open ranges do not overlap")
	}
	got := a.Intersect(b)
	if got.Start != 0x1800 || got.End != 0x2000 {
		t.Errorf("Intersect = %v", got)
	}
	if a.Intersect(c).Valid() {
		t.Error("disjoint intersect should be invalid")
	}
}

func TestRangeListQueries(t *testing.T) {
	l := RangeList{Span(0x1000, 0x2000), Span(0x4000, 0x5000)}
	if !l.Contains(0x1500) || !l.Contains(0x4000) {
		t.Error("list membership")
	}
	if l.Contains(0x3000) {
		t.Error("gap should not be contained")
	}
	if !l.ContainsRange(Span(0x4100, 0x4200)) {
		t.Error("subrange of member")
	}
	if l.ContainsRange(Span(0x1800, 0x4200)) {
		t.Error("spanning the gap is not contained")
	}
	if !l.Overlaps(Span(0x1f00, 0x3000)) {
		t.Error("overlap with first member")
	}
	if l.Overlaps(Span(0x2000, 0x4000)) {
		t.Error("gap does not overlap")
	}
}

func TestRangeListNormalize(t *testing.T) {
	l := RangeList{
		Span(0x3000, 0x4000),
		Span(0x1000, 0x2000),
		AddrRange{},          // dropped
		Span(0x2000, 0x3000), // adjacent: merges with both neighbours
		Span(0x8000, 0x9000),
		Span(0x8800, 0x8900), // nested: absorbed
	}
	n := l.Normalize()
	if len(n) != 2 {
		t.Fatalf("Normalize produced %v", n)
	}
	if n[0] != Span(0x1000, 0x4000) || n[1] != Span(0x8000, 0x9000) {
		t.Errorf("Normalize = %v", n)
	}
}

func TestRangeListUnion(t *testing.T) {
	a := RangeList{Span(0, 10)}
	b := RangeList{Span(5, 20), Span(30, 40)}
	u := a.Union(b)
	if len(u) != 2 || u[0] != Span(0, 20) || u[1] != Span(30, 40) {
		t.Errorf("Union = %v", u)
	}
}

// Property: intersection is commutative, contained in both operands, and
// non-empty exactly when the ranges overlap.
func TestAddrRangeIntersectionProperties(t *testing.T) {
	f := func(s1, l1, s2, l2 uint16) bool {
		a := Range(uint64(s1), uint64(l1))
		b := Range(uint64(s2), uint64(l2))
		i1, i2 := a.Intersect(b), b.Intersect(a)
		if i1 != i2 {
			return false
		}
		if i1.Valid() != a.Overlaps(b) {
			return false
		}
		if i1.Valid() && (!a.ContainsRange(i1) || !b.ContainsRange(i1)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after Normalize, members are sorted, disjoint, and
// membership of any address is preserved.
func TestRangeListNormalizeProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		var l RangeList
		for i := 0; i+1 < len(raw); i += 2 {
			l = append(l, Range(uint64(raw[i]), uint64(raw[i+1]%64)))
		}
		n := l.Normalize()
		for i := 1; i < len(n); i++ {
			if n[i-1].End >= n[i].Start { // must be disjoint and non-adjacent
				return false
			}
		}
		// Sampled membership equivalence.
		for probe := uint64(0); probe < 1<<16; probe += 97 {
			if l.Contains(probe) != n.Contains(probe) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

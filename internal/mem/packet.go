// Package mem provides the memory-system substrate the PCIe models are
// built on: request/response packets, address ranges, and the two-sided
// timing port protocol with retry-based backpressure.
//
// The design mirrors the gem5 memory system that the paper targets. All
// transactions — CPU loads/stores, configuration accesses, MMIO, and
// device DMA — are Packets transported through ports. The paper's link
// model deliberately reuses these packets as its transaction layer
// packets (TLPs): "we use gem5 request and response packets as TLPs and
// do not introduce another packet type" (§V-C).
package mem

import "fmt"

// Cmd identifies the kind of memory transaction a packet carries.
type Cmd uint8

// Packet commands. Requests travel from masters toward slaves; responses
// travel the opposite way along the same path.
const (
	InvalidCmd Cmd = iota
	ReadReq
	ReadResp
	WriteReq
	WriteResp
)

// String implements fmt.Stringer.
func (c Cmd) String() string {
	switch c {
	case ReadReq:
		return "ReadReq"
	case ReadResp:
		return "ReadResp"
	case WriteReq:
		return "WriteReq"
	case WriteResp:
		return "WriteResp"
	default:
		return fmt.Sprintf("Cmd(%d)", uint8(c))
	}
}

// IsRequest reports whether the command is a request.
func (c Cmd) IsRequest() bool { return c == ReadReq || c == WriteReq }

// IsResponse reports whether the command is a response.
func (c Cmd) IsResponse() bool { return c == ReadResp || c == WriteResp }

// IsRead reports whether the command moves data toward the requestor.
func (c Cmd) IsRead() bool { return c == ReadReq || c == ReadResp }

// IsWrite reports whether the command moves data toward the completer.
func (c Cmd) IsWrite() bool { return c == WriteReq || c == WriteResp }

// NeedsResponse reports whether a completer must answer the request.
// Like the paper's gem5 model — and unlike real PCIe — writes are
// non-posted: every write request receives a write response. The paper
// calls this out as one source of its bandwidth gap versus hardware.
func (c Cmd) NeedsResponse() bool { return c.IsRequest() }

// ResponseFor returns the response command matching a request command.
func (c Cmd) ResponseFor() Cmd {
	switch c {
	case ReadReq:
		return ReadResp
	case WriteReq:
		return WriteResp
	default:
		panic(fmt.Sprintf("mem: no response command for %v", c))
	}
}

// NoBus is the initial value of Packet.BusNum: "we create a PCI bus
// number field in the packet class, and initialize it to -1" (§V-A).
const NoBus = -1

// Packet is one memory transaction. A request packet travels from its
// requestor to the completer identified by Addr; the completer turns it
// into a response (see MakeResponse) that retraces the path.
//
// Packets are mutated in place as they move: components that need
// per-hop state push onto the route stack on the request path and pop it
// on the response path, exactly like gem5 crossbars track their ingress
// port.
type Packet struct {
	// ID is a unique (per Allocator) packet identity, stable across the
	// request/response transformation. It exists for tracing and for
	// requestors that juggle multiple outstanding transactions.
	ID uint64

	Cmd  Cmd
	Addr uint64
	// Size is the number of bytes read or written. For the PCIe models
	// it doubles as the TLP payload size: writes carry Size bytes of
	// payload, read requests carry none, read responses carry Size.
	Size int

	// Data optionally carries the payload. Timing models in this
	// repository move sizes, not bytes, on the hot path; Data is
	// populated for configuration/MMIO traffic where values matter.
	Data []byte

	// BusNum is the PCI bus number field the paper adds to the gem5
	// packet class for routing completions back through the PCI-Express
	// fabric. It starts at NoBus and is stamped by the first root
	// complex or switch slave port the request enters (§V-A).
	BusNum int

	// Posted marks a write that needs no completion, like a real
	// PCI-Express memory-write TLP. The paper's gem5 model does not
	// support posted writes and names that as a bandwidth limiter
	// (§VI-B); the flag exists to quantify exactly that ablation.
	// Completers drop posted requests after applying them instead of
	// generating a response.
	Posted bool

	// Context is an opaque tag owned by the original requestor; the
	// interconnect carries it through untouched.
	Context any

	// Error marks a synthesized error completion: the completer never
	// answered (completion timeout, dead link) and the root complex or
	// a DMA engine fabricated the response. Like real PCIe, the data
	// of an errored read is all-ones.
	Error bool

	route []routeHop

	// pool, when non-nil, is the Pool this packet was drawn from;
	// Release returns it there. Nil for directly-allocated packets
	// (tests, error completions), for which Release is a no-op.
	pool *Pool
}

type routeHop struct {
	owner any
	port  int
}

// NewPacket builds a request packet. Most callers go through an
// Allocator so IDs stay unique; NewPacket itself is for tests.
func NewPacket(cmd Cmd, addr uint64, size int) *Packet {
	return &Packet{Cmd: cmd, Addr: addr, Size: size, BusNum: NoBus}
}

// IDSource hands out packet IDs. sim.Engine implements it; binding
// allocators to the engine makes IDs unique across every requestor of
// one simulation (monotonic per engine, no global state), so a trace
// can follow one TLP through CPU, fabric, and device by ID alone.
type IDSource interface {
	NextPacketID() uint64
}

// Allocator hands out packets with unique IDs. It is a value type owned
// by whichever component originates traffic (CPU model, DMA engines).
// An unbound Allocator numbers packets from its own counter — enough
// for single-requestor tests; components in an assembled system call
// Bind so IDs are unique engine-wide.
type Allocator struct {
	next uint64
	src  IDSource
	pool *Pool
}

// Bind makes the allocator draw IDs from src (normally the engine).
func (a *Allocator) Bind(src IDSource) { a.src = src }

// BindPool makes the allocator recycle packets through the given pool;
// consumers release them with Packet.Release. A nil pool reverts to
// per-request heap allocation.
func (a *Allocator) BindPool(p *Pool) { a.pool = p }

// NewRequest allocates a request packet with the next free ID.
func (a *Allocator) NewRequest(cmd Cmd, addr uint64, size int) *Packet {
	if !cmd.IsRequest() {
		panic(fmt.Sprintf("mem: NewRequest with %v", cmd))
	}
	var id uint64
	if a.src != nil {
		id = a.src.NextPacketID()
	} else {
		a.next++
		id = a.next
	}
	p := a.pool.get()
	p.ID = id
	p.Cmd = cmd
	p.Addr = addr
	p.Size = size
	p.BusNum = NoBus
	return p
}

// PoolStats is the pool's allocation accounting.
type PoolStats struct {
	// Allocs counts fresh heap allocations (pool misses).
	Allocs uint64
	// Reuses counts packets served from the free list.
	Reuses uint64
	// Releases counts packets returned by Release.
	Releases uint64
}

// Live returns the number of packets currently checked out — the
// leak-check metric: a drained, fault-free simulation must return to
// zero. Packets legitimately stranded by fault injection (black-holed
// on a dead link, abandoned by a DMA timeout) stay checked out forever
// and show up here, which is exactly what the accounting is for.
func (s PoolStats) Live() uint64 { return s.Allocs + s.Reuses - s.Releases }

// Pool is a free list of Packets private to one simulation. It removes
// the per-transaction heap allocation from the request hot path: the
// requestor's Allocator draws packets from the pool and whoever
// consumes a packet (the requestor for completions, the completer for
// posted writes) calls Release.
//
// A released packet may still be referenced by a link replay buffer
// until the cumulative ACK arrives; the DLL layer tolerates this by
// snapshotting wire sizes at admission (see pcie.PciePkt), so a
// recycled packet is never re-read for timing. Pools are engine-local
// and therefore need no locking — sharing one across concurrently
// running simulations would be a data race.
type Pool struct {
	free  []*Packet
	stats PoolStats

	// Journal support for the parallel engine (SetJournal): when armed,
	// every get/Release appends its tick, and FoldPoolJournals replays
	// the per-domain journals in canonical order to reconstruct the
	// counters one shared serial pool would have reported.
	nowFn   func() uint64
	journal []poolJournalEntry
}

// poolJournalEntry is one pool transition: a checkout (get) or a
// Release, at a simulated tick.
type poolJournalEntry struct {
	tick uint64
	get  bool
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Stats returns the accounting counters.
func (pl *Pool) Stats() PoolStats { return pl.stats }

// SetJournal arms tick journaling using nowFn as the clock (nil
// disarms). The parallel topology builder arms every domain pool with
// its domain engine's clock; serial pools stay unarmed and pay
// nothing.
func (pl *Pool) SetJournal(nowFn func() uint64) { pl.nowFn = nowFn }

// get returns a recycled or fresh packet. A nil pool allocates.
func (pl *Pool) get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	if pl.nowFn != nil {
		pl.journal = append(pl.journal, poolJournalEntry{pl.nowFn(), true})
	}
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		pl.stats.Reuses++
		p.pool = pl
		return p
	}
	pl.stats.Allocs++
	return &Packet{pool: pl}
}

// FoldPoolJournals merges the pools' journals in canonical order —
// (tick, pool index, journal position) — and replays them against one
// imaginary shared pool: Allocs is the peak number of simultaneously
// live packets (a single free list allocates fresh exactly when live
// exceeds its previous peak), Reuses the remaining checkouts, Releases
// the returns. For a serial single-pool configuration this reproduces
// Pool.Stats exactly; for per-domain pools it reproduces what the
// serial run's shared pool reports, keeping the mem.pool.* golden keys
// byte-identical. Ordering inside one tick across domains follows pool
// index — the one residual ambiguity, pinned down by the golden suite.
func FoldPoolJournals(pools ...*Pool) PoolStats {
	idx := make([]int, len(pools))
	var s PoolStats
	var live, peak uint64
	for {
		best := -1
		for i, pl := range pools {
			if pl == nil || idx[i] >= len(pl.journal) {
				continue
			}
			if best < 0 || pl.journal[idx[i]].tick < pools[best].journal[idx[best]].tick {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := pools[best].journal[idx[best]]
		idx[best]++
		if e.get {
			live++
			if live > peak {
				peak = live
			}
		} else {
			live--
			s.Releases++
		}
	}
	var gets uint64
	for _, pl := range pools {
		if pl != nil {
			gets += pl.stats.Allocs + pl.stats.Reuses
		}
	}
	s.Allocs = peak
	s.Reuses = gets - peak
	return s
}

// Release returns a consumed packet to its pool. It is a no-op for
// packets that did not come from a pool (direct NewPacket allocations,
// synthesized error completions), so consumers can call it
// unconditionally. The caller must drop every reference: the packet's
// identity is dead and the object will be reissued. The route stack's
// backing array is kept so rerouted reuses do not reallocate it.
func (p *Packet) Release() {
	pl := p.pool
	if pl == nil {
		return
	}
	if pl.nowFn != nil {
		pl.journal = append(pl.journal, poolJournalEntry{pl.nowFn(), false})
	}
	route := p.route[:0]
	*p = Packet{route: route}
	pl.free = append(pl.free, p)
	pl.stats.Releases++
}

// MakeResponse converts the request packet into its response in place.
// Identity, address, size, bus number, route stack and context are
// preserved so the response can retrace the request path.
func (p *Packet) MakeResponse() *Packet {
	if !p.Cmd.IsRequest() {
		panic(fmt.Sprintf("mem: MakeResponse on %v", p.Cmd))
	}
	p.Cmd = p.Cmd.ResponseFor()
	return p
}

// MakeErrorResponse builds a NEW packet that answers p with an error
// completion. It does not mutate p: the original request may still be
// sitting in a link replay buffer or a device queue, so the synthesized
// completion must be an independent object. The route stack is cloned
// so the error completion retraces the request path; read data is
// all-ones, the value a real root complex returns for a failed
// non-posted request.
func (p *Packet) MakeErrorResponse() *Packet {
	if !p.Cmd.IsRequest() {
		panic(fmt.Sprintf("mem: MakeErrorResponse on %v", p.Cmd))
	}
	r := &Packet{
		ID:      p.ID,
		Cmd:     p.Cmd.ResponseFor(),
		Addr:    p.Addr,
		Size:    p.Size,
		BusNum:  p.BusNum,
		Context: p.Context,
		Error:   true,
		route:   append([]routeHop(nil), p.route...),
	}
	if r.Cmd.IsRead() && r.Size > 0 {
		r.Data = make([]byte, r.Size)
		for i := range r.Data {
			r.Data[i] = 0xff
		}
	}
	return r
}

// PushRoute records that the packet entered through port index port of
// the given component. The matching PopRoute on the response path
// returns the index.
func (p *Packet) PushRoute(owner any, port int) {
	p.route = append(p.route, routeHop{owner, port})
}

// PopRoute removes and returns the port recorded by the most recent
// PushRoute. The owner must match; a mismatch means a component forgot
// to pop its hop and would misroute every response after it, so it
// panics immediately instead.
func (p *Packet) PopRoute(owner any) int {
	if len(p.route) == 0 {
		panic(fmt.Sprintf("mem: PopRoute(%T) on packet %d with empty route", owner, p.ID))
	}
	hop := p.route[len(p.route)-1]
	if hop.owner != owner {
		panic(fmt.Sprintf("mem: PopRoute owner mismatch on packet %d: have %T, want %T",
			p.ID, owner, hop.owner))
	}
	p.route = p.route[:len(p.route)-1]
	return hop.port
}

// RouteDepth returns the number of un-popped hops; zero on a response
// means the packet is back at its requestor.
func (p *Packet) RouteDepth() int { return len(p.route) }

// String implements fmt.Stringer for trace output.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %v addr=%#x size=%d bus=%d", p.ID, p.Cmd, p.Addr, p.Size, p.BusNum)
}

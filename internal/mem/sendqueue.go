package mem

import (
	"fmt"

	"pciesim/internal/sim"
	"pciesim/internal/stats"
	"pciesim/internal/trace"
)

// SendQueue is a bounded FIFO of packets that become eligible to leave
// at individual ready times, used as the egress stage of every queueing
// component (bridge queues, crossbar layers, root-complex and switch
// port buffers). It encapsulates the fiddly part of the timing protocol:
// sending the head when it becomes ready, going quiescent on a refusal,
// and resuming when the peer's retry notification arrives.
type SendQueue struct {
	eng  *sim.Engine
	name string

	// capacity is the maximum number of queued packets; 0 means
	// unbounded. This is the paper's "port buffer size" knob in the
	// root complex and switch experiments (Fig 9(d)).
	capacity int

	// send makes one attempt to pass a packet on; it returns false on
	// refusal, after which the owner must eventually call RetryReceived.
	send func(*Packet) bool

	// onFree, if set, runs whenever a packet leaves a previously full
	// queue — the hook owners use to issue their own upstream retries.
	onFree func()

	entries []sendEntry
	sendEv  *sim.Event
	blocked bool // head was refused; waiting for peer retry

	// Stats.
	pushed   uint64
	sent     uint64
	refusals uint64
	maxDepth int

	// Registry hooks, resolved once at construction: occupancy gauge
	// and queueing-delay histogram (push to successful send, ticks).
	depth *stats.Gauge
	wait  *stats.Histogram

	// Span attribution (Segment): the latency segment this queue's
	// waits charge to, nil until spans are armed and a segment named.
	segName string
	seg     *stats.Histogram
}

type sendEntry struct {
	pkt      *Packet
	readyAt  sim.Tick
	pushedAt sim.Tick
}

// NewSendQueue creates a queue. capacity 0 means unbounded. Every
// queue self-registers under its name ("<component>...") in the
// engine's stats registry: pushed/sent/refusals counters read from the
// queue's own fields at dump time, a depth gauge, and a wait-time
// histogram — which is what makes backpressure visible uniformly
// across the crossbars, bridge, and PCIe port buffers.
func NewSendQueue(eng *sim.Engine, name string, capacity int, send func(*Packet) bool) *SendQueue {
	q := &SendQueue{eng: eng, name: name, capacity: capacity, send: send}
	q.sendEv = eng.NewEvent(name+".send", q.trySend)
	r := eng.Stats()
	r.CounterFunc(name+".pushed", func() uint64 { return q.pushed })
	r.CounterFunc(name+".sent", func() uint64 { return q.sent })
	r.CounterFunc(name+".refusals", func() uint64 { return q.refusals })
	q.depth = r.Gauge(name + ".depth")
	q.wait = r.Histogram(name + ".wait")
	return q
}

// OnFree registers the space-freed hook.
func (q *SendQueue) OnFree(fn func()) { q.onFree = fn }

// Segment names the latency-attribution segment this queue's waits
// belong to ("switch-arb", "xbar-q", "bridge-q"). When the engine has
// spans armed (sim.Engine.ArmSpans), each packet's push-to-send wait
// is observed into the shared seg.<name> histogram and bracketed with
// begin/end trace spans under trace.CatSpan. With spans unarmed the
// per-packet cost is one nil check — no histogram is registered, so
// dumps stay byte-identical.
func (q *SendQueue) Segment(name string) {
	q.segName = name
}

// segHist resolves the segment histogram lazily: arming happens after
// construction (obscli arms a freshly built platform), so the first
// armed send registers it.
func (q *SendQueue) segHist() *stats.Histogram {
	if q.seg == nil {
		q.seg = q.eng.Seg(q.segName)
	}
	return q.seg
}

// Len returns the current occupancy.
func (q *SendQueue) Len() int { return len(q.entries) }

// Full reports whether another Push would exceed capacity.
func (q *SendQueue) Full() bool { return q.capacity > 0 && len(q.entries) >= q.capacity }

// Capacity returns the configured bound (0 = unbounded).
func (q *SendQueue) Capacity() int { return q.capacity }

// Push enqueues pkt to become sendable at readyAt. It returns false,
// without queueing, when the queue is full — the caller then refuses its
// own ingress and relies on OnFree to know when to retry.
func (q *SendQueue) Push(pkt *Packet, readyAt sim.Tick) bool {
	if q.Full() {
		q.refusals++
		return false
	}
	if readyAt < q.eng.Now() {
		readyAt = q.eng.Now()
	}
	q.entries = append(q.entries, sendEntry{pkt, readyAt, q.eng.Now()})
	if len(q.entries) > q.maxDepth {
		q.maxDepth = len(q.entries)
	}
	q.pushed++
	q.depth.Set(int64(len(q.entries)))
	q.schedule()
	return true
}

// RetryReceived must be called by the owner when the downstream peer
// signals that a refused send may be re-attempted.
func (q *SendQueue) RetryReceived() {
	if !q.blocked {
		return
	}
	q.blocked = false
	q.schedule()
}

// QueueStats is a snapshot of a SendQueue's counters.
type QueueStats struct {
	Pushed   uint64 // packets accepted into the queue
	Sent     uint64 // packets successfully passed on
	Refused  uint64 // pushes refused for lack of space
	MaxDepth int    // high-water occupancy
}

// Stats returns a snapshot of the queue counters.
func (q *SendQueue) Stats() QueueStats {
	return QueueStats{Pushed: q.pushed, Sent: q.sent, Refused: q.refusals, MaxDepth: q.maxDepth}
}

func (q *SendQueue) schedule() {
	if q.blocked || len(q.entries) == 0 || q.sendEv.Scheduled() {
		return
	}
	when := q.entries[0].readyAt
	if when < q.eng.Now() {
		when = q.eng.Now()
	}
	q.eng.ScheduleEvent(q.sendEv, when, sim.PriorityDefault)
}

func (q *SendQueue) trySend() {
	if q.blocked || len(q.entries) == 0 {
		return
	}
	head := q.entries[0]
	if head.readyAt > q.eng.Now() {
		q.schedule()
		return
	}
	if !q.send(head.pkt) {
		// Refused: stay quiescent until RetryReceived.
		q.blocked = true
		return
	}
	// Fullness is sampled after the send: a reentrant push during the
	// send can fill the queue, and that full->not-full edge on the pop
	// below must still fire onFree.
	wasFull := q.Full()
	q.sent++
	q.wait.Observe(uint64(q.eng.Now() - head.pushedAt))
	if q.segName != "" && q.eng.SpansOn() {
		q.segHist().Observe(uint64(q.eng.Now() - head.pushedAt))
		if tr := q.eng.Tracer(); tr.On(trace.CatSpan) {
			tr.Span(uint64(head.pushedAt), uint64(q.eng.Now()), q.name, q.segName, head.pkt.ID, "")
		}
	}
	copy(q.entries, q.entries[1:])
	q.entries[len(q.entries)-1] = sendEntry{}
	q.entries = q.entries[:len(q.entries)-1]
	q.depth.Set(int64(len(q.entries)))
	if wasFull && q.onFree != nil {
		q.onFree()
	}
	q.schedule()
}

// String summarizes the queue state for debugging.
func (q *SendQueue) String() string {
	return fmt.Sprintf("%s[%d/%d blocked=%v]", q.name, len(q.entries), q.capacity, q.blocked)
}

package mem

import (
	"testing"

	"pciesim/internal/sim"
)

// mockSlave accepts or refuses requests on demand and records traffic.
type mockSlave struct {
	port     *SlavePort
	accept   bool
	received []*Packet
	retries  int
	ranges   RangeList
}

func newMockSlave(name string) *mockSlave {
	s := &mockSlave{accept: true}
	s.port = NewSlavePort(name, s)
	return s
}

func (s *mockSlave) RecvTimingReq(_ *SlavePort, pkt *Packet) bool {
	if !s.accept {
		return false
	}
	s.received = append(s.received, pkt)
	return true
}
func (s *mockSlave) RecvRespRetry(*SlavePort)        { s.retries++ }
func (s *mockSlave) AddrRanges(*SlavePort) RangeList { return s.ranges }

// mockMaster mirrors mockSlave for the response direction.
type mockMaster struct {
	port     *MasterPort
	accept   bool
	received []*Packet
	retries  int
}

func newMockMaster(name string) *mockMaster {
	m := &mockMaster{accept: true}
	m.port = NewMasterPort(name, m)
	return m
}

func (m *mockMaster) RecvTimingResp(_ *MasterPort, pkt *Packet) bool {
	if !m.accept {
		return false
	}
	m.received = append(m.received, pkt)
	return true
}
func (m *mockMaster) RecvReqRetry(*MasterPort) { m.retries++ }

func TestConnectPairsPorts(t *testing.T) {
	m, s := newMockMaster("m"), newMockSlave("s")
	Connect(m.port, s.port)
	if m.port.Peer() != s.port || s.port.Peer() != m.port {
		t.Fatal("peers not set")
	}
	if !m.port.Connected() || !s.port.Connected() {
		t.Fatal("Connected() should be true")
	}
}

func TestConnectTwicePanics(t *testing.T) {
	m, s := newMockMaster("m"), newMockSlave("s")
	Connect(m.port, s.port)
	s2 := newMockSlave("s2")
	defer func() {
		if recover() == nil {
			t.Error("re-connecting a connected port should panic")
		}
	}()
	Connect(m.port, s2.port)
}

func TestSendTimingReqDelivery(t *testing.T) {
	m, s := newMockMaster("m"), newMockSlave("s")
	Connect(m.port, s.port)
	pkt := NewPacket(ReadReq, 0x100, 4)
	if !m.port.SendTimingReq(pkt) {
		t.Fatal("accepting slave refused")
	}
	if len(s.received) != 1 || s.received[0] != pkt {
		t.Fatal("packet not delivered")
	}
}

func TestRefusalAndRetryFlow(t *testing.T) {
	m, s := newMockMaster("m"), newMockSlave("s")
	Connect(m.port, s.port)
	s.accept = false
	pkt := NewPacket(WriteReq, 0x100, 64)
	if m.port.SendTimingReq(pkt) {
		t.Fatal("refusing slave accepted")
	}
	// Slave later frees space and must notify the master.
	s.accept = true
	s.port.SendReqRetry()
	if m.retries != 1 {
		t.Fatalf("master saw %d retries, want 1", m.retries)
	}
	if !m.port.SendTimingReq(pkt) {
		t.Fatal("retried send refused")
	}
}

func TestResponsePathAndRetry(t *testing.T) {
	m, s := newMockMaster("m"), newMockSlave("s")
	Connect(m.port, s.port)
	resp := NewPacket(ReadReq, 0x100, 4).MakeResponse()
	m.accept = false
	if s.port.SendTimingResp(resp) {
		t.Fatal("refusing master accepted")
	}
	m.accept = true
	m.port.SendRespRetry()
	if s.retries != 1 {
		t.Fatalf("slave saw %d retries, want 1", s.retries)
	}
	if !s.port.SendTimingResp(resp) {
		t.Fatal("retried response refused")
	}
	if len(m.received) != 1 {
		t.Fatal("response not delivered")
	}
}

func TestSendWrongDirectionPanics(t *testing.T) {
	m, s := newMockMaster("m"), newMockSlave("s")
	Connect(m.port, s.port)
	t.Run("response via SendTimingReq", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		m.port.SendTimingReq(NewPacket(ReadReq, 0, 4).MakeResponse())
	})
	t.Run("request via SendTimingResp", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		s.port.SendTimingResp(NewPacket(ReadReq, 0, 4))
	})
}

func TestUnconnectedSendPanics(t *testing.T) {
	m := newMockMaster("m")
	defer func() {
		if recover() == nil {
			t.Error("send on unconnected port should panic")
		}
	}()
	m.port.SendTimingReq(NewPacket(ReadReq, 0, 4))
}

func TestSlavePortRanges(t *testing.T) {
	s := newMockSlave("s")
	s.ranges = RangeList{Span(0x1000, 0x2000)}
	got := s.port.Ranges()
	if len(got) != 1 || got[0] != Span(0x1000, 0x2000) {
		t.Errorf("Ranges = %v", got)
	}
}

func TestSendQueueDeliversInOrderWithDelay(t *testing.T) {
	eng := sim.NewEngine()
	var delivered []uint64
	var deliveredAt []sim.Tick
	q := NewSendQueue(eng, "q", 0, func(p *Packet) bool {
		delivered = append(delivered, p.Addr)
		deliveredAt = append(deliveredAt, eng.Now())
		return true
	})
	q.Push(NewPacket(ReadReq, 1, 4), 100)
	q.Push(NewPacket(ReadReq, 2, 4), 50) // later entry, earlier ready: still FIFO
	q.Push(NewPacket(ReadReq, 3, 4), 200)
	eng.Run()
	if len(delivered) != 3 || delivered[0] != 1 || delivered[1] != 2 || delivered[2] != 3 {
		t.Fatalf("delivered %v, want FIFO order", delivered)
	}
	if deliveredAt[0] != 100 || deliveredAt[1] != 100 || deliveredAt[2] != 200 {
		t.Errorf("delivery times %v, want [100 100 200]", deliveredAt)
	}
}

func TestSendQueueCapacityAndOnFree(t *testing.T) {
	eng := sim.NewEngine()
	sink := func(*Packet) bool { return true }
	q := NewSendQueue(eng, "q", 2, sink)
	freed := 0
	q.OnFree(func() { freed++ })
	if !q.Push(NewPacket(ReadReq, 1, 4), 10) || !q.Push(NewPacket(ReadReq, 2, 4), 10) {
		t.Fatal("pushes under capacity refused")
	}
	if !q.Full() {
		t.Fatal("queue should be full at capacity")
	}
	if q.Push(NewPacket(ReadReq, 3, 4), 10) {
		t.Fatal("push over capacity accepted")
	}
	eng.Run()
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d", q.Len())
	}
	if freed != 1 {
		t.Errorf("onFree ran %d times, want 1 (only the full->not-full edge)", freed)
	}
	if st := q.Stats(); st.Pushed != 2 || st.Sent != 2 || st.Refused != 1 || st.MaxDepth != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSendQueueBlocksOnRefusalUntilRetry(t *testing.T) {
	eng := sim.NewEngine()
	accept := false
	var delivered int
	q := NewSendQueue(eng, "q", 0, func(*Packet) bool {
		if !accept {
			return false
		}
		delivered++
		return true
	})
	q.Push(NewPacket(ReadReq, 1, 4), 0)
	q.Push(NewPacket(ReadReq, 2, 4), 0)
	eng.Run()
	if delivered != 0 {
		t.Fatal("delivered despite refusals")
	}
	// Peer signals space; queue should resume and drain fully.
	accept = true
	q.RetryReceived()
	eng.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d after retry, want 2", delivered)
	}
}

func TestSendQueueRetryWithoutBlockIsNoop(t *testing.T) {
	eng := sim.NewEngine()
	q := NewSendQueue(eng, "q", 0, func(*Packet) bool { return true })
	q.RetryReceived() // must not panic or schedule anything
	if eng.Pending() != 0 {
		t.Error("spurious event scheduled")
	}
}

func TestSendQueuePastReadyTimeClamped(t *testing.T) {
	eng := sim.NewEngine()
	eng.Schedule("advance", 1000, func() {})
	eng.Run()
	var at sim.Tick
	q := NewSendQueue(eng, "q", 0, func(*Packet) bool { at = eng.Now(); return true })
	q.Push(NewPacket(ReadReq, 1, 4), 5) // readyAt in the past
	eng.Run()
	if at != 1000 {
		t.Errorf("delivered at %v, want clamped to now (1000)", at)
	}
}

package phys

import (
	"testing"

	"pciesim/internal/sim"
)

func TestDeviceLevelBandwidth(t *testing.T) {
	c := DefaultConfig()
	// Gen2 x1 effective payload bandwidth: 4 Gb/s line payload rate
	// minus per-TLP overheads. 128 B payload per 148 wire bytes at
	// 4 Gb/s effective = ~3.46 Gb/s.
	got := c.DeviceGbps()
	if got < 3.3 || got > 3.6 {
		t.Errorf("device-level throughput = %.3f Gb/s, want ~3.46", got)
	}
}

func TestLinkTimePerSector(t *testing.T) {
	c := DefaultConfig()
	// 32 TLPs of 148 wire bytes at 2ns/byte on x1 = 32*296ns = 9.472us.
	if got := c.LinkTimePerSector(); got != 32*296*sim.Nanosecond {
		t.Errorf("sector link time = %v", got)
	}
}

func TestDDThroughputRisesWithBlockSize(t *testing.T) {
	c := DefaultConfig()
	var prev float64
	for _, mb := range []uint64{64, 128, 256, 512} {
		got := c.DDThroughputGbps(mb << 20)
		if got <= prev {
			t.Errorf("throughput at %dMB = %.3f not increasing", mb, got)
		}
		prev = got
	}
	// The asymptote is the device-level number minus request overheads.
	if prev >= c.DeviceGbps() {
		t.Error("dd throughput cannot exceed the device-level bound")
	}
	if prev < 0.8*c.DeviceGbps() {
		t.Errorf("512MB dd throughput %.3f too far below device level %.3f", prev, c.DeviceGbps())
	}
}

func TestPhysSitsAboveGem5Model(t *testing.T) {
	// The paper's validation: the simulated IDE-disk setup reaches
	// 80-90% of phys. The phys asymptote must exceed the simulated
	// model's ~2.3-2.7 Gb/s range but stay under the 4 Gb/s link bound.
	c := DefaultConfig()
	v := c.DDThroughputGbps(512 << 20)
	if v < 2.8 || v > 4.0 {
		t.Errorf("phys 512MB dd throughput = %.3f Gb/s, out of plausible range", v)
	}
}

// Package phys is the stand-in for the paper's physical validation
// testbed (§VI-A): an Intel Xeon E5-2660 v4 host with an Intel DC p3700
// NVMe SSD attached to a PCH x1 PCI-Express slot, making a Gen 2 x1
// link the deliberate bottleneck. We do not have that hardware, so the
// "phys" series of Fig 9(a) is regenerated from an analytical model of
// the same bottleneck: the link's line rate, its 8b/10b encoding, the
// per-TLP protocol overheads, posted writes (unlike the gem5 model),
// and a host-side per-command overhead. Every parameter is stated by
// the paper or the PCI-Express specification; nothing is fitted to the
// figure.
package phys

import (
	"pciesim/internal/pcie"
	"pciesim/internal/sim"
)

// Config describes the physical reference setup.
type Config struct {
	// Gen and Width describe the bottleneck link (Gen2 x1 in §VI-A:
	// "This limits the offered PCI-Express bandwidth to 5 Gbps in each
	// direction"; 4 Gb/s effective after 8b/10b).
	Gen   pcie.Generation
	Width int
	// MaxPayload is the TLP payload size the SSD uses per memory write
	// (128 B is the common PCH-limited MPS).
	MaxPayload int
	// Overheads is the Table I per-TLP overhead model.
	Overheads pcie.Overheads
	// SectorBytes is the transfer unit of the dd workload (4 KiB).
	SectorBytes int
	// RequestBytes is the host block-layer request size.
	RequestBytes int
	// PerRequestOverhead is the host-side submission+completion cost
	// per request (NVMe queue pair doorbell, interrupt, block layer).
	PerRequestOverhead sim.Tick
	// PerSectorOverhead is the host-side per-4KiB completion work; the
	// testbed runs the same dd + O_DIRECT kernel path as the simulated
	// OS model, so the same order of per-page cost applies.
	PerSectorOverhead sim.Tick
	// StartupOverhead is dd's fixed process/open cost.
	StartupOverhead sim.Tick
}

// DefaultConfig returns the §VI-A testbed parameters.
func DefaultConfig() Config {
	return Config{
		Gen:                pcie.Gen2,
		Width:              1,
		MaxPayload:         128,
		Overheads:          pcie.DefaultOverheads(),
		SectorBytes:        4096,
		RequestBytes:       128 * 1024,
		PerRequestOverhead: 6 * sim.Microsecond,
		PerSectorOverhead:  1500 * sim.Nanosecond,
		StartupOverhead:    10 * sim.Millisecond,
	}
}

// LinkTimePerSector returns the wire time to move one sector of payload
// upstream as posted write TLPs (real PCI-Express memory writes carry
// no completion, unlike the simulated gem5 packets — the paper names
// this difference as one source of its model's bandwidth gap).
func (c Config) LinkTimePerSector() sim.Tick {
	tlps := (c.SectorBytes + c.MaxPayload - 1) / c.MaxPayload
	perTLP := pcie.WireTime(c.Gen, c.Width, c.Overheads.TLPWireBytes(c.MaxPayload))
	return sim.Tick(tlps) * perTLP
}

// DeviceGbps returns the sector payload throughput at the device level,
// excluding host overheads.
func (c Config) DeviceGbps() float64 {
	t := c.LinkTimePerSector()
	return float64(c.SectorBytes) * 8 / t.Seconds() / 1e9
}

// DDThroughputGbps returns the dd-reported throughput for a single
// block of the given size: the link moves sectors back to back while
// the host pays a fixed startup cost plus a per-request cost.
func (c Config) DDThroughputGbps(blockBytes uint64) float64 {
	sectors := blockBytes / uint64(c.SectorBytes)
	requests := (blockBytes + uint64(c.RequestBytes) - 1) / uint64(c.RequestBytes)
	total := c.StartupOverhead +
		sim.Tick(sectors)*(c.LinkTimePerSector()+c.PerSectorOverhead) +
		sim.Tick(requests)*c.PerRequestOverhead
	return float64(blockBytes) * 8 / total.Seconds() / 1e9
}

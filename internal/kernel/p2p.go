package kernel

import (
	"fmt"

	"pciesim/internal/sim"
	"pciesim/internal/stats"
)

// P2PConfig parameterizes the peer-to-peer DMA workload: the disk is
// programmed to DMA sector data from a peer endpoint's BAR instead of
// from DRAM, so every chunk is a non-posted read that either turns
// around at the shared switch or reflects off the root complex.
type P2PConfig struct {
	// Commands is the number of DMA commands issued back-to-back.
	Commands int
	// SectorsPerCmd is the sector count per command.
	SectorsPerCmd uint32
	// TargetAddr is the peer BAR address the disk DMA-reads from. It
	// should point at a register-free region of the peer's BAR.
	TargetAddr uint64
	// PerCommandOverhead models the submission-path CPU cost.
	PerCommandOverhead sim.Tick
}

// P2PResult reports one peer-to-peer run.
type P2PResult struct {
	Commands int
	Bytes    uint64
	Errors   int
	Elapsed  sim.Tick
	// CmdLat summarizes the per-command round trip: submission write
	// through completion interrupt.
	CmdLat LatencySummary
}

// ThroughputGbps is the aggregate peer-to-peer transfer rate.
func (r P2PResult) ThroughputGbps() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Elapsed.Seconds() / 1e9
}

// String implements fmt.Stringer.
func (r P2PResult) String() string {
	s := fmt.Sprintf("%d commands, %d bytes in %v (%.3f Gb/s), latency %v",
		r.Commands, r.Bytes, r.Elapsed, r.ThroughputGbps(), r.CmdLat)
	if r.Errors > 0 {
		s += fmt.Sprintf(", %d errored", r.Errors)
	}
	return s
}

// RunP2P drives peer-to-peer DMA: each command programs the disk to
// write SectorsPerCmd sectors whose source buffer is TargetAddr — the
// disk's DMA engine reads the peer's BAR chunk by chunk through the
// fabric. Per-command latency isolates the routing path under test
// (switch turnaround vs. root-complex reflection).
func RunP2P(t *Task, h *DiskHandle, cfg P2PConfig) (P2PResult, error) {
	if cfg.Commands == 0 {
		cfg.Commands = 16
	}
	if cfg.SectorsPerCmd == 0 {
		cfg.SectorsPerCmd = 1
	}
	start := t.Now()
	lat := new(stats.Histogram)
	cum := t.Stats().Histogram("p2p.command_latency")

	var errored int
	var moved uint64
	for i := 0; i < cfg.Commands; i++ {
		t.Delay(cfg.PerCommandOverhead)
		before := t.Now()
		// WriteSectors = memory -> device: the DMA engine issues
		// non-posted reads of TargetAddr, which lives in the peer's BAR.
		if err := h.WriteSectors(t, 0, cfg.SectorsPerCmd, cfg.TargetAddr); err != nil {
			errored++
		}
		d := uint64(t.Now() - before)
		lat.Observe(d)
		cum.Observe(d)
		moved += uint64(cfg.SectorsPerCmd) * uint64(h.SectorSize)
	}
	return P2PResult{
		Commands: cfg.Commands,
		Bytes:    moved,
		Errors:   errored,
		Elapsed:  t.Now() - start,
		CmdLat: LatencySummary{
			P50: sim.Tick(lat.Quantile(0.50)),
			P95: sim.Tick(lat.Quantile(0.95)),
			P99: sim.Tick(lat.Quantile(0.99)),
			Max: sim.Tick(lat.Max()),
		},
	}, nil
}

package kernel

import (
	"fmt"

	"pciesim/internal/sim"
	"pciesim/internal/stats"
)

// DDConfig parameterizes the dd workload model of §VI-A: "dd simply
// floods the storage device with read/write accesses... we only
// transfer a single block of data at a time, with a block size varied
// between 64MB and 512MB. We run dd with direct IO to avoid the page
// cache lookup overhead."
//
// The overhead knobs stand in for the Linux kernel the paper boots on
// gem5; they are calibrated once (see system.DefaultCalibration) and
// then held fixed across every experiment.
type DDConfig struct {
	// BlockBytes is dd's bs= value; a single block is transferred.
	BlockBytes uint64
	// RequestBytes is the block-layer request size the transfer is
	// split into (max_sectors_kb; 128 KiB by default).
	RequestBytes int
	// BufAddr is the DRAM address of dd's O_DIRECT user buffer.
	BufAddr uint64
	// Write flips the transfer direction to `dd of=/dev/disk`: the
	// device DMA-reads the user buffer, so the data rides downstream
	// read completions instead of upstream posted writes.
	Write bool

	// StartupOverhead models process start, open(2), and allocation —
	// the fixed cost amortized by larger block sizes.
	StartupOverhead sim.Tick
	// PerRequestOverhead models the syscall, block layer, and driver
	// submission path per request.
	PerRequestOverhead sim.Tick
	// PerSectorOverhead models per-4KiB completion work (bio/page
	// accounting under O_DIRECT).
	PerSectorOverhead sim.Tick
	// InterruptOverhead models the IRQ path and context switch per
	// request completion.
	InterruptOverhead sim.Tick
}

// LatencySummary condenses a per-request latency distribution into the
// quantiles a sweep table can print. Quantiles are log2-bucket upper
// bounds (see internal/stats), so they overstate by at most 2x.
type LatencySummary struct {
	P50, P95, P99, Max sim.Tick
}

// String implements fmt.Stringer.
func (l LatencySummary) String() string {
	return fmt.Sprintf("p50=%v p95=%v p99=%v max=%v", l.P50, l.P95, l.P99, l.Max)
}

// DDResult reports one dd run.
type DDResult struct {
	Bytes    uint64
	Requests int
	// Errors counts requests that failed (device error status or
	// command timeout). Like real dd without conv=noerror the data is
	// lost, but the run itself completes and reports the damage.
	Errors  int
	Elapsed sim.Tick
	// ReqLat summarizes the per-request round trip: submission write
	// through completion interrupt, excluding the modeled CPU overheads.
	ReqLat LatencySummary
}

// ThroughputGbps is the number dd prints: bytes over wall time.
func (r DDResult) ThroughputGbps() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Elapsed.Seconds() / 1e9
}

// String implements fmt.Stringer.
func (r DDResult) String() string {
	s := fmt.Sprintf("%d bytes in %v (%.3f Gb/s, %d requests)",
		r.Bytes, r.Elapsed, r.ThroughputGbps(), r.Requests)
	if r.Errors > 0 {
		s += fmt.Sprintf(", %d errored", r.Errors)
	}
	return s
}

// RunDD models `dd if=/dev/disk of=/dev/zero bs=<block> count=1
// iflag=direct` (or, with cfg.Write, `dd if=/dev/zero of=/dev/disk
// oflag=direct`): the block is split into block-layer requests, each
// submitted to the disk as one DMA command; the task burns the
// configured CPU overheads around the hardware interactions exactly
// where a real kernel would.
func RunDD(t *Task, h *DiskHandle, cfg DDConfig) (DDResult, error) {
	if cfg.RequestBytes == 0 {
		cfg.RequestBytes = 128 * 1024
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 64 << 20
	}
	secSize := uint64(h.SectorSize)
	start := t.Now()
	t.Delay(cfg.StartupOverhead)

	// Per-run request-latency distribution; also folded into the
	// registry's cumulative "dd.request_latency" histogram for dumps.
	reqLat := new(stats.Histogram)
	cumLat := t.Stats().Histogram("dd.request_latency")

	var moved uint64
	var requests, errored int
	lba := uint64(0)
	for moved < cfg.BlockBytes {
		n := uint64(cfg.RequestBytes)
		if n > cfg.BlockBytes-moved {
			n = cfg.BlockBytes - moved
		}
		sectors := (n + secSize - 1) / secSize

		// Submission path.
		t.Delay(cfg.PerRequestOverhead)
		before := t.Now()
		if err := h.Transfer(t, cfg.Write, lba, uint32(sectors), cfg.BufAddr+(moved%(64<<20))); err != nil {
			// Count the failure and move on to the next request, as dd
			// does: a single bad request must not hang or abort the run.
			errored++
		}
		lat := uint64(t.Now() - before)
		reqLat.Observe(lat)
		cumLat.Observe(lat)
		// Completion path: IRQ exit plus per-page bio completion work.
		t.Delay(cfg.InterruptOverhead + cfg.PerSectorOverhead*sim.Tick(sectors))

		moved += sectors * secSize
		lba += sectors
		requests++
	}
	return DDResult{
		Bytes: moved, Requests: requests, Errors: errored, Elapsed: t.Now() - start,
		ReqLat: LatencySummary{
			P50: sim.Tick(reqLat.Quantile(0.50)),
			P95: sim.Tick(reqLat.Quantile(0.95)),
			P99: sim.Tick(reqLat.Quantile(0.99)),
			Max: sim.Tick(reqLat.Max()),
		},
	}, nil
}

// MMIOProbeResult reports the §VI kernel-module register-read
// experiment (Table II).
type MMIOProbeResult struct {
	Samples int
	Total   sim.Tick
	Min     sim.Tick
	Max     sim.Tick
}

// Avg returns the mean access latency.
func (r MMIOProbeResult) Avg() sim.Tick {
	if r.Samples == 0 {
		return 0
	}
	return r.Total / sim.Tick(r.Samples)
}

// MMIOProbe performs n back-to-back 4-byte MMIO reads of addr and
// measures each round trip: "We create a kernel module and measure the
// time taken to access a location in the NIC memory space" (§VI-B).
func MMIOProbe(t *Task, addr uint64, n int) MMIOProbeResult {
	res := MMIOProbeResult{Samples: n, Min: sim.MaxTick}
	for i := 0; i < n; i++ {
		before := t.Now()
		t.Read32(addr)
		lat := t.Now() - before
		res.Total += lat
		if lat < res.Min {
			res.Min = lat
		}
		if lat > res.Max {
			res.Max = lat
		}
	}
	return res
}

package kernel

import (
	"testing"

	"pciesim/internal/mem"
	"pciesim/internal/pci"
	"pciesim/internal/sim"
)

// enumRig wires a CPU directly to a PCI host and pre-registers a small
// hierarchy of bare configuration spaces:
//
//	bus 0: dev0 = endpoint A (two BARs), dev1 = bridge
//	bus 1 (behind the bridge): dev0 = endpoint B
type enumRig struct {
	eng    *sim.Engine
	cpu    *CPU
	host   *pci.Host
	epA    *pci.ConfigSpace
	bridge *pci.ConfigSpace
	epB    *pci.ConfigSpace
}

func newEnumRig() *enumRig {
	r := &enumRig{eng: sim.NewEngine()}
	r.cpu = NewCPU(r.eng, "cpu")
	r.host = pci.NewHost(r.eng, "host", pci.HostConfig{
		ECAMWindow: mem.Range(0x30000000, 256<<20),
		Latency:    50 * sim.Nanosecond,
	})
	mem.Connect(r.cpu.Port(), r.host.Port())

	r.epA = pci.NewType0Space("epA", pci.Ident{VendorID: 0x1111, DeviceID: 0x0001, InterruptPin: 1})
	r.epA.AttachBAR(0, pci.NewMemBAR(64*1024))
	r.epA.AttachBAR(1, pci.NewIOBAR(256))
	r.host.Register(pci.NewBDF(0, 0, 0), r.epA)

	r.bridge = pci.NewType1Space("br", pci.Ident{VendorID: 0x1111, DeviceID: 0x0002, ClassCode: pci.ClassBridgePCI})
	r.host.Register(pci.NewBDF(0, 1, 0), r.bridge)

	r.epB = pci.NewType0Space("epB", pci.Ident{VendorID: 0x1111, DeviceID: 0x0003, InterruptPin: 1})
	r.epB.AttachBAR(0, pci.NewMemBAR(1<<20))
	r.host.Register(pci.NewBDF(1, 0, 0), r.epB)
	return r
}

func (r *enumRig) enumerate(t *testing.T) *Topology {
	t.Helper()
	var topo *Topology
	task := r.cpu.Spawn("enum", 0, func(tk *Task) {
		topo = Enumerate(tk, DefaultEnumConfig())
	})
	r.eng.Run()
	if !task.Done() {
		t.Fatal("enumeration wedged")
	}
	return topo
}

func TestEnumerateDiscoversAll(t *testing.T) {
	r := newEnumRig()
	topo := r.enumerate(t)
	if len(topo.All) != 3 {
		t.Fatalf("found %d functions, want 3", len(topo.All))
	}
	if len(topo.Root) != 2 {
		t.Fatalf("bus 0 has %d functions, want 2", len(topo.Root))
	}
	br := topo.FindByID(0x1111, 0x0002)
	if br == nil || !br.IsBridge {
		t.Fatal("bridge not identified")
	}
	if len(br.Children) != 1 || br.Children[0].DeviceID != 0x0003 {
		t.Fatal("bridge children wrong")
	}
	if br.Secondary != 1 || br.Subordinate != 1 {
		t.Errorf("bridge buses %d/%d, want 1/1", br.Secondary, br.Subordinate)
	}
	if topo.Buses != 2 {
		t.Errorf("buses = %d", topo.Buses)
	}
}

func TestEnumerateBARAssignment(t *testing.T) {
	r := newEnumRig()
	topo := r.enumerate(t)
	a := topo.FindByID(0x1111, 0x0001)
	if len(a.BARs) != 2 {
		t.Fatalf("epA has %d BARs, want 2", len(a.BARs))
	}
	memBAR, ioBAR := a.BARs[0], a.BARs[1]
	if memBAR.IsIO || !ioBAR.IsIO {
		t.Fatal("BAR kinds wrong")
	}
	if memBAR.Size != 64*1024 || ioBAR.Size != 256 {
		t.Errorf("sizes %#x/%#x", memBAR.Size, ioBAR.Size)
	}
	if memBAR.Addr%memBAR.Size != 0 {
		t.Errorf("mem BAR %#x not naturally aligned", memBAR.Addr)
	}
	cfg := DefaultEnumConfig()
	if !cfg.MemWindow.Contains(memBAR.Addr) {
		t.Errorf("mem BAR %#x outside platform window", memBAR.Addr)
	}
	if !cfg.IOWindow.Contains(ioBAR.Addr) {
		t.Errorf("I/O BAR %#x outside platform I/O window", ioBAR.Addr)
	}
	// The device must have been programmed, not just recorded.
	if got := r.epA.BARAt(0).Addr(); got != memBAR.Addr {
		t.Errorf("device BAR register %#x, recorded %#x", got, memBAR.Addr)
	}
}

func TestEnumerateBridgeWindowsCoverChildren(t *testing.T) {
	r := newEnumRig()
	topo := r.enumerate(t)
	b := topo.FindByID(0x1111, 0x0003).BARs[0]
	base, limit := pci.BridgeMemWindow(r.bridge)
	if !pci.WindowEnabled(base, limit) {
		t.Fatal("bridge memory window not programmed")
	}
	if b.Addr < base || b.Addr+b.Size-1 > limit {
		t.Errorf("child BAR %#x+%#x outside bridge window %#x..%#x", b.Addr, b.Size, base, limit)
	}
	// The bridge window must not overlap the sibling endpoint's BAR.
	a := topo.FindByID(0x1111, 0x0001).BARs[0]
	if a.Addr >= base && a.Addr <= limit {
		t.Errorf("sibling BAR %#x inside bridge window %#x..%#x", a.Addr, base, limit)
	}
	// Bus-number registers must match the discovered topology.
	pri, sec, sub := pci.BridgeBusNumbers(r.bridge)
	if pri != 0 || sec != 1 || sub != 1 {
		t.Errorf("bridge bus regs %d/%d/%d", pri, sec, sub)
	}
	// I/O window with no downstream I/O BARs must decode closed.
	iob, iol := pci.BridgeIOWindow(r.bridge)
	if pci.WindowEnabled(iob, iol) {
		t.Errorf("empty I/O window decodes open: %#x..%#x", iob, iol)
	}
}

func TestEnumerateEnablesDevices(t *testing.T) {
	r := newEnumRig()
	r.enumerate(t)
	if r.epA.Word(pci.RegCommand)&pci.CmdMemEnable == 0 {
		t.Error("endpoint memory decoding not enabled")
	}
	cmd := r.bridge.Word(pci.RegCommand)
	if cmd&pci.CmdBusMaster == 0 || cmd&pci.CmdMemEnable == 0 {
		t.Error("bridge forwarding/mastering not enabled")
	}
}

func TestEnumerateAssignsDistinctIRQs(t *testing.T) {
	r := newEnumRig()
	topo := r.enumerate(t)
	eps := topo.Endpoints()
	if len(eps) != 2 {
		t.Fatal("want two endpoints")
	}
	if eps[0].IRQ == eps[1].IRQ {
		t.Error("endpoints share an IRQ line")
	}
	if got := r.epA.Byte(pci.RegIntLine); int(got) != eps[0].IRQ {
		t.Errorf("interrupt line register %d, recorded %d", got, eps[0].IRQ)
	}
}

func TestEnumerateEmptyBusTerminates(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, "cpu")
	host := pci.NewHost(eng, "host", pci.HostConfig{ECAMWindow: mem.Range(0x30000000, 256<<20)})
	mem.Connect(cpu.Port(), host.Port())
	var topo *Topology
	cpu.Spawn("enum", 0, func(tk *Task) { topo = Enumerate(tk, DefaultEnumConfig()) })
	eng.Run()
	if topo == nil || len(topo.All) != 0 {
		t.Fatal("empty system must enumerate to nothing")
	}
}

func TestDriverTableMatching(t *testing.T) {
	r := newEnumRig()
	k := New(r.cpu)
	bound := false
	k.RegisterDriver(&stubDriver{
		table: []DeviceID{{0x1111, 0x0003}},
		probe: func(*Task, *Kernel, *FoundDevice) error { bound = true; return nil },
	})
	var err error
	r.cpu.Spawn("boot", 0, func(tk *Task) { err = k.Boot(tk) })
	r.eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bound {
		t.Error("driver with matching table entry did not probe")
	}
	if len(k.Bound) != 1 {
		t.Errorf("%d devices bound, want 1 (no match for epA)", len(k.Bound))
	}
}

type stubDriver struct {
	table []DeviceID
	probe func(*Task, *Kernel, *FoundDevice) error
}

func (d *stubDriver) Name() string      { return "stub" }
func (d *stubDriver) Table() []DeviceID { return d.table }
func (d *stubDriver) Probe(t *Task, k *Kernel, dev *FoundDevice) error {
	return d.probe(t, k, dev)
}

func TestKernelCapabilityHelpers(t *testing.T) {
	r := newEnumRig()
	// Give epA a full §IV capability chain.
	pci.AddPowerManagementCap(r.epA)
	pci.AddMSICap(r.epA)
	pci.AddPCIeCap(r.epA, pci.PCIeCapConfig{PortType: pci.PCIePortEndpoint, LinkSpeed: pci.LinkSpeedGen2, LinkWidth: 4})
	k := New(r.cpu)
	var msi, found bool
	var speed, width uint8
	r.cpu.Spawn("t", 0, func(tk *Task) {
		bdf := pci.NewBDF(0, 0, 0)
		found = k.FindCapability(tk, bdf, pci.CapIDPCIExpress) != 0
		msi = k.TryEnableMSI(tk, bdf)
		speed, width = k.PCIeLinkInfo(tk, bdf)
		k.SetBusMaster(tk, bdf)
	})
	r.eng.Run()
	if !found {
		t.Error("PCIe capability not found through timing config reads")
	}
	if msi {
		t.Error("MSI enable must not stick (§IV)")
	}
	if speed != pci.LinkSpeedGen2 || width != 4 {
		t.Errorf("link info %d/%d", speed, width)
	}
	if r.epA.Word(pci.RegCommand)&pci.CmdBusMaster == 0 {
		t.Error("SetBusMaster did not take")
	}
}

package kernel

import (
	"fmt"

	"pciesim/internal/devices"
	"pciesim/internal/sim"
)

// NICRxConfig parameterizes a receive-side driver loop.
type NICRxConfig struct {
	// RingAddr is the DRAM address of the RX descriptor ring.
	RingAddr uint64
	// RingEntries is the descriptor count.
	RingEntries int
	// BufAddr is the DRAM base of the receive buffers; descriptor i
	// points at BufAddr + i*BufStride.
	BufAddr uint64
	// BufStride is the spacing between receive buffers (>= the largest
	// expected frame). Defaults to 2048.
	BufStride int
	// Poll bounds each wait for the RX interrupt, so the loop can
	// re-check its exit condition even if frames stop arriving.
	// Defaults to 50us.
	Poll sim.Tick
	// PerFrameOverhead models the driver's per-frame reap cost (NAPI
	// poll work).
	PerFrameOverhead sim.Tick
}

// NICRxResult reports a receive run.
type NICRxResult struct {
	// Reaped counts descriptors returned to the device.
	Reaped  int
	Elapsed sim.Tick
}

// RunNICRx drives one NIC's receive path: it programs the RX ring
// (descriptor writes are timing stores through the MemBus), hands
// every descriptor to the device, then loops — wait for the RX
// interrupt (bounded by Poll), acknowledge ICR, read how far the
// device advanced RDH, and return the consumed descriptors through the
// RDT doorbell — until done() reports the flow is complete. Frames
// arrive from the device side via NIC.InjectRxFrame.
func RunNICRx(t *Task, h *NICHandle, cfg NICRxConfig, done func() bool) (NICRxResult, error) {
	if h == nil {
		return NICRxResult{}, fmt.Errorf("e1000e: not bound")
	}
	if h.IntDone == nil {
		return NICRxResult{}, fmt.Errorf("e1000e: no interrupt waiter (probe too old?)")
	}
	if cfg.RingEntries == 0 {
		cfg.RingEntries = 64
	}
	if cfg.BufStride == 0 {
		cfg.BufStride = 2048
	}
	if cfg.Poll == 0 {
		cfg.Poll = 50 * sim.Microsecond
	}

	start := t.Now()
	// Ring setup: every descriptor points at its private buffer.
	for i := 0; i < cfg.RingEntries; i++ {
		slot := cfg.RingAddr + uint64(i)*devices.NICDescSize
		buf := cfg.BufAddr + uint64(i)*uint64(cfg.BufStride)
		t.Write32(slot, uint32(buf))
		t.Write32(slot+4, uint32(buf>>32))
	}
	t.Write32(h.BAR0+devices.NICRegRDBAL, uint32(cfg.RingAddr))
	t.Write32(h.BAR0+devices.NICRegRDBAH, uint32(cfg.RingAddr>>32))
	t.Write32(h.BAR0+devices.NICRegRDLEN, uint32(cfg.RingEntries*devices.NICDescSize))
	t.Write32(h.BAR0+devices.NICRegIMS, devices.NICIntRx)
	// The device may use descriptors [RDH, RDT); hand it all but one.
	tail := uint32(cfg.RingEntries - 1)
	t.Write32(h.BAR0+devices.NICRegRDT, tail)

	head := uint32(0)
	reaped := 0
	entries := uint32(cfg.RingEntries)
	for !done() {
		t.WaitTimeout(h.IntDone, cfg.Poll)
		t.Read32(h.BAR0 + devices.NICRegICR) // acknowledge, read-to-clear
		newHead := t.Read32(h.BAR0 + devices.NICRegRDH)
		n := (newHead + entries - head) % entries
		if n == 0 {
			continue
		}
		t.Delay(cfg.PerFrameOverhead * sim.Tick(n))
		head = newHead
		tail = (tail + n) % entries
		t.Write32(h.BAR0+devices.NICRegRDT, tail)
		reaped += int(n)
	}
	return NICRxResult{Reaped: reaped, Elapsed: t.Now() - start}, nil
}

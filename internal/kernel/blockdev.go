package kernel

import (
	"errors"

	"pciesim/internal/devices"
	"pciesim/internal/pci"
	"pciesim/internal/sim"
)

// ErrDiskTimeout is returned by Transfer when the completion interrupt
// never arrives within CmdTimeout — the driver-level watchdog for a
// device behind a dead or wedged link.
var ErrDiskTimeout = errors.New("blk: command timed out")

// ErrDiskStatus is returned when the device reports an error in its
// status register (including the all-ones value a root-complex error
// completion synthesizes for reads over a dead link).
var ErrDiskStatus = errors.New("blk: device reported an error")

// DiskHandle is the bound-device state of the block driver.
type DiskHandle struct {
	Dev  *FoundDevice
	BAR0 uint64
	IRQ  int
	// Done is signaled by the interrupt handler on command completion.
	Done *Waiter
	// SectorSize is the device transfer unit.
	SectorSize int
	// CmdTimeout, when nonzero, bounds how long Transfer waits for the
	// completion interrupt before declaring the command lost.
	CmdTimeout sim.Tick
}

// DiskDriver binds the simplified IDE/ATA-DMA storage device and
// exposes synchronous sector transfers to workloads.
type DiskDriver struct {
	// Handle is the first bound device — the only one in the validation
	// topology; multi-disk topologies index Handles.
	Handle *DiskHandle
	// Handles lists every bound device in probe (enumeration DFS)
	// order.
	Handles []*DiskHandle
	// CmdTimeout is copied into the handle at probe time; see
	// DiskHandle.CmdTimeout.
	CmdTimeout sim.Tick
}

// Name implements Driver.
func (d *DiskDriver) Name() string { return "pciesim-blk" }

// Table implements Driver.
func (d *DiskDriver) Table() []DeviceID {
	return []DeviceID{{Vendor: pci.VendorIntel, Device: 0x2922}}
}

// Probe implements Driver.
func (d *DiskDriver) Probe(t *Task, k *Kernel, dev *FoundDevice) error {
	if len(dev.BARs) == 0 || dev.BARs[0].IsIO {
		return errors.New("blk: BAR0 must be a memory BAR")
	}
	h := &DiskHandle{
		Dev:        dev,
		BAR0:       dev.BARs[0].Addr,
		IRQ:        dev.IRQ,
		Done:       NewWaiter("disk.done"),
		SectorSize: 4096,
		CmdTimeout: d.CmdTimeout,
	}
	k.CPU.RegisterIRQ(dev.IRQ, func() { h.Done.Signal() })
	k.SetBusMaster(t, dev.BDF)
	if d.Handle == nil {
		d.Handle = h
	}
	d.Handles = append(d.Handles, h)
	return nil
}

// HandleFor returns the handle bound to bdf, or nil.
func (d *DiskDriver) HandleFor(bdf pci.BDF) *DiskHandle {
	for _, h := range d.Handles {
		if h.Dev.BDF == bdf {
			return h
		}
	}
	return nil
}

// reg returns the MMIO address of a disk register.
func (h *DiskHandle) reg(off int) uint64 { return h.BAR0 + uint64(off) }

// Transfer issues one DMA command for count sectors and blocks until
// the completion interrupt. write selects the direction (memory ->
// device). The register programming, the completion interrupt, and the
// final status read and interrupt acknowledgment are all timing MMIO
// transactions through the PCI-Express fabric.
func (h *DiskHandle) Transfer(t *Task, write bool, lba uint64, count uint32, bufAddr uint64) error {
	t.Write32(h.reg(devices.DiskRegSecCount), count)
	t.Write32(h.reg(devices.DiskRegLBALo), uint32(lba))
	t.Write32(h.reg(devices.DiskRegLBAHi), uint32(lba>>32))
	t.Write32(h.reg(devices.DiskRegBufLo), uint32(bufAddr))
	t.Write32(h.reg(devices.DiskRegBufHi), uint32(bufAddr>>32))
	cmd := uint32(devices.DiskCmdReadDMA)
	if write {
		cmd = devices.DiskCmdWriteDMA
	}
	t.Write32(h.reg(devices.DiskRegCommand), cmd)
	signaled := t.WaitTimeout(h.Done, h.CmdTimeout)
	// Interrupt bottom half: acknowledge and check status. On a dead
	// link the status read comes back all-ones from the root complex's
	// error completion, which carries the error bit and lets the same
	// status check below diagnose the failure.
	t.Write32(h.reg(devices.DiskRegIntr), 1)
	status := t.Read32(h.reg(devices.DiskRegStatus))
	if !signaled {
		return ErrDiskTimeout
	}
	if status&devices.DiskStatusErr != 0 {
		return ErrDiskStatus
	}
	return nil
}

// ReadSectors transfers count sectors from the device into memory at
// bufAddr.
func (h *DiskHandle) ReadSectors(t *Task, lba uint64, count uint32, bufAddr uint64) error {
	return h.Transfer(t, false, lba, count, bufAddr)
}

// WriteSectors transfers count sectors from memory to the device.
func (h *DiskHandle) WriteSectors(t *Task, lba uint64, count uint32, bufAddr uint64) error {
	return h.Transfer(t, true, lba, count, bufAddr)
}

package kernel

import (
	"errors"
	"fmt"

	"pciesim/internal/devices"
	"pciesim/internal/pci"
)

// InterruptMode records which interrupt mechanism a probe ended up
// with.
type InterruptMode int

// Interrupt modes in driver preference order.
const (
	IntModeLegacy InterruptMode = iota
	IntModeMSI
	IntModeMSIX
)

// String implements fmt.Stringer.
func (m InterruptMode) String() string {
	switch m {
	case IntModeLegacy:
		return "legacy INTx"
	case IntModeMSI:
		return "MSI"
	case IntModeMSIX:
		return "MSI-X"
	default:
		return fmt.Sprintf("InterruptMode(%d)", int(m))
	}
}

// NICHandle is the bound-device state the e1000e-style driver keeps.
type NICHandle struct {
	Dev     *FoundDevice
	BAR0    uint64
	IRQ     int
	IntMode InterruptMode
	// LinkSpeed/LinkWidth are read from the PCIe capability.
	LinkSpeed uint8
	LinkWidth uint8
	// IntDone is this device's private interrupt waiter: the ISR
	// signals it on every interrupt, whatever the cause, so per-device
	// RX/TX paths on multi-NIC fabrics do not cross-wake each other
	// the way the driver-wide TxDone does. Readers disambiguate causes
	// through ICR.
	IntDone *Waiter
	// Caps records which capability IDs the walk found, in the order
	// probed.
	Caps []uint8
}

// E1000eDriver models the e1000e probe path of §IV: it matches device
// ID 0x10D3, walks the PM/MSI/PCIe/MSI-X capability chain, tries MSI-X
// then MSI (both disabled by the device model), falls back to a legacy
// interrupt handler, enables bus mastering, and touches a device
// register over MMIO to confirm the device is alive.
type E1000eDriver struct {
	// Handle is filled by Probe — the first bound device; multi-NIC
	// topologies index Handles.
	Handle *NICHandle
	// Handles lists every bound device in probe order.
	Handles []*NICHandle
	// InterruptCount tallies interrupts taken (legacy or MSI).
	InterruptCount int
	// TxDone is signaled by the interrupt handler; transmit paths wait
	// on it.
	TxDone *Waiter
}

// Name implements Driver.
func (d *E1000eDriver) Name() string { return "e1000e" }

// Table implements Driver: the 82574L entry that §IV targets.
func (d *E1000eDriver) Table() []DeviceID {
	return []DeviceID{{Vendor: pci.VendorIntel, Device: pci.Device82574L}}
}

// Probe implements Driver.
func (d *E1000eDriver) Probe(t *Task, k *Kernel, dev *FoundDevice) error {
	if len(dev.BARs) == 0 || dev.BARs[0].IsIO {
		return errors.New("e1000e: BAR0 must be a memory BAR")
	}
	h := &NICHandle{Dev: dev, BAR0: dev.BARs[0].Addr, IRQ: dev.IRQ}

	for _, id := range []uint8{pci.CapIDPowerManagement, pci.CapIDMSI, pci.CapIDPCIExpress, pci.CapIDMSIX} {
		if k.FindCapability(t, dev.BDF, id) != 0 {
			h.Caps = append(h.Caps, id)
		}
	}
	if k.FindCapability(t, dev.BDF, pci.CapIDPCIExpress) == 0 {
		return errors.New("e1000e: device does not present a PCI-Express capability")
	}
	h.LinkSpeed, h.LinkWidth = k.PCIeLinkInfo(t, dev.BDF)

	// Interrupt setup in e1000e's preference order: MSI-X, MSI, then
	// the legacy fallback the paper's §IV devices force.
	if d.TxDone == nil {
		d.TxDone = NewWaiter("e1000e.txdone")
	}
	h.IntDone = NewWaiter("e1000e." + dev.BDF.String() + ".intdone")
	isr := func() {
		d.InterruptCount++
		d.TxDone.Signal()
		h.IntDone.Signal()
	}
	if k.TryEnableMSIX(t, dev.BDF) {
		h.IntMode = IntModeMSIX
	} else if vec, ok := k.SetupMSI(t, dev.BDF, isr); ok {
		h.IntMode = IntModeMSI
		h.IRQ = vec
	} else {
		h.IntMode = IntModeLegacy
		k.CPU.RegisterIRQ(dev.IRQ, isr)
	}

	k.SetBusMaster(t, dev.BDF)

	// Touch the STATUS register to verify MMIO decoding works.
	status := t.Read32(h.BAR0 + devices.NICRegStatus)
	if status == 0xffffffff {
		return errors.New("e1000e: STATUS reads all-ones; BAR routing broken")
	}
	if d.Handle == nil {
		d.Handle = h
	}
	d.Handles = append(d.Handles, h)
	return nil
}

// HandleFor returns the handle bound to bdf, or nil.
func (d *E1000eDriver) HandleFor(bdf pci.BDF) *NICHandle {
	for _, h := range d.Handles {
		if h.Dev.BDF == bdf {
			return h
		}
	}
	return nil
}

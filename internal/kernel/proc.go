// Package kernel models the software side of the paper's experiments:
// the enumeration software that discovers and configures the PCI(e)
// hierarchy (§II-A, §IV), a device-driver layer with a module device
// table and capability-chain probing (§IV), and the I/O workloads of
// §VI — dd block reads and the kernel-module MMIO latency probe.
//
// The paper runs a full Linux kernel on gem5's out-of-order ARM core
// and attributes part of its throughput gap to "OS overheads in gem5
// for setting up the transfer". This package substitutes a calibrated
// OS model: kernel code runs as a deterministic coroutine that issues
// real timing transactions into the simulated fabric and burns
// explicit, configurable CPU-overhead delays between them.
package kernel

import (
	"fmt"

	"pciesim/internal/sim"
	"pciesim/internal/stats"
	"pciesim/internal/trace"
)

// opKind enumerates what a kernel task can ask of the simulator.
type opKind int

const (
	opDone opKind = iota
	opRead
	opWrite
	opDelay
	opWait
	opWaitTimeout
)

type procReq struct {
	kind   opKind
	addr   uint64
	size   int
	value  uint32
	delay  sim.Tick
	waiter *Waiter
}

// Task is the handle kernel code uses to interact with simulated time
// and hardware. Kernel code runs on its own goroutine but in strict
// rendezvous with the simulation: exactly one of (simulator, task) runs
// at any instant, so execution is deterministic and data-race-free.
type Task struct {
	name   string
	cpu    *CPU
	toSim  chan procReq
	toProc chan uint32
	done   bool
}

// Read32 performs a timing read of 1, 2 or 4 bytes at addr through the
// CPU port and returns the (little-endian) value.
func (t *Task) read(addr uint64, size int) uint32 {
	t.toSim <- procReq{kind: opRead, addr: addr, size: size}
	return <-t.toProc
}

// Read32 reads a 32-bit value.
func (t *Task) Read32(addr uint64) uint32 { return t.read(addr, 4) }

// Read16 reads a 16-bit value.
func (t *Task) Read16(addr uint64) uint16 { return uint16(t.read(addr, 2)) }

// Read8 reads an 8-bit value.
func (t *Task) Read8(addr uint64) uint8 { return uint8(t.read(addr, 1)) }

func (t *Task) write(addr uint64, size int, v uint32) {
	t.toSim <- procReq{kind: opWrite, addr: addr, size: size, value: v}
	<-t.toProc
}

// Write32 performs a timing write of a 32-bit value.
func (t *Task) Write32(addr uint64, v uint32) { t.write(addr, 4, v) }

// Write16 writes a 16-bit value.
func (t *Task) Write16(addr uint64, v uint16) { t.write(addr, 2, uint32(v)) }

// Write8 writes an 8-bit value.
func (t *Task) Write8(addr uint64, v uint8) { t.write(addr, 1, uint32(v)) }

// Delay burns d of simulated CPU time (the OS-overhead model).
func (t *Task) Delay(d sim.Tick) {
	if d == 0 {
		return
	}
	t.toSim <- procReq{kind: opDelay, delay: d}
	<-t.toProc
}

// Wait blocks the task until the waiter is signaled (typically from an
// interrupt handler). A signal that arrived before Wait is consumed
// immediately.
func (t *Task) Wait(w *Waiter) {
	t.toSim <- procReq{kind: opWait, waiter: w}
	<-t.toProc
}

// WaitTimeout blocks like Wait but gives up after d of simulated time,
// returning false — the kernel-side guard against a device that will
// never interrupt (dead link, wedged hardware). d == 0 means wait
// forever, preserving Wait semantics for configurations without a
// timeout.
func (t *Task) WaitTimeout(w *Waiter, d sim.Tick) bool {
	if d == 0 {
		t.Wait(w)
		return true
	}
	t.toSim <- procReq{kind: opWaitTimeout, waiter: w, delay: d}
	return <-t.toProc != 0
}

// Now returns the current simulated time. It costs no simulated time.
func (t *Task) Now() sim.Tick { return t.cpu.eng.Now() }

// Tracer returns the engine's event tracer (nil-safe no-op when
// tracing is off). Task code runs in strict rendezvous with the
// engine, so emitting from task context is race-free.
func (t *Task) Tracer() *trace.Tracer { return t.cpu.eng.Tracer() }

// Stats returns the engine's metrics registry.
func (t *Task) Stats() *stats.Registry { return t.cpu.eng.Stats() }

// Waiter is a one-slot condition used to hand interrupt completions to
// a waiting task.
type Waiter struct {
	name     string
	signaled bool
	parked   *Task
	// timer is the pending WaitTimeout expiry for the parked task;
	// Signal cancels it.
	timer *sim.Event
}

// NewWaiter creates a named waiter.
func NewWaiter(name string) *Waiter { return &Waiter{name: name} }

// Signal wakes the parked task, or latches if none is waiting. It must
// be called from simulation (event) context.
func (w *Waiter) Signal() {
	if w.parked != nil {
		t := w.parked
		w.parked = nil
		if w.timer != nil {
			t.cpu.eng.Deschedule(w.timer)
			w.timer = nil
		}
		t.cpu.resume(t, 1)
		return
	}
	w.signaled = true
}

// Spawn starts kernel code at the given simulated time offset. The
// returned Task is also passed to fn; fn runs to completion in
// rendezvous with the engine.
func (c *CPU) Spawn(name string, after sim.Tick, fn func(*Task)) *Task {
	t := &Task{name: name, cpu: c, toSim: make(chan procReq), toProc: make(chan uint32)}
	c.eng.Schedule(name+".start", after, func() {
		go func() {
			fn(t)
			t.toSim <- procReq{kind: opDone}
		}()
		c.dispatch(t, <-t.toSim)
	})
	return t
}

// Done reports whether the task has finished.
func (t *Task) Done() bool { return t.done }

// resume delivers a value to the blocked task and services its next
// request. It must be called from simulation context; it returns once
// the task blocks again (or finishes).
func (c *CPU) resume(t *Task, v uint32) {
	t.toProc <- v
	c.dispatch(t, <-t.toSim)
}

func (c *CPU) dispatch(t *Task, req procReq) {
	switch req.kind {
	case opDone:
		t.done = true
	case opRead, opWrite:
		c.issue(t, req)
	case opDelay:
		c.eng.Schedule(t.name+".delay", req.delay, func() { c.resume(t, 0) })
	case opWait, opWaitTimeout:
		w := req.waiter
		if w.signaled {
			w.signaled = false
			c.eng.Schedule(t.name+".waitok", 0, func() { c.resume(t, 1) })
			return
		}
		if w.parked != nil {
			panic(fmt.Sprintf("kernel: waiter %q already has task %q parked", w.name, w.parked.name))
		}
		w.parked = t
		if req.kind == opWaitTimeout {
			w.timer = c.eng.Schedule(t.name+".waittmo", req.delay, func() {
				w.parked = nil
				w.timer = nil
				c.resume(t, 0)
			})
		}
	}
}

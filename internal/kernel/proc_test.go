package kernel

import (
	"testing"

	"pciesim/internal/mem"
	"pciesim/internal/memctrl"
	"pciesim/internal/sim"
	"pciesim/internal/testdev"
)

// newCPURig wires a CPU straight to a memory.
func newCPURig() (*sim.Engine, *CPU, *memctrl.Memory) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, "cpu")
	m := memctrl.New(eng, "mem", mem.Range(0, 1<<30), memctrl.Config{Latency: 100 * sim.Nanosecond})
	mem.Connect(cpu.Port(), m.Port())
	return eng, cpu, m
}

func TestTaskReadWriteRoundTrip(t *testing.T) {
	eng, cpu, _ := newCPURig()
	var got uint32
	task := cpu.Spawn("t", 0, func(t *Task) {
		t.Write32(0x1000, 0xdeadbeef)
		got = t.Read32(0x1000)
	})
	eng.Run()
	if !task.Done() {
		t.Fatal("task did not finish")
	}
	if got != 0xdeadbeef {
		t.Errorf("read back %#x", got)
	}
}

func TestTaskSubWordAccess(t *testing.T) {
	eng, cpu, _ := newCPURig()
	var w uint16
	var b uint8
	merged := uint32(0)
	cpu.Spawn("t", 0, func(tk *Task) {
		tk.Write32(0x2000, 0x11223344)
		w = tk.Read16(0x2000)
		b = tk.Read8(0x2003)
		tk.Write8(0x2000, 0xff)
		merged = tk.Read32(0x2000)
	})
	eng.Run()
	if w != 0x3344 || b != 0x11 {
		t.Errorf("w=%#x b=%#x", w, b)
	}
	if merged != 0x112233ff {
		t.Errorf("byte write did not merge: %#x", merged)
	}
}

func TestTaskOpsAdvanceSimulatedTime(t *testing.T) {
	eng, cpu, _ := newCPURig()
	var t0, t1, t2 sim.Tick
	cpu.Spawn("t", 0, func(t *Task) {
		t0 = t.Now()
		t.Read32(0x0) // 100ns memory latency
		t1 = t.Now()
		t.Delay(5 * sim.Microsecond)
		t2 = t.Now()
	})
	eng.Run()
	if t1-t0 != 100*sim.Nanosecond {
		t.Errorf("read took %v", t1-t0)
	}
	if t2-t1 != 5*sim.Microsecond {
		t.Errorf("delay took %v", t2-t1)
	}
}

func TestTaskSpawnDelay(t *testing.T) {
	eng, cpu, _ := newCPURig()
	var started sim.Tick
	cpu.Spawn("t", 3*sim.Microsecond, func(t *Task) { started = t.Now() })
	eng.Run()
	if started != 3*sim.Microsecond {
		t.Errorf("task started at %v", started)
	}
}

func TestWaiterSignalAfterWait(t *testing.T) {
	eng, cpu, _ := newCPURig()
	w := NewWaiter("w")
	var resumed sim.Tick
	cpu.Spawn("t", 0, func(t *Task) {
		t.Wait(w)
		resumed = t.Now()
	})
	eng.Schedule("signal", 7*sim.Microsecond, w.Signal)
	eng.Run()
	if resumed != 7*sim.Microsecond {
		t.Errorf("resumed at %v, want 7us", resumed)
	}
}

func TestWaiterSignalBeforeWait(t *testing.T) {
	eng, cpu, _ := newCPURig()
	w := NewWaiter("w")
	done := false
	cpu.Spawn("t", sim.Microsecond, func(t *Task) {
		// Signal fired at t=0, before this task even starts; the latch
		// must hold it.
		t.Wait(w)
		done = true
	})
	eng.Schedule("early", 0, w.Signal)
	eng.Run()
	if !done {
		t.Fatal("latched signal lost")
	}
}

func TestTwoTasksInterleave(t *testing.T) {
	eng, cpu, _ := newCPURig()
	var order []string
	cpu.Spawn("a", 0, func(t *Task) {
		t.Delay(100)
		order = append(order, "a1")
		t.Delay(300)
		order = append(order, "a2")
	})
	cpu.Spawn("b", 0, func(t *Task) {
		t.Delay(200)
		order = append(order, "b1")
	})
	eng.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestCPURetriesRefusedRequests(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng, "cpu")
	resp := testdev.NewResponder(eng, "dev", nil, 10*sim.Nanosecond, 0)
	resp.RefuseRequests = 3
	mem.Connect(cpu.Port(), resp.Port())
	n := 0
	cpu.Spawn("t", 0, func(t *Task) {
		for i := 0; i < 5; i++ {
			t.Read32(uint64(i * 4))
			n++
		}
	})
	eng.Run()
	if n != 5 {
		t.Errorf("completed %d reads, want 5 despite refusals", n)
	}
}

func TestIRQDispatch(t *testing.T) {
	eng, cpu, _ := newCPURig()
	cpu.IRQLatency = 500 * sim.Nanosecond
	var at sim.Tick
	cpu.RegisterIRQ(32, func() { at = eng.Now() })
	eng.Schedule("dev", sim.Microsecond, func() { cpu.TriggerIRQ(32) })
	cpu.TriggerIRQ(99) // unhandled: must not panic
	eng.Run()
	if at != sim.Microsecond+500*sim.Nanosecond {
		t.Errorf("handler ran at %v", at)
	}
	_, _, irqs := cpu.Stats()
	if irqs != 2 {
		t.Errorf("irq count = %d", irqs)
	}
}

func TestIRQDoubleRegisterPanics(t *testing.T) {
	_, cpu, _ := newCPURig()
	cpu.RegisterIRQ(5, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	cpu.RegisterIRQ(5, func() {})
}

func TestDDResultMath(t *testing.T) {
	r := DDResult{Bytes: 1 << 30, Elapsed: sim.Second, Requests: 8192}
	if got := r.ThroughputGbps(); got < 8.58 || got > 8.6 {
		t.Errorf("1GiB/s = %.3f Gb/s, want ~8.59", got)
	}
	var zero DDResult
	if zero.ThroughputGbps() != 0 {
		t.Error("zero elapsed must not divide by zero")
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestMMIOProbeResultMath(t *testing.T) {
	r := MMIOProbeResult{Samples: 4, Total: 400, Min: 90, Max: 110}
	if r.Avg() != 100 {
		t.Errorf("avg = %v", r.Avg())
	}
	var zero MMIOProbeResult
	if zero.Avg() != 0 {
		t.Error("zero samples must not divide by zero")
	}
}

package kernel

import (
	"fmt"

	"pciesim/internal/pci"
)

// DeviceID is one entry of a driver's module device table: "A device
// driver exposes a Module Device Table to the kernel, which lists the
// Vendor ID and Device ID of all the devices supported by that driver"
// (§IV).
type DeviceID struct {
	Vendor uint16
	Device uint16
}

// Driver is the kernel-side driver contract.
type Driver interface {
	// Name identifies the driver in diagnostics.
	Name() string
	// Table returns the module device table used for matching.
	Table() []DeviceID
	// Probe binds the driver to a matched device; it runs in task
	// context and may issue configuration and MMIO transactions.
	Probe(t *Task, k *Kernel, dev *FoundDevice) error
}

// Kernel ties the CPU model, enumeration, and the driver registry
// together.
type Kernel struct {
	CPU  *CPU
	Enum EnumConfig

	// MSITarget is the physical address of the platform's MSI doorbell
	// frame; zero means the platform offers no message-signaled
	// interrupts (the paper's gem5 baseline).
	MSITarget uint64

	nextMSIVector int

	drivers []Driver
	// Topo is the device tree discovered by Boot.
	Topo *Topology
	// Bound maps probed devices to their drivers.
	Bound map[*FoundDevice]Driver

	// aerRecords counts AER records the service handler returned.
	aerRecords uint64
}

// New creates a kernel around a CPU with the default ARM platform
// enumeration config.
func New(cpu *CPU) *Kernel {
	k := &Kernel{CPU: cpu, Enum: DefaultEnumConfig(), Bound: make(map[*FoundDevice]Driver)}
	cpu.eng.Stats().CounterFunc("kernel.aer.records", func() uint64 { return k.aerRecords })
	return k
}

// RegisterDriver adds a driver to the registry (insmod).
func (k *Kernel) RegisterDriver(d Driver) { k.drivers = append(k.drivers, d) }

// Boot enumerates the hierarchy and probes matching drivers, in task
// context.
func (k *Kernel) Boot(t *Task) error {
	k.Topo = Enumerate(t, k.Enum)
	for _, dev := range k.Topo.Endpoints() {
		for _, drv := range k.drivers {
			if !matches(drv, dev) {
				continue
			}
			if err := drv.Probe(t, k, dev); err != nil {
				return fmt.Errorf("kernel: %s probe of %v: %w", drv.Name(), dev.BDF, err)
			}
			k.Bound[dev] = drv
			break
		}
	}
	return nil
}

func matches(d Driver, dev *FoundDevice) bool {
	for _, id := range d.Table() {
		if id.Vendor == dev.VendorID && id.Device == dev.DeviceID {
			return true
		}
	}
	return false
}

// --- configuration space helpers (task context) ---

// CfgAddr returns the ECAM address of a register.
func (k *Kernel) CfgAddr(bdf pci.BDF, reg int) uint64 {
	return k.Enum.ECAMBase + bdf.ECAMOffset() + uint64(reg)
}

// CfgRead8/16/32 and CfgWrite* issue timing configuration accesses.
func (k *Kernel) CfgRead8(t *Task, bdf pci.BDF, reg int) uint8 {
	return t.Read8(k.CfgAddr(bdf, reg))
}

// CfgRead16 reads a 16-bit configuration register.
func (k *Kernel) CfgRead16(t *Task, bdf pci.BDF, reg int) uint16 {
	return t.Read16(k.CfgAddr(bdf, reg))
}

// CfgRead32 reads a 32-bit configuration register.
func (k *Kernel) CfgRead32(t *Task, bdf pci.BDF, reg int) uint32 {
	return t.Read32(k.CfgAddr(bdf, reg))
}

// CfgWrite8 writes an 8-bit configuration register.
func (k *Kernel) CfgWrite8(t *Task, bdf pci.BDF, reg int, v uint8) {
	t.Write8(k.CfgAddr(bdf, reg), v)
}

// CfgWrite16 writes a 16-bit configuration register.
func (k *Kernel) CfgWrite16(t *Task, bdf pci.BDF, reg int, v uint16) {
	t.Write16(k.CfgAddr(bdf, reg), v)
}

// CfgWrite32 writes a 32-bit configuration register.
func (k *Kernel) CfgWrite32(t *Task, bdf pci.BDF, reg int, v uint32) {
	t.Write32(k.CfgAddr(bdf, reg), v)
}

// FindCapability walks the device's capability chain with timing
// configuration reads — the walk a real driver performs (§IV).
func (k *Kernel) FindCapability(t *Task, bdf pci.BDF, id uint8) int {
	status := k.CfgRead16(t, bdf, pci.RegStatus)
	if status&pci.StatusCapList == 0 {
		return 0
	}
	ptr := int(k.CfgRead8(t, bdf, pci.RegCapPtr)) &^ 3
	for hops := 0; ptr >= 0x40 && hops < 48; hops++ {
		if k.CfgRead8(t, bdf, ptr) == id {
			return ptr
		}
		ptr = int(k.CfgRead8(t, bdf, ptr+1)) &^ 3
	}
	return 0
}

// SetBusMaster sets the command register's bus-master bit
// (pci_set_master).
func (k *Kernel) SetBusMaster(t *Task, bdf pci.BDF) {
	cmd := k.CfgRead16(t, bdf, pci.RegCommand)
	k.CfgWrite16(t, bdf, pci.RegCommand, cmd|pci.CmdBusMaster)
}

// TryEnableMSI attempts to enable MSI and reports whether the enable
// bit stuck. On the modeled devices it never does — "the device driver
// is forced to register a legacy interrupt handler instead of MSI or
// MSI-X" (§IV).
func (k *Kernel) TryEnableMSI(t *Task, bdf pci.BDF) bool {
	off := k.FindCapability(t, bdf, pci.CapIDMSI)
	if off == 0 {
		return false
	}
	ctl := k.CfgRead16(t, bdf, off+2)
	k.CfgWrite16(t, bdf, off+2, ctl|1)
	return k.CfgRead16(t, bdf, off+2)&1 != 0
}

// SetupMSI programs and enables message-signaled interrupts for the
// device: allocate a vector, write the platform doorbell address and
// the vector into the MSI capability, set the enable bit, and verify
// it stuck. The handler is registered on the vector's interrupt line.
// It returns (0, false) when the platform or device cannot do MSI.
func (k *Kernel) SetupMSI(t *Task, bdf pci.BDF, handler func()) (vector int, ok bool) {
	if k.MSITarget == 0 {
		return 0, false
	}
	off := k.FindCapability(t, bdf, pci.CapIDMSI)
	if off == 0 {
		return 0, false
	}
	if k.nextMSIVector == 0 {
		k.nextMSIVector = 64 // above the legacy INTx lines
	}
	vector = k.nextMSIVector
	k.CfgWrite32(t, bdf, off+4, uint32(k.MSITarget))
	k.CfgWrite16(t, bdf, off+8, uint16(vector))
	ctl := k.CfgRead16(t, bdf, off+2)
	k.CfgWrite16(t, bdf, off+2, ctl|1)
	if k.CfgRead16(t, bdf, off+2)&1 == 0 {
		return 0, false // enable did not stick: the §IV disabled device
	}
	k.nextMSIVector++
	k.CPU.RegisterIRQ(vector, handler)
	return vector, true
}

// TryEnableMSIX mirrors TryEnableMSI for MSI-X.
func (k *Kernel) TryEnableMSIX(t *Task, bdf pci.BDF) bool {
	off := k.FindCapability(t, bdf, pci.CapIDMSIX)
	if off == 0 {
		return false
	}
	ctl := k.CfgRead16(t, bdf, off+2)
	k.CfgWrite16(t, bdf, off+2, ctl|0x8000)
	return k.CfgRead16(t, bdf, off+2)&0x8000 != 0
}

// PCIeLinkInfo reads the negotiated link speed and width from the
// PCI-Express capability (zeroes if the capability is absent).
func (k *Kernel) PCIeLinkInfo(t *Task, bdf pci.BDF) (speed, width uint8) {
	off := k.FindCapability(t, bdf, pci.CapIDPCIExpress)
	if off == 0 {
		return 0, 0
	}
	ls := k.CfgRead16(t, bdf, off+pci.PCIeLinkStatusOffset)
	return uint8(ls & 0xf), uint8(ls>>4) & 0x3f
}

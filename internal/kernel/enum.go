package kernel

import (
	"fmt"

	"pciesim/internal/mem"
	"pciesim/internal/pci"
)

// EnumConfig parameterizes the enumeration software.
type EnumConfig struct {
	// ECAMBase is the configuration window base (0x30000000 on the
	// modeled ARM platform).
	ECAMBase uint64
	// MemWindow is the MMIO address pool BARs and bridge windows are
	// carved from (0x40000000..0x80000000).
	MemWindow mem.AddrRange
	// IOWindow is the port-I/O pool (0x2f000000..0x2fffffff).
	IOWindow mem.AddrRange
	// BridgeAlign is the memory-window granularity of a type-1 header
	// (1 MiB: the registers hold address bits 31:20).
	BridgeAlign uint64
	// IOAlign is the I/O-window granularity (4 KiB).
	IOAlign uint64
	// FirstIRQ numbers the legacy interrupt lines handed to endpoints.
	FirstIRQ int
}

// DefaultEnumConfig matches the paper's ARM Vexpress_GEM5_V1 memory map
// (§III).
func DefaultEnumConfig() EnumConfig {
	return EnumConfig{
		ECAMBase:    0x30000000,
		MemWindow:   mem.Span(0x40000000, 0x80000000),
		IOWindow:    mem.Span(0x2f000000, 0x30000000),
		BridgeAlign: 1 << 20,
		IOAlign:     1 << 12,
		FirstIRQ:    32,
	}
}

// FoundBAR records one sized-and-assigned base address register.
type FoundBAR struct {
	Index int
	Addr  uint64
	Size  uint64
	IsIO  bool
}

// FoundDevice is one function discovered by enumeration.
type FoundDevice struct {
	BDF        pci.BDF
	VendorID   uint16
	DeviceID   uint16
	ClassCode  uint32
	HeaderType uint8
	IsBridge   bool
	BARs       []FoundBAR

	// Bridge-only fields.
	Secondary   uint8
	Subordinate uint8
	Children    []*FoundDevice

	// Saved bridge window registers, exactly as enumeration programmed
	// them — the recovery driver replays these after a hot-plug reset
	// wipes a bridge's configuration.
	MemBase, MemLimit         uint16
	IOBase, IOLimit           uint8
	IOBaseUpper, IOLimitUpper uint16

	// Endpoint-only fields.
	IRQ int
}

// Topology is the result of an enumeration pass.
type Topology struct {
	// Root holds the devices found on bus 0.
	Root []*FoundDevice
	// All lists every function in DFS discovery order.
	All []*FoundDevice
	// Buses is the number of buses assigned (highest bus number + 1).
	Buses int
}

// FindByID returns the first device matching vendor/device, or nil.
func (tp *Topology) FindByID(vendor, device uint16) *FoundDevice {
	for _, d := range tp.All {
		if d.VendorID == vendor && d.DeviceID == device {
			return d
		}
	}
	return nil
}

// Endpoints returns all non-bridge functions in discovery order.
func (tp *Topology) Endpoints() []*FoundDevice {
	var out []*FoundDevice
	for _, d := range tp.All {
		if !d.IsBridge {
			out = append(out, d)
		}
	}
	return out
}

// enumerator carries the DFS state.
type enumerator struct {
	t       *Task
	cfg     EnumConfig
	nextBus uint8
	memCur  uint64
	ioCur   uint64
	nextIRQ int
	topo    *Topology
}

// Enumerate performs the full PCI discovery pass the paper's kernel
// performs at boot (§II-A): a depth-first search over buses, reading
// vendor/device IDs, sizing and assigning BARs with the all-ones
// handshake, assigning bus numbers to bridges, programming their
// memory and I/O windows bottom-up, and enabling the devices. Every
// register access is a timing configuration transaction through the
// fabric and PCI host.
func Enumerate(t *Task, cfg EnumConfig) *Topology {
	e := &enumerator{
		t:       t,
		cfg:     cfg,
		nextBus: 1,
		memCur:  cfg.MemWindow.Start,
		ioCur:   cfg.IOWindow.Start,
		nextIRQ: cfg.FirstIRQ,
		topo:    &Topology{},
	}
	e.topo.Root = e.scanBus(0)
	e.topo.Buses = int(e.nextBus)
	return e.topo
}

func (e *enumerator) cfgAddr(bdf pci.BDF, reg int) uint64 {
	return e.cfg.ECAMBase + bdf.ECAMOffset() + uint64(reg)
}

func (e *enumerator) scanBus(bus uint8) []*FoundDevice {
	var found []*FoundDevice
	for dev := uint8(0); dev < 32; dev++ {
		bdf := pci.NewBDF(bus, dev, 0)
		vendor := e.t.Read16(e.cfgAddr(bdf, pci.RegVendorID))
		if vendor == 0xffff {
			continue // all-ones: nobody home (§III)
		}
		d := &FoundDevice{
			BDF:      bdf,
			VendorID: vendor,
			DeviceID: e.t.Read16(e.cfgAddr(bdf, pci.RegDeviceID)),
		}
		d.ClassCode = uint32(e.t.Read8(e.cfgAddr(bdf, pci.RegClassCode))) |
			uint32(e.t.Read8(e.cfgAddr(bdf, pci.RegClassCode+1)))<<8 |
			uint32(e.t.Read8(e.cfgAddr(bdf, pci.RegClassCode+2)))<<16
		d.HeaderType = e.t.Read8(e.cfgAddr(bdf, pci.RegHeaderType))
		d.IsBridge = d.HeaderType&pci.HeaderTypeTypeMask == pci.HeaderType1

		e.topo.All = append(e.topo.All, d) // DFS preorder
		if d.IsBridge {
			e.scanBridge(d)
		} else {
			e.sizeAndAssignBARs(d, 6)
			d.IRQ = e.nextIRQ
			e.nextIRQ++
			e.t.Write8(e.cfgAddr(bdf, pci.RegIntLine), uint8(d.IRQ))
			// Enable memory/I-O decoding; drivers turn on bus
			// mastering themselves (pci_set_master).
			e.t.Write16(e.cfgAddr(bdf, pci.RegCommand), pci.CmdMemEnable|pci.CmdIOEnable)
		}
		found = append(found, d)
	}
	return found
}

// scanBridge assigns bus numbers, recurses, and programs the windows.
func (e *enumerator) scanBridge(d *FoundDevice) {
	bdf := d.BDF
	sec := e.nextBus
	e.nextBus++
	e.t.Write8(e.cfgAddr(bdf, pci.RegPrimaryBus), bdf.Bus)
	e.t.Write8(e.cfgAddr(bdf, pci.RegSecondaryBus), sec)
	// Open the subordinate range while scanning below.
	e.t.Write8(e.cfgAddr(bdf, pci.RegSubordinateBus), 0xff)

	memStart := alignUp(e.memCur, e.cfg.BridgeAlign)
	ioStart := alignUp(e.ioCur, e.cfg.IOAlign)
	e.memCur = memStart
	e.ioCur = ioStart

	d.Children = e.scanBus(sec)

	sub := e.nextBus - 1
	e.t.Write8(e.cfgAddr(bdf, pci.RegSubordinateBus), sub)
	d.Secondary = sec
	d.Subordinate = sub

	// Program the decoded windows bottom-up, saving the programmed
	// values for hot-plug config replay.
	memEnd := alignUp(e.memCur, e.cfg.BridgeAlign)
	if memEnd > memStart {
		d.MemBase = uint16(memStart>>16) & 0xfff0
		d.MemLimit = uint16((memEnd-1)>>16) & 0xfff0
		e.memCur = memEnd
	} else {
		// Closed window: base above limit.
		d.MemBase, d.MemLimit = 0xfff0, 0x0000
	}
	e.t.Write16(e.cfgAddr(bdf, pci.RegMemBase), d.MemBase)
	e.t.Write16(e.cfgAddr(bdf, pci.RegMemLimit), d.MemLimit)
	ioEnd := alignUp(e.ioCur, e.cfg.IOAlign)
	if ioEnd > ioStart {
		// 32-bit I/O window: bits 15:12 in base/limit, 31:16 in the
		// upper registers (§V-A's ARM platform layout).
		d.IOBase = uint8(ioStart>>8) & 0xf0
		d.IOLimit = uint8((ioEnd-1)>>8) & 0xf0
		d.IOBaseUpper = uint16(ioStart >> 16)
		d.IOLimitUpper = uint16((ioEnd - 1) >> 16)
		e.ioCur = ioEnd
	} else {
		d.IOBase, d.IOLimit = 0xf0, 0x00
		d.IOBaseUpper, d.IOLimitUpper = 0xffff, 0x0000
	}
	e.t.Write8(e.cfgAddr(bdf, pci.RegIOBase), d.IOBase)
	e.t.Write8(e.cfgAddr(bdf, pci.RegIOLimit), d.IOLimit)
	e.t.Write16(e.cfgAddr(bdf, pci.RegIOBaseUpper), d.IOBaseUpper)
	e.t.Write16(e.cfgAddr(bdf, pci.RegIOLimitUpper), d.IOLimitUpper)
	// Forward transactions and let downstream devices master the bus.
	e.t.Write16(e.cfgAddr(bdf, pci.RegCommand), pci.CmdMemEnable|pci.CmdIOEnable|pci.CmdBusMaster)
}

// sizeAndAssignBARs runs the all-ones sizing handshake on each BAR and
// assigns addresses from the enumeration pools.
func (e *enumerator) sizeAndAssignBARs(d *FoundDevice, count int) {
	for i := 0; i < count; i++ {
		reg := pci.RegBAR0 + 4*i
		addr := e.cfgAddr(d.BDF, reg)
		e.t.Write32(addr, 0xffffffff)
		v := e.t.Read32(addr)
		if v == 0 {
			continue // unimplemented
		}
		isIO := v&1 == 1
		var size uint64
		if isIO {
			size = uint64(^(v &^ 0x3)) + 1
		} else {
			size = uint64(^(v &^ 0xf)) + 1
		}
		var assigned uint64
		if isIO {
			assigned = alignUp(e.ioCur, size)
			if assigned+size > e.cfg.IOWindow.End {
				panic(fmt.Sprintf("kernel: I/O pool exhausted assigning %v BAR%d", d.BDF, i))
			}
			e.ioCur = assigned + size
		} else {
			assigned = alignUp(e.memCur, size)
			if assigned+size > e.cfg.MemWindow.End {
				panic(fmt.Sprintf("kernel: MMIO pool exhausted assigning %v BAR%d", d.BDF, i))
			}
			e.memCur = assigned + size
		}
		e.t.Write32(addr, uint32(assigned))
		d.BARs = append(d.BARs, FoundBAR{Index: i, Addr: assigned, Size: size, IsIO: isIO})
	}
}

func alignUp(v, align uint64) uint64 {
	if align == 0 {
		return v
	}
	return (v + align - 1) &^ (align - 1)
}

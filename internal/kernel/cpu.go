package kernel

import (
	"encoding/binary"
	"fmt"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
	"pciesim/internal/stats"
	"pciesim/internal/trace"
)

// CPU is the processor-side injection point for kernel tasks: a master
// port (wired to the MemBus) issuing one timing transaction at a time
// per task, plus the interrupt entry point.
type CPU struct {
	eng   *sim.Engine
	name  string
	port  *mem.MasterPort
	alloc mem.Allocator

	// IRQLatency models interrupt dispatch cost (vector, context) from
	// device signal to handler execution.
	IRQLatency sim.Tick

	inflight map[uint64]*pendingOp
	sendQ    []*pendingOp // ops awaiting port acceptance
	blocked  bool
	opFree   []*pendingOp // recycled op records

	irqHandlers map[int]func()
	irqNames    map[int]string // cached "<cpu>.irq<N>" event names

	// Stats.
	reads, writes, irqs uint64
	opLat               *stats.Histogram
}

type pendingOp struct {
	task     *Task
	pkt      *mem.Packet
	buf      [4]byte
	issuedAt sim.Tick
}

// NewCPU creates the kernel's CPU-side port owner. Packet IDs come
// from the engine so they are unique across every requestor.
func NewCPU(eng *sim.Engine, name string) *CPU {
	c := &CPU{
		eng:         eng,
		name:        name,
		inflight:    make(map[uint64]*pendingOp),
		irqHandlers: make(map[int]func()),
		irqNames:    make(map[int]string),
	}
	c.alloc.Bind(eng)
	r := eng.Stats()
	r.CounterFunc(name+".reads", func() uint64 { return c.reads })
	r.CounterFunc(name+".writes", func() uint64 { return c.writes })
	r.CounterFunc(name+".irqs", func() uint64 { return c.irqs })
	c.opLat = r.Histogram(name + ".op_latency")
	return c
}

// Port returns the master port to wire to the MemBus.
func (c *CPU) Port() *mem.MasterPort {
	if c.port == nil {
		c.port = mem.NewMasterPort(c.name+".port", c)
	}
	return c.port
}

// UsePacketPool recycles the CPU's request packets through the given
// engine-local pool.
func (c *CPU) UsePacketPool(p *mem.Pool) { c.alloc.BindPool(p) }

// Stats returns (reads, writes, interrupts taken).
func (c *CPU) Stats() (reads, writes, irqs uint64) { return c.reads, c.writes, c.irqs }

func (c *CPU) issue(t *Task, req procReq) {
	var op *pendingOp
	if n := len(c.opFree); n > 0 {
		op = c.opFree[n-1]
		c.opFree[n-1] = nil
		c.opFree = c.opFree[:n-1]
		*op = pendingOp{}
	} else {
		op = &pendingOp{}
	}
	op.task = t
	switch req.kind {
	case opRead:
		c.reads++
		op.pkt = c.alloc.NewRequest(mem.ReadReq, req.addr, req.size)
		op.pkt.Data = op.buf[:req.size]
	case opWrite:
		c.writes++
		op.pkt = c.alloc.NewRequest(mem.WriteReq, req.addr, req.size)
		binary.LittleEndian.PutUint32(op.buf[:], req.value)
		op.pkt.Data = op.buf[:req.size]
	}
	op.issuedAt = c.eng.Now()
	c.inflight[op.pkt.ID] = op
	c.sendQ = append(c.sendQ, op)
	c.pump()
}

func (c *CPU) pump() {
	for !c.blocked && len(c.sendQ) > 0 {
		op := c.sendQ[0]
		if !c.port.SendTimingReq(op.pkt) {
			c.blocked = true
			return
		}
		c.sendQ = c.sendQ[1:]
	}
}

// RecvTimingResp implements mem.MasterOwner: complete the op and resume
// its task.
func (c *CPU) RecvTimingResp(_ *mem.MasterPort, pkt *mem.Packet) bool {
	op, ok := c.inflight[pkt.ID]
	if !ok {
		panic(fmt.Sprintf("kernel %s: response for unknown packet %v", c.name, pkt))
	}
	delete(c.inflight, pkt.ID)
	c.opLat.Observe(uint64(c.eng.Now() - op.issuedAt))
	var v uint32
	if pkt.Cmd == mem.ReadResp {
		var buf [4]byte
		copy(buf[:pkt.Size], pkt.Data)
		v = binary.LittleEndian.Uint32(buf[:])
	}
	task := op.task
	op.task = nil
	op.pkt = nil
	c.opFree = append(c.opFree, op)
	pkt.Release()
	c.resume(task, v)
	return true
}

// RecvReqRetry implements mem.MasterOwner.
func (c *CPU) RecvReqRetry(*mem.MasterPort) {
	c.blocked = false
	c.pump()
}

// RegisterIRQ installs a handler for a legacy interrupt line.
func (c *CPU) RegisterIRQ(line int, handler func()) {
	if _, dup := c.irqHandlers[line]; dup {
		panic(fmt.Sprintf("kernel %s: IRQ %d registered twice", c.name, line))
	}
	c.irqHandlers[line] = handler
}

// TriggerIRQ is the device-facing interrupt line: it dispatches the
// registered handler after IRQLatency. Unhandled lines are counted but
// otherwise ignored, like a spurious interrupt.
func (c *CPU) TriggerIRQ(line int) {
	c.irqs++
	h := c.irqHandlers[line]
	if tr := c.eng.Tracer(); tr.On(trace.CatIRQ) {
		detail := ""
		if h == nil {
			detail = "spurious (no handler)"
		}
		tr.Emit(trace.CatIRQ, uint64(c.eng.Now()), c.name,
			fmt.Sprintf("irq%d", line), 0, detail)
	}
	if h == nil {
		return
	}
	evname, ok := c.irqNames[line]
	if !ok {
		evname = c.IRQEventName(line)
		c.irqNames[line] = evname
	}
	c.eng.ScheduleAtOrd(evname, c.eng.Now()+c.IRQLatency, sim.PriorityDefault, IRQOrd(line), h)
}

// IRQOrd is the static scheduler-identity key interrupt dispatch for
// line carries in the event heap, used identically by the serial
// TriggerIRQ path and by cross-domain dispatch ferries so simultaneous
// interrupts from symmetric devices order the same way in every engine
// configuration. The high bit-32 base keeps IRQ keys disjoint from the
// topology builder's link keys.
func IRQOrd(line int) uint64 { return 1<<32 + uint64(line) }

// IRQEventName returns the event name interrupt dispatch for line runs
// under. It is a pure function — no cache mutation — so a device
// domain may call it while building a cross-domain dispatch without
// racing the CPU's own state.
func (c *CPU) IRQEventName(line int) string {
	return fmt.Sprintf("%s.irq%d", c.name, line)
}

// DispatchIRQ is the cross-domain interrupt entry point. A device in
// another timing domain raises its line by ferrying a dispatch to the
// CPU's domain at device-time + IRQLatency; this runs at delivery,
// inside the CPU's domain, and executes the handler inline. trig is
// the device-local tick the line was raised at: the interrupt count
// and trace event use it so the record matches what a serial
// TriggerIRQ at trig would have produced.
func (c *CPU) DispatchIRQ(line int, trig sim.Tick) {
	c.irqs++
	h := c.irqHandlers[line]
	if tr := c.eng.Tracer(); tr.On(trace.CatIRQ) {
		detail := ""
		if h == nil {
			detail = "spurious (no handler)"
		}
		tr.Emit(trace.CatIRQ, uint64(trig), c.name,
			fmt.Sprintf("irq%d", line), 0, detail)
	}
	if h != nil {
		h()
	}
}

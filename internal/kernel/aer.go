package kernel

import (
	"fmt"
	"strings"

	"pciesim/internal/pci"
	"pciesim/internal/trace"
)

// FindExtendedCapability walks a function's PCI-Express extended
// capability chain — offset 0x100 of the 4KB R3 configuration space —
// with timing configuration reads, mirroring FindCapability for the
// legacy chain. It returns the capability's offset, or 0 when the
// function does not implement it.
func (k *Kernel) FindExtendedCapability(t *Task, bdf pci.BDF, id uint16) int {
	off := 0x100
	for hops := 0; off != 0 && hops < 64; hops++ {
		hdr := k.CfgRead32(t, bdf, off)
		if hdr == 0 || hdr == pci.InvalidData {
			return 0
		}
		if uint16(hdr) == id {
			return off
		}
		off = int(hdr >> 20)
	}
	return 0
}

// AERRecord is one entry of the kernel's AER service log: the error
// status a function had pending when the handler polled it.
type AERRecord struct {
	BDF           pci.BDF
	VendorID      uint16
	DeviceID      uint16
	Bridge        bool
	Correctable   uint32 // correctable error status bits read (and cleared)
	Uncorrectable uint32 // uncorrectable error status bits read (and cleared)
	// HeaderLogID is the packet ID of the first offending TLP, read
	// from the AER header log (0 when no TLP was captured).
	HeaderLogID uint64
}

// String renders the record the way a kernel log line would.
func (r AERRecord) String() string {
	kind := "endpoint"
	if r.Bridge {
		kind = "bridge"
	}
	var parts []string
	if r.Correctable != 0 {
		parts = append(parts, "correctable: "+strings.Join(pci.AERCorrectableNames(r.Correctable), "|"))
	}
	if r.Uncorrectable != 0 {
		parts = append(parts, "uncorrectable: "+strings.Join(pci.AERUncorrectableNames(r.Uncorrectable), "|"))
	}
	if r.HeaderLogID != 0 {
		parts = append(parts, fmt.Sprintf("first TLP pkt#%d", r.HeaderLogID))
	}
	return fmt.Sprintf("AER: %v %s %04x:%04x %s",
		r.BDF, kind, r.VendorID, r.DeviceID, strings.Join(parts, "; "))
}

// HandleAER is the kernel's AER service driver. It walks every
// enumerated function, locates the AER extended capability, reads the
// correctable and uncorrectable status registers, acknowledges what it
// found by writing the bits back (the registers are RW1C), and returns
// a structured log. Functions with nothing pending are omitted.
//
// Configuration accesses complete at the host bridge rather than over
// the data link, so the handler can still read and clear the error
// state logged against a port whose link has gone down — exactly the
// property that makes AER useful for post-mortem diagnosis.
func (k *Kernel) HandleAER(t *Task) []AERRecord {
	if k.Topo == nil {
		return nil
	}
	var log []AERRecord
	for _, d := range k.Topo.All {
		off := k.FindExtendedCapability(t, d.BDF, pci.ExtCapIDAER)
		if off == 0 {
			continue
		}
		unc := k.CfgRead32(t, d.BDF, off+pci.AERUncStatusOff)
		corr := k.CfgRead32(t, d.BDF, off+pci.AERCorrStatusOff)
		if unc == 0 && corr == 0 {
			continue
		}
		var hdrID uint64
		if unc != 0 {
			// The header log freezes the first offending TLP; read it
			// before acknowledging the status.
			hdrID = uint64(k.CfgRead32(t, d.BDF, off+pci.AERHeaderLogOff)) |
				uint64(k.CfgRead32(t, d.BDF, off+pci.AERHeaderLogOff+4))<<32
			k.CfgWrite32(t, d.BDF, off+pci.AERUncStatusOff, unc)
		}
		if corr != 0 {
			k.CfgWrite32(t, d.BDF, off+pci.AERCorrStatusOff, corr)
		}
		rec := AERRecord{
			BDF:           d.BDF,
			VendorID:      d.VendorID,
			DeviceID:      d.DeviceID,
			Bridge:        d.IsBridge,
			Correctable:   corr,
			Uncorrectable: unc,
			HeaderLogID:   hdrID,
		}
		k.aerRecords++
		if tr := t.Tracer(); tr.On(trace.CatFault) {
			tr.Emit(trace.CatFault, uint64(t.Now()), "kernel.aer",
				"service", hdrID, rec.String())
		}
		log = append(log, rec)
	}
	return log
}

package kernel

import (
	"fmt"

	"pciesim/internal/pci"
	"pciesim/internal/sim"
	"pciesim/internal/trace"
)

// DPCIRQ is the platform interrupt line the Downstream Port Containment
// capability signals on. It sits below FirstIRQ, so it never collides
// with the lines enumeration hands to endpoints.
const DPCIRQ = 30

// RecoveryConfig parameterizes the hot-plug/DPC recovery driver.
type RecoveryConfig struct {
	// QuiesceDelay is how long the handler lets in-flight containment
	// drain before touching the port's registers.
	QuiesceDelay sim.Tick
	// PollInterval is the initial presence-detect poll period; it
	// doubles on every empty poll up to MaxPollInterval.
	PollInterval    sim.Tick
	MaxPollInterval sim.Tick
	// MaxAttempts bounds the presence polls before the driver abandons
	// the slot (surprise removal with no re-insertion).
	MaxAttempts int
	// SettleDelay is the link-training allowance between seeing
	// presence and releasing containment.
	SettleDelay sim.Tick
}

func (c *RecoveryConfig) applyDefaults() {
	if c.QuiesceDelay == 0 {
		c.QuiesceDelay = 10 * sim.Microsecond
	}
	if c.PollInterval == 0 {
		c.PollInterval = 100 * sim.Microsecond
	}
	if c.MaxPollInterval == 0 {
		c.MaxPollInterval = 3200 * sim.Microsecond
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 10
	}
	if c.SettleDelay == 0 {
		c.SettleDelay = 50 * sim.Microsecond
	}
}

// RecoveryEvent is one pending DPC trigger awaiting kernel service.
type RecoveryEvent struct {
	Port   pci.BDF
	Reason uint16
}

// RecoveryRecord is the log entry of one completed recovery attempt.
type RecoveryRecord struct {
	Port       pci.BDF
	Reason     uint16
	Recovered  bool
	Attempts   int // presence polls performed
	Start, End sim.Tick
}

// RecoveryManager is the kernel's containment-and-hot-plug service: it
// arms DPC on every capable port at boot, fields the containment
// interrupt, and runs the recovery state machine — quiesce, poll the
// slot for re-insertion with exponential backoff, release containment,
// and restore the sub-tree's configuration from the boot-time
// enumeration state. Restoration replays saved register values; it
// never re-allocates from the enumeration pools, so recovered devices
// come back at their original addresses and the pools cannot exhaust.
type RecoveryManager struct {
	k   *Kernel
	cfg RecoveryConfig

	queue []RecoveryEvent
	busy  map[pci.BDF]bool

	records []RecoveryRecord

	triggers  uint64
	recovered uint64
	abandoned uint64
}

// NewRecoveryManager creates the manager, registers the DPC interrupt
// handler, and publishes the recovery counters.
func NewRecoveryManager(k *Kernel, cfg RecoveryConfig) *RecoveryManager {
	cfg.applyDefaults()
	m := &RecoveryManager{k: k, cfg: cfg, busy: make(map[pci.BDF]bool)}
	k.CPU.RegisterIRQ(DPCIRQ, m.irq)
	reg := k.CPU.eng.Stats()
	reg.CounterFunc("kernel.recovery.triggers", func() uint64 { return m.triggers })
	reg.CounterFunc("kernel.recovery.recovered", func() uint64 { return m.recovered })
	reg.CounterFunc("kernel.recovery.abandoned", func() uint64 { return m.abandoned })
	return m
}

// Records returns the completed recovery log in service order.
func (m *RecoveryManager) Records() []RecoveryRecord { return m.records }

// Counts returns (triggers seen, recoveries completed, slots abandoned).
func (m *RecoveryManager) Counts() (triggers, recovered, abandoned uint64) {
	return m.triggers, m.recovered, m.abandoned
}

// Arm enables DPC triggering (fatal errors) and the containment
// interrupt on every bridge that implements the capability. Runs in
// task context after Boot; returns how many ports were armed.
func (m *RecoveryManager) Arm(t *Task) int {
	if m.k.Topo == nil {
		return 0
	}
	armed := 0
	for _, d := range m.k.Topo.All {
		if !d.IsBridge {
			continue
		}
		off := m.k.FindExtendedCapability(t, d.BDF, pci.ExtCapIDDPC)
		if off == 0 {
			continue
		}
		m.k.CfgWrite16(t, d.BDF, off+pci.DPCCtlOff, 0x1|pci.DPCCtlIntEn)
		armed++
	}
	return armed
}

// Raise enqueues a containment trigger and fires the DPC interrupt.
// The platform layer calls it from the port's OnTrigger hook, in
// simulation (event) context.
func (m *RecoveryManager) Raise(port pci.BDF, reason uint16) {
	m.triggers++
	m.queue = append(m.queue, RecoveryEvent{Port: port, Reason: reason})
	m.k.CPU.TriggerIRQ(DPCIRQ)
}

// irq is the DPC interrupt top half: spawn a recovery task per pending
// port. A port already being serviced swallows the duplicate trigger —
// the running task re-reads the registers and sees the latest state.
func (m *RecoveryManager) irq() {
	for len(m.queue) > 0 {
		ev := m.queue[0]
		m.queue = m.queue[1:]
		if m.busy[ev.Port] {
			continue
		}
		m.busy[ev.Port] = true
		m.k.CPU.Spawn(fmt.Sprintf("dpcrecover.%v", ev.Port), 0, func(t *Task) {
			m.recover(t, ev)
			delete(m.busy, ev.Port)
		})
	}
}

// recover is the per-port recovery state machine, running in task
// context with timing configuration transactions throughout.
func (m *RecoveryManager) recover(t *Task, ev RecoveryEvent) {
	rec := RecoveryRecord{Port: ev.Port, Reason: ev.Reason, Start: t.Now()}
	defer func() {
		rec.End = t.Now()
		m.records = append(m.records, rec)
	}()

	t.Delay(m.cfg.QuiesceDelay)

	pcieOff := m.k.FindCapability(t, ev.Port, pci.CapIDPCIExpress)
	dpcOff := m.k.FindExtendedCapability(t, ev.Port, pci.ExtCapIDDPC)
	if pcieOff == 0 {
		m.abandoned++
		return
	}
	if dpcOff != 0 {
		// Confirm the trigger and latch the hardware's reason over the
		// one the interrupt carried.
		st := m.k.CfgRead16(t, ev.Port, dpcOff+pci.DPCStatusOff)
		if st&pci.DPCStatusTrigger != 0 {
			rec.Reason = (st & pci.DPCStatusReasonMask) >> 1
		}
	}
	// Acknowledge the slot events that accompanied the surprise-down.
	m.k.CfgWrite16(t, ev.Port, pcieOff+pci.PCIeSlotStatusOffset,
		pci.SlotStatusPDC|pci.SlotStatusDLLSC)

	// Poll for re-insertion with exponential backoff.
	present := false
	backoff := m.cfg.PollInterval
	for ; rec.Attempts < m.cfg.MaxAttempts; rec.Attempts++ {
		st := m.k.CfgRead16(t, ev.Port, pcieOff+pci.PCIeSlotStatusOffset)
		if st&pci.SlotStatusPDS != 0 {
			present = true
			break
		}
		t.Delay(backoff)
		backoff *= 2
		if backoff > m.cfg.MaxPollInterval {
			backoff = m.cfg.MaxPollInterval
		}
	}
	if !present {
		// Nothing came back: leave containment engaged so the port
		// keeps answering stray requests instantly, and give the slot
		// up. A later re-insertion raises a fresh trigger via the
		// slot's presence-detect interrupt path.
		m.abandoned++
		if tr := t.Tracer(); tr.On(trace.CatFault) {
			tr.Emit(trace.CatFault, uint64(t.Now()), "kernel.recovery",
				"abandon", 0, fmt.Sprintf("port %v: no re-insertion after %d polls", ev.Port, rec.Attempts))
		}
		return
	}

	// Let the link finish training, clear the re-insertion's slot
	// events, then release containment (W1C on the sticky trigger).
	t.Delay(m.cfg.SettleDelay)
	m.k.CfgWrite16(t, ev.Port, pcieOff+pci.PCIeSlotStatusOffset,
		pci.SlotStatusPDC|pci.SlotStatusDLLSC)
	if dpcOff != 0 {
		m.k.CfgWrite16(t, ev.Port, dpcOff+pci.DPCStatusOff,
			pci.DPCStatusTrigger|pci.DPCStatusInterrupt)
	}

	// Restore the sub-tree below the port from the boot-time state.
	ok := true
	if bridge := m.findBridge(ev.Port); bridge != nil {
		for _, child := range bridge.Children {
			if !m.restore(t, child) {
				ok = false
			}
		}
	}
	rec.Recovered = ok
	if ok {
		m.recovered++
	} else {
		m.abandoned++
	}
	if tr := t.Tracer(); tr.On(trace.CatFault) {
		verdict := "recovered"
		if !ok {
			verdict = "restore failed"
		}
		tr.Emit(trace.CatFault, uint64(t.Now()), "kernel.recovery",
			"recover", 0, fmt.Sprintf("port %v %s after %d polls", ev.Port, verdict, rec.Attempts))
	}
}

// findBridge locates the enumerated bridge function at the port's BDF.
func (m *RecoveryManager) findBridge(port pci.BDF) *FoundDevice {
	if m.k.Topo == nil {
		return nil
	}
	for _, d := range m.k.Topo.All {
		if d.IsBridge && d.BDF == port {
			return d
		}
	}
	return nil
}

// restore replays one function's boot-time configuration — a hot-plug
// reset wiped it — and recurses below bridges. It never allocates: the
// saved BAR addresses, bus numbers, and windows are written back
// verbatim, so the restored sub-tree decodes exactly as before.
func (m *RecoveryManager) restore(t *Task, d *FoundDevice) bool {
	vendor := m.k.CfgRead16(t, d.BDF, pci.RegVendorID)
	if vendor != d.VendorID {
		return false // absent or a different card: do not program it
	}
	if d.IsBridge {
		m.k.CfgWrite8(t, d.BDF, pci.RegPrimaryBus, d.BDF.Bus)
		m.k.CfgWrite8(t, d.BDF, pci.RegSecondaryBus, d.Secondary)
		m.k.CfgWrite8(t, d.BDF, pci.RegSubordinateBus, d.Subordinate)
		m.k.CfgWrite16(t, d.BDF, pci.RegMemBase, d.MemBase)
		m.k.CfgWrite16(t, d.BDF, pci.RegMemLimit, d.MemLimit)
		m.k.CfgWrite8(t, d.BDF, pci.RegIOBase, d.IOBase)
		m.k.CfgWrite8(t, d.BDF, pci.RegIOLimit, d.IOLimit)
		m.k.CfgWrite16(t, d.BDF, pci.RegIOBaseUpper, d.IOBaseUpper)
		m.k.CfgWrite16(t, d.BDF, pci.RegIOLimitUpper, d.IOLimitUpper)
		m.k.CfgWrite16(t, d.BDF, pci.RegCommand,
			pci.CmdMemEnable|pci.CmdIOEnable|pci.CmdBusMaster)
		ok := true
		for _, c := range d.Children {
			if !m.restore(t, c) {
				ok = false
			}
		}
		return ok
	}
	for _, b := range d.BARs {
		m.k.CfgWrite32(t, d.BDF, pci.RegBAR0+4*b.Index, uint32(b.Addr))
	}
	m.k.CfgWrite8(t, d.BDF, pci.RegIntLine, uint8(d.IRQ))
	m.k.CfgWrite16(t, d.BDF, pci.RegCommand,
		pci.CmdMemEnable|pci.CmdIOEnable|pci.CmdBusMaster)
	return true
}

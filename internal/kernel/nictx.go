package kernel

import (
	"fmt"

	"pciesim/internal/devices"
	"pciesim/internal/sim"
)

// NICTxConfig parameterizes a transmit workload.
type NICTxConfig struct {
	// RingAddr is the DRAM address of the descriptor ring.
	RingAddr uint64
	// RingEntries is the descriptor count (power of two not required).
	RingEntries int
	// BufAddr is the DRAM address frames are sent from.
	BufAddr uint64
	// FrameLen is the frame size in bytes.
	FrameLen int
	// Frames is how many frames to send.
	Frames int
	// PerFrameOverhead models the driver's per-packet submission cost.
	PerFrameOverhead sim.Tick
}

// NICTxResult reports a transmit run.
type NICTxResult struct {
	Frames  int
	Bytes   uint64
	Elapsed sim.Tick
}

// ThroughputGbps returns payload throughput.
func (r NICTxResult) ThroughputGbps() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Elapsed.Seconds() / 1e9
}

// String implements fmt.Stringer.
func (r NICTxResult) String() string {
	return fmt.Sprintf("%d frames, %d bytes in %v (%.3f Gb/s)",
		r.Frames, r.Bytes, r.Elapsed, r.ThroughputGbps())
}

// RunNICTx drives the bound NIC through a transmit burst: the task
// writes each descriptor into the DRAM ring (timing stores through the
// MemBus), rings the tail doorbell over MMIO, and waits for the TX
// interrupt; the device fetches descriptor and frame by DMA through the
// PCI-Express fabric before "transmitting".
func (d *E1000eDriver) RunNICTx(t *Task, cfg NICTxConfig) (NICTxResult, error) {
	h := d.Handle
	if h == nil {
		return NICTxResult{}, fmt.Errorf("e1000e: not bound")
	}
	if cfg.RingEntries == 0 {
		cfg.RingEntries = 64
	}
	if cfg.FrameLen == 0 {
		cfg.FrameLen = 1500
	}
	if cfg.Frames == 0 {
		cfg.Frames = 1
	}
	if d.TxDone == nil {
		return NICTxResult{}, fmt.Errorf("e1000e: no TX completion waiter (probe too old?)")
	}

	start := t.Now()
	// Ring setup.
	t.Write32(h.BAR0+devices.NICRegTDBAL, uint32(cfg.RingAddr))
	t.Write32(h.BAR0+devices.NICRegTDBAH, uint32(cfg.RingAddr>>32))
	t.Write32(h.BAR0+devices.NICRegTDLEN, uint32(cfg.RingEntries*devices.NICDescSize))
	t.Write32(h.BAR0+devices.NICRegIMS, devices.NICIntTxDone)

	tail := uint32(0)
	for i := 0; i < cfg.Frames; i++ {
		t.Delay(cfg.PerFrameOverhead)
		// Write the descriptor: 8-byte buffer address + length.
		slot := cfg.RingAddr + uint64(tail)*devices.NICDescSize
		t.Write32(slot, uint32(cfg.BufAddr))
		t.Write32(slot+4, uint32(cfg.BufAddr>>32))
		t.Write32(slot+8, uint32(cfg.FrameLen))
		tail = (tail + 1) % uint32(cfg.RingEntries)
		t.Write32(h.BAR0+devices.NICRegTDT, tail)
		// Wait for the completion interrupt, then acknowledge.
		t.Wait(d.TxDone)
		t.Read32(h.BAR0 + devices.NICRegICR) // read-to-clear
	}
	return NICTxResult{
		Frames:  cfg.Frames,
		Bytes:   uint64(cfg.Frames) * uint64(cfg.FrameLen),
		Elapsed: t.Now() - start,
	}, nil
}

// SetupNICTxRing programs one NIC's transmit ring and unmasks the TX
// interrupt — the one-time half of RunNICTx, for callers that pace
// their own frames (the workload executor).
func SetupNICTxRing(t *Task, h *NICHandle, ringAddr uint64, entries int) {
	t.Write32(h.BAR0+devices.NICRegTDBAL, uint32(ringAddr))
	t.Write32(h.BAR0+devices.NICRegTDBAH, uint32(ringAddr>>32))
	t.Write32(h.BAR0+devices.NICRegTDLEN, uint32(entries*devices.NICDescSize))
	t.Write32(h.BAR0+devices.NICRegIMS, devices.NICIntTxDone)
}

// SendNICFrame submits one frame through an already-programmed TX ring
// and waits for its completion interrupt on the handle's private
// waiter (safe with concurrent flows on other NICs, unlike the
// driver-wide TxDone). It returns the next tail index.
func SendNICFrame(t *Task, h *NICHandle, ringAddr uint64, entries int, tail uint32, bufAddr uint64, frameLen int) uint32 {
	slot := ringAddr + uint64(tail)*devices.NICDescSize
	t.Write32(slot, uint32(bufAddr))
	t.Write32(slot+4, uint32(bufAddr>>32))
	t.Write32(slot+8, uint32(frameLen))
	tail = (tail + 1) % uint32(entries)
	t.Write32(h.BAR0+devices.NICRegTDT, tail)
	t.Wait(h.IntDone)
	t.Read32(h.BAR0 + devices.NICRegICR) // read-to-clear
	return tail
}

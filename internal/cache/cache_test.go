package cache

import (
	"bytes"
	"testing"

	"pciesim/internal/mem"
	"pciesim/internal/memctrl"
	"pciesim/internal/sim"
	"pciesim/internal/testdev"
)

// rig wires requester -> cache -> memory.
type rig struct {
	eng *sim.Engine
	c   *Cache
	req *testdev.Requester
	m   *memctrl.Memory
}

func newRig(t *testing.T, cfg Config, memCfg memctrl.Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	c := New(eng, "iocache", cfg)
	req := testdev.NewRequester(eng, "dev")
	m := memctrl.New(eng, "dram", mem.Range(0, 1<<30), memCfg)
	mem.Connect(req.Port(), c.CPUSidePort())
	mem.Connect(c.MemSidePort(), m.Port())
	return &rig{eng, c, req, m}
}

func TestCacheReadMissThenHit(t *testing.T) {
	r := newRig(t, Default(), memctrl.Config{Latency: 100 * sim.Nanosecond})
	r.req.Read(0x1000, 64)
	r.eng.Run()
	missLat := r.req.Completions[0].Latency()
	if missLat < 100*sim.Nanosecond {
		t.Errorf("miss latency %v, should include the 100ns memory access", missLat)
	}
	r.req.Read(0x1000, 64)
	r.eng.Run()
	hitLat := r.req.Completions[1].Latency()
	if hitLat != Default().TagLatency {
		t.Errorf("hit latency %v, want tag latency %v", hitLat, Default().TagLatency)
	}
	hits, misses, _, _, _ := r.c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestCacheFullLineWriteAllocatesWithoutFetch(t *testing.T) {
	r := newRig(t, Default(), memctrl.Config{Latency: 100 * sim.Nanosecond})
	r.req.Write(0x2000, 64)
	r.eng.Run()
	if got := r.req.Completions[0].Latency(); got != Default().TagLatency {
		t.Errorf("full-line write latency %v, want tag-only %v (no fetch)", got, Default().TagLatency)
	}
	reads, _, _, _, _ := r.m.Stats()
	if reads != 0 {
		t.Errorf("full-line write caused %d memory reads, want 0", reads)
	}
}

func TestCachePartialWriteFetchesLine(t *testing.T) {
	r := newRig(t, Default(), memctrl.Config{Latency: 100 * sim.Nanosecond})
	r.req.Write(0x2000, 8) // partial line: must fill first
	r.eng.Run()
	reads, _, _, _, _ := r.m.Stats()
	if reads != 1 {
		t.Errorf("partial write caused %d memory reads, want 1 fill", reads)
	}
	if got := r.req.Completions[0].Latency(); got < 100*sim.Nanosecond {
		t.Errorf("partial-write latency %v should include the fill", got)
	}
}

func TestCacheEvictionWritesBackDirtyLines(t *testing.T) {
	cfg := Default() // 1 KiB, 4-way, 64 B lines => 4 sets
	r := newRig(t, cfg, memctrl.Config{Latency: 10 * sim.Nanosecond})
	// Fill one set with dirty lines, then overflow it. Set index is
	// (addr/64) % 4, so stride 256 B stays in set 0.
	for i := 0; i < 5; i++ {
		r.req.Write(uint64(i)*256, 64)
	}
	r.eng.Run()
	_, _, wbs, _, _ := r.c.Stats()
	if wbs != 1 {
		t.Errorf("writebacks = %d, want 1 (one dirty eviction)", wbs)
	}
	_, memWrites, _, _, _ := r.m.Stats()
	if memWrites != 1 {
		t.Errorf("memory saw %d writes, want 1 writeback", memWrites)
	}
}

func TestCacheWriteBufferLimitBackpressures(t *testing.T) {
	cfg := Default()
	cfg.WriteBuffers = 1
	// Slow memory so writebacks pile up.
	r := newRig(t, cfg, memctrl.Config{Latency: 10 * sim.Microsecond})
	// 16 dirty lines then 16 more full-line writes to the same sets,
	// forcing 16 evictions through 1 write buffer.
	for i := 0; i < 32; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	if len(r.req.Completions) != 32 {
		t.Fatalf("%d completions, want 32", len(r.req.Completions))
	}
	_, _, wbs, _, refusedWB := r.c.Stats()
	if wbs != 16 {
		t.Errorf("writebacks = %d, want 16", wbs)
	}
	if refusedWB == 0 {
		t.Error("expected write-buffer refusals with 1 buffer and slow memory")
	}
}

func TestCacheMSHRLimitBackpressures(t *testing.T) {
	cfg := Default()
	cfg.MSHRs = 1
	r := newRig(t, cfg, memctrl.Config{Latency: 10 * sim.Microsecond})
	for i := 0; i < 8; i++ {
		r.req.Read(uint64(i)*64, 64)
	}
	r.eng.Run()
	if len(r.req.Completions) != 8 {
		t.Fatalf("%d completions, want 8", len(r.req.Completions))
	}
	_, _, _, refusedMSHR, _ := r.c.Stats()
	if refusedMSHR == 0 {
		t.Error("expected MSHR refusals with 1 MSHR and 8 outstanding reads")
	}
}

func TestCacheMissMergingSameLine(t *testing.T) {
	r := newRig(t, Default(), memctrl.Config{Latency: sim.Microsecond})
	r.req.Read(0x3000, 32)
	r.req.Read(0x3020, 32) // same line, while fill in flight
	r.eng.Run()
	reads, _, _, _, _ := r.m.Stats()
	if reads != 1 {
		t.Errorf("memory saw %d reads, want 1 (merged into one fill)", reads)
	}
	if len(r.req.Completions) != 2 {
		t.Fatalf("both requests must complete")
	}
}

func TestCacheDataIntegrityThroughFillAndWriteback(t *testing.T) {
	r := newRig(t, Default(), memctrl.Config{})
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i ^ 0x5a)
	}
	r.m.WriteFunctional(0x4000, payload)
	got := make([]byte, 64)
	r.req.ReadData(0x4000, got) // miss -> fill carries data
	r.eng.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("fill data mismatch")
	}
	// Dirty the line with new data, then force eviction and check the
	// writeback reached memory.
	newData := make([]byte, 64)
	for i := range newData {
		newData[i] = byte(0xf0 | i&0xf)
	}
	r.req.WriteData(0x4000, newData)
	r.eng.Run()
	// Evict: write three more lines in the same set, then a fourth.
	for i := 1; i <= 4; i++ {
		r.req.Write(0x4000+uint64(i)*256, 64)
	}
	r.eng.Run()
	check := make([]byte, 64)
	r.m.ReadFunctional(0x4000, check)
	if !bytes.Equal(check, newData) {
		t.Error("writeback did not carry dirty data to memory")
	}
}

func TestCachePartialWriteMergesIntoFilledLine(t *testing.T) {
	r := newRig(t, Default(), memctrl.Config{})
	base := make([]byte, 64)
	for i := range base {
		base[i] = byte(i)
	}
	r.m.WriteFunctional(0x5000, base)
	r.req.WriteData(0x5010, []byte{0xde, 0xad, 0xbe, 0xef})
	got := make([]byte, 64)
	r.req.ReadData(0x5000, got)
	r.eng.Run()
	want := append([]byte(nil), base...)
	copy(want[0x10:], []byte{0xde, 0xad, 0xbe, 0xef})
	if !bytes.Equal(got, want) {
		t.Error("partial write did not merge into filled line")
	}
}

func TestCacheLineStraddlePanics(t *testing.T) {
	r := newRig(t, Default(), memctrl.Config{})
	r.req.Read(0x1030, 64) // crosses 0x1040
	defer func() {
		if recover() == nil {
			t.Fatal("line-straddling access should panic")
		}
	}()
	r.eng.Run()
}

func TestCacheInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid geometry should panic")
		}
	}()
	New(sim.NewEngine(), "bad", Config{Size: 0, LineSize: 64, Assoc: 4})
}

func TestCacheHeavyDMAWriteStream(t *testing.T) {
	// Integration-flavoured: a long full-line write stream (the shape of
	// disk DMA) must complete exactly, with writebacks bounded by the
	// write-buffer count at any instant.
	cfg := Default()
	r := newRig(t, cfg, memctrl.Config{Latency: 200 * sim.Nanosecond, PerByte: 10, MaxOutstanding: 8})
	r.req.Window = 8
	const n = 512
	for i := 0; i < n; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	if len(r.req.Completions) != n {
		t.Fatalf("%d completions, want %d", len(r.req.Completions), n)
	}
	_, _, wbs, _, _ := r.c.Stats()
	// All but the 16 lines still resident must have been written back.
	if want := uint64(n - 16); wbs != want {
		t.Errorf("writebacks = %d, want %d", wbs, want)
	}
}

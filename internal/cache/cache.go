// Package cache implements the gem5 IOCache (§III of the paper): a small
// set-associative cache that sits between the off-chip interconnect and
// the memory bus. It plays two roles in the modeled system: it is the
// coherency point for device DMA, and it is a bandwidth buffer between
// connections of different widths — its MSHR and write-buffer counts
// bound how fast the I/O tree can drain into DRAM, which is one of the
// pressures behind the x8-link congestion the paper studies.
package cache

import (
	"fmt"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
	"pciesim/internal/stats"
)

// Config parameterizes the cache.
type Config struct {
	// Size is the total capacity in bytes (gem5's IOCache default is a
	// small 1 KiB cache).
	Size int
	// LineSize is the cache line size in bytes; DMA engines chunk their
	// transfers to this size.
	LineSize int
	// Assoc is the set associativity.
	Assoc int
	// TagLatency is charged on every access (hit or miss detection).
	TagLatency sim.Tick
	// MSHRs bounds outstanding fetches (read misses / partial-write
	// fills). Further misses are refused until one completes.
	MSHRs int
	// WriteBuffers bounds outstanding writebacks to memory.
	WriteBuffers int
	// Uncacheable lists address ranges that bypass the cache entirely
	// (e.g. an interrupt controller's MSI frame): requests are
	// forwarded to the memory side untouched and their responses
	// returned to the requester.
	Uncacheable mem.RangeList
}

// Default returns the configuration used by the validation experiments:
// a 1 KiB, 4-way cache with 64 B lines, 4 MSHRs and 8 write buffers.
func Default() Config {
	return Config{
		Size:         1024,
		LineSize:     64,
		Assoc:        4,
		TagLatency:   10 * sim.Nanosecond,
		MSHRs:        4,
		WriteBuffers: 8,
	}
}

type line struct {
	tag      uint64
	valid    bool
	dirty    bool
	reserved bool // victim of an in-flight fill; not visible to lookups
	lastUse  uint64
	data     []byte
}

type mshr struct {
	lineAddr uint64
	targets  []*mem.Packet
	victim   *line
	issuedAt sim.Tick // fetch issue time, for the fill-latency histogram
}

// Cache is the IOCache. Requests enter at the cpu-side slave port (from
// the I/O interconnect) and misses/writebacks leave at the mem-side
// master port (to the memory bus).
type Cache struct {
	eng  *sim.Engine
	name string
	cfg  Config

	cpuSide *mem.SlavePort
	memSide *mem.MasterPort

	sets    [][]line
	useTick uint64

	mshrs      map[uint64]*mshr
	writebacks int
	respQ      *mem.SendQueue
	memQ       *mem.SendQueue
	needsRetry bool

	// Stats.
	uncached                 uint64
	hits, misses, fills      uint64
	writebackCount           uint64
	refusedMSHR, refusedWB   uint64
	fullLineWriteAllocations uint64

	mshrGauge *stats.Gauge
	fillLat   *stats.Histogram
}

type wbToken struct{ c *Cache }
type fillToken struct {
	c *Cache
	m *mshr
}
type passToken struct {
	c    *Cache
	orig any
}

// New creates a cache.
func New(eng *sim.Engine, name string, cfg Config) *Cache {
	if cfg.LineSize <= 0 || cfg.Size <= 0 || cfg.Assoc <= 0 {
		panic("cache: invalid geometry")
	}
	nLines := cfg.Size / cfg.LineSize
	if nLines%cfg.Assoc != 0 {
		panic("cache: size/lineSize must be a multiple of assoc")
	}
	nSets := nLines / cfg.Assoc
	c := &Cache{
		eng:   eng,
		name:  name,
		cfg:   cfg,
		sets:  make([][]line, nSets),
		mshrs: make(map[uint64]*mshr),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	c.cpuSide = mem.NewSlavePort(name+".cpu_side", (*cacheCPUSide)(c))
	c.memSide = mem.NewMasterPort(name+".mem_side", (*cacheMemSide)(c))
	c.respQ = mem.NewSendQueue(eng, name+".respq", 0, func(p *mem.Packet) bool {
		return c.cpuSide.SendTimingResp(p)
	})
	c.memQ = mem.NewSendQueue(eng, name+".memq", 0, func(p *mem.Packet) bool {
		return c.memSide.SendTimingReq(p)
	})
	r := eng.Stats()
	r.CounterFunc(name+".hits", func() uint64 { return c.hits })
	r.CounterFunc(name+".misses", func() uint64 { return c.misses })
	r.CounterFunc(name+".fills", func() uint64 { return c.fills })
	r.CounterFunc(name+".uncached", func() uint64 { return c.uncached })
	r.CounterFunc(name+".writebacks", func() uint64 { return c.writebackCount })
	r.CounterFunc(name+".refused_mshr", func() uint64 { return c.refusedMSHR })
	r.CounterFunc(name+".refused_wb", func() uint64 { return c.refusedWB })
	r.CounterFunc(name+".full_line_write_allocs", func() uint64 { return c.fullLineWriteAllocations })
	c.mshrGauge = r.Gauge(name + ".mshrs")
	c.fillLat = r.Histogram(name + ".fill_latency")
	return c
}

// CPUSidePort returns the slave port facing the I/O interconnect.
func (c *Cache) CPUSidePort() *mem.SlavePort { return c.cpuSide }

// MemSidePort returns the master port facing the memory bus.
func (c *Cache) MemSidePort() *mem.MasterPort { return c.memSide }

// Stats returns (hits, misses, writebacks, refusals-for-MSHR,
// refusals-for-write-buffer).
func (c *Cache) Stats() (hits, misses, writebacks, refusedMSHR, refusedWB uint64) {
	return c.hits, c.misses, c.writebackCount, c.refusedMSHR, c.refusedWB
}

func (c *Cache) lineAddr(addr uint64) uint64 { return addr &^ uint64(c.cfg.LineSize-1) }
func (c *Cache) setIndex(lineAddr uint64) int {
	return int((lineAddr / uint64(c.cfg.LineSize)) % uint64(len(c.sets)))
}

func (c *Cache) lookup(lineAddr uint64) *line {
	set := c.sets[c.setIndex(lineAddr)]
	for i := range set {
		if set[i].valid && !set[i].reserved && set[i].tag == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// victim picks the replacement candidate in the line's set: an invalid,
// unreserved way if one exists, else the LRU way. It returns nil if all
// ways are reserved by in-flight fills.
func (c *Cache) victim(lineAddr uint64) *line {
	set := c.sets[c.setIndex(lineAddr)]
	var lru *line
	for i := range set {
		l := &set[i]
		if l.reserved {
			continue
		}
		if !l.valid {
			return l
		}
		if lru == nil || l.lastUse < lru.lastUse {
			lru = l
		}
	}
	return lru
}

func (c *Cache) touch(l *line) {
	c.useTick++
	l.lastUse = c.useTick
}

// cacheCPUSide adapts Cache to mem.SlaveOwner.
type cacheCPUSide Cache

func (o *cacheCPUSide) c() *Cache { return (*Cache)(o) }

func (o *cacheCPUSide) RecvTimingReq(_ *mem.SlavePort, pkt *mem.Packet) bool {
	c := o.c()
	if c.cfg.Uncacheable.Contains(pkt.Addr) {
		// Pass through untouched; the response (if any) retraces via
		// the wrapped context.
		c.uncached++
		pkt.Context = passToken{c, pkt.Context}
		c.memQ.Push(pkt, c.eng.Now()+c.cfg.TagLatency)
		return true
	}
	la := c.lineAddr(pkt.Addr)
	if c.lineAddr(pkt.Addr+uint64(pkt.Size)-1) != la {
		panic(fmt.Sprintf("cache %s: %v spans a line boundary", c.name, pkt))
	}

	if l := c.lookup(la); l != nil {
		// Hit: merge or copy data, respond after the tag latency.
		c.hits++
		c.touch(l)
		c.access(l, pkt)
		c.respond(pkt)
		return true
	}

	// Miss path. A full-line write allocates in place without a fetch;
	// anything else needs a fill from memory.
	fullLineWrite := pkt.Cmd == mem.WriteReq && int(pkt.Addr-la) == 0 && pkt.Size == c.cfg.LineSize

	if m, ok := c.mshrs[la]; ok {
		// A fill for this line is already in flight; piggyback on it
		// (even a full-line write: installing a second copy of the line
		// in another way would corrupt the cache).
		m.targets = append(m.targets, pkt)
		c.misses++
		return true
	}

	v := c.victim(la)
	if v == nil {
		// Every way is reserved by an outstanding fill.
		c.refusedMSHR++
		c.needsRetry = true
		return false
	}
	needWB := v.valid && v.dirty
	if needWB && c.writebacks >= c.cfg.WriteBuffers {
		c.refusedWB++
		c.needsRetry = true
		return false
	}

	if fullLineWrite {
		c.misses++
		c.fullLineWriteAllocations++
		if needWB {
			c.issueWriteback(v)
		}
		c.install(v, la)
		v.dirty = true
		c.access(v, pkt)
		c.respond(pkt)
		return true
	}

	if len(c.mshrs) >= c.cfg.MSHRs {
		c.refusedMSHR++
		c.needsRetry = true
		return false
	}
	c.misses++
	if needWB {
		c.issueWriteback(v)
	}
	// Reserve the victim way so concurrent misses cannot claim it.
	v.valid = false
	v.dirty = false
	v.reserved = true
	m := &mshr{lineAddr: la, targets: []*mem.Packet{pkt}, victim: v, issuedAt: c.eng.Now()}
	c.mshrs[la] = m
	c.mshrGauge.Set(int64(len(c.mshrs)))
	fetch := mem.NewPacket(mem.ReadReq, la, c.cfg.LineSize)
	fetch.Data = make([]byte, c.cfg.LineSize)
	fetch.Context = fillToken{c, m}
	c.memQ.Push(fetch, c.eng.Now()+c.cfg.TagLatency)
	return true
}

func (o *cacheCPUSide) RecvRespRetry(*mem.SlavePort) { o.c().respQ.RetryReceived() }

// AddrRanges: the IOCache is transparent; it claims nothing itself and
// is wired point-to-point (RC upstream → cache → membus).
func (o *cacheCPUSide) AddrRanges(*mem.SlavePort) mem.RangeList { return nil }

// respond completes a request after the tag latency; posted writes are
// consumed without a completion (the transaction ends at the coherency
// point).
func (c *Cache) respond(pkt *mem.Packet) {
	if pkt.Posted {
		pkt.Release()
		return
	}
	c.respQ.Push(pkt.MakeResponse(), c.eng.Now()+c.cfg.TagLatency)
}

// access applies the packet to a resident line: writes mark it dirty and
// merge payload bytes; reads copy resident bytes out when the packet
// wants data.
func (c *Cache) access(l *line, pkt *mem.Packet) {
	off := int(pkt.Addr - l.tag)
	switch pkt.Cmd {
	case mem.WriteReq:
		l.dirty = true
		if pkt.Data != nil {
			c.ensureData(l)
			copy(l.data[off:], pkt.Data[:pkt.Size])
		}
	case mem.ReadReq:
		if pkt.Data != nil {
			c.ensureData(l)
			copy(pkt.Data[:pkt.Size], l.data[off:])
		}
	}
}

func (c *Cache) ensureData(l *line) {
	if l.data == nil {
		l.data = make([]byte, c.cfg.LineSize)
	}
}

func (c *Cache) install(l *line, lineAddr uint64) {
	l.tag = lineAddr
	l.valid = true
	l.dirty = false
	l.reserved = false
	if l.data != nil {
		for i := range l.data {
			l.data[i] = 0
		}
	}
	c.touch(l)
}

func (c *Cache) issueWriteback(v *line) {
	c.writebacks++
	c.writebackCount++
	wb := mem.NewPacket(mem.WriteReq, v.tag, c.cfg.LineSize)
	if v.data != nil {
		wb.Data = append([]byte(nil), v.data...)
	}
	wb.Context = wbToken{c}
	c.memQ.Push(wb, c.eng.Now()+c.cfg.TagLatency)
	v.valid = false
	v.dirty = false
}

// retryIfNeeded wakes the refused upstream sender once a resource frees.
func (c *Cache) retryIfNeeded() {
	if !c.needsRetry {
		return
	}
	c.needsRetry = false
	c.eng.ScheduleAt(c.name+".reqretry", c.eng.Now(), sim.PriorityRetry, c.cpuSide.SendReqRetry)
}

// cacheMemSide adapts Cache to mem.MasterOwner.
type cacheMemSide Cache

func (o *cacheMemSide) c() *Cache { return (*Cache)(o) }

func (o *cacheMemSide) RecvTimingResp(_ *mem.MasterPort, pkt *mem.Packet) bool {
	c := o.c()
	switch tok := pkt.Context.(type) {
	case wbToken:
		c.writebacks--
		c.retryIfNeeded()
		return true
	case passToken:
		pkt.Context = tok.orig
		c.respQ.Push(pkt, c.eng.Now())
		return true
	case fillToken:
		m := tok.m
		delete(c.mshrs, m.lineAddr)
		c.mshrGauge.Set(int64(len(c.mshrs)))
		c.fillLat.Observe(uint64(c.eng.Now() - m.issuedAt))
		l := m.victim
		c.install(l, m.lineAddr)
		if pkt.Data != nil {
			c.ensureData(l)
			copy(l.data, pkt.Data)
		}
		c.fills++
		for _, target := range m.targets {
			c.access(l, target)
			if target.Posted {
				target.Release()
				continue
			}
			c.respQ.Push(target.MakeResponse(), c.eng.Now())
		}
		c.retryIfNeeded()
		return true
	default:
		panic(fmt.Sprintf("cache %s: response %v with unknown context %T", c.name, pkt, pkt.Context))
	}
}

func (o *cacheMemSide) RecvReqRetry(*mem.MasterPort) { o.c().memQ.RetryReceived() }

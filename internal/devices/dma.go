// Package devices provides the PCI-Express device models used by the
// validation experiments: an IDE-like storage device with a constant
// access latency (the paper's gem5 IDE disk stand-in) and the
// 8254x-pcie network controller of §IV, plus the DMA engine they share.
package devices

import (
	"fmt"
	"sort"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
	"pciesim/internal/stats"
	"pciesim/internal/trace"
)

// DMADone is invoked when a queued DMA transfer finishes. ok is true
// when every chunk completed; false when the engine's completion
// timeout aborted the transfer (the fabric or link stopped answering).
type DMADone func(ok bool)

type dmaTransfer struct {
	write  bool
	posted bool
	addr   uint64
	size   int
	data   []byte
	done   DMADone
	// startedAt stamps when the transfer left the queue and began
	// issuing chunks, for the transfer-latency histogram.
	startedAt sim.Tick
}

// DMAEngine issues memory transfers through a device's DMA master port.
// Transfers are chunked into cache-line-sized packets — the modeled
// MaxPayloadSize — and, matching the paper's non-posted write model,
// one transfer must collect responses for *all* its chunks before the
// next transfer begins: "once a sector is transmitted by the IDE disk
// over the link, responses for all gem5 write packets need to be
// obtained before the next sector can be transmitted" (§VI-B).
type DMAEngine struct {
	eng   *sim.Engine
	name  string
	port  *mem.MasterPort
	alloc mem.Allocator

	// ChunkSize is the per-packet payload (cache line size).
	ChunkSize int

	// PostedWrites makes DMA writes posted, like real PCI-Express
	// memory-write TLPs: no completions return and a transfer finishes
	// when its last chunk is accepted by the port. The paper's gem5
	// model lacks this ("we do not support posted write requests",
	// §VI-B); the flag quantifies that ablation.
	PostedWrites bool

	// Timeout, when nonzero, bounds how long a transfer may stay in
	// flight. On expiry the transfer is aborted with ok=false and any
	// chunk responses that straggle in later are dropped — this is
	// the device-side completion-timeout that keeps a DMA engine from
	// wedging forever behind a dead link.
	Timeout sim.Tick

	queue       []dmaTransfer
	current     *dmaTransfer
	issued      int // bytes of the current transfer handed to the port
	outstanding int // chunks in flight
	blocked     bool
	ctoEv       *sim.Event
	// live maps outstanding non-posted chunk IDs to their issue time:
	// the timeout drop-filter and the chunk-latency histogram share it.
	live map[uint64]sim.Tick

	// Stats.
	transfers, chunks uint64
	bytesMoved        uint64
	timeouts          uint64 // transfers aborted by the completion timeout
	lateResps         uint64 // chunk responses dropped after their transfer aborted

	transferLat *stats.Histogram
	chunkLat    *stats.Histogram
	// chunkSeg is the dma-chunk attribution histogram, resolved lazily
	// when spans are armed (nil until then, so unarmed dumps are
	// unchanged).
	chunkSeg *stats.Histogram
}

// NewDMAEngine creates an engine with the given chunk (cache line)
// size. Packet IDs come from the engine so traces can follow one chunk
// across the fabric.
func NewDMAEngine(eng *sim.Engine, name string, chunkSize int) *DMAEngine {
	d := &DMAEngine{eng: eng, name: name, ChunkSize: chunkSize, live: make(map[uint64]sim.Tick)}
	d.alloc.Bind(eng)
	d.port = mem.NewMasterPort(name+".dma", d)
	d.ctoEv = eng.NewEvent(name+".dmaTimeout", d.timeoutFire)
	r := eng.Stats()
	r.CounterFunc(name+".transfers", func() uint64 { return d.transfers })
	r.CounterFunc(name+".chunks", func() uint64 { return d.chunks })
	r.CounterFunc(name+".bytes", func() uint64 { return d.bytesMoved })
	r.CounterFunc(name+".timeouts", func() uint64 { return d.timeouts })
	r.CounterFunc(name+".late_resps", func() uint64 { return d.lateResps })
	d.transferLat = r.Histogram(name + ".transfer_latency")
	d.chunkLat = r.Histogram(name + ".chunk_latency")
	return d
}

// Port returns the DMA master port (wire it to a link's downstream
// slave port or a crossbar).
func (d *DMAEngine) Port() *mem.MasterPort { return d.port }

// UsePacketPool recycles the engine's chunk packets through the given
// engine-local pool.
func (d *DMAEngine) UsePacketPool(p *mem.Pool) { d.alloc.BindPool(p) }

// Busy reports whether a transfer is in progress or queued.
func (d *DMAEngine) Busy() bool { return d.current != nil || len(d.queue) > 0 }

// Stats returns (transfers completed, chunk packets issued, payload
// bytes moved).
func (d *DMAEngine) Stats() (transfers, chunks, bytes uint64) {
	return d.transfers, d.chunks, d.bytesMoved
}

// Write queues a DMA write of size bytes to addr. data is optional; when
// provided it must be size bytes and is carried in the chunk packets.
func (d *DMAEngine) Write(addr uint64, size int, data []byte, done DMADone) {
	d.enqueue(dmaTransfer{write: true, posted: d.PostedWrites, addr: addr, size: size, data: data, done: done})
}

// WritePosted queues an explicitly posted write regardless of the
// engine-wide PostedWrites setting. It is ordered behind earlier
// transfers, which is what message-signaled interrupts require: the
// MSI write must not pass the data it signals completion of.
func (d *DMAEngine) WritePosted(addr uint64, size int, data []byte, done DMADone) {
	d.enqueue(dmaTransfer{write: true, posted: true, addr: addr, size: size, data: data, done: done})
}

// Read queues a DMA read of size bytes from addr. buf is optional; when
// provided, response data is copied into it.
func (d *DMAEngine) Read(addr uint64, size int, buf []byte, done DMADone) {
	d.enqueue(dmaTransfer{write: false, addr: addr, size: size, data: buf, done: done})
}

func (d *DMAEngine) enqueue(t dmaTransfer) {
	if t.size <= 0 {
		panic(fmt.Sprintf("devices %s: DMA of %d bytes", d.name, t.size))
	}
	if t.data != nil && len(t.data) != t.size {
		panic(fmt.Sprintf("devices %s: DMA buffer %d != size %d", d.name, len(t.data), t.size))
	}
	d.queue = append(d.queue, t)
	d.pump()
}

// pump starts the next transfer and pushes chunks until the port
// refuses (the link's replay buffer throttling us) or the transfer is
// fully issued.
func (d *DMAEngine) pump() {
	if d.current == nil {
		if len(d.queue) == 0 {
			return
		}
		t := d.queue[0]
		d.queue = d.queue[1:]
		t.startedAt = d.eng.Now()
		d.current = &t
		d.issued = 0
		if d.Timeout > 0 {
			d.eng.Reschedule(d.ctoEv, d.eng.Now()+d.Timeout, sim.PriorityTimer)
		}
		if tr := d.eng.Tracer(); tr.On(trace.CatDMA) {
			dir := "read"
			if t.write {
				dir = "write"
			}
			tr.Emit(trace.CatDMA, uint64(d.eng.Now()), d.name, "start", 0,
				fmt.Sprintf("%s addr=%#x size=%d", dir, t.addr, t.size))
		}
	}
	t := d.current
	for !d.blocked && d.issued < t.size {
		off := d.issued
		// Chunks respect line alignment so the IOCache upstream never
		// sees a line-straddling access.
		n := d.ChunkSize - int((t.addr+uint64(off))%uint64(d.ChunkSize))
		if n > t.size-off {
			n = t.size - off
		}
		var pkt *mem.Packet
		if t.write {
			pkt = d.alloc.NewRequest(mem.WriteReq, t.addr+uint64(off), n)
			pkt.Posted = t.posted
			if t.data != nil {
				pkt.Data = t.data[off : off+n]
			}
		} else {
			pkt = d.alloc.NewRequest(mem.ReadReq, t.addr+uint64(off), n)
			if t.data != nil {
				pkt.Data = t.data[off : off+n]
			}
		}
		pkt.Context = d
		if !d.port.SendTimingReq(pkt) {
			// Refused: the receiver kept no reference, so the packet
			// goes straight back to the pool; the retry re-issues the
			// chunk from d.issued with a recycled packet.
			pkt.Release()
			d.blocked = true
			return
		}
		d.issued += n
		if !pkt.Posted {
			d.outstanding++
			d.live[pkt.ID] = d.eng.Now()
		}
		d.chunks++
		d.bytesMoved += uint64(n)
		if tr := d.eng.Tracer(); tr.On(trace.CatDMA) {
			tr.Emit(trace.CatDMA, uint64(d.eng.Now()), d.name, "chunk-issue",
				pkt.ID, fmt.Sprintf("%v addr=%#x size=%d", pkt.Cmd, pkt.Addr, n))
		}
	}
	if t := d.current; t != nil && d.issued >= t.size && d.outstanding == 0 {
		// Fully posted transfer: complete on final acceptance.
		d.finish(t, true)
	}
}

func (d *DMAEngine) finish(t *dmaTransfer, ok bool) {
	d.eng.Deschedule(d.ctoEv)
	d.current = nil
	if ok {
		d.transfers++
		d.transferLat.Observe(uint64(d.eng.Now() - t.startedAt))
	} else {
		d.timeouts++
	}
	if tr := d.eng.Tracer(); tr.On(trace.CatDMA) {
		ev := "complete"
		if !ok {
			ev = "abort"
		}
		tr.Emit(trace.CatDMA, uint64(d.eng.Now()), d.name, ev, 0,
			fmt.Sprintf("addr=%#x size=%d", t.addr, t.size))
	}
	if t.done != nil {
		t.done(ok)
	}
	d.pump()
}

// timeoutFire aborts the in-flight transfer: whatever chunks are still
// outstanding are abandoned (their responses, if they ever arrive, are
// dropped by the live-ID check) and the transfer completes with ok
// false so the device can report the error instead of hanging.
func (d *DMAEngine) timeoutFire() {
	t := d.current
	if t == nil {
		return
	}
	d.outstanding = 0
	if tr := d.eng.Tracer(); tr.On(trace.CatFault) {
		// Name the exact chunks abandoned, in sorted order so the
		// trace is deterministic.
		ids := make([]uint64, 0, len(d.live))
		for id := range d.live {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		tr.Emit(trace.CatFault, uint64(d.eng.Now()), d.name, "dma-timeout", 0,
			fmt.Sprintf("aborting transfer addr=%#x size=%d, abandoned chunks %v", t.addr, t.size, ids))
	}
	for id := range d.live {
		delete(d.live, id)
	}
	d.finish(t, false)
}

// ErrorStats returns (transfers aborted by timeout, late chunk
// responses dropped).
func (d *DMAEngine) ErrorStats() (timeouts, late uint64) {
	return d.timeouts, d.lateResps
}

// RecvTimingResp implements mem.MasterOwner: collect chunk completions;
// finish the transfer when the last one lands.
func (d *DMAEngine) RecvTimingResp(_ *mem.MasterPort, pkt *mem.Packet) bool {
	if pkt.Context != any(d) {
		panic(fmt.Sprintf("devices %s: foreign response %v", d.name, pkt))
	}
	if issuedAt, ok := d.live[pkt.ID]; ok {
		delete(d.live, pkt.ID)
		d.chunkLat.Observe(uint64(d.eng.Now() - issuedAt))
		if tr := d.eng.Tracer(); tr.On(trace.CatDMA) {
			tr.Emit(trace.CatDMA, uint64(d.eng.Now()), d.name, "chunk-done", pkt.ID, "")
		}
		if d.eng.SpansOn() {
			if d.chunkSeg == nil {
				d.chunkSeg = d.eng.Seg("dma-chunk")
			}
			d.chunkSeg.Observe(uint64(d.eng.Now() - issuedAt))
			if tr := d.eng.Tracer(); tr.On(trace.CatSpan) {
				tr.Span(uint64(issuedAt), uint64(d.eng.Now()), d.name, "dma-chunk", pkt.ID, "")
			}
		}
	} else if d.Timeout > 0 {
		// A straggler for a transfer the timeout already aborted:
		// swallow it so it cannot corrupt the next transfer's
		// barrier accounting.
		d.lateResps++
		if tr := d.eng.Tracer(); tr.On(trace.CatFault) {
			tr.Emit(trace.CatFault, uint64(d.eng.Now()), d.name, "late-chunk", pkt.ID,
				"response for pkt after its transfer timed out; dropped")
		}
		pkt.Release()
		return true
	}
	pkt.Release()
	d.outstanding--
	t := d.current
	if t == nil {
		panic(fmt.Sprintf("devices %s: response with no transfer in flight", d.name))
	}
	if d.issued >= t.size && d.outstanding == 0 {
		// Barrier satisfied: the transfer is complete.
		d.finish(t, true)
	}
	return true
}

// RecvReqRetry implements mem.MasterOwner: the link freed replay-buffer
// space; resume issuing chunks.
func (d *DMAEngine) RecvReqRetry(*mem.MasterPort) {
	d.blocked = false
	d.pump()
}

// Package devices provides the PCI-Express device models used by the
// validation experiments: an IDE-like storage device with a constant
// access latency (the paper's gem5 IDE disk stand-in) and the
// 8254x-pcie network controller of §IV, plus the DMA engine they share.
package devices

import (
	"fmt"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
)

// DMADone is invoked when a queued DMA transfer finishes. ok is true
// when every chunk completed; false when the engine's completion
// timeout aborted the transfer (the fabric or link stopped answering).
type DMADone func(ok bool)

type dmaTransfer struct {
	write  bool
	posted bool
	addr   uint64
	size   int
	data   []byte
	done   DMADone
}

// DMAEngine issues memory transfers through a device's DMA master port.
// Transfers are chunked into cache-line-sized packets — the modeled
// MaxPayloadSize — and, matching the paper's non-posted write model,
// one transfer must collect responses for *all* its chunks before the
// next transfer begins: "once a sector is transmitted by the IDE disk
// over the link, responses for all gem5 write packets need to be
// obtained before the next sector can be transmitted" (§VI-B).
type DMAEngine struct {
	eng   *sim.Engine
	name  string
	port  *mem.MasterPort
	alloc mem.Allocator

	// ChunkSize is the per-packet payload (cache line size).
	ChunkSize int

	// PostedWrites makes DMA writes posted, like real PCI-Express
	// memory-write TLPs: no completions return and a transfer finishes
	// when its last chunk is accepted by the port. The paper's gem5
	// model lacks this ("we do not support posted write requests",
	// §VI-B); the flag quantifies that ablation.
	PostedWrites bool

	// Timeout, when nonzero, bounds how long a transfer may stay in
	// flight. On expiry the transfer is aborted with ok=false and any
	// chunk responses that straggle in later are dropped — this is
	// the device-side completion-timeout that keeps a DMA engine from
	// wedging forever behind a dead link.
	Timeout sim.Tick

	queue       []dmaTransfer
	current     *dmaTransfer
	issued      int // bytes of the current transfer handed to the port
	outstanding int // chunks in flight
	blocked     bool
	ctoEv       *sim.Event
	live        map[uint64]struct{} // outstanding chunk IDs (Timeout mode only)

	// Stats.
	transfers, chunks uint64
	bytesMoved        uint64
	timeouts          uint64 // transfers aborted by the completion timeout
	lateResps         uint64 // chunk responses dropped after their transfer aborted
}

// NewDMAEngine creates an engine with the given chunk (cache line) size.
func NewDMAEngine(eng *sim.Engine, name string, chunkSize int) *DMAEngine {
	d := &DMAEngine{eng: eng, name: name, ChunkSize: chunkSize, live: make(map[uint64]struct{})}
	d.port = mem.NewMasterPort(name+".dma", d)
	d.ctoEv = eng.NewEvent(name+".dmaTimeout", d.timeoutFire)
	return d
}

// Port returns the DMA master port (wire it to a link's downstream
// slave port or a crossbar).
func (d *DMAEngine) Port() *mem.MasterPort { return d.port }

// Busy reports whether a transfer is in progress or queued.
func (d *DMAEngine) Busy() bool { return d.current != nil || len(d.queue) > 0 }

// Stats returns (transfers completed, chunk packets issued, payload
// bytes moved).
func (d *DMAEngine) Stats() (transfers, chunks, bytes uint64) {
	return d.transfers, d.chunks, d.bytesMoved
}

// Write queues a DMA write of size bytes to addr. data is optional; when
// provided it must be size bytes and is carried in the chunk packets.
func (d *DMAEngine) Write(addr uint64, size int, data []byte, done DMADone) {
	d.enqueue(dmaTransfer{write: true, posted: d.PostedWrites, addr: addr, size: size, data: data, done: done})
}

// WritePosted queues an explicitly posted write regardless of the
// engine-wide PostedWrites setting. It is ordered behind earlier
// transfers, which is what message-signaled interrupts require: the
// MSI write must not pass the data it signals completion of.
func (d *DMAEngine) WritePosted(addr uint64, size int, data []byte, done DMADone) {
	d.enqueue(dmaTransfer{write: true, posted: true, addr: addr, size: size, data: data, done: done})
}

// Read queues a DMA read of size bytes from addr. buf is optional; when
// provided, response data is copied into it.
func (d *DMAEngine) Read(addr uint64, size int, buf []byte, done DMADone) {
	d.enqueue(dmaTransfer{write: false, addr: addr, size: size, data: buf, done: done})
}

func (d *DMAEngine) enqueue(t dmaTransfer) {
	if t.size <= 0 {
		panic(fmt.Sprintf("devices %s: DMA of %d bytes", d.name, t.size))
	}
	if t.data != nil && len(t.data) != t.size {
		panic(fmt.Sprintf("devices %s: DMA buffer %d != size %d", d.name, len(t.data), t.size))
	}
	d.queue = append(d.queue, t)
	d.pump()
}

// pump starts the next transfer and pushes chunks until the port
// refuses (the link's replay buffer throttling us) or the transfer is
// fully issued.
func (d *DMAEngine) pump() {
	if d.current == nil {
		if len(d.queue) == 0 {
			return
		}
		t := d.queue[0]
		d.queue = d.queue[1:]
		d.current = &t
		d.issued = 0
		if d.Timeout > 0 {
			d.eng.Reschedule(d.ctoEv, d.eng.Now()+d.Timeout, sim.PriorityTimer)
		}
	}
	t := d.current
	for !d.blocked && d.issued < t.size {
		off := d.issued
		// Chunks respect line alignment so the IOCache upstream never
		// sees a line-straddling access.
		n := d.ChunkSize - int((t.addr+uint64(off))%uint64(d.ChunkSize))
		if n > t.size-off {
			n = t.size - off
		}
		var pkt *mem.Packet
		if t.write {
			pkt = d.alloc.NewRequest(mem.WriteReq, t.addr+uint64(off), n)
			pkt.Posted = t.posted
			if t.data != nil {
				pkt.Data = t.data[off : off+n]
			}
		} else {
			pkt = d.alloc.NewRequest(mem.ReadReq, t.addr+uint64(off), n)
			if t.data != nil {
				pkt.Data = t.data[off : off+n]
			}
		}
		pkt.Context = d
		if !d.port.SendTimingReq(pkt) {
			d.blocked = true
			return
		}
		d.issued += n
		if !pkt.Posted {
			d.outstanding++
			if d.Timeout > 0 {
				d.live[pkt.ID] = struct{}{}
			}
		}
		d.chunks++
		d.bytesMoved += uint64(n)
	}
	if t := d.current; t != nil && d.issued >= t.size && d.outstanding == 0 {
		// Fully posted transfer: complete on final acceptance.
		d.finish(t, true)
	}
}

func (d *DMAEngine) finish(t *dmaTransfer, ok bool) {
	d.eng.Deschedule(d.ctoEv)
	d.current = nil
	if ok {
		d.transfers++
	} else {
		d.timeouts++
	}
	if t.done != nil {
		t.done(ok)
	}
	d.pump()
}

// timeoutFire aborts the in-flight transfer: whatever chunks are still
// outstanding are abandoned (their responses, if they ever arrive, are
// dropped by the live-ID check) and the transfer completes with ok
// false so the device can report the error instead of hanging.
func (d *DMAEngine) timeoutFire() {
	t := d.current
	if t == nil {
		return
	}
	d.outstanding = 0
	for id := range d.live {
		delete(d.live, id)
	}
	d.finish(t, false)
}

// ErrorStats returns (transfers aborted by timeout, late chunk
// responses dropped).
func (d *DMAEngine) ErrorStats() (timeouts, late uint64) {
	return d.timeouts, d.lateResps
}

// RecvTimingResp implements mem.MasterOwner: collect chunk completions;
// finish the transfer when the last one lands.
func (d *DMAEngine) RecvTimingResp(_ *mem.MasterPort, pkt *mem.Packet) bool {
	if pkt.Context != any(d) {
		panic(fmt.Sprintf("devices %s: foreign response %v", d.name, pkt))
	}
	if d.Timeout > 0 {
		if _, ok := d.live[pkt.ID]; !ok {
			// A straggler for a transfer the timeout already aborted:
			// swallow it so it cannot corrupt the next transfer's
			// barrier accounting.
			d.lateResps++
			return true
		}
		delete(d.live, pkt.ID)
	}
	d.outstanding--
	t := d.current
	if t == nil {
		panic(fmt.Sprintf("devices %s: response with no transfer in flight", d.name))
	}
	if d.issued >= t.size && d.outstanding == 0 {
		// Barrier satisfied: the transfer is complete.
		d.finish(t, true)
	}
	return true
}

// RecvReqRetry implements mem.MasterOwner: the link freed replay-buffer
// space; resume issuing chunks.
func (d *DMAEngine) RecvReqRetry(*mem.MasterPort) {
	d.blocked = false
	d.pump()
}

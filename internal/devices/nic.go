package devices

import (
	"encoding/binary"
	"fmt"

	"pciesim/internal/mem"
	"pciesim/internal/pci"
	"pciesim/internal/sim"
	"pciesim/internal/trace"
)

// NIC register offsets within BAR0, a subset of the Intel 8254x/82574
// register file large enough for a driver model to bring the device up
// and run descriptor-ring DMA.
const (
	NICRegCtrl   = 0x0000 // device control
	NICRegStatus = 0x0008 // device status (the Table II MMIO probe target)
	NICRegICR    = 0x00c0 // interrupt cause, read-to-clear
	NICRegIMS    = 0x00d0 // interrupt mask set
	NICRegIMC    = 0x00d8 // interrupt mask clear
	NICRegTDBAL  = 0x3800 // TX descriptor base low
	NICRegTDBAH  = 0x3804
	NICRegTDLEN  = 0x3808 // ring size in bytes
	NICRegTDH    = 0x3810 // head (device-owned)
	NICRegTDT    = 0x3818 // tail (driver-owned doorbell)
	NICRegRDBAL  = 0x2800
	NICRegRDBAH  = 0x2804
	NICRegRDLEN  = 0x2808
	NICRegRDH    = 0x2810
	NICRegRDT    = 0x2818
)

// Interrupt cause bits.
const (
	NICIntTxDone = 1 << 0
	NICIntRx     = 1 << 7
)

// NICDescSize is the descriptor size of the 8254x family.
const NICDescSize = 16

// NICConfig parameterizes the controller.
type NICConfig struct {
	// PIOLatency is the MMIO register service time.
	PIOLatency sim.Tick
	// ChunkSize is the DMA payload size (cache line).
	ChunkSize int
	// BARSize is the register BAR size (128 KiB on the 82574).
	BARSize uint64
	// WireBps, when non-zero, serializes transmitted frames at this
	// line rate (e.g. 1e9 for gigabit); zero transmits instantly.
	WireBps float64
	// MSICapable builds the MSI capability with a functional enable
	// bit; when the driver programs and enables it, interrupts leave
	// the device as posted message writes through the fabric instead
	// of the legacy INTx callback.
	MSICapable bool
	// RxFIFO is the internal receive FIFO depth in frames: arriving
	// frames queue here while the DMA engine drains them into the RX
	// ring, and overflow is dropped (InjectRxFrame returns false).
	// Zero takes the default.
	RxFIFO int
}

// DefaultNICConfig returns an 82574-like configuration.
func DefaultNICConfig() NICConfig {
	return NICConfig{
		PIOLatency: 150 * sim.Nanosecond,
		ChunkSize:  64,
		BARSize:    128 * 1024,
		WireBps:    1e9,
		RxFIFO:     32,
	}
}

// txDescriptor mirrors the legacy 8254x transmit descriptor layout:
// 8-byte buffer address, 2-byte length (the model ignores the command
// and status fields' finer points beyond descriptor-done).
type txDescriptor struct {
	Addr   uint64
	Length int
}

// NIC is the 8254x-pcie model of §IV: the gem5 8254x device model
// "with certain changes" so the e1000e driver for the PCI-Express
// 82574L detects and configures it. Its configuration space carries
// the capability chain of the 82574 datasheet — PM, MSI, PCI-Express,
// MSI-X, in that order — with PM/MSI/MSI-X inert so the driver falls
// back to a legacy interrupt handler.
type NIC struct {
	eng  *sim.Engine
	name string
	cfg  NICConfig

	config *pci.ConfigSpace
	aer    *pci.AER
	pio    *mem.SlavePort
	dma    *DMAEngine
	respQ  *mem.SendQueue

	regs   map[int]uint32
	icr    uint32
	ims    uint32
	msiCap int

	txBusy     bool
	txdoneName string // precomputed "<nic>.txdone" event name

	rxQ    []int // lengths of frames waiting in the internal RX FIFO
	rxBusy bool

	// OnInterrupt is the legacy INTx line.
	OnInterrupt func()
	// OnTransmit observes frames leaving the model (frame payloads are
	// not simulated; the length is).
	OnTransmit func(length int)
	// OnReceive observes frames landing in host memory, once per
	// delivered frame in arrival order, at the tick the payload DMA
	// completes (just before the RX interrupt is raised).
	OnReceive func(length int)
	// OnRxDiscard observes frames the device accepted into its FIFO
	// but could not deliver (RX ring unprogrammed, DMA failure).
	OnRxDiscard func(length int)

	// Stats.
	txFrames, txBytes uint64
	rxFrames          uint64
	rxDropped         uint64
}

// NewNIC builds the device and its §IV configuration space.
func NewNIC(eng *sim.Engine, name string, cfg NICConfig) *NIC {
	n := &NIC{eng: eng, name: name, cfg: cfg, regs: make(map[int]uint32)}
	n.config = pci.NewType0Space(name+".config", pci.Ident{
		VendorID: pci.VendorIntel,
		// "We set the Device ID register in the 8254x-pcie
		// configuration header to 0x10D3 to invoke the probe function
		// of the e1000e driver."
		DeviceID:     pci.Device82574L,
		ClassCode:    pci.ClassNetworkEthernet,
		RevisionID:   0x00,
		InterruptPin: 1,
	})
	n.config.AttachBAR(0, pci.NewMemBAR(cfg.BARSize))
	n.config.AttachBAR(2, pci.NewIOBAR(32))
	// Capability chain order per the 82574 datasheet: PM -> MSI ->
	// PCIe -> MSI-X (§IV).
	pci.AddPowerManagementCap(n.config)
	if cfg.MSICapable {
		n.msiCap = pci.AddMSICapRW(n.config)
	} else {
		pci.AddMSICap(n.config)
	}
	pci.AddPCIeCap(n.config, pci.PCIeCapConfig{
		PortType: pci.PCIePortEndpoint, LinkSpeed: pci.LinkSpeedGen2, LinkWidth: 1,
	})
	pci.AddMSIXCap(n.config, 5)
	// R3 extended capabilities: AER and a device serial number.
	n.aer = pci.AddAER(n.config)
	pci.AddExtendedCapability(n.config, pci.ExtCapIDSerialNumber, 1, 0x0c)

	n.pio = mem.NewSlavePort(name+".pio", (*nicPIO)(n))
	n.respQ = mem.NewSendQueue(eng, name+".respq", 0, func(p *mem.Packet) bool {
		return n.pio.SendTimingResp(p)
	})
	n.dma = NewDMAEngine(eng, name, cfg.ChunkSize)
	n.txdoneName = name + ".txdone"
	// Device status: link up (bit 1), full duplex (bit 0).
	n.regs[NICRegStatus] = 0x3
	r := eng.Stats()
	r.CounterFunc(name+".tx_frames", func() uint64 { return n.txFrames })
	r.CounterFunc(name+".tx_bytes", func() uint64 { return n.txBytes })
	r.CounterFunc(name+".rx_frames", func() uint64 { return n.rxFrames })
	return n
}

// ConfigSpace returns the configuration space for host registration.
func (n *NIC) ConfigSpace() *pci.ConfigSpace { return n.config }

// AER returns the device's Advanced Error Reporting capability.
func (n *NIC) AER() *pci.AER { return n.aer }

// PIOPort returns the MMIO slave port.
func (n *NIC) PIOPort() *mem.SlavePort { return n.pio }

// DMAPort returns the DMA master port.
func (n *NIC) DMAPort() *mem.MasterPort { return n.dma.Port() }

// UsePacketPool recycles the NIC's DMA chunk packets through the given
// engine-local pool.
func (n *NIC) UsePacketPool(p *mem.Pool) { n.dma.UsePacketPool(p) }

// BAR0 returns the register BAR.
func (n *NIC) BAR0() *pci.BAR { return n.config.BARAt(0) }

// Stats returns (frames transmitted, payload bytes transmitted, frames
// received).
func (n *NIC) Stats() (txFrames, txBytes, rxFrames uint64) {
	return n.txFrames, n.txBytes, n.rxFrames
}

// RxStats returns (frames delivered to host memory, frames dropped —
// FIFO overflow, unprogrammed ring, or failed DMA).
func (n *NIC) RxStats() (delivered, dropped uint64) {
	return n.rxFrames, n.rxDropped
}

// nicPIO adapts NIC to mem.SlaveOwner.
type nicPIO NIC

func (o *nicPIO) n() *NIC { return (*NIC)(o) }

func (o *nicPIO) RecvTimingReq(_ *mem.SlavePort, pkt *mem.Packet) bool {
	n := o.n()
	bar := n.BAR0()
	if bar.Addr() == 0 || pkt.Addr < bar.Addr() || pkt.Addr >= bar.Addr()+n.cfg.BARSize {
		panic(fmt.Sprintf("devices %s: PIO %v outside BAR0 (%#x)", n.name, pkt, bar.Addr()))
	}
	off := int(pkt.Addr - bar.Addr())
	// Register accesses are at most 4 bytes wide; wider packets (peer
	// DMA chunks landing in the BAR) touch only the addressed register
	// and read the rest of the window as zeroes.
	sz := pkt.Size
	if sz > 4 {
		sz = 4
	}
	switch pkt.Cmd {
	case mem.ReadReq:
		v := n.regRead(off)
		if pkt.Data == nil {
			pkt.Data = make([]byte, pkt.Size)
		}
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		copy(pkt.Data, buf[:sz])
	case mem.WriteReq:
		var buf [4]byte
		copy(buf[:sz], pkt.Data)
		n.regWrite(off, binary.LittleEndian.Uint32(buf[:]))
	}
	n.respQ.Push(pkt.MakeResponse(), n.eng.Now()+n.cfg.PIOLatency)
	return true
}

func (o *nicPIO) RecvRespRetry(*mem.SlavePort) { o.n().respQ.RetryReceived() }

func (o *nicPIO) AddrRanges(*mem.SlavePort) mem.RangeList {
	n := o.n()
	if n.BAR0().Addr() == 0 {
		return nil
	}
	return mem.RangeList{mem.Range(n.BAR0().Addr(), n.cfg.BARSize)}
}

func (n *NIC) regRead(off int) uint32 {
	if off == NICRegICR {
		// Read-to-clear.
		v := n.icr
		n.icr = 0
		return v
	}
	return n.regs[off]
}

func (n *NIC) regWrite(off int, v uint32) {
	switch off {
	case NICRegIMS:
		n.ims |= v
		return
	case NICRegIMC:
		n.ims &^= v
		return
	case NICRegICR:
		n.icr &^= v
		return
	}
	n.regs[off] = v
	switch off {
	case NICRegTDT:
		n.pumpTx()
	case NICRegRDT, NICRegRDLEN:
		// Returned descriptors (or a freshly programmed ring) may
		// unblock queued frames.
		n.pumpRx()
	}
}

// pumpTx walks the transmit ring from head to tail: fetch descriptor by
// DMA, fetch the frame buffer by DMA, "transmit", advance head,
// interrupt.
func (n *NIC) pumpTx() {
	if n.txBusy {
		return
	}
	head, tail := n.regs[NICRegTDH], n.regs[NICRegTDT]
	ringLen := n.regs[NICRegTDLEN] / NICDescSize
	if ringLen == 0 || head == tail {
		return
	}
	n.txBusy = true
	base := uint64(n.regs[NICRegTDBAH])<<32 | uint64(n.regs[NICRegTDBAL])
	descAddr := base + uint64(head)*NICDescSize
	descBuf := make([]byte, NICDescSize)
	n.dma.Read(descAddr, NICDescSize, descBuf, func(ok bool) {
		if !ok {
			n.txBusy = false
			return
		}
		desc := txDescriptor{
			Addr:   binary.LittleEndian.Uint64(descBuf),
			Length: int(binary.LittleEndian.Uint16(descBuf[8:])),
		}
		if desc.Length == 0 {
			desc.Length = 64 // minimum frame
		}
		n.dma.Read(desc.Addr, desc.Length, nil, func(ok bool) {
			if !ok {
				n.txBusy = false
				return
			}
			n.transmitFrame(desc.Length)
		})
	})
}

func (n *NIC) transmitFrame(length int) {
	var wireTime sim.Tick
	if n.cfg.WireBps > 0 {
		wireTime = sim.Tick(float64(length*8) / n.cfg.WireBps * float64(sim.Second))
	}
	n.eng.Schedule(n.txdoneName, wireTime, func() {
		n.txFrames++
		n.txBytes += uint64(length)
		if n.OnTransmit != nil {
			n.OnTransmit(length)
		}
		head := n.regs[NICRegTDH]
		ringLen := n.regs[NICRegTDLEN] / NICDescSize
		n.regs[NICRegTDH] = (head + 1) % ringLen
		n.txBusy = false
		n.raise(NICIntTxDone)
		n.pumpTx()
	})
}

// InjectRxFrame models an arriving frame: it enters the device's
// internal receive FIFO and is DMA-written into the next receive
// buffer (the driver model pre-programs the RX ring and returns
// descriptors through RDT), raising an RX interrupt per delivery. The
// return value reports acceptance: false means the FIFO overflowed and
// the frame was dropped on the wire.
func (n *NIC) InjectRxFrame(length int) bool {
	depth := n.cfg.RxFIFO
	if depth <= 0 {
		depth = 32
	}
	if len(n.rxQ) >= depth {
		n.rxDropped++
		return false
	}
	n.rxQ = append(n.rxQ, length)
	n.pumpRx()
	return true
}

// pumpRx drains the receive FIFO into the RX ring one frame at a time:
// fetch the head descriptor by DMA, DMA-write the payload to its
// buffer, advance RDH, interrupt, repeat. Frames queue while the ring
// is out of descriptors (RDH == RDT) and are discarded while the ring
// is unprogrammed, like a NIC whose receiver is disabled.
func (n *NIC) pumpRx() {
	for !n.rxBusy && len(n.rxQ) > 0 {
		ringLen := n.regs[NICRegRDLEN] / NICDescSize
		if ringLen == 0 {
			length := n.rxQ[0]
			n.rxQ = n.rxQ[1:]
			n.rxDropped++
			if n.OnRxDiscard != nil {
				n.OnRxDiscard(length)
			}
			continue
		}
		head, tail := n.regs[NICRegRDH], n.regs[NICRegRDT]
		if head == tail {
			return // no descriptors available; wait for an RDT write
		}
		length := n.rxQ[0]
		n.rxQ = n.rxQ[1:]
		n.rxBusy = true
		base := uint64(n.regs[NICRegRDBAH])<<32 | uint64(n.regs[NICRegRDBAL])
		descAddr := base + uint64(head)*NICDescSize
		descBuf := make([]byte, NICDescSize)
		n.dma.Read(descAddr, NICDescSize, descBuf, func(ok bool) {
			if !ok {
				n.rxDiscard(length)
				return
			}
			bufAddr := binary.LittleEndian.Uint64(descBuf)
			n.dma.Write(bufAddr, length, nil, func(ok bool) {
				if !ok {
					n.rxDiscard(length)
					return
				}
				n.rxFrames++
				n.regs[NICRegRDH] = (head + 1) % ringLen
				n.rxBusy = false
				if n.OnReceive != nil {
					n.OnReceive(length)
				}
				n.raise(NICIntRx)
				n.pumpRx()
			})
		})
		return
	}
}

// rxDiscard accounts a frame lost after FIFO acceptance (failed DMA)
// and restarts the pump.
func (n *NIC) rxDiscard(length int) {
	n.rxBusy = false
	n.rxDropped++
	if n.OnRxDiscard != nil {
		n.OnRxDiscard(length)
	}
	n.pumpRx()
}

func (n *NIC) raise(cause uint32) {
	n.icr |= cause
	if n.icr&n.ims == 0 {
		return
	}
	if tr := n.eng.Tracer(); tr.On(trace.CatIRQ) {
		mode := "intx"
		if n.msiCap != 0 && n.config.Word(n.msiCap+2)&1 == 1 {
			mode = "msi"
		}
		tr.Emit(trace.CatIRQ, uint64(n.eng.Now()), n.name, "interrupt", 0,
			fmt.Sprintf("cause=%#x mode=%s", cause, mode))
	}
	if n.msiCap != 0 && n.config.Word(n.msiCap+2)&1 == 1 {
		// MSI enabled: signal by a posted message write through the
		// fabric, ordered behind any in-flight DMA.
		addr := uint64(n.config.Dword(n.msiCap + 4))
		data := make([]byte, 4)
		binary.LittleEndian.PutUint32(data, uint32(n.config.Word(n.msiCap+8)))
		n.dma.WritePosted(addr, 4, data, nil)
		return
	}
	if n.OnInterrupt != nil {
		n.OnInterrupt()
	}
}

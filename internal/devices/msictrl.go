package devices

import (
	"encoding/binary"
	"fmt"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
)

// MSIController is a message-signaled-interrupt frame (in the spirit of
// an ARM GICv2m frame): a memory-mapped doorbell page that turns
// inbound posted writes into interrupt vectors. It extends the modeled
// platform beyond the paper, whose gem5 baseline "has no support for
// PM, MSI and MSI-X" and therefore forces drivers onto legacy INTx.
type MSIController struct {
	eng  *sim.Engine
	name string
	rng  mem.AddrRange

	port  *mem.SlavePort
	respQ *mem.SendQueue

	// Latency is the doorbell decode latency.
	Latency sim.Tick
	// OnMSI receives each delivered vector (the written data value).
	OnMSI func(vector uint32)

	delivered uint64
}

// NewMSIController creates a frame claiming the given range.
func NewMSIController(eng *sim.Engine, name string, rng mem.AddrRange) *MSIController {
	m := &MSIController{eng: eng, name: name, rng: rng, Latency: 20 * sim.Nanosecond}
	m.port = mem.NewSlavePort(name+".port", m)
	m.respQ = mem.NewSendQueue(eng, name+".respq", 0, func(p *mem.Packet) bool {
		return m.port.SendTimingResp(p)
	})
	return m
}

// Port returns the slave port (wired to the MemBus).
func (m *MSIController) Port() *mem.SlavePort { return m.port }

// Range returns the claimed doorbell range.
func (m *MSIController) Range() mem.AddrRange { return m.rng }

// Delivered returns the number of MSIs raised.
func (m *MSIController) Delivered() uint64 { return m.delivered }

// RecvTimingReq implements mem.SlaveOwner: decode the vector and raise.
func (m *MSIController) RecvTimingReq(_ *mem.SlavePort, pkt *mem.Packet) bool {
	if !m.rng.Contains(pkt.Addr) {
		panic(fmt.Sprintf("msictrl %s: %v outside %v", m.name, pkt, m.rng))
	}
	switch pkt.Cmd {
	case mem.WriteReq:
		var vector uint32
		if pkt.Data != nil {
			var buf [4]byte
			copy(buf[:], pkt.Data)
			vector = binary.LittleEndian.Uint32(buf[:])
		}
		m.delivered++
		if m.OnMSI != nil {
			v := vector
			m.eng.Schedule(m.name+".deliver", m.Latency, func() { m.OnMSI(v) })
		}
	case mem.ReadReq:
		// Reads of the frame return zero (identification registers are
		// not modeled).
		if pkt.Data != nil {
			for i := range pkt.Data {
				pkt.Data[i] = 0
			}
		}
	}
	if pkt.Posted {
		// Posted write: consumed at the doorbell, no completion.
		pkt.Release()
		return true
	}
	m.respQ.Push(pkt.MakeResponse(), m.eng.Now()+m.Latency)
	return true
}

// RecvRespRetry implements mem.SlaveOwner.
func (m *MSIController) RecvRespRetry(*mem.SlavePort) { m.respQ.RetryReceived() }

// AddrRanges implements mem.RangeProvider.
func (m *MSIController) AddrRanges(*mem.SlavePort) mem.RangeList {
	return mem.RangeList{m.rng}
}

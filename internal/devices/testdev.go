package devices

import (
	"encoding/binary"
	"fmt"

	"pciesim/internal/mem"
	"pciesim/internal/pci"
	"pciesim/internal/sim"
)

// TestDevConfig parameterizes the synthetic test endpoint.
type TestDevConfig struct {
	// PIOLatency is the MMIO access service time.
	PIOLatency sim.Tick
	// BARSize is the scratch BAR size.
	BARSize uint64
}

// DefaultTestDevConfig returns a 64 KiB scratch window served at the
// disk's PIO latency.
func DefaultTestDevConfig() TestDevConfig {
	return TestDevConfig{
		PIOLatency: 200 * sim.Nanosecond,
		BARSize:    64 * 1024,
	}
}

// TestDev is a minimal PCI-Express endpoint: a configuration space, one
// memory BAR backed by word-granular scratch storage, and nothing else.
// Arbitrary topologies use it as an inert target for MMIO probes and
// peer-to-peer DMA without dragging in a driver model.
type TestDev struct {
	eng  *sim.Engine
	name string
	cfg  TestDevConfig

	config *pci.ConfigSpace
	aer    *pci.AER
	pio    *mem.SlavePort
	respQ  *mem.SendQueue

	// scratch holds written words, keyed by BAR offset.
	scratch map[int]uint32

	// Stats.
	reads, writes uint64
}

// NewTestDev builds the endpoint and its configuration space.
func NewTestDev(eng *sim.Engine, name string, cfg TestDevConfig) *TestDev {
	if cfg.BARSize == 0 {
		cfg.BARSize = 64 * 1024
	}
	d := &TestDev{eng: eng, name: name, cfg: cfg, scratch: make(map[int]uint32)}
	d.config = pci.NewType0Space(name+".config", pci.Ident{
		VendorID:     pci.VendorIntel,
		DeviceID:     pci.DeviceTestDev,
		ClassCode:    pci.ClassSystemOther,
		InterruptPin: 1,
	})
	d.config.AttachBAR(0, pci.NewMemBAR(cfg.BARSize))
	pci.AddPCIeCap(d.config, pci.PCIeCapConfig{
		PortType: pci.PCIePortEndpoint, LinkSpeed: pci.LinkSpeedGen2, LinkWidth: 1,
	})
	d.aer = pci.AddAER(d.config)
	d.pio = mem.NewSlavePort(name+".pio", (*testDevPIO)(d))
	d.respQ = mem.NewSendQueue(eng, name+".respq", 0, func(p *mem.Packet) bool {
		return d.pio.SendTimingResp(p)
	})
	r := eng.Stats()
	r.CounterFunc(name+".reads", func() uint64 { return d.reads })
	r.CounterFunc(name+".writes", func() uint64 { return d.writes })
	return d
}

// ConfigSpace returns the configuration space for host registration.
func (d *TestDev) ConfigSpace() *pci.ConfigSpace { return d.config }

// AER returns the device's Advanced Error Reporting capability.
func (d *TestDev) AER() *pci.AER { return d.aer }

// PIOPort returns the MMIO slave port.
func (d *TestDev) PIOPort() *mem.SlavePort { return d.pio }

// BAR0 returns the scratch BAR.
func (d *TestDev) BAR0() *pci.BAR { return d.config.BARAt(0) }

// Stats returns (reads served, writes served).
func (d *TestDev) Stats() (reads, writes uint64) { return d.reads, d.writes }

// testDevPIO adapts TestDev to mem.SlaveOwner.
type testDevPIO TestDev

func (o *testDevPIO) d() *TestDev { return (*TestDev)(o) }

func (o *testDevPIO) RecvTimingReq(_ *mem.SlavePort, pkt *mem.Packet) bool {
	d := o.d()
	bar := d.BAR0()
	if bar.Addr() == 0 || pkt.Addr < bar.Addr() || pkt.Addr >= bar.Addr()+d.cfg.BARSize {
		panic(fmt.Sprintf("devices %s: PIO %v outside BAR0 (%#x)", d.name, pkt, bar.Addr()))
	}
	off := int(pkt.Addr-bar.Addr()) &^ 3
	n := pkt.Size
	if n > 4 {
		n = 4
	}
	switch pkt.Cmd {
	case mem.ReadReq:
		d.reads++
		if pkt.Data == nil {
			pkt.Data = make([]byte, pkt.Size)
		}
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], d.scratch[off])
		copy(pkt.Data, buf[:n])
	case mem.WriteReq:
		d.writes++
		var buf [4]byte
		copy(buf[:n], pkt.Data)
		d.scratch[off] = binary.LittleEndian.Uint32(buf[:])
	}
	d.respQ.Push(pkt.MakeResponse(), d.eng.Now()+d.cfg.PIOLatency)
	return true
}

func (o *testDevPIO) RecvRespRetry(*mem.SlavePort) { o.d().respQ.RetryReceived() }

func (o *testDevPIO) AddrRanges(*mem.SlavePort) mem.RangeList {
	d := o.d()
	if d.BAR0().Addr() == 0 {
		return nil
	}
	return mem.RangeList{mem.Range(d.BAR0().Addr(), d.cfg.BARSize)}
}

package devices

import (
	"encoding/binary"
	"testing"

	"pciesim/internal/mem"
	"pciesim/internal/memctrl"
	"pciesim/internal/pci"
	"pciesim/internal/pcie"
	"pciesim/internal/sim"
	"pciesim/internal/testdev"
)

// --- DMA engine ---

func TestDMAEngineChunking(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDMAEngine(eng, "dma", 64)
	m := memctrl.New(eng, "mem", mem.Range(0, 1<<30), memctrl.Config{Latency: 10 * sim.Nanosecond})
	mem.Connect(d.Port(), m.Port())
	done := false
	d.Write(0x1000, 4096, nil, func(bool) { done = true })
	eng.Run()
	if !done {
		t.Fatal("transfer did not complete")
	}
	_, chunks, bytes := d.Stats()
	if chunks != 64 || bytes != 4096 {
		t.Errorf("chunks=%d bytes=%d, want 64/4096", chunks, bytes)
	}
}

func TestDMAEngineUnalignedEdges(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDMAEngine(eng, "dma", 64)
	m := memctrl.New(eng, "mem", mem.Range(0, 1<<30), memctrl.Config{})
	mem.Connect(d.Port(), m.Port())
	d.Write(0x1030, 100, nil, nil) // 0x1030..0x1094: 16 + 64 + 20
	eng.Run()
	_, chunks, _ := d.Stats()
	if chunks != 3 {
		t.Errorf("chunks = %d, want 3 (line-aligned split)", chunks)
	}
	_, writes, _, bw, _ := m.Stats()
	if writes != 3 || bw != 100 {
		t.Errorf("memory writes=%d bytes=%d", writes, bw)
	}
}

func TestDMAEngineBarrierBetweenTransfers(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDMAEngine(eng, "dma", 64)
	// Slow memory, so chunk responses straggle.
	m := memctrl.New(eng, "mem", mem.Range(0, 1<<30), memctrl.Config{Latency: sim.Microsecond, MaxOutstanding: 4})
	mem.Connect(d.Port(), m.Port())
	var order []int
	d.Write(0x0000, 256, nil, func(bool) { order = append(order, 1) })
	d.Write(0x1000, 256, nil, func(bool) { order = append(order, 2) })
	eng.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("transfer completion order %v", order)
	}
}

func TestDMAEngineDataMoves(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDMAEngine(eng, "dma", 64)
	m := memctrl.New(eng, "mem", mem.Range(0, 1<<30), memctrl.Config{})
	mem.Connect(d.Port(), m.Port())
	src := make([]byte, 200)
	for i := range src {
		src[i] = byte(i * 3)
	}
	d.Write(0x2000, 200, src, nil)
	dst := make([]byte, 200)
	d.Read(0x2000, 200, dst, nil)
	eng.Run()
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d: %d != %d", i, dst[i], src[i])
		}
	}
}

func TestDMAEngineThroughLinkBackpressure(t *testing.T) {
	// DMA through a Gen2 x1 link with replay buffer 4: the engine must
	// respect link throttling and still finish.
	eng := sim.NewEngine()
	l := pcie.NewLink(eng, "link", pcie.DefaultLinkConfig())
	d := NewDMAEngine(eng, "dma", 64)
	m := memctrl.New(eng, "mem", mem.Range(0, 1<<30), memctrl.Config{Latency: 50 * sim.Nanosecond})
	mem.Connect(d.Port(), l.Down().SlavePort())
	mem.Connect(l.Up().MasterPort(), m.Port())
	done := false
	start := eng.Now()
	d.Write(0x0, 4096, nil, func(bool) { done = true })
	eng.Run()
	if !done {
		t.Fatal("DMA through link did not complete")
	}
	// 64 chunks x 168ns wire time is the floor.
	if eng.Now()-start < 64*168*sim.Nanosecond {
		t.Errorf("completed impossibly fast: %v", eng.Now()-start)
	}
	up := l.Down().Stats()
	if up.Throttled == 0 {
		t.Error("expected replay-buffer throttling with an unbounded chunk stream")
	}
}

// --- disk ---

type diskRig struct {
	eng  *sim.Engine
	disk *Disk
	cpu  *testdev.Requester
	m    *memctrl.Memory
	intr int
}

// newDiskRig wires cpu -> disk PIO and disk DMA -> memory directly.
func newDiskRig(cfg DiskConfig) *diskRig {
	eng := sim.NewEngine()
	r := &diskRig{eng: eng}
	r.disk = NewDisk(eng, "disk", cfg)
	r.disk.BAR0().SetAddr(0x40000000)
	r.disk.OnInterrupt = func() { r.intr++ }
	r.cpu = testdev.NewRequester(eng, "cpu")
	mem.Connect(r.cpu.Port(), r.disk.PIOPort())
	r.m = memctrl.New(eng, "mem", mem.Range(0x8000_0000, 1<<30), memctrl.Config{Latency: 20 * sim.Nanosecond})
	mem.Connect(r.disk.DMAPort(), r.m.Port())
	return r
}

func (r *diskRig) writeReg(off int, v uint32) {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, v)
	r.cpu.WriteData(0x40000000+uint64(off), buf)
}

func (r *diskRig) readReg(t *testing.T, off int) uint32 {
	t.Helper()
	buf := make([]byte, 4)
	r.cpu.ReadData(0x40000000+uint64(off), buf)
	r.eng.Run()
	return binary.LittleEndian.Uint32(buf)
}

func (r *diskRig) issueRead(lba uint64, sectors uint32, buf uint64) {
	r.writeReg(DiskRegSecCount, sectors)
	r.writeReg(DiskRegLBALo, uint32(lba))
	r.writeReg(DiskRegLBAHi, uint32(lba>>32))
	r.writeReg(DiskRegBufLo, uint32(buf))
	r.writeReg(DiskRegBufHi, uint32(buf>>32))
	r.writeReg(DiskRegCommand, DiskCmdReadDMA)
}

func TestDiskConfigSpaceIdentity(t *testing.T) {
	d := NewDisk(sim.NewEngine(), "disk", DefaultDiskConfig())
	cs := d.ConfigSpace()
	if cs.ConfigRead(pci.RegVendorID, 2) != pci.VendorIntel {
		t.Error("vendor")
	}
	if cs.ConfigRead(pci.RegClassCode+2, 1) != 0x01 {
		t.Error("class must be storage")
	}
	if pci.FindCapability(cs, pci.CapIDPCIExpress) == 0 {
		t.Error("disk must expose a PCIe capability")
	}
}

func TestDiskReadDMACommand(t *testing.T) {
	r := newDiskRig(DefaultDiskConfig())
	r.issueRead(0, 4, 0x8000_0000)
	r.eng.Run()
	if r.intr != 1 {
		t.Fatalf("interrupts = %d, want 1", r.intr)
	}
	if got := r.readReg(t, DiskRegStatus); got&DiskStatusDone == 0 {
		t.Errorf("status = %#x, want done", got)
	}
	_, sectors := r.disk.Stats()
	if sectors != 4 {
		t.Errorf("sectors = %d", sectors)
	}
	_, memWrites, _, bw, _ := r.m.Stats()
	if memWrites != 4*4096/64 || bw != 4*4096 {
		t.Errorf("memory writes=%d bytes=%d", memWrites, bw)
	}
	if got := r.readReg(t, DiskRegIntr); got != 1 {
		t.Errorf("intr status = %d", got)
	}
	r.writeReg(DiskRegIntr, 1)
	r.eng.Run()
	if got := r.readReg(t, DiskRegIntr); got != 0 {
		t.Error("interrupt did not clear on write-1")
	}
}

func TestDiskWriteDMACommand(t *testing.T) {
	r := newDiskRig(DefaultDiskConfig())
	r.writeReg(DiskRegSecCount, 2)
	r.writeReg(DiskRegBufLo, 0x8000_0000)
	r.writeReg(DiskRegCommand, DiskCmdWriteDMA)
	r.eng.Run()
	reads, _, br, _, _ := r.m.Stats()
	if reads != 2*4096/64 || br != 2*4096 {
		t.Errorf("memory reads=%d bytes=%d", reads, br)
	}
	if r.intr != 1 {
		t.Error("write command must interrupt on completion")
	}
}

func TestDiskMediaPipelineOverlapsDMA(t *testing.T) {
	cfg := DefaultDiskConfig()
	cfg.AccessLatency = sim.Microsecond
	r := newDiskRig(cfg)
	start := r.eng.Now()
	r.issueRead(0, 8, 0x8000_0000)
	r.eng.Run()
	elapsed := r.eng.Now() - start
	// Serialized it would take >= 8 * (1us media + DMA); pipelined, the
	// total is roughly first-media + 8*DMA. Direct-wired DMA of a
	// sector is fast, so the run must take well under 8us+overheads if
	// media fetches overlap... it must at least beat full serialization
	// of media stages: 8us + 8*DMA. Conservatively require < 11us.
	if elapsed > 11*sim.Microsecond {
		t.Errorf("command took %v; media accesses do not pipeline with DMA", elapsed)
	}
}

func TestDiskBusyRejectsSecondCommand(t *testing.T) {
	r := newDiskRig(DefaultDiskConfig())
	r.issueRead(0, 64, 0x8000_0000)
	r.writeReg(DiskRegCommand, DiskCmdReadDMA) // while busy
	r.eng.Run()
	if got := r.readReg(t, DiskRegStatus); got&DiskStatusErr == 0 {
		t.Errorf("status = %#x, want error bit for overlapping command", got)
	}
}

func TestDiskZeroSectorCommandCompletesImmediately(t *testing.T) {
	r := newDiskRig(DefaultDiskConfig())
	r.writeReg(DiskRegSecCount, 0)
	r.writeReg(DiskRegCommand, DiskCmdReadDMA)
	r.eng.Run()
	if r.intr != 1 {
		t.Error("zero-sector command must complete and interrupt")
	}
}

func TestDiskUnknownCommandErrors(t *testing.T) {
	r := newDiskRig(DefaultDiskConfig())
	r.writeReg(DiskRegSecCount, 1)
	r.writeReg(DiskRegCommand, 0x99)
	r.eng.Run()
	if got := r.readReg(t, DiskRegStatus); got&DiskStatusErr == 0 {
		t.Errorf("status = %#x, want error", got)
	}
}

// --- NIC ---

type nicRig struct {
	eng  *sim.Engine
	nic  *NIC
	cpu  *testdev.Requester
	m    *memctrl.Memory
	intr int
}

func newNICRig() *nicRig {
	eng := sim.NewEngine()
	r := &nicRig{eng: eng}
	r.nic = NewNIC(eng, "nic", DefaultNICConfig())
	r.nic.BAR0().SetAddr(0x40100000)
	r.nic.OnInterrupt = func() { r.intr++ }
	r.cpu = testdev.NewRequester(eng, "cpu")
	mem.Connect(r.cpu.Port(), r.nic.PIOPort())
	r.m = memctrl.New(eng, "mem", mem.Range(0x8000_0000, 1<<30), memctrl.Config{Latency: 20 * sim.Nanosecond})
	mem.Connect(r.nic.DMAPort(), r.m.Port())
	return r
}

func (r *nicRig) writeReg(off int, v uint32) {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, v)
	r.cpu.WriteData(0x40100000+uint64(off), buf)
}

func (r *nicRig) readReg(t *testing.T, off int) uint32 {
	t.Helper()
	buf := make([]byte, 4)
	r.cpu.ReadData(0x40100000+uint64(off), buf)
	r.eng.Run()
	return binary.LittleEndian.Uint32(buf)
}

func TestNICConfigMatchesPaper(t *testing.T) {
	n := NewNIC(sim.NewEngine(), "nic", DefaultNICConfig())
	cs := n.ConfigSpace()
	if got := cs.ConfigRead(pci.RegDeviceID, 2); got != pci.Device82574L {
		t.Errorf("device ID = %#x, want 0x10d3 (e1000e probe trigger)", got)
	}
	chain := pci.CapabilityChain(cs)
	want := []uint8{pci.CapIDPowerManagement, pci.CapIDMSI, pci.CapIDPCIExpress, pci.CapIDMSIX}
	if len(chain) != 4 {
		t.Fatalf("capability chain %v", chain)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("capability chain %v, want PM->MSI->PCIe->MSI-X", chain)
		}
	}
	ext := pci.WalkExtendedCapabilities(cs)
	if len(ext) != 2 || ext[0] != pci.ExtCapIDAER || ext[1] != pci.ExtCapIDSerialNumber {
		t.Errorf("extended capabilities = %v", ext)
	}
}

func TestNICStatusRegisterRead(t *testing.T) {
	r := newNICRig()
	if got := r.readReg(t, NICRegStatus); got != 0x3 {
		t.Errorf("STATUS = %#x, want link-up/full-duplex", got)
	}
}

func TestNICMMIOLatency(t *testing.T) {
	r := newNICRig()
	buf := make([]byte, 4)
	r.cpu.ReadData(0x40100000+NICRegStatus, buf)
	r.eng.Run()
	if got := r.cpu.Completions[0].Latency(); got != 150*sim.Nanosecond {
		t.Errorf("direct MMIO read = %v, want the 150ns PIO latency", got)
	}
}

func TestNICTransmitRing(t *testing.T) {
	r := newNICRig()
	// Build a 4-descriptor ring at 0x8000_0000 with one 1500-byte frame.
	desc := make([]byte, NICDescSize)
	binary.LittleEndian.PutUint64(desc, 0x8000_4000) // buffer address
	binary.LittleEndian.PutUint16(desc[8:], 1500)
	r.m.WriteFunctional(0x8000_0000, desc)

	r.writeReg(NICRegTDBAL, 0x8000_0000)
	r.writeReg(NICRegTDBAH, 0)
	r.writeReg(NICRegTDLEN, 4*NICDescSize)
	r.writeReg(NICRegIMS, NICIntTxDone)
	r.writeReg(NICRegTDT, 1) // doorbell
	r.eng.Run()

	tx, txb, _ := r.nic.Stats()
	if tx != 1 || txb != 1500 {
		t.Fatalf("tx = %d frames %d bytes", tx, txb)
	}
	if r.intr != 1 {
		t.Error("TX completion must raise the (masked-in) interrupt")
	}
	if got := r.readReg(t, NICRegTDH); got != 1 {
		t.Errorf("TDH = %d, want 1", got)
	}
	// ICR is read-to-clear.
	if got := r.readReg(t, NICRegICR); got&NICIntTxDone == 0 {
		t.Error("ICR should report TX done")
	}
	if got := r.readReg(t, NICRegICR); got != 0 {
		t.Error("ICR must clear on read")
	}
}

func TestNICInterruptMasking(t *testing.T) {
	r := newNICRig()
	desc := make([]byte, NICDescSize)
	binary.LittleEndian.PutUint64(desc, 0x8000_4000)
	binary.LittleEndian.PutUint16(desc[8:], 64)
	r.m.WriteFunctional(0x8000_0000, desc)
	r.writeReg(NICRegTDBAL, 0x8000_0000)
	r.writeReg(NICRegTDLEN, 4*NICDescSize)
	// IMS left at 0: interrupt masked.
	r.writeReg(NICRegTDT, 1)
	r.eng.Run()
	if r.intr != 0 {
		t.Error("masked interrupt must not fire")
	}
	tx, _, _ := r.nic.Stats()
	if tx != 1 {
		t.Error("frame must still transmit")
	}
}

func TestNICRxInjection(t *testing.T) {
	r := newNICRig()
	// RX ring with 4 descriptors; buffers at 0x8001_0000.
	for i := 0; i < 4; i++ {
		desc := make([]byte, NICDescSize)
		binary.LittleEndian.PutUint64(desc, uint64(0x8001_0000+i*2048))
		r.m.WriteFunctional(uint64(0x8000_2000+i*NICDescSize), desc)
	}
	r.writeReg(NICRegRDBAL, 0x8000_2000)
	r.writeReg(NICRegRDLEN, 4*NICDescSize)
	r.writeReg(NICRegRDT, 3)
	r.writeReg(NICRegIMS, NICIntRx)
	r.eng.Run()
	r.nic.InjectRxFrame(512)
	r.eng.Run()
	_, _, rx := r.nic.Stats()
	if rx != 1 {
		t.Fatalf("rx frames = %d", rx)
	}
	if r.intr != 1 {
		t.Error("RX must interrupt")
	}
	if got := r.readReg(t, NICRegRDH); got != 1 {
		t.Errorf("RDH = %d", got)
	}
}

func TestNICRxDropWithoutResources(t *testing.T) {
	r := newNICRig()
	r.nic.InjectRxFrame(512) // no ring programmed
	r.eng.Run()
	_, _, rx := r.nic.Stats()
	if rx != 0 {
		t.Error("frame must drop without RX resources")
	}
}

// --- posted writes (the paper's §VI-B ablation) ---

func TestDMAEnginePostedWritesNeedNoResponses(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDMAEngine(eng, "dma", 64)
	d.PostedWrites = true
	m := memctrl.New(eng, "mem", mem.Range(0, 1<<30), memctrl.Config{Latency: sim.Microsecond})
	mem.Connect(d.Port(), m.Port())
	var doneAt sim.Tick
	d.Write(0x0, 256, nil, func(bool) { doneAt = eng.Now() })
	eng.Run()
	// Completion at final acceptance, not after the 1us memory latency.
	if doneAt >= sim.Microsecond {
		t.Errorf("posted transfer completed at %v; must not wait for memory", doneAt)
	}
	_, writes, _, bw, _ := m.Stats()
	if writes != 4 || bw != 256 {
		t.Errorf("memory saw %d writes / %d bytes", writes, bw)
	}
}

func TestDMAEnginePostedOrderingPreserved(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDMAEngine(eng, "dma", 64)
	d.PostedWrites = true
	m := memctrl.New(eng, "mem", mem.Range(0, 1<<30), memctrl.Config{Latency: 100 * sim.Nanosecond, MaxOutstanding: 2})
	mem.Connect(d.Port(), m.Port())
	var order []int
	d.Write(0x0000, 256, nil, func(bool) { order = append(order, 1) })
	d.Read(0x1000, 128, nil, func(bool) { order = append(order, 2) }) // reads stay non-posted
	d.Write(0x2000, 128, nil, func(bool) { order = append(order, 3) })
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestDiskPostedWritesSpeedUpSectorTransfer(t *testing.T) {
	run := func(posted bool) sim.Tick {
		cfg := DefaultDiskConfig()
		cfg.PostedWrites = posted
		r := newDiskRig(cfg)
		r.issueRead(0, 8, 0x8000_0000)
		r.eng.Run()
		return r.disk.DMAWindow()
	}
	nonPosted := run(false)
	posted := run(true)
	if posted >= nonPosted {
		t.Errorf("posted window %v not faster than non-posted %v", posted, nonPosted)
	}
}

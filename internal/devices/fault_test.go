package devices

import (
	"encoding/binary"
	"testing"

	"pciesim/internal/fault"
	"pciesim/internal/mem"
	"pciesim/internal/pci"
	"pciesim/internal/pcie"
	"pciesim/internal/sim"
	"pciesim/internal/testdev"
)

// A DMA transfer whose chunk completions never return within Timeout is
// aborted with ok=false, and the straggling responses that arrive later
// are dropped instead of corrupting the next transfer's barrier.
func TestDMAEngineCompletionTimeout(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDMAEngine(eng, "dma", 64)
	d.Timeout = sim.Microsecond
	// Responder answers far too late: every chunk response arrives
	// after the transfer has already been aborted.
	m := testdev.NewResponder(eng, "slowmem", nil, 10*sim.Microsecond, 0)
	mem.Connect(d.Port(), m.Port())

	var results []bool
	d.Read(0x1000, 256, nil, func(ok bool) { results = append(results, ok) })
	d.Read(0x2000, 256, nil, func(ok bool) { results = append(results, ok) })
	eng.Run()

	if !eng.Drained() {
		t.Fatal("event queue not drained")
	}
	if len(results) != 2 || results[0] || results[1] {
		t.Fatalf("results = %v, want both transfers aborted", results)
	}
	timeouts, late := d.ErrorStats()
	if timeouts != 2 {
		t.Errorf("timeouts = %d, want 2", timeouts)
	}
	if late == 0 {
		t.Error("the late chunk responses must be counted as dropped stragglers")
	}
}

// blackholeSlave accepts every request but silently answers none of
// the first `swallow` — a fabric that lost packets, then recovered.
type blackholeSlave struct {
	eng     *sim.Engine
	port    *mem.SlavePort
	swallow int
	seen    int
}

func newBlackholeSlave(eng *sim.Engine, swallow int) *blackholeSlave {
	s := &blackholeSlave{eng: eng, swallow: swallow}
	s.port = mem.NewSlavePort("blackhole.port", s)
	return s
}

func (s *blackholeSlave) RecvTimingReq(_ *mem.SlavePort, pkt *mem.Packet) bool {
	s.seen++
	if s.seen <= s.swallow {
		return true // accepted, never answered
	}
	resp := pkt.MakeResponse()
	s.eng.Schedule("blackhole.resp", 10*sim.Nanosecond, func() { s.port.SendTimingResp(resp) })
	return true
}

func (s *blackholeSlave) RecvRespRetry(*mem.SlavePort) {}

// After a timeout-aborted transfer, the engine still completes
// subsequent transfers normally once the fabric answers again.
func TestDMAEngineRecoversAfterTimeout(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDMAEngine(eng, "dma", 64)
	d.Timeout = sim.Microsecond
	// Swallow exactly the first transfer's two chunks; answer the rest.
	m := newBlackholeSlave(eng, 2)
	mem.Connect(d.Port(), m.port)

	first, second := true, false
	d.Read(0x1000, 128, nil, func(ok bool) { first = ok })
	d.Read(0x2000, 128, nil, func(ok bool) { second = ok })
	eng.Run()

	if first {
		t.Error("first transfer should have timed out")
	}
	if !second {
		t.Error("second transfer should complete once the fabric answers")
	}
	if timeouts, _ := d.ErrorStats(); timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", timeouts)
	}
}

// End-to-end device regression: a disk whose DMA link dies mid-command
// completes the command with the error status bit and an interrupt —
// via the DMA completion timeout — instead of wedging forever.
func TestDiskDMATimeoutFailsCommand(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultDiskConfig()
	cfg.DMATimeout = 50 * sim.Microsecond
	d := NewDisk(eng, "disk", cfg)
	d.BAR0().SetAddr(0x40000000)
	irqs := 0
	d.OnInterrupt = func() { irqs++ }

	lcfg := pcie.DefaultLinkConfig()
	lcfg.Fault = &fault.Plan{
		Windows: []fault.Window{{At: 2 * sim.Microsecond, Duration: 0}}, // permanent
	}
	l := pcie.NewLink(eng, "link", lcfg)
	host := testdev.NewResponder(eng, "host", nil, 100*sim.Nanosecond, 0)
	mem.Connect(d.DMAPort(), l.Down().SlavePort())
	mem.Connect(l.Up().MasterPort(), host.Port())
	l.Down().SetAER(d.AER())

	// PIO path stays direct (it does not cross the dying DMA link), as
	// the platform wires it through a separate root-port path anyway.
	cpu := testdev.NewRequester(eng, "cpu")
	mem.Connect(cpu.Port(), d.PIOPort())
	writeReg := func(off int, v uint32) {
		buf := make([]byte, 4)
		binary.LittleEndian.PutUint32(buf, v)
		cpu.WriteData(0x40000000+uint64(off), buf)
	}
	writeReg(DiskRegSecCount, 4)
	writeReg(DiskRegBufLo, 0x8000_0000)
	writeReg(DiskRegCommand, DiskCmdReadDMA)
	eng.Run()

	if !eng.Drained() {
		t.Fatal("event queue not drained")
	}
	buf := make([]byte, 4)
	cpu.ReadData(0x40000000+DiskRegStatus, buf)
	eng.Run()
	status := binary.LittleEndian.Uint32(buf)
	if status&DiskStatusErr == 0 {
		t.Fatalf("status %#x: error bit must be set after the DMA timeout", status)
	}
	if irqs == 0 {
		t.Error("the failed command must still interrupt")
	}
	timeouts, _ := d.DMAErrorStats()
	if timeouts == 0 {
		t.Error("disk DMA engine should have recorded a timeout")
	}
	if d.AER().UncorrectableStatus()&pci.AERUncCompletionTimeout == 0 {
		t.Error("disk AER must latch CompletionTimeout")
	}
}

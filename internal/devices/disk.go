package devices

import (
	"encoding/binary"
	"fmt"

	"pciesim/internal/mem"
	"pciesim/internal/pci"
	"pciesim/internal/sim"
	"pciesim/internal/trace"
)

// Disk register offsets within BAR0. The interface is a simplified
// IDE/ATA-style DMA command block: the driver programs a buffer
// address, LBA and sector count, then writes a command; the disk moves
// whole sectors by DMA and raises an interrupt when the command
// completes.
const (
	DiskRegCommand  = 0x00 // write: start a command
	DiskRegStatus   = 0x04 // read: bit0 busy, bit1 done, bit2 error
	DiskRegSecCount = 0x08
	DiskRegLBALo    = 0x0c
	DiskRegLBAHi    = 0x10
	DiskRegBufLo    = 0x14 // DMA target/source address
	DiskRegBufHi    = 0x18
	DiskRegIntr     = 0x1c // read: pending; write 1: clear
)

// Disk commands.
const (
	DiskCmdReadDMA  = 0x25 // device -> memory
	DiskCmdWriteDMA = 0x35 // memory -> device
)

// Status bits.
const (
	DiskStatusBusy = 1 << 0
	DiskStatusDone = 1 << 1
	DiskStatusErr  = 1 << 2
)

// DiskConfig parameterizes the storage model.
type DiskConfig struct {
	// AccessLatency is the constant per-sector media access time. The
	// paper's IDE disk "does not impose any bandwidth bottleneck for
	// the data transfer (its access latency is a constant 1us value)".
	AccessLatency sim.Tick
	// SectorSize is the DMA transfer unit (4 KiB in the paper).
	SectorSize int
	// PIOLatency is the MMIO register access service time.
	PIOLatency sim.Tick
	// ChunkSize is the DMA packet payload (cache line size).
	ChunkSize int
	// BARSize is the size of the register BAR.
	BARSize uint64
	// PostedWrites selects posted DMA writes — the paper's named
	// future-work ablation (§VI-B): with it, a sector completes when
	// its last chunk enters the link instead of when every write
	// response has returned.
	PostedWrites bool
	// DMATimeout, when nonzero, aborts a sector transfer whose chunk
	// completions never return (dead link); the command completes with
	// the error status bit instead of wedging the device forever.
	DMATimeout sim.Tick
}

// DefaultDiskConfig matches the paper's evaluation setup.
func DefaultDiskConfig() DiskConfig {
	return DiskConfig{
		AccessLatency: sim.Microsecond,
		SectorSize:    4096,
		PIOLatency:    200 * sim.Nanosecond,
		ChunkSize:     64,
		BARSize:       4096,
	}
}

// Disk is the storage endpoint. Its PIO slave port accepts MMIO
// register accesses; its DMA engine master port moves sector data.
type Disk struct {
	eng  *sim.Engine
	name string
	cfg  DiskConfig

	config *pci.ConfigSpace
	aer    *pci.AER
	pio    *mem.SlavePort
	dma    *DMAEngine
	respQ  *mem.SendQueue

	// register state
	status   uint32
	secCount uint32
	lba      uint64
	bufAddr  uint64
	intr     uint32

	// in-flight command state. Media access and DMA form a two-stage
	// pipeline: while sector N moves over the link, the media is
	// already fetching sector N+1, so a sequential stream is
	// link-limited, matching the paper's "the gem5 IDE disk model does
	// not impose any bandwidth bottleneck" methodology.
	cmdWrite       bool
	sectorsToFetch int // media accesses still to start
	readySectors   int // fetched, awaiting DMA
	sectorsLeft    int // DMA barriers still to complete
	dmaActive      bool
	nextAddr       uint64
	mediaEv        *sim.Event

	// OnInterrupt is the legacy INTx line toward the interrupt
	// controller / kernel model.
	OnInterrupt func()

	// Stats.
	commands, sectors uint64
	firstDMAStart     sim.Tick
	lastDMAEnd        sim.Tick
}

// NewDisk creates the disk and its configuration space (an endpoint
// header with an IDE class code, PCIe capability, and one memory BAR).
func NewDisk(eng *sim.Engine, name string, cfg DiskConfig) *Disk {
	if cfg.SectorSize == 0 || cfg.ChunkSize == 0 {
		panic("devices: disk needs sector and chunk sizes")
	}
	d := &Disk{eng: eng, name: name, cfg: cfg}
	d.config = pci.NewType0Space(name+".config", pci.Ident{
		VendorID:     pci.VendorIntel,
		DeviceID:     0x2922, // ICH9 SATA controller identity
		ClassCode:    pci.ClassStorageIDE,
		InterruptPin: 1,
	})
	d.config.AttachBAR(0, pci.NewMemBAR(cfg.BARSize))
	pci.AddPowerManagementCap(d.config)
	pci.AddMSICap(d.config)
	pci.AddPCIeCap(d.config, pci.PCIeCapConfig{
		PortType: pci.PCIePortEndpoint, LinkSpeed: pci.LinkSpeedGen2, LinkWidth: 1,
	})
	d.aer = pci.AddAER(d.config)
	d.pio = mem.NewSlavePort(name+".pio", (*diskPIO)(d))
	d.respQ = mem.NewSendQueue(eng, name+".respq", 0, func(p *mem.Packet) bool {
		return d.pio.SendTimingResp(p)
	})
	d.dma = NewDMAEngine(eng, name, cfg.ChunkSize)
	d.dma.PostedWrites = cfg.PostedWrites
	d.dma.Timeout = cfg.DMATimeout
	d.mediaEv = eng.NewEvent(name+".media", d.mediaReady)
	r := eng.Stats()
	r.CounterFunc(name+".commands", func() uint64 { return d.commands })
	r.CounterFunc(name+".sectors", func() uint64 { return d.sectors })
	return d
}

// ConfigSpace returns the device's configuration space for PCI host
// registration.
func (d *Disk) ConfigSpace() *pci.ConfigSpace { return d.config }

// AER returns the device's Advanced Error Reporting capability.
func (d *Disk) AER() *pci.AER { return d.aer }

// DMAErrorStats returns (DMA transfers aborted by completion timeout,
// late chunk responses dropped).
func (d *Disk) DMAErrorStats() (timeouts, late uint64) { return d.dma.ErrorStats() }

// PIOPort returns the MMIO slave port.
func (d *Disk) PIOPort() *mem.SlavePort { return d.pio }

// DMAPort returns the DMA master port.
func (d *Disk) DMAPort() *mem.MasterPort { return d.dma.Port() }

// UsePacketPool recycles the disk's DMA chunk packets through the given
// engine-local pool.
func (d *Disk) UsePacketPool(p *mem.Pool) { d.dma.UsePacketPool(p) }

// BAR0 returns the register BAR.
func (d *Disk) BAR0() *pci.BAR { return d.config.BARAt(0) }

// Stats returns (commands completed, sectors moved).
func (d *Disk) Stats() (commands, sectors uint64) { return d.commands, d.sectors }

// DMAWindow returns the simulated time between the first DMA chunk of
// the most recent command burst and the last DMA completion — the
// device-level transfer time used for the paper's 3.072 Gb/s
// device-level throughput measurement.
func (d *Disk) DMAWindow() sim.Tick {
	if d.lastDMAEnd <= d.firstDMAStart {
		return 0
	}
	return d.lastDMAEnd - d.firstDMAStart
}

// diskPIO adapts Disk to mem.SlaveOwner for register accesses.
type diskPIO Disk

func (o *diskPIO) d() *Disk { return (*Disk)(o) }

func (o *diskPIO) RecvTimingReq(_ *mem.SlavePort, pkt *mem.Packet) bool {
	d := o.d()
	bar := d.BAR0()
	if bar.Addr() == 0 || pkt.Addr < bar.Addr() || pkt.Addr >= bar.Addr()+d.cfg.BARSize {
		panic(fmt.Sprintf("devices %s: PIO %v outside BAR0 (%#x)", d.name, pkt, bar.Addr()))
	}
	off := int(pkt.Addr - bar.Addr())
	// Register accesses are at most 4 bytes wide; wider packets (peer
	// DMA chunks landing in the BAR) touch only the addressed register
	// and read the rest of the window as zeroes.
	n := pkt.Size
	if n > 4 {
		n = 4
	}
	switch pkt.Cmd {
	case mem.ReadReq:
		v := d.regRead(off)
		if pkt.Data == nil {
			pkt.Data = make([]byte, pkt.Size)
		}
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		copy(pkt.Data, buf[:n])
	case mem.WriteReq:
		var buf [4]byte
		copy(buf[:n], pkt.Data)
		d.regWrite(off, binary.LittleEndian.Uint32(buf[:]))
	}
	d.respQ.Push(pkt.MakeResponse(), d.eng.Now()+d.cfg.PIOLatency)
	return true
}

func (o *diskPIO) RecvRespRetry(*mem.SlavePort) { o.d().respQ.RetryReceived() }

func (o *diskPIO) AddrRanges(*mem.SlavePort) mem.RangeList {
	d := o.d()
	if d.BAR0().Addr() == 0 {
		return nil
	}
	return mem.RangeList{mem.Range(d.BAR0().Addr(), d.cfg.BARSize)}
}

func (d *Disk) regRead(off int) uint32 {
	switch off {
	case DiskRegStatus:
		return d.status
	case DiskRegSecCount:
		return d.secCount
	case DiskRegLBALo:
		return uint32(d.lba)
	case DiskRegLBAHi:
		return uint32(d.lba >> 32)
	case DiskRegBufLo:
		return uint32(d.bufAddr)
	case DiskRegBufHi:
		return uint32(d.bufAddr >> 32)
	case DiskRegIntr:
		return d.intr
	default:
		return 0
	}
}

func (d *Disk) regWrite(off int, v uint32) {
	switch off {
	case DiskRegSecCount:
		d.secCount = v
	case DiskRegLBALo:
		d.lba = d.lba&^0xffffffff | uint64(v)
	case DiskRegLBAHi:
		d.lba = d.lba&0xffffffff | uint64(v)<<32
	case DiskRegBufLo:
		d.bufAddr = d.bufAddr&^0xffffffff | uint64(v)
	case DiskRegBufHi:
		d.bufAddr = d.bufAddr&0xffffffff | uint64(v)<<32
	case DiskRegIntr:
		d.intr &^= v // write-1-to-clear
	case DiskRegCommand:
		d.startCommand(v)
	}
}

func (d *Disk) startCommand(cmd uint32) {
	if d.status&DiskStatusBusy != 0 {
		d.status |= DiskStatusErr
		return
	}
	if d.secCount == 0 {
		d.status |= DiskStatusDone
		d.raiseInterrupt()
		return
	}
	switch cmd {
	case DiskCmdReadDMA:
		d.cmdWrite = false
	case DiskCmdWriteDMA:
		d.cmdWrite = true
	default:
		d.status |= DiskStatusErr
		return
	}
	d.status = DiskStatusBusy
	d.sectorsToFetch = int(d.secCount)
	d.sectorsLeft = int(d.secCount)
	d.readySectors = 0
	d.dmaActive = false
	d.nextAddr = d.bufAddr
	d.firstDMAStart = 0
	d.lastDMAEnd = 0
	// Media access latency before the first sector is available.
	d.eng.ScheduleEventAfter(d.mediaEv, d.cfg.AccessLatency, sim.PriorityDefault)
}

// mediaReady fires when the media has fetched a sector; fetching the
// next sector begins immediately while DMA drains the ready ones.
func (d *Disk) mediaReady() {
	d.sectorsToFetch--
	d.readySectors++
	if d.sectorsToFetch > 0 {
		d.eng.ScheduleEventAfter(d.mediaEv, d.cfg.AccessLatency, sim.PriorityDefault)
	}
	d.tryStartDMA()
}

// tryStartDMA moves one ready sector if the previous sector's barrier
// (all chunk responses received, §VI-B) has completed.
func (d *Disk) tryStartDMA() {
	if d.dmaActive || d.readySectors == 0 {
		return
	}
	d.dmaActive = true
	d.readySectors--
	if d.firstDMAStart == 0 {
		d.firstDMAStart = d.eng.Now()
	}
	addr := d.nextAddr
	if d.cmdWrite {
		// Memory -> device: DMA read of one sector.
		d.dma.Read(addr, d.cfg.SectorSize, nil, d.sectorDone)
	} else {
		// Device -> memory: DMA write of one sector.
		d.dma.Write(addr, d.cfg.SectorSize, nil, d.sectorDone)
	}
}

func (d *Disk) sectorDone(ok bool) {
	d.dmaActive = false
	if !ok {
		// The sector's DMA was aborted by the completion timeout: fail
		// the whole command. Stop the media pipeline, latch the error
		// status, report it through AER, and interrupt so the driver
		// sees a finished-with-error command rather than a hung device.
		d.eng.Deschedule(d.mediaEv)
		d.sectorsToFetch, d.readySectors, d.sectorsLeft = 0, 0, 0
		d.status = DiskStatusDone | DiskStatusErr
		d.commands++
		d.aer.ReportUncorrectable(pci.AERUncCompletionTimeout)
		if tr := d.eng.Tracer(); tr.On(trace.CatFault) {
			tr.Emit(trace.CatFault, uint64(d.eng.Now()), d.name, "command-error", 0,
				"sector DMA aborted by completion timeout; command failed")
		}
		d.raiseInterrupt()
		return
	}
	d.sectors++
	d.sectorsLeft--
	d.nextAddr += uint64(d.cfg.SectorSize)
	d.lastDMAEnd = d.eng.Now()
	if d.sectorsLeft == 0 {
		d.status = DiskStatusDone | d.status&DiskStatusErr
		d.commands++
		d.raiseInterrupt()
		return
	}
	d.tryStartDMA()
}

func (d *Disk) raiseInterrupt() {
	d.intr |= 1
	if tr := d.eng.Tracer(); tr.On(trace.CatIRQ) {
		tr.Emit(trace.CatIRQ, uint64(d.eng.Now()), d.name, "interrupt", 0,
			fmt.Sprintf("status=%#x", d.status))
	}
	if d.OnInterrupt != nil {
		d.OnInterrupt()
	}
}

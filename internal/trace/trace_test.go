package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseCategories(t *testing.T) {
	c, err := ParseCategories("tlp,fault")
	if err != nil {
		t.Fatal(err)
	}
	if c != CatTLP|CatFault {
		t.Fatalf("parsed %v", c)
	}
	if c.String() != "tlp|fault" {
		t.Fatalf("String() = %q", c.String())
	}
	if all, _ := ParseCategories("all"); all != CatAll {
		t.Fatalf("all = %v, want %v", all, CatAll)
	}
	if _, err := ParseCategories("bogus"); err == nil {
		t.Fatal("unknown category must error")
	}
}

func TestCatAllCoversEveryCategory(t *testing.T) {
	for _, c := range []Category{CatTLP, CatDLLP, CatDMA, CatIRQ, CatFault, CatConfig} {
		if CatAll&c == 0 {
			t.Errorf("CatAll missing %v", c)
		}
	}
}

func TestFiltering(t *testing.T) {
	tr := New(CatTLP)
	if !tr.On(CatTLP) || tr.On(CatDMA) {
		t.Fatal("mask not respected")
	}
	tr.Emit(CatTLP, 10, "link.up", "accept", 1, "")
	tr.Emit(CatDMA, 20, "disk.dma", "chunk", 2, "") // filtered out
	if tr.Len() != 1 {
		t.Fatalf("len = %d, want 1", tr.Len())
	}
	if e := tr.Events()[0]; e.Name != "accept" || e.ID != 1 {
		t.Fatalf("event = %+v", e)
	}
}

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	if tr.On(CatTLP) {
		t.Fatal("nil tracer must be off")
	}
	tr.Emit(CatTLP, 1, "x", "y", 0, "")
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must record nothing")
	}
	if n := testing.AllocsPerRun(1000, func() {
		if tr.On(CatTLP) {
			tr.Emit(CatTLP, 1, "x", "y", 0, "")
		}
	}); n != 0 {
		t.Fatalf("nil tracer guard allocates %v times per run, want 0", n)
	}
}

func TestDisabledCategoryIsAllocationFree(t *testing.T) {
	tr := New(CatFault)
	if n := testing.AllocsPerRun(1000, func() {
		if tr.On(CatTLP) {
			tr.Emit(CatTLP, 1, "x", "y", 0, "")
		}
	}); n != 0 {
		t.Fatalf("disabled category guard allocates %v times per run, want 0", n)
	}
}

func TestWriteText(t *testing.T) {
	tr := New(CatAll)
	tr.Emit(CatTLP, 1500, "pcie.disklink.up", "accept", 42, "seq=3")
	tr.Emit(CatFault, 2500, "rc", "cto", 42, "")
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"tick=1500 cat=tlp comp=pcie.disklink.up event=accept id=42 seq=3",
		"tick=2500 cat=fault comp=rc event=cto id=42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChromeJSON(t *testing.T) {
	mk := func() *Tracer {
		tr := New(CatAll)
		tr.Emit(CatTLP, 1_000_000, "pcie.disklink.up", "accept", 7, "seq=1")
		tr.Emit(CatDMA, 2_000_000, "disk.dma", "chunk-issue", 8, "")
		return tr
	}
	var a, b bytes.Buffer
	if err := mk().WriteChromeJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical traces serialized differently")
	}

	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, a.String())
	}
	// 2 thread_name metadata events + 2 instant events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	var inst map[string]interface{}
	for _, e := range doc.TraceEvents {
		if e["ph"] == "i" && e["name"] == "accept" {
			inst = e
		}
	}
	if inst == nil {
		t.Fatal("no instant event named accept")
	}
	if inst["ts"].(float64) != 1.0 { // 1e6 ps = 1 us
		t.Fatalf("ts = %v, want 1.0", inst["ts"])
	}
	args := inst["args"].(map[string]interface{})
	if args["id"].(float64) != 7 {
		t.Fatalf("args.id = %v", args["id"])
	}
}

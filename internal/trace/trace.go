// Package trace is the opt-in event tracer: tick-stamped lifecycle
// events (TLP accepted, replayed, delivered; DMA chunk issued; IRQ
// raised; fault injected) grouped into categories that can be enabled
// independently. Events carry the per-engine packet ID threaded through
// mem.Packet, so one TLP can be followed inject → link → ACK →
// completion across components.
//
// Like internal/stats this is a leaf package: simulated time is raw
// uint64 ticks so internal/sim can depend on it.
//
// The hot-path contract: a nil *Tracer is valid and every method on it
// is a cheap no-op, so components guard emission with
//
//	if tr.On(trace.CatTLP) { tr.Emit(...) }
//
// and pay only a nil check plus a bit test when tracing is off —
// zero allocations.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Category is a bit flag selecting one class of events.
type Category uint32

const (
	// CatTLP covers transaction-layer packet lifecycle events.
	CatTLP Category = 1 << iota
	// CatDLLP covers data-link-layer packets (ACK/NAK).
	CatDLLP
	// CatDMA covers device DMA engine transfers and chunks.
	CatDMA
	// CatIRQ covers interrupt delivery.
	CatIRQ
	// CatFault covers injected faults, timeouts, and AER activity.
	CatFault
	// CatConfig covers PCI configuration-space accesses.
	CatConfig
	// CatSpan covers begin/end duration spans: the named segments
	// (tx-queue wait, fc-stall, wire, replay, switch arbitration,
	// completion turnaround) a TLP's latency decomposes into.
	CatSpan

	// CatAll enables every category.
	CatAll Category = 1<<iota - 1
)

var catNames = []struct {
	c    Category
	name string
}{
	{CatTLP, "tlp"},
	{CatDLLP, "dllp"},
	{CatDMA, "dma"},
	{CatIRQ, "irq"},
	{CatFault, "fault"},
	{CatConfig, "config"},
	{CatSpan, "span"},
}

// CategoryNames lists the parseable category names in declaration
// order, plus "all" — the vocabulary ParseCategories accepts.
func CategoryNames() []string {
	names := make([]string, 0, len(catNames)+1)
	for _, cn := range catNames {
		names = append(names, cn.name)
	}
	return append(names, "all")
}

// String names the set, e.g. "tlp|fault".
func (c Category) String() string {
	if c == 0 {
		return "none"
	}
	var parts []string
	for _, cn := range catNames {
		if c&cn.c != 0 {
			parts = append(parts, cn.name)
		}
	}
	return strings.Join(parts, "|")
}

// ParseCategories parses a comma-separated category list ("tlp,fault")
// or "all".
func ParseCategories(s string) (Category, error) {
	var c Category
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		if part == "" {
			continue
		}
		if part == "all" {
			c |= CatAll
			continue
		}
		found := false
		for _, cn := range catNames {
			if part == cn.name {
				c |= cn.c
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("trace: unknown category %q; valid names: %s",
				part, strings.Join(CategoryNames(), ", "))
		}
	}
	return c, nil
}

// Event is one recorded trace event.
type Event struct {
	Tick   uint64   // simulated time, picoseconds
	Cat    Category // exactly one category bit
	Comp   string   // emitting component, e.g. "pcie.disklink.up"
	Name   string   // event name, e.g. "replay"
	ID     uint64   // packet/transfer ID, 0 if not applicable
	Detail string   // free-form extra context, may be empty
	Phase  byte     // 0 = instant, 'b' = span begin, 'e' = span end
}

// Tracer records events for the enabled categories. The zero value
// with no categories records nothing; a nil *Tracer is also valid.
type Tracer struct {
	mask   Category
	events []Event
}

// New returns a tracer recording the given categories.
func New(mask Category) *Tracer {
	return &Tracer{mask: mask}
}

// On reports whether the category is being recorded. Callers must
// guard Emit with it so disabled tracing costs no argument evaluation.
func (t *Tracer) On(c Category) bool {
	return t != nil && t.mask&c != 0
}

// Emit records one event. Call only under On(cat).
func (t *Tracer) Emit(cat Category, tick uint64, comp, name string, id uint64, detail string) {
	if t == nil || t.mask&cat == 0 {
		return
	}
	t.events = append(t.events, Event{tick, cat, comp, name, id, detail, 0})
}

// Begin opens a duration span (CatSpan). The span is keyed by
// (name, id): End with the same pair closes it. Spans of distinct
// packets overlap freely — they render as async nestable tracks in
// Perfetto, paired by id. Call only under On(CatSpan).
func (t *Tracer) Begin(tick uint64, comp, name string, id uint64, detail string) {
	if t == nil || t.mask&CatSpan == 0 {
		return
	}
	t.events = append(t.events, Event{tick, CatSpan, comp, name, id, detail, 'b'})
}

// End closes the duration span opened by Begin with the same
// (name, id). Call only under On(CatSpan).
func (t *Tracer) End(tick uint64, comp, name string, id uint64, detail string) {
	if t == nil || t.mask&CatSpan == 0 {
		return
	}
	t.events = append(t.events, Event{tick, CatSpan, comp, name, id, detail, 'e'})
}

// Span records one completed duration span as a begin/end pair. It is
// the form instrumentation sites use: the pair is emitted at segment
// completion with the recorded begin tick, so every emitted span is
// closed by construction — begins and ends stay balanced under any
// fault path (flushed queues, dead links, dropped packets simply
// produce no span). Perfetto orders events by timestamp on import, so
// the out-of-emission-order begin renders correctly. Call only under
// On(CatSpan).
func (t *Tracer) Span(beginTick, endTick uint64, comp, name string, id uint64, detail string) {
	if t == nil || t.mask&CatSpan == 0 {
		return
	}
	t.events = append(t.events,
		Event{beginTick, CatSpan, comp, name, id, detail, 'b'},
		Event{endTick, CatSpan, comp, name, id, "", 'e'})
}

// SpanBalance returns the number of span begins and ends recorded —
// equal counts in a quiesced run mean every span was closed.
func (t *Tracer) SpanBalance() (begins, ends int) {
	for _, e := range t.Events() {
		switch e.Phase {
		case 'b':
			begins++
		case 'e':
			ends++
		}
	}
	return begins, ends
}

// Merge combines per-domain tracers into one tracer for rendering:
// events are concatenated in tracer (domain) order and stably sorted
// by tick, so same-tick events from one domain keep their emission
// order and cross-domain same-tick events order by domain index. The
// result is deterministic; the mask is the union of the inputs'.
func Merge(tracers ...*Tracer) *Tracer {
	m := &Tracer{}
	for _, t := range tracers {
		if t == nil {
			continue
		}
		m.mask |= t.mask
		m.events = append(m.events, t.events...)
	}
	sort.SliceStable(m.events, func(i, j int) bool {
		return m.events[i].Tick < m.events[j].Tick
	})
	return m
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events in emission order (which is
// tick order, since the engine is single-threaded).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// WriteText emits one line per event:
//
//	tick=1234567 cat=tlp comp=pcie.disklink.up event=accept id=42 detail...
func (t *Tracer) WriteText(w io.Writer) error {
	for _, e := range t.Events() {
		line := fmt.Sprintf("tick=%d cat=%s comp=%s event=%s", e.Tick, e.Cat, e.Comp, e.Name)
		if e.ID != 0 {
			line += fmt.Sprintf(" id=%d", e.ID)
		}
		if e.Detail != "" {
			line += " " + e.Detail
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeJSON emits the run as Chrome trace_event JSON (the format
// chrome://tracing and Perfetto open). Each emitting component becomes
// a named thread under pid 1; instant events render as "ph":"i" and
// duration spans as async nestable "ph":"b"/"e" pairs keyed by packet
// ID, so spans of different in-flight TLPs nest and overlap correctly
// instead of mispairing on one thread's begin/end stack. Events are
// stamped in microseconds with packet ID and detail in args. Thread
// IDs are assigned by sorted component name, so two identical runs
// emit byte-identical files.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	comps := make(map[string]int)
	var names []string
	for _, e := range t.Events() {
		if _, ok := comps[e.Comp]; !ok {
			comps[e.Comp] = 0
			names = append(names, e.Comp)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		comps[n] = i + 1
	}

	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := io.WriteString(w, line)
		return err
	}
	for _, n := range names {
		if err := emit(fmt.Sprintf(
			`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`,
			comps[n], n)); err != nil {
			return err
		}
	}
	for _, e := range t.Events() {
		// Ticks are picoseconds; trace_event ts is microseconds.
		ts := float64(e.Tick) / 1e6
		var line string
		switch e.Phase {
		case 'b', 'e':
			line = fmt.Sprintf(
				`{"name":%q,"cat":%q,"ph":%q,"id":%d,"pid":1,"tid":%d,"ts":%.6f,"args":{"detail":%q}}`,
				e.Name, e.Cat.String(), string(e.Phase), e.ID, comps[e.Comp], ts, e.Detail)
		default:
			line = fmt.Sprintf(
				`{"name":%q,"cat":%q,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%.6f,"args":{"id":%d,"detail":%q}}`,
				e.Name, e.Cat.String(), comps[e.Comp], ts, e.ID, e.Detail)
		}
		if err := emit(line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

package xbar

import (
	"testing"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
	"pciesim/internal/testdev"
)

func buildXBar(eng *sim.Engine, cfg Config) (*XBar, *testdev.Requester, *testdev.Responder, *testdev.Responder) {
	x := New(eng, "bus", cfg)
	req := testdev.NewRequester(eng, "cpu")
	mem.Connect(req.Port(), x.SlavePort("cpu"))
	devA := testdev.NewResponder(eng, "devA", mem.RangeList{mem.Span(0x1000, 0x2000)}, 100*sim.Nanosecond, 0)
	mem.Connect(x.MasterPort("devA", devA.AddrRanges(nil)), devA.Port())
	devB := testdev.NewResponder(eng, "devB", mem.RangeList{mem.Span(0x8000, 0x9000)}, 200*sim.Nanosecond, 0)
	mem.Connect(x.MasterPort("devB", devB.AddrRanges(nil)), devB.Port())
	return x, req, devA, devB
}

func TestXBarRoutesByAddress(t *testing.T) {
	eng := sim.NewEngine()
	_, req, devA, devB := buildXBar(eng, Config{})
	req.Read(0x1800, 4)
	req.Write(0x8800, 64)
	eng.Run()
	if len(devA.Received) != 1 || devA.Received[0].Addr != 0x1800 {
		t.Errorf("devA received %v", devA.Received)
	}
	if len(devB.Received) != 1 || devB.Received[0].Addr != 0x8800 {
		t.Errorf("devB received %v", devB.Received)
	}
	if len(req.Completions) != 2 {
		t.Fatalf("%d completions, want 2", len(req.Completions))
	}
}

func TestXBarLatencies(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{FrontendLatency: 10 * sim.Nanosecond, ResponseLatency: 5 * sim.Nanosecond}
	_, req, _, _ := buildXBar(eng, cfg)
	req.Read(0x1000, 4)
	eng.Run()
	// 10ns request forward + 100ns device + 5ns response forward.
	want := 115 * sim.Nanosecond
	if got := req.Completions[0].Latency(); got != want {
		t.Errorf("round trip = %v, want %v", got, want)
	}
}

func TestXBarPerByteOccupancySerializes(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{PerByte: 10} // 10 ps/B => 640 ps per 64B packet
	_, req, devA, _ := buildXBar(eng, cfg)
	// Two same-cycle writes to the same device must be spaced by the
	// first packet's occupancy on the egress layer.
	req.Write(0x1000, 64)
	req.Write(0x1040, 64)
	eng.Run()
	if len(devA.Received) != 2 {
		t.Fatalf("%d packets arrived", len(devA.Received))
	}
	// Deliveries happen when each packet's layer slot ends: first at 0
	// (header free, ready immediately), second at 640 ps.
	if got := req.Completions[1].Done - req.Completions[0].Done; got != 640 {
		t.Errorf("second delivery %v after first, want 640 ps spacing", got)
	}
}

func TestXBarUnroutedAddressPanics(t *testing.T) {
	eng := sim.NewEngine()
	_, req, _, _ := buildXBar(eng, Config{})
	req.Read(0xdead0000, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("unrouted address should panic")
		}
	}()
	eng.Run()
}

func TestXBarOverlappingRangesPanic(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, "bus", Config{})
	x.MasterPort("a", mem.RangeList{mem.Span(0x1000, 0x2000)})
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping egress ranges should panic")
		}
	}()
	x.MasterPort("b", mem.RangeList{mem.Span(0x1800, 0x2800)})
}

func TestXBarRangesUnion(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, "bus", Config{})
	x.MasterPort("a", mem.RangeList{mem.Span(0x1000, 0x2000)})
	x.MasterPort("b", mem.RangeList{mem.Span(0x2000, 0x3000)})
	got := x.Ranges()
	if len(got) != 1 || got[0] != mem.Span(0x1000, 0x3000) {
		t.Errorf("Ranges = %v", got)
	}
}

func TestXBarBackpressureOnFullEgressQueue(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, "bus", Config{QueueDepth: 2})
	req := testdev.NewRequester(eng, "cpu")
	mem.Connect(req.Port(), x.SlavePort("cpu"))
	// A slow device that refuses its first few requests keeps the
	// egress queue occupied.
	dev := testdev.NewResponder(eng, "dev", mem.RangeList{mem.Span(0x1000, 0x2000)}, 1000, 0)
	dev.RefuseRequests = 3
	mem.Connect(x.MasterPort("dev", dev.AddrRanges(nil)), dev.Port())
	for i := 0; i < 8; i++ {
		req.Read(0x1000+uint64(i*4), 4)
	}
	eng.Run()
	if len(req.Completions) != 8 {
		t.Fatalf("%d completions, want 8 (no packets lost under backpressure)", len(req.Completions))
	}
	if !req.Done() {
		t.Fatal("requester not drained")
	}
}

func TestXBarResponseRefusalRetried(t *testing.T) {
	eng := sim.NewEngine()
	_, req, _, _ := buildXBar(eng, Config{QueueDepth: 1})
	req.RefuseResponses = 2
	for i := 0; i < 4; i++ {
		req.Read(0x1000+uint64(i*8), 8)
	}
	eng.Run()
	if len(req.Completions) != 4 {
		t.Fatalf("%d completions, want 4", len(req.Completions))
	}
}

func TestXBarMultipleMastersShareSlave(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, "bus", Config{QueueDepth: 1})
	r1 := testdev.NewRequester(eng, "m1")
	r2 := testdev.NewRequester(eng, "m2")
	mem.Connect(r1.Port(), x.SlavePort("m1"))
	mem.Connect(r2.Port(), x.SlavePort("m2"))
	dev := testdev.NewResponder(eng, "dev", mem.RangeList{mem.Span(0, 0x10000)}, 500, 1)
	mem.Connect(x.MasterPort("dev", dev.AddrRanges(nil)), dev.Port())
	for i := 0; i < 5; i++ {
		r1.Read(uint64(i*64), 64)
		r2.Read(uint64(0x8000+i*64), 64)
	}
	eng.Run()
	if len(r1.Completions) != 5 || len(r2.Completions) != 5 {
		t.Fatalf("completions %d/%d, want 5/5", len(r1.Completions), len(r2.Completions))
	}
	// Responses must return to the issuing master, not the other one.
	for _, c := range r1.Completions {
		if c.Pkt.Addr >= 0x8000 {
			t.Errorf("m1 got m2's response %v", c.Pkt)
		}
	}
}

func TestXBarResponseRouteUnwindsCleanly(t *testing.T) {
	eng := sim.NewEngine()
	_, req, _, _ := buildXBar(eng, Config{})
	req.Read(0x1000, 4)
	eng.Run()
	if d := req.Completions[0].Pkt.RouteDepth(); d != 0 {
		t.Errorf("route depth %d after full round trip, want 0", d)
	}
}

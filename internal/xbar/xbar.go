// Package xbar implements the address-range-routed crossbar that gem5
// uses for its on-chip MemBus and off-chip IOBus (§III of the paper).
//
// A crossbar has any number of ingress (slave) ports, where master
// devices inject requests, and egress (master) ports, each claiming a
// set of address ranges. Requests route by address; responses retrace
// the request path via the packet route stack. Each egress direction
// has a forwarding latency, a per-byte occupancy that models the bus
// width, and a bounded queue whose refusals propagate backpressure to
// the ingress side through the standard retry protocol.
package xbar

import (
	"fmt"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
)

// Config parameterizes a crossbar.
type Config struct {
	// FrontendLatency is added to every request forwarded through the
	// crossbar — gem5's "latency associated with making the forwarding
	// decision".
	FrontendLatency sim.Tick
	// ResponseLatency is added to every response.
	ResponseLatency sim.Tick
	// PerByte is the occupancy added per payload byte, modeling the
	// data-path width ("moving data from one port to another").
	PerByte sim.Tick
	// QueueDepth bounds each egress queue; 0 means unbounded.
	QueueDepth int
}

// XBar is the crossbar. Construct with New, then wire devices with
// MasterPort (for slaves hanging off the bus) and SlavePort (for
// masters injecting into the bus) before the simulation starts.
type XBar struct {
	eng  *sim.Engine
	name string
	cfg  Config

	ingress []*ingressPort
	egress  []*egressPort
}

// ingressPort is where an external master connects. It owns the egress
// queue for responses heading back to that master.
type ingressPort struct {
	x     *XBar
	index int
	port  *mem.SlavePort
	respQ *mem.SendQueue
	// respWaiters are this crossbar's master ports whose response
	// delivery was refused because respQ was full.
	respWaiters []*mem.MasterPort
	nextFree    sim.Tick
}

// egressPort is where an external slave connects. It owns the egress
// queue for requests heading to that slave.
type egressPort struct {
	x      *XBar
	index  int
	port   *mem.MasterPort
	ranges mem.RangeList
	reqQ   *mem.SendQueue
	// reqWaiters are this crossbar's slave ports whose request was
	// refused because reqQ was full.
	reqWaiters []*mem.SlavePort
	nextFree   sim.Tick
}

// New creates an empty crossbar.
func New(eng *sim.Engine, name string, cfg Config) *XBar {
	return &XBar{eng: eng, name: name, cfg: cfg}
}

// Name returns the crossbar's name.
func (x *XBar) Name() string { return x.name }

// SlavePort adds an ingress port (for an external master to connect to)
// and returns it.
func (x *XBar) SlavePort(name string) *mem.SlavePort {
	in := &ingressPort{x: x, index: len(x.ingress)}
	in.port = mem.NewSlavePort(fmt.Sprintf("%s.slave[%s]", x.name, name), (*xbarSlaveOwner)(in))
	in.respQ = mem.NewSendQueue(x.eng, in.port.Name()+".respq", x.cfg.QueueDepth, func(p *mem.Packet) bool {
		return in.port.SendTimingResp(p)
	})
	in.respQ.Segment("xbar-q")
	in.respQ.OnFree(func() { in.freeWaiter() })
	x.ingress = append(x.ingress, in)
	return in.port
}

// MasterPort adds an egress port claiming the given address ranges (for
// an external slave to connect to) and returns it.
func (x *XBar) MasterPort(name string, ranges mem.RangeList) *mem.MasterPort {
	for _, r := range ranges {
		for _, e := range x.egress {
			if e.ranges.Overlaps(r) {
				panic(fmt.Sprintf("xbar %s: range %v of port %q overlaps port %q",
					x.name, r, name, e.port.Name()))
			}
		}
	}
	out := &egressPort{x: x, index: len(x.egress), ranges: ranges}
	out.port = mem.NewMasterPort(fmt.Sprintf("%s.master[%s]", x.name, name), (*xbarMasterOwner)(out))
	out.reqQ = mem.NewSendQueue(x.eng, out.port.Name()+".reqq", x.cfg.QueueDepth, func(p *mem.Packet) bool {
		return out.port.SendTimingReq(p)
	})
	out.reqQ.Segment("xbar-q")
	out.reqQ.OnFree(func() { out.freeWaiter() })
	x.egress = append(x.egress, out)
	return out.port
}

// Ranges returns the union of all egress ranges — what the crossbar as
// a whole responds to (used when a bridge claims the off-chip window).
func (x *XBar) Ranges() mem.RangeList {
	var all mem.RangeList
	for _, e := range x.egress {
		all = append(all, e.ranges...)
	}
	return all.Normalize()
}

// routeFor finds the egress port claiming addr, or nil.
func (x *XBar) routeFor(addr uint64) *egressPort {
	for _, e := range x.egress {
		if e.ranges.Contains(addr) {
			return e
		}
	}
	return nil
}

// xbarSlaveOwner adapts ingressPort to mem.SlaveOwner.
type xbarSlaveOwner ingressPort

func (o *xbarSlaveOwner) in() *ingressPort { return (*ingressPort)(o) }

// RecvTimingReq routes a request from an external master to the egress
// queue claiming its address.
func (o *xbarSlaveOwner) RecvTimingReq(_ *mem.SlavePort, pkt *mem.Packet) bool {
	in := o.in()
	x := in.x
	dst := x.routeFor(pkt.Addr)
	if dst == nil {
		panic(fmt.Sprintf("xbar %s: no route for %v", x.name, pkt))
	}
	if dst.reqQ.Full() {
		dst.addWaiter(in.port)
		return false
	}
	pkt.PushRoute(x, in.index)
	ready := x.eng.Now() + x.cfg.FrontendLatency
	if dst.nextFree > ready {
		ready = dst.nextFree
	}
	dst.nextFree = ready + x.cfg.PerByte*sim.Tick(pkt.Size)
	dst.reqQ.Push(pkt, ready)
	return true
}

// RecvRespRetry resumes a response queue blocked on this ingress port's
// external master.
func (o *xbarSlaveOwner) RecvRespRetry(*mem.SlavePort) { o.in().respQ.RetryReceived() }

// AddrRanges advertises the crossbar's reachable ranges to whoever asks
// (e.g. a bridge wiring itself up).
func (o *xbarSlaveOwner) AddrRanges(*mem.SlavePort) mem.RangeList { return o.in().x.Ranges() }

// xbarMasterOwner adapts egressPort to mem.MasterOwner.
type xbarMasterOwner egressPort

func (o *xbarMasterOwner) out() *egressPort { return (*egressPort)(o) }

// RecvTimingResp routes a response from an external slave back to the
// ingress port recorded on the packet's route stack.
func (o *xbarMasterOwner) RecvTimingResp(_ *mem.MasterPort, pkt *mem.Packet) bool {
	out := o.out()
	x := out.x
	if pkt.RouteDepth() == 0 {
		panic(fmt.Sprintf("xbar %s: response %v with no route", x.name, pkt))
	}
	idx := pkt.PopRoute(x)
	in := x.ingress[idx]
	if in.respQ.Full() {
		pkt.PushRoute(x, idx) // restore for the retry
		in.addRespWaiter(out.port)
		return false
	}
	ready := x.eng.Now() + x.cfg.ResponseLatency
	if in.nextFree > ready {
		ready = in.nextFree
	}
	in.nextFree = ready + x.cfg.PerByte*sim.Tick(pkt.Size)
	in.respQ.Push(pkt, ready)
	return true
}

// RecvReqRetry resumes this egress port's request queue after a
// downstream refusal.
func (o *xbarMasterOwner) RecvReqRetry(*mem.MasterPort) { o.out().reqQ.RetryReceived() }

func (e *egressPort) addWaiter(p *mem.SlavePort) {
	for _, w := range e.reqWaiters {
		if w == p {
			return
		}
	}
	e.reqWaiters = append(e.reqWaiters, p)
}

// freeWaiter hands the freed request-queue slot to the oldest waiting
// ingress port by telling its external master to retry.
func (e *egressPort) freeWaiter() {
	if len(e.reqWaiters) == 0 {
		return
	}
	w := e.reqWaiters[0]
	copy(e.reqWaiters, e.reqWaiters[1:])
	e.reqWaiters = e.reqWaiters[:len(e.reqWaiters)-1]
	// Defer to an event so the retry does not run inside the queue's
	// send path (the master may immediately re-send).
	e.x.eng.ScheduleAt(w.Name()+".reqretry", e.x.eng.Now(), sim.PriorityRetry, w.SendReqRetry)
}

func (in *ingressPort) addRespWaiter(p *mem.MasterPort) {
	for _, w := range in.respWaiters {
		if w == p {
			return
		}
	}
	in.respWaiters = append(in.respWaiters, p)
}

func (in *ingressPort) freeWaiter() {
	if len(in.respWaiters) == 0 {
		return
	}
	w := in.respWaiters[0]
	copy(in.respWaiters, in.respWaiters[1:])
	in.respWaiters = in.respWaiters[:len(in.respWaiters)-1]
	in.x.eng.ScheduleAt(w.Name()+".respretry", in.x.eng.Now(), sim.PriorityRetry, w.SendRespRetry)
}

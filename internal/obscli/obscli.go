// Package obscli is the shared command-line plumbing for the
// observability layer: every tool that runs a simulation registers the
// same -stats / -stats-out / -stats-interval / -stats-stream / -trace
// / -trace-out / -prof flags, arms the engine before the run, and
// writes the dumps after.
package obscli

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pciesim/internal/sim"
	"pciesim/internal/trace"
)

// defaultStreamInterval is the sampling period (simulated
// microseconds) -stats-stream falls back to when -stats-interval was
// not given: a stream with nothing flowing through it would be a
// surprise.
const defaultStreamInterval = 100

// Flags holds the observability options of one command invocation.
type Flags struct {
	// Stats prints a human-readable stats summary to stdout at the end
	// of the run.
	Stats bool
	// StatsOut writes the end-of-run stats dump to a file: JSON unless
	// the path ends in .csv.
	StatsOut string
	// StatsInterval enables periodic counter sampling at this period
	// (microseconds of simulated time); the series appears in both the
	// JSON and CSV dumps.
	StatsInterval int
	// StatsStream streams each sampler snapshot to a file as one NDJSON
	// line while the run is going ("-" for stdout). Implies periodic
	// sampling at the default interval when -stats-interval is unset.
	StatsStream string
	// Trace selects trace categories ("tlp,fault", "all"). As a
	// shorthand, a path ending in .json means "all categories, Chrome
	// trace to that file" — `-trace trace.json` is the common case.
	Trace string
	// TraceOut writes the trace to a file: Chrome trace_event JSON if
	// the path ends in .json (open it in Perfetto), text otherwise.
	// Empty with -trace set writes text to stdout.
	TraceOut string
	// Prof arms the engine self-profiler and prints its per-event table
	// (counts, same-tick re-schedules, wall-clock) after the run.
	Prof bool

	tracer     *trace.Tracer
	domTracers []*trace.Tracer // one per timing domain under -par
	streamFile *os.File
	streamBuf  *bufio.Writer
}

// Register installs the flags on the given FlagSet (flag.CommandLine
// for ordinary commands).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&f.Stats, "stats", false, "print a stats summary (counters, queue depths, latency histograms) after the run")
	fs.StringVar(&f.StatsOut, "stats-out", "", "write the stats dump to this file (.csv for CSV, JSON otherwise)")
	fs.IntVar(&f.StatsInterval, "stats-interval", 0, "sample counters every N microseconds of simulated time (0 disables; series lands in the JSON and CSV dumps)")
	fs.StringVar(&f.StatsStream, "stats-stream", "", `stream sampler snapshots to this file as NDJSON while the run is going ("-" for stdout); implies -stats-interval 100 when unset`)
	fs.StringVar(&f.Trace, "trace", "", `trace categories ("tlp,dllp,dma,irq,fault,config,span" or "all"); a .json path means all categories to that Chrome trace file`)
	fs.StringVar(&f.TraceOut, "trace-out", "", "write the trace to this file (.json for Chrome/Perfetto trace_event format, text otherwise)")
	fs.BoolVar(&f.Prof, "prof", false, "profile the engine itself: per-event counts, same-tick re-schedules, and wall-clock, printed after the run")
}

// Arm installs the tracer, sampler, stream, profiler, and span
// attribution on the engine before the run. On a parallel (multi-
// domain) engine each domain gets its own tracer and profiler — Finish
// merges them — while the periodic sampler, which reads every counter
// from the root domain's clock, is refused.
func (f *Flags) Arm(eng *sim.Engine) error {
	engines := eng.DomainEngines()
	if len(engines) == 0 {
		engines = []*sim.Engine{eng}
	}
	if f.Trace != "" {
		spec := f.Trace
		if strings.HasSuffix(spec, ".json") {
			// `-trace trace.json` shorthand.
			if f.TraceOut == "" {
				f.TraceOut = spec
			}
			spec = "all"
		}
		mask, err := trace.ParseCategories(spec)
		if err != nil {
			return err
		}
		for _, e := range engines {
			t := trace.New(mask)
			e.SetTracer(t)
			f.domTracers = append(f.domTracers, t)
			if mask&trace.CatSpan != 0 {
				// Span events need the components' span accounting on.
				e.ArmSpans()
			}
		}
		f.tracer = f.domTracers[0]
	}
	if f.StatsStream != "" && f.StatsInterval == 0 {
		f.StatsInterval = defaultStreamInterval
	}
	if f.StatsInterval > 0 {
		if len(engines) > 1 {
			return fmt.Errorf("obscli: -stats-interval and -stats-stream sample on the root domain's clock and need the serial engine; drop -par")
		}
		eng.SampleEvery(sim.Tick(f.StatsInterval) * sim.Microsecond)
	}
	if f.StatsStream != "" {
		w := io.Writer(os.Stdout)
		if f.StatsStream != "-" {
			file, err := os.Create(f.StatsStream)
			if err != nil {
				return fmt.Errorf("stats stream: %w", err)
			}
			f.streamFile = file
			f.streamBuf = bufio.NewWriter(file)
			w = f.streamBuf
		}
		eng.Stats().Sampler().StreamTo(w)
	}
	if f.Prof {
		for _, e := range engines {
			e.Profile()
		}
	}
	return nil
}

// Enabled reports whether any output will be produced by Finish.
func (f *Flags) Enabled() bool {
	return f.Stats || f.StatsOut != "" || f.tracer != nil || f.Prof || f.streamFile != nil
}

// Active reports whether any observability flag was given — callable
// before Arm, unlike Enabled.
func (f *Flags) Active() bool {
	return f.Stats || f.StatsOut != "" || f.StatsInterval > 0 || f.Trace != "" ||
		f.StatsStream != "" || f.Prof
}

// ForRun returns an independent copy of the flags with every output
// path suffixed by label (inserted before the extension), for tools
// that run many simulations in one invocation and need one dump per
// run. Arm and Finish the copy around each run. Labels are unique per
// run, so copies armed on concurrently running engines never write the
// same file; each copy still belongs to exactly one engine.
func (f Flags) ForRun(label string) *Flags {
	c := f
	c.tracer = nil
	c.domTracers = nil
	c.streamFile = nil
	c.streamBuf = nil
	c.StatsOut = suffixPath(c.StatsOut, label)
	c.TraceOut = suffixPath(c.TraceOut, label)
	if c.StatsStream != "" && c.StatsStream != "-" {
		c.StatsStream = suffixPath(c.StatsStream, label)
	}
	if strings.HasSuffix(c.Trace, ".json") {
		c.Trace = suffixPath(c.Trace, label)
	}
	return &c
}

// suffixPath turns "stats.json" + "x8@512MB" into "stats-x8@512MB.json".
// Path separators in the label are flattened so a label can never
// escape into another directory.
func suffixPath(path, label string) string {
	if path == "" {
		return ""
	}
	label = strings.ReplaceAll(label, "/", "_")
	if dot := strings.LastIndex(path, "."); dot > strings.LastIndex(path, "/") {
		return path[:dot] + "-" + label + path[dot:]
	}
	return path + "-" + label
}

// Finish writes the requested dumps after the run. It must be called
// after the engine has stopped.
func (f *Flags) Finish(eng *sim.Engine) error {
	now := uint64(eng.Now())
	r := eng.Stats()
	if f.streamFile != nil {
		sampler := r.Sampler()
		if err := f.streamBuf.Flush(); err != nil {
			return fmt.Errorf("stats stream: %w", err)
		}
		if err := f.streamFile.Close(); err != nil {
			return fmt.Errorf("stats stream: %w", err)
		}
		f.streamFile, f.streamBuf = nil, nil
		if sampler != nil {
			if err := sampler.StreamErr(); err != nil {
				return fmt.Errorf("stats stream: %w", err)
			}
		}
	}
	if f.StatsOut != "" {
		if err := writeFile(f.StatsOut, func(w io.Writer) error {
			if strings.HasSuffix(f.StatsOut, ".csv") {
				return r.WriteCSV(w, now)
			}
			return r.WriteJSON(w, now)
		}); err != nil {
			return fmt.Errorf("stats dump: %w", err)
		}
	}
	if f.Stats {
		fmt.Println()
		if err := r.WriteText(os.Stdout, now); err != nil {
			return err
		}
	}
	if f.Prof {
		if prof := eng.Prof(); prof != nil {
			if doms := eng.DomainEngines(); len(doms) > 1 {
				var others []*sim.Profiler
				for _, d := range doms[1:] {
					if p := d.Prof(); p != nil {
						others = append(others, p)
					}
				}
				prof.Merge(others...)
			}
			fmt.Println()
			if err := prof.WriteTable(os.Stdout, 20, true); err != nil {
				return err
			}
		}
	}
	if f.tracer != nil {
		out := f.tracer
		if len(f.domTracers) > 1 {
			out = trace.Merge(f.domTracers...)
		}
		write := out.WriteText
		if strings.HasSuffix(f.TraceOut, ".json") {
			write = out.WriteChromeJSON
		}
		if f.TraceOut == "" {
			return write(os.Stdout)
		}
		if err := writeFile(f.TraceOut, func(w io.Writer) error { return write(w) }); err != nil {
			return fmt.Errorf("trace dump: %w", err)
		}
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

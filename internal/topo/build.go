package topo

import (
	"fmt"

	"pciesim/internal/bridge"
	"pciesim/internal/cache"
	"pciesim/internal/devices"
	"pciesim/internal/fault"
	"pciesim/internal/kernel"
	"pciesim/internal/mem"
	"pciesim/internal/memctrl"
	"pciesim/internal/pci"
	"pciesim/internal/pcie"
	"pciesim/internal/sim"
	"pciesim/internal/xbar"
)

// Address map of the modeled ARM Vexpress_GEM5_V1 platform (§III).
const (
	ConfigBase = 0x30000000
	ConfigSize = 256 << 20
	IOBase     = 0x2f000000
	IOSize     = 16 << 20
	MMIOBase   = 0x40000000
	MMIOSize   = 1 << 30
	DRAMBase   = 0x80000000 // "DRAM is mapped to addresses from 2GB"
	DRAMSize   = 2 << 30
	// MSIFrameBase is the on-chip MSI doorbell frame (GICv2m-style),
	// present when Config.EnableMSI is set.
	MSIFrameBase = 0x2c1f0000
	MSIFrameSize = 4096
)

// Config holds every topology-independent knob of the platform: the
// fabric latencies and buffer sizes, the substrate calibration, and the
// OS model. Per-link width/generation/fault live in the Spec (widths,
// gens) and the Faults map (fault plans, keyed by link name).
type Config struct {
	// --- PCI-Express fabric ---

	// RootComplexLatency is the RC processing latency.
	RootComplexLatency sim.Tick
	// SwitchLatency is the switch store-and-forward latency.
	SwitchLatency sim.Tick
	// PortBufferSize is the root/switch per-port buffer in packets.
	PortBufferSize int
	// ReplayBufferSize is the link-interface replay buffer.
	ReplayBufferSize int
	// Gen is the default link generation for links whose spec leaves
	// Gen zero.
	Gen pcie.Generation
	// PropDelay is the per-direction propagation delay of every link's
	// physical medium — zero for the baseline's short electrical traces,
	// hundreds of nanoseconds for the cabled/retimed links of the
	// future-system experiments, where it sets the bandwidth-delay
	// product that flow-control credits must cover.
	PropDelay sim.Tick
	// Seed seeds fault injection.
	Seed uint64
	// NoP2P disables peer-to-peer turnaround in every switch: requests
	// between sibling endpoints are forced up to the root complex and
	// reflect off it. The default (false) lets switches turn peer
	// traffic around locally.
	NoP2P bool
	// Credits enables transaction-layer credit-based flow control on
	// every link: each endpoint interface advertises this VC0 pool,
	// and router-side interfaces advertise it capped at their real
	// queue depths. The zero value keeps every link in the legacy
	// infinite-credit mode (bit-identical to the pre-FC simulator).
	// Per-link overrides live in the spec (LinkSpec.Credits).
	Credits pcie.CreditConfig

	// --- error containment & recovery ---

	// Faults attaches deterministic fault plans to links by link name
	// (LinkSpec.Name; "<node>.link" when auto-named). A plan set
	// directly in the spec wins over this map.
	Faults map[string]*fault.Plan
	// CompletionTimeout arms the root complex's completion timer; zero
	// disables it.
	CompletionTimeout sim.Tick
	// DiskCmdTimeout bounds the block driver's wait for a command
	// interrupt; zero waits forever.
	DiskCmdTimeout sim.Tick
	// DiskDMATimeout bounds the disk DMA engine's per-transfer
	// in-flight time; zero disables.
	DiskDMATimeout sim.Tick
	// EnableMSI adds the MSI doorbell frame and makes NIC MSI
	// enableable.
	EnableMSI bool
	// EnableDPC adds the Downstream Port Containment extended
	// capability to every slot-implemented fabric port, instantiates
	// the kernel recovery manager, and arms containment at boot. Off by
	// default: existing platforms stay bit-identical.
	EnableDPC bool
	// Recovery tunes the kernel's DPC/hot-plug recovery driver
	// (zero-value fields take defaults). Only meaningful with EnableDPC.
	Recovery kernel.RecoveryConfig
	// Degrade arms adaptive link degradation on every link: sustained
	// error windows retrain the link at reduced width/generation, with
	// exponential-backoff upgrade retrains back toward the configured
	// level. Nil leaves degradation off (links with scheduled Downtrain
	// faults still self-arm the default policy). Per-link overrides
	// live in the spec (LinkSpec.Degrade).
	Degrade *pcie.DegradeConfig

	// --- substrate ---

	MemBusFrontend sim.Tick
	MemBusResponse sim.Tick
	MemBusPerByte  sim.Tick
	IOBusLatency   sim.Tick
	BridgeDelay    sim.Tick
	PCIHostLatency sim.Tick
	IOCache        cache.Config
	DRAM           memctrl.Config
	Disk           devices.DiskConfig
	NIC            devices.NICConfig
	NICPIOLatency  sim.Tick
	TestDev        devices.TestDevConfig

	// --- OS model ---

	IRQLatency sim.Tick
	DD         kernel.DDConfig

	// --- parallel engine ---

	// Domains requests conservative parallel simulation with this many
	// timing domains (the -par flag): 0 or 1 runs the classic serial
	// engine. The partitioner cuts the fabric at link boundaries into
	// at most Domains domains (root substrate in domain 0) and may use
	// fewer when the topology has fewer cuttable subtrees; topologies
	// or configurations it cannot cut safely fall back to serial.
	// Results are deterministic and stats dumps byte-identical to the
	// serial engine either way.
	Domains int
}

// DefaultConfig is the calibrated baseline of DESIGN.md §5 — the same
// numbers internal/system's DefaultConfig has always used; that package
// now derives its config from this one.
func DefaultConfig() Config {
	return Config{
		RootComplexLatency: 150 * sim.Nanosecond,
		SwitchLatency:      150 * sim.Nanosecond,
		PortBufferSize:     16,
		ReplayBufferSize:   4,
		Gen:                pcie.Gen2,

		MemBusFrontend: 10 * sim.Nanosecond,
		MemBusResponse: 10 * sim.Nanosecond,
		MemBusPerByte:  62, // ~16 GB/s data path
		IOBusLatency:   20 * sim.Nanosecond,
		BridgeDelay:    25 * sim.Nanosecond,
		PCIHostLatency: 100 * sim.Nanosecond,
		IOCache: cache.Config{
			Size:         1024,
			LineSize:     64,
			Assoc:        4,
			TagLatency:   10 * sim.Nanosecond,
			MSHRs:        4,
			WriteBuffers: 8,
		},
		// The DRAM service rate is the I/O tree's drain limit: ~51 ns
		// per 64 B line (~11.4 Gb/s of DMA drain); see DESIGN.md §5.
		DRAM: memctrl.Config{
			Latency:        80 * sim.Nanosecond,
			PerByte:        800,
			MaxOutstanding: 16,
		},
		Disk:          devices.DefaultDiskConfig(),
		NIC:           devices.DefaultNICConfig(),
		NICPIOLatency: 110 * sim.Nanosecond,
		TestDev:       devices.DefaultTestDevConfig(),

		IRQLatency: 1 * sim.Microsecond,
		DD: kernel.DDConfig{
			RequestBytes:       128 * 1024,
			BufAddr:            DRAMBase + (64 << 20),
			StartupOverhead:    12 * sim.Millisecond,
			PerRequestOverhead: 5 * sim.Microsecond,
			PerSectorOverhead:  1300 * sim.Nanosecond,
			InterruptOverhead:  4 * sim.Microsecond,
		},
	}
}

// LinkInst is one instantiated link and the spec node below it.
type LinkInst struct {
	Name string
	Node *Node
	Link *pcie.Link
}

// SwitchInst is one instantiated switch.
type SwitchInst struct {
	Name string
	Node *Node
	Sw   *pcie.Switch
}

// DiskInst is one instantiated disk endpoint.
type DiskInst struct {
	Name string
	BDF  pci.BDF
	Dev  *devices.Disk
}

// NICInst is one instantiated NIC endpoint.
type NICInst struct {
	Name string
	BDF  pci.BDF
	Dev  *devices.NIC
}

// TestDevInst is one instantiated test endpoint.
type TestDevInst struct {
	Name string
	BDF  pci.BDF
	Dev  *devices.TestDev
}

// System is an assembled platform with an arbitrary fabric. The
// substrate (CPU, DRAM, buses, IOCache, PCI host) is identical to the
// validation platform's; the fabric below the root complex is whatever
// the Spec described.
type System struct {
	Spec *Spec
	Cfg  Config
	Plan *Plan
	Eng  *sim.Engine

	// PktPool recycles request packets for every requestor (CPU and all
	// DMA engines). Engine-local, never shared across simulations.
	PktPool *mem.Pool

	CPU    *kernel.CPU
	Kernel *kernel.Kernel

	MemBus  *xbar.XBar
	IOBus   *xbar.XBar
	Bridge  *bridge.Bridge
	IOCache *cache.Cache
	DRAM    *memctrl.Memory
	PCIHost *pci.Host

	// MSI is the doorbell frame, nil unless Cfg.EnableMSI.
	MSI *devices.MSIController

	RC *pcie.RootComplex

	// Fabric inventory, all in DFS (bus) order.
	Switches []*SwitchInst
	Links    []*LinkInst
	Disks    []*DiskInst
	NICs     []*NICInst
	TestDevs []*TestDevInst

	DiskDriver *kernel.DiskDriver
	NICDriver  *kernel.E1000eDriver

	// Recovery is the kernel's DPC/hot-plug service, nil unless
	// Cfg.EnableDPC.
	Recovery *kernel.RecoveryManager

	linkByName   map[string]*LinkInst
	dpcPorts     []dpcPort
	hotplugSaved map[pci.BDF]pci.ConfigAccessor
	booted       bool

	// Parallel-engine state: engines[0] == Eng always; len(engines) is
	// the domain count (1 = serial). part carries the node→domain map
	// used while building; pools are the per-domain packet pools
	// (pools[0] == PktPool).
	engines []*sim.Engine
	pools   []*mem.Pool
	part    *partition
}

// Domains returns the number of timing domains the system was built
// with: 1 for the serial engine.
func (s *System) Domains() int { return len(s.engines) }

// dpcPort pairs a containment-capable fabric port with its BDF, so the
// recovery manager's interrupt hook can be wired after the kernel
// exists.
type dpcPort struct {
	port *pcie.Port
	bdf  pci.BDF
}

// Build normalizes the spec, plans bus numbers, and assembles the
// platform. The simulation is ready to Boot.
func Build(spec *Spec, cfg Config) (*System, error) {
	if spec == nil {
		return nil, fmt.Errorf("topo: nil spec")
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	plan, err := spec.Plan()
	if err != nil {
		return nil, err
	}

	part, err := partitionSpec(spec, cfg)
	if err != nil {
		return nil, err
	}
	engines := make([]*sim.Engine, part.domains)
	for i := range engines {
		engines[i] = sim.NewEngine()
	}
	eng := engines[0]
	s := &System{
		Spec: spec, Cfg: cfg, Plan: plan, Eng: eng,
		PktPool:      mem.NewPool(),
		linkByName:   map[string]*LinkInst{},
		hotplugSaved: map[pci.BDF]pci.ConfigAccessor{},
		engines:      engines,
		part:         part,
	}
	s.pools = make([]*mem.Pool, part.domains)
	s.pools[0] = s.PktPool
	if part.domains > 1 {
		sim.NewCoordinator(part.quantum, engines...)
		rootReg := eng.Stats()
		for i := 1; i < part.domains; i++ {
			// Disjoint packet-ID spaces per domain: IDs only key maps
			// and traces, so the offset never shows in stats dumps.
			engines[i].SeedPacketIDs(uint64(i) << 48)
			rootReg.Attach(engines[i].Stats())
			s.pools[i] = mem.NewPool()
		}
		// Arm the per-pool allocation journals: the fold over them at
		// dump time reconstructs the counters one shared serial pool
		// would have reported.
		for i, p := range s.pools {
			e := engines[i]
			p.SetJournal(func() uint64 { return uint64(e.Now()) })
		}
	}

	// --- buses and memory ---
	s.MemBus = xbar.New(eng, "membus", xbar.Config{
		FrontendLatency: cfg.MemBusFrontend,
		ResponseLatency: cfg.MemBusResponse,
		PerByte:         cfg.MemBusPerByte,
	})
	s.IOBus = xbar.New(eng, "iobus", xbar.Config{
		FrontendLatency: cfg.IOBusLatency,
		ResponseLatency: cfg.IOBusLatency,
	})
	s.DRAM = memctrl.New(eng, "dram", mem.Range(DRAMBase, DRAMSize), cfg.DRAM)
	mem.Connect(s.MemBus.MasterPort("dram", mem.RangeList{s.DRAM.Range()}), s.DRAM.Port())

	if cfg.EnableMSI {
		s.MSI = devices.NewMSIController(eng, "msiframe", mem.Range(MSIFrameBase, MSIFrameSize))
		mem.Connect(s.MemBus.MasterPort("msiframe", mem.RangeList{s.MSI.Range()}), s.MSI.Port())
		// Doorbell writes from devices must bypass the IOCache.
		cfg.IOCache.Uncacheable = append(cfg.IOCache.Uncacheable, s.MSI.Range())
		s.Cfg.IOCache = cfg.IOCache
	}

	s.Bridge = bridge.New(eng, "iobridge", bridge.Config{
		Delay:     cfg.BridgeDelay,
		ReqDepth:  16,
		RespDepth: 16,
		Ranges:    mem.RangeList{mem.Range(ConfigBase, ConfigSize)},
	})
	mem.Connect(s.MemBus.MasterPort("iobridge", mem.RangeList{mem.Range(ConfigBase, ConfigSize)}),
		s.Bridge.SlavePort())
	mem.Connect(s.Bridge.MasterPort(), s.IOBus.SlavePort("iobridge"))

	s.PCIHost = pci.NewHost(eng, "pcihost", pci.HostConfig{
		ECAMWindow: mem.Range(ConfigBase, ConfigSize),
		Latency:    cfg.PCIHostLatency,
	})
	mem.Connect(s.IOBus.MasterPort("pcihost", mem.RangeList{s.PCIHost.Window()}), s.PCIHost.Port())

	// --- root complex ---
	rcCfg := pcie.RootComplexConfig{NumRootPorts: len(spec.RootPorts)}
	rcCfg.Latency = cfg.RootComplexLatency
	rcCfg.BufferSize = cfg.PortBufferSize
	rcCfg.CompletionTimeout = cfg.CompletionTimeout
	rcCfg.Credits = cfg.Credits
	rcCfg.EnableDPC = cfg.EnableDPC
	s.RC = pcie.NewRootComplex(eng, "rc", s.PCIHost, rcCfg)
	// CPU-visible PCI windows route from the MemBus into the RC.
	mem.Connect(s.MemBus.MasterPort("rc", mem.RangeList{
		mem.Range(MMIOBase, MMIOSize),
		mem.Range(IOBase, IOSize),
	}), s.RC.UpstreamSlave())

	// DMA drains through the IOCache onto the MemBus (§V-A).
	s.IOCache = cache.New(eng, "iocache", cfg.IOCache)
	mem.Connect(s.RC.UpstreamMaster(), s.IOCache.CPUSidePort())
	mem.Connect(s.IOCache.MemSidePort(), s.MemBus.SlavePort("iocache"))

	// --- fabric: DFS over the spec ---
	// Each AER capability is registered in the stats namespace under
	// the same names the hardwired platform used: "rc.rootport<i>",
	// "<switch>.upstream", "<switch>.downstream<j>", "<endpoint>".
	var aerList []struct {
		name string
		a    *pci.AER
	}
	addAER := func(name string, a *pci.AER) {
		aerList = append(aerList, struct {
			name string
			a    *pci.AER
		}{name, a})
	}
	for i, n := range spec.RootPorts {
		if n == nil {
			continue
		}
		if err := s.buildNode(eng, s.RC.RootPort(i), fmt.Sprintf("rc.rootport%d", i),
			pci.NewBDF(0, uint8(i), 0), n, cfg, plan, addAER); err != nil {
			return nil, err
		}
	}

	// Observability: per-function AER totals plus platform-wide
	// aggregates.
	r := eng.Stats()
	all := make([]*pci.AER, 0, len(aerList))
	for _, e := range aerList {
		a := e.a
		all = append(all, a)
		r.CounterFunc("aer."+e.name+".correctable",
			func() uint64 { c, _ := a.Totals(); return c })
		r.CounterFunc("aer."+e.name+".uncorrectable",
			func() uint64 { _, u := a.Totals(); return u })
	}
	r.CounterFunc("aer.correctable", func() uint64 {
		var t uint64
		for _, a := range all {
			c, _ := a.Totals()
			t += c
		}
		return t
	})
	r.CounterFunc("aer.uncorrectable", func() uint64 {
		var t uint64
		for _, a := range all {
			_, u := a.Totals()
			t += u
		}
		return t
	})

	// Packet pool accounting. Serial reads the single pool directly;
	// parallel folds the per-domain allocation journals into the
	// counters one shared pool would have reported.
	if part.domains > 1 {
		poolStats := func() mem.PoolStats { return mem.FoldPoolJournals(s.pools...) }
		r.CounterFunc("mem.pool.allocs", func() uint64 { return poolStats().Allocs })
		r.CounterFunc("mem.pool.reuses", func() uint64 { return poolStats().Reuses })
		r.CounterFunc("mem.pool.releases", func() uint64 { return poolStats().Releases })
		r.CounterFunc("mem.pool.live", func() uint64 { return poolStats().Live() })
	} else {
		r.CounterFunc("mem.pool.allocs", func() uint64 { return s.PktPool.Stats().Allocs })
		r.CounterFunc("mem.pool.reuses", func() uint64 { return s.PktPool.Stats().Reuses })
		r.CounterFunc("mem.pool.releases", func() uint64 { return s.PktPool.Stats().Releases })
		r.CounterFunc("mem.pool.live", func() uint64 { return s.PktPool.Stats().Live() })
	}
	r.CounterFunc("sim.events_recycled", func() uint64 {
		var t uint64
		for _, e := range s.engines {
			t += e.Recycled()
		}
		return t
	})

	// --- kernel ---
	s.CPU = kernel.NewCPU(eng, "cpu0")
	s.CPU.UsePacketPool(s.PktPool)
	s.CPU.IRQLatency = cfg.IRQLatency
	mem.Connect(s.CPU.Port(), s.MemBus.SlavePort("cpu0"))
	s.Kernel = kernel.New(s.CPU)
	s.Kernel.Enum.ECAMBase = ConfigBase
	s.Kernel.Enum.MemWindow = mem.Range(MMIOBase, MMIOSize)
	s.Kernel.Enum.IOWindow = mem.Range(IOBase, IOSize)
	if cfg.EnableMSI {
		s.Kernel.MSITarget = MSIFrameBase
		s.MSI.OnMSI = func(vector uint32) { s.CPU.TriggerIRQ(int(vector)) }
	}
	s.DiskDriver = &kernel.DiskDriver{CmdTimeout: cfg.DiskCmdTimeout}
	s.NICDriver = &kernel.E1000eDriver{}
	s.Kernel.RegisterDriver(s.DiskDriver)
	s.Kernel.RegisterDriver(s.NICDriver)

	// DPC: route every port's containment trigger into the kernel's
	// recovery service as the DPC interrupt.
	if cfg.EnableDPC {
		s.Recovery = kernel.NewRecoveryManager(s.Kernel, cfg.Recovery)
		for _, dp := range s.dpcPorts {
			dp := dp
			if d := dp.port.DPC(); d != nil {
				d.OnTrigger = func(reason uint16) { s.Recovery.Raise(dp.bdf, reason) }
			}
		}
	}
	return s, nil
}

// engineFor returns the engine of the timing domain n was assigned
// to — the root engine for every node in a serial build.
func (s *System) engineFor(n *Node) *sim.Engine {
	if s.part == nil || s.part.domOf == nil {
		return s.Eng
	}
	return s.engines[s.part.domOf[n]]
}

// poolFor returns the packet pool of n's timing domain.
func (s *System) poolFor(n *Node) *mem.Pool {
	if s.part == nil || s.part.domOf == nil {
		return s.PktPool
	}
	return s.pools[s.part.domOf[n]]
}

// raiseIRQ raises a legacy interrupt line from a device running on
// devEng. In the device's own domain that is the CPU's ordinary
// TriggerIRQ; from another domain the dispatch is ferried to the
// CPU's domain pre-delayed by IRQLatency, so the handler fires at
// exactly the tick serial dispatch would have, with the same
// scheduling key.
func (s *System) raiseIRQ(devEng *sim.Engine, line int) {
	if devEng == s.Eng {
		s.CPU.TriggerIRQ(line)
		return
	}
	trig := devEng.Now()
	// kernel.IRQOrd is the dispatch's static tie-break, the same key
	// the serial TriggerIRQ path stamps, so simultaneous interrupts
	// from symmetric devices order identically in both configurations.
	devEng.CrossSchedule(s.Eng, s.CPU.IRQEventName(line), trig+s.Cfg.IRQLatency,
		sim.PriorityDefault, kernel.IRQOrd(line), func() { s.CPU.DispatchIRQ(line, trig) })
}

// buildNode instantiates the link from port down to node n and the
// subtree below it. port is the already-created fabric port (root port
// or switch downstream port), portAER its stats name, and portBDF the
// address its virtual bridge occupies (the recovery driver services
// containment by that address). portEng is the engine of the domain
// the port above runs in; when n's domain differs, the connecting
// link is built split across the two engines.
func (s *System) buildNode(portEng *sim.Engine, port *pcie.Port, portAERName string, portBDF pci.BDF,
	n *Node, cfg Config, plan *Plan, addAER func(string, *pci.AER)) error {
	lcfg := pcie.LinkConfig{
		Gen:              n.Link.Gen,
		Width:            n.Link.Width,
		PropDelay:        cfg.PropDelay,
		ReplayBufferSize: cfg.ReplayBufferSize,
		MaxPayload:       cfg.IOCache.LineSize,
		Seed:             cfg.Seed,
		Fault:            n.Link.Fault,
		Credits:          cfg.Credits,
		Degrade:          cfg.Degrade,
	}
	if n.Link.Degrade != nil {
		lcfg.Degrade = n.Link.Degrade
	}
	if lcfg.Gen == 0 {
		lcfg.Gen = cfg.Gen
	}
	if lcfg.Fault == nil {
		lcfg.Fault = cfg.Faults[n.Link.Name]
	}
	if lcfg.Fault == nil {
		// The spec-level stochastic-corruption knob, expressed as the
		// equivalent fault plan (the LinkConfig.ErrorRate alias is gone).
		lcfg.Fault = fault.CorruptionPlan(n.Link.ErrorRate)
	}
	if n.Link.Credits != nil {
		lcfg.Credits = *n.Link.Credits
	}
	devEng := s.engineFor(n)
	// len(s.Links)+1 is this link's creation index (1-based so no
	// builder link shares ord 0 with un-keyed events) — the static
	// delivery tie-break, identical across serial and parallel builds
	// (see pcie.NewLinkSplit). NewLinkSplit degenerates to an ordinary
	// single-engine link when both ends share a domain.
	link := pcie.NewLinkSplit(portEng, devEng, n.Link.Name, uint64(len(s.Links))+1, lcfg)
	port.ConnectLink(link)
	if n.Link.Credits != nil {
		// ConnectLink advertised the platform-wide credits capped at
		// the port's queue depth; refine with the per-link override.
		link.Up().AdvertiseCredits(pcie.MinCredits(*n.Link.Credits,
			pcie.CreditsForQueueDepth(cfg.PortBufferSize)))
	}
	li := &LinkInst{Name: n.Link.Name, Node: n, Link: link}
	s.Links = append(s.Links, li)
	s.linkByName[li.Name] = li
	if cfg.EnableDPC {
		s.dpcPorts = append(s.dpcPorts, dpcPort{port: port, bdf: portBDF})
	}
	// Surprise hot-plug: removing this link takes the whole sub-tree
	// below it off the bus — its config spaces stop decoding (all-ones
	// reads, exactly like an empty slot) until re-insertion puts them
	// back at power-on defaults. The kernel's recovery driver then
	// replays the boot-time configuration.
	subtree := subtreeBDFs(n, plan)
	link.SetNotify(func(notice pcie.LinkNotice) {
		switch notice {
		case pcie.NoticeRemoved:
			for _, bdf := range subtree {
				if acc, ok := s.PCIHost.Lookup(bdf); ok {
					s.hotplugSaved[bdf] = acc
				}
				s.PCIHost.Unregister(bdf)
			}
		case pcie.NoticeReinserted:
			for _, bdf := range subtree {
				acc, ok := s.hotplugSaved[bdf]
				if !ok {
					continue
				}
				powerOnReset(acc)
				s.PCIHost.Register(bdf, acc)
			}
		}
	})

	// AER: each link interface reports into the function at its end —
	// the fabric port above, the switch/endpoint below.
	link.Up().SetAER(port.AER())
	addAER(portAERName, port.AER())

	switch n.Kind {
	case KindSwitch:
		b := plan.SwitchBus[n]
		swCfg := pcie.SwitchConfig{
			NumDownstreamPorts: len(n.Ports),
			UpstreamBus:        b.Upstream,
			InternalBus:        b.Internal,
			NoP2P:              cfg.NoP2P,
		}
		swCfg.Latency = cfg.SwitchLatency
		swCfg.BufferSize = cfg.PortBufferSize
		swCfg.Credits = cfg.Credits
		swCfg.EnableDPC = cfg.EnableDPC
		sw := pcie.NewSwitch(devEng, n.Name, s.PCIHost, swCfg)
		sw.ConnectUpstreamLink(link)
		if n.Link.Credits != nil {
			link.Down().AdvertiseCredits(pcie.MinCredits(*n.Link.Credits,
				pcie.CreditsForQueueDepth(cfg.PortBufferSize)))
		}
		link.Down().SetAER(sw.UpstreamPort().AER())
		addAER(n.Name+".upstream", sw.UpstreamPort().AER())
		s.Switches = append(s.Switches, &SwitchInst{Name: n.Name, Node: n, Sw: sw})
		for j, child := range n.Ports {
			if child == nil {
				continue
			}
			name := fmt.Sprintf("%s.downstream%d", n.Name, j)
			if err := s.buildNode(devEng, sw.DownstreamPort(j), name,
				pci.NewBDF(b.Internal, uint8(j), 0), child, cfg, plan, addAER); err != nil {
				return err
			}
		}

	case KindDisk:
		dcfg := cfg.Disk
		if cfg.DiskDMATimeout != 0 {
			dcfg.DMATimeout = cfg.DiskDMATimeout
		}
		d := devices.NewDisk(devEng, n.Name, dcfg)
		mem.Connect(link.Down().MasterPort(), d.PIOPort())
		mem.Connect(d.DMAPort(), link.Down().SlavePort())
		bdf := plan.EndpointBDF[n]
		s.PCIHost.Register(bdf, d.ConfigSpace())
		link.Down().SetAER(d.AER())
		addAER(n.Name, d.AER())
		d.UsePacketPool(s.poolFor(n))
		// Legacy INTx delivery; the IRQ line is known only after
		// enumeration, so resolve the handle by BDF at interrupt time.
		d.OnInterrupt = func() {
			if h := s.DiskDriver.HandleFor(bdf); h != nil {
				s.raiseIRQ(devEng, h.IRQ)
			}
		}
		s.Disks = append(s.Disks, &DiskInst{Name: n.Name, BDF: bdf, Dev: d})

	case KindNIC:
		ncfg := cfg.NIC
		ncfg.PIOLatency = cfg.NICPIOLatency
		ncfg.MSICapable = cfg.EnableMSI
		d := devices.NewNIC(devEng, n.Name, ncfg)
		mem.Connect(link.Down().MasterPort(), d.PIOPort())
		mem.Connect(d.DMAPort(), link.Down().SlavePort())
		bdf := plan.EndpointBDF[n]
		s.PCIHost.Register(bdf, d.ConfigSpace())
		link.Down().SetAER(d.AER())
		addAER(n.Name, d.AER())
		d.UsePacketPool(s.poolFor(n))
		d.OnInterrupt = func() {
			if h := s.NICDriver.HandleFor(bdf); h != nil {
				s.raiseIRQ(devEng, h.IRQ)
			}
		}
		s.NICs = append(s.NICs, &NICInst{Name: n.Name, BDF: bdf, Dev: d})

	case KindTestDev:
		d := devices.NewTestDev(devEng, n.Name, cfg.TestDev)
		mem.Connect(link.Down().MasterPort(), d.PIOPort())
		bdf := plan.EndpointBDF[n]
		s.PCIHost.Register(bdf, d.ConfigSpace())
		link.Down().SetAER(d.AER())
		addAER(n.Name, d.AER())
		s.TestDevs = append(s.TestDevs, &TestDevInst{Name: n.Name, BDF: bdf, Dev: d})

	default:
		return fmt.Errorf("topo: unknown node kind %q", n.Kind)
	}
	return nil
}

// subtreeBDFs lists every configuration-space address the sub-tree
// rooted at n occupies — the switch virtual bridges and the endpoint
// functions — in DFS order, from the pre-computed bus plan.
func subtreeBDFs(n *Node, plan *Plan) []pci.BDF {
	var out []pci.BDF
	var rec func(n *Node)
	rec = func(n *Node) {
		if n == nil {
			return
		}
		if n.Kind == KindSwitch {
			b := plan.SwitchBus[n]
			out = append(out, pci.NewBDF(b.Upstream, 0, 0))
			for j, c := range n.Ports {
				out = append(out, pci.NewBDF(b.Internal, uint8(j), 0))
				rec(c)
			}
			return
		}
		out = append(out, plan.EndpointBDF[n])
	}
	rec(n)
	return out
}

// powerOnReset puts a re-inserted function's software-visible state
// back at power-on defaults: decoding disabled, BARs and interrupt
// line cleared, bridge bus numbers zeroed and windows closed. Writes
// go through ConfigWrite so write masks and model hooks apply, exactly
// as if the hardware had been reset. The kernel's recovery driver is
// what makes the device usable again — it replays the boot-time
// configuration after releasing containment.
func powerOnReset(acc pci.ConfigAccessor) {
	acc.ConfigWrite(pci.RegCommand, 2, 0)
	hdr := uint8(acc.ConfigRead(pci.RegHeaderType, 1))
	if hdr&pci.HeaderTypeTypeMask == pci.HeaderType1 {
		acc.ConfigWrite(pci.RegPrimaryBus, 1, 0)
		acc.ConfigWrite(pci.RegSecondaryBus, 1, 0)
		acc.ConfigWrite(pci.RegSubordinateBus, 1, 0)
		// Closed windows: base above limit, so nothing decodes.
		acc.ConfigWrite(pci.RegMemBase, 2, 0xfff0)
		acc.ConfigWrite(pci.RegMemLimit, 2, 0)
		acc.ConfigWrite(pci.RegIOBase, 1, 0xf0)
		acc.ConfigWrite(pci.RegIOLimit, 1, 0)
		acc.ConfigWrite(pci.RegIOBaseUpper, 2, 0xffff)
		acc.ConfigWrite(pci.RegIOLimitUpper, 2, 0)
		return
	}
	for i := 0; i < 6; i++ {
		acc.ConfigWrite(pci.RegBAR0+4*i, 4, 0)
	}
	acc.ConfigWrite(pci.RegIntLine, 1, 0)
}

// LinkByName returns the named link instance, or nil.
func (s *System) LinkByName(name string) *LinkInst {
	return s.linkByName[name]
}

// DiskByName returns the named disk endpoint, or nil.
func (s *System) DiskByName(name string) *DiskInst {
	for _, d := range s.Disks {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// NICByName returns the named NIC endpoint, or nil.
func (s *System) NICByName(name string) *NICInst {
	for _, n := range s.NICs {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// EndpointNames lists every disk and NIC endpoint name in topology
// (bus) order — the names a workload trace may reference.
func (s *System) EndpointNames() []string {
	out := make([]string, 0, len(s.Disks)+len(s.NICs))
	for _, d := range s.Disks {
		out = append(out, d.Name)
	}
	for _, n := range s.NICs {
		out = append(out, n.Name)
	}
	return out
}

// Turnarounds sums switch-level peer-to-peer turnarounds across the
// fabric.
func (s *System) Turnarounds() uint64 {
	var total uint64
	for _, sw := range s.Switches {
		total += sw.Sw.P2PTurnarounds()
	}
	return total
}

// Reflections counts requests the root complex hairpinned back down the
// port they arrived on — the peer-to-peer reflection path.
func (s *System) Reflections() uint64 { return s.RC.Reflections() }

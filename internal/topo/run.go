package topo

import (
	"fmt"

	"pciesim/internal/devices"
	"pciesim/internal/kernel"
	"pciesim/internal/pcie"
	"pciesim/internal/sim"
)

// runTask drives the engine until the spawned task completes (or the
// queue drains with it wedged), without fast-forwarding through fault
// windows armed past the task's completion.
func (s *System) runTask(t *kernel.Task) {
	s.Eng.RunWhile(func() bool { return !t.Done() })
}

// Boot runs enumeration and driver probes to completion and checks
// that every disk and NIC endpoint the spec declared was bound by its
// driver. Test devices are driverless by design and are only checked
// for discovery.
func (s *System) Boot() (*kernel.Topology, error) {
	if s.booted {
		return s.Kernel.Topo, nil
	}
	var bootErr error
	t := s.CPU.Spawn("boot", 0, func(t *kernel.Task) {
		bootErr = s.Kernel.Boot(t)
		if bootErr == nil && s.Recovery != nil {
			s.Recovery.Arm(t)
		}
	})
	s.runTask(t)
	if bootErr != nil {
		return nil, bootErr
	}
	if !t.Done() {
		return nil, fmt.Errorf("topo: boot task did not complete")
	}
	for _, d := range s.Disks {
		if s.DiskDriver.HandleFor(d.BDF) == nil {
			return nil, fmt.Errorf("topo: disk %q at %v did not bind", d.Name, d.BDF)
		}
	}
	for _, n := range s.NICs {
		if s.NICDriver.HandleFor(n.BDF) == nil {
			return nil, fmt.Errorf("topo: nic %q at %v did not bind", n.Name, n.BDF)
		}
	}
	for _, td := range s.TestDevs {
		found := false
		for _, f := range s.Kernel.Topo.All {
			if f.BDF == td.BDF {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("topo: testdev %q at %v was not enumerated", td.Name, td.BDF)
		}
	}
	s.booted = true
	return s.Kernel.Topo, nil
}

// RunDD boots if necessary, then runs one dd block-read of blockBytes
// against the first disk.
func (s *System) RunDD(blockBytes uint64) (kernel.DDResult, error) {
	return s.runDD(blockBytes, false)
}

// RunDDWrite is RunDD with the direction flipped (`dd of=/dev/disk`):
// the disk DMA-reads the user buffer, so the payload travels in
// downstream read completions and is throttled by Cpl credits rather
// than Posted ones.
func (s *System) RunDDWrite(blockBytes uint64) (kernel.DDResult, error) {
	return s.runDD(blockBytes, true)
}

func (s *System) runDD(blockBytes uint64, write bool) (kernel.DDResult, error) {
	if _, err := s.Boot(); err != nil {
		return kernel.DDResult{}, err
	}
	if len(s.Disks) == 0 {
		return kernel.DDResult{}, fmt.Errorf("topo: no disk in topology %q", s.Spec.Name)
	}
	cfg := s.Cfg.DD
	cfg.BlockBytes = blockBytes
	cfg.Write = write
	h := s.DiskDriver.HandleFor(s.Disks[0].BDF)
	var res kernel.DDResult
	var runErr error
	task := s.CPU.Spawn("dd", 0, func(t *kernel.Task) {
		res, runErr = kernel.RunDD(t, h, cfg)
	})
	s.runTask(task)
	if runErr != nil {
		return kernel.DDResult{}, runErr
	}
	if !task.Done() {
		return kernel.DDResult{}, fmt.Errorf("topo: dd task wedged (lost wakeup?)")
	}
	return res, nil
}

// DDAllResult reports a concurrent dd run across every disk.
type DDAllResult struct {
	// PerDisk holds each disk's result, in topology (bus) order.
	PerDisk []kernel.DDResult
	// SectorsAtFirstExit is each disk's completed-sector count sampled
	// at the instant the first dd task finished — the window where all
	// disks were still contending, which is what arbitration fairness
	// is measured on.
	SectorsAtFirstExit []uint64
	// Elapsed is the time from launch until the last task finished.
	Elapsed sim.Tick
}

// AggregateThroughputGbps sums the per-disk payload over the full run.
func (r DDAllResult) AggregateThroughputGbps() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	var bytes uint64
	for _, d := range r.PerDisk {
		bytes += d.Bytes
	}
	return float64(bytes) * 8 / r.Elapsed.Seconds() / 1e9
}

// FairnessSpread is max/min of SectorsAtFirstExit — 1.0 is perfectly
// fair arbitration for the shared uplink.
func (r DDAllResult) FairnessSpread() float64 {
	if len(r.SectorsAtFirstExit) == 0 {
		return 0
	}
	minS, maxS := r.SectorsAtFirstExit[0], r.SectorsAtFirstExit[0]
	for _, v := range r.SectorsAtFirstExit[1:] {
		if v < minS {
			minS = v
		}
		if v > maxS {
			maxS = v
		}
	}
	if minS == 0 {
		return float64(maxS)
	}
	return float64(maxS) / float64(minS)
}

// RunDDAll boots if necessary, then runs one dd block-read of
// blockBytes on every disk concurrently, each into its own DRAM buffer.
// The per-disk sector counts are snapshotted when the first task exits.
func (s *System) RunDDAll(blockBytes uint64) (DDAllResult, error) {
	if _, err := s.Boot(); err != nil {
		return DDAllResult{}, err
	}
	n := len(s.Disks)
	if n == 0 {
		return DDAllResult{}, fmt.Errorf("topo: no disk in topology %q", s.Spec.Name)
	}
	start := s.Eng.Now()
	results := make([]kernel.DDResult, n)
	errs := make([]error, n)
	tasks := make([]*kernel.Task, n)
	for i := range s.Disks {
		i := i
		h := s.DiskDriver.HandleFor(s.Disks[i].BDF)
		cfg := s.Cfg.DD
		cfg.BlockBytes = blockBytes
		// Disjoint 64 MiB buffer windows, wrapping inside DRAM.
		cfg.BufAddr = s.Cfg.DD.BufAddr + uint64(i%24)*(64<<20)
		tasks[i] = s.CPU.Spawn(fmt.Sprintf("dd.%s", s.Disks[i].Name), 0, func(t *kernel.Task) {
			results[i], errs[i] = kernel.RunDD(t, h, cfg)
		})
	}
	anyDone := func() bool {
		for _, t := range tasks {
			if t.Done() {
				return true
			}
		}
		return false
	}
	s.Eng.RunWhile(func() bool { return !anyDone() })
	snap := make([]uint64, n)
	for i, d := range s.Disks {
		_, sectors := d.Dev.Stats()
		snap[i] = sectors
	}
	allDone := func() bool {
		for _, t := range tasks {
			if !t.Done() {
				return false
			}
		}
		return true
	}
	s.Eng.RunWhile(func() bool { return !allDone() })
	for i, t := range tasks {
		if !t.Done() {
			return DDAllResult{}, fmt.Errorf("topo: dd task %d wedged", i)
		}
		if errs[i] != nil {
			return DDAllResult{}, fmt.Errorf("topo: dd on %s: %w", s.Disks[i].Name, errs[i])
		}
	}
	return DDAllResult{
		PerDisk:            results,
		SectorsAtFirstExit: snap,
		Elapsed:            s.Eng.Now() - start,
	}, nil
}

// RunP2P boots if necessary, then drives peer-to-peer DMA from the
// first disk into the scratch half of a peer BAR — the first NIC's
// BAR0 if the topology has one, else the first test device's. Whether
// the traffic turns at a shared switch or reflects off the root
// complex depends on the topology and Config.NoP2P; Turnarounds and
// Reflections report which path it took.
func (s *System) RunP2P(commands int, sectorsPerCmd uint32) (kernel.P2PResult, error) {
	if _, err := s.Boot(); err != nil {
		return kernel.P2PResult{}, err
	}
	if len(s.Disks) == 0 {
		return kernel.P2PResult{}, fmt.Errorf("topo: no disk in topology %q", s.Spec.Name)
	}
	if sectorsPerCmd == 0 {
		sectorsPerCmd = 1
	}
	h := s.DiskDriver.HandleFor(s.Disks[0].BDF)
	var barAddr, barSize uint64
	switch {
	case len(s.NICs) > 0:
		nh := s.NICDriver.HandleFor(s.NICs[0].BDF)
		barAddr, barSize = nh.BAR0, nh.Dev.BARs[0].Size
	case len(s.TestDevs) > 0:
		td := s.TestDevs[0]
		barAddr, barSize = td.Dev.BAR0().Addr(), s.Cfg.TestDev.BARSize
	default:
		return kernel.P2PResult{}, fmt.Errorf("topo: no peer endpoint (nic or testdev) in topology %q", s.Spec.Name)
	}
	// Target the upper half of the BAR: register-free scratch space.
	target := barAddr + barSize/2
	if uint64(sectorsPerCmd)*uint64(h.SectorSize) > barSize-barSize/2 {
		return kernel.P2PResult{}, fmt.Errorf("topo: %d sectors/cmd does not fit in the peer BAR's %d-byte scratch half",
			sectorsPerCmd, barSize-barSize/2)
	}
	cfg := kernel.P2PConfig{
		Commands:           commands,
		SectorsPerCmd:      sectorsPerCmd,
		TargetAddr:         target,
		PerCommandOverhead: s.Cfg.DD.PerRequestOverhead,
	}
	var res kernel.P2PResult
	var runErr error
	task := s.CPU.Spawn("p2p", 0, func(t *kernel.Task) {
		res, runErr = kernel.RunP2P(t, h, cfg)
	})
	s.runTask(task)
	if runErr != nil {
		return kernel.P2PResult{}, runErr
	}
	if !task.Done() {
		return kernel.P2PResult{}, fmt.Errorf("topo: p2p task wedged")
	}
	return res, nil
}

// MMIOProbe boots if necessary, then measures n 4-byte reads of the
// first NIC's status register.
func (s *System) MMIOProbe(n int) (kernel.MMIOProbeResult, error) {
	if _, err := s.Boot(); err != nil {
		return kernel.MMIOProbeResult{}, err
	}
	if s.NICDriver.Handle == nil {
		return kernel.MMIOProbeResult{}, fmt.Errorf("topo: no NIC in topology %q", s.Spec.Name)
	}
	var res kernel.MMIOProbeResult
	task := s.CPU.Spawn("mmioprobe", 0, func(t *kernel.Task) {
		res = kernel.MMIOProbe(t, s.NICDriver.Handle.BAR0+devices.NICRegStatus, n)
	})
	s.runTask(task)
	if !task.Done() {
		return kernel.MMIOProbeResult{}, fmt.Errorf("topo: probe task wedged")
	}
	return res, nil
}

// RunNICTx boots if necessary, then transmits frames through the first
// NIC's descriptor ring.
func (s *System) RunNICTx(frames, frameLen int) (kernel.NICTxResult, error) {
	if _, err := s.Boot(); err != nil {
		return kernel.NICTxResult{}, err
	}
	if s.NICDriver.Handle == nil {
		return kernel.NICTxResult{}, fmt.Errorf("topo: no NIC in topology %q", s.Spec.Name)
	}
	cfg := kernel.NICTxConfig{
		RingAddr:         DRAMBase + (160 << 20),
		RingEntries:      64,
		BufAddr:          DRAMBase + (161 << 20),
		FrameLen:         frameLen,
		Frames:           frames,
		PerFrameOverhead: 500 * sim.Nanosecond,
	}
	var res kernel.NICTxResult
	var runErr error
	task := s.CPU.Spawn("nictx", 0, func(t *kernel.Task) {
		res, runErr = s.NICDriver.RunNICTx(t, cfg)
	})
	s.runTask(task)
	if runErr != nil {
		return kernel.NICTxResult{}, runErr
	}
	if !task.Done() {
		return kernel.NICTxResult{}, fmt.Errorf("topo: nictx task wedged")
	}
	return res, nil
}

// ScanAER runs the kernel's AER service handler in task context.
func (s *System) ScanAER() ([]kernel.AERRecord, error) {
	if _, err := s.Boot(); err != nil {
		return nil, err
	}
	var recs []kernel.AERRecord
	task := s.CPU.Spawn("aerscan", 0, func(t *kernel.Task) {
		recs = s.Kernel.HandleAER(t)
	})
	s.runTask(task)
	if !task.Done() {
		return nil, fmt.Errorf("topo: AER scan task wedged")
	}
	return recs, nil
}

// LinkErrorSummary aggregates the error-containment counters of one
// link, combining both directions.
type LinkErrorSummary struct {
	Name     string
	Up, Down pcie.LinkStats
	Retrains uint64
	Dead     bool
}

// LinkErrors reports per-link error and recovery counters for every
// fabric link, in topology (bus) order.
func (s *System) LinkErrors() []LinkErrorSummary {
	out := make([]LinkErrorSummary, 0, len(s.Links))
	for _, li := range s.Links {
		out = append(out, LinkErrorSummary{
			Name:     li.Name,
			Up:       li.Link.Up().Stats(),
			Down:     li.Link.Down().Stats(),
			Retrains: li.Link.Retrains(),
			Dead:     li.Link.Dead(),
		})
	}
	return out
}

package topo

import (
	"fmt"
	"sort"

	"pciesim/internal/pcie"
	"pciesim/internal/sim"
)

// Timing-domain partitioning for the parallel engine.
//
// The fabric is cut at link boundaries: each cut link's two interfaces
// run on different engines, and every wire crossing carries at least
// one DLLP serialization plus the link's propagation delay — the
// conservative lookahead the coordinator's quantum is derived from.
// Domain 0 is the root domain (CPU, kernel, root complex, and every
// pinned subtree); domains 1..D-1 are the cut-off subtrees.
//
// Pinning. Anything that mutates state across a link from timer events
// or reaches the CPU synchronously must stay in the root domain:
//
//   - links with a fault plan (spec, Config.Faults, or ErrorRate>0) or
//     a per-link degradation policy — the link-down/retrain/hotplug
//     machinery mutates both interfaces from one timer;
//   - NIC endpoints when MSI is enabled — the doorbell is a posted
//     write straight onto the root's memory bus;
//   - disk endpoints with posted DMA writes — completion is reported
//     device-side without a round trip, so the write must land on the
//     root's substrate in the same domain.
//
// Platform-wide Degrade or DPC, and a zero IRQLatency, disable
// partitioning entirely (the build falls back to the serial engine).
type partition struct {
	// domains is the engine count D; 1 means serial.
	domains int
	// domOf maps every spec node to its domain; missing means 0.
	domOf map[*Node]int
	// quantum is the conservative synchronization window: the minimum
	// over cut links of DLLP wire time + propagation delay, floored by
	// the IRQ dispatch latency (the shortest device→CPU crossing).
	quantum sim.Tick
}

// pinnedNode reports whether n itself must run in the root domain.
func pinnedNode(n *Node, cfg Config) bool {
	switch n.Kind {
	case KindNIC:
		if cfg.EnableMSI {
			return true
		}
	case KindDisk:
		if cfg.Disk.PostedWrites {
			return true
		}
	}
	l := n.Link
	if l.Fault != nil || l.Degrade != nil || l.ErrorRate > 0 {
		return true
	}
	return cfg.Faults[l.Name] != nil
}

// subtreePinned reports whether any node under (and including) n is
// pinned — such a subtree cannot be cut off as a unit.
func subtreePinned(n *Node, cfg Config) bool {
	if n == nil {
		return false
	}
	if pinnedNode(n, cfg) {
		return true
	}
	for _, c := range n.Ports {
		if subtreePinned(c, cfg) {
			return true
		}
	}
	return false
}

// partitionSpec assigns every node a timing domain. cfg.Domains <= 1
// always yields the serial partition; configurations the parallel
// engine cannot express (platform-wide degradation, DPC, zero IRQ
// latency) silently fall back to serial so every spec keeps running.
// Explicit :d annotations are validated (and rejected on pinned
// subtrees); with none present, the partitioner cuts maximal pin-free
// subtrees and balances them over the worker domains.
func partitionSpec(spec *Spec, cfg Config) (*partition, error) {
	serial := &partition{domains: 1}
	n := cfg.Domains
	if n <= 1 {
		return serial, nil
	}
	if cfg.Degrade != nil || cfg.EnableDPC || cfg.IRQLatency == 0 {
		return serial, nil
	}

	explicit := false
	spec.walk(func(nd *Node) {
		if nd.Dom != 0 {
			explicit = true
		}
	})

	domOf := map[*Node]int{}
	domains := 1
	if explicit {
		var err error
		var rec func(nd *Node, cur int)
		rec = func(nd *Node, cur int) {
			if nd == nil || err != nil {
				return
			}
			if nd.Dom != 0 {
				if nd.Dom >= n {
					err = fmt.Errorf("topo: node %q assigned domain %d, but -par %d only has domains 0..%d",
						nd.Name, nd.Dom, n, n-1)
					return
				}
				cur = nd.Dom
			}
			if cur != 0 && pinnedNode(nd, cfg) {
				err = fmt.Errorf("topo: node %q cannot run in domain %d: faulted, degradable, or posted-path nodes must stay in the root domain",
					nd.Name, cur)
				return
			}
			domOf[nd] = cur
			if cur+1 > domains {
				domains = cur + 1
			}
			for _, c := range nd.Ports {
				rec(c, cur)
			}
		}
		for _, rp := range spec.RootPorts {
			rec(rp, 0)
		}
		if err != nil {
			return nil, err
		}
	} else {
		// Auto: collect maximal pin-free subtrees as balance units.
		var units []*Node
		var collect func(nd *Node)
		collect = func(nd *Node) {
			if nd == nil {
				return
			}
			if !subtreePinned(nd, cfg) {
				units = append(units, nd)
				return
			}
			// The pinned node stays in the root domain; its pin-free
			// child subtrees can still be cut off below it.
			for _, c := range nd.Ports {
				collect(c)
			}
		}
		for _, rp := range spec.RootPorts {
			collect(rp)
		}

		// Refinement: with fewer units than worker domains, split the
		// largest splittable unit — the switch at its root joins the
		// parent's (root) domain and each child subtree becomes a unit
		// of its own. fanout8 at -par 4 goes from one 8-disk unit to
		// eight single-disk units this way.
		bins := n - 1
		for len(units) < bins {
			best := -1
			for i, u := range units {
				if u.Kind != KindSwitch {
					continue
				}
				kids := 0
				for _, c := range u.Ports {
					if c != nil {
						kids++
					}
				}
				if kids < 2 {
					continue
				}
				if best == -1 || countSubtree(u) > countSubtree(units[best]) {
					best = i
				}
			}
			if best == -1 {
				break
			}
			u := units[best]
			split := make([]*Node, 0, len(units)+len(u.Ports)-1)
			split = append(split, units[:best]...)
			for _, c := range u.Ports {
				if c != nil {
					split = append(split, c)
				}
			}
			split = append(split, units[best+1:]...)
			units = split
		}
		if len(units) == 0 {
			return serial, nil
		}

		// LPT: heaviest unit first into the least-loaded worker domain.
		// Ties keep DFS order (units) and the lowest domain index, so
		// the assignment is deterministic.
		k := bins
		if len(units) < k {
			k = len(units)
		}
		order := make([]int, len(units))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return countSubtree(units[order[a]]) > countSubtree(units[order[b]])
		})
		load := make([]int, k)
		assign := make(map[*Node]int, len(units))
		for _, ui := range order {
			bin := 0
			for b := 1; b < k; b++ {
				if load[b] < load[bin] {
					bin = b
				}
			}
			load[bin] += countSubtree(units[ui])
			assign[units[ui]] = bin + 1
		}
		var mark func(nd *Node, d int)
		mark = func(nd *Node, d int) {
			if nd == nil {
				return
			}
			domOf[nd] = d
			for _, c := range nd.Ports {
				mark(c, d)
			}
		}
		for u, d := range assign {
			mark(u, d)
		}
		domains = k + 1
	}
	if domains <= 1 {
		return serial, nil
	}

	// Quantum: the smallest latency any event can cross a domain
	// boundary with. Over the cut links that is one DLLP's wire time
	// (the shortest packet) plus propagation; the device→CPU interrupt
	// path crosses in exactly IRQLatency.
	dllp := pcie.DefaultOverheads().DLLPWireBytes()
	quantum := cfg.IRQLatency
	var cut func(nd *Node, parentDom int)
	cut = func(nd *Node, parentDom int) {
		if nd == nil {
			return
		}
		d := domOf[nd]
		if d != parentDom {
			gen := nd.Link.Gen
			if gen == 0 {
				gen = cfg.Gen
			}
			if gen == 0 {
				gen = pcie.Gen2 // mirror LinkConfig.applyDefaults
			}
			if lat := pcie.WireTime(gen, nd.Link.Width, dllp) + cfg.PropDelay; lat < quantum {
				quantum = lat
			}
		}
		for _, c := range nd.Ports {
			cut(c, d)
		}
	}
	for _, rp := range spec.RootPorts {
		cut(rp, 0)
	}
	if quantum < 1 {
		quantum = 1
	}
	return &partition{domains: domains, domOf: domOf, quantum: quantum}, nil
}

package topo

import (
	"fmt"
	"io"

	"pciesim/internal/pci"
)

// DumpEnumeration writes an lspci-style snapshot of the enumerated
// topology: every function in DFS order with its IDs, bridge bus
// numbers and programmed windows, assigned BARs, and routed interrupt
// line. The output is deterministic, which is what the per-scenario
// golden conformance files in testdata/golden/topo lock down.
func (s *System) DumpEnumeration(w io.Writer) error {
	if _, err := s.Boot(); err != nil {
		return err
	}
	tp := s.Kernel.Topo
	name := s.Spec.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(w, "topology %s: %d buses, %d functions\n", name, tp.Buses, len(tp.All))
	for _, d := range tp.All {
		fmt.Fprintf(w, "%v [%04x:%04x] class=%06x", d.BDF, d.VendorID, d.DeviceID, d.ClassCode)
		if d.IsBridge {
			fmt.Fprintf(w, " bridge secondary=%02x subordinate=%02x", d.Secondary, d.Subordinate)
		} else {
			fmt.Fprintf(w, " irq=%d", d.IRQ)
		}
		fmt.Fprintln(w)
		for _, bar := range d.BARs {
			space := "mem"
			if bar.IsIO {
				space = "io"
			}
			fmt.Fprintf(w, "\tbar%d: %s %#010x size=%#x\n", bar.Index, space, bar.Addr, bar.Size)
		}
		if d.IsBridge {
			if cs, ok := s.lookupSpace(d.BDF); ok {
				mb, ml := pci.BridgeMemWindow(cs)
				if pci.WindowEnabled(mb, ml) {
					fmt.Fprintf(w, "\tmem window [%#010x, %#010x]\n", mb, ml)
				} else {
					fmt.Fprintf(w, "\tmem window closed\n")
				}
				iob, iol := pci.BridgeIOWindow(cs)
				if pci.WindowEnabled(iob, iol) {
					fmt.Fprintf(w, "\tio window [%#010x, %#010x]\n", iob, iol)
				} else {
					fmt.Fprintf(w, "\tio window closed\n")
				}
			}
		}
	}
	return nil
}

// lookupSpace fetches the registered config space behind a BDF when it
// is a full ConfigSpace (every platform function is).
func (s *System) lookupSpace(bdf pci.BDF) (*pci.ConfigSpace, bool) {
	acc, ok := s.PCIHost.Lookup(bdf)
	if !ok {
		return nil, false
	}
	cs, ok := acc.(*pci.ConfigSpace)
	return cs, ok
}

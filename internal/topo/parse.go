// Topology spec grammar, the -topo flag's input language. A spec is a
// comma-separated list of root ports; each port is "_" (empty) or a
// node; a node is a kind with optional attributes, children, and a
// replication count:
//
//	spec  := port ("," port)*
//	port  := "_" | node
//	node  := kind attr* [ "(" spec ")" ] [ "*" INT ]
//	attr  := ":x" INT        lane width
//	       | ":g" INT        generation (1-3)
//	       | ":c" INT        uniform flow-control credits (per class:
//	                         INT headers, 4*INT data units)
//	       | ":d" INT        timing domain (1..par-1) for the parallel
//	                         engine; the subtree inherits it
//	       | "@" NAME        explicit node name
//	kind  := "switch" | "sw" | "disk" | "nic" | "testdev" | "td"
//
// Examples: "switch:x4(disk*8)" is the fanout8 scenario;
// "switch:x4(disk,nic)" is the p2p scenario. Input starting with "{"
// is parsed as the JSON form of Spec instead. Whitespace is free.
package topo

import (
	"encoding/json"
	"fmt"
	"strings"

	"pciesim/internal/pcie"
)

// Parser hardening caps: the grammar is fuzzed, so every dimension of
// the input is bounded before any allocation proportional to it.
const (
	maxSpecLen   = 64 << 10
	maxNodes     = 1024
	maxDepth     = 32
	maxReplicate = 256
)

// Parse builds a Spec from the text grammar (or JSON when the input
// starts with "{"), normalizes it, and validates it. Any malformed
// input returns an error; Parse never panics.
func Parse(input string) (*Spec, error) {
	if len(input) > maxSpecLen {
		return nil, fmt.Errorf("topo: spec longer than %d bytes", maxSpecLen)
	}
	trimmed := strings.TrimSpace(input)
	if trimmed == "" {
		return nil, fmt.Errorf("topo: empty spec")
	}
	var spec *Spec
	if trimmed[0] == '{' {
		spec = &Spec{}
		if err := json.Unmarshal([]byte(trimmed), spec); err != nil {
			return nil, fmt.Errorf("topo: bad JSON spec: %v", err)
		}
		if n := countNodes(spec); n > maxNodes {
			return nil, fmt.Errorf("topo: spec has %d nodes, cap is %d", n, maxNodes)
		}
		if d := depthOf(spec); d > maxDepth {
			return nil, fmt.Errorf("topo: spec depth %d exceeds cap %d", d, maxDepth)
		}
	} else {
		p := &parser{in: trimmed}
		ports, err := p.ports(0)
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos != len(p.in) {
			return nil, fmt.Errorf("topo: trailing input at byte %d: %q", p.pos, p.rest())
		}
		spec = &Spec{RootPorts: ports}
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	return spec, nil
}

type parser struct {
	in    string
	pos   int
	nodes int
}

func (p *parser) rest() string {
	r := p.in[p.pos:]
	if len(r) > 16 {
		r = r[:16] + "..."
	}
	return r
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n' || p.in[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.in) {
		return p.in[p.pos]
	}
	return 0
}

// ports parses a comma-separated port list at the given nesting depth.
func (p *parser) ports(depth int) ([]*Node, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("topo: nesting deeper than %d", maxDepth)
	}
	var out []*Node
	for {
		p.skipSpace()
		if p.peek() == '_' {
			p.pos++
			out = append(out, nil)
		} else {
			nodes, err := p.node(depth)
			if err != nil {
				return nil, err
			}
			out = append(out, nodes...)
		}
		if len(out) > maxFanout {
			return nil, fmt.Errorf("topo: more than %d ports in one list", maxFanout)
		}
		p.skipSpace()
		if p.peek() != ',' {
			return out, nil
		}
		p.pos++
	}
}

// node parses one node (possibly replicated into several).
func (p *parser) node(depth int) ([]*Node, error) {
	kind, err := p.kind()
	if err != nil {
		return nil, err
	}
	p.nodes++
	if p.nodes > maxNodes {
		return nil, fmt.Errorf("topo: more than %d nodes", maxNodes)
	}
	n := &Node{Kind: kind}
	for {
		p.skipSpace()
		switch p.peek() {
		case ':':
			p.pos++
			switch p.peek() {
			case 'x':
				p.pos++
				v, err := p.number()
				if err != nil {
					return nil, err
				}
				// 0 would read as "unset" and silently default; reject it
				// here so an explicit width is always honored or refused.
				if v == 0 {
					return nil, fmt.Errorf("topo: explicit width x0 at byte %d", p.pos)
				}
				n.Link.Width = v
			case 'g':
				p.pos++
				v, err := p.number()
				if err != nil {
					return nil, err
				}
				if v == 0 {
					return nil, fmt.Errorf("topo: explicit generation g0 at byte %d", p.pos)
				}
				n.Link.Gen = pcie.Generation(v)
			case 'c':
				p.pos++
				v, err := p.number()
				if err != nil {
					return nil, err
				}
				// 0 on the wire means infinite; an explicit :c0 is more
				// likely a typo than a request for legacy mode, so refuse
				// it ("disable FC" is spelled by omitting the attribute).
				if v == 0 {
					return nil, fmt.Errorf("topo: explicit credits c0 at byte %d", p.pos)
				}
				c := pcie.UniformCredits(v)
				n.Link.Credits = &c
			case 'd':
				p.pos++
				v, err := p.number()
				if err != nil {
					return nil, err
				}
				// 0 means "let the partitioner place it"; an explicit
				// :d0 is more likely a typo than a request for that.
				if v == 0 {
					return nil, fmt.Errorf("topo: explicit domain d0 at byte %d", p.pos)
				}
				n.Dom = v
			default:
				return nil, fmt.Errorf("topo: expected x, g, c, or d after ':' at byte %d: %q", p.pos, p.rest())
			}
			continue
		case '@':
			p.pos++
			name := p.ident()
			if name == "" {
				return nil, fmt.Errorf("topo: expected name after '@' at byte %d: %q", p.pos, p.rest())
			}
			n.Name = name
			continue
		}
		break
	}
	if p.peek() == '(' {
		if kind != KindSwitch {
			return nil, fmt.Errorf("topo: endpoint %q cannot have a port list", kind)
		}
		p.pos++
		children, err := p.ports(depth + 1)
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("topo: expected ')' at byte %d: %q", p.pos, p.rest())
		}
		p.pos++
		n.Ports = children
	}
	p.skipSpace()
	count := 1
	if p.peek() == '*' {
		p.pos++
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		if v < 1 || v > maxReplicate {
			return nil, fmt.Errorf("topo: replication count %d outside 1..%d", v, maxReplicate)
		}
		count = v
	}
	if count == 1 {
		return []*Node{n}, nil
	}
	// Replication clones the subtree; explicit names would collide, so
	// only anonymous subtrees replicate (Normalize names each clone).
	if hasName(n) {
		return nil, fmt.Errorf("topo: cannot replicate a subtree with explicit names")
	}
	extra := countSubtree(n) * (count - 1)
	if p.nodes+extra > maxNodes {
		return nil, fmt.Errorf("topo: more than %d nodes", maxNodes)
	}
	p.nodes += extra
	out := make([]*Node, count)
	out[0] = n
	for i := 1; i < count; i++ {
		out[i] = cloneNode(n)
	}
	return out, nil
}

func (p *parser) kind() (Kind, error) {
	word := p.ident()
	switch word {
	case "switch", "sw":
		return KindSwitch, nil
	case "disk":
		return KindDisk, nil
	case "nic":
		return KindNIC, nil
	case "testdev", "td":
		return KindTestDev, nil
	}
	return "", fmt.Errorf("topo: unknown node kind %q at byte %d", word, p.pos)
}

func (p *parser) ident() string {
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.' || c == '-' {
			p.pos++
		} else {
			break
		}
	}
	return p.in[start:p.pos]
}

func (p *parser) number() (int, error) {
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start || p.pos-start > 4 {
		return 0, fmt.Errorf("topo: expected a number (1-4 digits) at byte %d: %q", start, p.rest())
	}
	v := 0
	for _, c := range []byte(p.in[start:p.pos]) {
		v = v*10 + int(c-'0')
	}
	return v, nil
}

func hasName(n *Node) bool {
	if n == nil {
		return false
	}
	if n.Name != "" || n.Link.Name != "" {
		return true
	}
	for _, c := range n.Ports {
		if hasName(c) {
			return true
		}
	}
	return false
}

func countSubtree(n *Node) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Ports {
		total += countSubtree(c)
	}
	return total
}

func countNodes(s *Spec) int {
	total := 0
	for _, rp := range s.RootPorts {
		total += countSubtree(rp)
	}
	return total
}

func depthOf(s *Spec) int {
	var rec func(n *Node) int
	rec = func(n *Node) int {
		if n == nil {
			return 0
		}
		deepest := 0
		for _, c := range n.Ports {
			if d := rec(c); d > deepest {
				deepest = d
			}
		}
		return 1 + deepest
	}
	deepest := 0
	for _, rp := range s.RootPorts {
		if d := rec(rp); d > deepest {
			deepest = d
		}
	}
	return deepest
}

// cloneNode deep-copies an anonymous subtree for replication.
func cloneNode(n *Node) *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Dom: n.Dom, Link: n.Link}
	if len(n.Ports) > 0 {
		c.Ports = make([]*Node, len(n.Ports))
		for i, ch := range n.Ports {
			c.Ports[i] = cloneNode(ch)
		}
	}
	return c
}

// String renders the spec in the text grammar. It is lossy for link
// metadata (link names, error rates, fault plans, non-uniform credit
// configurations), but the rendered
// text always re-parses to a spec with the same structure, names,
// widths, and generations.
func (s *Spec) String() string {
	var b strings.Builder
	writePorts(&b, s.RootPorts)
	return b.String()
}

func writePorts(b *strings.Builder, ports []*Node) {
	for i, n := range ports {
		if i > 0 {
			b.WriteByte(',')
		}
		if n == nil {
			b.WriteByte('_')
			continue
		}
		b.WriteString(string(n.Kind))
		if n.Link.Width != 0 {
			fmt.Fprintf(b, ":x%d", n.Link.Width)
		}
		if n.Link.Gen != 0 {
			fmt.Fprintf(b, ":g%d", int(n.Link.Gen))
		}
		// Only the uniform shape is expressible in the grammar; other
		// credit configs fall under the documented lossiness.
		if c := n.Link.Credits; c != nil {
			if u := c.PostedHdr; u > 0 && *c == pcie.UniformCredits(u) {
				fmt.Fprintf(b, ":c%d", u)
			}
		}
		if n.Dom != 0 {
			fmt.Fprintf(b, ":d%d", n.Dom)
		}
		if n.Name != "" {
			fmt.Fprintf(b, "@%s", n.Name)
		}
		if len(n.Ports) > 0 {
			b.WriteByte('(')
			writePorts(b, n.Ports)
			b.WriteByte(')')
		}
	}
}

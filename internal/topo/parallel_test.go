package topo

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pciesim/internal/fault"
	"pciesim/internal/pcie"
	"pciesim/internal/sim"
)

// statsDump runs the workload appropriate for the spec (dd on every
// disk when it has any, the NIC transmit loop when it only has NICs,
// plain boot otherwise) and returns the full stats registry as JSON.
func statsDump(t *testing.T, spec *Spec, cfg Config) []byte {
	t.Helper()
	sys, err := Build(spec, cfg)
	if err != nil {
		t.Fatalf("build (domains=%d): %v\nspec: %s", cfg.Domains, err, spec)
	}
	disks, nics := 0, 0
	spec.walk(func(n *Node) {
		switch n.Kind {
		case KindDisk:
			disks++
		case KindNIC:
			nics++
		}
	})
	switch {
	case disks > 0:
		if _, err := sys.RunDDAll(256 << 10); err != nil {
			t.Fatalf("dd (domains=%d): %v\nspec: %s", cfg.Domains, err, spec)
		}
	case nics > 0:
		if _, err := sys.RunNICTx(16, 1500); err != nil {
			t.Fatalf("nictx (domains=%d): %v\nspec: %s", cfg.Domains, err, spec)
		}
	default:
		if _, err := sys.Boot(); err != nil {
			t.Fatalf("boot (domains=%d): %v\nspec: %s", cfg.Domains, err, spec)
		}
	}
	sys.Eng.Run() // drain stragglers so the dump covers a quiesced world
	var buf bytes.Buffer
	if err := sys.Eng.Stats().WriteJSON(&buf, uint64(sys.Eng.Now())); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// firstLineDiff locates the first divergent line for a readable failure.
func firstLineDiff(got, want []byte) string {
	g, w := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(g) && i < len(w); i++ {
		if !bytes.Equal(g[i], w[i]) {
			return fmt.Sprintf("first diff at line %d:\n got: %s\nwant: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("dumps diverge in length: %d vs %d lines", len(g), len(w))
}

// TestParallelStatsMatchSerial is the partitioning property test: for
// seeded random topologies, the full stats dump of a -par N run must be
// byte-identical to the serial run's — clean, with a fault plan pinning
// one subtree, and under starved flow-control credits.
func TestParallelStatsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs dozens of full simulations")
	}
	rng := rand.New(rand.NewSource(20260809))
	for i := 0; i < 8; i++ {
		spec := randomSpec(rng)
		if err := spec.Normalize(); err != nil {
			t.Fatalf("random spec did not normalize: %v", err)
		}
		variants := []struct {
			name   string
			mutate func(*Config)
		}{
			{"clean", func(*Config) {}},
			{"faulted", func(cfg *Config) {
				// Pin the first endpoint's subtree with a corruption plan;
				// the rest of the fabric stays splittable.
				var name string
				spec.walk(func(n *Node) {
					if name == "" && n.Kind != KindSwitch {
						name = n.Link.Name
					}
				})
				if name == "" {
					return
				}
				cfg.Faults = map[string]*fault.Plan{name: fault.CorruptionPlan(5e-4)}
			}},
			{"starved", func(cfg *Config) {
				cfg.Credits = pcie.CreditConfig{PostedHdr: 1, NonPostedHdr: 1, CplHdr: 2}
			}},
		}
		for _, v := range variants {
			t.Run(fmt.Sprintf("seed20260809-%02d-%s", i, v.name), func(t *testing.T) {
				base := DefaultConfig()
				base.DD.StartupOverhead /= 64
				v.mutate(&base)
				want := statsDump(t, spec, base)
				for _, domains := range []int{2, 4} {
					cfg := base
					cfg.Domains = domains
					got := statsDump(t, spec, cfg)
					if !bytes.Equal(got, want) {
						t.Errorf("-par %d dump differs from serial:\n%s\nspec: %s",
							domains, firstLineDiff(got, want), spec)
					}
				}
			})
		}
	}
}

// TestParallelCannedScenarios pins the canned fabrics explicitly: the
// contended fanout8 tree (lockstep-symmetric disks are the hardest
// tie-ordering case) and the validation platform.
func TestParallelCannedScenarios(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec func() *Spec
	}{
		{"validation", Validation},
		{"fanout8", Fanout8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := DefaultConfig()
			base.DD.StartupOverhead /= 64
			want := statsDump(t, tc.spec(), base)
			for _, domains := range []int{2, 3, 4} {
				cfg := base
				cfg.Domains = domains
				got := statsDump(t, tc.spec(), cfg)
				if !bytes.Equal(got, want) {
					t.Errorf("-par %d dump differs from serial:\n%s", domains, firstLineDiff(got, want))
				}
			}
		})
	}
}

// TestPartitionShapes pins the automatic partitioner's decisions on
// the canned fanout8 tree and the documented serial fallbacks.
func TestPartitionShapes(t *testing.T) {
	build := func(mutate func(*Config)) *System {
		cfg := DefaultConfig()
		cfg.Domains = 4
		if mutate != nil {
			mutate(&cfg)
		}
		sys, err := Build(Fanout8(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	if got := build(nil).Domains(); got != 4 {
		t.Errorf("fanout8 -par 4: %d domains, want 4", got)
	}
	if got := build(func(cfg *Config) { cfg.Domains = 2 }).Domains(); got != 2 {
		t.Errorf("fanout8 -par 2: %d domains, want 2", got)
	}
	if got := build(func(cfg *Config) { cfg.Domains = 3 }).Domains(); got != 3 {
		t.Errorf("fanout8 -par 3: %d domains, want 3", got)
	}

	// A fault plan pins one disk; the other seven still split.
	faulted := build(func(cfg *Config) {
		cfg.Faults = map[string]*fault.Plan{"disk0.link": fault.CorruptionPlan(1e-3)}
	})
	if got := faulted.Domains(); got != 4 {
		t.Errorf("faulted fanout8 -par 4: %d domains, want 4 (unpinned disks still split)", got)
	}

	// Platform-wide degradation, DPC, and zero IRQ latency fall back to
	// the serial engine.
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"degrade", func(cfg *Config) { cfg.Degrade = &pcie.DegradeConfig{} }},
		{"dpc", func(cfg *Config) { cfg.EnableDPC = true }},
		{"zero-irq-latency", func(cfg *Config) { cfg.IRQLatency = 0 }},
	} {
		if got := build(tc.mutate).Domains(); got != 1 {
			t.Errorf("%s: %d domains, want serial fallback (1)", tc.name, got)
		}
	}
}

// TestExplicitDomainAnnotations covers the ":d" grammar end to end:
// valid placements build with the requested domain count, out-of-range
// and pinned placements are build errors.
func TestExplicitDomainAnnotations(t *testing.T) {
	parse := func(s string) *Spec {
		spec, err := Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return spec
	}

	cfg := DefaultConfig()
	cfg.Domains = 3
	sys, err := Build(parse("switch:x4(disk:d1,disk:d2,disk)"), cfg)
	if err != nil {
		t.Fatalf("explicit domains: %v", err)
	}
	if got := sys.Domains(); got != 3 {
		t.Errorf("explicit :d build has %d domains, want 3", got)
	}

	// Out of range for -par 2.
	cfg.Domains = 2
	if _, err := Build(parse("switch:x4(disk:d1,disk:d2,disk)"), cfg); err == nil {
		t.Error("domain index beyond -par built without error")
	}

	// A pinned (faulted) node may not be placed outside the root domain.
	cfg.Domains = 3
	cfg.Faults = map[string]*fault.Plan{"disk0.link": fault.CorruptionPlan(1e-3)}
	spec := parse("switch:x4(disk:d1,disk:d2,disk)")
	if _, err := Build(spec, cfg); err == nil {
		t.Error("faulted node pinned to a worker domain built without error")
	}

	// sim build tag sanity: quantum must be positive on any split build.
	cfg = DefaultConfig()
	cfg.Domains = 2
	p, err := partitionSpec(mustNormal(t, Fanout8()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.domains > 1 && p.quantum < sim.Tick(1) {
		t.Errorf("split partition has non-positive quantum %d", p.quantum)
	}
}

func mustNormal(t *testing.T, s *Spec) *Spec {
	t.Helper()
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	return s
}

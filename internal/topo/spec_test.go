package topo

import (
	"fmt"
	"math/rand"
	"testing"

	"pciesim/internal/pci"
	"pciesim/internal/pcie"
)

// TestValidationPlan pins the bus plan of the §VI-A topology to the
// numbers the hardwired platform used: switch bridges on buses 1/2,
// disk at 03:00.0, NIC at 05:00.0, seven buses total (the empty switch
// port and the empty root port each consume one).
func TestValidationPlan(t *testing.T) {
	s := Validation()
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	p, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Buses != 7 {
		t.Errorf("Buses = %d, want 7", p.Buses)
	}
	sw := s.RootPorts[0]
	if got := p.SwitchBus[sw]; got != (SwitchBuses{Upstream: 1, Internal: 2}) {
		t.Errorf("switch buses = %+v, want {1 2}", got)
	}
	if got := p.EndpointBDF[sw.Ports[0]]; got != pci.NewBDF(3, 0, 0) {
		t.Errorf("disk BDF = %v, want 03:00.0", got)
	}
	if got := p.EndpointBDF[s.RootPorts[1]]; got != pci.NewBDF(5, 0, 0) {
		t.Errorf("nic BDF = %v, want 05:00.0", got)
	}
}

// TestIllegalSpecs: every structurally illegal spec must surface as an
// error from Normalize — never a panic, never a bad build.
func TestIllegalSpecs(t *testing.T) {
	deep := &Spec{RootPorts: []*Node{{Kind: KindSwitch, Ports: []*Node{nil}}}}
	// A switch chain long enough to need >256 buses (2 per switch).
	cur := deep.RootPorts[0]
	for i := 0; i < 140; i++ {
		next := &Node{Kind: KindSwitch, Ports: []*Node{nil}}
		cur.Ports = []*Node{next}
		cur = next
	}

	wide := make([]*Node, 33)
	for i := range wide {
		wide[i] = &Node{Kind: KindDisk}
	}

	cases := []struct {
		name string
		spec *Spec
	}{
		{"no root ports", &Spec{}},
		{"too many root ports", &Spec{RootPorts: make([]*Node, 33)}},
		{"unknown kind", &Spec{RootPorts: []*Node{{Kind: "gpu"}}}},
		{"illegal name", &Spec{RootPorts: []*Node{{Kind: KindDisk, Name: "0bad name"}}}},
		{"duplicate node name", &Spec{RootPorts: []*Node{
			{Kind: KindDisk, Name: "d"}, {Kind: KindNIC, Name: "d"}}}},
		{"duplicate link name", &Spec{RootPorts: []*Node{
			{Kind: KindDisk, Link: LinkSpec{Name: "l"}}, {Kind: KindNIC, Link: LinkSpec{Name: "l"}}}}},
		{"width out of range", &Spec{RootPorts: []*Node{{Kind: KindDisk, Link: LinkSpec{Width: 33}}}}},
		{"negative width", &Spec{RootPorts: []*Node{{Kind: KindDisk, Link: LinkSpec{Width: -1}}}}},
		{"generation out of range", &Spec{RootPorts: []*Node{{Kind: KindDisk, Link: LinkSpec{Gen: 9}}}}},
		{"error rate out of range", &Spec{RootPorts: []*Node{{Kind: KindDisk, Link: LinkSpec{ErrorRate: 1.5}}}}},
		{"switch fanout 0", &Spec{RootPorts: []*Node{{Kind: KindSwitch}}}},
		{"switch fanout 33", &Spec{RootPorts: []*Node{{Kind: KindSwitch, Ports: wide}}}},
		{"endpoint with ports", &Spec{RootPorts: []*Node{
			{Kind: KindDisk, Ports: []*Node{{Kind: KindNIC}}}}}},
		{"more than 256 buses", deep},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panicked: %v", r)
				}
			}()
			if err := tc.spec.Normalize(); err == nil {
				t.Fatal("Normalize accepted an illegal spec")
			}
		})
	}
}

// randomSpec draws a bounded random legal topology: up to 3 root ports,
// switch depth <= 3, fanout <= 4, a mix of endpoint kinds, empty ports,
// and assorted widths/generations. Everything it can produce must
// normalize, build, and boot.
func randomSpec(rng *rand.Rand) *Spec {
	var node func(depth int) *Node
	node = func(depth int) *Node {
		if depth > 0 && rng.Intn(2) == 0 {
			n := &Node{Kind: KindSwitch, Link: LinkSpec{
				Width: []int{0, 1, 2, 4, 8, 16}[rng.Intn(6)],
				Gen:   pcie.Generation(rng.Intn(4)),
			}}
			fanout := 1 + rng.Intn(4)
			for i := 0; i < fanout; i++ {
				if rng.Intn(5) == 0 {
					n.Ports = append(n.Ports, nil) // empty downstream port
				} else {
					n.Ports = append(n.Ports, node(depth-1))
				}
			}
			return n
		}
		kind := []Kind{KindDisk, KindNIC, KindTestDev}[rng.Intn(3)]
		return &Node{Kind: kind, Link: LinkSpec{Width: []int{0, 1, 2, 4}[rng.Intn(4)]}}
	}
	s := &Spec{Name: "random"}
	for i := 0; i < 1+rng.Intn(3); i++ {
		if rng.Intn(6) == 0 {
			s.RootPorts = append(s.RootPorts, nil)
		} else {
			s.RootPorts = append(s.RootPorts, node(3))
		}
	}
	return s
}

// TestRandomTopologies is the property test: seeded random legal
// topologies must build and boot, and the enumerated fabric must
// satisfy the structural invariants — the plan's bus count and endpoint
// BDFs are what enumeration discovers, every function address is
// unique, child bridge bus ranges nest strictly inside their parent's,
// and no two BARs overlap within an address space.
func TestRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for i := 0; i < 25; i++ {
		spec := randomSpec(rng)
		t.Run(fmt.Sprintf("seed20260806-%02d", i), func(t *testing.T) {
			if err := spec.Normalize(); err != nil {
				t.Fatalf("random spec did not normalize: %v\nspec: %s", err, spec)
			}
			plan, err := spec.Plan()
			if err != nil {
				t.Fatal(err)
			}
			sys, err := Build(spec, DefaultConfig())
			if err != nil {
				t.Fatalf("build: %v\nspec: %s", err, spec)
			}
			tp, err := sys.Boot()
			if err != nil {
				t.Fatalf("boot: %v\nspec: %s", err, spec)
			}

			if tp.Buses != plan.Buses {
				t.Errorf("enumeration found %d buses, plan says %d", tp.Buses, plan.Buses)
			}
			seen := map[pci.BDF]bool{}
			for _, d := range tp.All {
				if seen[d.BDF] {
					t.Errorf("duplicate BDF %v", d.BDF)
				}
				seen[d.BDF] = true
			}
			for ep, bdf := range plan.EndpointBDF {
				if !seen[bdf] {
					t.Errorf("planned endpoint %s at %v not discovered", ep.Name, bdf)
				}
			}

			// Bridge bus ranges: children nested, siblings disjoint.
			for _, d := range tp.All {
				if !d.IsBridge {
					continue
				}
				if d.Secondary > d.Subordinate {
					t.Errorf("bridge %v: secondary %#x > subordinate %#x", d.BDF, d.Secondary, d.Subordinate)
				}
				if d.BDF.Bus >= d.Secondary {
					t.Errorf("bridge %v: secondary %#x not below its own bus", d.BDF, d.Secondary)
				}
				prevEnd := -1
				for _, c := range d.Children {
					if !c.IsBridge {
						continue
					}
					if c.Secondary <= d.Secondary || c.Subordinate > d.Subordinate {
						t.Errorf("bridge %v range [%#x,%#x] escapes parent %v [%#x,%#x]",
							c.BDF, c.Secondary, c.Subordinate, d.BDF, d.Secondary, d.Subordinate)
					}
					if int(c.Secondary) <= prevEnd {
						t.Errorf("bridge %v range [%#x,%#x] overlaps a sibling ending at %#x",
							c.BDF, c.Secondary, c.Subordinate, prevEnd)
					}
					prevEnd = int(c.Subordinate)
				}
			}

			// BAR windows: non-overlapping per address space.
			type window struct {
				owner      string
				start, end uint64 // [start, end)
			}
			var mem, io []window
			for _, d := range tp.All {
				for _, b := range d.BARs {
					w := window{fmt.Sprintf("%v bar%d", d.BDF, b.Index), b.Addr, b.Addr + b.Size}
					if b.IsIO {
						io = append(io, w)
					} else {
						mem = append(mem, w)
					}
				}
			}
			for _, space := range [][]window{mem, io} {
				for a := 0; a < len(space); a++ {
					for b := a + 1; b < len(space); b++ {
						x, y := space[a], space[b]
						if x.start < y.end && y.start < x.end {
							t.Errorf("BAR windows overlap: %s [%#x,%#x) and %s [%#x,%#x)",
								x.owner, x.start, x.end, y.owner, y.start, y.end)
						}
					}
				}
			}
		})
	}
}

// TestNormalizeIdempotent: Normalize must be stable — a second pass
// changes nothing, so a spec can be shared read-only after one call.
func TestNormalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		s := randomSpec(rng)
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
		first := s.String()
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
		if second := s.String(); second != first {
			t.Fatalf("Normalize not idempotent:\nfirst:  %s\nsecond: %s", first, second)
		}
	}
}

// TestCannedSpecsBuild: every canned scenario must build and boot with
// every disk, NIC and testdev bound to a driver.
func TestCannedSpecsBuild(t *testing.T) {
	for _, name := range CannedNames() {
		t.Run(name, func(t *testing.T) {
			spec := Canned(name)
			if spec == nil {
				t.Fatalf("Canned(%q) = nil", name)
			}
			sys, err := Build(spec, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Boot(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

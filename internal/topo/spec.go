// Package topo builds arbitrary PCI-Express topologies for the
// simulated platform: a declarative Spec describes the fabric below the
// root complex — any number of root ports, cascaded switches with any
// fanout, and any mix of endpoint devices at any lane width — and Build
// instantiates it on the same CPU/DRAM/IOCache substrate the validation
// platform uses. The hardwired topology of §VI-A (internal/system) is
// just the canned Validation spec.
//
// Specs come from three places: Go code (the canned scenarios), the
// compact text grammar of Parse ("switch:x4(disk*8)"), or JSON. Bus
// numbers and BDFs are pre-planned with the same DFS the kernel's
// enumeration performs, so the host-side registration and the
// discovered topology always agree.
package topo

import (
	"fmt"
	"regexp"

	"pciesim/internal/fault"
	"pciesim/internal/pci"
	"pciesim/internal/pcie"
)

// Kind names a node type in a topology spec.
type Kind string

// Node kinds: one interior (switch) and three endpoint device models.
const (
	KindSwitch  Kind = "switch"
	KindDisk    Kind = "disk"
	KindNIC     Kind = "nic"
	KindTestDev Kind = "testdev"
)

// LinkSpec describes the link connecting a node to its parent port.
type LinkSpec struct {
	// Name identifies the link for fault attachment and reporting;
	// Normalize defaults it to "<node>.link".
	Name string `json:"name,omitempty"`
	// Width is the lane count; Normalize defaults switches to x4 and
	// endpoints to x1 (the validation widths).
	Width int `json:"width,omitempty"`
	// Gen overrides the platform generation for this link (0 = inherit
	// Config.Gen).
	Gen pcie.Generation `json:"gen,omitempty"`
	// ErrorRate injects stochastic TLP corruption (legacy single-knob
	// interface; Fault is the general mechanism).
	ErrorRate float64 `json:"error_rate,omitempty"`
	// Credits overrides the platform-wide credit configuration
	// (Config.Credits) for this link: the VC0 flow-control pool both
	// ends advertise, with router-side ends capped at their real queue
	// depths. Nil inherits; a pointer to the zero value forces the
	// legacy infinite-credit link. The text grammar's ":c N" attribute
	// sets UniformCredits(N).
	Credits *pcie.CreditConfig `json:"credits,omitempty"`
	// Degrade overrides the platform-wide adaptive-degradation policy
	// (Config.Degrade) for this link. Nil inherits.
	Degrade *pcie.DegradeConfig `json:"degrade,omitempty"`
	// Fault attaches a deterministic fault plan. Only settable from Go
	// or through Config.Faults (keyed by link name).
	Fault *fault.Plan `json:"-"`
}

// Node is one element of the fabric tree: a switch with child ports, or
// an endpoint device.
type Node struct {
	Kind Kind   `json:"kind"`
	Name string `json:"name,omitempty"`
	// Dom pins this node (and, by inheritance, its subtree) to a
	// timing domain of the parallel engine: 1..Domains-1 selects a
	// worker domain, 0 (the default) leaves placement to the
	// automatic partitioner. The text grammar's ":d N" attribute sets
	// it. Ignored by serial builds (Config.Domains <= 1).
	Dom int `json:"dom,omitempty"`
	// Link describes the upstream link of this node.
	Link LinkSpec `json:"link,omitempty"`
	// Ports are the downstream children (switches only). A nil entry is
	// an empty downstream port: it still gets a VP2P bridge and a bus
	// number, exactly like the validation switch's unused second port.
	Ports []*Node `json:"ports,omitempty"`
}

// Spec is a whole-fabric description: one entry per root-complex port.
// A nil entry is a root port with nothing behind it.
type Spec struct {
	Name      string  `json:"name,omitempty"`
	RootPorts []*Node `json:"root_ports"`
}

// nameRE is the legal node-name alphabet — chosen so every name
// round-trips through the text grammar's "@name" attribute.
var nameRE = regexp.MustCompile(`^[A-Za-z][A-Za-z0-9_.\-]*$`)

// Fabric size limits. MaxBuses is architectural (bus numbers are
// 8-bit); the per-bridge fanout limit is the 32 device slots
// enumeration scans per bus.
const (
	MaxBuses  = 256
	maxFanout = 32
)

// Normalize fills defaulted fields in place — auto-generated node
// names, link names, lane widths — and then validates the spec. Build
// and Parse both call it; calling it twice is harmless.
func (s *Spec) Normalize() error {
	used := map[string]bool{}
	s.walk(func(n *Node) {
		if n.Name != "" {
			used[n.Name] = true
		}
	})
	seq := map[Kind]int{}
	s.walk(func(n *Node) {
		if n.Name == "" {
			prefix := string(n.Kind)
			if n.Kind == KindSwitch {
				prefix = "sw"
			}
			for {
				cand := fmt.Sprintf("%s%d", prefix, seq[n.Kind])
				seq[n.Kind]++
				if !used[cand] {
					n.Name = cand
					used[cand] = true
					break
				}
			}
		}
		if n.Link.Name == "" {
			n.Link.Name = n.Name + ".link"
		}
		if n.Link.Width == 0 {
			if n.Kind == KindSwitch {
				n.Link.Width = 4
			} else {
				n.Link.Width = 1
			}
		}
	})
	return s.Validate()
}

// walk visits every non-nil node in DFS order.
func (s *Spec) walk(fn func(*Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		if n == nil {
			return
		}
		fn(n)
		for _, c := range n.Ports {
			rec(c)
		}
	}
	for _, rp := range s.RootPorts {
		rec(rp)
	}
}

// Validate checks structural legality. Every way a spec can be wrong
// returns an error — never a panic — so untrusted specs (the -topo
// flag, the fuzzer) are safe to feed through.
func (s *Spec) Validate() error {
	if len(s.RootPorts) == 0 {
		return fmt.Errorf("topo: spec has no root ports")
	}
	if len(s.RootPorts) > maxFanout {
		return fmt.Errorf("topo: %d root ports exceeds the %d device slots of bus 0", len(s.RootPorts), maxFanout)
	}
	names := map[string]bool{}
	linkNames := map[string]bool{}
	var check func(n *Node) error
	check = func(n *Node) error {
		if n == nil {
			return nil
		}
		switch n.Kind {
		case KindSwitch, KindDisk, KindNIC, KindTestDev:
		default:
			return fmt.Errorf("topo: unknown node kind %q", n.Kind)
		}
		if !nameRE.MatchString(n.Name) {
			return fmt.Errorf("topo: illegal node name %q", n.Name)
		}
		if names[n.Name] {
			return fmt.Errorf("topo: duplicate node name %q", n.Name)
		}
		names[n.Name] = true
		if linkNames[n.Link.Name] {
			return fmt.Errorf("topo: duplicate link name %q", n.Link.Name)
		}
		linkNames[n.Link.Name] = true
		if n.Link.Width < 1 || n.Link.Width > 32 {
			return fmt.Errorf("topo: node %q link width x%d outside 1..32", n.Name, n.Link.Width)
		}
		if n.Link.Gen < 0 || n.Link.Gen > pcie.Gen3 {
			return fmt.Errorf("topo: node %q link generation %d outside 0..3", n.Name, n.Link.Gen)
		}
		if n.Link.ErrorRate < 0 || n.Link.ErrorRate > 1 {
			return fmt.Errorf("topo: node %q link error rate %g outside [0,1]", n.Name, n.Link.ErrorRate)
		}
		if n.Dom < 0 || n.Dom >= MaxBuses {
			return fmt.Errorf("topo: node %q timing domain %d outside 0..%d", n.Name, n.Dom, MaxBuses-1)
		}
		if n.Link.Credits != nil {
			if err := n.Link.Credits.Validate(); err != nil {
				return fmt.Errorf("topo: node %q link credits: %v", n.Name, err)
			}
		}
		if n.Kind == KindSwitch {
			if len(n.Ports) == 0 {
				return fmt.Errorf("topo: switch %q has fanout 0", n.Name)
			}
			if len(n.Ports) > maxFanout {
				return fmt.Errorf("topo: switch %q fanout %d exceeds the %d device slots of its internal bus", n.Name, len(n.Ports), maxFanout)
			}
			for _, c := range n.Ports {
				if err := check(c); err != nil {
					return err
				}
			}
		} else if len(n.Ports) > 0 {
			return fmt.Errorf("topo: endpoint %q cannot have downstream ports", n.Name)
		}
		return nil
	}
	for _, rp := range s.RootPorts {
		if err := check(rp); err != nil {
			return err
		}
	}
	if _, err := s.Plan(); err != nil {
		return err
	}
	return nil
}

// SwitchBuses are the bus numbers a switch's virtual bridges occupy:
// the upstream VP2P sits on Upstream, the downstream VP2Ps on Internal.
type SwitchBuses struct {
	Upstream, Internal uint8
}

// Plan pre-assigns bus numbers and endpoint BDFs with the same DFS the
// kernel's enumeration performs: each bridge claims the next bus for
// its secondary before descending, and empty ports still consume one.
// This is what lets Build register endpoint config spaces at the BDFs
// enumeration will discover them at.
type Plan struct {
	// Buses is the total bus count (highest assigned + 1).
	Buses int
	// SwitchBus maps each switch node to its bridge bus numbers.
	SwitchBus map[*Node]SwitchBuses
	// EndpointBDF maps each endpoint node to its device address.
	EndpointBDF map[*Node]pci.BDF
}

// Plan computes the bus/BDF plan, or an error if the spec needs more
// than MaxBuses buses. The spec must be normalized.
func (s *Spec) Plan() (*Plan, error) {
	p := &Plan{
		SwitchBus:   map[*Node]SwitchBuses{},
		EndpointBDF: map[*Node]pci.BDF{},
	}
	next := 1 // bus 0 is the root bus
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if next >= MaxBuses {
			return fmt.Errorf("topo: spec needs more than %d buses", MaxBuses)
		}
		if n == nil {
			next++ // an empty port's bridge still heads a (vacant) bus
			return nil
		}
		if n.Kind == KindSwitch {
			if next+1 >= MaxBuses {
				return fmt.Errorf("topo: spec needs more than %d buses", MaxBuses)
			}
			p.SwitchBus[n] = SwitchBuses{Upstream: uint8(next), Internal: uint8(next + 1)}
			next += 2
			for _, c := range n.Ports {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		}
		p.EndpointBDF[n] = pci.NewBDF(uint8(next), 0, 0)
		next++
		return nil
	}
	for _, rp := range s.RootPorts {
		if err := walk(rp); err != nil {
			return nil, err
		}
	}
	p.Buses = next
	return p, nil
}

// Endpoints returns the endpoint nodes in DFS (bus) order.
func (s *Spec) Endpoints() []*Node {
	var out []*Node
	s.walk(func(n *Node) {
		if n.Kind != KindSwitch {
			out = append(out, n)
		}
	})
	return out
}

// --- canned scenarios ---

// Validation is the paper's §VI-A platform: a disk behind an x4-uplink
// switch on root port 0, the NIC directly on root port 1, and a third,
// empty root port. Names match the hardwired internal/system topology
// so the stats namespace is byte-identical.
func Validation() *Spec {
	return &Spec{Name: "validation", RootPorts: []*Node{
		{
			Kind: KindSwitch, Name: "switch",
			Link: LinkSpec{Name: "uplink", Width: 4},
			Ports: []*Node{
				{Kind: KindDisk, Name: "disk", Link: LinkSpec{Name: "disklink", Width: 1}},
				nil,
			},
		},
		{Kind: KindNIC, Name: "nic", Link: LinkSpec{Name: "niclink", Width: 1}},
		nil,
	}}
}

// Fanout8 is the contention scenario: eight disks, each on an x1 link,
// under one switch whose x4 uplink is the shared bottleneck.
func Fanout8() *Spec {
	disks := make([]*Node, 8)
	for i := range disks {
		disks[i] = &Node{Kind: KindDisk}
	}
	return &Spec{Name: "fanout8", RootPorts: []*Node{
		{Kind: KindSwitch, Link: LinkSpec{Width: 4}, Ports: disks},
	}}
}

// P2P is the peer-to-peer scenario: a disk and a NIC sharing one
// switch, so disk DMA targeting the NIC's BAR can turn around at the
// switch instead of reflecting off the root complex.
func P2P() *Spec {
	return &Spec{Name: "p2p", RootPorts: []*Node{
		{Kind: KindSwitch, Link: LinkSpec{Width: 4}, Ports: []*Node{
			{Kind: KindDisk},
			{Kind: KindNIC},
		}},
	}}
}

// Canned resolves a scenario name to its spec, or nil.
func Canned(name string) *Spec {
	switch name {
	case "validation":
		return Validation()
	case "fanout8":
		return Fanout8()
	case "p2p":
		return P2P()
	}
	return nil
}

// CannedNames lists the canned scenario names.
func CannedNames() []string { return []string{"validation", "fanout8", "p2p"} }

package topo

import (
	"strings"
	"testing"
)

// TestParseGrammar checks the text grammar against expected plans.
func TestParseGrammar(t *testing.T) {
	cases := []struct {
		in        string
		buses     int
		endpoints int
	}{
		{"disk", 2, 1},
		{"disk,nic", 3, 2},
		{"_", 2, 0},
		{"switch:x4(disk*8)", 11, 8},
		{"switch:x4(disk,nic)", 5, 2},
		{"switch:x4@switch(disk@disk,_),nic@nic,_", 7, 2}, // validation shape
		{"sw(td)", 4, 1},
		{"sw(sw(sw(disk)))", 8, 1},
		{"switch:x8:g1(disk:x2*2)", 5, 2},
		{" switch ( disk , _ ) ", 5, 1}, // whitespace is free
		{"sw(disk)*4", 13, 4},           // replicated subtree
	}
	for _, tc := range cases {
		t.Run(tc.in, func(t *testing.T) {
			s, err := Parse(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			p, err := s.Plan()
			if err != nil {
				t.Fatal(err)
			}
			if p.Buses != tc.buses {
				t.Errorf("Buses = %d, want %d", p.Buses, tc.buses)
			}
			if got := len(s.Endpoints()); got != tc.endpoints {
				t.Errorf("endpoints = %d, want %d", got, tc.endpoints)
			}
		})
	}
}

// TestParseAttributes checks that widths, generations and names land on
// the right nodes.
func TestParseAttributes(t *testing.T) {
	s, err := Parse("switch:x8:g1@top(disk:x2@d0,nic@n0)")
	if err != nil {
		t.Fatal(err)
	}
	top := s.RootPorts[0]
	if top.Name != "top" || top.Link.Width != 8 || int(top.Link.Gen) != 1 {
		t.Errorf("switch = %q x%d g%d, want top x8 g1", top.Name, top.Link.Width, top.Link.Gen)
	}
	if d := top.Ports[0]; d.Name != "d0" || d.Link.Width != 2 {
		t.Errorf("disk = %q x%d, want d0 x2", d.Name, d.Link.Width)
	}
	if n := top.Ports[1]; n.Name != "n0" || n.Link.Width != 1 {
		t.Errorf("nic = %q x%d, want n0 x1 (defaulted)", n.Name, n.Link.Width)
	}
}

// TestParseJSON: input starting with "{" takes the JSON path.
func TestParseJSON(t *testing.T) {
	s, err := Parse(`{"name":"j","root_ports":[
		{"kind":"switch","link":{"width":4},"ports":[{"kind":"disk"},null]},
		{"kind":"nic"}]}`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "j" {
		t.Errorf("Name = %q, want j", s.Name)
	}
	p, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.Buses != 6 {
		t.Errorf("Buses = %d, want 6", p.Buses)
	}
}

// TestParseErrors: malformed input errors with a location, never
// panics, and never returns a half-built spec.
func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"gpu",
		"disk(nic)",           // endpoint with port list
		"switch",              // fanout 0
		"switch(",             // unterminated
		"switch(disk))",       // trailing input
		"switch(disk" + ",_",  // unbalanced
		"disk:z4",             // unknown attribute
		"disk:x",              // missing number
		"disk:x99999",         // >4 digits
		"disk:x0",             // width out of range
		"disk:g7",             // generation out of range
		"disk@",               // missing name
		"disk@a,nic@a",        // duplicate name
		"disk*0",              // replication out of range
		"disk*999",            // >32 ports in one list
		"disk@d*2",            // replicating named subtree
		"sw(disk)*257",        // replication cap
		"disk,disk,{",         // junk tail
		"{not json",           // bad JSON
		`{"root_ports":[]}`,   // no root ports
		`{"root_ports":[{}]}`, // missing kind
		strings.Repeat("a", maxSpecLen+1),
		strings.Repeat("sw(", maxDepth+2) + "disk" + strings.Repeat(")", maxDepth+2),
	}
	for _, in := range cases {
		name := in
		if len(name) > 24 {
			name = name[:24] + "..."
		}
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panicked on %q: %v", in, r)
				}
			}()
			if s, err := Parse(in); err == nil {
				t.Fatalf("Parse(%q) accepted, spec: %s", in, s)
			}
		})
	}
}

// TestStringRoundTrip: the rendered text form of any parsed spec must
// re-parse to the same structure — same String, same bus plan.
func TestStringRoundTrip(t *testing.T) {
	inputs := []string{
		"disk",
		"switch:x4(disk*8)",
		"switch:x4(disk,nic)",
		"switch:x4@switch(disk@disk,_),nic@nic,_",
		"sw:x8:g3(sw:x2(td,_,disk),nic)*2",
		`{"root_ports":[{"kind":"switch","link":{"width":4},"ports":[{"kind":"disk"}]}]}`,
	}
	for _, in := range inputs {
		t.Run(in, func(t *testing.T) {
			s1, err := Parse(in)
			if err != nil {
				t.Fatal(err)
			}
			text := s1.String()
			s2, err := Parse(text)
			if err != nil {
				t.Fatalf("String() output %q does not re-parse: %v", text, err)
			}
			if got := s2.String(); got != text {
				t.Errorf("round trip unstable: %q -> %q", text, got)
			}
			p1, err1 := s1.Plan()
			p2, err2 := s2.Plan()
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if p1.Buses != p2.Buses {
				t.Errorf("bus plan changed across round trip: %d -> %d", p1.Buses, p2.Buses)
			}
		})
	}
}

// TestCannedStringRoundTrip: every canned scenario survives the text
// form (this is what lets RunTopoSweep-style callers clone a spec).
func TestCannedStringRoundTrip(t *testing.T) {
	for _, name := range CannedNames() {
		t.Run(name, func(t *testing.T) {
			s := Canned(name)
			if err := s.Normalize(); err != nil {
				t.Fatal(err)
			}
			s2, err := Parse(s.String())
			if err != nil {
				t.Fatalf("%q does not re-parse: %v", s.String(), err)
			}
			p1, _ := s.Plan()
			p2, _ := s2.Plan()
			if p1.Buses != p2.Buses {
				t.Errorf("bus plan changed: %d -> %d", p1.Buses, p2.Buses)
			}
		})
	}
}

package topo

import (
	"testing"

	"pciesim/internal/fault"
	"pciesim/internal/pcie"
	"pciesim/internal/sim"
)

// hotplugConfig arms containment the way a hot-plug exploration run
// would: DPC on every slot, the driver command watchdog, and the RC
// completion timeout as the backstop.
func hotplugConfig() Config {
	cfg := DefaultConfig()
	cfg.EnableDPC = true
	cfg.CompletionTimeout = 100 * sim.Microsecond
	cfg.DiskCmdTimeout = 2 * sim.Millisecond
	cfg.DiskDMATimeout = 500 * sim.Microsecond
	return cfg
}

// bootTick measures when boot finishes on a throwaway identical system
// (boot is deterministic), so fault plans can be pinned mid-workload.
func bootTick(t *testing.T, cfg Config) sim.Tick {
	t.Helper()
	s, err := Build(Validation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	return s.Eng.Now()
}

// TestSurpriseRemovalRecovery is the end-to-end hot-plug story: the
// disk is yanked mid-dd, DPC contains the dead sub-tree (dd degrades
// but keeps making progress), the card is re-seated, the kernel's
// recovery driver re-enables the slot and replays the boot-time
// configuration, and a follow-up dd runs completely clean.
func TestSurpriseRemovalRecovery(t *testing.T) {
	cfg := hotplugConfig()
	removeAt := bootTick(t, cfg) + cfg.DD.StartupOverhead + sim.Millisecond
	cfg.Faults = map[string]*fault.Plan{
		"disklink": {Hotplugs: []fault.Hotplug{
			{RemoveAt: removeAt, ReinsertAfter: 500 * sim.Microsecond},
		}},
	}
	s, err := Build(Validation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunDD(2 << 20)
	if err != nil {
		t.Fatalf("dd must complete across a surprise removal, got: %v", err)
	}
	if res.Requests != 16 {
		t.Errorf("dd must attempt all 16 requests, got %d", res.Requests)
	}
	if res.Errors == 0 || res.Errors == res.Requests {
		t.Errorf("want a mix of clean and errored requests, got %d/%d errored",
			res.Errors, res.Requests)
	}

	li := s.LinkByName("disklink")
	if li.Link.Removals() != 1 || li.Link.Reinserts() != 1 {
		t.Errorf("link saw %d removals / %d reinserts, want 1/1",
			li.Link.Removals(), li.Link.Reinserts())
	}
	triggers, recovered, abandoned := s.Recovery.Counts()
	if triggers == 0 {
		t.Error("DPC never triggered")
	}
	if recovered == 0 {
		t.Errorf("recovery never completed (triggers=%d abandoned=%d)", triggers, abandoned)
	}

	// The recovered device must be fully functional: the replayed
	// configuration routes exactly as the boot-time one did.
	res2, err := s.RunDD(2 << 20)
	if err != nil {
		t.Fatalf("post-recovery dd: %v", err)
	}
	if res2.Errors != 0 {
		t.Errorf("post-recovery dd must be clean, got %d/%d errored",
			res2.Errors, res2.Requests)
	}
	s.Eng.Run()
	if !s.Eng.Drained() {
		t.Fatal("event queue not drained")
	}
}

// TestPermanentRemovalAbandoned: a card that never comes back must
// leave the port contained (answering stray requests instantly), the
// recovery driver reporting the slot abandoned, and dd degraded but
// finished — never wedged.
func TestPermanentRemovalAbandoned(t *testing.T) {
	cfg := hotplugConfig()
	removeAt := bootTick(t, cfg) + cfg.DD.StartupOverhead + sim.Millisecond
	cfg.Faults = map[string]*fault.Plan{
		"disklink": {Hotplugs: []fault.Hotplug{{RemoveAt: removeAt}}},
	}
	s, err := Build(Validation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunDD(2 << 20)
	if err != nil {
		t.Fatalf("dd must complete on a permanently removed disk, got: %v", err)
	}
	if res.Requests != 16 {
		t.Errorf("dd must still attempt all 16 requests, got %d", res.Requests)
	}
	if res.Errors == 0 {
		t.Error("want errored requests after permanent removal")
	}
	s.Eng.Run()
	if !s.Eng.Drained() {
		t.Fatal("event queue not drained")
	}
	_, recovered, abandoned := s.Recovery.Counts()
	if abandoned == 0 {
		t.Error("recovery must abandon the slot")
	}
	if recovered != 0 {
		t.Errorf("nothing should have recovered, got %d", recovered)
	}
	if !li(t, s, "disklink").Link.Removed() {
		t.Error("link must still be removed")
	}
}

// TestSurpriseRemovalStarvedCreditsSiblingsSurvive is the deadlock
// regression the flow-control layer must never reintroduce: with a
// single credit per class on every link, a surprise-removed disk's
// stranded TLPs must not wedge its sibling behind the shared switch.
// DPC containment answers the dead sub-tree's traffic, the credits
// drain back, and the sibling's dd finishes clean.
func TestSurpriseRemovalStarvedCreditsSiblingsSurvive(t *testing.T) {
	spec := &Spec{Name: "siblings", RootPorts: []*Node{
		{
			Kind: KindSwitch, Name: "switch",
			Link: LinkSpec{Name: "uplink", Width: 4},
			Ports: []*Node{
				{Kind: KindDisk, Name: "disk0", Link: LinkSpec{Name: "d0link", Width: 1}},
				{Kind: KindDisk, Name: "disk1", Link: LinkSpec{Name: "d1link", Width: 1}},
			},
		},
	}}
	cfg := hotplugConfig()
	cfg.Credits = pcie.UniformCredits(1)

	// Boot an identical probe system to pin the removal mid-stream.
	probe, err := Build(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Boot(); err != nil {
		t.Fatal(err)
	}
	removeAt := probe.Eng.Now() + cfg.DD.StartupOverhead + 500*sim.Microsecond

	cfg.Faults = map[string]*fault.Plan{
		"d0link": {Hotplugs: []fault.Hotplug{{RemoveAt: removeAt}}}, // permanent
	}
	s, err := Build(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunDDAll(1 << 20)
	if err != nil {
		t.Fatalf("dd-all must complete with a removed sibling, got: %v", err)
	}
	if res.PerDisk[0].Errors == 0 {
		t.Error("removed disk0 must see errored requests")
	}
	if res.PerDisk[1].Errors != 0 {
		t.Errorf("sibling disk1 must run clean, got %d/%d errored",
			res.PerDisk[1].Errors, res.PerDisk[1].Requests)
	}
	if res.PerDisk[1].Requests == 0 || res.PerDisk[1].Bytes == 0 {
		t.Error("sibling disk1 made no progress")
	}
	s.Eng.Run()
	if !s.Eng.Drained() {
		t.Fatal("event queue not drained")
	}
	if !li(t, s, "d0link").Link.Removed() {
		t.Error("d0link must still be removed")
	}
	if li(t, s, "d1link").Link.Dead() {
		t.Error("sibling link must stay alive")
	}
}

func li(t *testing.T, s *System, name string) *LinkInst {
	t.Helper()
	l := s.LinkByName(name)
	if l == nil {
		t.Fatalf("no link %q", name)
	}
	return l
}

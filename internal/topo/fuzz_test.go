package topo

import "testing"

// FuzzTopoSpec fuzzes the -topo input language (both the text grammar
// and the JSON form). Properties:
//
//   - Parse never panics, whatever the input.
//   - An accepted spec is fully validated (Validate returns nil).
//   - An accepted spec's text rendering re-parses to the same bus plan,
//     so the String form is a faithful clone channel.
func FuzzTopoSpec(f *testing.F) {
	seeds := []string{
		"disk",
		"_",
		"switch:x4(disk*8)",
		"switch:x4(disk,nic)",
		"switch:x4@switch(disk@disk,_),nic@nic,_",
		"sw:x8:g3(sw:x2(td,_,disk),nic)*2",
		"sw(sw(sw(disk)))",
		" switch ( disk , _ ) ",
		"disk*0",
		"switch(disk))",
		"disk:z4",
		`{"name":"j","root_ports":[{"kind":"switch","link":{"width":4},"ports":[{"kind":"disk"},null]},{"kind":"nic"}]}`,
		`{not json`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := Parse(input)
		if err != nil {
			return
		}
		if spec == nil {
			t.Fatalf("Parse(%q) returned nil spec without error", input)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted a spec that fails Validate: %v", input, err)
		}
		p1, err := spec.Plan()
		if err != nil {
			t.Fatalf("Parse(%q) accepted a spec without a plan: %v", input, err)
		}
		text := spec.String()
		spec2, err := Parse(text)
		if err != nil {
			t.Fatalf("String() of accepted spec %q does not re-parse: %q: %v", input, text, err)
		}
		p2, err := spec2.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if p1.Buses != p2.Buses {
			t.Fatalf("bus plan changed across String round trip of %q: %d -> %d", input, p1.Buses, p2.Buses)
		}
	})
}

// Package stats is the simulator-wide metrics registry: a flat
// namespace of dot-separated hierarchical names ("pcie.disklink.up.replays")
// mapping to counters, gauges, and log2-bucketed latency histograms.
//
// The package is a leaf: it deliberately knows nothing about the event
// engine and expresses simulated time as raw uint64 ticks, so that
// internal/sim can depend on it without a cycle.
//
// Hot-path cost is a single pointer-chased add: components resolve
// their *Counter/*Gauge/*Histogram once at construction and then call
// Inc/Add/Observe, none of which allocate. Components that already
// keep their own uint64 fields can instead register a CounterFunc
// closure, which is read only at dump/sample time.
package stats

import (
	"fmt"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous level (queue depth, buffer occupancy)
// that additionally tracks its high-water mark.
type Gauge struct {
	v   int64
	max int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.Set(g.v + delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max }

// histBuckets is the number of log2 buckets: bucket 0 holds the value
// 0, bucket k (1..64) holds values in [2^(k-1), 2^k).
const histBuckets = 65

// Histogram accumulates a distribution of uint64 samples (latencies in
// ticks, sizes in bytes) into log2 buckets. Observe is allocation-free.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1):
// the inclusive upper edge of the log2 bucket containing the sample at
// rank ceil(q*count), clamped to the observed max. Returns 0 if empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for b, n := range h.buckets {
		seen += n
		if seen >= rank {
			if b == 0 {
				return 0
			}
			upper := uint64(1)<<uint(b) - 1
			if upper > h.max {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// BucketUpperBound returns the inclusive upper edge of bucket b.
func BucketUpperBound(b int) uint64 {
	if b <= 0 {
		return 0
	}
	if b >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(b) - 1
}

// merge folds another histogram's samples into h. Every aggregate —
// count, sum, min, max, the log2 buckets — is an order-independent
// multiset reduction, and quantiles are recomputed from the merged
// buckets, so merging per-domain histograms reproduces the serial
// histogram byte-for-byte.
func (h *Histogram) merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Registry holds all metrics of one simulation. It is not safe for
// concurrent use; the simulator is single-threaded by design.
//
// A registry may have child registries attached (the parallel engine's
// per-domain registries). Children only affect the read surface: every
// dump and lookup then operates on a merged view aggregating parent
// and children, constructed so that the merged output is byte-identical
// to what a single shared registry would have produced.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() uint64

	children []*Registry

	sampler *Sampler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() uint64),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Resolve once at construction; Inc on the hot path.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFresh(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFresh(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFresh(name, "histogram")
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// CounterFunc registers a closure-backed counter: fn is evaluated at
// dump and sample time only, so components that already maintain their
// own uint64 fields can expose them with zero hot-path change.
// Re-registering a name replaces the closure (components rebuilt
// within one engine keep the latest).
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	if _, ok := r.funcs[name]; !ok {
		r.checkFresh(name, "counterfunc")
	}
	r.funcs[name] = fn
}

func (r *Registry) checkFresh(name, kind string) {
	for k, m := range map[string]bool{
		"counter":     r.counters[name] != nil,
		"gauge":       r.gauges[name] != nil,
		"histogram":   r.hists[name] != nil,
		"counterfunc": r.funcs[name] != nil,
	} {
		if m && k != kind {
			panic(fmt.Sprintf("stats: %q already registered as %s, requested as %s", name, k, kind))
		}
	}
}

// Attach adds child registries to this registry's read surface. The
// parallel topology builder attaches every non-root domain's registry
// to the root's, so dumps and lookups see one simulator-wide view.
// Attach before running; writers keep using their own registry.
func (r *Registry) Attach(children ...*Registry) {
	for _, c := range children {
		if c == nil || c == r {
			continue
		}
		r.children = append(r.children, c)
	}
}

// merged returns r itself when no children are attached (the serial
// fast path), or a flattened aggregate copy: counters and counter-funcs
// sum by name, gauges sum their level and take the largest high-water
// mark, histograms merge bucket-wise. Closure-backed counters are
// materialized as plain counters, which is indistinguishable at read
// time. The copy shares the root's sampler (children never have one).
func (r *Registry) merged() *Registry {
	if len(r.children) == 0 {
		return r
	}
	m := NewRegistry()
	m.sampler = r.sampler
	for _, src := range append([]*Registry{r}, r.children...) {
		for n, c := range src.counters {
			m.Counter(n).Add(c.v)
		}
		for n, fn := range src.funcs {
			m.Counter(n).Add(fn())
		}
		for n, g := range src.gauges {
			mg := m.Gauge(n)
			mg.v += g.v
			if g.max > mg.max {
				mg.max = g.max
			}
		}
		for n, h := range src.hists {
			m.Histogram(n).merge(h)
		}
	}
	return m
}

// CounterNames returns all counter and counter-func names, sorted.
func (r *Registry) CounterNames() []string {
	r = r.merged()
	names := make([]string, 0, len(r.counters)+len(r.funcs))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns all histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	r = r.merged()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns all gauge names, sorted.
func (r *Registry) GaugeNames() []string {
	r = r.merged()
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CounterValue returns the value of the named counter or counter-func
// (false if the name is unknown). With children attached, the value is
// the sum across all domains.
func (r *Registry) CounterValue(name string) (uint64, bool) {
	var total uint64
	var found bool
	for _, src := range r.views() {
		if c, ok := src.counters[name]; ok {
			total += c.v
			found = true
		}
		if fn, ok := src.funcs[name]; ok {
			total += fn()
			found = true
		}
	}
	return total, found
}

// GaugeValue returns the value and high-water mark of the named gauge:
// with children attached, the summed level and the largest mark.
func (r *Registry) GaugeValue(name string) (v, max int64, ok bool) {
	for _, src := range r.views() {
		if g, found := src.gauges[name]; found {
			v += g.v
			if !ok || g.max > max {
				max = g.max
			}
			ok = true
		}
	}
	return v, max, ok
}

// FindHistogram returns the named histogram without creating it. With
// children attached the result is a merged copy; callers treat it as
// read-only either way.
func (r *Registry) FindHistogram(name string) *Histogram {
	if len(r.children) == 0 {
		return r.hists[name]
	}
	var m *Histogram
	for _, src := range r.views() {
		if h, ok := src.hists[name]; ok {
			if m == nil {
				m = &Histogram{}
			}
			m.merge(h)
		}
	}
	return m
}

// views returns the registries a merged read spans: just r in the
// serial case, r plus every attached child otherwise.
func (r *Registry) views() []*Registry {
	if len(r.children) == 0 {
		return []*Registry{r}
	}
	return append([]*Registry{r}, r.children...)
}

// Package stats is the simulator-wide metrics registry: a flat
// namespace of dot-separated hierarchical names ("pcie.disklink.up.replays")
// mapping to counters, gauges, and log2-bucketed latency histograms.
//
// The package is a leaf: it deliberately knows nothing about the event
// engine and expresses simulated time as raw uint64 ticks, so that
// internal/sim can depend on it without a cycle.
//
// Hot-path cost is a single pointer-chased add: components resolve
// their *Counter/*Gauge/*Histogram once at construction and then call
// Inc/Add/Observe, none of which allocate. Components that already
// keep their own uint64 fields can instead register a CounterFunc
// closure, which is read only at dump/sample time.
package stats

import (
	"fmt"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous level (queue depth, buffer occupancy)
// that additionally tracks its high-water mark.
type Gauge struct {
	v   int64
	max int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.Set(g.v + delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max }

// histBuckets is the number of log2 buckets: bucket 0 holds the value
// 0, bucket k (1..64) holds values in [2^(k-1), 2^k).
const histBuckets = 65

// Histogram accumulates a distribution of uint64 samples (latencies in
// ticks, sizes in bytes) into log2 buckets. Observe is allocation-free.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1):
// the inclusive upper edge of the log2 bucket containing the sample at
// rank ceil(q*count), clamped to the observed max. Returns 0 if empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for b, n := range h.buckets {
		seen += n
		if seen >= rank {
			if b == 0 {
				return 0
			}
			upper := uint64(1)<<uint(b) - 1
			if upper > h.max {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// BucketUpperBound returns the inclusive upper edge of bucket b.
func BucketUpperBound(b int) uint64 {
	if b <= 0 {
		return 0
	}
	if b >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(b) - 1
}

// Registry holds all metrics of one simulation. It is not safe for
// concurrent use; the simulator is single-threaded by design.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() uint64

	sampler *Sampler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() uint64),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Resolve once at construction; Inc on the hot path.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFresh(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFresh(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFresh(name, "histogram")
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// CounterFunc registers a closure-backed counter: fn is evaluated at
// dump and sample time only, so components that already maintain their
// own uint64 fields can expose them with zero hot-path change.
// Re-registering a name replaces the closure (components rebuilt
// within one engine keep the latest).
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	if _, ok := r.funcs[name]; !ok {
		r.checkFresh(name, "counterfunc")
	}
	r.funcs[name] = fn
}

func (r *Registry) checkFresh(name, kind string) {
	for k, m := range map[string]bool{
		"counter":     r.counters[name] != nil,
		"gauge":       r.gauges[name] != nil,
		"histogram":   r.hists[name] != nil,
		"counterfunc": r.funcs[name] != nil,
	} {
		if m && k != kind {
			panic(fmt.Sprintf("stats: %q already registered as %s, requested as %s", name, k, kind))
		}
	}
}

// CounterNames returns all counter and counter-func names, sorted.
func (r *Registry) CounterNames() []string {
	names := make([]string, 0, len(r.counters)+len(r.funcs))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns all histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns all gauge names, sorted.
func (r *Registry) GaugeNames() []string {
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CounterValue returns the value of the named counter or counter-func
// (false if the name is unknown).
func (r *Registry) CounterValue(name string) (uint64, bool) {
	if c, ok := r.counters[name]; ok {
		return c.v, true
	}
	if fn, ok := r.funcs[name]; ok {
		return fn(), true
	}
	return 0, false
}

// GaugeValue returns the value and high-water mark of the named gauge.
func (r *Registry) GaugeValue(name string) (v, max int64, ok bool) {
	if g, ok := r.gauges[name]; ok {
		return g.v, g.max, true
	}
	return 0, 0, false
}

// FindHistogram returns the named histogram without creating it.
func (r *Registry) FindHistogram(name string) *Histogram {
	return r.hists[name]
}

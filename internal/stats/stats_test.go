package stats

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got, _ := r.CounterValue("a.b"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("q.depth")
	g.Set(3)
	g.Add(4)
	g.Add(-6)
	if g.Value() != 1 || g.Max() != 7 {
		t.Fatalf("gauge = %d max %d, want 1 max 7", g.Value(), g.Max())
	}
}

func TestCounterFunc(t *testing.T) {
	r := NewRegistry()
	var raw uint64 = 10
	r.CounterFunc("link.replays", func() uint64 { return raw })
	raw = 42
	if got, _ := r.CounterValue("link.replays"); got != 42 {
		t.Fatalf("counterfunc = %d, want 42", got)
	}
}

func TestKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering the same name under two kinds did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Histogram("x")
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Bucket 0 holds the value 0; bucket k>=1 holds [2^(k-1), 2^k).
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 62, 63}, {^uint64(0), 64},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		for b, n := range h.buckets {
			if n > 0 && b != c.bucket {
				t.Errorf("Observe(%d) landed in bucket %d, want %d", c.v, b, c.bucket)
			}
		}
	}
	if BucketUpperBound(0) != 0 || BucketUpperBound(1) != 1 || BucketUpperBound(10) != 1023 {
		t.Fatalf("BucketUpperBound wrong: %d %d %d",
			BucketUpperBound(0), BucketUpperBound(1), BucketUpperBound(10))
	}
	if BucketUpperBound(64) != ^uint64(0) {
		t.Fatal("BucketUpperBound(64) must saturate")
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean = %v, want 50.5", h.Mean())
	}
	// Sample 50 (rank 50) lies in bucket [32,64); the log2 upper bound is 63.
	if q := h.Quantile(0.50); q != 63 {
		t.Fatalf("p50 = %d, want 63", q)
	}
	// p99 and p100 land in the top bucket, clamped to the observed max.
	if q := h.Quantile(0.99); q != 100 {
		t.Fatalf("p99 = %d, want 100 (clamped to max)", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("p100 = %d, want 100", q)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	h.Observe(5)
	if q := h.Quantile(0.5); q != 5 {
		t.Fatalf("single-sample p50 = %d, want 5 (clamped to max)", q)
	}
}

func fillRegistry(r *Registry) {
	r.Counter("pcie.link0.up.replays").Add(3)
	r.Counter("xbar.membus.reqs").Add(100)
	var backing uint64 = 9
	r.CounterFunc("aer.uncorrectable", func() uint64 { return backing })
	r.Gauge("pcie.link0.up.replaybuf").Set(2)
	h := r.Histogram("dma.chunk.latency")
	for v := uint64(100); v < 4200; v += 100 {
		h.Observe(v)
	}
	r.NewSampler(1000)
	r.Sample(1000)
	r.Counter("pcie.link0.up.replays").Inc()
	r.Sample(2000)
}

func TestDumpDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	ra, rb := NewRegistry(), NewRegistry()
	fillRegistry(ra)
	fillRegistry(rb)
	if err := ra.WriteJSON(&a, 5000); err != nil {
		t.Fatal(err)
	}
	if err := rb.WriteJSON(&b, 5000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical registries dumped differently:\n%s\n----\n%s", a.String(), b.String())
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	for _, key := range []string{"counters", "histograms", "series"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("dump missing %q section", key)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRegistry()
	fillRegistry(r)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf, 5000); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"kind,name,field,value",
		"counter,pcie.link0.up.replays,value,4",
		"counter,aer.uncorrectable,value,9",
		"histogram,dma.chunk.latency,count,41",
		"meta,tick,value,5000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	fillRegistry(r)
	var buf bytes.Buffer
	if err := r.WriteText(&buf, 5000); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pcie.link0.up.replays", "dma.chunk.latency", "p95="} {
		if !strings.Contains(out, want) {
			t.Errorf("text summary missing %q:\n%s", want, out)
		}
	}
}

func TestSamplerSeries(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	r.NewSampler(10)
	c.Add(1)
	r.Sample(10)
	c.Add(2)
	r.Sample(20)
	s := r.Sampler()
	if s.Len() != 2 {
		t.Fatalf("sampler len = %d, want 2", s.Len())
	}
	got := r.snapshot(20).Series.Values["c"]
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("series = %v, want [1 3]", got)
	}
}

func TestHotPathAllocations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(5)
		g.Add(-1)
		h.Observe(1234)
	}); n != 0 {
		t.Fatalf("hot-path metric updates allocate %v times per run, want 0", n)
	}
}

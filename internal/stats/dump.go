package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// histDump is the serialized form of one histogram. Buckets are an
// ordered array (not a map) so upper bounds sort numerically.
type histDump struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Min     uint64       `json:"min"`
	Max     uint64       `json:"max"`
	Mean    float64      `json:"mean"`
	P50     uint64       `json:"p50"`
	P95     uint64       `json:"p95"`
	P99     uint64       `json:"p99"`
	Buckets []bucketDump `json:"buckets,omitempty"`
}

type bucketDump struct {
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

type gaugeDump struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

type seriesDump struct {
	Interval uint64              `json:"interval"`
	Ticks    []uint64            `json:"ticks"`
	Values   map[string][]uint64 `json:"values"`
}

type registryDump struct {
	Tick       uint64               `json:"tick"`
	Counters   map[string]uint64    `json:"counters"`
	Gauges     map[string]gaugeDump `json:"gauges,omitempty"`
	Histograms map[string]histDump  `json:"histograms,omitempty"`
	Series     *seriesDump          `json:"series,omitempty"`
}

func (h *Histogram) dump() histDump {
	d := histDump{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.min,
		Max:   h.max,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for b, n := range h.buckets {
		if n != 0 {
			d.Buckets = append(d.Buckets, bucketDump{BucketUpperBound(b), n})
		}
	}
	return d
}

func (r *Registry) snapshot(tick uint64) registryDump {
	d := registryDump{
		Tick:     tick,
		Counters: make(map[string]uint64, len(r.counters)+len(r.funcs)),
	}
	for n, c := range r.counters {
		d.Counters[n] = c.v
	}
	for n, fn := range r.funcs {
		d.Counters[n] = fn()
	}
	if len(r.gauges) > 0 {
		d.Gauges = make(map[string]gaugeDump, len(r.gauges))
		for n, g := range r.gauges {
			d.Gauges[n] = gaugeDump{g.v, g.max}
		}
	}
	if len(r.hists) > 0 {
		d.Histograms = make(map[string]histDump, len(r.hists))
		for n, h := range r.hists {
			d.Histograms[n] = h.dump()
		}
	}
	if s := r.sampler; s != nil && len(s.ticks) > 0 {
		d.Series = &seriesDump{Interval: s.interval, Ticks: s.ticks, Values: s.series}
	}
	return d
}

// WriteJSON emits the whole registry as indented JSON. Map keys are
// sorted by encoding/json, so two identical runs produce byte-identical
// output.
func (r *Registry) WriteJSON(w io.Writer, tick uint64) error {
	b, err := json.MarshalIndent(r.merged().snapshot(tick), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteCSV emits one "kind,name,field,value" row per scalar: counters,
// gauge value/max, and histogram summary fields. Rows are sorted.
func (r *Registry) WriteCSV(w io.Writer, tick uint64) error {
	r = r.merged()
	var rows []string
	for n, c := range r.counters {
		rows = append(rows, fmt.Sprintf("counter,%s,value,%d", n, c.v))
	}
	for n, fn := range r.funcs {
		rows = append(rows, fmt.Sprintf("counter,%s,value,%d", n, fn()))
	}
	for n, g := range r.gauges {
		rows = append(rows, fmt.Sprintf("gauge,%s,value,%d", n, g.v))
		rows = append(rows, fmt.Sprintf("gauge,%s,max,%d", n, g.max))
	}
	for n, h := range r.hists {
		rows = append(rows,
			fmt.Sprintf("histogram,%s,count,%d", n, h.count),
			fmt.Sprintf("histogram,%s,sum,%d", n, h.sum),
			fmt.Sprintf("histogram,%s,min,%d", n, h.min),
			fmt.Sprintf("histogram,%s,max,%d", n, h.max),
			fmt.Sprintf("histogram,%s,p50,%d", n, h.Quantile(0.50)),
			fmt.Sprintf("histogram,%s,p95,%d", n, h.Quantile(0.95)),
			fmt.Sprintf("histogram,%s,p99,%d", n, h.Quantile(0.99)))
	}
	sort.Strings(rows)
	if _, err := fmt.Fprintf(w, "kind,name,field,value\n"); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	// The sampler time series, one row per (metric, sample): metrics
	// sorted by name, samples in grid order (sorting the rendered rows
	// would order ticks lexically).
	if s := r.sampler; s != nil && len(s.ticks) > 0 {
		names := make([]string, 0, len(s.series))
		for n := range s.series {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			vals := s.series[n]
			for i, t := range s.ticks {
				if i >= len(vals) {
					break
				}
				if _, err := fmt.Fprintf(w, "series,%s,%d,%d\n", n, t, vals[i]); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprintf(w, "meta,tick,value,%d\n", tick)
	return err
}

// WriteText emits a human-readable summary: non-zero counters, gauges
// with high-water marks, and histogram quantiles, sorted by name.
// Histogram quantiles are printed in the unit recorded (ticks = ps for
// latencies).
func (r *Registry) WriteText(w io.Writer, tick uint64) error {
	r = r.merged()
	if _, err := fmt.Fprintf(w, "stats @ tick %d\n", tick); err != nil {
		return err
	}
	for _, n := range r.CounterNames() {
		v, _ := r.CounterValue(n)
		if v == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %-44s %12d\n", n, v); err != nil {
			return err
		}
	}
	for _, n := range r.GaugeNames() {
		v, max, _ := r.GaugeValue(n)
		if v == 0 && max == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %-44s %12d (max %d)\n", n, v, max); err != nil {
			return err
		}
	}
	for _, n := range r.HistogramNames() {
		h := r.hists[n]
		if h.count == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %-44s n=%d mean=%.0f p50=%d p95=%d p99=%d max=%d\n",
			n, h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.max); err != nil {
			return err
		}
	}
	return nil
}

package stats

import (
	"encoding/json"
	"io"
)

// Sampler records periodic snapshots of selected counters and gauges
// so a run's stats dump carries time series, not only end-of-run
// totals. The engine drives it: sim.Engine.SampleEvery calls Sample
// with the scheduled tick each time simulated time crosses a sampling
// boundary, which keeps two identical runs byte-identical (samples
// land on the grid, never on wall-clock or event jitter).
type Sampler struct {
	interval uint64
	ticks    []uint64
	series   map[string][]uint64
	stream   io.Writer
	streamEr error
}

// NewSampler attaches a sampler with the given tick interval to the
// registry and returns it. Subsequent calls replace the sampler.
func (r *Registry) NewSampler(interval uint64) *Sampler {
	s := &Sampler{
		interval: interval,
		series:   make(map[string][]uint64),
	}
	r.sampler = s
	return s
}

// Sampler returns the attached sampler, nil if none.
func (r *Registry) Sampler() *Sampler { return r.sampler }

// Interval returns the sampling interval in ticks.
func (s *Sampler) Interval() uint64 { return s.interval }

// StreamTo mirrors every subsequent sample to w as one compact NDJSON
// line {"tick":...,"values":{...}} — the incremental telemetry feed a
// consumer can tail while the run is still going, instead of waiting
// for the end-of-run dump. Write errors are sticky: streaming stops
// and StreamErr reports the first one. nil detaches the stream.
func (s *Sampler) StreamTo(w io.Writer) { s.stream = w }

// StreamErr returns the first streaming write error, nil if none.
func (s *Sampler) StreamErr() error { return s.streamEr }

// streamSample is the NDJSON wire form of one snapshot. Map keys are
// sorted by encoding/json, so the feed is deterministic.
type streamSample struct {
	Tick   uint64            `json:"tick"`
	Values map[string]uint64 `json:"values"`
}

// Sample snapshots every counter, counter-func, and gauge in the
// registry at the given tick.
func (r *Registry) Sample(tick uint64) {
	s := r.sampler
	if s == nil {
		return
	}
	s.ticks = append(s.ticks, tick)
	for n, c := range r.counters {
		s.series[n] = append(s.series[n], c.v)
	}
	for n, fn := range r.funcs {
		s.series[n] = append(s.series[n], fn())
	}
	for n, g := range r.gauges {
		s.series[n] = append(s.series[n], uint64(g.v))
	}
	if s.stream != nil && s.streamEr == nil {
		out := streamSample{Tick: tick, Values: make(map[string]uint64, len(s.series))}
		for n, vals := range s.series {
			out.Values[n] = vals[len(vals)-1]
		}
		b, err := json.Marshal(out)
		if err == nil {
			b = append(b, '\n')
			_, err = s.stream.Write(b)
		}
		if err != nil {
			s.streamEr = err
			s.stream = nil
		}
	}
}

// Len returns the number of samples taken.
func (s *Sampler) Len() int { return len(s.ticks) }

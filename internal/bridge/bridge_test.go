package bridge

import (
	"testing"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
	"pciesim/internal/testdev"
)

func TestBridgeForwardsWithDelay(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, "br", Config{Delay: 25 * sim.Nanosecond, Ranges: mem.RangeList{mem.Span(0, 1<<30)}})
	req := testdev.NewRequester(eng, "cpu")
	dev := testdev.NewResponder(eng, "dev", mem.RangeList{mem.Span(0, 1<<30)}, 100*sim.Nanosecond, 0)
	mem.Connect(req.Port(), b.SlavePort())
	mem.Connect(b.MasterPort(), dev.Port())
	req.Read(0x1000, 4)
	eng.Run()
	// 25ns forward + 100ns device + 25ns back.
	if got := req.Completions[0].Latency(); got != 150*sim.Nanosecond {
		t.Errorf("round trip %v, want 150ns", got)
	}
}

func TestBridgeAdvertisesConfiguredRanges(t *testing.T) {
	eng := sim.NewEngine()
	want := mem.RangeList{mem.Span(0x2f000000, 0x80000000)}
	b := New(eng, "br", Config{Ranges: want})
	if got := b.SlavePort().Ranges(); len(got) != 1 || got[0] != want[0] {
		t.Errorf("Ranges = %v, want %v", got, want)
	}
}

func TestBridgeBoundedQueuesBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, "br", Config{
		Delay:     10 * sim.Nanosecond,
		ReqDepth:  2,
		RespDepth: 2,
		Ranges:    mem.RangeList{mem.Span(0, 1<<20)},
	})
	req := testdev.NewRequester(eng, "cpu")
	dev := testdev.NewResponder(eng, "dev", mem.RangeList{mem.Span(0, 1<<20)}, 500*sim.Nanosecond, 0)
	dev.RefuseRequests = 4
	mem.Connect(req.Port(), b.SlavePort())
	mem.Connect(b.MasterPort(), dev.Port())
	for i := 0; i < 10; i++ {
		req.Write(uint64(i*64), 64)
	}
	eng.Run()
	if len(req.Completions) != 10 {
		t.Fatalf("%d completions, want 10", len(req.Completions))
	}
	if st := b.QueueStats(); st.MaxDepth > 2 {
		t.Errorf("request queue exceeded its bound: depth %d", st.MaxDepth)
	}
	// Refusals may or may not occur depending on timing; depth is the invariant.
}

func TestBridgeResponseRefusalRetried(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, "br", Config{Delay: sim.Nanosecond, RespDepth: 1, Ranges: mem.RangeList{mem.Span(0, 1<<20)}})
	req := testdev.NewRequester(eng, "cpu")
	req.RefuseResponses = 3
	dev := testdev.NewResponder(eng, "dev", mem.RangeList{mem.Span(0, 1<<20)}, sim.Nanosecond, 0)
	mem.Connect(req.Port(), b.SlavePort())
	mem.Connect(b.MasterPort(), dev.Port())
	for i := 0; i < 6; i++ {
		req.Read(uint64(i*4), 4)
	}
	eng.Run()
	if len(req.Completions) != 6 {
		t.Fatalf("%d completions, want 6", len(req.Completions))
	}
}

func TestBridgePreservesOrder(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, "br", Config{Delay: 5 * sim.Nanosecond, ReqDepth: 4, Ranges: mem.RangeList{mem.Span(0, 1<<20)}})
	req := testdev.NewRequester(eng, "cpu")
	dev := testdev.NewResponder(eng, "dev", mem.RangeList{mem.Span(0, 1<<20)}, 10*sim.Nanosecond, 0)
	mem.Connect(req.Port(), b.SlavePort())
	mem.Connect(b.MasterPort(), dev.Port())
	for i := 0; i < 16; i++ {
		req.Write(uint64(i)*64, 64)
	}
	eng.Run()
	for i, p := range dev.Received {
		if p.Addr != uint64(i)*64 {
			t.Fatalf("packet %d has addr %#x, want %#x (order broken)", i, p.Addr, uint64(i)*64)
		}
	}
}

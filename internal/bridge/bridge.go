// Package bridge implements the gem5 bridge that connects the on-chip
// MemBus to the off-chip IOBus (§III): a slave device on one crossbar
// and a master on the other, with bounded request and response queues
// and a fixed forwarding delay in each direction. The paper builds its
// root complex and switch on exactly this component; here it also backs
// them (see internal/pcie).
package bridge

import (
	"pciesim/internal/mem"
	"pciesim/internal/sim"
)

// Config parameterizes a bridge.
type Config struct {
	// Delay is the forwarding latency applied in both directions.
	Delay sim.Tick
	// ReqDepth and RespDepth bound the two queues; 0 means unbounded.
	ReqDepth  int
	RespDepth int
	// Ranges is the address window the bridge accepts on its slave side
	// and forwards to its master side.
	Ranges mem.RangeList
}

// Bridge forwards requests from its slave port to its master port and
// responses the other way.
type Bridge struct {
	eng  *sim.Engine
	name string
	cfg  Config

	slave  *mem.SlavePort
	master *mem.MasterPort

	reqQ  *mem.SendQueue
	respQ *mem.SendQueue

	reqRetryPending  bool
	respRetryPending bool
}

// New creates a bridge.
func New(eng *sim.Engine, name string, cfg Config) *Bridge {
	b := &Bridge{eng: eng, name: name, cfg: cfg}
	b.slave = mem.NewSlavePort(name+".slave", (*bridgeSlave)(b))
	b.master = mem.NewMasterPort(name+".master", (*bridgeMaster)(b))
	b.reqQ = mem.NewSendQueue(eng, name+".reqq", cfg.ReqDepth, func(p *mem.Packet) bool {
		return b.master.SendTimingReq(p)
	})
	b.reqQ.Segment("bridge-q")
	b.reqQ.OnFree(func() {
		if b.reqRetryPending {
			b.reqRetryPending = false
			b.slave.SendReqRetry()
		}
	})
	b.respQ = mem.NewSendQueue(eng, name+".respq", cfg.RespDepth, func(p *mem.Packet) bool {
		return b.slave.SendTimingResp(p)
	})
	b.respQ.Segment("bridge-q")
	b.respQ.OnFree(func() {
		if b.respRetryPending {
			b.respRetryPending = false
			b.master.SendRespRetry()
		}
	})
	return b
}

// SlavePort returns the port facing the requestors' crossbar.
func (b *Bridge) SlavePort() *mem.SlavePort { return b.slave }

// MasterPort returns the port facing the completers' crossbar.
func (b *Bridge) MasterPort() *mem.MasterPort { return b.master }

// QueueStats exposes the request-queue counters for tests and reports.
func (b *Bridge) QueueStats() mem.QueueStats { return b.reqQ.Stats() }

// bridgeSlave is the SlaveOwner face of the bridge.
type bridgeSlave Bridge

func (b *bridgeSlave) br() *Bridge { return (*Bridge)(b) }

func (b *bridgeSlave) RecvTimingReq(_ *mem.SlavePort, pkt *mem.Packet) bool {
	br := b.br()
	if br.reqQ.Full() {
		br.reqRetryPending = true
		return false
	}
	br.reqQ.Push(pkt, br.eng.Now()+br.cfg.Delay)
	return true
}

func (b *bridgeSlave) RecvRespRetry(*mem.SlavePort) { b.br().respQ.RetryReceived() }

func (b *bridgeSlave) AddrRanges(*mem.SlavePort) mem.RangeList { return b.br().cfg.Ranges }

// bridgeMaster is the MasterOwner face of the bridge.
type bridgeMaster Bridge

func (b *bridgeMaster) br() *Bridge { return (*Bridge)(b) }

func (b *bridgeMaster) RecvTimingResp(_ *mem.MasterPort, pkt *mem.Packet) bool {
	br := b.br()
	if br.respQ.Full() {
		br.respRetryPending = true
		return false
	}
	br.respQ.Push(pkt, br.eng.Now()+br.cfg.Delay)
	return true
}

func (b *bridgeMaster) RecvReqRetry(*mem.MasterPort) { b.br().reqQ.RetryReceived() }

package pcie

import (
	"testing"
	"testing/quick"

	"pciesim/internal/mem"
	"pciesim/internal/pci"
	"pciesim/internal/sim"
	"pciesim/internal/testdev"
)

// TestAckHasTxPriorityOverTLPs checks §V-C's priority order: "(1) ACK
// DLLP; (2) Retransmitted pcie-pkts; (3) pcie-pkts containing TLPs".
// White box: load one interface with a pending ACK and a fresh TLP and
// observe which leaves first.
func TestAckHasTxPriorityOverTLPs(t *testing.T) {
	r := newLinkRig(DefaultLinkConfig(), 0, 0)
	eng, l := r.eng, r.link
	up := l.Up()

	// A fresh TLP waiting to go...
	if !up.admit(mem.NewPacket(mem.ReadReq, 0x1000, 4)) {
		t.Fatal("admit failed")
	}
	// ...and a pending ACK, both queued before anything transmits.
	up.ackPend = true
	up.lastDelivered = 7
	eng.Deschedule(up.txEv)
	up.scheduleTx()

	var order []PktKind
	// Intercept deliveries at the peer by observing its stats stream.
	prevAcks, prevTLPs := uint64(0), uint64(0)
	for i := 0; i < 20 && len(order) < 2; i++ {
		eng.RunUntil(eng.Now() + 50*sim.Nanosecond)
		st := l.Down().Stats()
		if st.AcksRx+st.NaksRx > prevAcks {
			order = append(order, KindAck)
			prevAcks = st.AcksRx + st.NaksRx
		}
		// Receiving a TLP shows up as either delivered or discarded.
		if st.TLPsDelivered+st.Discarded+st.DeliveryRefuse > prevTLPs {
			order = append(order, KindTLP)
			prevTLPs = st.TLPsDelivered + st.Discarded + st.DeliveryRefuse
		}
	}
	if len(order) < 2 || order[0] != KindAck {
		t.Fatalf("transmission order %v, want ACK before TLP", order)
	}
}

// TestReplayPriorityOverFresh: queued retransmissions go out before
// fresh TLPs.
func TestReplayPriorityOverFresh(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultLinkConfig()
	cfg.ReplayBufferSize = 8
	r := newLinkRig(cfg, 0, 0)
	r.resp.RefuseRequests = 1 // first delivery refused -> timeout -> replay
	for i := 0; i < 3; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	eng = r.eng
	eng.Run()
	st := r.link.Up().Stats()
	if st.ReplaysTx == 0 {
		t.Fatal("expected at least one replay")
	}
	// In-order delivery proves replays preceded queued fresh TLPs.
	for i, p := range r.resp.Received {
		if p.Addr != uint64(i)*64 {
			t.Fatalf("order broken at %d", i)
		}
	}
}

// TestLinkStatsConservation: accepted = delivered + in-flight for a
// drained run, and ACK counts match across the two interfaces.
func TestLinkStatsConservation(t *testing.T) {
	cfg := DefaultLinkConfig()
	r := newLinkRig(cfg, 10*sim.Nanosecond, 0)
	const n = 40
	for i := 0; i < n; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	upTx, downRx := r.link.Up().Stats(), r.link.Down().Stats()
	if upTx.TLPsAccepted != n {
		t.Errorf("accepted %d", upTx.TLPsAccepted)
	}
	if downRx.TLPsDelivered != n {
		t.Errorf("delivered %d", downRx.TLPsDelivered)
	}
	if upTx.AcksRx != downRx.AcksTx {
		t.Errorf("ACK conservation broken: %d sent, %d received", downRx.AcksTx, upTx.AcksRx)
	}
	// Responses flow back on the other pair.
	if r.link.Down().Stats().TLPsAccepted != n {
		t.Errorf("response direction accepted %d", r.link.Down().Stats().TLPsAccepted)
	}
}

// TestRouterResponseRoutingProperty: for any programmed (sec, sub)
// windows and any packet bus number, routeResponse picks the unique
// claiming port or the upstream port.
func TestRouterResponseRoutingProperty(t *testing.T) {
	f := func(sec1, span1, sec2raw, span2, bus uint8) bool {
		eng := sim.NewEngine()
		host := pci.NewHost(eng, "h", pci.HostConfig{ECAMWindow: mem.Range(0x30000000, 256<<20)})
		rc := NewRootComplex(eng, "rc", host, RootComplexConfig{NumRootPorts: 2})
		// Build non-overlapping bus ranges.
		if sec1 == 0 {
			sec1 = 1
		}
		sub1 := sec1 + span1%8
		sec2 := sub1 + 1 + sec2raw%8
		if sec2 < sub1 {
			return true // overflowed uint8: skip
		}
		sub2 := sec2 + span2%8
		if sub2 < sec2 {
			return true
		}
		program := func(p *Port, sec, sub uint8) {
			v := p.VP2P()
			v.ConfigWrite(pci.RegSecondaryBus, 1, uint32(sec))
			v.ConfigWrite(pci.RegSubordinateBus, 1, uint32(sub))
		}
		program(rc.RootPort(0), sec1, sub1)
		program(rc.RootPort(1), sec2, sub2)

		pkt := mem.NewPacket(mem.ReadReq, 0, 4).MakeResponse()
		pkt.BusNum = int(bus)
		dst := rc.router.routeResponse(rc.ports[0], pkt)
		switch {
		case bus >= sec1 && bus <= sub1:
			return dst == rc.RootPort(0)
		case bus >= sec2 && bus <= sub2:
			return dst == rc.RootPort(1)
		default:
			return dst == rc.ports[0] // upstream
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRouterRequestRoutingTotality: every address either routes to
// exactly one claiming port or master-aborts; nothing is silently
// dropped.
func TestRouterRequestRoutingTotality(t *testing.T) {
	eng := sim.NewEngine()
	host := pci.NewHost(eng, "h", pci.HostConfig{ECAMWindow: mem.Range(0x30000000, 256<<20)})
	rc := NewRootComplex(eng, "rc", host, RootComplexConfig{NumRootPorts: 2})
	programBridge(rc.RootPort(0).VP2P(), 0, 1, 1, 0x40000000, 0x400fffff)
	programBridge(rc.RootPort(1).VP2P(), 0, 2, 2, 0x40100000, 0x401fffff)
	cpu := testdev.NewRequester(eng, "cpu")
	mem.Connect(cpu.Port(), rc.UpstreamSlave())
	d0 := testdev.NewResponder(eng, "d0", nil, 0, 0)
	mem.Connect(rc.RootPort(0).MasterPort(), d0.Port())
	d1 := testdev.NewResponder(eng, "d1", nil, 0, 0)
	mem.Connect(rc.RootPort(1).MasterPort(), d1.Port())

	const n = 64
	for i := 0; i < n; i++ {
		cpu.Read(0x40000000+uint64(i)*0x10000, 4)
	}
	eng.Run()
	if len(cpu.Completions) != n {
		t.Fatalf("%d completions, want %d: every request must complete", len(cpu.Completions), n)
	}
	routed := uint64(len(d0.Received) + len(d1.Received))
	if routed+rc.Aborts() != n {
		t.Errorf("routed %d + aborts %d != %d", routed, rc.Aborts(), n)
	}
}

// TestSwitchStoreAndForward: the switch must receive a whole packet
// before forwarding — its egress cannot begin before ingress wire time
// completes plus the switch latency.
func TestSwitchStoreAndForward(t *testing.T) {
	eng := sim.NewEngine()
	host := pci.NewHost(eng, "h", pci.HostConfig{ECAMWindow: mem.Range(0x30000000, 256<<20)})
	swCfg := SwitchConfig{NumDownstreamPorts: 1, UpstreamBus: 1, InternalBus: 2}
	swCfg.Latency = 150 * sim.Nanosecond
	sw := NewSwitch(eng, "sw", host, swCfg)
	programBridge(sw.UpstreamPort().VP2P(), 0, 1, 2, 0x40000000, 0x400fffff)
	programBridge(sw.DownstreamPort(0).VP2P(), 2, 3, 3, 0x40000000, 0x400fffff)

	inLink := NewLink(eng, "in", LinkConfig{Gen: Gen2, Width: 1})
	mem.Connect(inLink.Down().MasterPort(), sw.UpstreamPort().SlavePort())
	mem.Connect(sw.UpstreamPort().MasterPort(), inLink.Down().SlavePort())
	outLink := NewLink(eng, "out", LinkConfig{Gen: Gen2, Width: 1})
	sw.DownstreamPort(0).ConnectLink(outLink)

	src := testdev.NewRequester(eng, "src")
	mem.Connect(src.Port(), inLink.Up().SlavePort())
	dst := testdev.NewResponder(eng, "dst", nil, 0, 0)
	mem.Connect(outLink.Down().MasterPort(), dst.Port())

	var arrival sim.Tick
	dst.RefuseRequests = 0
	src.Write(0x40000000, 64)
	eng.Run()
	arrival = src.Completions[0].Done
	// Floor: 168ns ingress wire + 150ns switch + 168ns egress wire for
	// the request, plus 20B response TLPs back (40ns each) + 150ns:
	// anything faster would mean cut-through.
	floor := sim.Tick((168 + 150 + 168 + 40 + 150 + 40)) * sim.Nanosecond
	if arrival < floor {
		t.Errorf("round trip %v below store-and-forward floor %v", arrival, floor)
	}
}

// TestUpstreamVP2PWindowUnion (§V-B contrast): the root complex routes
// by the union of its VP2P windows; the switch gates on the upstream
// VP2P window first. An address inside a downstream window but outside
// the upstream window must abort at the switch.
func TestUpstreamVP2PWindowUnion(t *testing.T) {
	eng, sw, up, d0, _ := newSwitchRig(t, SwitchConfig{})
	// Shrink the upstream window below downstream port 0's window.
	programBridge(sw.UpstreamPort().VP2P(), 0, 1, 3, 0x40100000, 0x401fffff)
	buf := make([]byte, 4)
	up.ReadData(0x40000100, buf) // inside down0's window, outside upstream's
	eng.Run()
	if len(d0.Received) != 0 {
		t.Error("switch forwarded a request its upstream VP2P does not claim")
	}
	if sw.Aborts() != 1 {
		t.Errorf("aborts = %d, want 1", sw.Aborts())
	}
}

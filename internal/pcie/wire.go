package pcie

import (
	"encoding/binary"
	"fmt"

	"pciesim/internal/mem"
)

// Wire format: a compact, canonical byte encoding of a PciePkt, used to
// export link traffic out of the simulator (trace capture, corpus
// replay, cross-process campaign transport). It is NOT the simulated
// on-wire framing — timing uses Overheads.TLPWireBytes — but a faithful
// serialization of the model's packet state.
//
// Layout (little-endian):
//
//	off 0     kind: 0 TLP, 1 ACK, 2 NAK, 3 InitFC1, 4 InitFC2, 5 UpdateFC
//	off 1     flags: bit0 corrupted; TLP-only: bit1 posted, bit2 error,
//	          bit3 payload present
//
// Flow-control DLLPs (kinds 3-5) then carry credit state:
//
//	off 2     FC class: 0 P, 1 NP, 2 Cpl
//	off 3-10  cumulative header credits granted (0 = infinite)
//	off 11-18 cumulative data credits granted (0 = infinite)
//
// and end at 19 bytes. ACK/NAK and TLPs instead continue:
//
//	off 2-9   sequence number
//	ACK/NAK end here (10 bytes). TLPs continue:
//	off 10    mem command (ReadReq..WriteResp)
//	off 11-18 packet ID
//	off 19-26 address
//	off 27-30 size (bytes read/written)
//	off 31-34 bus number (int32; NoBus = -1)
//	off 35-   payload, exactly size bytes, present iff flags bit3
//
// Every field is validated on decode and the encoding has no redundant
// representations, so DecodeWire∘EncodeWire is the identity on valid
// packets and EncodeWire∘DecodeWire is the identity on valid byte
// strings — the invariant FuzzTLPDecode drives.

const (
	wireDLLPLen = 10
	wireFCLen   = 19
	wireTLPLen  = 35

	wireFlagCorrupted = 1 << 0
	wireFlagPosted    = 1 << 1
	wireFlagError     = 1 << 2
	wireFlagData      = 1 << 3

	// wireMaxSize bounds the encodable transfer size; the model never
	// builds TLPs beyond a cache line, but the codec accepts anything
	// up to a generous page-ish bound so hand-written corpora survive.
	wireMaxSize = 1 << 16
)

// EncodeWire serializes the packet. DLLPs are 10 bytes; TLPs are 35
// plus the payload when one is attached.
func EncodeWire(p *PciePkt) []byte {
	var flags byte
	if p.Corrupted {
		flags |= wireFlagCorrupted
	}
	if p.Kind.isFC() {
		b := make([]byte, wireFCLen)
		b[0] = byte(p.Kind)
		b[1] = flags
		b[2] = byte(p.FCCl)
		binary.LittleEndian.PutUint64(b[3:], p.FCHdr)
		binary.LittleEndian.PutUint64(b[11:], p.FCData)
		return b
	}
	if p.Kind != KindTLP {
		b := make([]byte, wireDLLPLen)
		b[0] = byte(p.Kind)
		b[1] = flags
		binary.LittleEndian.PutUint64(b[2:], p.Seq)
		return b
	}
	t := p.TLP
	n := wireTLPLen
	if t.Data != nil {
		flags |= wireFlagData
		n += len(t.Data)
	}
	if t.Posted {
		flags |= wireFlagPosted
	}
	if t.Error {
		flags |= wireFlagError
	}
	b := make([]byte, n)
	b[0] = byte(KindTLP)
	b[1] = flags
	binary.LittleEndian.PutUint64(b[2:], p.Seq)
	b[10] = byte(t.Cmd)
	binary.LittleEndian.PutUint64(b[11:], t.ID)
	binary.LittleEndian.PutUint64(b[19:], t.Addr)
	binary.LittleEndian.PutUint32(b[27:], uint32(t.Size))
	binary.LittleEndian.PutUint32(b[31:], uint32(int32(t.BusNum)))
	copy(b[wireTLPLen:], t.Data)
	return b
}

// DecodeWire parses a wire-format packet. It never panics: every
// malformed input returns an error. A successfully decoded packet
// re-encodes to exactly the input bytes.
func DecodeWire(b []byte) (*PciePkt, error) {
	if len(b) < wireDLLPLen {
		return nil, fmt.Errorf("pcie: wire packet truncated at %d bytes", len(b))
	}
	kind := PktKind(b[0])
	flags := b[1]
	if kind.isFC() {
		if flags&^wireFlagCorrupted != 0 {
			return nil, fmt.Errorf("pcie: FC DLLP with TLP flags %#x", flags)
		}
		if len(b) != wireFCLen {
			return nil, fmt.Errorf("pcie: FC DLLP is %d bytes, want %d", len(b), wireFCLen)
		}
		if b[2] >= fcNumClasses {
			return nil, fmt.Errorf("pcie: FC DLLP with class %d", b[2])
		}
		return &PciePkt{
			Kind:      kind,
			Corrupted: flags&wireFlagCorrupted != 0,
			FCCl:      FCClass(b[2]),
			FCHdr:     binary.LittleEndian.Uint64(b[3:]),
			FCData:    binary.LittleEndian.Uint64(b[11:]),
		}, nil
	}
	seq := binary.LittleEndian.Uint64(b[2:])
	if kind == KindAck || kind == KindNak {
		if flags&^wireFlagCorrupted != 0 {
			return nil, fmt.Errorf("pcie: DLLP with TLP flags %#x", flags)
		}
		if len(b) != wireDLLPLen {
			return nil, fmt.Errorf("pcie: DLLP with %d trailing bytes", len(b)-wireDLLPLen)
		}
		return &PciePkt{Kind: kind, Seq: seq, Corrupted: flags&wireFlagCorrupted != 0}, nil
	}
	if kind != KindTLP {
		return nil, fmt.Errorf("pcie: unknown wire kind %d", b[0])
	}
	if len(b) < wireTLPLen {
		return nil, fmt.Errorf("pcie: wire TLP truncated at %d bytes", len(b))
	}
	if flags&^(wireFlagCorrupted|wireFlagPosted|wireFlagError|wireFlagData) != 0 {
		return nil, fmt.Errorf("pcie: unknown wire flags %#x", flags)
	}
	cmd := mem.Cmd(b[10])
	if cmd != mem.ReadReq && cmd != mem.ReadResp && cmd != mem.WriteReq && cmd != mem.WriteResp {
		return nil, fmt.Errorf("pcie: wire TLP with command %d", b[10])
	}
	size := binary.LittleEndian.Uint32(b[27:])
	if size > wireMaxSize {
		return nil, fmt.Errorf("pcie: wire TLP size %d exceeds %d", size, wireMaxSize)
	}
	bus := int32(binary.LittleEndian.Uint32(b[31:]))
	if bus < mem.NoBus || bus > 255 {
		return nil, fmt.Errorf("pcie: wire TLP bus %d out of range", bus)
	}
	t := &mem.Packet{
		ID:     binary.LittleEndian.Uint64(b[11:]),
		Cmd:    cmd,
		Addr:   binary.LittleEndian.Uint64(b[19:]),
		Size:   int(size),
		BusNum: int(bus),
		Posted: flags&wireFlagPosted != 0,
		Error:  flags&wireFlagError != 0,
	}
	payload := b[wireTLPLen:]
	if flags&wireFlagData != 0 {
		if len(payload) != int(size) {
			return nil, fmt.Errorf("pcie: wire TLP payload %d bytes, size says %d", len(payload), size)
		}
		// make (not append) so a zero-length payload still yields a
		// non-nil slice and re-encodes with the payload flag intact.
		t.Data = make([]byte, size)
		copy(t.Data, payload)
	} else if len(payload) != 0 {
		return nil, fmt.Errorf("pcie: wire TLP with %d trailing bytes", len(payload))
	}
	return &PciePkt{
		Kind:      KindTLP,
		Seq:       seq,
		TLP:       t,
		Corrupted: flags&wireFlagCorrupted != 0,
	}, nil
}

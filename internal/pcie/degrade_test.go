package pcie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pciesim/internal/fault"
	"pciesim/internal/sim"
)

// TestDegradeLadderScriptedDowntrains: three forced downtrains walk an
// x4 Gen2 link down its full ladder (x2, x1, x1@Gen1) with no loss,
// and the upgrade retrains climb all the way back once the upgrade
// timers fire.
func TestDegradeLadderScriptedDowntrains(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Width = 4
	deg := DefaultDegradeConfig()
	deg.UpgradeBackoff = 100 * sim.Microsecond
	deg.MaxUpgradeBackoff = 400 * sim.Microsecond
	cfg.Degrade = &deg
	cfg.Fault = &fault.Plan{Downtrains: []sim.Tick{
		2 * sim.Microsecond,
		52 * sim.Microsecond,
		102 * sim.Microsecond,
	}}
	r := newLinkRig(cfg, 10*sim.Nanosecond, 0)
	const n = 60
	for i := 0; i < n; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	checkExactlyOnce(t, r, n)
	if got := r.link.Downtrains(); got != 3 {
		t.Errorf("downtrains = %d, want 3", got)
	}
	// Draining the engine runs the upgrade ladder to completion.
	if got := r.link.Uptrains(); got != 3 {
		t.Errorf("uptrains = %d, want 3", got)
	}
	if lv := r.link.DegradeLevel(); lv != 0 {
		t.Errorf("final level = %d, want 0", lv)
	}
	if g, w := r.link.CurrentGen(), r.link.CurrentWidth(); g != cfg.Gen || w != 4 {
		t.Errorf("final link %v x%d, want %v x4", g, w, cfg.Gen)
	}
	if !r.eng.Drained() {
		t.Error("event queue not drained")
	}
}

// TestDegradeFloorHoldsUnderForcedDowntrains: downtrains beyond the
// ladder floor are no-ops — the link parks at MinWidth/MinGen instead
// of wrapping or panicking.
func TestDegradeFloorHoldsUnderForcedDowntrains(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Width = 2 // ladder: x2 -> x1 -> x1@Gen1
	deg := DefaultDegradeConfig()
	deg.UpgradeBackoff = 50 * sim.Millisecond // park past the run
	deg.MaxUpgradeBackoff = deg.UpgradeBackoff
	cfg.Degrade = &deg
	downs := make([]sim.Tick, 6)
	for i := range downs {
		downs[i] = sim.Tick(i+1) * 50 * sim.Microsecond
	}
	cfg.Fault = &fault.Plan{Downtrains: downs}
	r := newLinkRig(cfg, 10*sim.Nanosecond, 0)
	const n = 40
	for i := 0; i < n; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	// Stop after the last forced downtrain but before the parked
	// upgrade timer: the link must sit exactly at the floor.
	r.eng.RunWhile(func() bool { return r.eng.Now() < 350*sim.Microsecond })
	if g, w := r.link.CurrentGen(), r.link.CurrentWidth(); g != Gen1 || w != 1 {
		t.Errorf("floor is %v x%d, want Gen1 x1", g, w)
	}
	if got := r.link.Downtrains(); got != 2 {
		t.Errorf("downtrains = %d, want 2 (floor reached)", got)
	}
	r.eng.Run()
	checkExactlyOnce(t, r, n)
	if lv := r.link.DegradeLevel(); lv != 0 {
		t.Errorf("drained level = %d, want 0 (upgrade ladder completes)", lv)
	}
}

// TestDegradeAutoDowntrainOnErrors: sustained stochastic corruption
// fills the error window and the link downtrains by itself — the
// adaptive policy, not a script.
func TestDegradeAutoDowntrainOnErrors(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Width = 2
	cfg.ReplayBufferSize = 4
	deg := DefaultDegradeConfig()
	deg.Threshold = 4
	deg.UpgradeBackoff = 50 * sim.Millisecond // hold the degraded level
	deg.MaxUpgradeBackoff = deg.UpgradeBackoff
	cfg.Degrade = &deg
	cfg.Fault = &fault.Plan{
		Seed: 7,
		Up:   fault.Profile{Rates: fault.Rates{TLPCorrupt: 0.2}},
		Down: fault.Profile{Rates: fault.Rates{TLPCorrupt: 0.2}},
	}
	r := newLinkRig(cfg, 10*sim.Nanosecond, 0)
	const n = 80
	for i := 0; i < n; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	checkExactlyOnce(t, r, n)
	if r.link.Downtrains() == 0 {
		t.Error("sustained corruption never downtrained the link")
	}
}

// Satellite regression (DL_Down rule): the FC InitFC1/InitFC2
// handshake re-runs from scratch after every link down — both the
// fault-window retrain and the degradation retrain — and the credit
// pools come back exact.
func TestFCReinitAfterRetrain(t *testing.T) {
	cases := []struct {
		name string
		plan *fault.Plan
	}{
		{"window", &fault.Plan{
			Windows:        []fault.Window{{At: 3 * sim.Microsecond, Duration: 2 * sim.Microsecond}},
			RetrainLatency: sim.Microsecond,
		}},
		{"degrade", &fault.Plan{
			Downtrains: []sim.Tick{3 * sim.Microsecond},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultLinkConfig()
			cfg.Width = 2
			cfg.Credits = UniformCredits(4)
			cfg.Fault = c.plan
			if c.name == "degrade" {
				deg := DefaultDegradeConfig()
				deg.UpgradeBackoff = 50 * sim.Millisecond
				deg.MaxUpgradeBackoff = deg.UpgradeBackoff
				cfg.Degrade = &deg
			}
			r := newLinkRig(cfg, 10*sim.Nanosecond, 0)
			const n = 40
			for i := 0; i < n; i++ {
				r.req.Write(uint64(i)*64, 64)
			}
			r.eng.Run()
			checkExactlyOnce(t, r, n)
			if got := r.link.Retrains(); got < 1 {
				t.Fatalf("retrains = %d, want >= 1", got)
			}
			// One handshake sends InitFC1+InitFC2 per class (>= 6 DLLPs
			// per side); a retrain re-runs it, doubling the floor.
			up, down := r.link.Up().Stats(), r.link.Down().Stats()
			if up.InitFCTx < 12 || down.InitFCTx < 12 {
				t.Errorf("InitFC tx up=%d down=%d, want >= 12 each after a retrain",
					up.InitFCTx, down.InitFCTx)
			}
			assertFCDrained(t, r.link)
		})
	}
}

// Property (satellite): credit accounting stays exact across any mix
// of retrain cycles — fault windows and forced degradation retrains at
// random widths and credit pools. After the run every pool must drain
// back to the full advertisement and delivery is exactly-once.
func TestFCCreditAccountingAcrossRetrainsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultLinkConfig()
		cfg.Width = []int{1, 2, 4, 8}[rng.Intn(4)]
		cfg.ReplayBufferSize = 1 + rng.Intn(6)
		cfg.Credits = UniformCredits(1 + rng.Intn(5))
		deg := DefaultDegradeConfig()
		deg.UpgradeBackoff = sim.Tick(50+rng.Intn(200)) * sim.Microsecond
		deg.MaxUpgradeBackoff = deg.UpgradeBackoff * 4
		cfg.Degrade = &deg
		plan := &fault.Plan{Seed: uint64(seed)*2 + 1}
		cycles := 1 + rng.Intn(4)
		at := sim.Tick(2+rng.Intn(5)) * sim.Microsecond
		for c := 0; c < cycles; c++ {
			if rng.Intn(2) == 0 {
				plan.Downtrains = append(plan.Downtrains, at)
			} else {
				plan.Windows = append(plan.Windows, fault.Window{
					At: at, Duration: sim.Tick(1+rng.Intn(4)) * sim.Microsecond,
				})
			}
			at += sim.Tick(30+rng.Intn(60)) * sim.Microsecond
		}
		plan.RetrainLatency = sim.Tick(1+rng.Intn(3)) * sim.Microsecond
		cfg.Fault = plan
		r := newLinkRig(cfg, sim.Tick(rng.Intn(200))*sim.Nanosecond, 0)
		r.resp.RefuseRequests = rng.Intn(10)
		n := 20 + rng.Intn(40)
		for i := 0; i < n; i++ {
			r.req.Write(uint64(i)*64, 64)
		}
		r.eng.Run()
		if len(r.resp.Received) != n || len(r.req.Completions) != n {
			return false
		}
		for i, p := range r.resp.Received {
			if p.Addr != uint64(i)*64 {
				return false
			}
		}
		ok := r.eng.Drained()
		for _, iface := range []*Interface{r.link.Up(), r.link.Down()} {
			for cl, s := range iface.FCSnapshots() {
				if s.HeldHdr != 0 || s.HeldData != 0 {
					t.Logf("seed %d: %v holds %d/%d after drain", seed, FCClass(cl), s.HeldHdr, s.HeldData)
					ok = false
				}
				if s.ConsumedHdr > s.LimitHdr || s.ConsumedData > s.LimitData {
					t.Logf("seed %d: %v consumed %d/%d beyond limit %d/%d",
						seed, FCClass(cl), s.ConsumedHdr, s.ConsumedData, s.LimitHdr, s.LimitData)
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Transaction-layer credit-based flow control (VC0), layered above the
// data-link layer in link.go. Real PCIe backpressure is not "the
// receiver refused the packet": a transmitter may only send a TLP when
// it holds enough flow-control credits for the TLP's class, and the
// receiver returns credits with UpdateFC DLLPs as it drains its
// queues. This file implements that protocol per §2.6 of the spec,
// scaled to the simulator's fidelity:
//
//   - every TLP is classified Posted / Non-Posted / Completion;
//   - each class has a header credit counter (1 per TLP) and a data
//     credit counter (1 per 16 payload bytes);
//   - credit state is exchanged with InitFC1/InitFC2 DLLPs at link
//     bring-up and returned with UpdateFC DLLPs as the receiver
//     delivers TLPs to the local component;
//   - all counts on the wire are cumulative ("credits granted since
//     link-up"), so a lost or reordered UpdateFC is harmless — the
//     next one carries a superset of the information.
//
// A zero CreditConfig means infinite credits, which keeps the link in
// the legacy DLL-only mode: no FC state is allocated, no FC DLLPs are
// exchanged, no FC stats are registered, and every simulation is
// byte-identical to the pre-FC simulator.
package pcie

import (
	"fmt"
	"strconv"
	"strings"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
	"pciesim/internal/stats"
	"pciesim/internal/trace"
)

// FCClass is a flow-control traffic class of virtual channel 0.
type FCClass uint8

const (
	// FCPosted covers posted requests: memory writes that never
	// generate a completion.
	FCPosted FCClass = iota
	// FCNonPosted covers non-posted requests: reads and the simulator's
	// default completion-acknowledged writes.
	FCNonPosted
	// FCCpl covers completions.
	FCCpl

	fcNumClasses = 3
)

func (c FCClass) String() string {
	switch c {
	case FCPosted:
		return "P"
	case FCNonPosted:
		return "NP"
	case FCCpl:
		return "Cpl"
	}
	return fmt.Sprintf("FCClass(%d)", uint8(c))
}

// FCClassOf classifies a TLP for flow-control accounting.
func FCClassOf(tlp *mem.Packet) FCClass {
	if !tlp.Cmd.IsRequest() {
		return FCCpl
	}
	if tlp.Posted {
		return FCPosted
	}
	return FCNonPosted
}

// FCDataUnit is the payload granularity of one data credit (the spec's
// 16-byte flow-control unit).
const FCDataUnit = 16

// fcDataCredits is the number of data credits a payload consumes.
func fcDataCredits(payloadBytes int) uint64 {
	return uint64((payloadBytes + FCDataUnit - 1) / FCDataUnit)
}

// tlpPayloadBytes is the TLP payload size used for data-credit
// accounting: writes and read responses carry Size bytes, everything
// else is header-only. (PciePkt.PayloadBytes applies the same rule.)
func tlpPayloadBytes(tlp *mem.Packet) int {
	switch tlp.Cmd {
	case mem.WriteReq, mem.ReadResp:
		return tlp.Size
	}
	return 0
}

// fcMaxCredits bounds any single advertised credit count; it exists so
// config and wire validation can reject absurd values.
const fcMaxCredits = 1 << 20

// CreditConfig is a receiver's advertised VC0 credit pool, per class.
// Zero for any field means infinite credits for that counter; the zero
// value as a whole selects the legacy non-FC link (see package
// comment). Header credits count TLPs; data credits count 16-byte
// payload units.
type CreditConfig struct {
	PostedHdr     int `json:"posted_hdr,omitempty"`
	PostedData    int `json:"posted_data,omitempty"`
	NonPostedHdr  int `json:"nonposted_hdr,omitempty"`
	NonPostedData int `json:"nonposted_data,omitempty"`
	CplHdr        int `json:"cpl_hdr,omitempty"`
	CplData       int `json:"cpl_data,omitempty"`
}

// Finite reports whether any counter is finite, i.e. whether the
// config enables credit-based flow control at all.
func (c CreditConfig) Finite() bool { return c != CreditConfig{} }

// Hdr returns the advertised header credits for a class (0 = infinite).
func (c CreditConfig) Hdr(cl FCClass) int {
	switch cl {
	case FCPosted:
		return c.PostedHdr
	case FCNonPosted:
		return c.NonPostedHdr
	default:
		return c.CplHdr
	}
}

// Data returns the advertised data credits for a class (0 = infinite).
func (c CreditConfig) Data(cl FCClass) int {
	switch cl {
	case FCPosted:
		return c.PostedData
	case FCNonPosted:
		return c.NonPostedData
	default:
		return c.CplData
	}
}

// Validate rejects negative or absurdly large credit counts.
func (c CreditConfig) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"posted_hdr", c.PostedHdr}, {"posted_data", c.PostedData},
		{"nonposted_hdr", c.NonPostedHdr}, {"nonposted_data", c.NonPostedData},
		{"cpl_hdr", c.CplHdr}, {"cpl_data", c.CplData},
	} {
		if f.v < 0 || f.v > fcMaxCredits {
			return fmt.Errorf("pcie: credit %s=%d outside 0..%d", f.name, f.v, fcMaxCredits)
		}
	}
	return nil
}

func (c CreditConfig) String() string {
	if !c.Finite() {
		return "infinite"
	}
	if u, ok := c.uniform(); ok {
		return strconv.Itoa(u)
	}
	return fmt.Sprintf("ph=%d,pd=%d,nh=%d,nd=%d,ch=%d,cd=%d",
		c.PostedHdr, c.PostedData, c.NonPostedHdr, c.NonPostedData, c.CplHdr, c.CplData)
}

// uniform reports whether c is exactly UniformCredits(n) for some n.
func (c CreditConfig) uniform() (int, bool) {
	n := c.PostedHdr
	if n > 0 && c == UniformCredits(n) {
		return n, true
	}
	return 0, false
}

// UniformCredits advertises n header credits per class, with data
// credits sized so header credits are the binding constraint for
// 64-byte payloads (4 data credits per header).
func UniformCredits(n int) CreditConfig {
	return CreditConfig{
		PostedHdr: n, PostedData: 4 * n,
		NonPostedHdr: n, NonPostedData: 4 * n,
		CplHdr: n, CplData: 4 * n,
	}
}

// CreditsForQueueDepth derives the credits a receiver with depth-entry
// ingress queues can honestly advertise: depth headers per class, with
// data credits for depth maximum-sized (64-byte) payloads.
func CreditsForQueueDepth(depth int) CreditConfig {
	if depth <= 0 {
		return CreditConfig{}
	}
	return UniformCredits(depth)
}

// MinCredits combines two advertisements per counter, treating 0 as
// infinite: the result is finite wherever either input is.
func MinCredits(a, b CreditConfig) CreditConfig {
	m := func(x, y int) int {
		if x == 0 {
			return y
		}
		if y == 0 || x < y {
			return x
		}
		return y
	}
	return CreditConfig{
		PostedHdr: m(a.PostedHdr, b.PostedHdr), PostedData: m(a.PostedData, b.PostedData),
		NonPostedHdr: m(a.NonPostedHdr, b.NonPostedHdr), NonPostedData: m(a.NonPostedData, b.NonPostedData),
		CplHdr: m(a.CplHdr, b.CplHdr), CplData: m(a.CplData, b.CplData),
	}
}

// ParseCredits parses the CLI/topo credit syntax: "" or "inf" for
// infinite (legacy), a bare integer N for UniformCredits(N), or a
// comma-separated k=v list with keys ph, pd, nh, nd, ch, cd (unset
// keys stay infinite), e.g. "ch=4" or "ph=8,nh=8,ch=2,cd=8".
func ParseCredits(s string) (CreditConfig, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "inf" || s == "infinite" {
		return CreditConfig{}, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n < 0 || n > fcMaxCredits {
			return CreditConfig{}, fmt.Errorf("pcie: credits %d outside 0..%d", n, fcMaxCredits)
		}
		if n == 0 {
			return CreditConfig{}, nil
		}
		return UniformCredits(n), nil
	}
	var c CreditConfig
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return CreditConfig{}, fmt.Errorf("pcie: bad credit field %q (want k=v)", kv)
		}
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return CreditConfig{}, fmt.Errorf("pcie: bad credit count %q: %v", v, err)
		}
		var dst *int
		switch strings.TrimSpace(k) {
		case "ph":
			dst = &c.PostedHdr
		case "pd":
			dst = &c.PostedData
		case "nh":
			dst = &c.NonPostedHdr
		case "nd":
			dst = &c.NonPostedData
		case "ch":
			dst = &c.CplHdr
		case "cd":
			dst = &c.CplData
		default:
			return CreditConfig{}, fmt.Errorf("pcie: unknown credit key %q (want ph|pd|nh|nd|ch|cd)", k)
		}
		*dst = n
	}
	if err := c.Validate(); err != nil {
		return CreditConfig{}, err
	}
	return c, nil
}

// fcPair is one class's header+data credit pair.
type fcPair struct{ hdr, data uint64 }

// fcRefreshMax bounds how many times the refresh timer re-advertises
// the current cumulative grant after the last credit release. It only
// runs under an active fault plan (UpdateFC loss is only possible
// there) and the bound keeps the event queue drainable.
const fcRefreshMax = 3

// fcState is the transaction-layer flow-control state of one link
// interface: the transmit-side view of the peer's credits, and the
// receive-side pool advertised to the peer. It exists only on links
// with a finite CreditConfig.
type fcState struct {
	i *Interface

	// --- transmit side (consuming the peer's credits) ---

	peerSeen  [fcNumClasses]bool // got any InitFC/UpdateFC for the class
	peerAll   bool               // all classes seen: TLP transmission unlocked
	init2Seen bool               // peer confirmed our InitFC1 (FC_INIT2 exit)
	txInf     [fcNumClasses][2]bool
	txLimit   [fcNumClasses]fcPair // cumulative credits granted by the peer
	consumed  [fcNumClasses]fcPair // cumulative credits consumed
	// A stall episode opens on the first starved admission of a class
	// and closes when wake finds it transmittable again; stallSince is
	// meaningful only while stalled (a stall can begin at tick 0).
	stalled    [fcNumClasses]bool
	stallSince [fcNumClasses]sim.Tick
	// stallID remembers the TLP that opened the episode, keying the
	// fc-stall attribution span.
	stallID [fcNumClasses]uint64

	// --- receive side (the pool we advertise) ---

	advert  [fcNumClasses]fcPair // advertised pool size (0 = infinite)
	held    [fcNumClasses]fcPair // credits held by queued, undelivered TLPs
	granted [fcNumClasses]fcPair // cumulative credits granted to the peer
	reqQ    []*mem.Packet        // Posted + Non-Posted, in arrival order
	cplQ    []*mem.Packet        // Completions: may pass blocked requests

	// --- DLLP scheduling ---

	pendInit1 [fcNumClasses]bool
	pendInit2 [fcNumClasses]bool
	pendUpd   [fcNumClasses]bool

	initTmr     *sim.Event // re-sends InitFC1 until the peer confirms
	refreshTmr  *sim.Event // re-advertises grants under a fault plan
	refreshLeft int

	heldGauge [fcNumClasses]*stats.Gauge
	rxqGauge  *stats.Gauge
	stallHist [fcNumClasses]*stats.Histogram
}

// newFCState allocates FC state advertising adv, with every InitFC1
// pending so the handshake starts as soon as the engine runs.
func newFCState(i *Interface, adv CreditConfig) *fcState {
	fc := &fcState{i: i}
	fc.setAdvertised(adv)
	for cl := range fc.pendInit1 {
		fc.pendInit1[cl] = true
	}
	fc.initTmr = i.eng.NewEvent(i.name+".fcInitTimer", fc.initTimerFire)
	fc.refreshTmr = i.eng.NewEvent(i.name+".fcRefreshTimer", fc.refreshFire)
	return fc
}

// setAdvertised installs the receive-side pool. Finite data credits
// are raised to at least one max-payload TLP so a legal TLP can never
// exceed the whole pool and wedge the link.
func (fc *fcState) setAdvertised(adv CreditConfig) {
	minData := fcDataCredits(fc.i.link.cfg.MaxPayload)
	for cl := FCClass(0); cl < fcNumClasses; cl++ {
		hdr, data := uint64(adv.Hdr(cl)), uint64(adv.Data(cl))
		if data > 0 && data < minData {
			data = minData
		}
		fc.advert[cl] = fcPair{hdr: hdr, data: data}
		// Counts on the wire are cumulative; the initial grant is the
		// pool itself.
		fc.granted[cl] = fc.advert[cl]
	}
}

// AdvertiseCredits replaces the receive-side credit pool this
// interface advertises, overriding the LinkConfig default. Routers
// call it at connect time to advertise their real queue depths. It is
// a no-op on legacy (infinite-credit) links and must not be called
// after the engine has started delivering traffic.
func (i *Interface) AdvertiseCredits(c CreditConfig) {
	if i.fc == nil {
		return
	}
	i.fc.setAdvertised(c)
}

// FCSnapshot is a debug/test view of one class's credit accounting.
type FCSnapshot struct {
	AdvertHdr, AdvertData     uint64 // advertised pool (0 = infinite)
	HeldHdr, HeldData         uint64 // held by queued undelivered TLPs
	GrantedHdr, GrantedData   uint64 // cumulative granted to the peer
	ConsumedHdr, ConsumedData uint64 // cumulative consumed from the peer
	LimitHdr, LimitData       uint64 // cumulative limit granted by the peer
}

// FCSnapshots returns per-class credit accounting for tests; nil on
// legacy links.
func (i *Interface) FCSnapshots() []FCSnapshot {
	if i.fc == nil {
		return nil
	}
	out := make([]FCSnapshot, fcNumClasses)
	for cl := FCClass(0); cl < fcNumClasses; cl++ {
		out[cl] = FCSnapshot{
			AdvertHdr: i.fc.advert[cl].hdr, AdvertData: i.fc.advert[cl].data,
			HeldHdr: i.fc.held[cl].hdr, HeldData: i.fc.held[cl].data,
			GrantedHdr: i.fc.granted[cl].hdr, GrantedData: i.fc.granted[cl].data,
			ConsumedHdr: i.fc.consumed[cl].hdr, ConsumedData: i.fc.consumed[cl].data,
			LimitHdr: i.fc.txLimit[cl].hdr, LimitData: i.fc.txLimit[cl].data,
		}
	}
	return out
}

// registerStats publishes the FC-only registry entries. Called only on
// FC links, so legacy stats dumps are byte-identical.
func (fc *fcState) registerStats() {
	r := fc.i.eng.Stats()
	pfx := "pcie." + fc.i.name + ".fc."
	s := &fc.i.stats
	for _, c := range []struct {
		name string
		f    *uint64
	}{
		{"initfc_tx", &s.InitFCTx},
		{"initfc_rx", &s.InitFCRx},
		{"updatefc_tx", &s.UpdateFCTx},
		{"updatefc_rx", &s.UpdateFCRx},
		{"updatefc_dropped", &s.UpdateFCDropped},
		{"stalls_p", &s.FCStallsP},
		{"stalls_np", &s.FCStallsNP},
		{"stalls_cpl", &s.FCStallsCpl},
		{"rx_queued", &s.RxQueued},
		{"rx_refused", &s.RxRefused},
		{"rx_flushed", &s.RxFlushed},
	} {
		f := c.f
		r.CounterFunc(pfx+c.name, func() uint64 { return *f })
	}
	for cl := FCClass(0); cl < fcNumClasses; cl++ {
		low := strings.ToLower(cl.String())
		fc.heldGauge[cl] = r.Gauge(pfx + "held_" + low)
		fc.stallHist[cl] = r.Histogram(pfx + "stall_ticks_" + low)
	}
	fc.rxqGauge = r.Gauge(pfx + "rxq")
}

// --- transmit side --------------------------------------------------

// stallCounter returns the per-class stall counter.
func (fc *fcState) stallCounter(cl FCClass) *uint64 {
	switch cl {
	case FCPosted:
		return &fc.i.stats.FCStallsP
	case FCNonPosted:
		return &fc.i.stats.FCStallsNP
	default:
		return &fc.i.stats.FCStallsCpl
	}
}

// txReady reports whether the peer has granted enough credits for one
// TLP of class cl with the given data-credit need.
func (fc *fcState) txReady(cl FCClass, data uint64) bool {
	if !fc.peerAll {
		return false
	}
	if !fc.txInf[cl][0] && fc.consumed[cl].hdr+1 > fc.txLimit[cl].hdr {
		return false
	}
	if data > 0 && !fc.txInf[cl][1] && fc.consumed[cl].data+data > fc.txLimit[cl].data {
		return false
	}
	return true
}

// consume charges one header and data credits for an admitted TLP.
// Credits are consumed exactly once, at admission: DLL replays resend
// the same TLP against the same charge.
func (fc *fcState) consume(cl FCClass, data uint64) {
	fc.consumed[cl].hdr++
	fc.consumed[cl].data += data
}

// noteStall records a credit-starvation refusal of one TLP.
func (fc *fcState) noteStall(cl FCClass, tlp *mem.Packet) {
	*fc.stallCounter(cl)++
	now := fc.i.eng.Now()
	if !fc.stalled[cl] {
		fc.stalled[cl] = true
		fc.stallSince[cl] = now
		fc.stallID[cl] = tlp.ID
	}
	if tr := fc.i.tracer(); tr.On(trace.CatTLP) {
		tr.Emit(trace.CatTLP, uint64(now), "pcie."+fc.i.name, "fc-stall", tlp.ID, cl.String())
	}
}

// wake ends stall episodes whose class can transmit again and retries
// the local component. Called after any credit grant arrives.
func (fc *fcState) wake() {
	now := fc.i.eng.Now()
	woke := false
	for cl := FCClass(0); cl < fcNumClasses; cl++ {
		if fc.stalled[cl] && fc.txReady(cl, 0) {
			fc.stallHist[cl].Observe(uint64(now - fc.stallSince[cl]))
			if eng := fc.i.eng; eng.SpansOn() {
				fc.i.spanObserve(&fc.i.fcStallSeg, "fc-stall", fc.stallSince[cl], fc.stallID[cl])
			}
			fc.stalled[cl] = false
			woke = true
		}
	}
	if woke {
		fc.i.notifyLocalRetry()
	}
}

// --- receive side ---------------------------------------------------

// advertFinite reports whether any counter of the class is finite (and
// therefore worth an UpdateFC when credits free).
func (fc *fcState) advertFinite(cl FCClass) bool {
	return fc.advert[cl].hdr > 0 || fc.advert[cl].data > 0
}

// rxAccept queues a delivered-at-DLL TLP at the transaction layer,
// holding its credits until the local component takes it. Completions
// queue separately from requests so a completion can always pass a
// blocked non-posted request (the PCIe ordering rule that breaks the
// classic fabric deadlock), while NP never passes P within reqQ.
func (fc *fcState) rxAccept(tlp *mem.Packet) {
	cl := FCClassOf(tlp)
	fc.held[cl].hdr++
	fc.held[cl].data += fcDataCredits(tlpPayloadBytes(tlp))
	fc.i.stats.RxQueued++
	if cl == FCCpl {
		fc.cplQ = append(fc.cplQ, tlp)
	} else {
		fc.reqQ = append(fc.reqQ, tlp)
	}
	fc.updateRxGauges()
	fc.drain()
}

// drain hands queued TLPs to the local component, completions first,
// releasing credits as each is accepted. A refusal leaves the TLP
// queued — refusal/retry survives only at this mem-port boundary.
func (fc *fcState) drain() {
	i := fc.i
	for len(fc.cplQ) > 0 {
		tlp := fc.cplQ[0]
		// Credit need is computed before the handover: the component
		// may mutate (or recycle) the packet once it accepts it.
		data := fcDataCredits(tlpPayloadBytes(tlp))
		id := tlp.ID
		if !i.slave.SendTimingResp(tlp) {
			i.stats.RxRefused++
			break
		}
		popPkt(&fc.cplQ)
		fc.delivered(FCCpl, data, id)
	}
	for len(fc.reqQ) > 0 {
		tlp := fc.reqQ[0]
		cl := FCClassOf(tlp)
		data := fcDataCredits(tlpPayloadBytes(tlp))
		id := tlp.ID
		if !i.master.SendTimingReq(tlp) {
			i.stats.RxRefused++
			break
		}
		popPkt(&fc.reqQ)
		fc.delivered(cl, data, id)
	}
	fc.updateRxGauges()
}

// delivered finalizes one handover to the local component.
func (fc *fcState) delivered(cl FCClass, data uint64, id uint64) {
	i := fc.i
	i.stats.TLPsDelivered++
	if tr := i.tracer(); tr.On(trace.CatTLP) {
		tr.Emit(trace.CatTLP, uint64(i.eng.Now()), "pcie."+i.name,
			"deliver", id, cl.String())
	}
	fc.release(cl, data)
}

// popPkt removes the head of a queue without retaining the element.
func popPkt(q *[]*mem.Packet) {
	copy(*q, (*q)[1:])
	(*q)[len(*q)-1] = nil
	*q = (*q)[:len(*q)-1]
}

// release returns one TLP's credits to the pool and schedules an
// UpdateFC for the class if any of its counters is finite.
func (fc *fcState) release(cl FCClass, data uint64) {
	if fc.held[cl].hdr == 0 || fc.held[cl].data < data {
		panic("pcie: flow-control credit accounting underflow")
	}
	fc.held[cl].hdr--
	fc.held[cl].data -= data
	fc.granted[cl].hdr++
	fc.granted[cl].data += data
	if fc.advertFinite(cl) {
		fc.pendUpd[cl] = true
		if fc.i.link.planActive {
			fc.refreshLeft = fcRefreshMax
			if !fc.refreshTmr.Scheduled() {
				fc.i.eng.ScheduleEventAfter(fc.refreshTmr, fc.i.link.ReplayTimeout(), sim.PriorityTimer)
			}
		}
		fc.i.scheduleTx()
	}
}

func (fc *fcState) updateRxGauges() {
	for cl := FCClass(0); cl < fcNumClasses; cl++ {
		fc.heldGauge[cl].Set(int64(fc.held[cl].hdr))
	}
	fc.rxqGauge.Set(int64(len(fc.reqQ) + len(fc.cplQ)))
}

// --- DLLP exchange --------------------------------------------------

// dllpPending reports whether any FC DLLP is waiting for the wire.
func (fc *fcState) dllpPending() bool {
	for cl := range fc.pendInit1 {
		if fc.pendInit1[cl] || fc.pendInit2[cl] || fc.pendUpd[cl] {
			return true
		}
	}
	return false
}

// grantValues returns the cumulative counts an FC DLLP for cl carries;
// infinite counters are encoded as 0.
func (fc *fcState) grantValues(cl FCClass) (hdr, data uint64) {
	if fc.advert[cl].hdr > 0 {
		hdr = fc.granted[cl].hdr
	}
	if fc.advert[cl].data > 0 {
		data = fc.granted[cl].data
	}
	return hdr, data
}

// initPending reports whether an InitFC1/InitFC2 DLLP is waiting.
func (fc *fcState) initPending() bool {
	for cl := range fc.pendInit1 {
		if fc.pendInit1[cl] || fc.pendInit2[cl] {
			return true
		}
	}
	return false
}

// updPending reports whether an UpdateFC DLLP is waiting.
func (fc *fcState) updPending() bool {
	return fc.pendUpd[0] || fc.pendUpd[1] || fc.pendUpd[2]
}

// buildDLLP assembles one FC DLLP for cl with the current grants.
func (fc *fcState) buildDLLP(kind PktKind, cl FCClass) *PciePkt {
	hdr, data := fc.grantValues(cl)
	return &PciePkt{Kind: kind, FCCl: cl, FCHdr: hdr, FCData: data}
}

// nextInitDLLP dequeues the next pending InitFC1/InitFC2; it must only
// be called when initPending() is true.
func (fc *fcState) nextInitDLLP() *PciePkt {
	for cl := range fc.pendInit1 {
		if fc.pendInit1[cl] {
			fc.pendInit1[cl] = false
			// Until the peer confirms with InitFC2/UpdateFC, keep
			// re-sending InitFC1 — the handshake survives DLLP loss.
			if !fc.init2Seen && !fc.initTmr.Scheduled() {
				fc.i.eng.ScheduleEventAfter(fc.initTmr, fc.i.link.ReplayTimeout(), sim.PriorityTimer)
			}
			return fc.buildDLLP(KindInitFC1, FCClass(cl))
		}
	}
	for cl := range fc.pendInit2 {
		if fc.pendInit2[cl] {
			fc.pendInit2[cl] = false
			return fc.buildDLLP(KindInitFC2, FCClass(cl))
		}
	}
	panic("pcie: nextInitDLLP with none pending")
}

// nextUpdDLLP dequeues the next pending UpdateFC; it must only be
// called when updPending() is true.
func (fc *fcState) nextUpdDLLP() *PciePkt {
	for cl := range fc.pendUpd {
		if fc.pendUpd[cl] {
			fc.pendUpd[cl] = false
			return fc.buildDLLP(KindUpdateFC, FCClass(cl))
		}
	}
	panic("pcie: nextUpdDLLP with none pending")
}

// recvFC processes a received InitFC/UpdateFC DLLP: record the peer's
// cumulative grant (monotonic max, so stale DLLPs are harmless), run
// the init handshake state machine, and wake stalled classes.
func (fc *fcState) recvFC(pp *PciePkt) {
	i := fc.i
	cl := pp.FCCl
	if pp.Kind == KindUpdateFC {
		i.stats.UpdateFCRx++
	} else {
		i.stats.InitFCRx++
	}
	if tr := i.tracer(); tr.On(trace.CatDLLP) {
		tr.Emit(trace.CatDLLP, uint64(i.eng.Now()), "pcie."+i.name,
			"rx-"+pp.Kind.String(), pp.FCHdr, cl.String())
	}
	if pp.FCHdr == 0 {
		fc.txInf[cl][0] = true
	} else if pp.FCHdr > fc.txLimit[cl].hdr {
		fc.txLimit[cl].hdr = pp.FCHdr
	}
	if pp.FCData == 0 {
		fc.txInf[cl][1] = true
	} else if pp.FCData > fc.txLimit[cl].data {
		fc.txLimit[cl].data = pp.FCData
	}
	if !fc.peerSeen[cl] {
		fc.peerSeen[cl] = true
		fc.peerAll = fc.peerSeen[0] && fc.peerSeen[1] && fc.peerSeen[2]
	}
	switch pp.Kind {
	case KindInitFC1:
		// Once we have the peer's full pool, confirm with InitFC2 —
		// again on every duplicate InitFC1, in case ours was lost.
		if fc.peerAll {
			for c := range fc.pendInit2 {
				fc.pendInit2[c] = true
			}
		}
	case KindInitFC2, KindUpdateFC:
		fc.init2Seen = true
		i.eng.Deschedule(fc.initTmr)
	}
	fc.wake()
	i.scheduleTx()
}

// initTimerFire re-arms the InitFC1 volley while the peer has not yet
// confirmed the handshake. It stops permanently once init2Seen, so the
// event queue always drains.
func (fc *fcState) initTimerFire() {
	if fc.init2Seen {
		return
	}
	for cl := range fc.pendInit1 {
		fc.pendInit1[cl] = true
	}
	fc.i.scheduleTx()
	fc.i.eng.ScheduleEventAfter(fc.initTmr, fc.i.link.ReplayTimeout(), sim.PriorityTimer)
}

// refreshFire re-advertises the cumulative grant of every finite class
// a bounded number of times after the last release, recovering credits
// lost to dropped UpdateFC DLLPs. Only armed under an active fault
// plan.
func (fc *fcState) refreshFire() {
	if fc.refreshLeft <= 0 {
		return
	}
	fc.refreshLeft--
	resent := false
	for cl := FCClass(0); cl < fcNumClasses; cl++ {
		if fc.advertFinite(cl) {
			fc.pendUpd[cl] = true
			resent = true
		}
	}
	if resent {
		fc.i.scheduleTx()
	}
	if fc.refreshLeft > 0 {
		fc.i.eng.ScheduleEventAfter(fc.refreshTmr, fc.i.link.ReplayTimeout(), sim.PriorityTimer)
	}
}

// noteUpdDropped restocks the refresh budget after a fault-injected
// UpdateFC drop. The drop is local knowledge (injection happens at this
// interface's transmitter), so retrying here keeps a starvation window
// recoverable however long it lasts, while a clean run still stops
// after fcRefreshMax refreshes and the event queue drains.
func (fc *fcState) noteUpdDropped() {
	fc.refreshLeft = fcRefreshMax
	if !fc.refreshTmr.Scheduled() {
		fc.i.eng.ScheduleEventAfter(fc.refreshTmr, fc.i.link.ReplayTimeout(), sim.PriorityTimer)
	}
}

// pause deschedules the FC timers for a link-down window.
func (fc *fcState) pause() {
	fc.i.eng.Deschedule(fc.initTmr)
	fc.i.eng.Deschedule(fc.refreshTmr)
}

// resume re-initializes FC after a retrain. Per the spec's DL_Down
// rule, flow control restarts from scratch on every link-down: both
// sides forget the old cumulative counts and re-run the
// InitFC1/InitFC2 handshake. The subtlety is that TL state survives
// the window — TLPs may still sit in this side's RX queues (holding
// credits) and unACKed TLPs in the local replay buffer will replay
// into the peer's pools — so the new epoch's counters are rebuilt to
// account for them exactly:
//
//   - receive side: the full pool is re-granted (granted = advert),
//     exactly as at first init; space taken by still-queued TLPs is
//     charged to the peer's rebuilt consumed counts instead;
//   - transmit side: consumed restarts at the credits of our TLPs
//     already held in the peer's RX queues plus those in our replay
//     buffer the peer has not delivered yet (they will replay into
//     the new grant); limits and the init state machine reset.
//
// Both interfaces re-init inside the same goUp event, with no traffic
// in between, so each side reads a stable view of its peer.
func (fc *fcState) resume() {
	peer := fc.i.peer
	// --- transmit side: forget the peer's old cumulative counts.
	fc.peerSeen = [fcNumClasses]bool{}
	fc.peerAll = false
	fc.init2Seen = false
	fc.txInf = [fcNumClasses][2]bool{}
	fc.txLimit = [fcNumClasses]fcPair{}
	var consumed [fcNumClasses]fcPair
	if peer.fc != nil {
		consumed = peer.fc.held
	}
	for _, pp := range fc.i.replayBuf {
		if pp.Seq < peer.recvSeq {
			// Already delivered into the peer's TL queues (counted in
			// peer held, or drained and thus occupying no space); its
			// replay will be discarded as a stale duplicate.
			continue
		}
		cl := FCClassOf(pp.TLP)
		consumed[cl].hdr++
		consumed[cl].data += fcDataCredits(tlpPayloadBytes(pp.TLP))
	}
	fc.consumed = consumed
	// --- receive side: re-grant the full pool, as at first init.
	for cl := FCClass(0); cl < fcNumClasses; cl++ {
		fc.granted[cl] = fc.advert[cl]
	}
	// --- handshake: restart from InitFC1.
	for cl := range fc.pendInit1 {
		fc.pendInit1[cl] = true
	}
	fc.pendInit2 = [fcNumClasses]bool{}
	fc.pendUpd = [fcNumClasses]bool{}
	fc.refreshLeft = 0
}

// flushDead discards the transaction-layer RX queues when the link is
// declared dead, zeroing held credits.
func (fc *fcState) flushDead() {
	fc.i.stats.RxFlushed += uint64(len(fc.reqQ) + len(fc.cplQ))
	fc.reqQ = nil
	fc.cplQ = nil
	for cl := range fc.held {
		fc.held[cl] = fcPair{}
	}
	fc.pendInit1 = [fcNumClasses]bool{}
	fc.pendInit2 = [fcNumClasses]bool{}
	fc.pendUpd = [fcNumClasses]bool{}
	fc.updateRxGauges()
}

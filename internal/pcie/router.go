package pcie

import (
	"fmt"

	"pciesim/internal/mem"
	"pciesim/internal/pci"
	"pciesim/internal/sim"
	"pciesim/internal/stats"
	"pciesim/internal/trace"
)

// RouterConfig holds the knobs shared by the root complex and switch:
// "Each port associated with the root complex has configurable buffers
// and models the congestion at the port. Also, there is a configurable
// latency for request/response processing" (§V-A).
type RouterConfig struct {
	// Latency is the per-packet processing (switching) latency.
	Latency sim.Tick
	// BufferSize bounds each port's egress buffer, in packets per
	// master or slave port (the Fig 9(d) sweep variable; default 16).
	BufferSize int
	// CompletionTimeout, when nonzero, arms a completion timer on
	// every non-posted request the root complex forwards downstream.
	// If the completer never answers (dead link, wedged device), the
	// root complex synthesizes an all-ones error completion so the
	// requester degrades instead of deadlocking. Honored by the root
	// complex; switches forward and let the RC own the timeout.
	CompletionTimeout sim.Tick
	// Credits is the platform-wide flow-control configuration. On a
	// link with finite credits, each of this router's ports advertises
	// these credits capped at what its real BufferSize-deep queues can
	// absorb (see Port.ConnectLink). The zero value advertises the
	// queue depths alone.
	Credits CreditConfig
	// EnableDPC adds a Downstream Port Containment extended capability
	// to every slot-implemented port (root ports, switch downstream
	// ports). When software arms the capability, a surprise-down or
	// surprise removal below the port triggers containment: in-flight
	// non-posted requests into the dead sub-tree get synthesized error
	// completions immediately instead of waiting out the completion
	// timeout, posted writes are discarded and counted, and new
	// requests are answered at the port until software releases the
	// trigger. Off by default so existing platforms are bit-identical.
	EnableDPC bool
}

func (c *RouterConfig) applyDefaults() {
	if c.BufferSize == 0 {
		c.BufferSize = 16
	}
}

// Port is one bidirectional port of a root complex or switch: a master
// half that sends requests downstream/upstream and a slave half that
// receives them, each with its own bounded egress buffer.
type Port struct {
	r     *router
	index int // 0 is the upstream port
	name  string

	// vp2p is the port's virtual PCI-to-PCI bridge configuration space.
	// Every switch port has one; root complex root ports have one; the
	// root complex upstream port does not (§V-B: "This is in contrast
	// to the root complex, where only the downstream ports (root ports)
	// are represented by VP2P").
	vp2p *pci.ConfigSpace

	slave  *mem.SlavePort
	master *mem.MasterPort

	reqQ  *mem.SendQueue // egress requests, sent from the master half
	respQ *mem.SendQueue // egress responses, sent from the slave half

	reqWaiters  []*Port // ingress ports refused because reqQ was full
	respWaiters []*Port
	// abortRetryPending marks a request refused because the local
	// response queue (used for master aborts) was full.
	abortRetryPending bool

	// cached VP2P window decode, invalidated on config writes
	win      portWindows
	winValid bool

	// aer is the port VP2P's Advanced Error Reporting capability (nil
	// for the root complex upstream port, which has no VP2P).
	aer *pci.AER

	// dpc/npt implement Downstream Port Containment on downstream-
	// facing slot ports; both nil unless RouterConfig.EnableDPC.
	dpc *pci.DPC
	npt *npTracker

	// pcieCapOff caches the VP2P's PCI-Express capability offset for
	// slot/link status updates (0 when absent).
	pcieCapOff int

	// Stats.
	reqIn, respIn, aborts uint64
}

type portWindows struct {
	io, mem, pref  mem.AddrRange
	secBus, subBus uint8
}

// VP2P returns the port's bridge configuration space (nil for the root
// complex upstream port).
func (p *Port) VP2P() *pci.ConfigSpace { return p.vp2p }

// AER returns the port's Advanced Error Reporting capability, if any.
func (p *Port) AER() *pci.AER { return p.aer }

// MasterPort returns the half that issues requests out of this port.
func (p *Port) MasterPort() *mem.MasterPort { return p.master }

// SlavePort returns the half that accepts requests into this port.
func (p *Port) SlavePort() *mem.SlavePort { return p.slave }

// ConnectLink wires a PCI-Express link's upstream end to this
// (downstream-facing) port. On an FC link the port advertises its
// receiver credits from its real queue depths (capped further by the
// router's configured Credits); on a legacy link the advertisement is
// a no-op.
func (p *Port) ConnectLink(l *Link) {
	mem.Connect(p.master, l.Up().SlavePort())
	mem.Connect(l.Up().MasterPort(), p.slave)
	l.Up().AdvertiseCredits(p.advertCredits())
	p.watchLink(l, true)
}

// advertCredits derives what this port can honestly advertise: the
// configured platform credits, capped at its BufferSize-deep ingress
// queues.
func (p *Port) advertCredits() CreditConfig {
	return MinCredits(p.r.cfg.Credits, CreditsForQueueDepth(p.r.cfg.BufferSize))
}

// watchLink mirrors the link's lifecycle into the port's configuration
// space (Link Status speed/width, slot presence and state-change bits)
// and, on downstream ports with DPC armed, triggers containment on a
// surprise-down. slot says whether the VP2P's PCI-Express capability
// implements the slot registers (switch upstream ports do not).
func (p *Port) watchLink(l *Link, slot bool) {
	if p.vp2p == nil {
		return
	}
	if p.pcieCapOff == 0 {
		p.pcieCapOff = pci.FindCapability(p.vp2p, pci.CapIDPCIExpress)
	}
	capOff := p.pcieCapOff
	if capOff == 0 {
		return
	}
	if slot {
		// The device below the slot is seated at wiring time. Raw set:
		// the boot-time seating predates software, so no PDC latch.
		st := p.vp2p.Word(capOff + pci.PCIeSlotStatusOffset)
		p.vp2p.SetWord(capOff+pci.PCIeSlotStatusOffset, st|pci.SlotStatusPDS)
	}
	l.SetNotify(func(n LinkNotice) {
		switch n {
		case NoticeRetrained:
			pci.SetLinkStatus(p.vp2p, capOff, uint8(l.CurrentGen()), uint8(l.CurrentWidth()))
			if slot {
				pci.SetSlotLinkStateChanged(p.vp2p, capOff)
			}
		case NoticeDead:
			if slot {
				pci.SetSlotLinkStateChanged(p.vp2p, capOff)
			}
			p.triggerDPC(pci.DPCReasonFatal)
		case NoticeRemoved:
			if slot {
				pci.SetSlotPresence(p.vp2p, capOff, false)
				pci.SetSlotLinkStateChanged(p.vp2p, capOff)
			}
			p.triggerDPC(pci.DPCReasonFatal)
		case NoticeReinserted:
			if slot {
				pci.SetSlotPresence(p.vp2p, capOff, true)
				pci.SetSlotLinkStateChanged(p.vp2p, capOff)
			}
		}
	})
}

// DPC returns the port's Downstream Port Containment capability handle
// (nil unless RouterConfig.EnableDPC). The platform layer hooks its
// OnTrigger to raise the containment interrupt toward software.
func (p *Port) DPC() *pci.DPC { return p.dpc }

// armDPC attaches the DPC capability and its containment tracker to a
// downstream-facing slot port. Stats appear only on armed platforms so
// unarmed dumps stay byte-identical.
func (p *Port) armDPC() {
	p.dpc = pci.AddDPC(p.vp2p)
	p.npt = newNPTracker(p)
	t := p.npt
	reg := p.r.eng.Stats()
	reg.CounterFunc(p.name+".dpc.triggers", func() uint64 { return p.dpc.Triggers() })
	reg.CounterFunc(p.name+".dpc.releases", func() uint64 { return p.dpc.Releases() })
	reg.CounterFunc(p.name+".dpc.np_synth", func() uint64 { return t.synth })
	reg.CounterFunc(p.name+".dpc.posted_discarded", func() uint64 { return t.postedDiscarded })
	reg.CounterFunc(p.name+".dpc.late", func() uint64 { return t.late })
}

// triggerDPC engages containment after a fatal error below the port:
// the capability latches trigger status (a no-op unless software armed
// it), then every in-flight non-posted request into the sub-tree is
// answered with a synthesized error completion so no requester above
// the break ever hangs.
func (p *Port) triggerDPC(reason uint16) {
	if p.dpc == nil || p.dpc.Contained() {
		return
	}
	_, sec, _ := pci.BridgeBusNumbers(p.vp2p)
	if !p.dpc.Trigger(reason, pci.NewBDF(sec, 0, 0)) {
		return
	}
	if tr := p.r.eng.Tracer(); tr.On(trace.CatFault) {
		tr.Emit(trace.CatFault, uint64(p.r.eng.Now()), p.name, "dpc-trigger", 0,
			fmt.Sprintf("reason=%d containing %d in-flight non-posted requests",
				reason, len(p.npt.byID)))
	}
	p.npt.flushAll()
}

// npTracker follows every non-posted request forwarded out one DPC-
// capable downstream port, mirroring the root complex's ctoTracker: an
// error completion is pre-built at track time (the live request may be
// converted in place by a completer before the sub-tree dies), matched
// completions retire entries, and a containment trigger answers every
// outstanding entry at once. Tombstones swallow genuine completions
// that race the synthesized ones.
type npTracker struct {
	p     *Port
	order []*npEntry // FIFO; leading done entries pruned lazily
	byID  map[uint64]*npEntry
	// answered holds IDs whose error completion containment
	// synthesized; a genuine completion with that ID must be dropped.
	answered map[uint64]struct{}
	// flushQ holds entries awaiting synthesis while the ingress
	// response queue is full; drainEv retries.
	flushQ  []*npEntry
	drainEv *sim.Event

	synth           uint64 // error completions synthesized
	postedDiscarded uint64 // posted writes discarded while contained
	late            uint64 // genuine completions dropped after synthesis
}

type npEntry struct {
	id      uint64
	errResp *mem.Packet
	in      *Port // ingress port: the synthesized completion's way back
	done    bool
}

func newNPTracker(p *Port) *npTracker {
	t := &npTracker{
		p:        p,
		byID:     make(map[uint64]*npEntry),
		answered: make(map[uint64]struct{}),
	}
	t.drainEv = p.r.eng.NewEvent(p.name+".dpcDrain", t.drain)
	return t
}

// track records a non-posted request forwarded out the port.
func (t *npTracker) track(pkt *mem.Packet, in *Port) {
	for len(t.order) > 0 && t.order[0].done {
		t.order = t.order[1:]
	}
	e := &npEntry{id: pkt.ID, errResp: pkt.MakeErrorResponse(), in: in}
	t.order = append(t.order, e)
	t.byID[pkt.ID] = e
}

// observe matches an inbound completion; false means the completion is
// late (containment already answered it) and must be swallowed.
func (t *npTracker) observe(id uint64) bool {
	if _, dead := t.answered[id]; dead {
		delete(t.answered, id)
		t.late++
		if tr := t.p.r.eng.Tracer(); tr.On(trace.CatFault) {
			tr.Emit(trace.CatFault, uint64(t.p.r.eng.Now()), t.p.name,
				"dpc-late-completion", id, "dropped; containment already answered")
		}
		return false
	}
	if e, ok := t.byID[id]; ok {
		e.done = true
		delete(t.byID, id)
	}
	return true
}

// cancel retires an entry someone else answered (the root complex
// completion timeout) without tombstoning it here.
func (t *npTracker) cancel(id uint64) {
	if e, ok := t.byID[id]; ok {
		e.done = true
		delete(t.byID, id)
	}
}

// flushAll answers every outstanding non-posted request with its
// pre-built error completion, routed back through its ingress port.
func (t *npTracker) flushAll() {
	for _, e := range t.order {
		if e.done {
			continue
		}
		e.done = true
		delete(t.byID, e.id)
		t.answered[e.id] = struct{}{}
		if t.p.r.cto != nil {
			// Containment owns the answer; the completion timeout must
			// not fire a duplicate later.
			t.p.r.cto.cancel(e.id)
		}
		t.flushQ = append(t.flushQ, e)
	}
	t.order = t.order[:0]
	t.drain()
}

// drain pushes queued synthesized completions, retrying while ingress
// response queues are full (they always drain: they end at requesters).
func (t *npTracker) drain() {
	eng := t.p.r.eng
	for len(t.flushQ) > 0 {
		e := t.flushQ[0]
		if e.in.respQ.Full() {
			eng.ScheduleEventAfter(t.drainEv, t.p.r.cfg.Latency+1, sim.PriorityTimer)
			return
		}
		t.flushQ = t.flushQ[1:]
		t.synth++
		if tr := eng.Tracer(); tr.On(trace.CatFault) {
			tr.Emit(trace.CatFault, uint64(eng.Now()), t.p.name,
				"dpc-synth", e.id, "synthesizing error completion for contained request")
		}
		e.in.respQ.Push(e.errResp, eng.Now()+t.p.r.cfg.Latency)
	}
}

// containedAbort answers a request routed at a contained port: posted
// writes are discarded and counted, non-posted requests complete with
// an error in place through the ingress port, like a master abort.
func (p *Port) containedAbort(in *Port, pkt *mem.Packet) bool {
	t := p.npt
	eng := p.r.eng
	if pkt.Posted {
		t.postedDiscarded++
		if tr := eng.Tracer(); tr.On(trace.CatFault) {
			tr.Emit(trace.CatFault, uint64(eng.Now()), p.name,
				"dpc-posted-discard", pkt.ID, "")
		}
		pkt.Release()
		return true
	}
	if in.respQ.Full() {
		in.abortRetryPending = true
		return false
	}
	t.synth++
	if tr := eng.Tracer(); tr.On(trace.CatFault) {
		tr.Emit(trace.CatFault, uint64(eng.Now()), p.name,
			"dpc-abort", pkt.ID, "port contained; completing with error")
	}
	if pkt.Cmd == mem.ReadReq {
		if pkt.Data == nil {
			pkt.Data = make([]byte, pkt.Size)
		}
		for i := range pkt.Data {
			pkt.Data[i] = 0xff
		}
	}
	pkt.Error = true
	in.respQ.Push(pkt.MakeResponse(), eng.Now()+p.r.cfg.Latency)
	return true
}

// QueueStats exposes the egress queue counters for the request and
// response queues.
func (p *Port) QueueStats() (req, resp mem.QueueStats) {
	return p.reqQ.Stats(), p.respQ.Stats()
}

func (p *Port) windows() portWindows {
	if !p.winValid {
		iob, iol := pci.BridgeIOWindow(p.vp2p)
		mb, ml := pci.BridgeMemWindow(p.vp2p)
		_, sec, sub := pci.BridgeBusNumbers(p.vp2p)
		w := portWindows{secBus: sec, subBus: sub}
		if pci.WindowEnabled(iob, iol) {
			w.io = mem.Span(iob, iol+1)
		}
		if pci.WindowEnabled(mb, ml) {
			w.mem = mem.Span(mb, ml+1)
		}
		p.win = w
		p.winValid = true
	}
	return p.win
}

// claims reports whether the port's programmed windows cover addr.
func (p *Port) claims(addr uint64) bool {
	if p.vp2p == nil {
		return false
	}
	w := p.windows()
	return w.io.Contains(addr) || w.mem.Contains(addr) || w.pref.Contains(addr)
}

// claimsBus reports whether bus lies in [secondary, subordinate].
func (p *Port) claimsBus(bus int) bool {
	if p.vp2p == nil || bus < 0 {
		return false
	}
	w := p.windows()
	return bus >= int(w.secBus) && bus <= int(w.subBus) && w.subBus != 0
}

// router is the machinery shared by RootComplex and Switch. Port 0 is
// the upstream port; the rest face downstream.
type router struct {
	eng   *sim.Engine
	name  string
	cfg   RouterConfig
	ports []*Port

	// upstreamStampBus is the bus number stamped onto unstamped
	// requests entering the upstream port — 0 at the root complex ("The
	// upstream root complex slave port sets the bus number to be 0").
	upstreamStampBus int

	// checkUpstreamWindow makes the upstream ingress verify the
	// upstream VP2P windows before routing (switch semantics, §V-B).
	checkUpstreamWindow bool

	// noP2P disables downstream-to-downstream turnaround (switches
	// only): peer traffic entering a downstream port is forced out the
	// upstream port instead, so it reflects off the root complex. The
	// response path mirrors the request path — a response whose bus
	// number matches a peer downstream port is also forced upstream.
	noP2P bool

	// allowHairpin lets a request entering a downstream port whose own
	// windows claim the address turn around on that same port (root
	// complex only): this is the RC reflection path for peer-to-peer
	// traffic that was forced up by a noP2P switch. Without it the
	// request would escape into the memory system and master-abort.
	allowHairpin bool

	// p2pTurns counts requests routed downstream-to-downstream (switch
	// turnaround) or hairpinned back out their ingress port (RC
	// reflection).
	p2pTurns uint64

	// cto tracks outstanding non-posted downstream requests when
	// CompletionTimeout is armed (root complex only).
	cto *ctoTracker
}

// ctoTracker implements the root complex completion-timeout mechanism:
// a FIFO of outstanding non-posted requests with a single timer event
// (deadlines are monotone because the timeout is fixed), an index by
// packet ID for completion matching, and a tombstone set so a late
// completion arriving after its synthesized error response is dropped
// before it can reach a requester that already consumed the error.
type ctoTracker struct {
	r       *router
	timeout sim.Tick
	ev      *sim.Event
	pending []*ctoEntry
	byID    map[uint64]*ctoEntry
	// timedOut holds IDs whose error completion was synthesized; a
	// real completion with that ID is late and must be dropped.
	timedOut map[uint64]struct{}

	fired uint64 // error completions synthesized
	late  uint64 // genuine completions dropped after timing out

	// lat is the request-tracked-to-completion latency histogram for
	// requests that did complete in time.
	lat *stats.Histogram
	// seg is the cpl-turnaround attribution histogram, resolved lazily
	// when spans are armed (nil until then, so unarmed dumps are
	// unchanged).
	seg *stats.Histogram
}

type ctoEntry struct {
	id uint64
	// trackedAt feeds the completion-latency histogram.
	trackedAt sim.Tick
	// errResp is the error completion pre-built at track time. It must
	// be snapshotted here, not synthesized at expiry: MakeResponse
	// converts request packets in place, so by the time the timer
	// fires a completer may already have turned the live request into
	// a response that then died on the dead link.
	errResp  *mem.Packet
	dst      *Port
	deadline sim.Tick
	done     bool
}

func newCTOTracker(r *router, timeout sim.Tick) *ctoTracker {
	t := &ctoTracker{
		r: r, timeout: timeout,
		byID:     make(map[uint64]*ctoEntry),
		timedOut: make(map[uint64]struct{}),
	}
	t.ev = r.eng.NewEvent(r.name+".ctoTimer", t.fire)
	reg := r.eng.Stats()
	reg.CounterFunc(r.name+".cto.fired", func() uint64 { return t.fired })
	reg.CounterFunc(r.name+".cto.late", func() uint64 { return t.late })
	t.lat = reg.Histogram(r.name + ".completion_latency")
	return t
}

// track arms the timer for a non-posted request forwarded to dst.
func (t *ctoTracker) track(pkt *mem.Packet, dst *Port) {
	e := &ctoEntry{
		id:        pkt.ID,
		trackedAt: t.r.eng.Now(),
		errResp:   pkt.MakeErrorResponse(),
		dst:       dst,
		deadline:  t.r.eng.Now() + t.timeout,
	}
	t.pending = append(t.pending, e)
	t.byID[pkt.ID] = e
	if !t.ev.Scheduled() {
		t.r.eng.ScheduleEvent(t.ev, e.deadline, sim.PriorityTimer)
	}
}

// observe matches an inbound completion. It returns false if the
// completion is late — the timeout already answered the requester —
// in which case the caller must swallow the packet.
func (t *ctoTracker) observe(id uint64) bool {
	if _, dead := t.timedOut[id]; dead {
		delete(t.timedOut, id)
		t.late++
		if tr := t.r.eng.Tracer(); tr.On(trace.CatFault) {
			tr.Emit(trace.CatFault, uint64(t.r.eng.Now()), t.r.name,
				"late-completion", id, "dropped; timeout already answered")
		}
		return false
	}
	if e, ok := t.byID[id]; ok {
		e.done = true
		delete(t.byID, id)
		t.lat.Observe(uint64(t.r.eng.Now() - e.trackedAt))
		if eng := t.r.eng; eng.SpansOn() {
			if t.seg == nil {
				t.seg = eng.Seg("cpl-turnaround")
			}
			t.seg.Observe(uint64(eng.Now() - e.trackedAt))
			if tr := eng.Tracer(); tr.On(trace.CatSpan) {
				tr.Span(uint64(e.trackedAt), uint64(eng.Now()), t.r.name, "cpl-turnaround", id, "")
			}
		}
	}
	return true
}

// cancel retires an entry another mechanism (DPC containment) already
// answered, without recording a completion latency or a tombstone.
func (t *ctoTracker) cancel(id uint64) {
	if e, ok := t.byID[id]; ok {
		e.done = true
		delete(t.byID, id)
	}
}

// fire expires every overdue entry, synthesizing error completions
// through the upstream response queue, then re-arms for the next
// deadline.
func (t *ctoTracker) fire() {
	eng := t.r.eng
	now := eng.Now()
	up := t.r.ports[0]
	for len(t.pending) > 0 {
		e := t.pending[0]
		if e.done {
			t.pending = t.pending[1:]
			continue
		}
		if e.deadline > now {
			break
		}
		if up.respQ.Full() {
			// The upstream response path always drains (it ends at the
			// CPU); retry shortly rather than dropping the timeout.
			eng.ScheduleEventAfter(t.ev, t.r.cfg.Latency+1, sim.PriorityTimer)
			return
		}
		t.pending = t.pending[1:]
		e.done = true
		delete(t.byID, e.id)
		t.timedOut[e.id] = struct{}{}
		t.fired++
		if e.dst.npt != nil {
			// The timeout owns the answer now; containment must not
			// synthesize a duplicate if the port triggers later.
			e.dst.npt.cancel(e.id)
		}
		// Latch the offending request's packet ID in the AER header
		// log so software can name the exact TLP that timed out.
		e.dst.aer.ReportUncorrectableTLP(pci.AERUncCompletionTimeout, e.id)
		if tr := eng.Tracer(); tr.On(trace.CatFault) {
			tr.Emit(trace.CatFault, uint64(now), t.r.name,
				"completion-timeout", e.id,
				fmt.Sprintf("no completion for pkt#%d within %v; synthesizing error response", e.id, t.timeout))
		}
		up.respQ.Push(e.errResp, now+t.r.cfg.Latency)
	}
	for len(t.pending) > 0 && t.pending[0].done {
		t.pending = t.pending[1:]
	}
	if len(t.pending) > 0 && !t.ev.Scheduled() {
		eng.ScheduleEvent(t.ev, t.pending[0].deadline, sim.PriorityTimer)
	}
}

func (r *router) addPort(name string, vp2p *pci.ConfigSpace) *Port {
	p := &Port{r: r, index: len(r.ports), name: name, vp2p: vp2p}
	p.slave = mem.NewSlavePort(name+".slave", (*portSlave)(p))
	p.master = mem.NewMasterPort(name+".master", (*portMaster)(p))
	p.reqQ = mem.NewSendQueue(r.eng, name+".reqq", r.cfg.BufferSize, func(pk *mem.Packet) bool {
		return p.master.SendTimingReq(pk)
	})
	p.reqQ.Segment("switch-arb")
	p.reqQ.OnFree(func() { p.wakeWaiters(&p.reqWaiters, true) })
	p.respQ = mem.NewSendQueue(r.eng, name+".respq", r.cfg.BufferSize, func(pk *mem.Packet) bool {
		return p.slave.SendTimingResp(pk)
	})
	p.respQ.Segment("switch-arb")
	p.respQ.OnFree(func() {
		p.wakeWaiters(&p.respWaiters, false)
		if p.abortRetryPending {
			p.abortRetryPending = false
			r.eng.ScheduleAt(p.name+".abortretry", r.eng.Now(), sim.PriorityRetry, p.slave.SendReqRetry)
		}
	})
	if vp2p != nil {
		vp2p.OnWrite = func(int, int, uint32) { p.winValid = false }
	}
	reg := r.eng.Stats()
	reg.CounterFunc(name+".req_in", func() uint64 { return p.reqIn })
	reg.CounterFunc(name+".resp_in", func() uint64 { return p.respIn })
	reg.CounterFunc(name+".aborts", func() uint64 { return p.aborts })
	r.ports = append(r.ports, p)
	return p
}

// wakeWaiters grants the freed slot to the oldest waiting ingress port
// by telling its external peer to retry.
func (p *Port) wakeWaiters(list *[]*Port, req bool) {
	if len(*list) == 0 {
		return
	}
	w := (*list)[0]
	copy(*list, (*list)[1:])
	*list = (*list)[:len(*list)-1]
	eng := p.r.eng
	if req {
		eng.ScheduleAt(w.name+".reqretry", eng.Now(), sim.PriorityRetry, w.slave.SendReqRetry)
	} else {
		eng.ScheduleAt(w.name+".respretry", eng.Now(), sim.PriorityRetry, w.master.SendRespRetry)
	}
}

func addWaiter(list *[]*Port, p *Port) {
	for _, w := range *list {
		if w == p {
			return
		}
	}
	*list = append(*list, p)
}

// routeRequest picks the egress port for a request entering at `in`.
// Downward traffic matches VP2P windows; unmatched traffic goes
// upstream (DMA toward memory) unless it entered there, in which case
// it is a master abort.
func (r *router) routeRequest(in *Port, pkt *mem.Packet) (*Port, bool) {
	if in.index == 0 && r.checkUpstreamWindow && !in.claims(pkt.Addr) {
		// Switch semantics: "the upstream slave port accepts an address
		// range based on the (I/O and memory) base and limit register
		// values stored in the upstream VP2P."
		return nil, false
	}
	for _, p := range r.ports[1:] {
		if p != in && p.claims(pkt.Addr) {
			if r.noP2P && in.index != 0 {
				// Peer-to-peer opt-out: force the request out the
				// upstream port so it reflects off the root complex.
				break
			}
			if in.index != 0 {
				r.p2pTurns++ // switch-level turnaround
			}
			return p, true
		}
	}
	if in.index != 0 {
		if r.allowHairpin && in.claims(pkt.Addr) {
			// RC reflection: the address lives below the ingress root
			// port itself, so turn the request around on that port.
			r.p2pTurns++
			return in, true
		}
		return r.ports[0], true // upstream, toward the host
	}
	return nil, false
}

// routeResponse picks the egress port for a response by its PCI bus
// number: "If the response packet's bus number falls within the range
// defined by a particular VP2P secondary and subordinate bus numbers,
// the response packet is forwarded out to the corresponding slave port.
// If no match is found, the response packet is forwarded to the
// upstream slave port" (§V-A).
func (r *router) routeResponse(in *Port, pkt *mem.Packet) *Port {
	for _, p := range r.ports[1:] {
		if p.claimsBus(pkt.BusNum) {
			if r.noP2P && in.index != 0 && p.index != 0 {
				// Mirror the request-path opt-out: a peer-to-peer
				// completion must reflect off the root complex too, not
				// short-cut across the switch.
				return r.ports[0]
			}
			return p
		}
	}
	return r.ports[0]
}

// portSlave adapts Port to mem.SlaveOwner (ingress requests, egress
// responses).
type portSlave Port

func (o *portSlave) p() *Port { return (*Port)(o) }

func (o *portSlave) RecvTimingReq(_ *mem.SlavePort, pkt *mem.Packet) bool {
	p := o.p()
	r := p.r
	// Stamp the response-routing bus number on first entry into the
	// fabric (§V-A).
	if pkt.BusNum == mem.NoBus {
		if p.index == 0 {
			pkt.BusNum = r.upstreamStampBus
		} else {
			_, sec, _ := pci.BridgeBusNumbers(p.vp2p)
			pkt.BusNum = int(sec)
		}
	}
	dst, ok := r.routeRequest(p, pkt)
	if !ok {
		// Master abort: complete the request locally with all-ones
		// data, as a real fabric does for unclaimed addresses.
		return p.masterAbort(pkt)
	}
	if dst.dpc.Contained() {
		// The sub-tree below dst is contained: answer at the port
		// instead of forwarding into the dead link.
		return dst.containedAbort(p, pkt)
	}
	if dst.reqQ.Full() {
		addWaiter(&dst.reqWaiters, p)
		return false
	}
	p.reqIn++
	if r.cto != nil && p.index == 0 && dst.index != 0 && !pkt.Posted {
		r.cto.track(pkt, dst)
	}
	if dst.npt != nil && !pkt.Posted {
		dst.npt.track(pkt, p)
	}
	dst.reqQ.Push(pkt, r.eng.Now()+r.cfg.Latency)
	return true
}

func (o *portSlave) RecvRespRetry(*mem.SlavePort) { o.p().respQ.RetryReceived() }

func (o *portSlave) AddrRanges(*mem.SlavePort) mem.RangeList { return nil }

// masterAbort completes an unroutable request with all-ones data
// through the ingress port's own response queue.
func (p *Port) masterAbort(pkt *mem.Packet) bool {
	if p.respQ.Full() {
		p.abortRetryPending = true
		return false
	}
	p.aborts++
	if tr := p.r.eng.Tracer(); tr.On(trace.CatFault) {
		tr.Emit(trace.CatFault, uint64(p.r.eng.Now()), p.name,
			"master-abort", pkt.ID, fmt.Sprintf("unclaimed addr %#x", pkt.Addr))
	}
	if pkt.Cmd == mem.ReadReq {
		if pkt.Data == nil {
			pkt.Data = make([]byte, pkt.Size)
		}
		for i := range pkt.Data {
			pkt.Data[i] = 0xff
		}
	}
	p.respQ.Push(pkt.MakeResponse(), p.r.eng.Now()+p.r.cfg.Latency)
	return true
}

// portMaster adapts Port to mem.MasterOwner (ingress responses, egress
// requests).
type portMaster Port

func (o *portMaster) p() *Port { return (*Port)(o) }

func (o *portMaster) RecvTimingResp(_ *mem.MasterPort, pkt *mem.Packet) bool {
	p := o.p()
	r := p.r
	if p.npt != nil && !p.npt.observe(pkt.ID) {
		// Late completion for a request DPC containment already
		// answered: swallow it before it reaches the requester twice.
		return true
	}
	if r.cto != nil && p.index != 0 && !r.cto.observe(pkt.ID) {
		// Late completion for a request the timeout already answered:
		// swallow it here, before it can reach the requester twice.
		return true
	}
	dst := r.routeResponse(p, pkt)
	if dst.respQ.Full() {
		addWaiter(&dst.respWaiters, p)
		return false
	}
	p.respIn++
	dst.respQ.Push(pkt, r.eng.Now()+r.cfg.Latency)
	return true
}

func (o *portMaster) RecvReqRetry(*mem.MasterPort) { o.p().reqQ.RetryReceived() }

// RootComplexConfig parameterizes a root complex.
type RootComplexConfig struct {
	RouterConfig
	// NumRootPorts is the number of downstream root ports (the paper's
	// model implements three).
	NumRootPorts int
	// PortDeviceIDs optionally overrides the VP2P device IDs; defaults
	// to the Intel Wildcat Point root port IDs of §V-A.
	PortDeviceIDs []uint16
}

// RootComplex is the paper's root complex model (§V-A, Fig 6): an
// upstream port toward the memory system (DMA flows out of its master
// half into the IOCache; CPU requests flow into its slave half from the
// MemBus side) and root ports, each with a VP2P registered with the PCI
// host on internal bus 0.
type RootComplex struct {
	router
}

// NewRootComplex builds the root complex and registers its VP2Ps with
// the PCI host as devices 0..N-1 on bus 0.
func NewRootComplex(eng *sim.Engine, name string, host *pci.Host, cfg RootComplexConfig) *RootComplex {
	cfg.RouterConfig.applyDefaults()
	if cfg.NumRootPorts == 0 {
		cfg.NumRootPorts = 3
	}
	ids := cfg.PortDeviceIDs
	if ids == nil {
		ids = []uint16{pci.DeviceWildcatPort0, pci.DeviceWildcatPort1, pci.DeviceWildcatPort2}
	}
	rc := &RootComplex{router{
		eng: eng, name: name, cfg: cfg.RouterConfig,
		upstreamStampBus: 0,
		allowHairpin:     true,
	}}
	rc.addPort(name+".upstream", nil)
	for i := 0; i < cfg.NumRootPorts; i++ {
		id := ids[i%len(ids)]
		vp2p := pci.NewType1Space(fmt.Sprintf("%s.vp2p%d", name, i), pci.Ident{
			VendorID:  pci.VendorIntel,
			DeviceID:  id,
			ClassCode: pci.ClassBridgePCI,
		})
		pci.AddPCIeCap(vp2p, pci.PCIeCapConfig{
			PortType:        pci.PCIePortRootPort,
			LinkSpeed:       pci.LinkSpeedGen2,
			LinkWidth:       4,
			SlotImplemented: true,
		})
		port := rc.addPort(fmt.Sprintf("%s.rootport%d", name, i), vp2p)
		port.aer = pci.AddAER(vp2p)
		if cfg.EnableDPC {
			port.armDPC()
		}
		host.Register(pci.NewBDF(0, uint8(i), 0), vp2p)
	}
	if cfg.CompletionTimeout > 0 {
		rc.cto = newCTOTracker(&rc.router, cfg.CompletionTimeout)
	}
	return rc
}

// CompletionTimeouts returns how many error completions the root
// complex synthesized and how many late genuine completions it dropped.
func (rc *RootComplex) CompletionTimeouts() (fired, late uint64) {
	if rc.cto == nil {
		return 0, 0
	}
	return rc.cto.fired, rc.cto.late
}

// UpstreamSlave returns the port half accepting processor requests
// (wired to the bridge from the MemBus).
func (rc *RootComplex) UpstreamSlave() *mem.SlavePort { return rc.ports[0].slave }

// UpstreamMaster returns the port half issuing DMA requests toward the
// IOCache.
func (rc *RootComplex) UpstreamMaster() *mem.MasterPort { return rc.ports[0].master }

// RootPort returns downstream root port i (0-based).
func (rc *RootComplex) RootPort(i int) *Port { return rc.ports[i+1] }

// NumRootPorts returns the downstream port count.
func (rc *RootComplex) NumRootPorts() int { return len(rc.ports) - 1 }

// Aborts returns the total master-abort count across ports.
func (rc *RootComplex) Aborts() uint64 { return aborts(&rc.router) }

// Reflections counts peer-to-peer requests that hairpinned off a root
// port — traffic a noP2P switch forced up instead of turning around.
func (rc *RootComplex) Reflections() uint64 { return rc.p2pTurns }

// SwitchConfig parameterizes a switch.
type SwitchConfig struct {
	RouterConfig
	// NumDownstreamPorts is the downstream port count.
	NumDownstreamPorts int
	// UpstreamBus/InternalBus pre-assign the configuration bus numbers
	// the switch's VP2Ps are registered under (gem5's PCI host requires
	// static registration; the system builder picks numbers matching
	// the enumeration DFS order).
	UpstreamBus uint8
	InternalBus uint8
	// NoP2P disables downstream-to-downstream turnaround: peer traffic
	// (requests and their completions) is forced out the upstream port
	// and reflects off the root complex instead. The default (false)
	// turns peer-to-peer traffic around at the switch.
	NoP2P bool
}

// Switch is the paper's store-and-forward switch (§V-B): one upstream
// port and N downstream ports, each represented by a VP2P. It is "built
// upon the root complex model"; the differences are that the upstream
// port also has a VP2P, and the upstream ingress accepts only addresses
// inside that VP2P's windows.
type Switch struct {
	router
}

// NewSwitch builds a switch and registers its VP2Ps with the PCI host:
// the upstream VP2P as device 0 on UpstreamBus, downstream VP2Ps as
// devices 0..N-1 on InternalBus.
func NewSwitch(eng *sim.Engine, name string, host *pci.Host, cfg SwitchConfig) *Switch {
	cfg.RouterConfig.applyDefaults()
	if cfg.NumDownstreamPorts == 0 {
		cfg.NumDownstreamPorts = 2
	}
	sw := &Switch{router{
		eng: eng, name: name, cfg: cfg.RouterConfig,
		upstreamStampBus:    int(cfg.UpstreamBus),
		checkUpstreamWindow: true,
		noP2P:               cfg.NoP2P,
	}}
	up := pci.NewType1Space(name+".upvp2p", pci.Ident{
		VendorID: pci.VendorIntel, DeviceID: 0x8c10, ClassCode: pci.ClassBridgePCI,
	})
	pci.AddPCIeCap(up, pci.PCIeCapConfig{
		PortType: pci.PCIePortSwitchUpstream, LinkSpeed: pci.LinkSpeedGen2, LinkWidth: 4,
	})
	upPort := sw.addPort(name+".upstream", up)
	upPort.aer = pci.AddAER(up)
	host.Register(pci.NewBDF(cfg.UpstreamBus, 0, 0), up)
	for i := 0; i < cfg.NumDownstreamPorts; i++ {
		down := pci.NewType1Space(fmt.Sprintf("%s.downvp2p%d", name, i), pci.Ident{
			VendorID: pci.VendorIntel, DeviceID: 0x8c11, ClassCode: pci.ClassBridgePCI,
		})
		pci.AddPCIeCap(down, pci.PCIeCapConfig{
			PortType: pci.PCIePortSwitchDownstream, LinkSpeed: pci.LinkSpeedGen2,
			LinkWidth: 1, SlotImplemented: true,
		})
		downPort := sw.addPort(fmt.Sprintf("%s.downport%d", name, i), down)
		downPort.aer = pci.AddAER(down)
		if cfg.EnableDPC {
			downPort.armDPC()
		}
		host.Register(pci.NewBDF(cfg.InternalBus, uint8(i), 0), down)
	}
	return sw
}

// UpstreamPort returns the switch's upstream port; wire its link with
// ConnectUpstreamLink.
func (s *Switch) UpstreamPort() *Port { return s.ports[0] }

// ConnectUpstreamLink wires a link's downstream end to the switch's
// upstream port, advertising the port's receiver credits on FC links
// (see Port.ConnectLink).
func (s *Switch) ConnectUpstreamLink(l *Link) {
	mem.Connect(s.ports[0].master, l.Down().SlavePort())
	mem.Connect(l.Down().MasterPort(), s.ports[0].slave)
	l.Down().AdvertiseCredits(s.ports[0].advertCredits())
	s.ports[0].watchLink(l, false)
}

// DownstreamPort returns downstream port i (0-based).
func (s *Switch) DownstreamPort(i int) *Port { return s.ports[i+1] }

// NumDownstreamPorts returns the downstream port count.
func (s *Switch) NumDownstreamPorts() int { return len(s.ports) - 1 }

// Aborts returns the total master-abort count across ports.
func (s *Switch) Aborts() uint64 { return aborts(&s.router) }

// P2PTurnarounds counts requests that entered one downstream port and
// left through another without traversing the uplink.
func (s *Switch) P2PTurnarounds() uint64 { return s.p2pTurns }

func aborts(r *router) uint64 {
	var n uint64
	for _, p := range r.ports {
		n += p.aborts
	}
	return n
}

package pcie

import (
	"fmt"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
)

// PktKind distinguishes what a PciePkt carries.
type PktKind uint8

// Packet kinds: a transaction layer packet or one of the data link
// layer packet types the model implements. The flow-control kinds
// carry credit state for one FCClass (see credit.go).
const (
	KindTLP PktKind = iota
	KindAck
	KindNak
	KindInitFC1
	KindInitFC2
	KindUpdateFC
)

// String implements fmt.Stringer.
func (k PktKind) String() string {
	switch k {
	case KindTLP:
		return "TLP"
	case KindAck:
		return "ACK"
	case KindNak:
		return "NAK"
	case KindInitFC1:
		return "InitFC1"
	case KindInitFC2:
		return "InitFC2"
	case KindUpdateFC:
		return "UpdateFC"
	default:
		return fmt.Sprintf("PktKind(%d)", uint8(k))
	}
}

// isFC reports whether the kind is a flow-control DLLP.
func (k PktKind) isFC() bool {
	return k == KindInitFC1 || k == KindInitFC2 || k == KindUpdateFC
}

// PciePkt is the paper's pcie-pkt: "Since we transmit both DLLPs and
// TLPs across the same link, we create a new wrapper class, called
// pcie-pkt, to encapsulate both DLLPs and TLPs" (§V-C). A TLP wraps a
// gem5-style memory packet; ACK/NAK DLLPs carry only a sequence number.
type PciePkt struct {
	Kind PktKind
	// Seq is the data-link-layer sequence number: the TLP's own number,
	// or the cumulative sequence being ACKed/NAKed.
	Seq uint64
	// TLP is the wrapped transaction, nil for DLLPs.
	TLP *mem.Packet

	// Corrupted marks a TLP mangled in transit (error injection); the
	// receiver's CRC check catches it and responds with a NAK.
	Corrupted bool

	// FCCl/FCHdr/FCData are the payload of the flow-control DLLP kinds
	// (InitFC1/InitFC2/UpdateFC): the traffic class and the cumulative
	// header and data credits granted for it, 0 encoding an infinite
	// counter. Zero for every other kind.
	FCCl   FCClass
	FCHdr  uint64
	FCData uint64

	// acked marks a replay-buffer entry already released by an ACK so a
	// queued retransmission of it is skipped.
	acked bool
	// replayed marks a retransmission (for the replay-rate statistic).
	replayed bool
	// acceptedAt stamps when the TLP entered the replay buffer, for the
	// accept-to-ACK latency histogram.
	acceptedAt sim.Tick
	// queuedAt stamps when the TLP last entered a transmit queue
	// (freshQ at admission, replayQ at startReplay), the begin mark of
	// the txq-wait / replay-wait attribution segments.
	queuedAt sim.Tick
	// wire snapshots the TLP's wire size at admission. Replays read the
	// snapshot, not the live mem.Packet: the wrapped TLP may since have
	// been delivered, mutated into its response, and recycled through
	// the requestor's packet pool — a replay must transmit what was
	// originally stored, exactly like a real replay buffer does.
	wire int
}

// PayloadBytes returns the TLP payload size: writes carry their data
// toward the completer, reads carry it back in the response — "The
// maximum TLP payload size is 0 for a read request or a write response
// and is cache line size for a write request or read response" (§V-C).
func (p *PciePkt) PayloadBytes() int {
	if p.Kind != KindTLP {
		return 0
	}
	switch p.TLP.Cmd {
	case mem.WriteReq, mem.ReadResp:
		return p.TLP.Size
	default:
		return 0
	}
}

// WireBytes returns the bytes this packet occupies on the wire under
// the given overhead model: "Each pcie-pkt returns a size depending on
// whether it encapsulates a TLP or a DLLP" (§V-C). TLPs admitted to a
// link carry their size as a snapshot taken at admission; see the wire
// field.
func (p *PciePkt) WireBytes(o Overheads) int {
	if p.Kind == KindTLP {
		if p.wire > 0 {
			return p.wire
		}
		return o.TLPWireBytes(p.PayloadBytes())
	}
	return o.DLLPWireBytes()
}

// String implements fmt.Stringer.
func (p *PciePkt) String() string {
	if p.Kind == KindTLP {
		return fmt.Sprintf("%v seq=%d {%v}", p.Kind, p.Seq, p.TLP)
	}
	if p.Kind.isFC() {
		return fmt.Sprintf("%v %v hdr=%d data=%d", p.Kind, p.FCCl, p.FCHdr, p.FCData)
	}
	return fmt.Sprintf("%v seq=%d", p.Kind, p.Seq)
}

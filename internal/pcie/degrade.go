// Adaptive link degradation: the LTSSM-level response to a link that
// keeps erroring. Real silicon downtrains — a retrain comes back at a
// reduced width (lane reversal/disable) or a lower generation — rather
// than replaying forever at full speed, and periodically attempts an
// upgrade retrain back toward the configured rate. This file models
// that policy as a ladder of (Gen, Width) levels: level 0 is the
// configured link, each step halves the width down to MinWidth, then
// steps the generation down to MinGen.
//
// A nil DegradeConfig disables everything: no state is allocated, no
// stats are registered, and the link is byte-identical to the
// pre-degradation simulator.
package pcie

import (
	"fmt"

	"pciesim/internal/sim"
	"pciesim/internal/stats"
	"pciesim/internal/trace"
)

// DegradeConfig arms adaptive link degradation on a link.
type DegradeConfig struct {
	// Window is the sliding error window; Threshold link errors (CRC
	// failures, bad DLLPs, replay timeouts) inside it trigger a
	// one-step downtrain.
	Window sim.Tick
	// Threshold is the error count that triggers a downtrain.
	Threshold int
	// RetrainLatency is the LTSSM recovery time of a degradation or
	// upgrade retrain (the link carries no traffic while it runs).
	RetrainLatency sim.Tick
	// UpgradeBackoff is the delay before the first upgrade-retrain
	// attempt after a downtrain; it doubles per attempt up to
	// MaxUpgradeBackoff and resets once the link is back at level 0.
	UpgradeBackoff sim.Tick
	// MaxUpgradeBackoff caps the exponential backoff.
	MaxUpgradeBackoff sim.Tick
	// MinWidth is the narrowest width the ladder reaches (>= 1).
	MinWidth int
	// MinGen is the lowest generation the ladder reaches.
	MinGen Generation
}

// DefaultDegradeConfig returns the calibrated degradation policy: an
// 8-error / 1 ms trigger window, 20 µs retrains, and upgrade attempts
// backing off 1 ms → 16 ms.
func DefaultDegradeConfig() DegradeConfig {
	return DegradeConfig{
		Window:            sim.Millisecond,
		Threshold:         8,
		RetrainLatency:    20 * sim.Microsecond,
		UpgradeBackoff:    sim.Millisecond,
		MaxUpgradeBackoff: 16 * sim.Millisecond,
		MinWidth:          1,
		MinGen:            Gen1,
	}
}

func (c *DegradeConfig) applyDefaults() {
	d := DefaultDegradeConfig()
	if c.Window == 0 {
		c.Window = d.Window
	}
	if c.Threshold == 0 {
		c.Threshold = d.Threshold
	}
	if c.RetrainLatency == 0 {
		c.RetrainLatency = d.RetrainLatency
	}
	if c.UpgradeBackoff == 0 {
		c.UpgradeBackoff = d.UpgradeBackoff
	}
	if c.MaxUpgradeBackoff == 0 {
		c.MaxUpgradeBackoff = d.MaxUpgradeBackoff
	}
	if c.MinWidth == 0 {
		c.MinWidth = 1
	}
	if c.MinGen == 0 {
		c.MinGen = Gen1
	}
}

// Validate rejects configurations the ladder cannot express.
func (c DegradeConfig) Validate() error {
	if c.Window < 0 || c.RetrainLatency < 0 || c.UpgradeBackoff < 0 || c.MaxUpgradeBackoff < 0 {
		return fmt.Errorf("pcie: negative duration in DegradeConfig")
	}
	if c.Threshold < 0 {
		return fmt.Errorf("pcie: negative degrade threshold %d", c.Threshold)
	}
	if c.MinWidth < 0 || c.MinWidth > 32 {
		return fmt.Errorf("pcie: degrade MinWidth %d out of range (1..32)", c.MinWidth)
	}
	if c.MinGen < 0 || c.MinGen > Gen3 {
		return fmt.Errorf("pcie: degrade MinGen %v out of range", c.MinGen)
	}
	return nil
}

// degradeState is the per-link degradation ladder.
type degradeState struct {
	cfg       DegradeConfig
	baseGen   Generation // configured (level-0) parameters
	baseWidth int
	level     int // current ladder position; 0 = configured
	maxLv     int
	// pendTarget is the level the next goUp applies; -1 when the
	// pending retrain is an ordinary fault-window recovery.
	pendTarget int

	errs       []sim.Tick // recent error ticks inside the window
	upgradeTmr *sim.Event
	backoff    sim.Tick // current upgrade backoff; 0 = not yet backing off

	downtrains uint64
	uptrains   uint64

	lvlGauge   *stats.Gauge
	widthGauge *stats.Gauge
	genGauge   *stats.Gauge
}

func newDegradeState(l *Link, cfg DegradeConfig) *degradeState {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("pcie: link %s: %v", l.name, err))
	}
	d := &degradeState{
		cfg:        cfg,
		baseGen:    l.cfg.Gen,
		baseWidth:  l.cfg.Width,
		pendTarget: -1,
	}
	if d.cfg.MinWidth > d.baseWidth {
		d.cfg.MinWidth = d.baseWidth
	}
	if d.cfg.MinGen > d.baseGen {
		d.cfg.MinGen = d.baseGen
	}
	d.maxLv = d.computeMaxLevel()
	d.upgradeTmr = l.eng.NewEvent(l.name+".upgradeTimer", func() { l.upgradeFire() })
	d.registerStats(l)
	return d
}

// registerStats publishes the degradation observables; called only on
// links with a DegradeConfig, so unarmed stats dumps are unchanged.
func (d *degradeState) registerStats(l *Link) {
	r := l.eng.Stats()
	pfx := "pcie." + l.name + ".degrade."
	r.CounterFunc(pfx+"downtrains", func() uint64 { return d.downtrains })
	r.CounterFunc(pfx+"uptrains", func() uint64 { return d.uptrains })
	d.lvlGauge = r.Gauge(pfx + "level")
	d.widthGauge = r.Gauge(pfx + "width")
	d.genGauge = r.Gauge(pfx + "gen")
	d.widthGauge.Set(int64(d.baseWidth))
	d.genGauge.Set(int64(d.baseGen))
}

// computeMaxLevel counts the ladder's steps: width halvings to
// MinWidth, then generation steps to MinGen.
func (d *degradeState) computeMaxLevel() int {
	lv := 0
	for w := d.baseWidth; w > d.cfg.MinWidth; lv++ {
		w /= 2
		if w < d.cfg.MinWidth {
			w = d.cfg.MinWidth
		}
	}
	for g := d.baseGen; g > d.cfg.MinGen; g-- {
		lv++
	}
	return lv
}

// params returns the (Gen, Width) the ladder prescribes at a level.
func (d *degradeState) params(level int) (Generation, int) {
	g, w := d.baseGen, d.baseWidth
	for s := 0; s < level; s++ {
		if w > d.cfg.MinWidth {
			w /= 2
			if w < d.cfg.MinWidth {
				w = d.cfg.MinWidth
			}
		} else if g > d.cfg.MinGen {
			g--
		}
	}
	return g, w
}

// --- Link-side hooks -------------------------------------------------

// noteLinkError records one link-layer error (CRC failure, bad DLLP,
// replay timeout) into the sliding window and triggers a one-step
// downtrain when the window fills. Nil-guarded so unarmed links pay a
// single branch.
func (l *Link) noteLinkError() {
	d := l.deg
	if d == nil || l.state != linkUp {
		return
	}
	now := l.eng.Now()
	d.errs = append(d.errs, now)
	cut := 0
	for cut < len(d.errs) && d.errs[cut]+d.cfg.Window <= now {
		cut++
	}
	if cut > 0 {
		d.errs = append(d.errs[:0], d.errs[cut:]...)
	}
	if len(d.errs) < d.cfg.Threshold {
		return
	}
	d.errs = d.errs[:0]
	if d.level >= d.maxLv {
		return // already at the floor; keep replaying
	}
	// Fresh trouble restarts the upgrade ladder from the initial
	// backoff once the link settles.
	d.backoff = 0
	l.retrainTo(d.level + 1)
}

// forceDowntrain is the scripted (fault-plan) one-step downtrain.
func (l *Link) forceDowntrain() {
	d := l.deg
	if d == nil || l.state != linkUp || d.level >= d.maxLv {
		return
	}
	d.backoff = 0
	l.retrainTo(d.level + 1)
}

// retrainTo takes the link down for a degradation/upgrade retrain that
// comes back at the given ladder level.
func (l *Link) retrainTo(level int) {
	if l.state != linkUp || l.deg == nil {
		return
	}
	l.deg.pendTarget = level
	// A previously armed upgrade attempt is obsolete (and its backoff
	// may just have been reset to 0): goUp re-arms via scheduleUpgrade.
	l.eng.Deschedule(l.deg.upgradeTmr)
	l.state = linkDown
	if tr := l.eng.Tracer(); tr.On(trace.CatFault) {
		tr.Emit(trace.CatFault, uint64(l.eng.Now()), "pcie."+l.name,
			"degrade-retrain", uint64(level), "")
	}
	l.up.pause()
	l.down.pause()
	l.eng.Schedule(l.name+".degretrain", l.deg.cfg.RetrainLatency, l.goUp)
}

// applyPendingLevel installs a pending ladder level at retrain
// completion; every WireTime / ReplayTimeout / AckPeriod computation
// reads the mutated cfg from here on. Returns whether a level change
// happened.
func (l *Link) applyPendingLevel() bool {
	d := l.deg
	if d == nil || d.pendTarget < 0 {
		return false
	}
	target := d.pendTarget
	d.pendTarget = -1
	if target == d.level {
		return false
	}
	g, w := d.params(target)
	kind := "uptrain"
	if target > d.level {
		kind = "downtrain"
		d.downtrains++
	} else {
		d.uptrains++
	}
	d.level = target
	l.cfg.Gen, l.cfg.Width = g, w
	d.lvlGauge.Set(int64(d.level))
	d.widthGauge.Set(int64(w))
	d.genGauge.Set(int64(g))
	if tr := l.eng.Tracer(); tr.On(trace.CatFault) {
		tr.Emit(trace.CatFault, uint64(l.eng.Now()), "pcie."+l.name,
			kind, uint64(target), fmt.Sprintf("%v x%d", g, w))
	}
	return true
}

// scheduleUpgrade arms the next upgrade-retrain attempt with
// exponential backoff; called after every retrain while degraded.
func (l *Link) scheduleUpgrade() {
	d := l.deg
	if d == nil {
		return
	}
	if d.level == 0 {
		d.backoff = 0
		l.eng.Deschedule(d.upgradeTmr)
		return
	}
	if d.backoff == 0 {
		d.backoff = d.cfg.UpgradeBackoff
	} else {
		d.backoff *= 2
		if d.backoff > d.cfg.MaxUpgradeBackoff {
			d.backoff = d.cfg.MaxUpgradeBackoff
		}
	}
	if !d.upgradeTmr.Scheduled() {
		l.eng.ScheduleEventAfter(d.upgradeTmr, d.backoff, sim.PriorityTimer)
	}
}

// upgradeFire attempts one upgrade retrain back toward level 0.
func (l *Link) upgradeFire() {
	d := l.deg
	if d == nil || d.level == 0 {
		return
	}
	if l.state != linkUp {
		// Mid-window or removed: try again after the current backoff.
		// The floor guards against a zero backoff (reset by a fresh
		// error burst) turning the retry into a same-tick spin.
		if l.state == linkDown && !d.upgradeTmr.Scheduled() {
			wait := d.backoff
			if wait <= 0 {
				wait = d.cfg.UpgradeBackoff
			}
			l.eng.ScheduleEventAfter(d.upgradeTmr, wait, sim.PriorityTimer)
		}
		return
	}
	l.retrainTo(d.level - 1)
}

// DegradeLevel returns the link's current ladder level (0 = the
// configured Gen/Width).
func (l *Link) DegradeLevel() int {
	if l.deg == nil {
		return 0
	}
	return l.deg.level
}

// Downtrains returns how many degradation retrains the link has taken.
func (l *Link) Downtrains() uint64 {
	if l.deg == nil {
		return 0
	}
	return l.deg.downtrains
}

// Uptrains returns how many upgrade retrains have completed.
func (l *Link) Uptrains() uint64 {
	if l.deg == nil {
		return 0
	}
	return l.deg.uptrains
}

// CurrentGen returns the link's present (possibly downtrained)
// generation.
func (l *Link) CurrentGen() Generation { return l.cfg.Gen }

// CurrentWidth returns the link's present (possibly downtrained) lane
// count.
func (l *Link) CurrentWidth() int { return l.cfg.Width }

package pcie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pciesim/internal/fault"
	"pciesim/internal/mem"
	"pciesim/internal/sim"
	"pciesim/internal/testdev"
)

func TestGenerationParameters(t *testing.T) {
	if Gen1.SymbolTime() != 4*sim.Nanosecond || Gen2.SymbolTime() != 2*sim.Nanosecond {
		t.Error("Gen1/Gen2 symbol times must be 4ns/2ns")
	}
	if got := Gen3.SymbolTime(); got != 1015 {
		t.Errorf("Gen3 symbol time = %v ps, want 1015 (1.015625ns truncated)", uint64(got))
	}
	if n, d := Gen2.EncodingOverhead(); n != 10 || d != 8 {
		t.Error("Gen2 encoding must be 8b/10b")
	}
	if n, d := Gen3.EncodingOverhead(); n != 130 || d != 128 {
		t.Error("Gen3 encoding must be 128b/130b")
	}
	if got := EffectiveGbps(Gen2, 1); got != 4.0 {
		t.Errorf("Gen2 x1 effective bandwidth = %v Gbps, want 4.0 (the paper's p3700 limit)", got)
	}
	if got := EffectiveGbps(Gen2, 4); got != 16.0 {
		t.Errorf("Gen2 x4 = %v Gbps", got)
	}
	if got := EffectiveGbps(Gen3, 1); got < 7.8 || got > 7.9 {
		t.Errorf("Gen3 x1 = %v Gbps, want ~7.88", got)
	}
}

func TestTableIOverheads(t *testing.T) {
	o := DefaultOverheads()
	// Table I: 12B TLP header, 2B sequence number, 4B link CRC, 2B
	// framing symbols.
	if o.TLPHeader != 12 || o.SeqNum != 2 || o.LCRC != 4 || o.Framing != 2 {
		t.Fatalf("Table I overheads wrong: %+v", o)
	}
	if got := o.TLPWireBytes(64); got != 84 {
		t.Errorf("64B-payload TLP = %d wire bytes, want 84", got)
	}
	if got := o.TLPWireBytes(0); got != 20 {
		t.Errorf("headerless TLP = %d wire bytes, want 20", got)
	}
	if got := o.DLLPWireBytes(); got != 8 {
		t.Errorf("DLLP = %d wire bytes, want 8", got)
	}
}

func TestPciePktPayloadRules(t *testing.T) {
	// §V-C: payload is 0 for read requests and write responses, Size
	// for write requests and read responses.
	w := &PciePkt{Kind: KindTLP, TLP: mem.NewPacket(mem.WriteReq, 0, 64)}
	if w.PayloadBytes() != 64 {
		t.Error("write request must carry its payload")
	}
	r := &PciePkt{Kind: KindTLP, TLP: mem.NewPacket(mem.ReadReq, 0, 64)}
	if r.PayloadBytes() != 0 {
		t.Error("read request carries no payload")
	}
	rr := &PciePkt{Kind: KindTLP, TLP: mem.NewPacket(mem.ReadReq, 0, 64).MakeResponse()}
	if rr.PayloadBytes() != 64 {
		t.Error("read response carries the data")
	}
	wr := &PciePkt{Kind: KindTLP, TLP: mem.NewPacket(mem.WriteReq, 0, 64).MakeResponse()}
	if wr.PayloadBytes() != 0 {
		t.Error("write response carries no payload")
	}
	ack := &PciePkt{Kind: KindAck}
	if ack.WireBytes(DefaultOverheads()) != 8 {
		t.Error("ACK DLLP wire size")
	}
}

func TestWireTimeMath(t *testing.T) {
	// 84 wire bytes on Gen2 x1: 84 symbols * 2ns = 168ns.
	if got := WireTime(Gen2, 1, 84); got != 168*sim.Nanosecond {
		t.Errorf("Gen2 x1 84B = %v, want 168ns", got)
	}
	// Same on x4: 42ns.
	if got := WireTime(Gen2, 4, 84); got != 42*sim.Nanosecond {
		t.Errorf("Gen2 x4 84B = %v, want 42ns", got)
	}
	// Gen1 doubles Gen2.
	if got := WireTime(Gen1, 1, 84); got != 336*sim.Nanosecond {
		t.Errorf("Gen1 x1 84B = %v, want 336ns", got)
	}
	// Ceil division: 1 byte on x32 Gen2 is 2000/32 = 62.5 -> 63 ps.
	if got := WireTime(Gen2, 32, 1); got != 63 {
		t.Errorf("rounding: got %v ps, want 63", uint64(got))
	}
}

func TestReplayTimeoutFormula(t *testing.T) {
	o := DefaultOverheads()
	// ((64+20)/8 * 2.5) * 3 = 78.75 symbols; Gen2 symbol = 2ns -> 157.5ns.
	if got := ReplayTimeout(Gen2, 8, 64, o); got != sim.Tick(157500) {
		t.Errorf("Gen2 x8 timeout = %v, want 157.5ns", got)
	}
	// ((64+20)/1 * 1.4) * 3 = 352.8 symbols -> 705.6ns.
	if got := ReplayTimeout(Gen2, 1, 64, o); got != sim.Tick(705600) {
		t.Errorf("Gen2 x1 timeout = %v, want 705.6ns", got)
	}
	// The x8 timeout is tighter than x4's: the width is in the
	// denominator (the seed of the Fig 9(b) collapse).
	if ReplayTimeout(Gen2, 8, 64, o) >= ReplayTimeout(Gen2, 4, 64, o) {
		t.Error("x8 timeout must be shorter than x4")
	}
	// ACK timer is a third of the replay timeout.
	if got, want := AckTimerPeriod(Gen2, 8, 64, o), ReplayTimeout(Gen2, 8, 64, o)/3; got != want {
		t.Errorf("ack period = %v, want %v", got, want)
	}
}

func TestAckFactorShape(t *testing.T) {
	if AckFactor(64, 1) != 1.4 || AckFactor(64, 2) != 1.4 {
		t.Error("narrow links use 1.4")
	}
	if AckFactor(64, 8) != 2.5 {
		t.Error("x8 at small payload uses 2.5")
	}
	if AckFactor(4096, 16) != 3.0 {
		t.Error("wide links saturate at 3.0")
	}
	if AckFactor(256, 4) != 2.5 {
		t.Error("x4 grows with payload")
	}
}

// linkRig wires requester -> link.up ... link.down -> responder, the
// CPU-to-device (downstream request) direction.
type linkRig struct {
	eng  *sim.Engine
	link *Link
	req  *testdev.Requester
	resp *testdev.Responder
}

func newLinkRig(cfg LinkConfig, respLatency sim.Tick, respDepth int) *linkRig {
	eng := sim.NewEngine()
	l := NewLink(eng, "link", cfg)
	req := testdev.NewRequester(eng, "rc")
	resp := testdev.NewResponder(eng, "dev", nil, respLatency, respDepth)
	mem.Connect(req.Port(), l.Up().SlavePort())
	mem.Connect(l.Down().MasterPort(), resp.Port())
	return &linkRig{eng, l, req, resp}
}

func TestLinkRoundTripLatency(t *testing.T) {
	cfg := DefaultLinkConfig() // Gen2 x1, 1ns prop
	r := newLinkRig(cfg, 0, 0)
	r.req.Read(0x1000, 64)
	r.eng.Run()
	// Read request: 20 wire bytes = 40ns + 1ns prop; response carries
	// 64B payload: 84 bytes = 168ns + 1ns prop. Device latency 0.
	want := 40*sim.Nanosecond + 1*sim.Nanosecond + 168*sim.Nanosecond + 1*sim.Nanosecond
	if got := r.req.Completions[0].Latency(); got != want {
		t.Errorf("round trip = %v, want %v", got, want)
	}
}

func TestLinkWidthScalesTransferTime(t *testing.T) {
	lat := map[int]sim.Tick{}
	for _, w := range []int{1, 2, 4, 8} {
		cfg := DefaultLinkConfig()
		cfg.Width = w
		cfg.PropDelay = 0
		r := newLinkRig(cfg, 0, 0)
		r.req.Read(0x1000, 64)
		r.eng.Run()
		lat[w] = r.req.Completions[0].Latency()
	}
	if lat[1] != 2*lat[2] || lat[2] != 2*lat[4] || lat[4] != 2*lat[8] {
		t.Errorf("latencies %v must halve with each doubling of width", lat)
	}
}

func TestLinkDeliversInOrderExactlyOnce(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.ReplayBufferSize = 4
	r := newLinkRig(cfg, 10*sim.Nanosecond, 0)
	const n = 50
	for i := 0; i < n; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	if len(r.resp.Received) != n {
		t.Fatalf("device received %d packets, want %d", len(r.resp.Received), n)
	}
	for i, p := range r.resp.Received {
		if p.Addr != uint64(i)*64 {
			t.Fatalf("packet %d out of order: addr %#x", i, p.Addr)
		}
	}
	if len(r.req.Completions) != n {
		t.Fatalf("%d completions, want %d", len(r.req.Completions), n)
	}
}

func TestLinkReplayBufferThrottles(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.ReplayBufferSize = 2
	// Device refuses everything for a long time: replay buffer fills at
	// 2 and the interface must refuse further sends.
	r := newLinkRig(cfg, 0, 0)
	r.resp.RefuseRequests = 1 << 30
	for i := 0; i < 6; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.RunUntil(3 * sim.Microsecond)
	up := r.link.Up().Stats()
	if up.TLPsAccepted != 2 {
		t.Errorf("accepted %d TLPs with replay buffer 2, want 2", up.TLPsAccepted)
	}
	if up.Throttled == 0 {
		t.Error("expected throttled sends")
	}
	if up.Timeouts == 0 {
		t.Error("expected replay timeouts while the device refuses")
	}
}

func TestLinkRecoversAfterRefusals(t *testing.T) {
	cfg := DefaultLinkConfig()
	r := newLinkRig(cfg, 5*sim.Nanosecond, 0)
	r.resp.RefuseRequests = 7 // refuse the first 7 delivery attempts
	const n = 12
	for i := 0; i < n; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	if len(r.req.Completions) != n {
		t.Fatalf("%d completions, want %d: the timeout/replay path must recover", len(r.req.Completions), n)
	}
	up := r.link.Up().Stats()
	if up.ReplaysTx == 0 || up.Timeouts == 0 {
		t.Errorf("expected replays and timeouts, got %+v", up)
	}
	// Exactly-once: the device must have seen each address once.
	seen := map[uint64]int{}
	for _, p := range r.resp.Received {
		seen[p.Addr]++
	}
	for a, c := range seen {
		if c != 1 {
			t.Errorf("addr %#x delivered %d times", a, c)
		}
	}
}

func TestLinkAcksAreBatched(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.ReplayBufferSize = 16
	r := newLinkRig(cfg, 0, 0)
	const n = 32
	for i := 0; i < n; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	down := r.link.Down().Stats()
	if down.AcksTx == 0 {
		t.Fatal("no ACKs sent")
	}
	if down.AcksTx >= n {
		t.Errorf("%d ACKs for %d TLPs; the ACK timer must batch them", down.AcksTx, n)
	}
	up := r.link.Up().Stats()
	if up.AcksRx != down.AcksTx {
		t.Errorf("acks rx %d != tx %d", up.AcksRx, down.AcksTx)
	}
	if up.Timeouts != 0 {
		t.Errorf("%d spurious timeouts in a clean run", up.Timeouts)
	}
}

func TestLinkErrorInjectionNakRecovery(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Fault = fault.CorruptionPlan(0.2)
	cfg.Seed = 42
	r := newLinkRig(cfg, 5*sim.Nanosecond, 0)
	const n = 100
	for i := 0; i < n; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	if len(r.req.Completions) != n {
		t.Fatalf("%d completions, want %d despite 20%% corruption", len(r.req.Completions), n)
	}
	for i, p := range r.resp.Received {
		if p.Addr != uint64(i)*64 {
			t.Fatalf("delivery order broken at %d under corruption", i)
		}
	}
	down := r.link.Down().Stats()
	if down.CRCErrors == 0 || down.NaksTx == 0 {
		t.Errorf("expected CRC errors and NAKs: %+v", down)
	}
	up := r.link.Up().Stats()
	if up.NaksRx != down.NaksTx {
		t.Errorf("nak rx/tx mismatch: %d/%d", up.NaksRx, down.NaksTx)
	}
}

func TestLinkDMADirection(t *testing.T) {
	// Device-initiated traffic flows the other way: device DMA master
	// into down.SlavePort, RC completer off up.MasterPort.
	eng := sim.NewEngine()
	l := NewLink(eng, "link", DefaultLinkConfig())
	dev := testdev.NewRequester(eng, "devdma")
	rc := testdev.NewResponder(eng, "rc", nil, 20*sim.Nanosecond, 0)
	mem.Connect(dev.Port(), l.Down().SlavePort())
	mem.Connect(l.Up().MasterPort(), rc.Port())
	const n = 16
	for i := 0; i < n; i++ {
		dev.Write(0x8000_0000+uint64(i)*64, 64)
	}
	eng.Run()
	if len(dev.Completions) != n {
		t.Fatalf("%d DMA completions, want %d", len(dev.Completions), n)
	}
	down := l.Down().Stats()
	if down.TLPsAccepted != n {
		t.Errorf("down interface accepted %d", down.TLPsAccepted)
	}
}

func TestLinkStatsRates(t *testing.T) {
	s := LinkStats{TLPsTx: 100, ReplaysTx: 27, TLPsAccepted: 73, Timeouts: 20}
	if s.ReplayRate() != 0.27 {
		t.Errorf("replay rate = %v", s.ReplayRate())
	}
	if got := s.TimeoutRate(); got < 0.27 || got > 0.28 {
		t.Errorf("timeout rate = %v", got)
	}
	var zero LinkStats
	if zero.ReplayRate() != 0 || zero.TimeoutRate() != 0 {
		t.Error("zero stats must not divide by zero")
	}
}

func TestLinkWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width 33 should panic")
		}
	}()
	NewLink(sim.NewEngine(), "bad", LinkConfig{Width: 33})
}

// Property: for any pattern of device refusals and any replay buffer
// size, every accepted TLP is delivered exactly once, in order.
func TestLinkExactlyOnceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultLinkConfig()
		cfg.ReplayBufferSize = 1 + rng.Intn(6)
		cfg.Width = []int{1, 2, 4, 8}[rng.Intn(4)]
		if rng.Intn(2) == 0 {
			cfg.Fault = fault.CorruptionPlan(0.1)
			cfg.Seed = uint64(seed)
		}
		r := newLinkRig(cfg, sim.Tick(rng.Intn(200))*sim.Nanosecond, 0)
		r.resp.RefuseRequests = rng.Intn(20)
		n := 20 + rng.Intn(40)
		for i := 0; i < n; i++ {
			r.req.Write(uint64(i)*64, 64)
		}
		r.eng.Run()
		if len(r.resp.Received) != n || len(r.req.Completions) != n {
			return false
		}
		for i, p := range r.resp.Received {
			if p.Addr != uint64(i)*64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

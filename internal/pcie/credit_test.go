package pcie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pciesim/internal/fault"
	"pciesim/internal/mem"
	"pciesim/internal/sim"
)

func TestParseCredits(t *testing.T) {
	cases := []struct {
		in   string
		want CreditConfig
	}{
		{"", CreditConfig{}},
		{"inf", CreditConfig{}},
		{"infinite", CreditConfig{}},
		{"0", CreditConfig{}},
		{"8", UniformCredits(8)},
		{" 16 ", UniformCredits(16)},
		{"ch=4", CreditConfig{CplHdr: 4}},
		{"ph=8, nh=8, ch=2, cd=8", CreditConfig{PostedHdr: 8, NonPostedHdr: 8, CplHdr: 2, CplData: 8}},
	}
	for _, c := range cases {
		got, err := ParseCredits(c.in)
		if err != nil {
			t.Errorf("ParseCredits(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseCredits(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"-1", "x", "ph", "ph=", "ph=x", "zz=3", "ph=-2", "2000000"} {
		if _, err := ParseCredits(bad); err == nil {
			t.Errorf("ParseCredits(%q) accepted", bad)
		}
	}
}

func TestCreditConfigString(t *testing.T) {
	if got := (CreditConfig{}).String(); got != "infinite" {
		t.Errorf("zero config = %q", got)
	}
	if got := UniformCredits(8).String(); got != "8" {
		t.Errorf("uniform = %q", got)
	}
	if got := (CreditConfig{CplHdr: 4}).String(); got != "ph=0,pd=0,nh=0,nd=0,ch=4,cd=0" {
		t.Errorf("mixed = %q", got)
	}
}

func TestMinCredits(t *testing.T) {
	a := CreditConfig{PostedHdr: 8, CplHdr: 2}
	b := CreditConfig{PostedHdr: 4, NonPostedHdr: 16}
	got := MinCredits(a, b)
	want := CreditConfig{PostedHdr: 4, NonPostedHdr: 16, CplHdr: 2}
	if got != want {
		t.Errorf("MinCredits = %+v, want %+v", got, want)
	}
}

// TestFCHandshakeAndDelivery: a finite-credit link completes the
// InitFC handshake, carries ordinary traffic to completion, and
// returns credits with UpdateFC as the receiver drains.
func TestFCHandshakeAndDelivery(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Credits = UniformCredits(4)
	r := newLinkRig(cfg, 10*sim.Nanosecond, 0)
	const n = 30
	for i := 0; i < n; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	if len(r.req.Completions) != n {
		t.Fatalf("%d completions, want %d", len(r.req.Completions), n)
	}
	for i, p := range r.resp.Received {
		if p.Addr != uint64(i)*64 {
			t.Fatalf("delivery order broken at %d", i)
		}
	}
	up, down := r.link.Up().Stats(), r.link.Down().Stats()
	// Both sides volley InitFC1 (one per class) and confirm with InitFC2.
	if up.InitFCTx < 6 || down.InitFCTx < 6 {
		t.Errorf("InitFC tx up=%d down=%d, want >= 6 each", up.InitFCTx, down.InitFCTx)
	}
	if up.InitFCRx == 0 || down.InitFCRx == 0 {
		t.Errorf("InitFC rx up=%d down=%d, want > 0", up.InitFCRx, down.InitFCRx)
	}
	// The receiver of the request stream must have returned credits.
	if down.UpdateFCTx == 0 || up.UpdateFCRx == 0 {
		t.Errorf("UpdateFC tx(down)=%d rx(up)=%d, want > 0", down.UpdateFCTx, up.UpdateFCRx)
	}
	assertFCDrained(t, r.link)
}

// assertFCDrained checks the post-run credit invariants on both
// interfaces: nothing held at the receiver, and the transmitter's
// available credit restored to the peer's full advertisement.
func assertFCDrained(t *testing.T, l *Link) {
	t.Helper()
	sides := []struct {
		name     string
		tx, peer *Interface
	}{{"up", l.Up(), l.Down()}, {"down", l.Down(), l.Up()}}
	for _, s := range sides {
		txSnap, peerSnap := s.tx.FCSnapshots(), s.peer.FCSnapshots()
		for cl := FCClass(0); cl < fcNumClasses; cl++ {
			ps := peerSnap[cl]
			if ps.HeldHdr != 0 || ps.HeldData != 0 {
				t.Errorf("%s peer class %v: held %d/%d after drain", s.name, cl, ps.HeldHdr, ps.HeldData)
			}
			ts := txSnap[cl]
			if ts.ConsumedHdr > ts.LimitHdr || (ps.AdvertData > 0 && ts.ConsumedData > ts.LimitData) {
				t.Errorf("%s class %v: consumed %d/%d beyond limit %d/%d",
					s.name, cl, ts.ConsumedHdr, ts.ConsumedData, ts.LimitHdr, ts.LimitData)
			}
			if ps.AdvertHdr > 0 && ts.LimitHdr-ts.ConsumedHdr != ps.AdvertHdr {
				t.Errorf("%s class %v: available hdr credit %d, want full pool %d",
					s.name, cl, ts.LimitHdr-ts.ConsumedHdr, ps.AdvertHdr)
			}
			if ps.AdvertData > 0 && ts.LimitData-ts.ConsumedData != ps.AdvertData {
				t.Errorf("%s class %v: available data credit %d, want full pool %d",
					s.name, cl, ts.LimitData-ts.ConsumedData, ps.AdvertData)
			}
		}
	}
}

// TestFCSingleCreditThrottles: one header credit per class still moves
// every TLP — strictly serialized by UpdateFC returns — and the
// starvation shows up in the stall counters.
func TestFCSingleCreditThrottles(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Credits = CreditConfig{PostedHdr: 1, NonPostedHdr: 1, CplHdr: 1}
	r := newLinkRig(cfg, 5*sim.Nanosecond, 0)
	const n = 20
	for i := 0; i < n; i++ {
		r.req.Read(uint64(i)*64, 8)
	}
	r.eng.Run()
	if len(r.req.Completions) != n {
		t.Fatalf("%d completions, want %d with 1 credit/class", len(r.req.Completions), n)
	}
	up := r.link.Up().Stats()
	if up.FCStalls(FCNonPosted) == 0 {
		t.Errorf("no non-posted stalls with a single NP credit: %+v", up)
	}
	assertFCDrained(t, r.link)
}

// TestFCLegacyInfiniteCredits: the zero CreditConfig must not grow any
// FC state — the legacy path stays byte-identical (golden dumps
// enforce the registry half of this).
func TestFCLegacyInfiniteCredits(t *testing.T) {
	r := newLinkRig(DefaultLinkConfig(), 0, 0)
	r.req.Write(0x1000, 64)
	r.eng.Run()
	if snaps := r.link.Up().FCSnapshots(); snaps != nil {
		t.Errorf("legacy link has FC state: %+v", snaps)
	}
	up := r.link.Up().Stats()
	if up.InitFCTx != 0 || up.UpdateFCTx != 0 {
		t.Errorf("legacy link sent FC DLLPs: %+v", up)
	}
	// AdvertiseCredits on a legacy link is a documented no-op.
	r.link.Down().AdvertiseCredits(UniformCredits(2))
	if r.link.Down().FCSnapshots() != nil {
		t.Error("AdvertiseCredits grew FC state on a legacy link")
	}
}

// Property: for any finite credit configuration, device refusal
// pattern, replay buffer size, and corruption, every request is
// delivered exactly once, in order, and the credit accounting drains
// back to the full advertised pool.
func TestFCCreditAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultLinkConfig()
		cfg.ReplayBufferSize = 1 + rng.Intn(6)
		cfg.Credits = UniformCredits(1 + rng.Intn(5))
		if rng.Intn(3) == 0 {
			// Non-uniform: pinch a single class.
			cfg.Credits = CreditConfig{
				PostedHdr:    1 + rng.Intn(3),
				NonPostedHdr: 1 + rng.Intn(3),
				CplHdr:       1 + rng.Intn(3),
			}
		}
		if rng.Intn(2) == 0 {
			cfg.Fault = fault.CorruptionPlan(0.1)
			cfg.Seed = uint64(seed)
		}
		r := newLinkRig(cfg, sim.Tick(rng.Intn(200))*sim.Nanosecond, 0)
		r.resp.RefuseRequests = rng.Intn(20)
		n := 20 + rng.Intn(40)
		for i := 0; i < n; i++ {
			r.req.Write(uint64(i)*64, 64)
		}
		r.eng.Run()
		if len(r.resp.Received) != n || len(r.req.Completions) != n {
			return false
		}
		for i, p := range r.resp.Received {
			if p.Addr != uint64(i)*64 {
				return false
			}
		}
		ok := true
		for _, iface := range []*Interface{r.link.Up(), r.link.Down()} {
			for cl, s := range iface.FCSnapshots() {
				if s.HeldHdr != 0 || s.HeldData != 0 {
					t.Logf("seed %d: %v holds %d/%d after drain", seed, FCClass(cl), s.HeldHdr, s.HeldData)
					ok = false
				}
				if s.ConsumedHdr > s.LimitHdr {
					t.Logf("seed %d: %v consumed %d beyond limit %d", seed, FCClass(cl), s.ConsumedHdr, s.LimitHdr)
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFCUpdateFCDropRecovery: a scripted drop of the first UpdateFC
// must not wedge the link — the bounded refresh timer re-advertises
// the cumulative grant and traffic completes.
func TestFCUpdateFCDropRecovery(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Credits = CreditConfig{PostedHdr: 1, NonPostedHdr: 1, CplHdr: 1}
	// Requests flow up->down; the receiver's credit returns are
	// transmitted by the down interface, so the drop goes on Down.
	cfg.Fault = &fault.Plan{
		Down: fault.Profile{Script: []fault.Event{
			{At: 0, Op: fault.OpDropUpdateFC},
			{At: 0, Op: fault.OpDropUpdateFC},
		}},
	}
	r := newLinkRig(cfg, 5*sim.Nanosecond, 0)
	const n = 8
	for i := 0; i < n; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	if len(r.req.Completions) != n {
		t.Fatalf("%d completions, want %d after UpdateFC drops", len(r.req.Completions), n)
	}
	down := r.link.Down().Stats()
	if down.UpdateFCDropped != 2 {
		t.Errorf("UpdateFCDropped = %d, want 2", down.UpdateFCDropped)
	}
	if down.UpdateFCTx <= 2 {
		t.Errorf("no refresh retransmissions: UpdateFCTx = %d", down.UpdateFCTx)
	}
}

// TestFCStarvationWindow: an OpStarveFC window swallows every UpdateFC
// while open; the link recovers once it closes.
func TestFCStarvationWindow(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Credits = CreditConfig{PostedHdr: 2, NonPostedHdr: 2, CplHdr: 2}
	cfg.Fault = &fault.Plan{
		Down: fault.Profile{Script: []fault.Event{
			{At: 0, Op: fault.OpStarveFC, Duration: 3 * sim.Microsecond},
		}},
	}
	r := newLinkRig(cfg, 5*sim.Nanosecond, 0)
	const n = 16
	for i := 0; i < n; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	if len(r.req.Completions) != n {
		t.Fatalf("%d completions, want %d after starvation window", len(r.req.Completions), n)
	}
	down := r.link.Down().Stats()
	if down.UpdateFCDropped == 0 {
		t.Error("starvation window swallowed no UpdateFC")
	}
	up := r.link.Up().Stats()
	if up.FCStalls(FCPosted) == 0 && up.FCStalls(FCNonPosted) == 0 {
		t.Errorf("no stalls recorded across the starvation window: %+v", up)
	}
}

// TestFCClassOf pins the TLP classification rule.
func TestFCClassOf(t *testing.T) {
	posted := mem.NewPacket(mem.WriteReq, 0, 64)
	posted.Posted = true
	nonposted := mem.NewPacket(mem.ReadReq, 0, 64)
	cpl := mem.NewPacket(mem.ReadReq, 0, 64)
	cpl.MakeResponse()
	if FCClassOf(posted) != FCPosted {
		t.Error("posted write must classify P")
	}
	if FCClassOf(nonposted) != FCNonPosted {
		t.Error("read request must classify NP")
	}
	if FCClassOf(cpl) != FCCpl {
		t.Error("completion must classify Cpl")
	}
}

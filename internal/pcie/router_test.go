package pcie

import (
	"testing"

	"pciesim/internal/mem"
	"pciesim/internal/pci"
	"pciesim/internal/sim"
	"pciesim/internal/testdev"
)

// programBridge sets a VP2P's bus numbers and memory window directly,
// standing in for enumeration software.
func programBridge(c *pci.ConfigSpace, pri, sec, sub uint8, memBase, memLimit uint64) {
	c.ConfigWrite(pci.RegPrimaryBus, 1, uint32(pri))
	c.ConfigWrite(pci.RegSecondaryBus, 1, uint32(sec))
	c.ConfigWrite(pci.RegSubordinateBus, 1, uint32(sub))
	c.ConfigWrite(pci.RegMemBase, 2, uint32(memBase>>16)&0xfff0)
	c.ConfigWrite(pci.RegMemLimit, 2, uint32(memLimit>>16)&0xfff0)
	c.ConfigWrite(pci.RegCommand, 2, pci.CmdMemEnable|pci.CmdBusMaster)
}

// rcRig: requester (CPU side) -> RC upstream; two root ports wired
// directly (no links) to responder devices; RC upstream master -> a
// responder standing in for the IOCache/memory.
type rcRig struct {
	eng        *sim.Engine
	host       *pci.Host
	rc         *RootComplex
	cpu        *testdev.Requester
	dev0, dev1 *testdev.Responder
	memory     *testdev.Responder
	dma        *testdev.Requester
}

func newRCRig(t *testing.T, cfg RootComplexConfig) *rcRig {
	t.Helper()
	eng := sim.NewEngine()
	host := pci.NewHost(eng, "pcihost", pci.HostConfig{ECAMWindow: mem.Range(0x30000000, 256<<20)})
	rc := NewRootComplex(eng, "rc", host, cfg)

	cpu := testdev.NewRequester(eng, "cpu")
	mem.Connect(cpu.Port(), rc.UpstreamSlave())
	memory := testdev.NewResponder(eng, "mem", nil, 50*sim.Nanosecond, 0)
	mem.Connect(rc.UpstreamMaster(), memory.Port())

	dev0 := testdev.NewResponder(eng, "dev0", nil, 10*sim.Nanosecond, 0)
	mem.Connect(rc.RootPort(0).MasterPort(), dev0.Port())
	dev1 := testdev.NewResponder(eng, "dev1", nil, 10*sim.Nanosecond, 0)
	mem.Connect(rc.RootPort(1).MasterPort(), dev1.Port())

	// DMA requester hangs off root port 1's slave half.
	dma := testdev.NewRequester(eng, "dma")
	mem.Connect(dma.Port(), rc.RootPort(1).SlavePort())

	// Program VP2Ps: port0 -> bus 1, MMIO 0x40000000..0x400fffff;
	// port1 -> bus 2, MMIO 0x40100000..0x401fffff.
	programBridge(rc.RootPort(0).VP2P(), 0, 1, 1, 0x40000000, 0x400fffff)
	programBridge(rc.RootPort(1).VP2P(), 0, 2, 2, 0x40100000, 0x401fffff)
	return &rcRig{eng, host, rc, cpu, dev0, dev1, memory, dma}
}

func TestRootComplexRegistersVP2PsWithHost(t *testing.T) {
	r := newRCRig(t, RootComplexConfig{NumRootPorts: 3})
	// Paper §V-A: vendor 0x8086, device IDs 0x9c90/0x9c92/0x9c94,
	// enumerated as devices on bus 0.
	wantIDs := []uint16{0x9c90, 0x9c92, 0x9c94}
	for i, want := range wantIDs {
		cs, ok := r.host.Lookup(pci.NewBDF(0, uint8(i), 0))
		if !ok {
			t.Fatalf("VP2P %d not registered at 00:0%d.0", i, i)
		}
		if got := cs.ConfigRead(pci.RegVendorID, 2); got != pci.VendorIntel {
			t.Errorf("VP2P %d vendor = %#x", i, got)
		}
		if got := cs.ConfigRead(pci.RegDeviceID, 2); got != uint32(want) {
			t.Errorf("VP2P %d device = %#x, want %#x", i, got, want)
		}
		if got := cs.ConfigRead(pci.RegHeaderType, 1); got != pci.HeaderType1 {
			t.Errorf("VP2P %d header type = %#x", i, got)
		}
		// Status bit 4 set: PCIe capability implemented (§V-A).
		if cs.ConfigRead(pci.RegStatus, 2)&pci.StatusCapList == 0 {
			t.Errorf("VP2P %d status capability bit clear", i)
		}
		if off := pci.FindCapability(cs, pci.CapIDPCIExpress); off == 0 {
			t.Errorf("VP2P %d missing PCIe capability", i)
		} else if pt, _, _ := pci.ParsePCIeCap(r.rc.RootPort(i).VP2P(), off); pt != pci.PCIePortRootPort {
			t.Errorf("VP2P %d port type = %d, want root port", i, pt)
		}
	}
}

func TestRootComplexRoutesByWindow(t *testing.T) {
	r := newRCRig(t, RootComplexConfig{})
	r.cpu.Read(0x40000100, 4)  // port 0 window
	r.cpu.Write(0x40100200, 4) // port 1 window
	r.eng.Run()
	if len(r.dev0.Received) != 1 || r.dev0.Received[0].Addr != 0x40000100 {
		t.Errorf("dev0 received %v", r.dev0.Received)
	}
	if len(r.dev1.Received) != 1 || r.dev1.Received[0].Addr != 0x40100200 {
		t.Errorf("dev1 received %v", r.dev1.Received)
	}
	if len(r.cpu.Completions) != 2 {
		t.Fatalf("CPU completions = %d", len(r.cpu.Completions))
	}
	// CPU request bus numbers are stamped 0 at the upstream port.
	for _, c := range r.cpu.Completions {
		if c.Pkt.BusNum != 0 {
			t.Errorf("CPU packet bus = %d, want 0", c.Pkt.BusNum)
		}
	}
}

func TestRootComplexLatencyApplied(t *testing.T) {
	cfg := RootComplexConfig{}
	cfg.Latency = 150 * sim.Nanosecond
	r := newRCRig(t, cfg)
	r.cpu.Read(0x40000000, 4)
	r.eng.Run()
	// Request passes the RC once (150ns), device 10ns, response passes
	// the RC once more (150ns): 310ns.
	if got := r.cpu.Completions[0].Latency(); got != 310*sim.Nanosecond {
		t.Errorf("MMIO round trip = %v, want 310ns (2x RC latency + device)", got)
	}
}

func TestRootComplexDMAPath(t *testing.T) {
	r := newRCRig(t, RootComplexConfig{})
	r.dma.Write(0x80001000, 64) // DRAM address: no VP2P claims it
	r.eng.Run()
	if len(r.memory.Received) != 1 {
		t.Fatalf("memory received %d packets", len(r.memory.Received))
	}
	// Stamped with root port 1's secondary bus number on entry.
	if got := r.memory.Received[0].BusNum; got != 2 {
		t.Errorf("DMA packet bus = %d, want 2 (port 1 secondary)", got)
	}
	if len(r.dma.Completions) != 1 {
		t.Fatal("DMA response did not route back by bus number")
	}
}

func TestRootComplexPeerToPeer(t *testing.T) {
	r := newRCRig(t, RootComplexConfig{})
	// DMA from the device under port 1 targeting port 0's MMIO window:
	// routed across, not up.
	r.dma.Write(0x40000800, 64)
	r.eng.Run()
	if len(r.dev0.Received) != 1 {
		t.Fatalf("peer-to-peer packet did not reach dev0")
	}
	if len(r.memory.Received) != 0 {
		t.Error("peer-to-peer packet leaked upstream")
	}
	if len(r.dma.Completions) != 1 {
		t.Fatal("peer-to-peer response lost")
	}
}

func TestRootComplexMasterAbort(t *testing.T) {
	r := newRCRig(t, RootComplexConfig{})
	buf := make([]byte, 4)
	r.cpu.ReadData(0x7fff0000, buf) // claimed by no VP2P
	r.eng.Run()
	if len(r.cpu.Completions) != 1 {
		t.Fatal("unclaimed read must still complete")
	}
	for _, b := range buf {
		if b != 0xff {
			t.Fatalf("master abort data = %v, want all ones", buf)
		}
	}
	if r.rc.Aborts() != 1 {
		t.Errorf("aborts = %d", r.rc.Aborts())
	}
}

func TestRootComplexWindowReprogramming(t *testing.T) {
	r := newRCRig(t, RootComplexConfig{})
	// Move port 0's window; the cached decode must invalidate.
	programBridge(r.rc.RootPort(0).VP2P(), 0, 1, 1, 0x50000000, 0x500fffff)
	r.cpu.Read(0x50000000, 4)
	r.eng.Run()
	if len(r.dev0.Received) != 1 {
		t.Fatal("request did not follow the reprogrammed window")
	}
	r.cpu.Read(0x40000000, 4) // old window now unclaimed -> abort
	r.eng.Run()
	if r.rc.Aborts() != 1 {
		t.Error("old window still routed after reprogramming")
	}
}

func TestRootComplexBufferBackpressure(t *testing.T) {
	cfg := RootComplexConfig{}
	cfg.BufferSize = 2
	r := newRCRig(t, cfg)
	r.dev0.Latency = 2 * sim.Microsecond
	r.dev0.RefuseRequests = 4
	for i := 0; i < 10; i++ {
		r.cpu.Read(0x40000000+uint64(i*8), 8)
	}
	r.eng.Run()
	if len(r.cpu.Completions) != 10 {
		t.Fatalf("%d completions, want 10 under backpressure", len(r.cpu.Completions))
	}
	req, _ := r.rc.RootPort(0).QueueStats()
	if req.MaxDepth > 2 {
		t.Errorf("port 0 request queue exceeded bound: depth %d", req.MaxDepth)
	}
}

func TestRootComplexIOWindowRouting(t *testing.T) {
	r := newRCRig(t, RootComplexConfig{})
	// Program an I/O window on port 0: 0x2f000000..0x2f000fff.
	v := r.rc.RootPort(0).VP2P()
	v.ConfigWrite(pci.RegIOBase, 1, 0x00)
	v.ConfigWrite(pci.RegIOLimit, 1, 0x00)
	v.ConfigWrite(pci.RegIOBaseUpper, 2, 0x2f00)
	v.ConfigWrite(pci.RegIOLimitUpper, 2, 0x2f00)
	r.cpu.Read(0x2f000010, 4)
	r.eng.Run()
	if len(r.dev0.Received) != 1 {
		t.Fatal("PMIO request did not route via the I/O window")
	}
}

// --- switch ---

func newSwitchRig(t *testing.T, cfg SwitchConfig) (*sim.Engine, *Switch, *testdev.Requester, *testdev.Responder, *testdev.Responder) {
	t.Helper()
	eng := sim.NewEngine()
	host := pci.NewHost(eng, "pcihost", pci.HostConfig{ECAMWindow: mem.Range(0x30000000, 256<<20)})
	cfg.UpstreamBus = 1
	cfg.InternalBus = 2
	sw := NewSwitch(eng, "sw", host, cfg)

	up := testdev.NewRequester(eng, "rc")
	mem.Connect(up.Port(), sw.UpstreamPort().SlavePort())
	upResp := testdev.NewResponder(eng, "upmem", nil, 10*sim.Nanosecond, 0)
	mem.Connect(sw.UpstreamPort().MasterPort(), upResp.Port())

	d0 := testdev.NewResponder(eng, "d0", nil, 5*sim.Nanosecond, 0)
	mem.Connect(sw.DownstreamPort(0).MasterPort(), d0.Port())
	d1 := testdev.NewResponder(eng, "d1", nil, 5*sim.Nanosecond, 0)
	mem.Connect(sw.DownstreamPort(1).MasterPort(), d1.Port())

	// Upstream VP2P window covers both downstream windows (§V-B).
	programBridge(sw.UpstreamPort().VP2P(), 0, 1, 3, 0x40000000, 0x403fffff)
	programBridge(sw.DownstreamPort(0).VP2P(), 2, 3, 3, 0x40000000, 0x400fffff)
	programBridge(sw.DownstreamPort(1).VP2P(), 2, 4, 4, 0x40100000, 0x401fffff)
	_ = upResp
	return eng, sw, up, d0, d1
}

func TestSwitchRegistersAllPortVP2Ps(t *testing.T) {
	eng := sim.NewEngine()
	host := pci.NewHost(eng, "pcihost", pci.HostConfig{ECAMWindow: mem.Range(0x30000000, 256<<20)})
	sw := NewSwitch(eng, "sw", host, SwitchConfig{NumDownstreamPorts: 3, UpstreamBus: 1, InternalBus: 2})
	up, ok := host.Lookup(pci.NewBDF(1, 0, 0))
	if !ok {
		t.Fatal("upstream VP2P not registered")
	}
	off := pci.FindCapability(up.(*pci.ConfigSpace), pci.CapIDPCIExpress)
	if pt, _, _ := pci.ParsePCIeCap(sw.UpstreamPort().VP2P(), off); pt != pci.PCIePortSwitchUpstream {
		t.Errorf("upstream port type = %d", pt)
	}
	for i := 0; i < 3; i++ {
		cs, ok := host.Lookup(pci.NewBDF(2, uint8(i), 0))
		if !ok {
			t.Fatalf("downstream VP2P %d not registered", i)
		}
		off := pci.FindCapability(cs.(*pci.ConfigSpace), pci.CapIDPCIExpress)
		if pt, _, _ := pci.ParsePCIeCap(sw.DownstreamPort(i).VP2P(), off); pt != pci.PCIePortSwitchDownstream {
			t.Errorf("downstream %d port type = %d", i, pt)
		}
	}
}

func TestSwitchRoutesDownstream(t *testing.T) {
	eng, _, up, d0, d1 := newSwitchRig(t, SwitchConfig{})
	up.Read(0x40000400, 4)
	up.Read(0x40100400, 4)
	eng.Run()
	if len(d0.Received) != 1 || len(d1.Received) != 1 {
		t.Fatalf("received %d/%d, want 1/1", len(d0.Received), len(d1.Received))
	}
	if len(up.Completions) != 2 {
		t.Fatal("responses lost")
	}
}

func TestSwitchUpstreamWindowEnforced(t *testing.T) {
	eng, sw, up, _, _ := newSwitchRig(t, SwitchConfig{})
	// Outside the upstream VP2P's window: master abort at the switch.
	buf := make([]byte, 4)
	up.ReadData(0x60000000, buf)
	eng.Run()
	if sw.Aborts() != 1 {
		t.Errorf("aborts = %d; the upstream ingress must check the upstream VP2P window", sw.Aborts())
	}
	if buf[0] != 0xff {
		t.Error("abort must return all-ones")
	}
}

func TestSwitchLatency(t *testing.T) {
	cfg := SwitchConfig{}
	cfg.Latency = 150 * sim.Nanosecond
	eng, _, up, _, _ := newSwitchRig(t, cfg)
	up.Read(0x40000000, 4)
	eng.Run()
	// 150ns down + 5ns device + 150ns back.
	if got := up.Completions[0].Latency(); got != 305*sim.Nanosecond {
		t.Errorf("latency %v, want 305ns", got)
	}
}

func TestSwitchDMAUpstreamAndPeerToPeer(t *testing.T) {
	eng, sw, _, _, d1 := newSwitchRig(t, SwitchConfig{})
	dma := testdev.NewRequester(eng, "dma")
	mem.Connect(dma.Port(), sw.DownstreamPort(0).SlavePort())
	upResp := sw.UpstreamPort()
	_ = upResp
	dma.Write(0x80000000, 64) // DRAM: goes upstream
	dma.Write(0x40100000, 64) // sibling window: peer-to-peer
	eng.Run()
	if len(dma.Completions) != 2 {
		t.Fatalf("%d DMA completions, want 2", len(dma.Completions))
	}
	if len(d1.Received) != 1 {
		t.Error("peer-to-peer did not reach sibling port")
	}
	// The upstream-bound packet was stamped with port 0's secondary bus.
	if got := dma.Completions[0].Pkt.BusNum; got != 3 {
		t.Errorf("DMA bus stamp = %d, want 3", got)
	}
}

// Full chain: RC -> link -> switch -> link -> device, the paper's
// validation topology in miniature.
func TestRootComplexSwitchLinkIntegration(t *testing.T) {
	eng := sim.NewEngine()
	host := pci.NewHost(eng, "pcihost", pci.HostConfig{ECAMWindow: mem.Range(0x30000000, 256<<20)})

	rcCfg := RootComplexConfig{NumRootPorts: 1}
	rcCfg.Latency = 150 * sim.Nanosecond
	rc := NewRootComplex(eng, "rc", host, rcCfg)
	swCfg := SwitchConfig{NumDownstreamPorts: 1, UpstreamBus: 1, InternalBus: 2}
	swCfg.Latency = 100 * sim.Nanosecond
	sw := NewSwitch(eng, "sw", host, swCfg)

	upLink := NewLink(eng, "rc-sw", LinkConfig{Gen: Gen2, Width: 4})
	rc.RootPort(0).ConnectLink(upLink)
	sw.ConnectUpstreamLink(upLink)

	devLink := NewLink(eng, "sw-dev", LinkConfig{Gen: Gen2, Width: 1})
	sw.DownstreamPort(0).ConnectLink(devLink)

	cpu := testdev.NewRequester(eng, "cpu")
	mem.Connect(cpu.Port(), rc.UpstreamSlave())
	memory := testdev.NewResponder(eng, "mem", nil, 50*sim.Nanosecond, 0)
	mem.Connect(rc.UpstreamMaster(), memory.Port())
	dev := testdev.NewResponder(eng, "dev", nil, sim.Microsecond, 0)
	mem.Connect(devLink.Down().MasterPort(), dev.Port())
	devDMA := testdev.NewRequester(eng, "devdma")
	mem.Connect(devDMA.Port(), devLink.Down().SlavePort())

	programBridge(rc.RootPort(0).VP2P(), 0, 1, 3, 0x40000000, 0x403fffff)
	programBridge(sw.UpstreamPort().VP2P(), 0, 1, 3, 0x40000000, 0x403fffff)
	programBridge(sw.DownstreamPort(0).VP2P(), 2, 3, 3, 0x40000000, 0x400fffff)

	// CPU MMIO to the device and device DMA to memory, concurrently.
	cpu.Read(0x40000000, 4)
	for i := 0; i < 8; i++ {
		devDMA.Write(0x80000000+uint64(i)*64, 64)
	}
	eng.Run()
	if len(cpu.Completions) != 1 {
		t.Fatal("MMIO read lost across two links and a switch")
	}
	if len(devDMA.Completions) != 8 {
		t.Fatalf("%d DMA completions, want 8", len(devDMA.Completions))
	}
	if len(memory.Received) != 8 {
		t.Fatalf("memory saw %d DMA writes", len(memory.Received))
	}
	if got := dev.Received[0].Addr; got != 0x40000000 {
		t.Errorf("device saw %#x", got)
	}
}

package pcie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pciesim/internal/fault"
	"pciesim/internal/mem"
	"pciesim/internal/pci"
	"pciesim/internal/sim"
	"pciesim/internal/testdev"
)

// checkExactlyOnce asserts the core delivery property: every queued
// request was delivered to the device exactly once, in order, and
// completed back to the requester.
func checkExactlyOnce(t *testing.T, r *linkRig, n int) {
	t.Helper()
	if len(r.resp.Received) != n {
		t.Fatalf("device received %d packets, want %d", len(r.resp.Received), n)
	}
	for i, p := range r.resp.Received {
		if p.Addr != uint64(i)*64 {
			t.Fatalf("packet %d out of order: addr %#x", i, p.Addr)
		}
	}
	if len(r.req.Completions) != n {
		t.Fatalf("%d completions, want %d", len(r.req.Completions), n)
	}
}

// Satellite fix regression: ACK/NAK DLLPs themselves are subject to
// corruption. A corrupted ACK must be dropped by the receiver's CRC
// check and recovered through the ACK-timer/replay path — never crash
// the replay buffer, never duplicate a delivery.
func TestLinkScriptedDLLPCorruptionRecovers(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.ReplayBufferSize = 4
	// Corrupt the first three ACK/NAK DLLPs the device transmits.
	cfg.Fault = &fault.Plan{
		Down: fault.Profile{Script: []fault.Event{
			{At: 0, Op: fault.OpCorruptDLLP},
			{At: 0, Op: fault.OpCorruptDLLP},
			{At: 0, Op: fault.OpCorruptDLLP},
		}},
	}
	r := newLinkRig(cfg, 5*sim.Nanosecond, 0)
	const n = 24
	for i := 0; i < n; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	checkExactlyOnce(t, r, n)
	up := r.link.Up().Stats()
	if up.BadDLLPs != 3 {
		t.Errorf("up interface dropped %d bad DLLPs, want 3", up.BadDLLPs)
	}
	// Recovery must have come through the timers: the sender either
	// replayed or the receiver re-ACKed, but nothing was lost above.
	if up.AcksRx == 0 {
		t.Error("no ACK ever got through")
	}
}

// A mid-stream surprise-down window with a finite duration retrains and
// resumes: DLL state survives, so the stream continues with no loss and
// no duplication.
func TestLinkDownRetrainMidStream(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.ReplayBufferSize = 4
	cfg.Fault = &fault.Plan{
		Windows:        []fault.Window{{At: 2 * sim.Microsecond, Duration: 3 * sim.Microsecond}},
		RetrainLatency: sim.Microsecond,
	}
	r := newLinkRig(cfg, 10*sim.Nanosecond, 0)
	const n = 40
	for i := 0; i < n; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	checkExactlyOnce(t, r, n)
	if got := r.link.Retrains(); got != 1 {
		t.Errorf("retrains = %d, want 1", got)
	}
	if r.link.Dead() || r.link.IsDown() {
		t.Error("link must be back up after retraining")
	}
	up := r.link.Up().Stats()
	if up.DownRefused == 0 && up.DownDrops == 0 && r.link.Down().Stats().DownDrops == 0 {
		t.Error("the window left no trace in the down-window counters")
	}
}

// Extended exactly-once property (DESIGN.md §7): for any combination of
// TLP corruption, ACK/NAK DLLP corruption, packet drops, device
// refusals, replay-buffer depth, and a mid-stream link-down/retrain
// window, every accepted TLP is delivered exactly once, in order, and
// the run terminates (no loss, no duplication, no deadlock).
func TestLinkExactlyOnceUnderFaultsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultLinkConfig()
		cfg.ReplayBufferSize = 1 + rng.Intn(6)
		cfg.Width = []int{1, 2, 4, 8}[rng.Intn(4)]
		rates := fault.Rates{
			TLPCorrupt:  float64(rng.Intn(3)) * 0.08,
			DLLPCorrupt: float64(rng.Intn(3)) * 0.08,
			Drop:        float64(rng.Intn(3)) * 0.05,
		}
		plan := &fault.Plan{
			Seed: uint64(seed)*2 + 1,
			Up:   fault.Profile{Rates: rates},
			Down: fault.Profile{Rates: rates},
		}
		if rng.Intn(2) == 0 {
			plan.Windows = []fault.Window{{
				At:       sim.Tick(1+rng.Intn(10)) * sim.Microsecond,
				Duration: sim.Tick(1+rng.Intn(5)) * sim.Microsecond,
			}}
			plan.RetrainLatency = sim.Tick(rng.Intn(3)) * sim.Microsecond
		}
		cfg.Fault = plan
		r := newLinkRig(cfg, sim.Tick(rng.Intn(200))*sim.Nanosecond, 0)
		r.resp.RefuseRequests = rng.Intn(20)
		n := 20 + rng.Intn(40)
		for i := 0; i < n; i++ {
			r.req.Write(uint64(i)*64, 64)
		}
		r.eng.Run()
		if len(r.resp.Received) != n || len(r.req.Completions) != n {
			return false
		}
		for i, p := range r.resp.Received {
			if p.Addr != uint64(i)*64 {
				return false
			}
		}
		return r.eng.Drained()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Faulted runs replay bit-identically: the same plan and seed produce
// the same protocol statistics, tick for tick.
func TestLinkFaultDeterminism(t *testing.T) {
	run := func() (LinkStats, LinkStats, sim.Tick) {
		cfg := DefaultLinkConfig()
		cfg.ReplayBufferSize = 3
		cfg.Fault = &fault.Plan{
			Seed: 99,
			Up:   fault.Profile{Rates: fault.Rates{TLPCorrupt: 0.1, DLLPCorrupt: 0.1, Drop: 0.05}},
			Down: fault.Profile{Rates: fault.Rates{TLPCorrupt: 0.1, DLLPCorrupt: 0.1, Drop: 0.05}},
		}
		r := newLinkRig(cfg, 20*sim.Nanosecond, 0)
		for i := 0; i < 50; i++ {
			r.req.Write(uint64(i)*64, 64)
		}
		r.eng.Run()
		return r.link.Up().Stats(), r.link.Down().Stats(), r.eng.Now()
	}
	u1, d1, t1 := run()
	u2, d2, t2 := run()
	if u1 != u2 || d1 != d2 || t1 != t2 {
		t.Fatalf("faulted run is not deterministic:\n%+v vs %+v\n%+v vs %+v\n%v vs %v",
			u1, u2, d1, d2, t1, t2)
	}
}

// Deadlock regression: a permanently-down link must terminate, not
// hang. The root complex's completion timeout answers every stranded
// non-posted request with an error completion, admitted TLPs are
// black-holed, and the event queue drains.
func TestDeadLinkCompletionTimeoutDrainsEventQueue(t *testing.T) {
	eng := sim.NewEngine()
	host := pci.NewHost(eng, "pcihost", pci.HostConfig{ECAMWindow: mem.Range(0x30000000, 256<<20)})
	rcCfg := RootComplexConfig{NumRootPorts: 2}
	rcCfg.CompletionTimeout = 20 * sim.Microsecond
	rc := NewRootComplex(eng, "rc", host, rcCfg)

	cpu := testdev.NewRequester(eng, "cpu")
	mem.Connect(cpu.Port(), rc.UpstreamSlave())
	memory := testdev.NewResponder(eng, "mem", nil, 50*sim.Nanosecond, 0)
	mem.Connect(rc.UpstreamMaster(), memory.Port())

	lcfg := DefaultLinkConfig()
	lcfg.Fault = &fault.Plan{
		Windows: []fault.Window{{At: sim.Microsecond, Duration: 0}}, // permanent
	}
	link := NewLink(eng, "deadlink", lcfg)
	rc.RootPort(0).ConnectLink(link)
	link.Up().SetAER(rc.RootPort(0).AER())
	dev := testdev.NewResponder(eng, "dev", nil, 100*sim.Nanosecond, 0)
	mem.Connect(link.Down().MasterPort(), dev.Port())

	programBridge(rc.RootPort(0).VP2P(), 0, 1, 1, 0x40000000, 0x400fffff)

	const n = 24
	cpu.Window = 2
	for i := 0; i < n; i++ {
		cpu.Read(0x40000000+uint64(i)*64, 64)
	}
	eng.Run() // a hung event queue fails this test by timeout

	if !eng.Drained() {
		t.Fatal("event queue not drained")
	}
	if !link.Dead() {
		t.Fatal("link should be dead")
	}
	if len(cpu.Completions) != n {
		t.Fatalf("%d completions, want %d: every request must be answered", len(cpu.Completions), n)
	}
	var errored, clean int
	for _, c := range cpu.Completions {
		if c.Pkt.Error {
			errored++
			for _, b := range c.Pkt.Data {
				if b != 0xff {
					t.Fatal("errored read must return all-ones data")
				}
			}
		} else {
			clean++
		}
	}
	if clean == 0 || errored == 0 {
		t.Fatalf("want a mix of clean and errored completions, got %d clean / %d errored", clean, errored)
	}
	fired, _ := rc.CompletionTimeouts()
	if fired != uint64(errored) {
		t.Errorf("RC synthesized %d error completions, requester saw %d", fired, errored)
	}
	// The error paths latched AER state at the surviving ends.
	if rc.RootPort(0).AER().UncorrectableStatus()&pci.AERUncCompletionTimeout == 0 {
		t.Error("root port AER must latch CompletionTimeout")
	}
}

// A link declared dead via DeadThreshold (the partner stops answering
// entirely, detected by consecutive replay-timer expirations) flushes
// its buffers and black-holes traffic exactly like a scripted death.
func TestDeadThresholdDeclaresLinkDown(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.ReplayBufferSize = 2
	cfg.Fault = &fault.Plan{
		// Drop everything in both directions: no TLP and no ACK ever
		// arrives, so replay timers expire back to back.
		Up:            fault.Profile{Rates: fault.Rates{Drop: 1}},
		Down:          fault.Profile{Rates: fault.Rates{Drop: 1}},
		DeadThreshold: 8,
	}
	r := newLinkRig(cfg, 0, 0)
	for i := 0; i < 4; i++ {
		r.req.Write(uint64(i)*64, 64)
	}
	r.eng.Run()
	if !r.eng.Drained() {
		t.Fatal("event queue not drained")
	}
	if !r.link.Dead() {
		t.Fatal("link must be declared dead by the threshold")
	}
	up := r.link.Up().Stats()
	if up.FlushedTLPs == 0 {
		t.Error("death must flush the unacknowledged replay buffer")
	}
	if up.Timeouts < 8 {
		t.Errorf("expected >=8 replay timeouts before death, got %d", up.Timeouts)
	}
}

package pcie

import (
	"bytes"
	"testing"

	"pciesim/internal/mem"
)

// wireSeeds are valid encodings covering every packet shape, used both
// as the deterministic roundtrip test and as the fuzz seed corpus.
func wireSeeds() []*PciePkt {
	read := mem.NewPacket(mem.ReadReq, 0x8000_4000, 64)
	read.ID = 7
	read.BusNum = 3
	resp := mem.NewPacket(mem.ReadReq, 0x8000_4000, 8)
	resp.ID = 8
	resp.MakeResponse()
	resp.Data = []byte{1, 2, 3, 4, 5, 6, 7, 8}
	posted := mem.NewPacket(mem.WriteReq, 0x2c1f_0000, 4)
	posted.Posted = true
	posted.Data = []byte{0xaa, 0xbb, 0xcc, 0xdd}
	errc := mem.NewPacket(mem.ReadReq, 0x4000_0000, 4)
	errc.MakeResponse()
	errc.Error = true
	empty := mem.NewPacket(mem.WriteReq, 0, 0)
	return []*PciePkt{
		{Kind: KindAck, Seq: 41},
		{Kind: KindNak, Seq: 42, Corrupted: true},
		{Kind: KindInitFC1, FCCl: FCPosted, FCHdr: 16, FCData: 64},
		{Kind: KindInitFC2, FCCl: FCNonPosted, FCHdr: 8},
		{Kind: KindUpdateFC, FCCl: FCCpl, FCHdr: 1 << 40, FCData: 1 << 42},
		{Kind: KindUpdateFC, FCCl: FCPosted, Corrupted: true},
		{Kind: KindTLP, Seq: 1, TLP: read},
		{Kind: KindTLP, Seq: 2, TLP: resp},
		{Kind: KindTLP, Seq: 3, TLP: posted, Corrupted: true},
		{Kind: KindTLP, Seq: 4, TLP: errc},
		{Kind: KindTLP, Seq: 5, TLP: empty},
	}
}

// pktWireEqual compares the wire-visible state of two packets.
func pktWireEqual(a, b *PciePkt) bool {
	if a.Kind != b.Kind || a.Seq != b.Seq || a.Corrupted != b.Corrupted {
		return false
	}
	if a.Kind.isFC() {
		return a.FCCl == b.FCCl && a.FCHdr == b.FCHdr && a.FCData == b.FCData
	}
	if a.Kind != KindTLP {
		return true
	}
	x, y := a.TLP, b.TLP
	return x.ID == y.ID && x.Cmd == y.Cmd && x.Addr == y.Addr && x.Size == y.Size &&
		x.BusNum == y.BusNum && x.Posted == y.Posted && x.Error == y.Error &&
		bytes.Equal(x.Data, y.Data) && (x.Data == nil) == (y.Data == nil)
}

// TestWireRoundtrip: every packet shape survives encode/decode exactly.
func TestWireRoundtrip(t *testing.T) {
	for i, p := range wireSeeds() {
		enc := EncodeWire(p)
		got, err := DecodeWire(enc)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", i, err)
		}
		if !pktWireEqual(p, got) {
			t.Fatalf("seed %d: roundtrip mismatch:\n in  %v\n out %v", i, p, got)
		}
		if re := EncodeWire(got); !bytes.Equal(enc, re) {
			t.Fatalf("seed %d: re-encode differs:\n %x\n %x", i, enc, re)
		}
	}
}

// TestWireDecodeRejects: malformed inputs error instead of panicking or
// decoding to nonsense.
func TestWireDecodeRejects(t *testing.T) {
	good := EncodeWire(wireSeeds()[6])
	fc := EncodeWire(wireSeeds()[2])
	cases := map[string][]byte{
		"empty":         {},
		"short DLLP":    good[:5],
		"short TLP":     good[:20],
		"bad kind":      append([]byte{9}, good[1:]...),
		"bad cmd":       mutate(good, 10, 0),
		"bad flags":     mutate(good, 1, 0x80),
		"dllp trailing": append(EncodeWire(wireSeeds()[0]), 0),
		"tlp trailing":  append(append([]byte(nil), good...), 0xee),
		"fc bad class":  mutate(fc, 2, fcNumClasses),
		"fc bad flags":  mutate(fc, 1, wireFlagPosted),
		"fc short":      fc[:wireFCLen-1],
		"fc trailing":   append(append([]byte(nil), fc...), 0),
	}
	for name, b := range cases {
		if _, err := DecodeWire(b); err == nil {
			t.Errorf("%s: decode accepted %x", name, b)
		}
	}
}

func mutate(b []byte, off int, v byte) []byte {
	c := append([]byte(nil), b...)
	c[off] = v
	return c
}

// FuzzDLLPDecode drives the same canonical-form invariant as
// FuzzTLPDecode but with a corpus concentrated on the DLLP shapes —
// ACK/NAK and the three flow-control kinds — so the fuzzer spends its
// budget on the 10- and 19-byte encodings where the FC fields live.
func FuzzDLLPDecode(f *testing.F) {
	for _, p := range wireSeeds() {
		if p.Kind != KindTLP {
			f.Add(EncodeWire(p))
		}
	}
	for cl := byte(0); cl < fcNumClasses; cl++ {
		b := make([]byte, wireFCLen)
		b[0] = byte(KindUpdateFC)
		b[2] = cl
		b[3] = 0xff
		f.Add(b)
	}
	f.Add([]byte{byte(KindInitFC1), 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeWire(data)
		if err != nil {
			return
		}
		re := EncodeWire(p)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical input:\n in  %x\n out %x", data, re)
		}
		if p.Kind.isFC() && p.FCCl >= fcNumClasses {
			t.Fatalf("decoded out-of-range FC class %d", p.FCCl)
		}
	})
}

// FuzzTLPDecode drives the codec's central invariant: DecodeWire never
// panics, and any input it accepts is in canonical form — re-encoding
// reproduces the input bytes and decoding is stable.
func FuzzTLPDecode(f *testing.F) {
	for _, p := range wireSeeds() {
		f.Add(EncodeWire(p))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeWire(data)
		if err != nil {
			return
		}
		re := EncodeWire(p)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical input:\n in  %x\n out %x", data, re)
		}
		p2, err := DecodeWire(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !pktWireEqual(p, p2) {
			t.Fatalf("re-decode drifted:\n %v\n %v", p, p2)
		}
	})
}

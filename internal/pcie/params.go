// Package pcie implements the paper's PCI-Express interconnect models:
// the link with its data-link-layer ACK/NAK replay protocol (§V-C), the
// root complex with virtual PCI-to-PCI bridges and bus-number-based
// response routing (§V-A), and the store-and-forward switch (§V-B).
//
// As in the paper, gem5-style memory packets serve directly as
// transaction layer packets (TLPs); a small wrapper (PciePkt, the
// paper's "pcie-pkt") carries them — and data link layer packets
// (DLLPs) — across a link, with all transaction, data-link and physical
// layer overheads of Table I charged to the wire time.
package pcie

import (
	"fmt"

	"pciesim/internal/sim"
)

// Generation selects the PCI-Express signaling rate and line encoding.
type Generation int

// Supported generations.
const (
	Gen1 Generation = 1 // 2.5 GT/s, 8b/10b
	Gen2 Generation = 2 // 5 GT/s, 8b/10b
	Gen3 Generation = 3 // 8 GT/s, 128b/130b
)

// String implements fmt.Stringer.
func (g Generation) String() string {
	switch g {
	case Gen1, Gen2, Gen3:
		return fmt.Sprintf("Gen%d", int(g))
	default:
		return fmt.Sprintf("Generation(%d)", int(g))
	}
}

// RawGTps returns the per-lane line rate in gigatransfers per second.
func (g Generation) RawGTps() float64 {
	switch g {
	case Gen1:
		return 2.5
	case Gen2:
		return 5
	case Gen3:
		return 8
	default:
		panic(fmt.Sprintf("pcie: unknown generation %d", int(g)))
	}
}

// EncodingOverhead returns the line-coding expansion as a (num, den)
// ratio of wire bits to payload bits: 10/8 for Gen1/2, 130/128 for Gen3
// (the last row of Table I).
func (g Generation) EncodingOverhead() (num, den int) {
	if g == Gen3 {
		return 130, 128
	}
	return 10, 8
}

// symbolFemtos returns the symbol time — the time to move one byte
// across one lane, including encoding overhead — in femtoseconds.
// Gen1: 8 bits * 10/8 / 2.5 GT/s = 4 ns. Gen2: 2 ns.
// Gen3: 8 * 130/128 / 8 GT/s = 1.015625 ns.
func (g Generation) symbolFemtos() uint64 {
	switch g {
	case Gen1:
		return 4_000_000
	case Gen2:
		return 2_000_000
	case Gen3:
		return 1_015_625
	default:
		panic(fmt.Sprintf("pcie: unknown generation %d", int(g)))
	}
}

// SymbolTime returns the symbol time in ticks (rounded to 1 ps).
func (g Generation) SymbolTime() sim.Tick { return sim.Tick(g.symbolFemtos() / 1000) }

// EffectiveGbps returns the usable per-direction bandwidth of a link in
// gigabits per second after encoding overhead: raw rate × width ×
// payload-bits/wire-bits. A Gen2 x1 link yields 4 Gb/s — the number the
// paper's physical p3700 measurement bottoms out at.
func EffectiveGbps(g Generation, width int) float64 {
	num, den := g.EncodingOverhead()
	return g.RawGTps() * float64(width) * float64(den) / float64(num)
}

// Overheads collects the per-packet byte overheads of Table I.
type Overheads struct {
	TLPHeader int // transaction layer header
	SeqNum    int // sequence number appended by the data link layer
	LCRC      int // link CRC appended by the data link layer
	Framing   int // STP/END control symbols added by the physical layer
	DLLPBody  int // DLLP payload+CRC before framing
}

// DefaultOverheads returns Table I: 12 B TLP header, 2 B sequence
// number, 4 B LCRC, 2 B framing; DLLPs are 6 B before framing.
func DefaultOverheads() Overheads {
	return Overheads{TLPHeader: 12, SeqNum: 2, LCRC: 4, Framing: 2, DLLPBody: 6}
}

// TLPWireBytes returns the total bytes a TLP with the given payload
// occupies on the wire (before line encoding, which the symbol time
// already accounts for).
func (o Overheads) TLPWireBytes(payload int) int {
	return payload + o.TLPHeader + o.SeqNum + o.LCRC + o.Framing
}

// DLLPWireBytes returns the wire size of a DLLP.
func (o Overheads) DLLPWireBytes() int { return o.DLLPBody + o.Framing }

// AckFactor scales the replay timeout with payload size and link width,
// following the shape of the PCI Express Base Specification's replay
// timer table: narrow links use 1.4 and wider links grow toward 3.0
// because the returning ACK occupies relatively more of the round trip.
func AckFactor(maxPayload, width int) float64 {
	switch {
	case width <= 2:
		return 1.4
	case width <= 4:
		if maxPayload <= 128 {
			return 1.4
		}
		return 2.5
	case width <= 8:
		if maxPayload <= 128 {
			return 2.5
		}
		return 3.0
	default:
		return 3.0
	}
}

// ReplayTimeout evaluates the paper's timeout formula (§V-C):
//
//	((MaxPayloadSize + TLPOverhead) / Width * AckFactor + InternalDelay) * 3
//	  + RxL0sAdjustment
//
// in symbol times, with InternalDelay and RxL0sAdjustment fixed at 0
// exactly as the paper sets them. The result is converted to ticks
// using the generation's symbol time. Note the 1/Width dependence: a
// wider link has a *tighter* timeout, which is the seed of the x8
// congestion collapse in Fig 9(b).
func ReplayTimeout(g Generation, width, maxPayload int, o Overheads) sim.Tick {
	tlpOverhead := o.TLPHeader + o.SeqNum + o.LCRC + o.Framing
	symbols := (float64(maxPayload+tlpOverhead) / float64(width)) * AckFactor(maxPayload, width) * 3
	fs := symbols * float64(g.symbolFemtos())
	return sim.Tick(fs/1000 + 0.5)
}

// AckTimerPeriod is 1/3 of the replay timeout (§V-C).
func AckTimerPeriod(g Generation, width, maxPayload int, o Overheads) sim.Tick {
	return ReplayTimeout(g, width, maxPayload, o) / 3
}

// WireTime returns the time to serialize n bytes onto a link of the
// given generation and width.
func WireTime(g Generation, width, n int) sim.Tick {
	fs := uint64(n) * g.symbolFemtos()
	ps := (fs + uint64(width)*1000 - 1) / (uint64(width) * 1000)
	return sim.Tick(ps)
}

package pcie

import (
	"fmt"

	"pciesim/internal/fault"
	"pciesim/internal/mem"
	"pciesim/internal/pci"
	"pciesim/internal/sim"
	"pciesim/internal/stats"
	"pciesim/internal/trace"
)

// LinkConfig parameterizes a PCI-Express link.
type LinkConfig struct {
	// Gen selects the signaling rate and encoding.
	Gen Generation
	// Width is the lane count (1..32).
	Width int
	// PropDelay is the propagation delay of the physical medium, added
	// after serialization.
	PropDelay sim.Tick
	// ReplayBufferSize bounds unacknowledged TLPs per interface. The
	// paper's validated configuration uses 4 — "enough TLP pcie-pkts
	// until the next ACK arrives based on the ack factor" — and sweeps
	// 1..4 in Fig 9(c).
	ReplayBufferSize int
	// MaxPayload is the maximum TLP payload (the modeled cache line
	// size); it enters the replay-timeout formula.
	MaxPayload int
	// Overheads is the Table I byte-overhead model.
	Overheads Overheads
	// Credits selects transaction-layer credit-based flow control: the
	// receive-side VC0 credit pool each interface advertises to its
	// peer (see credit.go). The zero value means infinite credits —
	// the legacy DLL-only link, bit-identical to the pre-FC simulator.
	// Routers typically override their side's advertisement from real
	// queue depths via Interface.AdvertiseCredits.
	Credits CreditConfig
	// Seed seeds the fault-injection generator.
	Seed uint64
	// Fault optionally attaches a deterministic fault-injection plan:
	// per-direction corruption/drop rates and scripts, plus surprise
	// link-down windows. Nil means a fault-free link.
	Fault *fault.Plan
	// Degrade arms adaptive link degradation (see degrade.go): sustained
	// error windows make a retrain come back at a reduced Gen/Width,
	// with periodic upgrade retrains on exponential backoff. Nil
	// disables degradation entirely.
	Degrade *DegradeConfig
}

// DefaultLinkConfig returns the paper's baseline: Gen2 x1, replay
// buffer of 4, 64-byte max payload, Table I overheads.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		Gen:              Gen2,
		Width:            1,
		PropDelay:        sim.Nanosecond,
		ReplayBufferSize: 4,
		MaxPayload:       64,
		Overheads:        DefaultOverheads(),
	}
}

func (c *LinkConfig) applyDefaults() {
	if c.Gen == 0 {
		c.Gen = Gen2
	}
	if c.Width == 0 {
		c.Width = 1
	}
	if c.ReplayBufferSize == 0 {
		c.ReplayBufferSize = 4
	}
	if c.MaxPayload == 0 {
		c.MaxPayload = 64
	}
	if c.Overheads == (Overheads{}) {
		c.Overheads = DefaultOverheads()
	}
	if c.Width < 1 || c.Width > 32 {
		panic(fmt.Sprintf("pcie: link width %d out of range (1..32)", c.Width))
	}
	if err := c.Credits.Validate(); err != nil {
		panic(err.Error())
	}
}

// linkState is the LTSSM-visible condition of the link as a whole.
type linkState int

const (
	linkUp   linkState = iota // normal operation
	linkDown                  // transient surprise-down window; retrain pending
	linkDead                  // permanently down; traffic is black-holed
)

// Link is a full-duplex PCI-Express link: "two unidirectional links,
// one used for transmitting packets upstream (toward the root complex),
// and one used for transmitting packets downstream" (§V-C). Each end is
// an Interface with the full TX/RX data-link-layer state of Fig 8.
type Link struct {
	eng  *sim.Engine
	name string
	cfg  LinkConfig
	// ord is the builder-assigned creation index (zero for links made
	// with plain NewLink): the static tie-break the event heap uses
	// when wire deliveries from different links collide on the full
	// (when, prio, sched) key. The topology builder assigns the same
	// ord regardless of partitioning, so serial and parallel runs
	// resolve those ties identically.
	ord uint64

	up   *Interface // the end wired to the upstream component (root/switch port)
	down *Interface // the end wired to the downstream component (device/switch)

	plan       *fault.Plan
	planActive bool
	state      linkState
	retrains   uint64

	// deg is the adaptive-degradation ladder; nil when unarmed.
	deg *degradeState

	// removed distinguishes a surprise-removed (re-insertable) link
	// from one declared permanently dead.
	removed   bool
	removals  uint64
	reinserts uint64

	// notify reports link lifecycle transitions to subscribers: the
	// port above, the port below, and the topology layer.
	notify []func(LinkNotice)
}

// LinkNotice is a link lifecycle transition reported to the component
// wired above the link.
type LinkNotice int

const (
	// NoticeRetrained: the link came back up, possibly at a new
	// Gen/Width (read CurrentGen/CurrentWidth).
	NoticeRetrained LinkNotice = iota
	// NoticeDead: the link was declared permanently down.
	NoticeDead
	// NoticeRemoved: the downstream device was surprise-removed.
	NoticeRemoved
	// NoticeReinserted: the device was re-seated; retraining started.
	NoticeReinserted
)

func (n LinkNotice) String() string {
	switch n {
	case NoticeRetrained:
		return "retrained"
	case NoticeDead:
		return "dead"
	case NoticeRemoved:
		return "removed"
	case NoticeReinserted:
		return "reinserted"
	}
	return fmt.Sprintf("notice(%d)", int(n))
}

// SetNotify subscribes a lifecycle callback. Multiple subscribers are
// supported (the ports at both ends plus the topology layer); they are
// invoked in subscription order.
func (l *Link) SetNotify(fn func(LinkNotice)) { l.notify = append(l.notify, fn) }

func (l *Link) notifyAll(n LinkNotice) {
	for _, fn := range l.notify {
		fn(n)
	}
}

// NewLink creates a link.
func NewLink(eng *sim.Engine, name string, cfg LinkConfig) *Link {
	cfg.applyDefaults()
	l := &Link{eng: eng, name: name, cfg: cfg, plan: cfg.Fault}
	if err := l.plan.Normalize(); err != nil {
		panic(fmt.Sprintf("pcie: link %s: %v", name, err))
	}
	l.planActive = l.plan.Active()
	seed := cfg.Seed
	if l.plan != nil && l.plan.Seed != 0 {
		seed = l.plan.Seed
	}
	l.up = newInterface(l, eng, name+".up", seed*2+1)
	l.down = newInterface(l, eng, name+".down", seed*2+2)
	l.up.peer = l.down
	l.down.peer = l.up
	if cfg.Degrade == nil && l.plan != nil && len(l.plan.Downtrains) > 0 {
		// A plan that forces downtrains implies the default policy.
		d := DefaultDegradeConfig()
		l.cfg.Degrade = &d
	}
	if l.cfg.Degrade != nil {
		l.deg = newDegradeState(l, *l.cfg.Degrade)
	}
	if l.plan != nil {
		l.up.inj = fault.NewInjector(l.plan.Up, l.up.rng)
		l.down.inj = fault.NewInjector(l.plan.Down, l.down.rng)
		for _, w := range l.plan.Windows {
			if w.At < eng.Now() {
				continue // windows in the past are ignored
			}
			w := w
			eng.ScheduleAt(name+".linkdown", w.At, sim.PriorityTimer, func() { l.goDown(w) })
		}
		for _, at := range l.plan.Downtrains {
			if at < eng.Now() {
				continue
			}
			eng.ScheduleAt(name+".downtrain", at, sim.PriorityTimer, l.forceDowntrain)
		}
		if len(l.plan.Hotplugs) > 0 {
			l.registerHotplugStats()
			for _, h := range l.plan.Hotplugs {
				if h.RemoveAt < eng.Now() {
					continue
				}
				h := h
				eng.ScheduleAt(name+".hotplug-remove", h.RemoveAt, sim.PriorityTimer, l.SurpriseRemove)
				if !h.Permanent() {
					eng.ScheduleAt(name+".hotplug-reinsert", h.RemoveAt+h.ReinsertAfter,
						sim.PriorityTimer, l.Reinsert)
				}
			}
		}
	}
	return l
}

// NewLinkSplit creates a link whose two ends live on different engines
// (timing domains): up-side events run on upEng, down-side events on
// downEng, and every wire crossing is ferried between the domains with
// sim.CrossSchedule at its full serialization + propagation latency —
// which is exactly the lookahead the conservative coordinator relies
// on. Links with a fault plan or a degradation policy mutate shared
// link state from timer events and must stay within one domain; the
// partitioner pins them, and this constructor enforces it.
//
// ord is the link's creation index in build order, the deterministic
// tie-break for simultaneous wire deliveries from different links
// (sim.CrossSchedule's ord).
func NewLinkSplit(upEng, downEng *sim.Engine, name string, ord uint64, cfg LinkConfig) *Link {
	if upEng == downEng {
		// Same domain: an ordinary link (fault plans and degradation
		// are fine here), but it keeps the builder's ord so
		// simultaneous deliveries order the same way no matter how the
		// fabric was partitioned (or not partitioned at all).
		l := NewLink(upEng, name, cfg)
		l.ord = ord
		return l
	}
	if cfg.Fault != nil {
		panic(fmt.Sprintf("pcie: split link %s: fault plans require a single-domain link", name))
	}
	if cfg.Degrade != nil {
		panic(fmt.Sprintf("pcie: split link %s: degradation requires a single-domain link", name))
	}
	cfg.applyDefaults()
	l := &Link{eng: upEng, name: name, cfg: cfg, ord: ord}
	seed := cfg.Seed
	l.up = newInterface(l, upEng, name+".up", seed*2+1)
	l.down = newInterface(l, downEng, name+".down", seed*2+2)
	l.up.peer = l.down
	l.down.peer = l.up
	return l
}

// registerHotplugStats publishes the hotplug counters; called only when
// the plan schedules hot-plug events, so unarmed dumps are unchanged.
func (l *Link) registerHotplugStats() {
	r := l.eng.Stats()
	pfx := "pcie." + l.name + ".hotplug."
	r.CounterFunc(pfx+"removals", func() uint64 { return l.removals })
	r.CounterFunc(pfx+"reinserts", func() uint64 { return l.reinserts })
}

// Up returns the interface to wire to the upstream component.
func (l *Link) Up() *Interface { return l.up }

// Down returns the interface to wire to the downstream component.
func (l *Link) Down() *Interface { return l.down }

// Config returns the link's (defaulted) configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Retrains returns how many surprise-down windows the link has
// recovered from.
func (l *Link) Retrains() uint64 { return l.retrains }

// Dead reports whether the link has been declared permanently down.
func (l *Link) Dead() bool { return l.state == linkDead }

// IsDown reports whether the link is currently unable to carry traffic
// (transiently down or dead).
func (l *Link) IsDown() bool { return l.state != linkUp }

func (l *Link) deadThreshold() int {
	if l.plan == nil {
		return 0
	}
	return l.plan.DeadThreshold
}

// ReplayTimeout returns the link's replay timer interval.
func (l *Link) ReplayTimeout() sim.Tick {
	return ReplayTimeout(l.cfg.Gen, l.cfg.Width, l.cfg.MaxPayload, l.cfg.Overheads)
}

// AckPeriod returns the link's ACK batching timer interval.
func (l *Link) AckPeriod() sim.Tick {
	return AckPeriodClamped(l.cfg.Gen, l.cfg.Width, l.cfg.MaxPayload, l.cfg.Overheads)
}

// AckPeriodClamped is AckTimerPeriod floored at one symbol time so
// degenerate configurations cannot arm a zero-period timer.
func AckPeriodClamped(g Generation, width, maxPayload int, o Overheads) sim.Tick {
	p := AckTimerPeriod(g, width, maxPayload, o)
	if st := g.SymbolTime(); p < st {
		p = st
	}
	return p
}

// --- link-down / retrain / dead state machine ------------------------

// goDown opens a surprise-down window: both interfaces freeze their
// timers, admission refuses, and anything on the wire is lost. A
// finite window schedules the retrain; a permanent one kills the link.
func (l *Link) goDown(w fault.Window) {
	if l.state != linkUp {
		return
	}
	if w.Permanent() {
		l.markDead()
		return
	}
	l.state = linkDown
	if tr := l.eng.Tracer(); tr.On(trace.CatFault) {
		tr.Emit(trace.CatFault, uint64(l.eng.Now()), "pcie."+l.name,
			"link-down", 0, fmt.Sprintf("duration=%v", w.Duration))
	}
	l.up.pause()
	l.down.pause()
	l.eng.Schedule(l.name+".retrain", w.Duration+l.plan.RetrainLatency, l.goUp)
}

// goUp completes retraining. DLL state (sequence numbers, replay
// buffers) survives the window — the link resumes by replaying every
// unacknowledged TLP, preserving exactly-once delivery. A pending
// degradation/upgrade target is applied first, so the resumed link
// runs at the new Gen/Width. Per the spec's DL_Down rule, the FC
// InitFC1/InitFC2 handshake re-runs from scratch after every down
// (Interface.resume → fcState.resume).
func (l *Link) goUp() {
	if l.state != linkDown {
		return
	}
	l.applyPendingLevel()
	l.state = linkUp
	l.retrains++
	if tr := l.eng.Tracer(); tr.On(trace.CatFault) {
		tr.Emit(trace.CatFault, uint64(l.eng.Now()), "pcie."+l.name, "retrain", 0, "")
	}
	l.up.resume()
	l.down.resume()
	l.scheduleUpgrade()
	l.notifyAll(NoticeRetrained)
}

// markDead declares the link permanently down: buffers are flushed,
// AER surprise-down is latched at both ends, and from now on admitted
// TLPs are black-holed so upstream queues drain and requesters fail by
// completion timeout instead of deadlocking the event queue.
func (l *Link) markDead() {
	if l.state == linkDead {
		return
	}
	l.state = linkDead
	l.removed = false
	if tr := l.eng.Tracer(); tr.On(trace.CatFault) {
		tr.Emit(trace.CatFault, uint64(l.eng.Now()), "pcie."+l.name, "link-dead", 0,
			fmt.Sprintf("flushing up=%d down=%d unacked TLPs",
				len(l.up.replayBuf), len(l.down.replayBuf)))
	}
	l.flushBothEnds()
	l.notifyAll(NoticeDead)
}

// flushBothEnds flushes DLL and transaction-layer state on both
// interfaces after the link stopped carrying traffic for good (dead or
// surprise-removed).
func (l *Link) flushBothEnds() {
	if l.deg != nil {
		l.eng.Deschedule(l.deg.upgradeTmr)
	}
	for _, i := range []*Interface{l.up, l.down} {
		i.pause()
		i.stats.FlushedTLPs += uint64(len(i.replayBuf))
		i.replayBuf = i.replayBuf[:0]
		i.bufGauge.Set(0)
		i.freshQ = i.freshQ[:0]
		i.replayQ = i.replayQ[:0]
		i.ackPend, i.nakPend = false, false
		if i.fc != nil {
			i.fc.flushDead()
		}
		i.aer.ReportUncorrectable(pci.AERUncSurpriseDown)
		i.notifyLocalRetry()
	}
}

// SurpriseRemove yanks the device below the link out of its slot:
// traffic in flight is lost, both ends flush, and the link behaves
// like a dead link (admitted TLPs are black-holed) until Reinsert.
func (l *Link) SurpriseRemove() {
	if l.state == linkDead {
		return
	}
	l.state = linkDead
	l.removed = true
	l.removals++
	if tr := l.eng.Tracer(); tr.On(trace.CatFault) {
		tr.Emit(trace.CatFault, uint64(l.eng.Now()), "pcie."+l.name, "surprise-remove", 0,
			fmt.Sprintf("flushing up=%d down=%d unacked TLPs",
				len(l.up.replayBuf), len(l.down.replayBuf)))
	}
	l.flushBothEnds()
	l.notifyAll(NoticeRemoved)
}

// Reinsert re-seats a surprise-removed device. Both ends reset their
// DLL from scratch (sequence numbers, queues, FC handshake) and the
// link retrains, carrying traffic again after the retrain latency.
func (l *Link) Reinsert() {
	if l.state != linkDead || !l.removed {
		return
	}
	l.removed = false
	l.reinserts++
	if tr := l.eng.Tracer(); tr.On(trace.CatFault) {
		tr.Emit(trace.CatFault, uint64(l.eng.Now()), "pcie."+l.name, "reinsert", 0, "")
	}
	l.up.resetDLL()
	l.down.resetDLL()
	l.state = linkDown
	l.notifyAll(NoticeReinserted)
	l.eng.Schedule(l.name+".hotplug-retrain", l.retrainLatency(), l.goUp)
}

// retrainLatency is the LTSSM recovery time for hotplug retrains: the
// plan's RetrainLatency, or a 20 µs default when the plan leaves it
// zero (a hotplug retrain is a full from-scratch negotiation and is
// never instantaneous).
func (l *Link) retrainLatency() sim.Tick {
	if l.plan != nil && l.plan.RetrainLatency > 0 {
		return l.plan.RetrainLatency
	}
	return 20 * sim.Microsecond
}

// Removed reports whether the link's device is currently surprise-
// removed.
func (l *Link) Removed() bool { return l.state == linkDead && l.removed }

// Removals returns how many surprise removals the link has seen.
func (l *Link) Removals() uint64 { return l.removals }

// Reinserts returns how many re-insertions the link has seen.
func (l *Link) Reinserts() uint64 { return l.reinserts }

// resetDLL returns an interface to its power-on DLL state for a
// hotplug retrain: fresh sequence numbers, empty queues, and (on FC
// links) a from-scratch credit handshake once the link comes up.
func (i *Interface) resetDLL() {
	i.sendSeq, i.recvSeq = 1, 1
	i.lastDelivered = 0
	i.replayBuf = i.replayBuf[:0]
	i.freshQ = i.freshQ[:0]
	i.replayQ = i.replayQ[:0]
	i.ackPend, i.nakPend = false, false
	i.busyUntil = 0
	i.consecTimeouts = 0
	i.bufGauge.Set(0)
}

// LinkStats counts per-interface protocol events.
type LinkStats struct {
	TLPsAccepted   uint64 // TLPs taken from the local component
	TLPsTx         uint64 // TLP transmissions, including replays
	ReplaysTx      uint64 // retransmitted TLPs
	Timeouts       uint64 // replay-timer expirations
	AcksTx         uint64
	NaksTx         uint64
	AcksRx         uint64
	NaksRx         uint64
	TLPsDelivered  uint64 // handed to the local component successfully
	DeliveryRefuse uint64 // local component refused; TLP dropped for replay
	Discarded      uint64 // out-of-sequence arrivals dropped
	CRCErrors      uint64 // corrupted TLPs caught by the receiver
	Throttled      uint64 // local sends refused because the replay buffer was full
	BadDLLPs       uint64 // corrupted ACK/NAK DLLPs dropped by the receiver's CRC
	Dropped        uint64 // packets lost on the wire by fault injection
	DownDrops      uint64 // packets lost in flight during a link-down window
	DownRefused    uint64 // local sends refused while the link was transiently down
	DeadDiscards   uint64 // TLPs black-holed after the link was declared dead
	FlushedTLPs    uint64 // unacknowledged TLPs flushed when the link died

	// Flow-control counters; always zero on legacy (infinite-credit)
	// links, where no FC machinery runs.
	InitFCTx        uint64 // InitFC1/InitFC2 DLLPs sent
	InitFCRx        uint64 // InitFC1/InitFC2 DLLPs received
	UpdateFCTx      uint64 // UpdateFC DLLPs sent
	UpdateFCRx      uint64 // UpdateFC DLLPs received
	UpdateFCDropped uint64 // UpdateFC DLLPs lost to targeted fault injection
	FCStallsP       uint64 // posted TLP sends refused for lack of credits
	FCStallsNP      uint64 // non-posted TLP sends refused for lack of credits
	FCStallsCpl     uint64 // completion sends refused for lack of credits
	RxQueued        uint64 // TLPs queued at the receive transaction layer
	RxRefused       uint64 // local-component refusals of queued TLPs (retried)
	RxFlushed       uint64 // queued TLPs discarded when the link died
}

// FCStalls returns the credit-starvation refusals for one class.
func (s LinkStats) FCStalls(cl FCClass) uint64 {
	switch cl {
	case FCPosted:
		return s.FCStallsP
	case FCNonPosted:
		return s.FCStallsNP
	default:
		return s.FCStallsCpl
	}
}

// ReplayRate returns the fraction of TLP transmissions that were
// replays — the paper's "27% of the transmitted packets experience
// replay" metric for Fig 9(b).
func (s LinkStats) ReplayRate() float64 {
	if s.TLPsTx == 0 {
		return 0
	}
	return float64(s.ReplaysTx) / float64(s.TLPsTx)
}

// TimeoutRate returns timeouts as a fraction of TLPs accepted for
// transmission — the Fig 9(c)/(d) metric.
func (s LinkStats) TimeoutRate() float64 {
	if s.TLPsAccepted == 0 {
		return 0
	}
	return float64(s.Timeouts) / float64(s.TLPsAccepted)
}

// Interface is one end of a link: Fig 8's TX logic (replay buffer,
// sending sequence number, replay timer) plus RX logic (receiving
// sequence number, ACK timer).
type Interface struct {
	link *Link
	// eng is the engine this end's events run on: the link's engine on
	// an ordinary link, this side's domain engine on a split link. All
	// of an interface's DLL state is owned by this engine's domain.
	eng  *sim.Engine
	name string
	peer *Interface

	slave  *mem.SlavePort  // local component sends requests here
	master *mem.MasterPort // local component receives requests here

	// --- TX state ---
	sendSeq   uint64 // next sequence number to assign (first TLP gets 1)
	replayBuf []*PciePkt
	freshQ    []*PciePkt
	replayQ   []*PciePkt
	ackPend   bool
	nakPend   bool
	nakSeq    uint64
	busyUntil sim.Tick
	txEv      *sim.Event
	replayTmr *sim.Event

	reqRetryPending  bool
	respRetryPending bool

	// --- RX state ---
	recvSeq       uint64 // next expected sequence number
	lastDelivered uint64 // highest delivered, pending ACK
	ackTmr        *sim.Event
	ackArmed      bool

	// fc is the transaction-layer flow-control state; nil on legacy
	// (infinite-credit) links, where the DLL behaves exactly as before.
	fc *fcState

	rng   *sim.Rand
	inj   *fault.Injector // nil on fault-free links
	aer   *pci.AER        // AER capability of the attached component, if any
	stats LinkStats

	// Pre-built event names and the in-flight snapshot free list: both
	// sit on the per-packet transmit path, where a fmt/concat or a
	// heap-allocated copy per wire crossing dominates the profile.
	deliverName  string
	reqretryName string
	resretryName string
	reqretryFn   func()
	resretryFn   func()
	flightFree   []*PciePkt

	// Registry hooks, resolved at construction: replay-buffer
	// occupancy and accept-to-release (ACK) latency in ticks. The
	// LinkStats counters themselves are exported through CounterFuncs
	// (see registerStats), so the struct stays the storage and the
	// hot path is unchanged.
	bufGauge *stats.Gauge
	ackLat   *stats.Histogram

	// Latency-attribution segment histograms (seg.txq-wait,
	// seg.replay-wait, seg.wire, seg.fc-stall), resolved lazily on
	// first observation: spans are armed after construction, and
	// registering only when armed keeps unarmed stats dumps
	// byte-identical.
	txqSeg, replaySeg, wireSeg, fcStallSeg *stats.Histogram

	// consecTimeouts counts replay-timer expirations since the last
	// ACK/NAK, for the plan's DeadThreshold surprise-down detection.
	consecTimeouts int
}

func newInterface(l *Link, eng *sim.Engine, name string, seed uint64) *Interface {
	i := &Interface{link: l, eng: eng, name: name, sendSeq: 1, recvSeq: 1, rng: sim.NewRand(seed)}
	i.deliverName = name + ".deliver"
	i.reqretryName = name + ".reqretry"
	i.resretryName = name + ".respretry"
	i.slave = mem.NewSlavePort(name+".slave", (*ifaceSlave)(i))
	i.master = mem.NewMasterPort(name+".master", (*ifaceMaster)(i))
	i.reqretryFn = i.slave.SendReqRetry
	i.resretryFn = i.master.SendRespRetry
	i.txEv = eng.NewEvent(name+".tx", i.txFire)
	i.replayTmr = eng.NewEvent(name+".replayTimer", i.replayTimeout)
	i.ackTmr = eng.NewEvent(name+".ackTimer", i.ackTimerFire)
	i.registerStats()
	if l.cfg.Credits.Finite() {
		i.fc = newFCState(i, l.cfg.Credits)
		i.fc.registerStats()
		// Kick off the InitFC handshake as soon as the engine runs.
		i.scheduleTx()
	}
	return i
}

// registerStats publishes every LinkStats counter under
// "pcie.<link>.<dir>.<counter>" (e.g. "pcie.disklink.up.replays") as
// closure-backed registry entries — the struct remains the storage, so
// incrementing a counter costs exactly what it did before — plus a
// replay-buffer occupancy gauge and an accept-to-ACK latency histogram.
func (i *Interface) registerStats() {
	r := i.eng.Stats()
	pfx := "pcie." + i.name + "."
	s := &i.stats
	for _, c := range []struct {
		name string
		f    *uint64
	}{
		{"accepted", &s.TLPsAccepted},
		{"tx", &s.TLPsTx},
		{"replays", &s.ReplaysTx},
		{"timeouts", &s.Timeouts},
		{"acks_tx", &s.AcksTx},
		{"naks_tx", &s.NaksTx},
		{"acks_rx", &s.AcksRx},
		{"naks_rx", &s.NaksRx},
		{"delivered", &s.TLPsDelivered},
		{"delivery_refused", &s.DeliveryRefuse},
		{"discarded", &s.Discarded},
		{"crc_errors", &s.CRCErrors},
		{"throttled", &s.Throttled},
		{"bad_dllps", &s.BadDLLPs},
		{"dropped", &s.Dropped},
		{"down_drops", &s.DownDrops},
		{"down_refused", &s.DownRefused},
		{"dead_discards", &s.DeadDiscards},
		{"flushed", &s.FlushedTLPs},
	} {
		f := c.f
		r.CounterFunc(pfx+c.name, func() uint64 { return *f })
	}
	i.bufGauge = r.Gauge(pfx + "replaybuf")
	i.ackLat = r.Histogram(pfx + "ack_latency")
}

// tracer returns the engine's tracer; nil (a no-op) when tracing is off.
func (i *Interface) tracer() *trace.Tracer { return i.eng.Tracer() }

// spanObserve charges one completed attribution segment ending now:
// the shared seg.<name> histogram, plus a begin/end trace span when
// the tracer records CatSpan. Call only when spans are armed.
func (i *Interface) spanObserve(seg **stats.Histogram, name string, begin sim.Tick, id uint64) {
	i.spanObserveAt(seg, name, begin, i.eng.Now(), id)
}

// spanObserveAt is spanObserve with an explicit end tick, for segments
// whose endpoint is known ahead of local time — the cross-domain wire
// crossing charges its span at transmit time because the sender may
// not run again at the arrival tick.
func (i *Interface) spanObserveAt(seg **stats.Histogram, name string, begin, end sim.Tick, id uint64) {
	if *seg == nil {
		*seg = i.eng.Seg(name)
	}
	(*seg).Observe(uint64(end - begin))
	if tr := i.tracer(); tr.On(trace.CatSpan) {
		tr.Span(uint64(begin), uint64(end), "pcie."+i.name, name, id, "")
	}
}

// SlavePort returns the port the local component's master (request)
// side connects to.
func (i *Interface) SlavePort() *mem.SlavePort { return i.slave }

// MasterPort returns the port the local component's slave (completer)
// side connects to.
func (i *Interface) MasterPort() *mem.MasterPort { return i.master }

// Stats returns a copy of the interface counters.
func (i *Interface) Stats() LinkStats { return i.stats }

// Name returns the interface's diagnostic name.
func (i *Interface) Name() string { return i.name }

// SetAER attaches the AER capability of the component wired to this
// interface; link-layer errors detected here are latched into it.
func (i *Interface) SetAER(a *pci.AER) { i.aer = a }

// --- transaction-layer admission -----------------------------------

// admit accepts a TLP from the local component if the replay buffer has
// space: "the interfaces transmit TLPs as long as their replay buffer
// has space. Once the replay buffer is filled up due to not receiving
// ACKs, the packet transmission is throttled" (§V-C).
func (i *Interface) admit(tlp *mem.Packet) bool {
	switch i.link.state {
	case linkDead:
		// Black-hole: accept and discard, so upstream queues keep
		// draining and requesters fail by completion timeout instead
		// of wedging behind a full send queue.
		i.stats.DeadDiscards++
		if tr := i.tracer(); tr.On(trace.CatFault) {
			tr.Emit(trace.CatFault, uint64(i.eng.Now()), "pcie."+i.name,
				"dead-discard", tlp.ID, "")
		}
		return true
	case linkDown:
		i.stats.DownRefused++
		return false
	}
	// Transaction-layer gate: with finite credits, a TLP is admitted
	// only when the peer has granted enough header+data credits for
	// its class. Credits are charged exactly once, here — DLL replays
	// retransmit against the same charge.
	var fcClass FCClass
	var fcData uint64
	if i.fc != nil {
		fcClass = FCClassOf(tlp)
		fcData = fcDataCredits(tlpPayloadBytes(tlp))
		if !i.fc.txReady(fcClass, fcData) {
			i.fc.noteStall(fcClass, tlp)
			return false
		}
	}
	if len(i.replayBuf) >= i.link.cfg.ReplayBufferSize {
		i.stats.Throttled++
		if tr := i.tracer(); tr.On(trace.CatTLP) {
			tr.Emit(trace.CatTLP, uint64(i.eng.Now()), "pcie."+i.name,
				"throttle", tlp.ID, "replay buffer full")
		}
		return false
	}
	if i.fc != nil {
		i.fc.consume(fcClass, fcData)
	}
	pp := &PciePkt{Kind: KindTLP, Seq: i.sendSeq, TLP: tlp,
		acceptedAt: i.eng.Now(), queuedAt: i.eng.Now()}
	// Snapshot the wire size now: by the time a replay reads it, the
	// wrapped packet may have been turned into its response and recycled.
	pp.wire = i.link.cfg.Overheads.TLPWireBytes(pp.PayloadBytes())
	i.sendSeq++
	i.replayBuf = append(i.replayBuf, pp)
	i.freshQ = append(i.freshQ, pp)
	i.stats.TLPsAccepted++
	i.bufGauge.Set(int64(len(i.replayBuf)))
	if tr := i.tracer(); tr.On(trace.CatTLP) {
		tr.Emit(trace.CatTLP, uint64(i.eng.Now()), "pcie."+i.name,
			"accept", tlp.ID, fmt.Sprintf("seq=%d %v", pp.Seq, tlp.Cmd))
	}
	i.scheduleTx()
	return true
}

// ifaceSlave adapts the interface to mem.SlaveOwner (local requests in,
// local responses out).
type ifaceSlave Interface

func (o *ifaceSlave) i() *Interface { return (*Interface)(o) }

func (o *ifaceSlave) RecvTimingReq(_ *mem.SlavePort, pkt *mem.Packet) bool {
	i := o.i()
	if !i.admit(pkt) {
		i.reqRetryPending = true
		return false
	}
	return true
}

// RecvRespRetry: the local component refused an inbound response
// earlier and now has space. On an FC link the refused completion is
// queued at the transaction layer, so drain it now; on a legacy link
// the TLP was dropped for replay and the replay timer redelivers.
func (o *ifaceSlave) RecvRespRetry(*mem.SlavePort) {
	if fc := o.i().fc; fc != nil {
		fc.drain()
	}
}

// AddrRanges: a link is transparent; routing is done by the components.
func (o *ifaceSlave) AddrRanges(*mem.SlavePort) mem.RangeList { return nil }

// ifaceMaster adapts the interface to mem.MasterOwner (local responses
// in, local requests out).
type ifaceMaster Interface

func (o *ifaceMaster) i() *Interface { return (*Interface)(o) }

func (o *ifaceMaster) RecvTimingResp(_ *mem.MasterPort, pkt *mem.Packet) bool {
	i := o.i()
	if !i.admit(pkt) {
		i.respRetryPending = true
		return false
	}
	return true
}

// RecvReqRetry: inbound request delivery was refused earlier. On an FC
// link the refused request waits in the transaction-layer queue; on a
// legacy link replay will redeliver, so nothing to do.
func (o *ifaceMaster) RecvReqRetry(*mem.MasterPort) {
	if fc := o.i().fc; fc != nil {
		fc.drain()
	}
}

// --- TX engine ------------------------------------------------------

func (i *Interface) scheduleTx() {
	if i.link.state != linkUp {
		return
	}
	if i.txEv.Scheduled() {
		return
	}
	if !i.ackPend && !i.nakPend && len(i.replayQ) == 0 && len(i.freshQ) == 0 &&
		(i.fc == nil || !i.fc.dllpPending()) {
		return
	}
	when := i.eng.Now()
	if i.busyUntil > when {
		when = i.busyUntil
	}
	i.eng.ScheduleEvent(i.txEv, when, sim.PriorityDefault)
}

// txFire transmits the highest-priority pending packet: "(1) ACK DLLP;
// (2) Retransmitted pcie-pkts; (3) pcie-pkts containing TLPs received
// from a connected port" (§V-C).
func (i *Interface) txFire() {
	eng := i.eng
	if i.busyUntil > eng.Now() {
		i.scheduleTx()
		return
	}
	switch {
	case i.fc != nil && i.fc.initPending():
		// The InitFC handshake outranks everything: no TLP may be
		// admitted until both sides have exchanged credit pools.
		pp := i.fc.nextInitDLLP()
		i.stats.InitFCTx++
		if tr := i.tracer(); tr.On(trace.CatDLLP) {
			tr.Emit(trace.CatDLLP, uint64(eng.Now()), "pcie."+i.name,
				"dllp-tx", pp.FCHdr, fmt.Sprintf("%v %v", pp.Kind, pp.FCCl))
		}
		pp.Corrupted = i.inj.CorruptDLLP(eng.Now())
		i.transmit(pp)
	case i.ackPend || i.nakPend:
		var pp PciePkt
		if i.nakPend {
			pp = PciePkt{Kind: KindNak, Seq: i.nakSeq}
			i.nakPend = false
			i.stats.NaksTx++
		} else {
			pp = PciePkt{Kind: KindAck, Seq: i.lastDelivered}
			i.ackPend = false
			i.stats.AcksTx++
		}
		if tr := i.tracer(); tr.On(trace.CatDLLP) {
			tr.Emit(trace.CatDLLP, uint64(eng.Now()), "pcie."+i.name,
				"dllp-tx", 0, fmt.Sprintf("%v seq=%d", pp.Kind, pp.Seq))
		}
		// DLLPs carry their own CRC and are subject to corruption just
		// like TLPs; a corrupted ACK/NAK is dropped by the receiver and
		// recovered by the ACK/replay timers, never replayed itself.
		pp.Corrupted = i.inj.CorruptDLLP(eng.Now())
		i.transmit(&pp)
	case i.fc != nil && i.fc.updPending():
		// Credit returns outrank TLPs so a congested wire cannot
		// starve the peer of the very credits that would unclog it.
		pp := i.fc.nextUpdDLLP()
		i.stats.UpdateFCTx++
		if tr := i.tracer(); tr.On(trace.CatDLLP) {
			tr.Emit(trace.CatDLLP, uint64(eng.Now()), "pcie."+i.name,
				"dllp-tx", pp.FCHdr, fmt.Sprintf("%v %v", pp.Kind, pp.FCCl))
		}
		if i.inj.DropUpdateFC(eng.Now()) {
			// Targeted fault: the DLLP occupies the wire but never
			// arrives. The bounded refresh timer re-advertises the
			// same cumulative counts, so the credits are not lost for
			// good.
			i.stats.UpdateFCDropped++
			i.busyUntil = eng.Now() + WireTime(i.link.cfg.Gen, i.link.cfg.Width, pp.WireBytes(i.link.cfg.Overheads))
			i.fc.noteUpdDropped()
			if tr := i.tracer(); tr.On(trace.CatFault) {
				tr.Emit(trace.CatFault, uint64(eng.Now()), "pcie."+i.name,
					"updatefc-drop", pp.FCHdr, pp.FCCl.String())
			}
		} else {
			pp.Corrupted = i.inj.CorruptDLLP(eng.Now())
			i.transmit(pp)
		}
	case len(i.replayQ) > 0:
		pp := i.replayQ[0]
		i.replayQ = i.replayQ[1:]
		if pp.acked {
			// Released by an ACK while queued; skip without occupying
			// the wire.
			i.scheduleTx()
			return
		}
		i.stats.TLPsTx++
		i.stats.ReplaysTx++
		if tr := i.tracer(); tr.On(trace.CatTLP) {
			tr.Emit(trace.CatTLP, uint64(eng.Now()), "pcie."+i.name,
				"replay", pp.TLP.ID, fmt.Sprintf("seq=%d", pp.Seq))
		}
		if eng.SpansOn() {
			i.spanObserve(&i.replaySeg, "replay-wait", pp.queuedAt, pp.TLP.ID)
		}
		i.transmitTLP(pp)
	case len(i.freshQ) > 0:
		pp := i.freshQ[0]
		i.freshQ = i.freshQ[1:]
		if pp.acked {
			i.scheduleTx()
			return
		}
		i.stats.TLPsTx++
		if tr := i.tracer(); tr.On(trace.CatTLP) {
			tr.Emit(trace.CatTLP, uint64(eng.Now()), "pcie."+i.name,
				"tx", pp.TLP.ID, fmt.Sprintf("seq=%d", pp.Seq))
		}
		if eng.SpansOn() {
			i.spanObserve(&i.txqSeg, "txq-wait", pp.queuedAt, pp.TLP.ID)
		}
		i.transmitTLP(pp)
	}
	i.scheduleTx()
}

func (i *Interface) transmitTLP(pp *PciePkt) {
	pp.Corrupted = i.inj.CorruptTLP(i.eng.Now())
	i.transmit(pp)
	// "The replay timer is started for every packet transmitted on the
	// unidirectional link" — started, not restarted: while unacked TLPs
	// are outstanding the timer keeps running from its last reset (an
	// ACK or a previous timeout). This is load-bearing for the Fig 9
	// congestion behaviour: under refusals, every recovery round costs
	// a full timeout for at most one replay buffer's worth of TLPs.
	if !i.replayTmr.Scheduled() {
		i.eng.ScheduleEventAfter(i.replayTmr, i.link.ReplayTimeout(), sim.PriorityTimer)
	}
}

// transmit serializes pp onto the unidirectional link toward the peer.
func (i *Interface) transmit(pp *PciePkt) {
	eng := i.eng
	cfg := i.link.cfg
	txTime := WireTime(cfg.Gen, cfg.Width, pp.WireBytes(cfg.Overheads))
	i.busyUntil = eng.Now() + txTime
	if i.inj.Drop(eng.Now()) {
		// The packet occupied the wire but never arrives; the replay
		// timer (TLPs) or ACK timer (DLLPs) recovers.
		i.stats.Dropped++
		if tr := i.tracer(); tr.On(trace.CatFault) {
			var id uint64
			if pp.TLP != nil {
				id = pp.TLP.ID
			}
			tr.Emit(trace.CatFault, uint64(eng.Now()), "pcie."+i.name,
				"wire-drop", id, fmt.Sprintf("%v seq=%d", pp.Kind, pp.Seq))
		}
		return
	}
	arrive := i.busyUntil + cfg.PropDelay
	// Deliver a snapshot: the original may be re-corrupted by a later
	// retransmission while this copy is still in flight. Snapshots are
	// recycled through a per-interface free list once received — the
	// receiver never retains them (it keeps only the wrapped TLP).
	// txStart is captured for the wire attribution segment
	// (serialization + propagation); the capture rides the closure that
	// exists anyway, so unarmed runs pay nothing extra.
	cp := i.getFlight()
	*cp = *pp
	txStart := eng.Now()
	if peer := i.peer; peer.eng != eng {
		// Split link: the two ends run in different timing domains, so
		// delivery is ferried through the coordinator's inbox and fires
		// at receiver-local time. The wire span is charged now, on the
		// sender's engine, with the known (txStart, arrive) endpoints —
		// same value the serial path records at delivery. The snapshot
		// buffer migrates: popped from the sender's free list here,
		// recycled onto the receiver's at delivery, so each list is only
		// ever touched by its own domain.
		if eng.SpansOn() && cp.Kind == KindTLP && cp.TLP != nil {
			i.spanObserveAt(&i.wireSeg, "wire", txStart, arrive, cp.TLP.ID)
		}
		eng.CrossSchedule(peer.eng, i.deliverName, arrive, sim.PriorityDelivery, i.link.ord, func() {
			peer.receive(cp)
			peer.putFlight(cp)
		})
		return
	}
	eng.ScheduleAtOrd(i.deliverName, arrive, sim.PriorityDelivery, i.link.ord, func() {
		if eng.SpansOn() && cp.Kind == KindTLP && cp.TLP != nil {
			i.spanObserve(&i.wireSeg, "wire", txStart, cp.TLP.ID)
		}
		i.peer.receive(cp)
		i.putFlight(cp)
	})
}

// getFlight pops an in-flight snapshot buffer, or allocates one.
func (i *Interface) getFlight() *PciePkt {
	if n := len(i.flightFree); n > 0 {
		pp := i.flightFree[n-1]
		i.flightFree[n-1] = nil
		i.flightFree = i.flightFree[:n-1]
		return pp
	}
	return &PciePkt{}
}

// putFlight recycles a received snapshot buffer.
func (i *Interface) putFlight(pp *PciePkt) {
	*pp = PciePkt{}
	i.flightFree = append(i.flightFree, pp)
}

// pause freezes the interface for a link-down window: every DLL timer
// stops, and nothing is transmitted until resume.
func (i *Interface) pause() {
	eng := i.eng
	eng.Deschedule(i.txEv)
	eng.Deschedule(i.replayTmr)
	eng.Deschedule(i.ackTmr)
	i.ackArmed = false
	if i.fc != nil {
		i.fc.pause()
	}
}

// resume restarts the interface after retraining: every unacknowledged
// TLP is replayed, the cumulative ACK (possibly lost in the window) is
// resent, and throttled local senders are woken.
func (i *Interface) resume() {
	i.busyUntil = 0
	i.consecTimeouts = 0
	if len(i.replayBuf) > 0 {
		i.startReplay()
		if !i.replayTmr.Scheduled() {
			i.eng.ScheduleEventAfter(i.replayTmr, i.link.ReplayTimeout(), sim.PriorityTimer)
		}
	}
	if i.lastDelivered > 0 {
		i.ackPend = true
	}
	if i.fc != nil {
		i.fc.resume()
	}
	i.scheduleTx()
	i.notifyLocalRetry()
}

// --- RX logic --------------------------------------------------------

func (i *Interface) receive(pp *PciePkt) {
	if i.link.state != linkUp {
		// In flight when the link dropped: lost.
		i.stats.DownDrops++
		return
	}
	switch pp.Kind {
	case KindAck, KindNak:
		if pp.Corrupted {
			// DLLP CRC failure: drop silently. The sender's ACK timer
			// (for ACKs) or replay timer (for NAKs) regenerates it.
			i.stats.BadDLLPs++
			i.aer.ReportCorrectable(pci.AERCorrBadDLLP)
			i.link.noteLinkError()
			if tr := i.tracer(); tr.On(trace.CatFault) {
				tr.Emit(trace.CatFault, uint64(i.eng.Now()), "pcie."+i.name,
					"bad-dllp", 0, fmt.Sprintf("%v seq=%d", pp.Kind, pp.Seq))
			}
			return
		}
		i.consecTimeouts = 0
		if tr := i.tracer(); tr.On(trace.CatDLLP) {
			tr.Emit(trace.CatDLLP, uint64(i.eng.Now()), "pcie."+i.name,
				"dllp-rx", 0, fmt.Sprintf("%v seq=%d", pp.Kind, pp.Seq))
		}
		if pp.Kind == KindAck {
			i.stats.AcksRx++
			i.processAck(pp.Seq)
		} else {
			i.stats.NaksRx++
			i.processNak(pp.Seq)
		}
	case KindInitFC1, KindInitFC2, KindUpdateFC:
		if i.fc == nil {
			return // not in FC mode; cannot happen between matched ends
		}
		if pp.Corrupted {
			i.stats.BadDLLPs++
			i.aer.ReportCorrectable(pci.AERCorrBadDLLP)
			i.link.noteLinkError()
			if tr := i.tracer(); tr.On(trace.CatFault) {
				tr.Emit(trace.CatFault, uint64(i.eng.Now()), "pcie."+i.name,
					"bad-dllp", 0, fmt.Sprintf("%v %v", pp.Kind, pp.FCCl))
			}
			return
		}
		i.consecTimeouts = 0
		i.fc.recvFC(pp)
	case KindTLP:
		i.receiveTLP(pp)
	}
}

func (i *Interface) receiveTLP(pp *PciePkt) {
	if pp.Corrupted {
		// CRC check failed: discard and NAK the last good sequence.
		i.stats.CRCErrors++
		i.aer.ReportCorrectable(pci.AERCorrReceiverError | pci.AERCorrBadTLP)
		i.link.noteLinkError()
		if tr := i.tracer(); tr.On(trace.CatFault) {
			tr.Emit(trace.CatFault, uint64(i.eng.Now()), "pcie."+i.name,
				"crc-error", pp.TLP.ID, fmt.Sprintf("seq=%d nak=%d", pp.Seq, i.recvSeq-1))
		}
		i.nakPend = true
		i.nakSeq = i.recvSeq - 1
		i.scheduleTx()
		return
	}
	if pp.Seq != i.recvSeq {
		// Stale duplicate (from a replay racing an ACK) or a gap after
		// a refused delivery: discard, the sender's timer sorts it out.
		i.stats.Discarded++
		if i.link.planActive && pp.Seq < i.recvSeq && !i.ackArmed {
			// Under fault injection a stale duplicate can also mean our
			// cumulative ACK was corrupted or dropped; re-ACK so the
			// sender can release its replay buffer.
			i.ackArmed = true
			i.eng.ScheduleEventAfter(i.ackTmr, i.link.AckPeriod(), sim.PriorityTimer)
		}
		return
	}
	if i.fc != nil {
		// Credit-based flow control: the sender could only transmit
		// because this side had advertised room, so the DLL always
		// accepts an in-sequence TLP — seq advances, the cumulative
		// ACK covers it — and the transaction layer queues it until
		// the local component takes it (releasing its credits).
		// Refusal/retry survives only at that mem-port boundary.
		i.lastDelivered = pp.Seq
		i.recvSeq++
		if !i.ackArmed {
			i.ackArmed = true
			i.eng.ScheduleEventAfter(i.ackTmr, i.link.AckPeriod(), sim.PriorityTimer)
		}
		i.fc.rxAccept(pp.TLP)
		return
	}
	if !i.deliver(pp.TLP) {
		// "If the connected master or slave ports refuse to accept the
		// TLP, the receiving interface does not increment the receiving
		// sequence number and the sender retransmits the packets in its
		// replay buffer after a timeout."
		i.stats.DeliveryRefuse++
		if tr := i.tracer(); tr.On(trace.CatTLP) {
			tr.Emit(trace.CatTLP, uint64(i.eng.Now()), "pcie."+i.name,
				"refuse", pp.TLP.ID, fmt.Sprintf("seq=%d", pp.Seq))
		}
		return
	}
	i.stats.TLPsDelivered++
	if tr := i.tracer(); tr.On(trace.CatTLP) {
		tr.Emit(trace.CatTLP, uint64(i.eng.Now()), "pcie."+i.name,
			"deliver", pp.TLP.ID, fmt.Sprintf("seq=%d", pp.Seq))
	}
	i.lastDelivered = pp.Seq
	i.recvSeq++
	if !i.ackArmed {
		i.ackArmed = true
		i.eng.ScheduleEventAfter(i.ackTmr, i.link.AckPeriod(), sim.PriorityTimer)
	}
}

// deliver hands an inbound TLP to the local component through the port
// matching its direction.
func (i *Interface) deliver(tlp *mem.Packet) bool {
	if tlp.Cmd.IsRequest() {
		return i.master.SendTimingReq(tlp)
	}
	return i.slave.SendTimingResp(tlp)
}

// ackTimerFire sends one cumulative ACK for everything delivered since
// the last one: "to reduce the link traffic, the receiver sends back a
// single ACK/NAK to the sender for several processed TLPs" (§V-C).
func (i *Interface) ackTimerFire() {
	i.ackArmed = false
	i.ackPend = true
	i.scheduleTx()
}

// processAck releases replay-buffer entries: "it removes all the TLPs
// with a sequence number smaller or equal to the ACK sequence number
// from the replay buffer. The replay timer is restarted if any TLP
// remains" (§V-C).
func (i *Interface) processAck(seq uint64) {
	released := i.releaseUpTo(seq)
	i.eng.Deschedule(i.replayTmr)
	if len(i.replayBuf) > 0 {
		i.eng.ScheduleEventAfter(i.replayTmr, i.link.ReplayTimeout(), sim.PriorityTimer)
	}
	if released {
		i.notifyLocalRetry()
	}
}

// processNak releases acknowledged TLPs and immediately replays the
// rest in sequence order.
func (i *Interface) processNak(seq uint64) {
	released := i.releaseUpTo(seq)
	i.startReplay()
	if released {
		i.notifyLocalRetry()
	}
}

func (i *Interface) releaseUpTo(seq uint64) bool {
	released := false
	now := i.eng.Now()
	keep := i.replayBuf[:0]
	for _, pp := range i.replayBuf {
		if pp.Seq <= seq {
			pp.acked = true
			released = true
			i.ackLat.Observe(uint64(now - pp.acceptedAt))
		} else {
			keep = append(keep, pp)
		}
	}
	i.replayBuf = keep
	i.bufGauge.Set(int64(len(i.replayBuf)))
	return released
}

// notifyLocalRetry wakes local senders that were throttled by a full
// replay buffer.
func (i *Interface) notifyLocalRetry() {
	eng := i.eng
	if i.reqRetryPending {
		i.reqRetryPending = false
		eng.ScheduleAt(i.reqretryName, eng.Now(), sim.PriorityRetry, i.reqretryFn)
	}
	if i.respRetryPending {
		i.respRetryPending = false
		eng.ScheduleAt(i.resretryName, eng.Now(), sim.PriorityRetry, i.resretryFn)
	}
}

// replayTimeout retransmits the entire replay buffer in order, then
// restarts the timer (§V-C). Each expiration is a correctable error in
// AER terms; enough of them in a row with no ACK/NAK at all means the
// partner is gone and the link is declared surprise-down.
func (i *Interface) replayTimeout() {
	if len(i.replayBuf) == 0 {
		return
	}
	i.stats.Timeouts++
	i.aer.ReportCorrectable(pci.AERCorrReplayTimeout)
	if tr := i.tracer(); tr.On(trace.CatFault) {
		tr.Emit(trace.CatFault, uint64(i.eng.Now()), "pcie."+i.name,
			"replay-timeout", 0, fmt.Sprintf("unacked=%d", len(i.replayBuf)))
	}
	i.link.noteLinkError()
	if i.link.state != linkUp {
		// The timeout tipped the degradation window: the link is
		// retraining and resume will restart the replay machinery.
		return
	}
	if th := i.link.deadThreshold(); th > 0 {
		i.consecTimeouts++
		if i.consecTimeouts >= th {
			i.link.markDead()
			return
		}
	}
	i.startReplay()
	i.eng.ScheduleEventAfter(i.replayTmr, i.link.ReplayTimeout(), sim.PriorityTimer)
}

func (i *Interface) startReplay() {
	i.replayQ = append(i.replayQ[:0], i.replayBuf...)
	now := i.eng.Now()
	for _, pp := range i.replayQ {
		pp.replayed = true
		pp.queuedAt = now
	}
	i.scheduleTx()
}

package sim

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Profiler is the engine's self-profiling mode: per event name it
// counts firings and same-tick re-schedules and accumulates host
// wall-clock, answering "which component's events dominate the run"
// — the measurement layer any event-queue optimization is judged
// against.
//
// Event counts and same-tick counts are pure functions of the
// simulation and therefore byte-stable across runs and -jobs values;
// wall-clock depends on the host and is reported separately, clearly
// marked non-reproducible.
//
// Profiling costs one map lookup plus a time.Now pair per event, so it
// is opt-in (Engine.Profile); an unarmed engine pays a single nil
// check per event.
type Profiler struct {
	entries map[string]*profEntry
}

type profEntry struct {
	count    uint64
	sameTick uint64
	wall     time.Duration
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{entries: make(map[string]*profEntry)}
}

// Profile arms the engine's self-profiler, creating it on first call,
// and returns it. Arm before running workloads; the profile
// accumulates across Run calls.
func (e *Engine) Profile() *Profiler {
	if e.prof == nil {
		e.prof = NewProfiler()
	}
	return e.prof
}

// Prof returns the armed profiler, nil when profiling is off.
func (e *Engine) Prof() *Profiler { return e.prof }

// fireProfiled fires ev under the profiler. The name is captured
// before the callback: a one-shot that reschedules itself keeps its
// name, but recycle clears it, and the callback may deschedule.
func (e *Engine) fireProfiled(ev *Event) {
	name := ev.name
	t0 := time.Now()
	ev.fn()
	e.prof.record(name, time.Since(t0))
}

func (p *Profiler) entry(name string) *profEntry {
	e, ok := p.entries[name]
	if !ok {
		e = &profEntry{}
		p.entries[name] = e
	}
	return e
}

// record accounts one fired event.
func (p *Profiler) record(name string, wall time.Duration) {
	e := p.entry(name)
	e.count++
	e.wall += wall
}

// noteSameTick accounts an event scheduled for the current tick while
// the run loop is executing — the zero-delay self-wakeups a calendar
// queue would want to special-case.
func (p *Profiler) noteSameTick(name string) {
	p.entry(name).sameTick++
}

// Merge folds other profilers into p: counts, same-tick counts and
// wall-clock accumulate per event name. The parallel engine profiles
// each timing domain separately and merges for reporting; the merged
// counts equal what the serial run records, since both execute the
// same events.
func (p *Profiler) Merge(others ...*Profiler) {
	for _, o := range others {
		if o == nil || o == p {
			continue
		}
		for name, oe := range o.entries {
			e := p.entry(name)
			e.count += oe.count
			e.sameTick += oe.sameTick
			e.wall += oe.wall
		}
	}
}

// Events returns the number of distinct event names profiled.
func (p *Profiler) Events() int { return len(p.entries) }

// Count returns the fired count recorded under name.
func (p *Profiler) Count(name string) uint64 {
	if e, ok := p.entries[name]; ok {
		return e.count
	}
	return 0
}

// profRow is one line of the report, sortable.
type profRow struct {
	name     string
	count    uint64
	sameTick uint64
	wall     time.Duration
}

// rows returns all entries sorted by count descending, ties broken by
// name — a deterministic order whatever map iteration did.
func (p *Profiler) rows() []profRow {
	rows := make([]profRow, 0, len(p.entries))
	for n, e := range p.entries {
		rows = append(rows, profRow{n, e.count, e.sameTick, e.wall})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].name < rows[j].name
	})
	return rows
}

// comp maps an event name to its component: the prefix before the last
// dot ("pcie.disklink.up.deliver" -> "pcie.disklink.up"), or the whole
// name when it has no dot.
func comp(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}

// WriteTable renders the profile: a top-N table per event name
// followed by a per-component rollup. Counts and same-tick columns
// are deterministic; the wall-clock columns depend on the host and are
// emitted only when wall is true (the deterministic form is what
// golden/determinism tests compare). topN <= 0 prints every row.
func (p *Profiler) WriteTable(w io.Writer, topN int, wall bool) error {
	rows := p.rows()
	var total, totalSame uint64
	var totalWall time.Duration
	for _, r := range rows {
		total += r.count
		totalSame += r.sameTick
		totalWall += r.wall
	}
	shown := rows
	if topN > 0 && len(shown) > topN {
		shown = shown[:topN]
	}

	if _, err := fmt.Fprintf(w, "engine profile — %d events fired, %d same-tick re-schedules, %d event names\n",
		total, totalSame, len(rows)); err != nil {
		return err
	}
	if wall {
		if _, err := fmt.Fprintf(w, "(wall-clock columns are host-dependent and NOT reproducible; counts are)\n"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%-44s %12s %10s %10s %8s\n",
			"event", "count", "same-tick", "wall(ms)", "ns/ev"); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "%-44s %12s %10s\n", "event", "count", "same-tick"); err != nil {
			return err
		}
	}
	for _, r := range shown {
		if wall {
			nsPer := 0.0
			if r.count > 0 {
				nsPer = float64(r.wall.Nanoseconds()) / float64(r.count)
			}
			if _, err := fmt.Fprintf(w, "%-44s %12d %10d %10.2f %8.0f\n",
				r.name, r.count, r.sameTick, float64(r.wall.Nanoseconds())/1e6, nsPer); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "%-44s %12d %10d\n", r.name, r.count, r.sameTick); err != nil {
				return err
			}
		}
	}
	if len(shown) < len(rows) {
		if _, err := fmt.Fprintf(w, "... %d more event names\n", len(rows)-len(shown)); err != nil {
			return err
		}
	}

	// Component rollup: aggregate by the name prefix before the last dot.
	byComp := make(map[string]*profEntry)
	for _, r := range rows {
		c := comp(r.name)
		e, ok := byComp[c]
		if !ok {
			e = &profEntry{}
			byComp[c] = e
		}
		e.count += r.count
		e.sameTick += r.sameTick
		e.wall += r.wall
	}
	crows := make([]profRow, 0, len(byComp))
	for n, e := range byComp {
		crows = append(crows, profRow{n, e.count, e.sameTick, e.wall})
	}
	sort.Slice(crows, func(i, j int) bool {
		if crows[i].count != crows[j].count {
			return crows[i].count > crows[j].count
		}
		return crows[i].name < crows[j].name
	})
	if _, err := fmt.Fprintf(w, "by component:\n"); err != nil {
		return err
	}
	for _, r := range crows {
		if wall {
			pct := 0.0
			if totalWall > 0 {
				pct = 100 * float64(r.wall) / float64(totalWall)
			}
			if _, err := fmt.Fprintf(w, "%-44s %12d %10d %9.1f%%\n", r.name, r.count, r.sameTick, pct); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "%-44s %12d %10d\n", r.name, r.count, r.sameTick); err != nil {
				return err
			}
		}
	}
	return nil
}

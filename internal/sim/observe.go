package sim

import (
	"pciesim/internal/stats"
	"pciesim/internal/trace"
)

// Observability hooks. Every component already holds the *Engine, so
// attaching the stats registry and tracer here gives the whole
// simulator one well-known place to reach them without threading new
// constructor parameters through every package.

// Stats returns the engine's metrics registry, creating it lazily.
// Components resolve their counters/histograms once at construction
// and keep the pointers; registry lookups never appear on hot paths.
//
// The engine registers its own internals — events fired, queue depth,
// one-shot recycles — as closure-backed counters, so the kernel that
// drives every component shows up in dumps and sampler series right
// alongside them.
func (e *Engine) Stats() *stats.Registry {
	if e.stats == nil {
		e.stats = stats.NewRegistry()
		e.stats.CounterFunc("sim.fired", func() uint64 { return e.fired })
		e.stats.CounterFunc("sim.pending", func() uint64 {
			n := uint64(e.queue.len())
			if e.dom != nil {
				// Events ferried across a domain boundary but not yet
				// drained into the heap are still pending: counting
				// them keeps the merged parallel total identical to
				// the serial queue depth.
				e.dom.mu.Lock()
				n += uint64(len(e.dom.inbox))
				e.dom.mu.Unlock()
			}
			return n
		})
		e.stats.CounterFunc("sim.recycled", func() uint64 { return e.recycled })
	}
	return e.stats
}

// SetTracer installs the event tracer (nil disables tracing).
func (e *Engine) SetTracer(t *trace.Tracer) { e.tracer = t }

// ArmSpans turns on causal span attribution: instrumented components
// start observing per-segment latency into seg.* histograms (and, if
// the tracer records trace.CatSpan, emitting begin/end span events).
// Arming is one-way and meant to happen before workloads run; the
// seg.* histograms are registered only on first observation, so an
// unarmed run's stats dump stays byte-identical to pre-span builds.
func (e *Engine) ArmSpans() { e.spansOn = true }

// SpansOn reports whether span attribution is armed. Instrumented
// components guard their segment accounting with it, so the unarmed
// hot path pays one bool test and zero allocations.
func (e *Engine) SpansOn() bool { return e.spansOn }

// Seg returns the latency-attribution histogram for the named segment
// ("fc-stall", "wire", ...), registered as "seg.<name>" on first use.
// Call only when SpansOn; cache the pointer where emission is hot.
func (e *Engine) Seg(name string) *stats.Histogram {
	return e.Stats().Histogram("seg." + name)
}

// Tracer returns the installed tracer. It may be nil; *trace.Tracer's
// methods are nil-safe, so callers guard emission with Tracer().On(cat).
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// NextPacketID returns a fresh nonzero packet ID. IDs are monotonic
// per engine — no global state — so two simulations in one process
// stay deterministic and independent.
func (e *Engine) NextPacketID() uint64 {
	e.lastPacketID++
	return e.lastPacketID
}

// SampleEvery arranges for the registry's sampler to snapshot every
// counter and gauge each time simulated time crosses a multiple of
// interval. The sampler is driven inline from the run loops rather
// than by a self-rescheduling event, so an armed sampler never keeps
// the event queue artificially non-empty (Run() must still drain).
// interval 0 disables sampling.
func (e *Engine) SampleEvery(interval Tick) {
	e.sampleEvery = interval
	if interval == 0 {
		return
	}
	e.Stats().NewSampler(uint64(interval))
	e.nextSample = e.now + interval
}

// sampleUpTo takes all samples due at or before the current time.
// Samples are stamped with their grid tick, not e.now, so the series
// is identical whether events happen to land on the boundary or not.
func (e *Engine) sampleUpTo() {
	for e.nextSample <= e.now {
		e.stats.Sample(uint64(e.nextSample))
		e.nextSample += e.sampleEvery
	}
}

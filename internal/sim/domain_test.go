package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// ringModel runs the same lockstep ring workload either on one serial
// engine or across nDom timing domains, and returns each node's
// event log plus the total events fired. Every node keeps a local
// self-rescheduling timer and periodically sends a message to the next
// node with a fixed latency; because all nodes advance in lockstep,
// the sends collide on the full (when, prio, sched) key at their
// receivers — exactly the tie the static ord key must resolve
// identically on the serial heap and in the coordinator's inbox drain.
func ringModel(t *testing.T, nodes int, nDom int, horizon Tick) (logs [][]string, fired uint64) {
	t.Helper()
	const (
		localStep = 7
		sendStep  = 35
		latency   = 150 // >= quantum, so CrossSchedule always satisfies the lookahead
		quantum   = 100
	)

	engines := make([]*Engine, nDom)
	for i := range engines {
		engines[i] = NewEngine()
	}
	if nDom > 1 {
		NewCoordinator(quantum, engines...)
	}
	engOf := func(node int) *Engine { return engines[node*nDom/nodes] }

	logs = make([][]string, nodes)
	var local func(node int)
	local = func(node int) {
		e := engOf(node)
		logs[node] = append(logs[node], fmt.Sprintf("local@%d", e.Now()))
		if e.Now()+localStep <= horizon {
			e.Schedule("local", localStep, func() { local(node) })
		}
	}
	var send func(node int)
	recv := func(node, from int) {
		logs[node] = append(logs[node], fmt.Sprintf("recv%d@%d", from, engOf(node).Now()))
	}
	send = func(node int) {
		e := engOf(node)
		next := (node + 1) % nodes
		when := e.Now() + latency
		if when <= horizon {
			// The sender's 1-based index is its static ord, used by both
			// paths so simultaneous arrivals order identically.
			if ne := engOf(next); ne != e {
				e.CrossSchedule(ne, "msg", when, PriorityDefault, uint64(node)+1, func() { recv(next, node) })
			} else {
				e.ScheduleAtOrd("msg", when, PriorityDefault, uint64(node)+1, func() { recv(next, node) })
			}
		}
		if e.Now()+sendStep <= horizon {
			e.Schedule("send", sendStep, func() { send(node) })
		}
	}
	for i := 0; i < nodes; i++ {
		i := i
		engOf(i).ScheduleAt("start", 0, PriorityDefault, func() { local(i); send(i) })
	}
	fired = engines[0].RunUntil(horizon)
	return logs, fired
}

// TestCoordinatorMatchesSerial is the engine-level determinism check:
// the ring workload's per-node logs and total fired count must be
// identical whether it runs on one engine or split 2 or 4 ways.
func TestCoordinatorMatchesSerial(t *testing.T) {
	const nodes, horizon = 8, 5000
	wantLogs, wantFired := ringModel(t, nodes, 1, horizon)
	for _, nDom := range []int{2, 4} {
		gotLogs, gotFired := ringModel(t, nodes, nDom, horizon)
		if gotFired != wantFired {
			t.Errorf("domains=%d: fired %d events, serial fired %d", nDom, gotFired, wantFired)
		}
		if !reflect.DeepEqual(gotLogs, wantLogs) {
			for i := range wantLogs {
				if !reflect.DeepEqual(gotLogs[i], wantLogs[i]) {
					t.Errorf("domains=%d: node %d log diverges:\n got %v\nwant %v", nDom, i, gotLogs[i], wantLogs[i])
					break
				}
			}
		}
	}
}

// TestCoordinatorFiredAccounting: the run's return value must equal the
// sum of the per-domain Fired counters.
func TestCoordinatorFiredAccounting(t *testing.T) {
	_, _ = ringModel(t, 4, 1, 2000) // warm the helper's serial path
	engines := []*Engine{NewEngine(), NewEngine()}
	NewCoordinator(100, engines...)
	engines[0].Schedule("a", 10, func() {})
	engines[1].ScheduleAt("b", 20, PriorityDefault, func() {})
	engines[1].ScheduleAt("c", 400, PriorityDefault, func() {})
	total := engines[0].RunUntil(MaxTick)
	if total != 3 {
		t.Fatalf("RunUntil returned %d, want 3", total)
	}
	if sum := engines[0].Fired() + engines[1].Fired(); sum != total {
		t.Fatalf("per-domain fired sum %d != returned total %d", sum, total)
	}
}

// TestCoordinatorRunWhile: the condition is evaluated on the root
// domain, and worker events ordered after the stopping event must stay
// queued — RunWhile never runs the world past the stop point.
func TestCoordinatorRunWhile(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	NewCoordinator(100, engines...)
	done := false
	engines[0].ScheduleAt("stopper", 500, PriorityDefault, func() { done = true })
	var lateFired bool
	engines[1].ScheduleAt("early", 400, PriorityDefault, func() {})
	engines[1].ScheduleAt("late", 30000, PriorityDefault, func() { lateFired = true })
	fired := engines[0].RunWhile(func() bool { return !done })
	if !done {
		t.Fatal("condition never flipped")
	}
	if lateFired {
		t.Error("worker event past the stop point fired")
	}
	if engines[1].Pending() != 1 {
		t.Errorf("worker should still hold the late event, pending=%d", engines[1].Pending())
	}
	if fired != 2 {
		t.Errorf("fired %d events, want 2 (early + stopper)", fired)
	}
}

// TestCoordinatorLookaheadViolationPanics: scheduling a cross-domain
// event inside the current window is a partitioning bug, not a runtime
// condition.
func TestCoordinatorLookaheadViolationPanics(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	NewCoordinator(100, engines...)
	engines[0].Schedule("bad", 10, func() {
		defer func() {
			if recover() == nil {
				t.Error("CrossSchedule inside the window did not panic")
			}
		}()
		engines[0].CrossSchedule(engines[1], "too-soon", engines[0].Now()+1, PriorityDefault, 0, func() {})
	})
	engines[0].RunUntil(MaxTick)
}

// TestCoordinatorNonRootRunPanics: only the coordinator may drive a
// non-root domain.
func TestCoordinatorNonRootRunPanics(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	NewCoordinator(100, engines...)
	defer func() {
		if recover() == nil {
			t.Error("RunUntil on a non-root domain did not panic")
		}
	}()
	engines[1].RunUntil(MaxTick)
}

// TestCoordinatorRejectsBadSetup covers the constructor's contract.
func TestCoordinatorRejectsBadSetup(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("zero quantum", func() { NewCoordinator(0, NewEngine(), NewEngine()) })
	expectPanic("single domain", func() { NewCoordinator(1, NewEngine()) })
	expectPanic("double bind", func() {
		e1, e2 := NewEngine(), NewEngine()
		NewCoordinator(1, e1, e2)
		NewCoordinator(1, e1, NewEngine())
	})
	expectPanic("foreign coordinator", func() {
		a1, a2 := NewEngine(), NewEngine()
		b1, b2 := NewEngine(), NewEngine()
		NewCoordinator(1, a1, a2)
		NewCoordinator(1, b1, b2)
		a1.Schedule("x", 5, func() { a1.CrossSchedule(b2, "cross", 500, PriorityDefault, 0, func() {}) })
		a1.RunUntil(MaxTick)
	})
}

// TestOrdBreaksFullTies: two events colliding on (when, prio, sched)
// fire in ord order regardless of insertion order — the serial side of
// the cross-domain tie-resolution contract.
func TestOrdBreaksFullTies(t *testing.T) {
	e := NewEngine()
	var order []int
	e.ScheduleAtOrd("second", 100, PriorityDefault, 9, func() { order = append(order, 9) })
	e.ScheduleAtOrd("first", 100, PriorityDefault, 3, func() { order = append(order, 3) })
	e.ScheduleAt("zeroth", 100, PriorityDefault, func() { order = append(order, 0) }) // ord 0
	e.Run()
	if want := []int{0, 3, 9}; !reflect.DeepEqual(order, want) {
		t.Fatalf("fired in order %v, want %v", order, want)
	}
}

// TestDomainEnginesVisibility: DomainEngines is root-only and nil on
// serial engines.
func TestDomainEnginesVisibility(t *testing.T) {
	if NewEngine().DomainEngines() != nil {
		t.Error("serial engine reports domain engines")
	}
	engines := []*Engine{NewEngine(), NewEngine(), NewEngine()}
	NewCoordinator(50, engines...)
	if got := engines[0].DomainEngines(); len(got) != 3 {
		t.Errorf("root reports %d domains, want 3", len(got))
	}
	if engines[1].DomainEngines() != nil {
		t.Error("non-root domain reports domain engines")
	}
}

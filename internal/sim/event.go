package sim

// Priority orders events that are scheduled for the same tick. Lower
// values run first, matching gem5's convention. The pre-defined bands
// keep unrelated models from racing at tick boundaries: e.g. DLLP ACK
// processing must observe a consistent replay-buffer state before new
// TLP transmissions at the same tick are attempted.
type Priority int

// Priority bands, lowest (earliest) first.
const (
	PriorityTimer    Priority = -20 // expiring protocol timers
	PriorityDelivery Priority = -10 // packet deliveries across links/ports
	PriorityDefault  Priority = 0
	PriorityRetry    Priority = 10 // retry notifications after refusals
	PriorityStats    Priority = 50 // end-of-interval statistics sampling
)

// Event is a scheduled callback. Events are created by Engine.Schedule
// and friends; the zero value is not useful. An Event may be descheduled
// before it fires and rescheduled afterwards, mirroring the gem5 event
// lifecycle that the PCIe replay/ACK timers depend on.
//
// Events created by the fire-and-forget Schedule/ScheduleAt forms are
// recycled through the engine's free list after they fire: their handle
// must not be retained past the callback's execution (descheduling one
// before it fires remains safe). Long-lived, repeatedly rescheduled
// events come from NewEvent and are never recycled.
type Event struct {
	name string
	fn   func()

	when  Tick
	prio  Priority
	sched Tick   // clock value when the event was scheduled
	ord   uint64 // static scheduler-identity key; breaks (when, prio, sched) ties
	seq   uint64 // insertion order; breaks remaining ties deterministically
	idx   int    // heap index, -1 when not queued

	// oneShot marks a Schedule/ScheduleAt event eligible for recycling
	// after it fires; nextFree links the engine's free list.
	oneShot  bool
	nextFree *Event
}

// Name returns the diagnostic name given at creation time.
func (e *Event) Name() string { return e.name }

// Scheduled reports whether the event currently sits in an engine queue.
func (e *Event) Scheduled() bool { return e != nil && e.idx >= 0 }

// When returns the tick the event is scheduled for. It is only
// meaningful while Scheduled() is true.
func (e *Event) When() Tick { return e.when }

// eventHeap is a binary min-heap ordered by (when, prio, sched, ord,
// seq). It is implemented directly rather than via container/heap to
// avoid the interface boxing on this extremely hot path.
//
// Within one engine the clock is monotonic, so sched never contradicts
// seq and the order is exactly the classic (when, prio, ord, seq). The
// sched and ord terms exist for the multi-domain engine. Events ferried
// across a domain boundary keep the sender's scheduling tick, so
// same-tick ties between local and remote events resolve by *when each
// cause happened*, matching the order the serial heap would have
// produced. ord is a static scheduler-identity key (links pass their
// build order, interrupt dispatch the IRQ line; everything else leaves
// it zero): when two different schedulers collide on the full (when,
// prio, sched) triple — lockstep-symmetric endpoints do this — the
// serial seq tiebreak encodes unbounded scheduling history that a
// barrier-synchronized drain cannot reconstruct, so both the serial
// heap and the parallel drain resolve those ties by ord instead and the
// orders coincide by construction. Equal-ord ties come from the same
// scheduler (or from plain un-keyed events), where insertion order is
// causally reproducible and seq suffices.
type eventHeap struct {
	items []*Event
}

func (h *eventHeap) len() int { return len(h.items) }

func (h *eventHeap) less(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	if a.sched != b.sched {
		return a.sched < b.sched
	}
	if a.ord != b.ord {
		return a.ord < b.ord
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e *Event) {
	e.idx = len(h.items)
	h.items = append(h.items, e)
	h.up(e.idx)
}

func (h *eventHeap) pop() *Event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[0].idx = 0
	h.items[last] = nil
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	top.idx = -1
	return top
}

// remove extracts an arbitrary event from the middle of the heap.
func (h *eventHeap) remove(e *Event) {
	i := e.idx
	last := len(h.items) - 1
	if i < 0 || i > last || h.items[i] != e {
		return
	}
	h.items[i] = h.items[last]
	h.items[i].idx = i
	h.items[last] = nil
	h.items = h.items[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	e.idx = -1
}

func (h *eventHeap) up(i int) {
	item := h.items[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(item, h.items[parent]) {
			break
		}
		h.items[i] = h.items[parent]
		h.items[i].idx = i
		i = parent
	}
	h.items[i] = item
	item.idx = i
}

func (h *eventHeap) down(i int) {
	item := h.items[i]
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			child = right
		}
		if !h.less(h.items[child], item) {
			break
		}
		h.items[i] = h.items[child]
		h.items[i].idx = i
		i = child
	}
	h.items[i] = item
	item.idx = i
}

package sim

import (
	"testing"

	"pciesim/internal/trace"
)

func TestNextPacketIDMonotonicPerEngine(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	if a.NextPacketID() != 1 || a.NextPacketID() != 2 {
		t.Fatal("IDs must start at 1 and increase")
	}
	if b.NextPacketID() != 1 {
		t.Fatal("engines must not share ID state")
	}
}

func TestStatsLazyAndStable(t *testing.T) {
	e := NewEngine()
	r := e.Stats()
	if r == nil || e.Stats() != r {
		t.Fatal("Stats must be created once and reused")
	}
}

func TestTracerNilSafe(t *testing.T) {
	e := NewEngine()
	if e.Tracer().On(trace.CatTLP) {
		t.Fatal("default tracer must be off")
	}
	e.SetTracer(trace.New(trace.CatTLP))
	if !e.Tracer().On(trace.CatTLP) {
		t.Fatal("installed tracer not returned")
	}
}

func TestSampleEveryGridAndDrain(t *testing.T) {
	e := NewEngine()
	c := e.Stats().Counter("c")
	e.SampleEvery(10)
	// Events at 5 and 25; samples must land exactly on 10 and 20,
	// capturing the counter state as of crossing each boundary.
	e.Schedule("a", 5, func() { c.Inc() })
	e.Schedule("b", 25, func() { c.Inc() })
	e.RunUntil(30)
	if !e.Drained() {
		t.Fatal("queue must drain — the sampler must not keep events queued")
	}
	s := e.Stats().Sampler()
	if s.Len() != 3 { // ticks 10, 20, 30
		t.Fatalf("samples = %d, want 3", s.Len())
	}
}

func TestRunDrainsWithSamplerArmed(t *testing.T) {
	// Regression guard: Run() (limit = MaxTick) must still return once
	// real events drain even with periodic sampling armed.
	e := NewEngine()
	e.Stats().Counter("c")
	e.SampleEvery(1000)
	e.Schedule("only", 10, func() {})
	e.Run()
	if !e.Drained() {
		t.Fatal("Run did not drain")
	}
}

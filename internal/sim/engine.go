package sim

import (
	"fmt"

	"pciesim/internal/stats"
	"pciesim/internal/trace"
)

// Engine is the simulation kernel: a clock and an event queue. All
// simulated components share one Engine; its queue defines the global
// order of everything that happens.
//
// Engine is not safe for concurrent use. The whole simulator is
// single-threaded by design — determinism is a feature the validation
// experiments rely on.
type Engine struct {
	now     Tick
	queue   eventHeap
	nextSeq uint64
	fired   uint64
	running bool
	stopped bool

	// dom is non-nil when the engine is one timing domain of a
	// Coordinator-driven parallel simulation (see domain.go). It stays
	// nil in the classic serial configuration, whose behavior is
	// byte-for-byte unchanged.
	dom *domainState

	// freeEvents is the free list of recycled one-shot events (see
	// Schedule): the Engine.Schedule hot path is allocation-free in
	// steady state. freeLen/recycled are accounting for tests.
	freeEvents *Event
	recycled   uint64

	// Observability (see observe.go, prof.go). stats is created
	// lazily; tracer may stay nil (trace methods are nil-safe). The
	// sampler fields drive periodic stats snapshots from the run
	// loops. prof is the opt-in self-profiler; spansOn arms causal
	// span attribution (segment histograms + begin/end trace spans).
	stats        *stats.Registry
	tracer       *trace.Tracer
	prof         *Profiler
	spansOn      bool
	lastPacketID uint64
	sampleEvery  Tick
	nextSample   Tick
}

// NewEngine returns an engine at tick zero with an empty queue.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Tick { return e.now }

// Fired returns the number of events executed so far; it is the
// simulator's cost metric (events/second of host time).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.len() }

// NewEvent creates an unscheduled event with a diagnostic name. The
// returned event can be scheduled, descheduled, and rescheduled freely.
func (e *Engine) NewEvent(name string, fn func()) *Event {
	if fn == nil {
		panic("sim: NewEvent with nil callback")
	}
	return &Event{name: name, fn: fn, idx: -1}
}

// ScheduleEvent queues ev at absolute time when with the given priority.
// Scheduling into the past or an already-scheduled event is a programming
// error and panics: silent reordering would corrupt every timing model.
func (e *Engine) ScheduleEvent(ev *Event, when Tick, prio Priority) {
	if ev.Scheduled() {
		panic(fmt.Sprintf("sim: event %q is already scheduled for %s", ev.name, ev.when))
	}
	if when < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled for %s, before now (%s)", ev.name, when, e.now))
	}
	if e.prof != nil && e.running && when == e.now {
		e.prof.noteSameTick(ev.name)
	}
	e.insert(ev, when, prio, e.now, 0)
}

// insert queues ev with an explicit scheduling tick and ordering key.
// ScheduleEvent stamps e.now and ord 0; the coordinator's inbox drain
// preserves the sender domain's clock and the sender's static ord
// instead, so cross-domain events sort against local ones exactly as
// the serial heap would have sorted them.
func (e *Engine) insert(ev *Event, when Tick, prio Priority, sched Tick, ord uint64) {
	ev.when = when
	ev.prio = prio
	ev.sched = sched
	ev.ord = ord
	ev.seq = e.nextSeq
	e.nextSeq++
	e.queue.push(ev)
}

// ScheduleEventAfter queues ev delay ticks from now.
func (e *Engine) ScheduleEventAfter(ev *Event, delay Tick, prio Priority) {
	e.ScheduleEvent(ev, e.now+delay, prio)
}

// Deschedule removes ev from the queue if it is queued. It is safe to
// call on an unscheduled event.
func (e *Engine) Deschedule(ev *Event) {
	if ev.Scheduled() {
		e.queue.remove(ev)
	}
}

// Reschedule moves ev to the new absolute time, whether or not it is
// currently queued.
func (e *Engine) Reschedule(ev *Event, when Tick, prio Priority) {
	e.Deschedule(ev)
	e.ScheduleEvent(ev, when, prio)
}

// Schedule is the fire-and-forget form: it takes a one-shot event from
// the engine's free list (or allocates one) that runs fn at now+delay.
// The returned handle is valid for descheduling only until the event
// fires; after that the event is recycled and the handle must be
// dropped (the kernel's wait-timeout pattern, which nils its handle
// inside the callback, is the intended use).
func (e *Engine) Schedule(name string, delay Tick, fn func()) *Event {
	ev := e.getOneShot(name, fn)
	e.ScheduleEventAfter(ev, delay, PriorityDefault)
	return ev
}

// ScheduleAt is Schedule with an absolute time and explicit priority.
func (e *Engine) ScheduleAt(name string, when Tick, prio Priority, fn func()) *Event {
	ev := e.getOneShot(name, fn)
	e.ScheduleEvent(ev, when, prio)
	return ev
}

// ScheduleAtOrd is ScheduleAt with an explicit scheduler-identity key.
// Schedulers that can collide with a *different* scheduler on the full
// (when, prio, sched) triple — wire deliveries from parallel links,
// interrupt dispatch — pass a static non-zero key (their build order)
// so the tie resolves identically in the serial heap and in the
// parallel coordinator's inbox drain. See the eventHeap comment.
func (e *Engine) ScheduleAtOrd(name string, when Tick, prio Priority, ord uint64, fn func()) *Event {
	ev := e.getOneShot(name, fn)
	if when < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled for %s, before now (%s)", ev.name, when, e.now))
	}
	if e.prof != nil && e.running && when == e.now {
		e.prof.noteSameTick(ev.name)
	}
	e.insert(ev, when, prio, e.now, ord)
	return ev
}

// getOneShot pops a recycled event or allocates a fresh one.
func (e *Engine) getOneShot(name string, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule with nil callback")
	}
	if ev := e.freeEvents; ev != nil {
		e.freeEvents = ev.nextFree
		ev.nextFree = nil
		ev.name = name
		ev.fn = fn
		return ev
	}
	return &Event{name: name, fn: fn, idx: -1, oneShot: true}
}

// recycle returns a fired one-shot event to the free list. Called only
// from the run loops, after the callback returned without rescheduling
// the event.
func (e *Engine) recycle(ev *Event) {
	ev.name = ""
	ev.fn = nil
	ev.nextFree = e.freeEvents
	e.freeEvents = ev
	e.recycled++
}

// Recycled returns how many one-shot events have been returned to the
// free list — the event pool's effectiveness metric.
func (e *Engine) Recycled() uint64 { return e.recycled }

// Stop makes the current Run call return after the executing event
// completes. Queued events are left in place so the run can be resumed.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It
// returns the number of events fired by this call.
func (e *Engine) Run() uint64 { return e.RunUntil(MaxTick) }

// RunUntil executes events with timestamps <= limit, then sets the clock
// to limit if the queue drained early (or to the next event time's floor
// otherwise). It returns the number of events fired by this call.
//
// On the root engine of a parallel simulation the call advances every
// timing domain through the Coordinator; on any other domain it panics
// (only the coordinator may drive a non-root domain).
func (e *Engine) RunUntil(limit Tick) uint64 {
	if e.dom != nil {
		e.dom.requireRoot("RunUntil")
		return e.dom.coord.runUntil(limit)
	}
	if e.running {
		panic("sim: reentrant Run")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	var fired uint64
	for e.queue.len() > 0 && !e.stopped {
		next := e.queue.items[0]
		if next.when > limit {
			e.now = limit
			if e.sampleEvery > 0 {
				e.sampleUpTo()
			}
			return fired
		}
		e.queue.pop()
		e.now = next.when
		if e.sampleEvery > 0 {
			e.sampleUpTo()
		}
		fired++
		e.fired++
		if e.prof != nil {
			e.fireProfiled(next)
		} else {
			next.fn()
		}
		if next.oneShot && next.idx < 0 {
			e.recycle(next)
		}
	}
	if e.queue.len() == 0 && limit != MaxTick && e.now < limit {
		e.now = limit
		if e.sampleEvery > 0 {
			e.sampleUpTo()
		}
	}
	return fired
}

// RunWhile executes events in order for as long as cond returns true,
// stopping when it turns false, the queue drains, or Stop is called.
// cond is evaluated before each event, so it typically tests a
// completion flag flipped inside an event callback. Events scheduled
// past the stopping point stay queued — unlike Run, RunWhile does not
// fast-forward the clock through idle time, which matters when a
// fault-injection window is armed at a future tick. It returns the
// number of events fired by this call.
func (e *Engine) RunWhile(cond func() bool) uint64 {
	if e.dom != nil {
		e.dom.requireRoot("RunWhile")
		return e.dom.coord.runWhile(cond)
	}
	if e.running {
		panic("sim: reentrant Run")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	var fired uint64
	for e.queue.len() > 0 && !e.stopped && cond() {
		next := e.queue.items[0]
		e.queue.pop()
		e.now = next.when
		if e.sampleEvery > 0 {
			e.sampleUpTo()
		}
		fired++
		e.fired++
		if e.prof != nil {
			e.fireProfiled(next)
		} else {
			next.fn()
		}
		if next.oneShot && next.idx < 0 {
			e.recycle(next)
		}
	}
	return fired
}

// Drained reports whether no events remain.
func (e *Engine) Drained() bool { return e.queue.len() == 0 }

package sim

import "testing"

// TestScheduleRecyclesOneShots: a fired one-shot event goes back to the
// engine's free list and the next Schedule reuses it.
func TestScheduleRecyclesOneShots(t *testing.T) {
	eng := NewEngine()
	fired := 0
	fn := func() { fired++ }
	ev1 := eng.Schedule("a", 1, fn)
	eng.Run()
	if eng.Recycled() != 1 {
		t.Fatalf("recycled = %d, want 1", eng.Recycled())
	}
	ev2 := eng.Schedule("b", 1, fn)
	if ev2 != ev1 {
		t.Fatal("Schedule did not reuse the recycled event")
	}
	eng.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// TestPersistentEventsNotRecycled: NewEvent events are owned by their
// component and must never enter the free list, however often they fire.
func TestPersistentEventsNotRecycled(t *testing.T) {
	eng := NewEngine()
	ev := eng.NewEvent("tick", func() {})
	for i := 0; i < 3; i++ {
		eng.ScheduleEventAfter(ev, 1, PriorityDefault)
		eng.Run()
	}
	if eng.Recycled() != 0 {
		t.Fatalf("persistent event was recycled %d times", eng.Recycled())
	}
	if got := eng.Schedule("fresh", 1, func() {}); got == ev {
		t.Fatal("free list handed out a persistent event")
	}
}

// TestDescheduledOneShotNotRecycled: cancelling a one-shot must not put
// it on the free list while the caller may still hold and reschedule it.
func TestDescheduledOneShotNotRecycled(t *testing.T) {
	eng := NewEngine()
	ev := eng.Schedule("cancel-me", 5, func() { t.Fatal("cancelled event fired") })
	eng.Deschedule(ev)
	eng.Run()
	if eng.Recycled() != 0 {
		t.Fatalf("descheduled event was recycled")
	}
	// The holder reschedules it; now it fires and is recycled normally.
	ok := false
	eng.Reschedule(ev, eng.Now()+1, PriorityDefault)
	ev.fn = func() { ok = true }
	eng.Run()
	if !ok || eng.Recycled() != 1 {
		t.Fatalf("rescheduled one-shot: fired=%v recycled=%d", ok, eng.Recycled())
	}
}

// TestScheduleSteadyStateZeroAlloc pins the event free list's goal: in
// steady state, scheduling and firing a one-shot costs no allocation.
func TestScheduleSteadyStateZeroAlloc(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	eng.Schedule("warm", 1, fn)
	eng.Run() // warm the free list and the queue's backing array

	if n := testing.AllocsPerRun(1000, func() {
		eng.Schedule("cycle", 1, fn)
		eng.Run()
	}); n != 0 {
		t.Fatalf("steady-state schedule/fire costs %v allocs/op, want 0", n)
	}
}

func BenchmarkScheduleOneShot(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		eng.Schedule("bench", 1, fn)
		eng.Run()
	}
}

func BenchmarkSchedulePersistent(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine()
	ev := eng.NewEvent("bench", func() {})
	for i := 0; i < b.N; i++ {
		eng.ScheduleEventAfter(ev, 1, PriorityDefault)
		eng.Run()
	}
}

// Package sim provides the discrete-event simulation kernel that every
// timing model in pciesim is built on. It mirrors the gem5 event engine:
// simulated time advances in integer ticks of one picosecond, and all
// behaviour is expressed as events on a single totally-ordered queue.
//
// The kernel is deliberately single-threaded and deterministic: two runs
// of the same configuration schedule the same events in the same order
// and produce bit-identical statistics.
package sim

import (
	"fmt"
	"time"
)

// Tick is a point in (or duration of) simulated time. One tick is one
// picosecond, matching gem5's convention, so a 1 GHz clock has a period
// of 1000 ticks and nanosecond-scale latencies are exact integers.
type Tick uint64

// Common durations expressed in ticks.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000
	Microsecond Tick = 1000 * Nanosecond
	Millisecond Tick = 1000 * Microsecond
	Second      Tick = 1000 * Millisecond

	// MaxTick is the largest representable time. It is used as the
	// "never" sentinel for timers that are not currently armed.
	MaxTick Tick = ^Tick(0)
)

// FromDuration converts a wall-clock style duration into simulated ticks.
func FromDuration(d time.Duration) Tick {
	if d <= 0 {
		return 0
	}
	return Tick(d.Nanoseconds()) * Nanosecond
}

// Duration converts a tick count into a time.Duration. Durations beyond
// ~2.5 simulated hours saturate; simulations in this repository run for
// milliseconds of simulated time, so the limit is theoretical.
func (t Tick) Duration() time.Duration {
	const maxNs = Tick(1<<63-1) / 1000
	ns := t / Nanosecond
	if ns > maxNs {
		ns = maxNs
	}
	return time.Duration(ns) * time.Nanosecond
}

// Nanoseconds reports the tick count as a floating-point nanosecond value.
func (t Tick) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports the tick count as seconds.
func (t Tick) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the tick with an adaptive unit, e.g. "150ns" or "1.25us".
func (t Tick) String() string {
	switch {
	case t == MaxTick:
		return "never"
	case t >= Second:
		return trimUnit(float64(t)/float64(Second), "s")
	case t >= Millisecond:
		return trimUnit(float64(t)/float64(Millisecond), "ms")
	case t >= Microsecond:
		return trimUnit(float64(t)/float64(Microsecond), "us")
	case t >= Nanosecond:
		return trimUnit(float64(t)/float64(Nanosecond), "ns")
	default:
		return fmt.Sprintf("%dps", uint64(t))
	}
}

func trimUnit(v float64, unit string) string {
	s := fmt.Sprintf("%.3f", v)
	// Trim trailing zeros and a dangling decimal point.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + unit
}

// Frequency describes a clock rate in Hz and converts to a period.
type Frequency uint64

// Common frequencies.
const (
	KHz Frequency = 1e3
	MHz Frequency = 1e6
	GHz Frequency = 1e9
)

// Period returns the clock period of the frequency, rounded down to the
// nearest tick. A zero frequency yields a zero period.
func (f Frequency) Period() Tick {
	if f == 0 {
		return 0
	}
	return Tick(uint64(Second) / uint64(f))
}

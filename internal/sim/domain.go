package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Conservative parallel execution (DESIGN.md §15).
//
// A parallel simulation is a set of Engines — timing domains — driven
// in lockstep by a Coordinator. Each domain owns its clock, queue and
// free lists exactly as in the serial configuration; the Coordinator
// advances all domains through barrier-synchronized windows of at most
// one quantum of simulated time. The quantum is the minimum latency of
// any cross-domain interaction (for PCIe fabrics: wire time of the
// smallest DLLP plus the link's PropDelay, and the interrupt delivery
// latency), so an event executed inside a window can never create an
// event that lands inside the same window on another domain — the
// classic conservative-lookahead argument.
//
// Cross-domain scheduling goes through CrossSchedule, which appends to
// the receiving domain's inbox. Inboxes are drained between windows,
// single-threaded, in a canonical order — (when, prio, sched, ord,
// sending domain, per-sender index) — so the receiver assigns heap
// sequence numbers deterministically regardless of how the host
// interleaved the window's goroutines. Ferried events keep the
// sender's scheduling tick (sched) and static scheduler key (ord), and
// the heap orders by (when, prio, sched, ord, seq), so cross-domain
// events sort against local ones exactly as the serial single-queue
// heap sorts them: distinct causes order by cause time, and the
// lockstep-symmetric collisions where even cause time ties resolve by
// the same static ord on both sides of the comparison (see the
// eventHeap comment in event.go for the full argument).
type Coordinator struct {
	quantum Tick
	engines []*Engine

	running bool

	// winEndIncl is the inclusive end of the window in flight. It is
	// written only between windows (all workers parked), so concurrent
	// reads from CrossSchedule's lookahead check race with nothing.
	winEndIncl Tick

	workers []*worker
}

// worker drives one non-root domain for the duration of a run call.
type worker struct {
	cmd  chan workerCmd
	done chan uint64
}

type workerCmd struct {
	endIncl Tick
	cut     *windowCut // non-nil: exact stop point discovered by the root
}

// windowCut is the ordering key of the root event after which a
// RunWhile condition flipped. Worker domains fire only events that the
// serial heap would have ordered before it.
type windowCut struct {
	when  Tick
	prio  Priority
	sched Tick
	ord   uint64
}

// crossMsg is one event ferried across a domain boundary. The ordering
// fields are exactly the receiver-heap key the event will carry —
// (when, prio, sched, ord) — plus (fromDom, fromIdx) so the drain
// assigns sequence numbers deterministically regardless of goroutine
// interleaving. fromIdx preserves each sender domain's own send order,
// which for equal-key messages from the same domain is the serial
// firing order of their causes.
type crossMsg struct {
	name    string
	when    Tick
	prio    Priority
	sched   Tick   // sender's clock at CrossSchedule time
	ord     uint64 // sender's static scheduler key (see CrossSchedule)
	fromDom int
	fromIdx uint64 // per-sender counter; canonical drain tie-break
	fn      func()
}

// domainState is the per-engine half of the parallel machinery.
type domainState struct {
	coord   *Coordinator
	id      int
	sendIdx uint64

	mu      sync.Mutex
	inbox   []crossMsg
	scratch []crossMsg // drained buffer recycled back into inbox
	sorter  msgSorter  // reusable sort.Interface; draining is per-window hot
}

// msgSorter orders drained cross messages by the canonical key —
// (when, prio, sched, ord, fromDom, fromIdx). It is a reusable
// sort.Interface held by the domain so the per-window drain does not
// allocate a closure and swapper the way sort.Slice would.
type msgSorter struct{ s []crossMsg }

func (m *msgSorter) Len() int      { return len(m.s) }
func (m *msgSorter) Swap(a, b int) { m.s[a], m.s[b] = m.s[b], m.s[a] }
func (m *msgSorter) Less(a, b int) bool {
	x, y := &m.s[a], &m.s[b]
	if x.when != y.when {
		return x.when < y.when
	}
	if x.prio != y.prio {
		return x.prio < y.prio
	}
	if x.sched != y.sched {
		return x.sched < y.sched
	}
	if x.ord != y.ord {
		return x.ord < y.ord
	}
	if x.fromDom != y.fromDom {
		return x.fromDom < y.fromDom
	}
	return x.fromIdx < y.fromIdx
}

func (d *domainState) requireRoot(op string) {
	if d.id != 0 {
		panic(fmt.Sprintf("sim: %s on non-root timing domain %d (only the coordinator drives it)", op, d.id))
	}
}

// NewCoordinator binds the engines into one parallel simulation.
// engines[0] is the root domain: it keeps the public Run API, hosts
// the merged observability, and is the only domain outside code may
// drive. quantum is the conservative lookahead in ticks; every
// CrossSchedule must target a time more than one window away, which
// the coordinator enforces at send time.
func NewCoordinator(quantum Tick, engines ...*Engine) *Coordinator {
	if quantum == 0 {
		panic("sim: NewCoordinator with zero quantum")
	}
	if len(engines) < 2 {
		panic("sim: NewCoordinator needs at least two domains")
	}
	c := &Coordinator{quantum: quantum, engines: engines}
	for i, e := range engines {
		if e.dom != nil {
			panic("sim: engine already belongs to a coordinator")
		}
		e.dom = &domainState{coord: c, id: i}
	}
	return c
}

// Quantum returns the conservative lookahead in ticks.
func (c *Coordinator) Quantum() Tick { return c.quantum }

// Engines returns the timing domains, root first.
func (c *Coordinator) Engines() []*Engine { return c.engines }

// CrossSchedule queues fn on the receiving domain to at absolute time
// when. It must be called from e's own domain (inside one of its event
// callbacks) and when must lie beyond the current window — violating
// the lookahead is a programming error in the partitioning, not a
// runtime condition, so it panics. The event is delivered through the
// receiver's inbox at the next barrier with the sender's clock as its
// sched stamp, keeping cross-domain ordering identical to serial.
//
// ord is the sender's static scheduler-identity key and must match the
// key the sender uses for the same event in the serial configuration
// (links: ScheduleAtOrd with the link's build order; interrupt
// dispatch: the IRQ line key) — the heap then resolves full (when,
// prio, sched) collisions between different senders by ord on both the
// serial and parallel paths, which is what keeps lockstep-symmetric
// endpoints byte-identical across engine configurations.
func (e *Engine) CrossSchedule(to *Engine, name string, when Tick, prio Priority, ord uint64, fn func()) {
	d := e.dom
	if d == nil || to.dom == nil || to.dom.coord != d.coord {
		panic(fmt.Sprintf("sim: CrossSchedule %q between engines that do not share a coordinator", name))
	}
	if fn == nil {
		panic("sim: CrossSchedule with nil callback")
	}
	c := d.coord
	if when <= c.winEndIncl {
		panic(fmt.Sprintf("sim: CrossSchedule %q at %s violates the lookahead (window ends %s); the quantum is too large for this link",
			name, when, c.winEndIncl))
	}
	d.sendIdx++
	m := crossMsg{name: name, when: when, prio: prio, sched: e.now,
		ord: ord, fromDom: d.id, fromIdx: d.sendIdx, fn: fn}
	td := to.dom
	td.mu.Lock()
	td.inbox = append(td.inbox, m)
	td.mu.Unlock()
}

// DomainEngines returns every timing domain (root first) when e is the
// root of a parallel simulation, or nil for serial engines and
// non-root domains. Observability callers use it to arm per-domain
// tracers and profilers.
func (e *Engine) DomainEngines() []*Engine {
	if e.dom == nil || e.dom.id != 0 {
		return nil
	}
	return e.dom.coord.engines
}

// TotalFired returns the number of events the whole simulation has
// fired: the sum over all timing domains when e is a parallel root,
// the engine's own count otherwise. Fired stays per-domain — the
// stats registry merges those — but human-facing run summaries want
// the whole-simulation number.
func (e *Engine) TotalFired() uint64 {
	doms := e.DomainEngines()
	if doms == nil {
		return e.Fired()
	}
	var total uint64
	for _, d := range doms {
		total += d.Fired()
	}
	return total
}

// SeedPacketIDs re-bases the engine's packet-ID sequence. The topology
// builder gives each domain a disjoint base so trace packet IDs stay
// unique across domains; IDs appear only in traces, never in stats.
func (e *Engine) SeedPacketIDs(base uint64) { e.lastPacketID = base }

// --- run loops -------------------------------------------------------

// runUntil advances all domains through quantum windows until every
// queue has drained or passed limit. All domains execute each window
// concurrently; the lookahead guarantees no intra-window causality.
func (c *Coordinator) runUntil(limit Tick) uint64 {
	c.begin()
	defer c.end()

	var total uint64
	for {
		c.drainInboxes()
		if c.anyStopped() {
			return total
		}
		t, ok := c.nextEventTime()
		if !ok {
			// Globally drained: settle the clocks the way the serial
			// loop would have left its single clock.
			if limit != MaxTick {
				c.settleClocks(limit)
			} else {
				c.settleClocks(c.maxNow())
			}
			return total
		}
		if t > limit {
			c.settleClocks(limit)
			return total
		}
		endIncl := c.windowEnd(t, limit)
		c.winEndIncl = endIncl
		for _, w := range c.workers {
			w.cmd <- workerCmd{endIncl: endIncl}
		}
		total += c.engines[0].runWindow(endIncl, nil)
		for _, w := range c.workers {
			total += <-w.done
		}
	}
}

// runWhile advances windows for as long as cond (which may only read
// root-domain state) returns true. The root runs each window first:
// when cond flips after a root event, that event's ordering key is the
// exact cutoff handed to the other domains, so the world stops at the
// same point the serial loop would have stopped at.
func (c *Coordinator) runWhile(cond func() bool) uint64 {
	c.begin()
	defer c.end()

	var total uint64
	for {
		c.drainInboxes()
		if c.anyStopped() || !cond() {
			return total
		}
		t, ok := c.nextEventTime()
		if !ok {
			// RunWhile never fast-forwards, but a fully drained
			// parallel run must still leave one coherent clock.
			c.settleClocks(c.maxNow())
			return total
		}
		endIncl := c.windowEnd(t, MaxTick)
		c.winEndIncl = endIncl
		fired, cut, stopWindow := c.engines[0].runWindowWhile(endIncl, cond)
		total += fired
		var cmd workerCmd
		cmd.endIncl = endIncl
		if stopWindow {
			if cut == nil {
				// Defensive: the root stopped without firing anything
				// this window, so nothing elsewhere may fire either.
				cut = &windowCut{when: 0, prio: Priority(math.MinInt32)}
			}
			cmd.cut = cut
		}
		for _, w := range c.workers {
			w.cmd <- cmd
		}
		for _, w := range c.workers {
			total += <-w.done
		}
		if stopWindow {
			return total
		}
	}
}

// windowEnd computes the inclusive window end for a window starting at
// t, clamped to limit, with overflow protection.
func (c *Coordinator) windowEnd(t, limit Tick) Tick {
	endIncl := t + c.quantum - 1
	if endIncl < t { // wrapped
		endIncl = MaxTick
	}
	if endIncl > limit {
		endIncl = limit
	}
	return endIncl
}

// drainInboxes moves ferried events into their receivers' heaps in the
// canonical deterministic order. It runs single-threaded between
// windows; the barrier provides the happens-before edge from every
// sender's appends.
func (c *Coordinator) drainInboxes() {
	for _, e := range c.engines {
		d := e.dom
		d.mu.Lock()
		msgs := d.inbox
		d.inbox = d.scratch[:0]
		d.mu.Unlock()
		if len(msgs) == 0 {
			d.scratch = msgs
			continue
		}
		d.sorter.s = msgs
		sort.Sort(&d.sorter)
		d.sorter.s = nil
		for i := range msgs {
			m := &msgs[i]
			ev := e.getOneShot(m.name, m.fn)
			e.insert(ev, m.when, m.prio, m.sched, m.ord)
			msgs[i] = crossMsg{}
		}
		d.scratch = msgs
	}
}

// nextEventTime returns the earliest queued event time across all
// domains; ok is false when every queue is empty.
func (c *Coordinator) nextEventTime() (t Tick, ok bool) {
	t = MaxTick
	for _, e := range c.engines {
		if e.queue.len() == 0 {
			continue
		}
		ok = true
		if w := e.queue.items[0].when; w < t {
			t = w
		}
	}
	return t, ok
}

func (c *Coordinator) anyStopped() bool {
	for _, e := range c.engines {
		if e.stopped {
			return true
		}
	}
	return false
}

func (c *Coordinator) maxNow() Tick {
	var t Tick
	for _, e := range c.engines {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// settleClocks advances every domain clock that lags t up to t.
func (c *Coordinator) settleClocks(t Tick) {
	for _, e := range c.engines {
		if e.now < t {
			e.now = t
		}
	}
}

// begin installs the per-run worker goroutines, one per non-root
// domain; end retires them. Workers live for one run call (a run
// executes up to millions of windows, so the channel round-trip per
// window is what matters, not the 3 goroutine spawns per run).
func (c *Coordinator) begin() {
	if c.running {
		panic("sim: reentrant Run")
	}
	c.running = true
	for _, e := range c.engines {
		e.stopped = false
	}
	c.workers = make([]*worker, len(c.engines)-1)
	for i := range c.workers {
		w := &worker{cmd: make(chan workerCmd), done: make(chan uint64)}
		c.workers[i] = w
		eng := c.engines[i+1]
		go func() {
			for cmd := range w.cmd {
				w.done <- eng.runWindow(cmd.endIncl, cmd.cut)
			}
		}()
	}
}

func (c *Coordinator) end() {
	for _, w := range c.workers {
		close(w.cmd)
	}
	c.workers = nil
	c.running = false
}

// --- per-domain window execution -------------------------------------

// runWindow executes the domain's events with timestamps inside the
// window, never advancing the clock past the last fired event. cut,
// when non-nil, is the serial-order stopping key: only events strictly
// before it fire (exact-tie events stay queued).
func (e *Engine) runWindow(endIncl Tick, cut *windowCut) uint64 {
	e.running = true
	defer func() { e.running = false }()

	var fired uint64
	for e.queue.len() > 0 && !e.stopped {
		next := e.queue.items[0]
		if next.when > endIncl {
			break
		}
		if cut != nil && !beforeCut(next, cut) {
			break
		}
		e.queue.pop()
		e.now = next.when
		fired++
		e.fired++
		if e.prof != nil {
			e.fireProfiled(next)
		} else {
			next.fn()
		}
		if next.oneShot && next.idx < 0 {
			e.recycle(next)
		}
	}
	return fired
}

// runWindowWhile is the root domain's window under RunWhile: cond is
// checked before every pop, exactly like the serial loop. When cond
// flips (or Stop is called), the returned cut is the ordering key of
// the last event fired, and stopWindow tells the coordinator to cut
// the other domains at it and return.
func (e *Engine) runWindowWhile(endIncl Tick, cond func() bool) (fired uint64, cut *windowCut, stopWindow bool) {
	e.running = true
	defer func() { e.running = false }()

	var last windowCut
	var any bool
	for e.queue.len() > 0 && !e.stopped {
		if !cond() {
			break
		}
		next := e.queue.items[0]
		if next.when > endIncl {
			break
		}
		e.queue.pop()
		e.now = next.when
		fired++
		e.fired++
		last = windowCut{when: next.when, prio: next.prio, sched: next.sched, ord: next.ord}
		any = true
		if e.prof != nil {
			e.fireProfiled(next)
		} else {
			next.fn()
		}
		if next.oneShot && next.idx < 0 {
			e.recycle(next)
		}
	}
	if e.stopped || !cond() {
		stopWindow = true
		if any {
			// Copy before taking the address: &last directly would make
			// last escape and cost one allocation on every window, not
			// just the stopping one.
			stop := last
			cut = &stop
		}
	}
	return fired, cut, stopWindow
}

// beforeCut reports whether ev would have fired before the cut event
// in the serial order. Exact (when, prio, sched, ord) ties report
// false — the event stays queued, the residual ambiguity the package
// comment documents.
func beforeCut(ev *Event, cut *windowCut) bool {
	if ev.when != cut.when {
		return ev.when < cut.when
	}
	if ev.prio != cut.prio {
		return ev.prio < cut.prio
	}
	if ev.sched != cut.sched {
		return ev.sched < cut.sched
	}
	return ev.ord < cut.ord
}

package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTickString(t *testing.T) {
	cases := []struct {
		in   Tick
		want string
	}{
		{0, "0ps"},
		{500, "500ps"},
		{Nanosecond, "1ns"},
		{150 * Nanosecond, "150ns"},
		{1250 * Nanosecond, "1.25us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
		{MaxTick, "never"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Tick(%d).String() = %q, want %q", uint64(c.in), got, c.want)
		}
	}
}

func TestTickConversions(t *testing.T) {
	if got := FromDuration(150 * time.Nanosecond); got != 150*Nanosecond {
		t.Errorf("FromDuration(150ns) = %v, want 150ns", got)
	}
	if got := FromDuration(-time.Second); got != 0 {
		t.Errorf("FromDuration(negative) = %v, want 0", got)
	}
	if got := (2 * Microsecond).Duration(); got != 2*time.Microsecond {
		t.Errorf("Duration() = %v, want 2us", got)
	}
	if got := (1500 * Nanosecond).Nanoseconds(); got != 1500 {
		t.Errorf("Nanoseconds() = %v, want 1500", got)
	}
	if got := (500 * Millisecond).Seconds(); got != 0.5 {
		t.Errorf("Seconds() = %v, want 0.5", got)
	}
}

func TestFrequencyPeriod(t *testing.T) {
	if got := (1 * GHz).Period(); got != 1000 {
		t.Errorf("1GHz period = %d ticks, want 1000", uint64(got))
	}
	if got := (2 * GHz).Period(); got != 500 {
		t.Errorf("2GHz period = %d ticks, want 500", uint64(got))
	}
	if got := (33 * MHz).Period(); got != Tick(uint64(Second)/33e6) {
		t.Errorf("33MHz period = %d", uint64(got))
	}
	if got := Frequency(0).Period(); got != 0 {
		t.Errorf("0Hz period = %d, want 0", uint64(got))
	}
}

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Tick
	for _, d := range []Tick{500, 100, 300, 100, 200} {
		d := d
		e.Schedule("ev", d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Tick{100, 100, 200, 300, 500}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
	if e.Now() != 500 {
		t.Errorf("final time %v, want 500", e.Now())
	}
}

func TestEnginePriorityBreaksTies(t *testing.T) {
	e := NewEngine()
	var order []string
	e.ScheduleAt("default", 100, PriorityDefault, func() { order = append(order, "default") })
	e.ScheduleAt("retry", 100, PriorityRetry, func() { order = append(order, "retry") })
	e.ScheduleAt("timer", 100, PriorityTimer, func() { order = append(order, "timer") })
	e.ScheduleAt("delivery", 100, PriorityDelivery, func() { order = append(order, "delivery") })
	e.Run()
	want := []string{"timer", "delivery", "default", "retry"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineInsertionOrderBreaksFullTies(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.ScheduleAt("tie", 42, PriorityDefault, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v, want ascending insertion order", order)
		}
	}
}

func TestEngineDeschedule(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.NewEvent("x", func() { fired = true })
	e.ScheduleEventAfter(ev, 100, PriorityDefault)
	if !ev.Scheduled() {
		t.Fatal("event should be scheduled")
	}
	e.Deschedule(ev)
	if ev.Scheduled() {
		t.Fatal("event should be descheduled")
	}
	e.Run()
	if fired {
		t.Fatal("descheduled event fired")
	}
	// Rescheduling after deschedule works.
	e.ScheduleEventAfter(ev, 50, PriorityDefault)
	e.Run()
	if !fired {
		t.Fatal("rescheduled event did not fire")
	}
}

func TestEngineReschedule(t *testing.T) {
	e := NewEngine()
	var at Tick
	ev := e.NewEvent("x", func() { at = e.Now() })
	e.ScheduleEventAfter(ev, 100, PriorityDefault)
	e.Reschedule(ev, 250, PriorityDefault)
	e.Run()
	if at != 250 {
		t.Errorf("event fired at %v, want 250", at)
	}
	// Reschedule on an unscheduled event simply schedules it.
	e.Reschedule(ev, 400, PriorityDefault)
	e.Run()
	if at != 400 {
		t.Errorf("event fired at %v, want 400", at)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Tick
	for _, d := range []Tick{100, 200, 300} {
		e.Schedule("ev", d, func() { fired = append(fired, e.Now()) })
	}
	n := e.RunUntil(200)
	if n != 2 {
		t.Errorf("RunUntil(200) fired %d, want 2", n)
	}
	if e.Now() != 200 {
		t.Errorf("now = %v, want 200", e.Now())
	}
	n = e.RunUntil(1000)
	if n != 1 {
		t.Errorf("second RunUntil fired %d, want 1", n)
	}
	if e.Now() != 1000 {
		t.Errorf("now = %v, want clock advanced to limit 1000", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule("ev", Tick(i+1), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("fired %d events before stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Errorf("%d events pending after stop, want 7", e.Pending())
	}
	// The run can be resumed.
	e.Run()
	if count != 10 {
		t.Errorf("fired %d total, want 10", count)
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var seq []Tick
	e.Schedule("outer", 100, func() {
		seq = append(seq, e.Now())
		e.Schedule("inner", 50, func() { seq = append(seq, e.Now()) })
	})
	e.Schedule("later", 200, func() { seq = append(seq, e.Now()) })
	e.Run()
	want := []Tick{100, 150, 200}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq = %v, want %v", seq, want)
		}
	}
}

func TestEngineSameTickScheduleRunsThisTick(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule("outer", 100, func() {
		e.Schedule("inner", 0, func() { ran = true })
	})
	e.RunUntil(100)
	if !ran {
		t.Fatal("zero-delay event scheduled during tick 100 did not run within RunUntil(100)")
	}
}

func TestEnginePanicsOnPastSchedule(t *testing.T) {
	e := NewEngine()
	e.Schedule("adv", 100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	ev := e.NewEvent("past", func() {})
	e.ScheduleEvent(ev, 50, PriorityDefault)
}

func TestEnginePanicsOnDoubleSchedule(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent("x", func() {})
	e.ScheduleEventAfter(ev, 10, PriorityDefault)
	defer func() {
		if recover() == nil {
			t.Fatal("double schedule did not panic")
		}
	}()
	e.ScheduleEventAfter(ev, 20, PriorityDefault)
}

func TestEngineFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule("ev", Tick(i+1), func() {})
	}
	e.Run()
	if e.Fired() != 5 {
		t.Errorf("Fired() = %d, want 5", e.Fired())
	}
	if !e.Drained() {
		t.Error("Drained() = false after full run")
	}
}

// TestHeapRandomOrder is the property test for the event queue: for any
// random multiset of (time, priority) pairs, pops come out sorted by
// (time, priority, insertion sequence).
func TestHeapRandomOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := 200
		type firing struct {
			when Tick
			prio Priority
			seq  int
		}
		var fired []firing
		for i := 0; i < n; i++ {
			i := i
			when := Tick(rng.Intn(50))
			prio := Priority(rng.Intn(5) - 2)
			var ev *Event
			ev = e.NewEvent("p", func() { fired = append(fired, firing{ev.when, ev.prio, i}) })
			e.ScheduleEvent(ev, when, prio)
		}
		e.Run()
		if len(fired) != n {
			return false
		}
		ok := sort.SliceIsSorted(fired, func(a, b int) bool {
			x, y := fired[a], fired[b]
			if x.when != y.when {
				return x.when < y.when
			}
			if x.prio != y.prio {
				return x.prio < y.prio
			}
			return x.seq < y.seq
		})
		// SliceIsSorted with a strict less also accepts equal adjacent
		// entries, but (when,prio,seq) triples are unique by seq.
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapRandomRemoval property-tests mid-heap removal: removing a
// random subset must leave exactly the complement, still in order.
func TestHeapRandomRemoval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := 100
		events := make([]*Event, n)
		firedSet := make(map[int]bool)
		for i := 0; i < n; i++ {
			i := i
			events[i] = e.NewEvent("r", func() { firedSet[i] = true })
			e.ScheduleEvent(events[i], Tick(rng.Intn(30)), PriorityDefault)
		}
		removed := make(map[int]bool)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				e.Deschedule(events[i])
				removed[i] = true
			}
		}
		e.Run()
		for i := 0; i < n; i++ {
			if removed[i] == firedSet[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of range", f)
		}
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1.1) {
		t.Error("Bool(>1) returned false")
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule("bench", Tick(i%1000), func() {})
		if e.Pending() > 1024 {
			e.RunUntil(e.Now() + 100)
		}
	}
	e.Run()
}

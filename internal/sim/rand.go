package sim

// Rand is a small, deterministic pseudo-random source (SplitMix64). The
// simulator uses it for fault injection (e.g. forcing link CRC errors in
// tests) instead of math/rand so that a run is reproducible from its
// seed alone, independent of the Go runtime version.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

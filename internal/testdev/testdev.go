// Package testdev provides small traffic endpoints used by tests across
// the repository: a Requester that injects requests from a master port
// and records per-packet completion times, and a Responder that answers
// everything after a fixed latency. They exist so interconnect tests do
// not have to re-implement the retry protocol correctly every time.
package testdev

import (
	"fmt"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
)

// Completion records one finished transaction.
type Completion struct {
	Pkt    *mem.Packet
	Issued sim.Tick
	Done   sim.Tick
}

// Latency returns the request-to-response round-trip time.
func (c Completion) Latency() sim.Tick { return c.Done - c.Issued }

// Requester is a master device that issues a scripted sequence of
// requests, respecting backpressure, with a configurable window of
// outstanding transactions.
type Requester struct {
	eng   *sim.Engine
	name  string
	port  *mem.MasterPort
	alloc mem.Allocator

	// Window bounds outstanding requests; 0 means unbounded.
	Window int
	// RefuseResponses makes the requester refuse the next N responses,
	// for backpressure tests. Refused responses are accepted on retry.
	RefuseResponses int

	pending     []*mem.Packet // queued, not yet issued
	issuedAt    map[uint64]sim.Tick
	outstanding int
	blocked     bool // last send refused, waiting for RecvReqRetry

	Completions []Completion
	// OnComplete, if set, runs after every completion.
	OnComplete func(Completion)

	issueEv *sim.Event
	refused int
}

// NewRequester creates a requester.
func NewRequester(eng *sim.Engine, name string) *Requester {
	r := &Requester{eng: eng, name: name, issuedAt: make(map[uint64]sim.Tick)}
	r.alloc.Bind(eng)
	r.port = mem.NewMasterPort(name+".port", r)
	r.issueEv = eng.NewEvent(name+".issue", r.tryIssue)
	return r
}

// Port returns the master port to connect into the interconnect.
func (r *Requester) Port() *mem.MasterPort { return r.port }

// Read queues a read request of size bytes at addr.
func (r *Requester) Read(addr uint64, size int) *mem.Packet {
	return r.enqueue(r.alloc.NewRequest(mem.ReadReq, addr, size))
}

// Write queues a write request of size bytes at addr.
func (r *Requester) Write(addr uint64, size int) *mem.Packet {
	return r.enqueue(r.alloc.NewRequest(mem.WriteReq, addr, size))
}

// WriteData queues a write carrying an explicit payload.
func (r *Requester) WriteData(addr uint64, data []byte) *mem.Packet {
	pkt := r.alloc.NewRequest(mem.WriteReq, addr, len(data))
	pkt.Data = data
	return r.enqueue(pkt)
}

// ReadData queues a read that captures returned data into buf.
func (r *Requester) ReadData(addr uint64, buf []byte) *mem.Packet {
	pkt := r.alloc.NewRequest(mem.ReadReq, addr, len(buf))
	pkt.Data = buf
	return r.enqueue(pkt)
}

func (r *Requester) enqueue(pkt *mem.Packet) *mem.Packet {
	r.pending = append(r.pending, pkt)
	r.schedule()
	return pkt
}

// Outstanding returns the number of in-flight requests.
func (r *Requester) Outstanding() int { return r.outstanding }

// Done reports whether everything queued has completed.
func (r *Requester) Done() bool {
	return len(r.pending) == 0 && r.outstanding == 0
}

func (r *Requester) schedule() {
	if r.blocked || r.issueEv.Scheduled() || len(r.pending) == 0 {
		return
	}
	if r.Window > 0 && r.outstanding >= r.Window {
		return
	}
	r.eng.ScheduleEventAfter(r.issueEv, 0, sim.PriorityDefault)
}

func (r *Requester) tryIssue() {
	for len(r.pending) > 0 && !r.blocked {
		if r.Window > 0 && r.outstanding >= r.Window {
			return
		}
		pkt := r.pending[0]
		r.issuedAt[pkt.ID] = r.eng.Now()
		if !r.port.SendTimingReq(pkt) {
			delete(r.issuedAt, pkt.ID)
			r.blocked = true
			return
		}
		r.pending = r.pending[1:]
		r.outstanding++
	}
}

// RecvTimingResp implements mem.MasterOwner.
func (r *Requester) RecvTimingResp(_ *mem.MasterPort, pkt *mem.Packet) bool {
	if r.RefuseResponses > r.refused {
		r.refused++
		r.eng.ScheduleAt(r.name+".respretry", r.eng.Now()+1, sim.PriorityRetry, r.port.SendRespRetry)
		return false
	}
	issued, ok := r.issuedAt[pkt.ID]
	if !ok {
		panic(fmt.Sprintf("testdev %s: response for unknown packet %v", r.name, pkt))
	}
	delete(r.issuedAt, pkt.ID)
	r.outstanding--
	c := Completion{Pkt: pkt, Issued: issued, Done: r.eng.Now()}
	r.Completions = append(r.Completions, c)
	if r.OnComplete != nil {
		r.OnComplete(c)
	}
	r.schedule()
	return true
}

// RecvReqRetry implements mem.MasterOwner.
func (r *Requester) RecvReqRetry(*mem.MasterPort) {
	r.blocked = false
	r.tryIssue()
}

// Responder is a slave device that completes every request after a
// fixed latency, with a bounded response queue.
type Responder struct {
	eng  *sim.Engine
	port *mem.SlavePort

	Latency sim.Tick
	// RefuseRequests makes the responder refuse the next N requests,
	// then accept on retry — for testing the retry protocol.
	RefuseRequests int

	ranges     mem.RangeList
	respQ      *mem.SendQueue
	needsRetry bool
	refused    int

	Received []*mem.Packet
}

// NewResponder creates a responder claiming the given ranges. depth
// bounds the response queue (0 = unbounded).
func NewResponder(eng *sim.Engine, name string, ranges mem.RangeList, latency sim.Tick, depth int) *Responder {
	d := &Responder{eng: eng, Latency: latency, ranges: ranges}
	d.port = mem.NewSlavePort(name+".port", d)
	d.respQ = mem.NewSendQueue(eng, name+".respq", depth, func(p *mem.Packet) bool {
		return d.port.SendTimingResp(p)
	})
	d.respQ.OnFree(func() {
		if d.needsRetry {
			d.needsRetry = false
			d.port.SendReqRetry()
		}
	})
	return d
}

// Port returns the slave port.
func (d *Responder) Port() *mem.SlavePort { return d.port }

// RecvTimingReq implements mem.SlaveOwner.
func (d *Responder) RecvTimingReq(_ *mem.SlavePort, pkt *mem.Packet) bool {
	if d.RefuseRequests > d.refused {
		d.refused++
		d.eng.ScheduleAt("responder.reqretry", d.eng.Now()+1, sim.PriorityRetry, d.port.SendReqRetry)
		return false
	}
	if d.respQ.Full() {
		d.needsRetry = true
		return false
	}
	d.Received = append(d.Received, pkt)
	d.respQ.Push(pkt.MakeResponse(), d.eng.Now()+d.Latency)
	return true
}

// RecvRespRetry implements mem.SlaveOwner.
func (d *Responder) RecvRespRetry(*mem.SlavePort) { d.respQ.RetryReceived() }

// AddrRanges implements mem.RangeProvider.
func (d *Responder) AddrRanges(*mem.SlavePort) mem.RangeList { return d.ranges }

// Package campaign fans independent simulation runs across a worker
// pool. Each run owns its engine: the simulator itself stays strictly
// single-threaded (determinism is a feature the validation experiments
// rely on), so the only parallelism that makes sense is run-level —
// sweeps, Monte-Carlo fault campaigns, figure regeneration.
//
// The contract that keeps parallel output byte-identical to serial:
// results are delivered to the caller in submission order, regardless
// of which worker finishes first. A run function must therefore be
// self-contained — build its own System, share no mutable state with
// other runs — and anything order-sensitive (printing, stats dumps)
// belongs in the collect callback, which is never called concurrently.
package campaign

import (
	"runtime"
	"sync"
)

// DefaultJobs returns the worker count used when jobs <= 0: the
// process's GOMAXPROCS.
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// Run executes n independent jobs on min(jobs, n) workers and returns
// the results indexed by job, exactly as a serial loop would have
// produced them. jobs <= 0 uses DefaultJobs(); jobs == 1 runs inline
// with no goroutines at all.
//
// Every job runs to completion even when another job fails; the
// returned error is the failing job with the lowest index, so the
// outcome does not depend on worker scheduling.
func Run[T any](jobs, n int, run func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := RunCollect(jobs, n, run, func(i int, v T) error {
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunCollect is the streaming form of Run: each result is handed to
// collect in submission order, as soon as it and all its predecessors
// are available. collect is called on the caller's goroutine, never
// concurrently, and never for a job at or after the first failed index
// — it is the place for order-sensitive side effects (printing a
// sweep's rows as they land, writing stats dumps). A non-nil error
// from collect stops further collection and is returned after the
// remaining in-flight jobs drain.
//
// run is called concurrently from worker goroutines when jobs > 1 and
// must not share mutable state across jobs.
func RunCollect[T any](jobs, n int, run func(i int) (T, error), collect func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	if jobs <= 0 {
		jobs = DefaultJobs()
	}
	if jobs > n {
		jobs = n
	}
	if jobs == 1 {
		for i := 0; i < n; i++ {
			v, err := run(i)
			if err != nil {
				return err
			}
			if collect != nil {
				if err := collect(i, v); err != nil {
					return err
				}
			}
		}
		return nil
	}

	type result struct {
		i   int
		v   T
		err error
	}
	idxCh := make(chan int)
	resCh := make(chan result, jobs)

	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for i := range idxCh {
				v, err := run(i)
				resCh <- result{i: i, v: v, err: err}
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			idxCh <- i
		}
		close(idxCh)
	}()
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// Collector: buffer out-of-order arrivals, deliver in index order.
	pending := make(map[int]result)
	next := 0
	var runErr, collectErr error
	runErrIdx := n
	for r := range resCh {
		if r.err != nil {
			// Keep the lowest-index failure so the outcome is
			// deterministic; later results still drain.
			if r.i < runErrIdx {
				runErrIdx = r.i
				runErr = r.err
			}
			continue
		}
		pending[r.i] = r
		for collectErr == nil {
			d, ok := pending[next]
			if !ok || next > runErrIdx {
				break
			}
			delete(pending, next)
			next++
			if collect != nil {
				collectErr = collect(d.i, d.v)
			}
		}
	}
	// Collection never advances past a failed run index, so when both
	// errors exist the collect error happened at the lower index — it
	// is what a serial loop would have returned.
	if collectErr != nil {
		return collectErr
	}
	return runErr
}

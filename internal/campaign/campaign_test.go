package campaign

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunOrder: results come back indexed by job regardless of worker
// count or completion order (later jobs finish first on purpose).
func TestRunOrder(t *testing.T) {
	for _, jobs := range []int{0, 1, 2, 7, 64} {
		out, err := Run(jobs, 20, func(i int) (int, error) {
			time.Sleep(time.Duration(20-i) * time.Millisecond / 10)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(out) != 20 {
			t.Fatalf("jobs=%d: got %d results", jobs, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

// TestRunErrorLowestIndex: with several failing jobs the reported error
// is the one with the lowest index, independent of scheduling.
func TestRunErrorLowestIndex(t *testing.T) {
	for _, jobs := range []int{1, 4, 16} {
		var ran atomic.Int32
		_, err := Run(jobs, 16, func(i int) (int, error) {
			ran.Add(1)
			if i == 3 || i == 11 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("jobs=%d: expected error", jobs)
		}
		if jobs == 1 {
			// Serial mode stops at the first failure, like the loop it
			// replaces.
			if err.Error() != "job 3 failed" {
				t.Fatalf("jobs=%d: err = %v", jobs, err)
			}
			if ran.Load() != 4 {
				t.Fatalf("jobs=%d: ran %d jobs, want 4", jobs, ran.Load())
			}
			continue
		}
		if err.Error() != "job 3 failed" {
			t.Fatalf("jobs=%d: err = %v, want lowest-index failure", jobs, err)
		}
		if ran.Load() != 16 {
			t.Fatalf("jobs=%d: ran %d jobs, want all 16", jobs, ran.Load())
		}
	}
}

// TestRunCollectStreamingOrder: collect sees results in submission
// order and is never called concurrently.
func TestRunCollectStreamingOrder(t *testing.T) {
	var mu sync.Mutex
	inCollect := false
	var got []int
	err := RunCollect(8, 32, func(i int) (int, error) {
		time.Sleep(time.Duration((i*7)%5) * time.Millisecond)
		return i, nil
	}, func(i int, v int) error {
		mu.Lock()
		if inCollect {
			t.Error("collect called concurrently")
		}
		inCollect = true
		mu.Unlock()
		got = append(got, v)
		mu.Lock()
		inCollect = false
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("collect order broken: got[%d] = %d", i, v)
		}
	}
	if len(got) != 32 {
		t.Fatalf("collected %d, want 32", len(got))
	}
}

// TestRunCollectStopsAtFailure: jobs at or after a failed index are
// never collected, and the run error wins when no collect error
// precedes it.
func TestRunCollectStopsAtFailure(t *testing.T) {
	sentinel := errors.New("boom")
	for _, jobs := range []int{1, 6} {
		var got []int
		err := RunCollect(jobs, 12, func(i int) (int, error) {
			if i == 5 {
				return 0, sentinel
			}
			return i, nil
		}, func(i int, v int) error {
			got = append(got, i)
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("jobs=%d: err = %v", jobs, err)
		}
		for _, i := range got {
			if i >= 5 {
				t.Fatalf("jobs=%d: collected job %d past the failure", jobs, i)
			}
		}
	}
}

// TestRunCollectCollectError: a collect failure stops collection and is
// returned even when a later run also fails.
func TestRunCollectCollectError(t *testing.T) {
	sentinel := errors.New("collect refused")
	err := RunCollect(4, 10, func(i int) (int, error) {
		if i == 8 {
			return 0, errors.New("late run failure")
		}
		return i, nil
	}, func(i int, v int) error {
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the collect error (lower index)", err)
	}
}

// TestRunEmpty: zero jobs is a no-op.
func TestRunEmpty(t *testing.T) {
	out, err := Run(4, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

package fault

import (
	"testing"

	"pciesim/internal/sim"
)

func TestNilPlanAndInjectorAreInert(t *testing.T) {
	var p *Plan
	if p.Active() {
		t.Fatal("nil plan reported active")
	}
	if err := p.Normalize(); err != nil {
		t.Fatalf("nil plan Normalize: %v", err)
	}
	var j *Injector
	for tick := sim.Tick(0); tick < 10; tick++ {
		if j.CorruptTLP(tick) || j.CorruptDLLP(tick) || j.Drop(tick) {
			t.Fatal("nil injector injected a fault")
		}
	}
}

func TestZeroRatesDrawNothing(t *testing.T) {
	// A profile with all-zero rates must never touch the RNG: baseline
	// bit-identity depends on the RNG sequence being untouched.
	rng := sim.NewRand(1)
	want := rng.Uint64()
	rng = sim.NewRand(1)
	j := NewInjector(Profile{}, rng)
	for tick := sim.Tick(0); tick < 100; tick++ {
		if j.CorruptTLP(tick) || j.CorruptDLLP(tick) || j.Drop(tick) {
			t.Fatal("zero-rate injector injected a fault")
		}
	}
	if got := rng.Uint64(); got != want {
		t.Fatal("zero-rate injector consumed RNG draws")
	}
}

func TestInjectorIsDeterministic(t *testing.T) {
	prof := Profile{Rates: Rates{TLPCorrupt: 0.3, DLLPCorrupt: 0.2, Drop: 0.1}}
	run := func() []bool {
		j := NewInjector(prof, sim.NewRand(99))
		var out []bool
		for tick := sim.Tick(0); tick < 200; tick++ {
			out = append(out, j.CorruptTLP(tick), j.CorruptDLLP(tick), j.Drop(tick))
		}
		return out
	}
	a, b := run(), run()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("decision %d differs between identical runs", k)
		}
	}
}

func TestScriptFiresInOrder(t *testing.T) {
	prof := Profile{Script: []Event{
		{At: 10, Op: OpCorruptTLP},
		{At: 20, Op: OpDrop},
		{At: 20, Op: OpCorruptDLLP},
	}}
	j := NewInjector(prof, sim.NewRand(1))
	if j.CorruptTLP(5) {
		t.Fatal("script fired before its tick")
	}
	if j.Drop(15) {
		t.Fatal("later event fired ahead of the head event")
	}
	if !j.CorruptTLP(12) {
		t.Fatal("due head event did not fire")
	}
	if !j.Drop(25) {
		t.Fatal("second event did not fire once due")
	}
	if !j.CorruptDLLP(25) {
		t.Fatal("third event did not fire once due")
	}
	if j.CorruptTLP(1000) || j.Drop(1000) || j.CorruptDLLP(1000) {
		t.Fatal("exhausted script kept firing")
	}
}

func TestNormalizeSortsAndValidates(t *testing.T) {
	p := &Plan{
		Windows: []Window{{At: 300, Duration: 50}, {At: 100, Duration: 50}},
		Up:      Profile{Script: []Event{{At: 9, Op: OpDrop}, {At: 3, Op: OpCorruptTLP}}},
	}
	if err := p.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if p.Windows[0].At != 100 || p.Up.Script[0].At != 3 {
		t.Fatal("Normalize did not sort schedules")
	}
	if !p.Active() {
		t.Fatal("plan with windows reported inactive")
	}

	bad := &Plan{Windows: []Window{{At: 100, Duration: 0}, {At: 200, Duration: 10}}}
	if err := bad.Normalize(); err == nil {
		t.Fatal("window after a permanent window not rejected")
	}
	overlap := &Plan{Windows: []Window{{At: 100, Duration: 50}, {At: 120, Duration: 10}}}
	if err := overlap.Normalize(); err == nil {
		t.Fatal("overlapping windows not rejected")
	}
	badRate := &Plan{Up: Profile{Rates: Rates{Drop: 1.5}}}
	if err := badRate.Normalize(); err == nil {
		t.Fatal("out-of-range rate not rejected")
	}
}

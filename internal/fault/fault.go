// Package fault defines deterministic fault-injection plans for PCIe
// links. A Plan attaches to a link (LinkConfig.Fault) and describes,
// per transmit direction, which packets are corrupted or lost and when
// the link suffers surprise-down windows. Every decision is driven
// either by the link's seeded RNG or by a scripted (tick, event)
// schedule, so any scenario replays bit-identically under a fixed seed.
package fault

import (
	"fmt"
	"sort"

	"pciesim/internal/sim"
)

// Rates are stochastic per-transmission fault probabilities for one
// transmit direction, evaluated against the interface's seeded RNG.
type Rates struct {
	// TLPCorrupt is the probability a transmitted TLP carries a bad
	// LCRC; the receiver discards it and NAKs (the §V-C replay path).
	TLPCorrupt float64
	// DLLPCorrupt is the probability a transmitted ACK/NAK DLLP
	// carries a bad CRC. DLLPs are not replayed: the receiver drops
	// them silently and the ACK timer / replay timer recover.
	DLLPCorrupt float64
	// Drop is the probability any packet (TLP or DLLP) vanishes on
	// the wire after occupying it — a model of detectable-but-lost
	// symbols (electrical idle glitches, receiver overflow).
	Drop float64
	// UpdateFCDrop is the probability a transmitted UpdateFC DLLP
	// vanishes on the wire, starving the peer of returned credits
	// until the bounded FC refresh re-advertises them. Only
	// meaningful on links with finite credits.
	UpdateFCDrop float64
}

// Zero reports whether the rates inject nothing.
func (r Rates) Zero() bool {
	return r.TLPCorrupt <= 0 && r.DLLPCorrupt <= 0 && r.Drop <= 0 && r.UpdateFCDrop <= 0
}

// Op identifies a scripted fault kind.
type Op int

const (
	// OpCorruptTLP corrupts the next TLP transmitted at or after At.
	OpCorruptTLP Op = iota
	// OpCorruptDLLP corrupts the next ACK/NAK DLLP transmitted at or
	// after At.
	OpCorruptDLLP
	// OpDrop drops the next packet of any kind transmitted at or
	// after At.
	OpDrop
	// OpDropUpdateFC drops the next UpdateFC DLLP transmitted at or
	// after At (credit-return loss; recovered by the FC refresh).
	OpDropUpdateFC
	// OpStarveFC is a credit-starvation window: every UpdateFC
	// transmission in [At, At+Duration) is dropped, so the peer's
	// view of this side's credits freezes for the window. Unlike the
	// one-shot ops it needs Event.Duration set.
	OpStarveFC
)

func (o Op) String() string {
	switch o {
	case OpCorruptTLP:
		return "corrupt-tlp"
	case OpCorruptDLLP:
		return "corrupt-dllp"
	case OpDrop:
		return "drop"
	case OpDropUpdateFC:
		return "drop-updatefc"
	case OpStarveFC:
		return "starve-fc"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Event is one scripted fault: the first transmission matching Op at
// simulated time >= At is faulted. Events fire in schedule order; an
// earlier event never yields to a later one (an expired OpStarveFC
// window is the exception — it is skipped once it closes).
type Event struct {
	At sim.Tick
	Op Op
	// Duration extends OpStarveFC into a window; it must be zero for
	// every other op.
	Duration sim.Tick
}

// Profile is the fault configuration for one transmit direction: a
// stochastic background plus an ordered script of guaranteed faults.
type Profile struct {
	Rates  Rates
	Script []Event
}

// Window is a surprise link-down episode. The link drops at At, stays
// down for Duration, then retrains (taking the plan's RetrainLatency)
// before carrying traffic again. Duration 0 means the link never comes
// back: it is declared dead, buffers are flushed, and subsequent
// traffic is black-holed so requesters fail by completion timeout
// rather than deadlocking.
type Window struct {
	At       sim.Tick
	Duration sim.Tick
}

// Permanent reports whether the window takes the link down for good.
func (w Window) Permanent() bool { return w.Duration == 0 }

// Hotplug is a surprise hot-plug episode: the device below the link is
// yanked at RemoveAt (slot presence drops, in-flight traffic is flushed
// and contained), and — unless ReinsertAfter is zero — re-seated
// ReinsertAfter later, after which the link retrains from scratch and
// the kernel re-enumerates the sub-tree. ReinsertAfter 0 means the
// device never returns.
type Hotplug struct {
	RemoveAt      sim.Tick
	ReinsertAfter sim.Tick
}

// Permanent reports whether the removal is for good.
func (h Hotplug) Permanent() bool { return h.ReinsertAfter == 0 }

// Plan is the full fault model for one link.
type Plan struct {
	// Seed overrides the link's RNG seed when nonzero, so one plan
	// can be replayed on differently-seeded links.
	Seed uint64
	// Up applies to packets transmitted by the link's upstream-side
	// interface (traveling downstream, toward the device). Down
	// applies to packets transmitted by the downstream-side interface
	// (traveling upstream, toward the root complex).
	Up, Down Profile
	// Windows are surprise link-down episodes, sorted by At. A window
	// that opens while the link is already down or dead is ignored.
	Windows []Window
	// RetrainLatency is the LTSSM recovery time appended to every
	// finite window before the link carries traffic again.
	RetrainLatency sim.Tick
	// DeadThreshold declares the link surprise-down permanently after
	// this many consecutive replay-timer expirations on one interface
	// without an intervening ACK/NAK — a requester-visible model of a
	// partner that stopped responding. 0 disables detection.
	DeadThreshold int
	// Downtrains forces a one-step link degradation (width halved, or
	// the next-lower generation at x1) at each listed tick, modeling
	// lane failures the LTSSM negotiates around. Each downtrain takes
	// the link through a DL-down/retrain cycle. Requires the link to
	// have a DegradeConfig armed.
	Downtrains []sim.Tick
	// Hotplugs are surprise-removal episodes, sorted by RemoveAt.
	Hotplugs []Hotplug
}

// Normalize sorts windows and scripts into schedule order and
// validates the plan. It is idempotent and safe to call on a shared
// plan; links call it at construction.
func (p *Plan) Normalize() error {
	if p == nil {
		return nil
	}
	for _, r := range []Rates{p.Up.Rates, p.Down.Rates} {
		for _, v := range []float64{r.TLPCorrupt, r.DLLPCorrupt, r.Drop, r.UpdateFCDrop} {
			if v < 0 || v > 1 {
				return fmt.Errorf("fault: rate %v out of range [0,1]", v)
			}
		}
	}
	for _, s := range [][]Event{p.Up.Script, p.Down.Script} {
		for _, ev := range s {
			if ev.Duration < 0 {
				return fmt.Errorf("fault: script event at %v with negative duration", ev.At)
			}
			if ev.Duration > 0 && ev.Op != OpStarveFC {
				return fmt.Errorf("fault: script op %v at %v must not set Duration", ev.Op, ev.At)
			}
		}
	}
	sort.SliceStable(p.Up.Script, func(a, b int) bool { return p.Up.Script[a].At < p.Up.Script[b].At })
	sort.SliceStable(p.Down.Script, func(a, b int) bool { return p.Down.Script[a].At < p.Down.Script[b].At })
	sort.SliceStable(p.Windows, func(a, b int) bool { return p.Windows[a].At < p.Windows[b].At })
	for k := 1; k < len(p.Windows); k++ {
		prev := p.Windows[k-1]
		if prev.Permanent() {
			return fmt.Errorf("fault: window at %v follows a permanent window at %v", p.Windows[k].At, prev.At)
		}
		if p.Windows[k].At < prev.At+prev.Duration+p.RetrainLatency {
			return fmt.Errorf("fault: window at %v overlaps the previous window", p.Windows[k].At)
		}
	}
	if p.DeadThreshold < 0 {
		return fmt.Errorf("fault: DeadThreshold %d is negative", p.DeadThreshold)
	}
	sort.Slice(p.Downtrains, func(a, b int) bool { return p.Downtrains[a] < p.Downtrains[b] })
	for _, at := range p.Downtrains {
		if at < 0 {
			return fmt.Errorf("fault: downtrain at negative tick %v", at)
		}
	}
	sort.SliceStable(p.Hotplugs, func(a, b int) bool { return p.Hotplugs[a].RemoveAt < p.Hotplugs[b].RemoveAt })
	for k, h := range p.Hotplugs {
		if h.RemoveAt < 0 || h.ReinsertAfter < 0 {
			return fmt.Errorf("fault: hotplug event with negative time (remove %v, reinsert %v)", h.RemoveAt, h.ReinsertAfter)
		}
		if k == 0 {
			continue
		}
		prev := p.Hotplugs[k-1]
		if prev.Permanent() {
			return fmt.Errorf("fault: hotplug at %v follows a permanent removal at %v", h.RemoveAt, prev.RemoveAt)
		}
		if h.RemoveAt < prev.RemoveAt+prev.ReinsertAfter+p.RetrainLatency {
			return fmt.Errorf("fault: hotplug at %v overlaps the previous episode", h.RemoveAt)
		}
	}
	return nil
}

// Active reports whether the plan injects anything at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return !p.Up.Rates.Zero() || !p.Down.Rates.Zero() ||
		len(p.Up.Script) > 0 || len(p.Down.Script) > 0 ||
		len(p.Windows) > 0 || p.DeadThreshold > 0 ||
		len(p.Downtrains) > 0 || len(p.Hotplugs) > 0
}

// Injector evaluates one direction's Profile for a transmitting
// interface. All methods are nil-safe no-ops so fault-free links pay
// no branches beyond a nil check, and — critically for baseline
// bit-identity — draw from the RNG only for rates that are nonzero.
type Injector struct {
	prof Profile
	rng  *sim.Rand
	next int // index of the first unfired script event
}

// NewInjector binds a profile to the transmitting interface's RNG.
func NewInjector(prof Profile, rng *sim.Rand) *Injector {
	return &Injector{prof: prof, rng: rng}
}

// scriptHit fires the head script event if it matches op and is due.
// Expired starvation windows at the head are retired first so they
// cannot block later events forever.
func (j *Injector) scriptHit(now sim.Tick, op Op) bool {
	for j.next < len(j.prof.Script) {
		ev := j.prof.Script[j.next]
		if ev.Op == OpStarveFC && now >= ev.At+ev.Duration {
			j.next++
			continue
		}
		if ev.Op != op || now < ev.At {
			return false
		}
		j.next++
		return true
	}
	return false
}

// starving reports whether the head script event is an open
// credit-starvation window.
func (j *Injector) starving(now sim.Tick) bool {
	if j.next >= len(j.prof.Script) {
		return false
	}
	ev := j.prof.Script[j.next]
	return ev.Op == OpStarveFC && now >= ev.At && now < ev.At+ev.Duration
}

// CorruptTLP decides whether this TLP transmission carries a bad LCRC.
func (j *Injector) CorruptTLP(now sim.Tick) bool {
	if j == nil {
		return false
	}
	if j.scriptHit(now, OpCorruptTLP) {
		return true
	}
	return j.prof.Rates.TLPCorrupt > 0 && j.rng.Bool(j.prof.Rates.TLPCorrupt)
}

// CorruptDLLP decides whether this ACK/NAK transmission carries a bad
// CRC.
func (j *Injector) CorruptDLLP(now sim.Tick) bool {
	if j == nil {
		return false
	}
	if j.scriptHit(now, OpCorruptDLLP) {
		return true
	}
	return j.prof.Rates.DLLPCorrupt > 0 && j.rng.Bool(j.prof.Rates.DLLPCorrupt)
}

// Drop decides whether this packet vanishes on the wire.
func (j *Injector) Drop(now sim.Tick) bool {
	if j == nil {
		return false
	}
	if j.scriptHit(now, OpDrop) {
		return true
	}
	return j.prof.Rates.Drop > 0 && j.rng.Bool(j.prof.Rates.Drop)
}

// DropUpdateFC decides whether this UpdateFC DLLP transmission is lost:
// a one-shot OpDropUpdateFC script event, an open OpStarveFC window
// (not consumed — it swallows every UpdateFC until it closes), or the
// stochastic UpdateFCDrop rate.
func (j *Injector) DropUpdateFC(now sim.Tick) bool {
	if j == nil {
		return false
	}
	if j.scriptHit(now, OpDropUpdateFC) {
		return true
	}
	if j.starving(now) {
		return true
	}
	return j.prof.Rates.UpdateFCDrop > 0 && j.rng.Bool(j.prof.Rates.UpdateFCDrop)
}

// CorruptionPlan builds the plan equivalent to the retired
// LinkConfig.ErrorRate knob: stochastic TLP corruption at the given
// rate in both directions. It returns nil for rate 0 so callers can
// assign the result unconditionally.
func CorruptionPlan(rate float64) *Plan {
	if rate <= 0 {
		return nil
	}
	return &Plan{
		Up:   Profile{Rates: Rates{TLPCorrupt: rate}},
		Down: Profile{Rates: Rates{TLPCorrupt: rate}},
	}
}

package memctrl

import (
	"bytes"
	"testing"
	"testing/quick"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
	"pciesim/internal/testdev"
)

func build(eng *sim.Engine, cfg Config) (*Memory, *testdev.Requester) {
	m := New(eng, "dram", mem.Range(0x8000_0000, 1<<30), cfg)
	req := testdev.NewRequester(eng, "cpu")
	mem.Connect(req.Port(), m.Port())
	return m, req
}

func TestMemoryLatency(t *testing.T) {
	eng := sim.NewEngine()
	_, req := build(eng, Config{Latency: 50 * sim.Nanosecond})
	req.Read(0x8000_0000, 64)
	eng.Run()
	if got := req.Completions[0].Latency(); got != 50*sim.Nanosecond {
		t.Errorf("latency %v, want 50ns", got)
	}
}

func TestMemoryBandwidthSerializes(t *testing.T) {
	eng := sim.NewEngine()
	_, req := build(eng, Config{Latency: 10 * sim.Nanosecond, PerByte: 100}) // 6.4ns per 64B
	req.Write(0x8000_0000, 64)
	req.Write(0x8000_0040, 64)
	eng.Run()
	gap := req.Completions[1].Done - req.Completions[0].Done
	if gap != 6400 {
		t.Errorf("inter-completion gap %v, want 6.4ns", gap)
	}
}

func TestMemoryOutstandingLimit(t *testing.T) {
	eng := sim.NewEngine()
	m, req := build(eng, Config{Latency: 100 * sim.Nanosecond, MaxOutstanding: 2})
	for i := 0; i < 8; i++ {
		req.Read(0x8000_0000+uint64(i*64), 64)
	}
	eng.Run()
	if len(req.Completions) != 8 {
		t.Fatalf("%d completions, want 8", len(req.Completions))
	}
	_, _, _, _, refused := m.Stats()
	if refused == 0 {
		t.Error("expected refusals with MaxOutstanding=2 and 8 same-cycle requests")
	}
}

func TestMemoryDataReadBack(t *testing.T) {
	eng := sim.NewEngine()
	_, req := build(eng, Config{Latency: sim.Nanosecond})
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	req.WriteData(0x8000_1000, payload)
	buf := make([]byte, 8)
	req.ReadData(0x8000_1000, buf)
	eng.Run()
	if !bytes.Equal(buf, payload) {
		t.Errorf("read back %v, want %v", buf, payload)
	}
}

func TestMemoryUnwrittenReadsZero(t *testing.T) {
	eng := sim.NewEngine()
	_, req := build(eng, Config{})
	buf := []byte{0xff, 0xff, 0xff, 0xff}
	req.ReadData(0x8100_0000, buf)
	eng.Run()
	if !bytes.Equal(buf, []byte{0, 0, 0, 0}) {
		t.Errorf("unwritten memory read %v, want zeros", buf)
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	eng := sim.NewEngine()
	m, req := build(eng, Config{})
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	// Straddles the 4 KB page boundary.
	req.WriteData(0x8000_0000+4096-50, data)
	buf := make([]byte, 100)
	req.ReadData(0x8000_0000+4096-50, buf)
	eng.Run()
	if !bytes.Equal(buf, data) {
		t.Error("cross-page write/read mismatch")
	}
	reads, writes, br, bw, _ := m.Stats()
	if reads != 1 || writes != 1 || br != 100 || bw != 100 {
		t.Errorf("stats = %d %d %d %d", reads, writes, br, bw)
	}
}

func TestMemoryFunctionalAccess(t *testing.T) {
	eng := sim.NewEngine()
	m, _ := build(eng, Config{})
	m.WriteFunctional(0x8000_2000, []byte{0xaa, 0xbb})
	buf := make([]byte, 2)
	m.ReadFunctional(0x8000_2000, buf)
	if buf[0] != 0xaa || buf[1] != 0xbb {
		t.Errorf("functional read %v", buf)
	}
}

func TestMemoryOutOfRangePanics(t *testing.T) {
	eng := sim.NewEngine()
	_, req := build(eng, Config{})
	req.Read(0x1000, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access should panic")
		}
	}()
	eng.Run()
}

// Property: any sequence of writes followed by reads behaves like a flat
// byte array (the sparse page store is transparent).
func TestMemoryStoreProperty(t *testing.T) {
	f := func(ops []struct {
		Off  uint16
		Data []byte
	}) bool {
		eng := sim.NewEngine()
		m := New(eng, "dram", mem.Range(0, 1<<20), Config{})
		shadow := make([]byte, 1<<17)
		for _, op := range ops {
			if len(op.Data) == 0 {
				continue
			}
			data := op.Data
			if len(data) > 1<<10 {
				data = data[:1<<10]
			}
			m.WriteFunctional(uint64(op.Off), data)
			copy(shadow[op.Off:], data)
		}
		buf := make([]byte, 1<<17)
		m.ReadFunctional(0, buf)
		return bytes.Equal(buf, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Package memctrl provides a simple main-memory controller: fixed access
// latency, a per-byte transfer cost, and a bounded number of outstanding
// accesses. It stands in for gem5's DRAM controller at the top of the
// memory tree; for the paper's I/O experiments only its service rate
// matters, since the PCI-Express fabric is the intended bottleneck.
package memctrl

import (
	"fmt"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
	"pciesim/internal/stats"
)

// Config parameterizes the controller.
type Config struct {
	// Latency is the fixed access latency applied to every request.
	Latency sim.Tick
	// PerByte is the additional occupancy per byte, modeling channel
	// bandwidth (e.g. ~78 ps/B for a 12.8 GB/s DDR channel).
	PerByte sim.Tick
	// MaxOutstanding bounds concurrently serviced requests; further
	// requests are refused until responses drain. 0 means unbounded.
	MaxOutstanding int
}

// Memory is the controller plus its backing store. The store is sparse
// and only materializes pages that are actually written with data, so
// timing-only traffic (the common case) costs nothing.
type Memory struct {
	eng  *sim.Engine
	name string
	cfg  Config
	rng  mem.AddrRange

	port       *mem.SlavePort
	respQ      *mem.SendQueue
	nextFree   sim.Tick
	needsRetry bool

	pages map[uint64]*[pageSize]byte

	// Stats.
	reads, writes   uint64
	bytesRead       uint64
	bytesWritten    uint64
	refusedRequests uint64

	// svcLat is the request-arrival-to-response-ready service latency
	// (fixed latency + queueing behind earlier accesses + per-byte cost).
	svcLat *stats.Histogram
}

const pageSize = 4096

// New creates a memory claiming the given address range.
func New(eng *sim.Engine, name string, rng mem.AddrRange, cfg Config) *Memory {
	m := &Memory{eng: eng, name: name, cfg: cfg, rng: rng, pages: make(map[uint64]*[pageSize]byte)}
	m.port = mem.NewSlavePort(name+".port", m)
	m.respQ = mem.NewSendQueue(eng, name+".respq", cfg.MaxOutstanding, func(p *mem.Packet) bool {
		return m.port.SendTimingResp(p)
	})
	m.respQ.OnFree(func() {
		if m.needsRetry {
			m.needsRetry = false
			m.port.SendReqRetry()
		}
	})
	r := eng.Stats()
	r.CounterFunc(name+".reads", func() uint64 { return m.reads })
	r.CounterFunc(name+".writes", func() uint64 { return m.writes })
	r.CounterFunc(name+".bytes_read", func() uint64 { return m.bytesRead })
	r.CounterFunc(name+".bytes_written", func() uint64 { return m.bytesWritten })
	r.CounterFunc(name+".refused", func() uint64 { return m.refusedRequests })
	m.svcLat = r.Histogram(name + ".service_latency")
	return m
}

// Port returns the slave port to connect to a crossbar master port.
func (m *Memory) Port() *mem.SlavePort { return m.port }

// Range returns the claimed address range.
func (m *Memory) Range() mem.AddrRange { return m.rng }

// RecvTimingReq services a request after the configured latency.
func (m *Memory) RecvTimingReq(_ *mem.SlavePort, pkt *mem.Packet) bool {
	if !m.rng.Contains(pkt.Addr) {
		panic(fmt.Sprintf("memctrl %s: %v outside %v", m.name, pkt, m.rng))
	}
	if m.respQ.Full() {
		m.needsRetry = true
		m.refusedRequests++
		return false
	}
	switch {
	case pkt.Cmd.IsRead():
		m.reads++
		m.bytesRead += uint64(pkt.Size)
		if pkt.Data != nil {
			m.read(pkt.Addr, pkt.Data)
		}
	case pkt.Cmd.IsWrite():
		m.writes++
		m.bytesWritten += uint64(pkt.Size)
		if pkt.Data != nil {
			m.write(pkt.Addr, pkt.Data)
		}
	}
	ready := m.eng.Now() + m.cfg.Latency
	if m.nextFree > ready {
		ready = m.nextFree
	}
	m.nextFree = ready + m.cfg.PerByte*sim.Tick(pkt.Size)
	m.svcLat.Observe(uint64(m.nextFree - m.eng.Now()))
	if pkt.Posted {
		// Posted write: consumed here, no completion.
		pkt.Release()
		return true
	}
	m.respQ.Push(pkt.MakeResponse(), ready)
	return true
}

// RecvRespRetry resumes response delivery after an upstream refusal.
func (m *Memory) RecvRespRetry(*mem.SlavePort) { m.respQ.RetryReceived() }

// AddrRanges advertises the claimed range.
func (m *Memory) AddrRanges(*mem.SlavePort) mem.RangeList { return mem.RangeList{m.rng} }

// Stats returns cumulative access counters.
func (m *Memory) Stats() (reads, writes, bytesRead, bytesWritten, refused uint64) {
	return m.reads, m.writes, m.bytesRead, m.bytesWritten, m.refusedRequests
}

// WriteFunctional writes data at addr immediately, without timing. Used
// by test fixtures and loaders.
func (m *Memory) WriteFunctional(addr uint64, data []byte) { m.write(addr, data) }

// ReadFunctional reads len(buf) bytes at addr immediately.
func (m *Memory) ReadFunctional(addr uint64, buf []byte) { m.read(addr, buf) }

func (m *Memory) write(addr uint64, data []byte) {
	off := addr - m.rng.Start
	for i := 0; i < len(data); {
		page, po := off/pageSize, off%pageSize
		p := m.pages[page]
		if p == nil {
			p = new([pageSize]byte)
			m.pages[page] = p
		}
		n := copy(p[po:], data[i:])
		i += n
		off += uint64(n)
	}
}

func (m *Memory) read(addr uint64, buf []byte) {
	off := addr - m.rng.Start
	for i := 0; i < len(buf); {
		page, po := off/pageSize, off%pageSize
		p := m.pages[page]
		var n int
		if p == nil {
			end := i + int(pageSize-po)
			if end > len(buf) {
				end = len(buf)
			}
			for j := i; j < end; j++ {
				buf[j] = 0
			}
			n = end - i
		} else {
			n = copy(buf[i:], p[po:])
		}
		i += n
		off += uint64(n)
	}
}

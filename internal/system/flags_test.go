package system

import "flag"

var calibrate = flag.Bool("calibrate", false, "print the calibration tuning report")

package system

import (
	"encoding/binary"
	"testing"

	"pciesim/internal/devices"
	"pciesim/internal/kernel"
	"pciesim/internal/pci"
	"pciesim/internal/sim"
)

func TestBootEnumeratesFullTopology(t *testing.T) {
	s := New(DefaultConfig())
	topo, err := s.Boot()
	if err != nil {
		t.Fatal(err)
	}
	// Bus 0: three root-port VP2Ps.
	if len(topo.Root) != 3 {
		t.Fatalf("found %d devices on bus 0, want 3 VP2Ps", len(topo.Root))
	}
	// DFS bus numbering: switch upstream = bus 1, internal = 2, disk =
	// 3, empty downstream = 4, NIC behind root port 1 = 5, root port 2
	// heads 6.
	disk := topo.FindByID(pci.VendorIntel, 0x2922)
	if disk == nil {
		t.Fatal("disk not discovered")
	}
	if disk.BDF != pci.NewBDF(3, 0, 0) {
		t.Errorf("disk at %v, want 03:00.0", disk.BDF)
	}
	nic := topo.FindByID(pci.VendorIntel, pci.Device82574L)
	if nic == nil {
		t.Fatal("NIC not discovered")
	}
	if nic.BDF != pci.NewBDF(5, 0, 0) {
		t.Errorf("NIC at %v, want 05:00.0", nic.BDF)
	}
	if topo.Buses != 7 {
		t.Errorf("assigned %d buses, want 7", topo.Buses)
	}

	// Every endpoint BAR must fall inside the platform MMIO window and
	// inside every bridge window above it.
	for _, d := range topo.Endpoints() {
		for _, b := range d.BARs {
			if b.IsIO {
				continue
			}
			if b.Addr < MMIOBase || b.Addr+b.Size > MMIOBase+MMIOSize {
				t.Errorf("%v BAR%d at %#x outside the MMIO window", d.BDF, b.Index, b.Addr)
			}
		}
	}
}

func TestBootDriverBinding(t *testing.T) {
	s := New(DefaultConfig())
	if _, err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	nh := s.NICDriver.Handle
	if nh == nil {
		t.Fatal("e1000e did not bind")
	}
	// §IV: MSI/MSI-X are disabled, so the driver must land on legacy.
	if nh.IntMode != kernel.IntModeLegacy {
		t.Errorf("NIC interrupt mode = %v, want legacy INTx", nh.IntMode)
	}
	if len(nh.Caps) != 4 {
		t.Errorf("probe saw %d capabilities, want 4 (PM, MSI, PCIe, MSI-X)", len(nh.Caps))
	}
	if nh.LinkSpeed != pci.LinkSpeedGen2 || nh.LinkWidth != 1 {
		t.Errorf("link info = gen %d x%d", nh.LinkSpeed, nh.LinkWidth)
	}
	dh := s.DiskDriver.Handle
	if dh == nil {
		t.Fatal("disk driver did not bind")
	}
	if dh.BAR0 == 0 {
		t.Error("disk BAR0 unassigned")
	}
	// The paper's check: the VP2P windows now route MMIO to the
	// devices — verified implicitly by the probe's STATUS read, and
	// again by an explicit abort-counter check.
	if s.RC.Aborts() != 0 {
		t.Errorf("%d master aborts during boot", s.RC.Aborts())
	}
}

func TestDDSmallBlock(t *testing.T) {
	s := New(DefaultConfig())
	res, err := s.RunDD(1 << 20) // 1 MiB
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 1<<20 {
		t.Errorf("moved %d bytes", res.Bytes)
	}
	if res.Requests != 8 {
		t.Errorf("%d requests, want 8 x 128KiB", res.Requests)
	}
	if res.ThroughputGbps() <= 0 {
		t.Error("throughput must be positive")
	}
	cmds, sectors := s.Disk.Stats()
	if cmds != 8 || sectors != 256 {
		t.Errorf("disk stats: %d commands %d sectors", cmds, sectors)
	}
}

func TestMMIOProbeLatencyScalesWithRCLatency(t *testing.T) {
	var prev sim.Tick
	for _, rcLat := range []sim.Tick{50, 100, 150} {
		cfg := DefaultConfig()
		cfg.RootComplexLatency = rcLat * sim.Nanosecond
		s := New(cfg)
		res, err := s.MMIOProbe(16)
		if err != nil {
			t.Fatal(err)
		}
		if res.Min != res.Max {
			t.Errorf("rc=%vns: MMIO latency jitter %v..%v in an idle system", rcLat, res.Min, res.Max)
		}
		if res.Avg() <= prev {
			t.Errorf("rc=%vns: avg %v not monotonically increasing", rcLat, res.Avg())
		}
		// Both request and response cross the RC: +25ns RC latency must
		// cost more than +25ns of MMIO latency (§VI-B Table II).
		if prev != 0 {
			delta := res.Avg() - prev
			if delta <= 50*sim.Nanosecond*1/2 {
				t.Errorf("rc step +50ns produced only +%v", delta)
			}
		}
		prev = res.Avg()
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (kernel.DDResult, uint64) {
		s := New(DefaultConfig())
		res, err := s.RunDD(256 << 10)
		if err != nil {
			t.Fatal(err)
		}
		return res, s.Eng.Fired()
	}
	r1, e1 := run()
	r2, e2 := run()
	if r1.Elapsed != r2.Elapsed || e1 != e2 {
		t.Errorf("non-deterministic: %v/%d vs %v/%d", r1.Elapsed, e1, r2.Elapsed, e2)
	}
}

func TestMSIExtension(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableMSI = true
	s := New(cfg)
	if _, err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	h := s.NICDriver.Handle
	if h.IntMode != kernel.IntModeMSI {
		t.Fatalf("interrupt mode = %v, want MSI on the extended platform", h.IntMode)
	}
	if h.IRQ < 64 {
		t.Errorf("MSI vector %d should be above the legacy lines", h.IRQ)
	}
	// The disk still uses legacy INTx (its MSI capability stays inert),
	// so dd must keep working alongside.
	if _, err := s.RunDD(256 << 10); err != nil {
		t.Fatal(err)
	}

	// Drive a NIC transmit; completion must arrive as a posted message
	// write through the fabric, not the INTx callback.
	legacyFired := false
	s.NIC.OnInterrupt = func() { legacyFired = true }
	desc := make([]byte, devices.NICDescSize)
	binary.LittleEndian.PutUint64(desc, DRAMBase+0x200000) // frame buffer
	binary.LittleEndian.PutUint16(desc[8:], 256)           // frame length
	s.DRAM.WriteFunctional(DRAMBase+0x100000, desc)
	before := s.NICDriver.InterruptCount
	task := s.CPU.Spawn("tx", 0, func(tk *kernel.Task) {
		tk.Write32(h.BAR0+devices.NICRegTDBAL, uint32(DRAMBase+0x100000))
		tk.Write32(h.BAR0+devices.NICRegTDLEN, 4*devices.NICDescSize)
		tk.Write32(h.BAR0+devices.NICRegIMS, devices.NICIntTxDone)
		tk.Write32(h.BAR0+devices.NICRegTDT, 1)
		tk.Delay(100 * sim.Microsecond) // let the MSI land
	})
	s.Eng.Run()
	if !task.Done() {
		t.Fatal("tx task wedged")
	}
	if legacyFired {
		t.Error("legacy INTx fired despite MSI being enabled")
	}
	if s.MSI.Delivered() == 0 {
		t.Fatal("no MSI reached the doorbell frame")
	}
	if s.NICDriver.InterruptCount <= before {
		t.Error("MSI vector handler did not run")
	}
}

func TestMSIDisabledKeepsPaperBehaviour(t *testing.T) {
	s := New(DefaultConfig())
	if _, err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	if s.NICDriver.Handle.IntMode != kernel.IntModeLegacy {
		t.Error("without EnableMSI the §IV legacy fallback must hold")
	}
	if s.MSI != nil {
		t.Error("no MSI frame expected on the baseline platform")
	}
}

func TestNICTransmitWorkload(t *testing.T) {
	s := New(DefaultConfig())
	res, err := s.RunNICTx(32, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 32 || res.Bytes != 32*1500 {
		t.Fatalf("result %v", res)
	}
	tx, txBytes, _ := s.NIC.Stats()
	if tx != 32 || txBytes != 32*1500 {
		t.Errorf("NIC stats %d/%d", tx, txBytes)
	}
	// The gigabit wire is the intended bottleneck: 1500B at 1 Gb/s is
	// 12us; with interrupt-per-frame overheads the goodput lands below
	// the line rate but within a factor of two.
	if g := res.ThroughputGbps(); g < 0.3 || g > 1.0 {
		t.Errorf("TX throughput %.3f Gb/s implausible for a gigabit NIC", g)
	}
}

func TestConcurrentDDAndNICTx(t *testing.T) {
	// Both devices active at once: disk DMA through the switch and NIC
	// descriptor/frame DMA through root port 1 contend for the IOCache
	// and MemBus. Everything must complete, deterministically.
	cfg := DefaultConfig()
	cfg.DD.StartupOverhead = 0
	s := New(cfg)
	if _, err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	var dd kernel.DDResult
	var nic kernel.NICTxResult
	var err1, err2 error
	ddCfg := cfg.DD
	ddCfg.BlockBytes = 512 << 10
	s.CPU.Spawn("dd", 0, func(tk *kernel.Task) {
		dd, err1 = kernel.RunDD(tk, s.DiskDriver.Handle, ddCfg)
	})
	s.CPU.Spawn("nictx", 0, func(tk *kernel.Task) {
		nic, err2 = s.NICDriver.RunNICTx(tk, kernel.NICTxConfig{
			RingAddr: DRAMBase + (160 << 20),
			BufAddr:  DRAMBase + (161 << 20),
			FrameLen: 1500,
			Frames:   16,
		})
	})
	s.Eng.Run()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if dd.Bytes != 512<<10 || nic.Frames != 16 {
		t.Fatalf("dd %v, nic %v", dd, nic)
	}
}

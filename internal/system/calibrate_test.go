package system

import (
	"fmt"
	"testing"

	"pciesim/internal/sim"
)

// TestCalibrationReport prints the key experiment numbers. Run with
//
//	go test ./internal/system -run TestCalibrationReport -v -calibrate
//
// It is skipped in normal runs (it is a tuning tool, not a test).
func TestCalibrationReport(t *testing.T) {
	if !*calibrate {
		t.Skip("pass -calibrate to print the tuning report")
	}
	// Blocks are scaled down 16x from the paper's 64 MiB, with the
	// fixed startup overhead scaled identically — the dd throughput
	// curve depends only on their ratio, so the scaling is exact.
	block := uint64(4 << 20)
	scaleDD := func(cfg *Config) {
		cfg.DD.StartupOverhead /= 16
	}

	fmt.Println("== Fig 9(a): baseline (x4 uplink, x1 disk), switch latency sweep ==")
	for _, lat := range []sim.Tick{50, 100, 150} {
		cfg := DefaultConfig()
		scaleDD(&cfg)
		cfg.SwitchLatency = lat * sim.Nanosecond
		s := New(cfg)
		res, err := s.RunDD(block)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("  switch=%vns: %.3f Gbps  (dev-window %v)\n", lat, res.ThroughputGbps(), s.Disk.DMAWindow())
	}

	fmt.Println("== Fig 9(b): all-link width sweep ==")
	for _, w := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig()
		scaleDD(&cfg)
		cfg.UplinkWidth = w
		cfg.DiskLinkWidth = w
		s := New(cfg)
		res, err := s.RunDD(block)
		if err != nil {
			t.Fatal(err)
		}
		st := s.DiskUplinkStats()
		fmt.Printf("  x%d: %.3f Gbps  replay=%.1f%% timeout=%.1f%%\n",
			w, res.ThroughputGbps(), st.ReplayRate()*100, st.TimeoutRate()*100)
	}

	fmt.Println("== Fig 9(c): x8, replay buffer sweep ==")
	for _, rb := range []int{1, 2, 3, 4} {
		cfg := DefaultConfig()
		scaleDD(&cfg)
		cfg.UplinkWidth = 8
		cfg.DiskLinkWidth = 8
		cfg.ReplayBufferSize = rb
		s := New(cfg)
		res, err := s.RunDD(block)
		if err != nil {
			t.Fatal(err)
		}
		st := s.DiskUplinkStats()
		fmt.Printf("  rb=%d: %.3f Gbps  timeout=%.1f%%\n", rb, res.ThroughputGbps(), st.TimeoutRate()*100)
	}

	fmt.Println("== Fig 9(d): x8, port buffer sweep ==")
	for _, pb := range []int{16, 20, 24, 28} {
		cfg := DefaultConfig()
		scaleDD(&cfg)
		cfg.UplinkWidth = 8
		cfg.DiskLinkWidth = 8
		cfg.PortBufferSize = pb
		s := New(cfg)
		res, err := s.RunDD(block)
		if err != nil {
			t.Fatal(err)
		}
		st := s.DiskUplinkStats()
		fmt.Printf("  pb=%d: %.3f Gbps  timeout=%.1f%%\n", pb, res.ThroughputGbps(), st.TimeoutRate()*100)
	}

	fmt.Println("== Table II: MMIO read vs RC latency ==")
	for _, lat := range []sim.Tick{50, 75, 100, 125, 150} {
		cfg := DefaultConfig()
		cfg.RootComplexLatency = lat * sim.Nanosecond
		s := New(cfg)
		res, err := s.MMIOProbe(64)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("  rc=%vns: %v\n", lat, res.Avg())
	}

	fmt.Println("== device-level sector throughput (x1) ==")
	{
		s := New(DefaultConfig())
		if _, err := s.RunDD(1 << 20); err != nil {
			t.Fatal(err)
		}
		window := s.Disk.DMAWindow() // window of the final 128 KiB command
		sectors := 32
		gbps := float64(sectors) * 4096 * 8 / window.Seconds() / 1e9
		fmt.Printf("  %d sectors in %v = %.3f Gbps (paper: 3.072)\n", sectors, window, gbps)
	}
}

// Package system assembles the full simulated platform of the paper's
// evaluation (§III, §V, Fig 6(a)): CPU and DRAM on a coherent MemBus,
// a bridge to the non-coherent IOBus holding the PCI host, a root
// complex on the MemBus whose DMA path drains through the IOCache, a
// PCI-Express switch below a root port, the IDE-like disk below the
// switch, and the 8254x-pcie NIC directly on another root port.
//
//	CPU ──► MemBus ◄──────────── IOCache ◄── RC upstream (DMA)
//	          │  │ └─► DRAM                     ▲
//	          │  └───► RC upstream (PIO)        │
//	          ▼                                 │
//	        Bridge ─► IOBus ─► PCI host         │
//	                                            │
//	    RC rootport0 ═ link ═ switch ═ link ═ disk
//	    RC rootport1 ═ link ═ NIC
//
// The package is a thin wrapper over internal/topo: the topology above
// is topo.Validation(), and New maps the legacy per-link knobs onto
// that spec before handing it to topo.Build. Arbitrary topologies —
// more root ports, cascaded switches, many disks — are built directly
// through internal/topo.
package system

import (
	"fmt"

	"pciesim/internal/cache"
	"pciesim/internal/devices"
	"pciesim/internal/fault"
	"pciesim/internal/kernel"
	"pciesim/internal/memctrl"
	"pciesim/internal/pcie"
	"pciesim/internal/sim"
	"pciesim/internal/topo"
)

// Address map of the modeled ARM Vexpress_GEM5_V1 platform (§III).
const (
	ConfigBase   = topo.ConfigBase
	ConfigSize   = topo.ConfigSize
	IOBase       = topo.IOBase
	IOSize       = topo.IOSize
	MMIOBase     = topo.MMIOBase
	MMIOSize     = topo.MMIOSize
	DRAMBase     = topo.DRAMBase
	DRAMSize     = topo.DRAMSize
	MSIFrameBase = topo.MSIFrameBase
	MSIFrameSize = topo.MSIFrameSize
)

// Config collects every knob of the modeled platform. DefaultConfig
// returns the paper's validated baseline; experiments override single
// fields.
type Config struct {
	// --- PCI-Express fabric (the §VI sweep variables) ---

	// RootComplexLatency is the RC processing latency (150 ns in every
	// experiment except the Table II sweep).
	RootComplexLatency sim.Tick
	// SwitchLatency is the switch store-and-forward latency (50–150 ns
	// in Fig 9(a)).
	SwitchLatency sim.Tick
	// PortBufferSize is the root/switch per-port buffer (16 packets in
	// the baseline; 16–28 in Fig 9(d)).
	PortBufferSize int
	// ReplayBufferSize is the link-interface replay buffer (4 in the
	// baseline; 1–4 in Fig 9(c)).
	ReplayBufferSize int
	// UplinkWidth/DiskLinkWidth are the Gen2 lane counts: x4 and x1 in
	// the validation topology; Fig 9(b) sweeps all links together.
	UplinkWidth   int
	DiskLinkWidth int
	// NICLinkWidth is the width of the direct root-port NIC link.
	NICLinkWidth int
	// Gen selects the generation for every link.
	Gen pcie.Generation
	// PropDelay is the per-direction propagation delay of every link's
	// physical medium. Zero (the baseline) models short electrical
	// traces; the flow-control experiments raise it to emulate cabled
	// or retimed links whose bandwidth-delay product the credit pools
	// must cover.
	PropDelay sim.Tick
	// Credits enables VC0 credit-based flow control on every link with
	// the given per-class limits. The zero value (all counters 0 =
	// infinite) keeps the legacy refusal-only backpressure and is
	// bit-identical to the pre-FC simulator. Receiver-side port buffers
	// clamp the advertisement (see topo.Config.Credits).
	Credits pcie.CreditConfig
	// DiskLinkErrorRate injects TLP corruption on the disk link with
	// the given per-transmission probability, exercising the NAK path
	// under real workloads (0 for the validation experiments).
	//
	// Deprecated: this is the original single-knob interface, kept as
	// an alias. DiskLinkFault is the general mechanism; when both are
	// set, DiskLinkFault wins.
	DiskLinkErrorRate float64
	// Seed seeds fault injection.
	Seed uint64

	// --- error containment & recovery (DESIGN.md §6) ---

	// UplinkFault/DiskLinkFault/NICLinkFault attach a deterministic
	// fault-injection plan (corruption, drops, link-down windows) to
	// the corresponding link. Nil leaves the link fault-free and the
	// simulation bit-identical to the baseline.
	UplinkFault   *fault.Plan
	DiskLinkFault *fault.Plan
	NICLinkFault  *fault.Plan
	// CompletionTimeout arms the root complex's completion timer on
	// CPU-originated non-posted requests: a request whose completion
	// never returns is answered with an all-ones error completion
	// after this long. Zero disables the timer (the baseline).
	CompletionTimeout sim.Tick
	// DiskCmdTimeout bounds how long the block driver waits for a
	// disk command interrupt before giving up on the request. Zero
	// waits forever (the baseline).
	DiskCmdTimeout sim.Tick
	// DiskDMATimeout bounds the disk DMA engine's per-transfer
	// in-flight time (devices.DiskConfig.DMATimeout). Zero disables.
	DiskDMATimeout sim.Tick
	// EnableMSI extends the platform beyond the paper's gem5 baseline:
	// an MSI doorbell frame appears at MSIFrameBase, the NIC's MSI
	// capability becomes enableable, and the e1000e probe lands on MSI
	// instead of the legacy INTx fallback.
	EnableMSI bool
	// EnableDPC adds Downstream Port Containment to every slot, creates
	// the kernel's recovery manager, and arms containment at boot — the
	// prerequisite for surviving surprise hot-plug (topo.Config.EnableDPC).
	EnableDPC bool
	// Recovery tunes the DPC/hot-plug recovery driver; zero-value
	// fields take defaults. Only meaningful with EnableDPC.
	Recovery kernel.RecoveryConfig
	// Degrade arms adaptive link degradation on every link
	// (topo.Config.Degrade). Nil leaves it off.
	Degrade *pcie.DegradeConfig

	// --- substrate ---

	MemBusFrontend sim.Tick
	MemBusResponse sim.Tick
	MemBusPerByte  sim.Tick
	IOBusLatency   sim.Tick
	BridgeDelay    sim.Tick
	PCIHostLatency sim.Tick
	IOCache        cache.Config
	DRAM           memctrl.Config
	Disk           devices.DiskConfig
	NIC            devices.NICConfig
	NICPIOLatency  sim.Tick

	// --- OS model ---

	IRQLatency sim.Tick
	DD         kernel.DDConfig

	// --- parallel engine ---

	// Domains requests the conservative parallel engine with this many
	// timing domains (topo.Config.Domains). 0 or 1 keeps the serial
	// engine; configurations the parallel engine cannot express fall
	// back to serial.
	Domains int
}

// DefaultConfig is the calibrated baseline configuration; every
// experiment in EXPERIMENTS.md starts from it. The PCIe-side values
// come from the paper; the substrate and OS calibration is shared with
// (and now lives in) topo.DefaultConfig.
func DefaultConfig() Config {
	t := topo.DefaultConfig()
	return Config{
		RootComplexLatency: t.RootComplexLatency,
		SwitchLatency:      t.SwitchLatency,
		PortBufferSize:     t.PortBufferSize,
		ReplayBufferSize:   t.ReplayBufferSize,
		UplinkWidth:        4,
		DiskLinkWidth:      1,
		NICLinkWidth:       1,
		Gen:                t.Gen,

		MemBusFrontend: t.MemBusFrontend,
		MemBusResponse: t.MemBusResponse,
		MemBusPerByte:  t.MemBusPerByte,
		IOBusLatency:   t.IOBusLatency,
		BridgeDelay:    t.BridgeDelay,
		PCIHostLatency: t.PCIHostLatency,
		IOCache:        t.IOCache,
		DRAM:           t.DRAM,
		Disk:           t.Disk,
		NIC:            t.NIC,
		NICPIOLatency:  t.NICPIOLatency,

		IRQLatency: t.IRQLatency,
		DD:         t.DD,
	}
}

// topoConfig maps the legacy flat config onto the topology-independent
// build config.
func (cfg Config) topoConfig() topo.Config {
	return topo.Config{
		RootComplexLatency: cfg.RootComplexLatency,
		SwitchLatency:      cfg.SwitchLatency,
		PortBufferSize:     cfg.PortBufferSize,
		ReplayBufferSize:   cfg.ReplayBufferSize,
		Gen:                cfg.Gen,
		PropDelay:          cfg.PropDelay,
		Credits:            cfg.Credits,
		Seed:               cfg.Seed,
		CompletionTimeout:  cfg.CompletionTimeout,
		DiskCmdTimeout:     cfg.DiskCmdTimeout,
		DiskDMATimeout:     cfg.DiskDMATimeout,
		EnableMSI:          cfg.EnableMSI,
		EnableDPC:          cfg.EnableDPC,
		Recovery:           cfg.Recovery,
		Degrade:            cfg.Degrade,

		MemBusFrontend: cfg.MemBusFrontend,
		MemBusResponse: cfg.MemBusResponse,
		MemBusPerByte:  cfg.MemBusPerByte,
		IOBusLatency:   cfg.IOBusLatency,
		BridgeDelay:    cfg.BridgeDelay,
		PCIHostLatency: cfg.PCIHostLatency,
		IOCache:        cfg.IOCache,
		DRAM:           cfg.DRAM,
		Disk:           cfg.Disk,
		NIC:            cfg.NIC,
		NICPIOLatency:  cfg.NICPIOLatency,

		IRQLatency: cfg.IRQLatency,
		DD:         cfg.DD,

		Domains: cfg.Domains,
	}
}

// System is the assembled validation platform: the generic topo.System
// plus direct handles on the fixed topology's components, so existing
// callers keep field access like s.Switch and s.DiskLink.
type System struct {
	*topo.System

	// Cfg is the legacy flat configuration New was called with. It
	// shadows the embedded topo.System's build config.
	Cfg Config

	Switch   *pcie.Switch
	Uplink   *pcie.Link
	DiskLink *pcie.Link
	NICLink  *pcie.Link

	Disk *devices.Disk
	NIC  *devices.NIC
}

// New builds and wires the platform. The simulation is ready to Boot.
func New(cfg Config) *System {
	spec := topo.Validation()
	sw := spec.RootPorts[0]
	sw.Link.Width = cfg.UplinkWidth
	sw.Link.Fault = cfg.UplinkFault
	disk := sw.Ports[0]
	disk.Link.Width = cfg.DiskLinkWidth
	disk.Link.ErrorRate = cfg.DiskLinkErrorRate
	disk.Link.Fault = cfg.DiskLinkFault
	nic := spec.RootPorts[1]
	nic.Link.Width = cfg.NICLinkWidth
	nic.Link.Fault = cfg.NICLinkFault

	ts, err := topo.Build(spec, cfg.topoConfig())
	if err != nil {
		// The canned spec is structurally legal; only an out-of-range
		// width/generation in cfg can fail, which was a panic (in
		// pcie.NewLink) before the topo layer existed too.
		panic(fmt.Sprintf("system: %v", err))
	}
	s := &System{
		System:   ts,
		Cfg:      cfg,
		Switch:   ts.Switches[0].Sw,
		Uplink:   ts.LinkByName("uplink").Link,
		DiskLink: ts.LinkByName("disklink").Link,
		NICLink:  ts.LinkByName("niclink").Link,
		Disk:     ts.Disks[0].Dev,
		NIC:      ts.NICs[0].Dev,
	}
	// topo.Build appends the MSI doorbell to the IOCache's uncacheable
	// list; keep the legacy config view in sync.
	s.Cfg.IOCache = ts.Cfg.IOCache
	return s
}

// RunDD boots if necessary, then runs one dd block-read of blockBytes
// and returns the result. The legacy wrapper keeps Cfg.DD as the
// source of truth (the embedded build config mirrors it).
func (s *System) RunDD(blockBytes uint64) (kernel.DDResult, error) {
	return s.System.RunDD(blockBytes)
}

// RunDDWrite is RunDD in the write direction (`dd of=/dev/disk`): the
// disk DMA-reads the user buffer, so the payload rides downstream read
// completions.
func (s *System) RunDDWrite(blockBytes uint64) (kernel.DDResult, error) {
	return s.System.RunDDWrite(blockBytes)
}

// DiskUplinkStats returns the link-interface stats of the upstream
// (disk -> switch) direction — where the paper measures timeout and
// replay rates.
func (s *System) DiskUplinkStats() pcie.LinkStats { return s.DiskLink.Down().Stats() }

// LinkErrorSummary aggregates the error-containment counters of one
// link, combining both directions.
type LinkErrorSummary = topo.LinkErrorSummary

// Package system assembles the full simulated platform of the paper's
// evaluation (§III, §V, Fig 6(a)): CPU and DRAM on a coherent MemBus,
// a bridge to the non-coherent IOBus holding the PCI host, a root
// complex on the MemBus whose DMA path drains through the IOCache, a
// PCI-Express switch below a root port, the IDE-like disk below the
// switch, and the 8254x-pcie NIC directly on another root port.
//
//	CPU ──► MemBus ◄──────────── IOCache ◄── RC upstream (DMA)
//	          │  │ └─► DRAM                     ▲
//	          │  └───► RC upstream (PIO)        │
//	          ▼                                 │
//	        Bridge ─► IOBus ─► PCI host         │
//	                                            │
//	    RC rootport0 ═ link ═ switch ═ link ═ disk
//	    RC rootport1 ═ link ═ NIC
package system

import (
	"fmt"

	"pciesim/internal/bridge"
	"pciesim/internal/cache"
	"pciesim/internal/devices"
	"pciesim/internal/fault"
	"pciesim/internal/kernel"
	"pciesim/internal/mem"
	"pciesim/internal/memctrl"
	"pciesim/internal/pci"
	"pciesim/internal/pcie"
	"pciesim/internal/sim"
	"pciesim/internal/xbar"
)

// Address map of the modeled ARM Vexpress_GEM5_V1 platform (§III).
const (
	ConfigBase = 0x30000000
	ConfigSize = 256 << 20
	IOBase     = 0x2f000000
	IOSize     = 16 << 20
	MMIOBase   = 0x40000000
	MMIOSize   = 1 << 30
	DRAMBase   = 0x80000000 // "DRAM is mapped to addresses from 2GB"
	DRAMSize   = 2 << 30
	// MSIFrameBase is the on-chip MSI doorbell frame (GICv2m-style),
	// present when Config.EnableMSI is set.
	MSIFrameBase = 0x2c1f0000
	MSIFrameSize = 4096
)

// Config collects every knob of the modeled platform. DefaultConfig
// returns the paper's validated baseline; experiments override single
// fields.
type Config struct {
	// --- PCI-Express fabric (the §VI sweep variables) ---

	// RootComplexLatency is the RC processing latency (150 ns in every
	// experiment except the Table II sweep).
	RootComplexLatency sim.Tick
	// SwitchLatency is the switch store-and-forward latency (50–150 ns
	// in Fig 9(a)).
	SwitchLatency sim.Tick
	// PortBufferSize is the root/switch per-port buffer (16 packets in
	// the baseline; 16–28 in Fig 9(d)).
	PortBufferSize int
	// ReplayBufferSize is the link-interface replay buffer (4 in the
	// baseline; 1–4 in Fig 9(c)).
	ReplayBufferSize int
	// UplinkWidth/DiskLinkWidth are the Gen2 lane counts: x4 and x1 in
	// the validation topology; Fig 9(b) sweeps all links together.
	UplinkWidth   int
	DiskLinkWidth int
	// NICLinkWidth is the width of the direct root-port NIC link.
	NICLinkWidth int
	// Gen selects the generation for every link.
	Gen pcie.Generation
	// DiskLinkErrorRate injects TLP corruption on the disk link with
	// the given per-transmission probability, exercising the NAK path
	// under real workloads (0 for the validation experiments).
	//
	// Deprecated: this is the original single-knob interface, kept as
	// an alias. DiskLinkFault is the general mechanism; when both are
	// set, DiskLinkFault wins.
	DiskLinkErrorRate float64
	// Seed seeds fault injection.
	Seed uint64

	// --- error containment & recovery (DESIGN.md §6) ---

	// UplinkFault/DiskLinkFault/NICLinkFault attach a deterministic
	// fault-injection plan (corruption, drops, link-down windows) to
	// the corresponding link. Nil leaves the link fault-free and the
	// simulation bit-identical to the baseline.
	UplinkFault   *fault.Plan
	DiskLinkFault *fault.Plan
	NICLinkFault  *fault.Plan
	// CompletionTimeout arms the root complex's completion timer on
	// CPU-originated non-posted requests: a request whose completion
	// never returns is answered with an all-ones error completion
	// after this long. Zero disables the timer (the baseline).
	CompletionTimeout sim.Tick
	// DiskCmdTimeout bounds how long the block driver waits for a
	// disk command interrupt before giving up on the request. Zero
	// waits forever (the baseline).
	DiskCmdTimeout sim.Tick
	// DiskDMATimeout bounds the disk DMA engine's per-transfer
	// in-flight time (devices.DiskConfig.DMATimeout). Zero disables.
	DiskDMATimeout sim.Tick
	// EnableMSI extends the platform beyond the paper's gem5 baseline:
	// an MSI doorbell frame appears at MSIFrameBase, the NIC's MSI
	// capability becomes enableable, and the e1000e probe lands on MSI
	// instead of the legacy INTx fallback.
	EnableMSI bool

	// --- substrate ---

	MemBusFrontend sim.Tick
	MemBusResponse sim.Tick
	MemBusPerByte  sim.Tick
	IOBusLatency   sim.Tick
	BridgeDelay    sim.Tick
	PCIHostLatency sim.Tick
	IOCache        cache.Config
	DRAM           memctrl.Config
	Disk           devices.DiskConfig
	NIC            devices.NICConfig
	NICPIOLatency  sim.Tick

	// --- OS model ---

	IRQLatency sim.Tick
	DD         kernel.DDConfig
}

// DefaultConfig is the calibrated baseline configuration; every
// experiment in EXPERIMENTS.md starts from it. The PCIe-side values
// come from the paper; the substrate and OS values are the calibration
// recorded in DESIGN.md §5.
func DefaultConfig() Config {
	dd := kernel.DDConfig{
		RequestBytes:       128 * 1024,
		BufAddr:            DRAMBase + (64 << 20),
		StartupOverhead:    12 * sim.Millisecond,
		PerRequestOverhead: 5 * sim.Microsecond,
		PerSectorOverhead:  1300 * sim.Nanosecond,
		InterruptOverhead:  4 * sim.Microsecond,
	}
	return Config{
		RootComplexLatency: 150 * sim.Nanosecond,
		SwitchLatency:      150 * sim.Nanosecond,
		PortBufferSize:     16,
		ReplayBufferSize:   4,
		UplinkWidth:        4,
		DiskLinkWidth:      1,
		NICLinkWidth:       1,
		Gen:                pcie.Gen2,

		MemBusFrontend: 10 * sim.Nanosecond,
		MemBusResponse: 10 * sim.Nanosecond,
		MemBusPerByte:  62, // ~16 GB/s data path
		IOBusLatency:   20 * sim.Nanosecond,
		BridgeDelay:    25 * sim.Nanosecond,
		PCIHostLatency: 100 * sim.Nanosecond,
		IOCache: cache.Config{
			Size:         1024,
			LineSize:     64,
			Assoc:        4,
			TagLatency:   10 * sim.Nanosecond,
			MSHRs:        4,
			WriteBuffers: 8,
		},
		// The DRAM service rate is the I/O tree's drain limit: ~51 ns
		// per 64 B line (~11.4 Gb/s of DMA drain). It sits just above
		// the x4 chunk arrival interval (42 ns) and far below x8's
		// (21 ns), which is what lets an x8 link overrun the port
		// buffers and collapse into replay timeouts (Fig 9(b)-(d))
		// while x4 and below stream cleanly.
		DRAM: memctrl.Config{
			Latency:        80 * sim.Nanosecond,
			PerByte:        800,
			MaxOutstanding: 16,
		},
		Disk:          devices.DefaultDiskConfig(),
		NIC:           devices.DefaultNICConfig(),
		NICPIOLatency: 110 * sim.Nanosecond,

		IRQLatency: 1 * sim.Microsecond,
		DD:         dd,
	}
}

// System is the assembled platform.
type System struct {
	Cfg Config
	Eng *sim.Engine

	// PktPool recycles request packets for every requestor in this
	// system (CPU, disk DMA, NIC DMA). It is engine-local: pools are
	// never shared across concurrently running simulations.
	PktPool *mem.Pool

	CPU    *kernel.CPU
	Kernel *kernel.Kernel

	MemBus  *xbar.XBar
	IOBus   *xbar.XBar
	Bridge  *bridge.Bridge
	IOCache *cache.Cache
	DRAM    *memctrl.Memory
	PCIHost *pci.Host

	// MSI is the doorbell frame, nil unless Cfg.EnableMSI.
	MSI *devices.MSIController

	RC       *pcie.RootComplex
	Switch   *pcie.Switch
	Uplink   *pcie.Link
	DiskLink *pcie.Link
	NICLink  *pcie.Link

	Disk *devices.Disk
	NIC  *devices.NIC

	DiskDriver *kernel.DiskDriver
	NICDriver  *kernel.E1000eDriver

	booted bool
}

// New builds and wires the platform. The simulation is ready to Boot.
func New(cfg Config) *System {
	eng := sim.NewEngine()
	s := &System{Cfg: cfg, Eng: eng, PktPool: mem.NewPool()}

	// --- buses and memory ---
	s.MemBus = xbar.New(eng, "membus", xbar.Config{
		FrontendLatency: cfg.MemBusFrontend,
		ResponseLatency: cfg.MemBusResponse,
		PerByte:         cfg.MemBusPerByte,
	})
	s.IOBus = xbar.New(eng, "iobus", xbar.Config{
		FrontendLatency: cfg.IOBusLatency,
		ResponseLatency: cfg.IOBusLatency,
	})
	s.DRAM = memctrl.New(eng, "dram", mem.Range(DRAMBase, DRAMSize), cfg.DRAM)
	mem.Connect(s.MemBus.MasterPort("dram", mem.RangeList{s.DRAM.Range()}), s.DRAM.Port())

	if cfg.EnableMSI {
		s.MSI = devices.NewMSIController(eng, "msiframe", mem.Range(MSIFrameBase, MSIFrameSize))
		mem.Connect(s.MemBus.MasterPort("msiframe", mem.RangeList{s.MSI.Range()}), s.MSI.Port())
		// Doorbell writes from devices must bypass the IOCache.
		cfg.IOCache.Uncacheable = append(cfg.IOCache.Uncacheable, s.MSI.Range())
		s.Cfg.IOCache = cfg.IOCache
	}

	s.Bridge = bridge.New(eng, "iobridge", bridge.Config{
		Delay:     cfg.BridgeDelay,
		ReqDepth:  16,
		RespDepth: 16,
		Ranges:    mem.RangeList{mem.Range(ConfigBase, ConfigSize)},
	})
	mem.Connect(s.MemBus.MasterPort("iobridge", mem.RangeList{mem.Range(ConfigBase, ConfigSize)}),
		s.Bridge.SlavePort())
	mem.Connect(s.Bridge.MasterPort(), s.IOBus.SlavePort("iobridge"))

	s.PCIHost = pci.NewHost(eng, "pcihost", pci.HostConfig{
		ECAMWindow: mem.Range(ConfigBase, ConfigSize),
		Latency:    cfg.PCIHostLatency,
	})
	mem.Connect(s.IOBus.MasterPort("pcihost", mem.RangeList{s.PCIHost.Window()}), s.PCIHost.Port())

	// --- root complex ---
	rcCfg := pcie.RootComplexConfig{NumRootPorts: 3}
	rcCfg.Latency = cfg.RootComplexLatency
	rcCfg.BufferSize = cfg.PortBufferSize
	rcCfg.CompletionTimeout = cfg.CompletionTimeout
	s.RC = pcie.NewRootComplex(eng, "rc", s.PCIHost, rcCfg)
	// CPU-visible PCI windows route from the MemBus into the RC.
	mem.Connect(s.MemBus.MasterPort("rc", mem.RangeList{
		mem.Range(MMIOBase, MMIOSize),
		mem.Range(IOBase, IOSize),
	}), s.RC.UpstreamSlave())

	// DMA drains through the IOCache onto the MemBus (§V-A: "we pass
	// all the memory requests generated by DMA transactions through an
	// IOCache and then send them to the Membus").
	s.IOCache = cache.New(eng, "iocache", cfg.IOCache)
	mem.Connect(s.RC.UpstreamMaster(), s.IOCache.CPUSidePort())
	mem.Connect(s.IOCache.MemSidePort(), s.MemBus.SlavePort("iocache"))

	// --- switch and links (validation topology of §VI-A) ---
	s.Uplink = pcie.NewLink(eng, "uplink", pcie.LinkConfig{
		Gen: cfg.Gen, Width: cfg.UplinkWidth,
		ReplayBufferSize: cfg.ReplayBufferSize,
		MaxPayload:       cfg.IOCache.LineSize,
		Seed:             cfg.Seed,
		Fault:            cfg.UplinkFault,
	})
	s.RC.RootPort(0).ConnectLink(s.Uplink)

	swCfg := pcie.SwitchConfig{NumDownstreamPorts: 2, UpstreamBus: 1, InternalBus: 2}
	swCfg.Latency = cfg.SwitchLatency
	swCfg.BufferSize = cfg.PortBufferSize
	s.Switch = pcie.NewSwitch(eng, "switch", s.PCIHost, swCfg)
	s.Switch.ConnectUpstreamLink(s.Uplink)

	s.DiskLink = pcie.NewLink(eng, "disklink", pcie.LinkConfig{
		Gen: cfg.Gen, Width: cfg.DiskLinkWidth,
		ReplayBufferSize: cfg.ReplayBufferSize,
		MaxPayload:       cfg.IOCache.LineSize,
		ErrorRate:        cfg.DiskLinkErrorRate,
		Seed:             cfg.Seed,
		Fault:            cfg.DiskLinkFault,
	})
	s.Switch.DownstreamPort(0).ConnectLink(s.DiskLink)

	diskCfg := cfg.Disk
	if cfg.DiskDMATimeout != 0 {
		diskCfg.DMATimeout = cfg.DiskDMATimeout
	}
	s.Disk = devices.NewDisk(eng, "disk", diskCfg)
	mem.Connect(s.DiskLink.Down().MasterPort(), s.Disk.PIOPort())
	mem.Connect(s.Disk.DMAPort(), s.DiskLink.Down().SlavePort())
	// DFS pre-registration: bus0(dev0)->bus1(switch up)->bus2(down
	// VP2Ps)->bus3: disk; the second downstream port heads bus 4; root
	// port 1 heads bus 5 (the NIC), root port 2 bus 6.
	s.PCIHost.Register(pci.NewBDF(3, 0, 0), s.Disk.ConfigSpace())

	// --- NIC directly below root port 1 (Table II topology) ---
	nicCfg := cfg.NIC
	nicCfg.PIOLatency = cfg.NICPIOLatency
	nicCfg.MSICapable = cfg.EnableMSI
	s.NIC = devices.NewNIC(eng, "nic", nicCfg)
	s.NICLink = pcie.NewLink(eng, "niclink", pcie.LinkConfig{
		Gen: cfg.Gen, Width: cfg.NICLinkWidth,
		ReplayBufferSize: cfg.ReplayBufferSize,
		MaxPayload:       cfg.IOCache.LineSize,
		Seed:             cfg.Seed,
		Fault:            cfg.NICLinkFault,
	})
	s.RC.RootPort(1).ConnectLink(s.NICLink)
	mem.Connect(s.NICLink.Down().MasterPort(), s.NIC.PIOPort())
	mem.Connect(s.NIC.DMAPort(), s.NICLink.Down().SlavePort())
	s.PCIHost.Register(pci.NewBDF(5, 0, 0), s.NIC.ConfigSpace())

	// AER wiring: each link interface reports into the AER capability
	// of the function at its end of the link — root ports and switch
	// ports on the fabric side, the endpoint's own config space on the
	// device side.
	s.Uplink.Up().SetAER(s.RC.RootPort(0).AER())
	s.Uplink.Down().SetAER(s.Switch.UpstreamPort().AER())
	s.DiskLink.Up().SetAER(s.Switch.DownstreamPort(0).AER())
	s.DiskLink.Down().SetAER(s.Disk.AER())
	s.NICLink.Up().SetAER(s.RC.RootPort(1).AER())
	s.NICLink.Down().SetAER(s.NIC.AER())

	// Observability: per-function AER totals plus platform-wide
	// aggregates, so a stats dump shows error activity at a glance.
	aers := []struct {
		name string
		a    *pci.AER
	}{
		{"rc.rootport0", s.RC.RootPort(0).AER()},
		{"rc.rootport1", s.RC.RootPort(1).AER()},
		{"switch.upstream", s.Switch.UpstreamPort().AER()},
		{"switch.downstream0", s.Switch.DownstreamPort(0).AER()},
		{"disk", s.Disk.AER()},
		{"nic", s.NIC.AER()},
	}
	r := eng.Stats()
	all := make([]*pci.AER, 0, len(aers))
	for _, e := range aers {
		a := e.a
		all = append(all, a)
		r.CounterFunc("aer."+e.name+".correctable",
			func() uint64 { c, _ := a.Totals(); return c })
		r.CounterFunc("aer."+e.name+".uncorrectable",
			func() uint64 { _, u := a.Totals(); return u })
	}
	r.CounterFunc("aer.correctable", func() uint64 {
		var t uint64
		for _, a := range all {
			c, _ := a.Totals()
			t += c
		}
		return t
	})
	r.CounterFunc("aer.uncorrectable", func() uint64 {
		var t uint64
		for _, a := range all {
			_, u := a.Totals()
			t += u
		}
		return t
	})

	// Packet pool: every requestor draws from (and every consumer
	// releases into) one engine-local free list, with leak-check
	// accounting exposed through the stats registry.
	s.Disk.UsePacketPool(s.PktPool)
	s.NIC.UsePacketPool(s.PktPool)
	r.CounterFunc("mem.pool.allocs", func() uint64 { return s.PktPool.Stats().Allocs })
	r.CounterFunc("mem.pool.reuses", func() uint64 { return s.PktPool.Stats().Reuses })
	r.CounterFunc("mem.pool.releases", func() uint64 { return s.PktPool.Stats().Releases })
	r.CounterFunc("mem.pool.live", func() uint64 { return s.PktPool.Stats().Live() })
	r.CounterFunc("sim.events_recycled", func() uint64 { return eng.Recycled() })

	// --- kernel ---
	s.CPU = kernel.NewCPU(eng, "cpu0")
	s.CPU.UsePacketPool(s.PktPool)
	s.CPU.IRQLatency = cfg.IRQLatency
	mem.Connect(s.CPU.Port(), s.MemBus.SlavePort("cpu0"))
	s.Kernel = kernel.New(s.CPU)
	s.Kernel.Enum.ECAMBase = ConfigBase
	s.Kernel.Enum.MemWindow = mem.Range(MMIOBase, MMIOSize)
	s.Kernel.Enum.IOWindow = mem.Range(IOBase, IOSize)
	if cfg.EnableMSI {
		s.Kernel.MSITarget = MSIFrameBase
		s.MSI.OnMSI = func(vector uint32) { s.CPU.TriggerIRQ(int(vector)) }
	}
	s.DiskDriver = &kernel.DiskDriver{CmdTimeout: cfg.DiskCmdTimeout}
	s.NICDriver = &kernel.E1000eDriver{}
	s.Kernel.RegisterDriver(s.DiskDriver)
	s.Kernel.RegisterDriver(s.NICDriver)

	// Interrupt wiring: legacy INTx lines are delivered to the CPU.
	// Enumeration assigns lines in DFS order, so they are resolved
	// after boot via each driver's handle.
	s.Disk.OnInterrupt = func() {
		if h := s.DiskDriver.Handle; h != nil {
			s.CPU.TriggerIRQ(h.IRQ)
		}
	}
	s.NIC.OnInterrupt = func() {
		if h := s.NICDriver.Handle; h != nil {
			s.CPU.TriggerIRQ(h.IRQ)
		}
	}
	return s
}

// runTask drives the engine until the spawned task completes (or the
// queue drains with it wedged). Unlike Eng.Run it does not drain
// events scheduled past the task's completion, so a fault window
// armed at a future tick is not fast-forwarded through while the
// platform idles between workloads.
func (s *System) runTask(t *kernel.Task) {
	s.Eng.RunWhile(func() bool { return !t.Done() })
}

// Boot runs enumeration and driver probes to completion and leaves the
// platform ready for workloads. It returns the discovered topology.
func (s *System) Boot() (*kernel.Topology, error) {
	if s.booted {
		return s.Kernel.Topo, nil
	}
	var bootErr error
	t := s.CPU.Spawn("boot", 0, func(t *kernel.Task) {
		bootErr = s.Kernel.Boot(t)
	})
	s.runTask(t)
	if bootErr != nil {
		return nil, bootErr
	}
	if !t.Done() {
		return nil, fmt.Errorf("system: boot task did not complete")
	}
	if s.DiskDriver.Handle == nil {
		return nil, fmt.Errorf("system: disk driver did not bind")
	}
	if s.NICDriver.Handle == nil {
		return nil, fmt.Errorf("system: NIC driver did not bind")
	}
	s.booted = true
	return s.Kernel.Topo, nil
}

// RunDD boots if necessary, then runs one dd block-read of blockBytes
// and returns the result.
func (s *System) RunDD(blockBytes uint64) (kernel.DDResult, error) {
	if _, err := s.Boot(); err != nil {
		return kernel.DDResult{}, err
	}
	cfg := s.Cfg.DD
	cfg.BlockBytes = blockBytes
	var res kernel.DDResult
	var runErr error
	task := s.CPU.Spawn("dd", 0, func(t *kernel.Task) {
		res, runErr = kernel.RunDD(t, s.DiskDriver.Handle, cfg)
	})
	s.runTask(task)
	if runErr != nil {
		return kernel.DDResult{}, runErr
	}
	if !task.Done() {
		return kernel.DDResult{}, fmt.Errorf("system: dd task wedged (lost wakeup?)")
	}
	return res, nil
}

// MMIOProbe boots if necessary, then measures n 4-byte reads of the
// NIC status register (the Table II experiment).
func (s *System) MMIOProbe(n int) (kernel.MMIOProbeResult, error) {
	if _, err := s.Boot(); err != nil {
		return kernel.MMIOProbeResult{}, err
	}
	var res kernel.MMIOProbeResult
	task := s.CPU.Spawn("mmioprobe", 0, func(t *kernel.Task) {
		res = kernel.MMIOProbe(t, s.NICDriver.Handle.BAR0+devices.NICRegStatus, n)
	})
	s.runTask(task)
	if !task.Done() {
		return kernel.MMIOProbeResult{}, fmt.Errorf("system: probe task wedged")
	}
	return res, nil
}

// RunNICTx boots if necessary, then transmits frames through the NIC's
// descriptor ring and returns the measured throughput.
func (s *System) RunNICTx(frames, frameLen int) (kernel.NICTxResult, error) {
	if _, err := s.Boot(); err != nil {
		return kernel.NICTxResult{}, err
	}
	cfg := kernel.NICTxConfig{
		RingAddr:         DRAMBase + (160 << 20),
		RingEntries:      64,
		BufAddr:          DRAMBase + (161 << 20),
		FrameLen:         frameLen,
		Frames:           frames,
		PerFrameOverhead: 500 * sim.Nanosecond,
	}
	var res kernel.NICTxResult
	var runErr error
	task := s.CPU.Spawn("nictx", 0, func(t *kernel.Task) {
		res, runErr = s.NICDriver.RunNICTx(t, cfg)
	})
	s.runTask(task)
	if runErr != nil {
		return kernel.NICTxResult{}, runErr
	}
	if !task.Done() {
		return kernel.NICTxResult{}, fmt.Errorf("system: nictx task wedged")
	}
	return res, nil
}

// DiskUplinkStats returns the link-interface stats of the upstream
// (disk -> switch) direction — where the paper measures timeout and
// replay rates.
func (s *System) DiskUplinkStats() pcie.LinkStats { return s.DiskLink.Down().Stats() }

// ScanAER runs the kernel's AER service handler in task context: every
// enumerated function's AER capability is read and cleared, and the
// pending errors come back as a structured log.
func (s *System) ScanAER() ([]kernel.AERRecord, error) {
	if _, err := s.Boot(); err != nil {
		return nil, err
	}
	var recs []kernel.AERRecord
	task := s.CPU.Spawn("aerscan", 0, func(t *kernel.Task) {
		recs = s.Kernel.HandleAER(t)
	})
	s.runTask(task)
	if !task.Done() {
		return nil, fmt.Errorf("system: AER scan task wedged")
	}
	return recs, nil
}

// LinkErrorSummary aggregates the error-containment counters of one
// link, combining both directions.
type LinkErrorSummary struct {
	Name     string
	Up, Down pcie.LinkStats
	Retrains uint64
	Dead     bool
}

// LinkErrors reports the per-link error and recovery counters for the
// three platform links.
func (s *System) LinkErrors() []LinkErrorSummary {
	links := []struct {
		name string
		l    *pcie.Link
	}{{"uplink", s.Uplink}, {"disklink", s.DiskLink}, {"niclink", s.NICLink}}
	out := make([]LinkErrorSummary, 0, len(links))
	for _, e := range links {
		out = append(out, LinkErrorSummary{
			Name:     e.name,
			Up:       e.l.Up().Stats(),
			Down:     e.l.Down().Stats(),
			Retrains: e.l.Retrains(),
			Dead:     e.l.Dead(),
		})
	}
	return out
}

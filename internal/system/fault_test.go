package system

import (
	"reflect"
	"strings"
	"testing"

	"pciesim/internal/fault"
	"pciesim/internal/kernel"
	"pciesim/internal/pci"
	"pciesim/internal/sim"
)

// faultedConfig arms every containment mechanism the way an error
// exploration run would: RC completion timeout, driver command
// watchdog, and device DMA timeout.
func faultedConfig() Config {
	cfg := DefaultConfig()
	cfg.CompletionTimeout = 100 * sim.Microsecond
	cfg.DiskCmdTimeout = 2 * sim.Millisecond
	cfg.DiskDMATimeout = 500 * sim.Microsecond
	return cfg
}

// midDDTick returns an absolute tick shortly after a RunDD's first
// requests start flowing: boot time measured on a throwaway system
// (boot is deterministic), plus dd's fixed startup, plus roughly two
// clean requests' worth of slack.
func midDDTick(t *testing.T) sim.Tick {
	t.Helper()
	s := New(DefaultConfig())
	if _, err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	return s.Eng.Now() + DefaultConfig().DD.StartupOverhead + sim.Millisecond
}

// Deadlock regression (whole platform): a disk link that dies for good
// mid-transfer must leave dd degraded but finished — errored requests
// counted, AER state latched on the device, kernel AER log naming it,
// and the event queue drained rather than a hung Engine.Run.
func TestDeadDiskLinkDegradesNotDeadlocks(t *testing.T) {
	cfg := faultedConfig()
	cfg.DiskLinkFault = &fault.Plan{
		Windows: []fault.Window{{At: midDDTick(t), Duration: 0}}, // permanent
	}
	s := New(cfg)
	res, err := s.RunDD(2 << 20)
	if err != nil {
		t.Fatalf("dd must complete on a dead link, got error: %v", err)
	}
	// Drain whatever the dead link left behind; a livelocked queue
	// fails this test by the go test timeout.
	s.Eng.Run()
	if !s.Eng.Drained() {
		t.Fatal("event queue not drained")
	}
	if !s.DiskLink.Dead() {
		t.Fatal("disk link should be dead")
	}
	if res.Requests != 16 {
		t.Errorf("dd must still attempt all 16 requests, got %d", res.Requests)
	}
	if res.Errors == 0 || res.Errors == res.Requests {
		t.Errorf("want a mix of clean and errored requests, got %d/%d errored",
			res.Errors, res.Requests)
	}

	// AER: the dead link latched surprise-down at the device end.
	diskBDF := s.DiskDriver.Handle.Dev.BDF
	if s.Disk.AER().UncorrectableStatus()&pci.AERUncSurpriseDown == 0 {
		t.Error("disk AER must latch SurpriseDown")
	}
	recs, err := s.ScanAER()
	if err != nil {
		t.Fatalf("AER scan: %v", err)
	}
	var diskRec *kernel.AERRecord
	for i := range recs {
		if recs[i].BDF == diskBDF {
			diskRec = &recs[i]
		}
	}
	if diskRec == nil {
		t.Fatalf("AER log has no record for the disk at %v: %v", diskBDF, recs)
	}
	if diskRec.Uncorrectable&pci.AERUncSurpriseDown == 0 {
		t.Errorf("disk AER record lacks SurpriseDown: %v", diskRec)
	}
	if !strings.Contains(diskRec.String(), "SurpriseDownError") {
		t.Errorf("kernel log line must name the error: %q", diskRec.String())
	}
	// The scan is RW1C: a second scan finds nothing pending.
	recs2, err := s.ScanAER()
	if err != nil {
		t.Fatalf("second AER scan: %v", err)
	}
	for _, r := range recs2 {
		if r.BDF == diskBDF {
			t.Errorf("disk AER status must be clear after the first scan, got %v", r)
		}
	}
}

// A transient link-down window retrains and the workload completes
// clean: the replay protocol resends everything lost in the window.
func TestTransientDiskLinkDownRetrains(t *testing.T) {
	cfg := faultedConfig()
	cfg.DiskLinkFault = &fault.Plan{
		Windows:        []fault.Window{{At: midDDTick(t), Duration: 50 * sim.Microsecond}},
		RetrainLatency: 20 * sim.Microsecond,
	}
	s := New(cfg)
	res, err := s.RunDD(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.DiskLink.Retrains(); got != 1 {
		t.Errorf("retrains = %d, want 1", got)
	}
	if s.DiskLink.Dead() {
		t.Error("link must be back up")
	}
	if res.Errors != 0 {
		t.Errorf("%d errored requests; a retrained link must lose nothing", res.Errors)
	}
	if res.Bytes != 2<<20 {
		t.Errorf("moved %d bytes", res.Bytes)
	}
}

// Stochastic corruption on the disk link (TLPs and DLLPs plus drops)
// degrades throughput but never correctness, and the DLLP path shows up
// in the new counters.
func TestStochasticFaultsDegradeNotCorrupt(t *testing.T) {
	clean := New(DefaultConfig())
	cleanRes, err := clean.RunDD(1 << 20)
	if err != nil {
		t.Fatal(err)
	}

	cfg := faultedConfig()
	rates := fault.Rates{TLPCorrupt: 0.02, DLLPCorrupt: 0.02, Drop: 0.01}
	cfg.DiskLinkFault = &fault.Plan{
		Seed: 7,
		Up:   fault.Profile{Rates: rates},
		Down: fault.Profile{Rates: rates},
	}
	s := New(cfg)
	res, err := s.RunDD(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != cleanRes.Bytes || res.Errors != 0 {
		t.Fatalf("corruption must be recovered by replay: %v", res)
	}
	if res.Elapsed <= cleanRes.Elapsed {
		t.Errorf("faulted run (%v) should be slower than clean (%v)", res.Elapsed, cleanRes.Elapsed)
	}
	var sum LinkErrorSummary
	for _, l := range s.LinkErrors() {
		if l.Name == "disklink" {
			sum = l
		}
	}
	if sum.Up.CRCErrors+sum.Down.CRCErrors == 0 {
		t.Error("no TLP CRC errors recorded")
	}
	if sum.Up.BadDLLPs+sum.Down.BadDLLPs == 0 {
		t.Error("no corrupted DLLPs recorded")
	}
	if sum.Up.Dropped+sum.Down.Dropped == 0 {
		t.Error("no wire drops recorded")
	}
	corr, _ := s.Disk.AER().Totals()
	if corr == 0 {
		t.Error("correctable errors must be latched into the disk AER")
	}
}

// Any FaultPlan run twice under a fixed seed produces identical stats,
// tick for tick (the replayability acceptance criterion).
func TestFaultPlanDeterminism(t *testing.T) {
	at := midDDTick(t)
	run := func() (kernel.DDResult, []LinkErrorSummary, uint64) {
		cfg := faultedConfig()
		rates := fault.Rates{TLPCorrupt: 0.05, DLLPCorrupt: 0.05, Drop: 0.02}
		cfg.DiskLinkFault = &fault.Plan{
			Seed: 1234,
			Up:   fault.Profile{Rates: rates},
			Down: fault.Profile{Rates: rates},
			Windows: []fault.Window{
				{At: at, Duration: 30 * sim.Microsecond},
			},
			RetrainLatency: 10 * sim.Microsecond,
		}
		s := New(cfg)
		res, err := s.RunDD(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		return res, s.LinkErrors(), s.Eng.Fired()
	}
	r1, l1, e1 := run()
	r2, l2, e2 := run()
	if r1 != r2 || e1 != e2 || !reflect.DeepEqual(l1, l2) {
		t.Fatalf("faulted run is not deterministic:\n%v / %d\n%v / %d\n%v\n%v",
			r1, e1, r2, e2, l1, l2)
	}
}

// The deprecated single-knob alias still works and is equivalent to
// the per-link plan it folds into.
func TestDiskLinkErrorRateAliasEquivalence(t *testing.T) {
	old := DefaultConfig()
	old.DiskLinkErrorRate = 0.05
	old.Seed = 77
	s1 := New(old)
	r1, err := s1.RunDD(512 << 10)
	if err != nil {
		t.Fatal(err)
	}

	neu := DefaultConfig()
	neu.Seed = 77
	neu.DiskLinkFault = &fault.Plan{
		Up:   fault.Profile{Rates: fault.Rates{TLPCorrupt: 0.05}},
		Down: fault.Profile{Rates: fault.Rates{TLPCorrupt: 0.05}},
	}
	s2 := New(neu)
	r2, err := s2.RunDD(512 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("alias and explicit plan diverge: %v vs %v", r1, r2)
	}
	if s1.DiskLink.Down().Stats() != s2.DiskLink.Down().Stats() {
		t.Fatalf("link stats diverge:\n%+v\n%+v",
			s1.DiskLink.Down().Stats(), s2.DiskLink.Down().Stats())
	}
	if s1.DiskLink.Down().Stats().CRCErrors == 0 {
		t.Error("error rate must actually inject corruption")
	}
}

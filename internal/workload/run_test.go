package workload

import (
	"bytes"
	"fmt"
	"testing"

	"pciesim/internal/sim"
	"pciesim/internal/topo"
)

// buildSys assembles a fresh platform for a canned name or topology
// spec, configured the way the workload CLI path configures it.
func buildSys(t *testing.T, spec string) *topo.System {
	t.Helper()
	ts := topo.Canned(spec)
	if ts == nil {
		var err error
		ts, err = topo.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg := topo.DefaultConfig()
	cfg.EnableMSI = true
	sys, err := topo.Build(ts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// execute runs a trace to completion and returns the result plus the
// drained stats dump.
func execute(t *testing.T, spec string, tr *Trace) (Result, []byte) {
	t.Helper()
	sys := buildSys(t, spec)
	res, err := Run(sys, tr, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Eng.Run()
	var buf bytes.Buffer
	if err := sys.Eng.Stats().WriteJSON(&buf, uint64(sys.Eng.Now())); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestReplayStatsIdentity is the lockdown property end to end: encode
// a synthetic trace, parse it back (the round trip a capture file
// takes), execute both on fresh platforms, and demand byte-identical
// stats dumps — the replayed run is indistinguishable from the
// original.
func TestReplayStatsIdentity(t *testing.T) {
	tr, err := Synthesize([]FlowSpec{{
		Endpoint: "nic", Op: OpRx, Arrival: ArrivalBursty,
		Ops: 120, Len: 1500, MeanGap: 12 * sim.Microsecond,
		BurstLen: 16, BurstGap: sim.Microsecond, Seed: 5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ParseString(tr.EncodeString())
	if err != nil {
		t.Fatal(err)
	}
	_, orig := execute(t, "validation", tr)
	_, replay := execute(t, "validation", replayed)
	if !bytes.Equal(orig, replay) {
		t.Fatal("replayed trace produced a different stats dump than the original run")
	}
}

// TestContentionFairness pins the contention matrix's shape: four
// identical random-read flows behind one switch share the fabric
// within tight fairness bounds, and every flow finishes every op.
func TestContentionFairness(t *testing.T) {
	const n = 4
	flows := make([]FlowSpec, n)
	for i := range flows {
		flows[i] = FlowSpec{
			Endpoint: fmt.Sprintf("disk%d", i),
			Op:       OpRead, Arrival: ArrivalPoisson,
			Ops: 80, Len: 4096, MeanGap: 25 * sim.Microsecond,
			Seed: uint64(21 + i),
		}
	}
	tr, err := Synthesize(flows)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := execute(t, fmt.Sprintf("switch:x4(disk*%d)", n), tr)
	if len(res.Flows) != n {
		t.Fatalf("got %d flows, want %d", len(res.Flows), n)
	}
	for _, f := range res.Flows {
		if f.Ops != 80 || f.Dropped != 0 {
			t.Errorf("%s: %d ops, %d dropped; want 80/0", f.Endpoint, f.Ops, f.Dropped)
		}
	}
	if spread := res.FairnessSpread(); spread > 1.3 {
		t.Errorf("fairness spread %.3f exceeds 1.3 — identical flows are not sharing fairly", spread)
	}
}

// TestRxOverloadDrops: offering frames faster than the x1 receive path
// drains them must overflow the NIC's RX FIFO and surface as Dropped,
// not as a hang or a silent loss.
func TestRxOverloadDrops(t *testing.T) {
	tr, err := Synthesize([]FlowSpec{{
		Endpoint: "nic", Op: OpRx, Arrival: ArrivalPoisson,
		Ops: 200, Len: 1500, MeanGap: sim.Microsecond, Seed: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := execute(t, "validation", tr)
	f := res.Flows[0]
	if f.Ops+f.Dropped != 200 {
		t.Fatalf("accounting leak: %d delivered + %d dropped != 200 offered", f.Ops, f.Dropped)
	}
	if f.Dropped == 0 {
		t.Fatal("3x overload shed nothing; RX backpressure is not modeled")
	}
	if f.Ops == 0 {
		t.Fatal("overload delivered nothing; the pump wedged instead of shedding")
	}
}

// TestRunRejectsUnknownEndpoint: a trace naming an endpoint the
// topology lacks must error up front with the available names.
func TestRunRejectsUnknownEndpoint(t *testing.T) {
	tr, err := Synthesize([]FlowSpec{{
		Endpoint: "ghost", Op: OpRead, Arrival: ArrivalPoisson,
		Ops: 1, Len: 4096, MeanGap: sim.Microsecond, Seed: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	sys := buildSys(t, "validation")
	if _, err := Run(sys, tr, RunConfig{}); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
}

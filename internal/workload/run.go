package workload

import (
	"fmt"
	"strings"

	"pciesim/internal/kernel"
	"pciesim/internal/sim"
	"pciesim/internal/stats"
	"pciesim/internal/topo"
)

// RunConfig tunes the executor.
type RunConfig struct {
	// StartDelay offsets every op's scheduled tick from the moment the
	// runner launches, giving flow tasks time to program their rings
	// before the first arrival. Defaults to 200us.
	StartDelay sim.Tick
	// RingEntries sizes NIC descriptor rings. Defaults to 64.
	RingEntries int
	// Poll bounds the RX reap loop's interrupt waits (see
	// kernel.NICRxConfig.Poll).
	Poll sim.Tick
}

// flowWindow spaces per-flow DRAM regions: rings, frame buffers, and
// block bounce buffers for flow i live in an 8 MiB window at
// DRAMBase + 256 MiB + i*8 MiB, clear of the dd buffers (64 MiB+) and
// the nictx ring (160 MiB).
const (
	flowWindowBase   = topo.DRAMBase + (256 << 20)
	flowWindowStride = 8 << 20
)

// FlowResult reports one flow of a run.
type FlowResult struct {
	// Endpoint is the topology node the flow drove; it doubles as the
	// flow's name in the wl.* stats namespace.
	Endpoint string
	// Kind is the flow's operation kind.
	Kind OpKind
	// Ops counts completed operations, Dropped the ones the platform
	// shed (NIC FIFO overflow, failed transfers).
	Ops, Dropped int
	// Bytes is the payload delivered.
	Bytes uint64
	// Elapsed spans the first scheduled arrival to the last completion.
	Elapsed sim.Tick
	// Lat summarizes per-op latency: completion tick minus *scheduled*
	// arrival tick, so queueing delay behind a burst is part of the
	// number.
	Lat kernel.LatencySummary
}

// GoodputGbps is delivered payload over the flow's span.
func (f FlowResult) GoodputGbps() float64 {
	if f.Elapsed == 0 {
		return 0
	}
	return float64(f.Bytes) * 8 / f.Elapsed.Seconds() / 1e9
}

// String implements fmt.Stringer.
func (f FlowResult) String() string {
	return fmt.Sprintf("%s/%v: %d ops (%d dropped), %d bytes in %v (%.3f Gb/s), %v",
		f.Endpoint, f.Kind, f.Ops, f.Dropped, f.Bytes, f.Elapsed, f.GoodputGbps(), f.Lat)
}

// Result reports a whole run.
type Result struct {
	// Flows holds per-flow results in first-appearance (trace) order.
	Flows []FlowResult
	// Elapsed spans workload start to the last flow's completion.
	Elapsed sim.Tick
}

// FairnessSpread is max/min goodput across the flows — 1.0 is a
// perfectly fair share of the contended fabric.
func (r Result) FairnessSpread() float64 {
	if len(r.Flows) == 0 {
		return 0
	}
	minG, maxG := r.Flows[0].GoodputGbps(), r.Flows[0].GoodputGbps()
	for _, f := range r.Flows[1:] {
		g := f.GoodputGbps()
		if g < minG {
			minG = g
		}
		if g > maxG {
			maxG = g
		}
	}
	if minG == 0 {
		return maxG
	}
	return maxG / minG
}

// flowState is one endpoint's execution state.
type flowState struct {
	endpoint string
	kind     OpKind
	ops      []Op

	completed int
	dropped   int
	bytes     uint64

	firstAt sim.Tick // first scheduled arrival (absolute)
	lastEnd sim.Tick // last completion tick (absolute)

	lat    *stats.Histogram // local, for the summary quantiles
	regLat *stats.Histogram // registry wl.<ep>.latency
	gaps   *stats.Histogram // registry wl.<ep>.interarrival

	cOps, cDropped, cBytes *stats.Counter

	// pending holds the scheduled arrival ticks of NIC RX frames the
	// device accepted but has not yet delivered; deliveries pop in
	// FIFO order (the device serializes RX DMA).
	pending []sim.Tick
}

func (f *flowState) finished() bool { return f.completed+f.dropped == len(f.ops) }

func (f *flowState) observe(target, end sim.Tick, bytes int) {
	lat := uint64(end - target)
	f.lat.Observe(lat)
	f.regLat.Observe(lat)
	f.cOps.Inc()
	f.cBytes.Add(uint64(bytes))
	f.completed++
	f.bytes += uint64(bytes)
	if end > f.lastEnd {
		f.lastEnd = end
	}
}

func (f *flowState) drop() {
	f.dropped++
	f.cDropped.Inc()
}

// Run executes a trace against a booted (or bootable) topology system:
// one kernel task per disk/NIC-TX flow, engine-scheduled frame
// injections plus a reaping driver task per NIC-RX flow. Each endpoint
// may carry NIC ops or block ops, not both, and at most one rx flow —
// the grouping Synthesize enforces on the way in. Stats land under
// wl.<endpoint>.* in the engine registry; run at most one workload per
// system so the counters stay attributable.
func Run(sys *topo.System, tr *Trace, cfg RunConfig) (Result, error) {
	if err := tr.validate(); err != nil {
		return Result{}, err
	}
	if len(tr.Ops) == 0 {
		return Result{}, fmt.Errorf("workload: empty trace")
	}
	if cfg.StartDelay == 0 {
		cfg.StartDelay = 200 * sim.Microsecond
	}
	if cfg.RingEntries == 0 {
		cfg.RingEntries = 64
	}
	if _, err := sys.Boot(); err != nil {
		return Result{}, err
	}

	// Group ops by endpoint, preserving first-appearance order.
	var flows []*flowState
	byEndpoint := map[string]*flowState{}
	for _, op := range tr.Ops {
		f := byEndpoint[op.Endpoint]
		if f == nil {
			f = &flowState{endpoint: op.Endpoint, kind: op.Kind, firstAt: op.At}
			byEndpoint[op.Endpoint] = f
			flows = append(flows, f)
		}
		blockKind := func(k OpKind) bool { return k == OpRead || k == OpWrite }
		if op.Kind != f.kind && !(blockKind(op.Kind) && blockKind(f.kind)) {
			return Result{}, fmt.Errorf("workload: endpoint %q mixes %v and %v ops",
				op.Endpoint, f.kind, op.Kind)
		}
		f.ops = append(f.ops, op)
	}

	// Resolve endpoints and register stats before any simulated time
	// passes, so registration order is a function of the trace alone.
	reg := sys.Eng.Stats()
	for _, f := range flows {
		switch f.kind {
		case OpRead, OpWrite:
			if sys.DiskByName(f.endpoint) == nil {
				return Result{}, fmt.Errorf("workload: no disk %q in topology %q (endpoints: %s)",
					f.endpoint, sys.Spec.Name, strings.Join(sys.EndpointNames(), ", "))
			}
		case OpRx, OpTx:
			if sys.NICByName(f.endpoint) == nil {
				return Result{}, fmt.Errorf("workload: no nic %q in topology %q (endpoints: %s)",
					f.endpoint, sys.Spec.Name, strings.Join(sys.EndpointNames(), ", "))
			}
		}
		f.lat = new(stats.Histogram)
		f.regLat = reg.Histogram("wl." + f.endpoint + ".latency")
		f.gaps = reg.Histogram("wl." + f.endpoint + ".interarrival")
		f.cOps = reg.Counter("wl." + f.endpoint + ".ops")
		f.cDropped = reg.Counter("wl." + f.endpoint + ".dropped")
		f.cBytes = reg.Counter("wl." + f.endpoint + ".bytes")
		prev := f.ops[0].At
		for _, op := range f.ops {
			f.gaps.Observe(uint64(op.At - prev))
			prev = op.At
		}
	}

	start := sys.Eng.Now() + cfg.StartDelay
	var tasks []*kernel.Task
	var taskErrs []error
	for fi, f := range flows {
		f := f
		window := uint64(flowWindowBase + fi*flowWindowStride)
		switch f.kind {
		case OpRead, OpWrite:
			h := sys.DiskDriver.HandleFor(sys.DiskByName(f.endpoint).BDF)
			tasks = append(tasks, sys.CPU.Spawn("wl."+f.endpoint, 0, func(t *kernel.Task) {
				runBlockFlow(t, f, h, start, window)
			}))
			taskErrs = append(taskErrs, nil)
		case OpTx:
			h := sys.NICDriver.HandleFor(sys.NICByName(f.endpoint).BDF)
			tasks = append(tasks, sys.CPU.Spawn("wl."+f.endpoint, 0, func(t *kernel.Task) {
				runTxFlow(t, f, h, start, window, cfg.RingEntries)
			}))
			taskErrs = append(taskErrs, nil)
		case OpRx:
			inst := sys.NICByName(f.endpoint)
			h := sys.NICDriver.HandleFor(inst.BDF)
			armRxFlow(sys, f, inst, start)
			ei := len(taskErrs)
			taskErrs = append(taskErrs, nil)
			rxCfg := kernel.NICRxConfig{
				RingAddr:    window,
				RingEntries: cfg.RingEntries,
				BufAddr:     window + (1 << 20),
				Poll:        cfg.Poll,
			}
			tasks = append(tasks, sys.CPU.Spawn("wl."+f.endpoint, 0, func(t *kernel.Task) {
				_, taskErrs[ei] = kernel.RunNICRx(t, h, rxCfg, f.finished)
			}))
		}
	}

	allDone := func() bool {
		for _, t := range tasks {
			if !t.Done() {
				return false
			}
		}
		return true
	}
	sys.Eng.RunWhile(func() bool { return !allDone() })
	for i, t := range tasks {
		if !t.Done() {
			return Result{}, fmt.Errorf("workload: flow %q wedged", flows[i].endpoint)
		}
		if taskErrs[i] != nil {
			return Result{}, fmt.Errorf("workload: flow %q: %w", flows[i].endpoint, taskErrs[i])
		}
	}

	res := Result{Flows: make([]FlowResult, 0, len(flows))}
	for _, f := range flows {
		elapsed := sim.Tick(0)
		if f.lastEnd > start+f.firstAt {
			elapsed = f.lastEnd - (start + f.firstAt)
		}
		fr := FlowResult{
			Endpoint: f.endpoint,
			Kind:     f.kind,
			Ops:      f.completed,
			Dropped:  f.dropped,
			Bytes:    f.bytes,
			Elapsed:  elapsed,
			Lat: kernel.LatencySummary{
				P50: sim.Tick(f.lat.Quantile(0.50)),
				P95: sim.Tick(f.lat.Quantile(0.95)),
				P99: sim.Tick(f.lat.Quantile(0.99)),
				Max: sim.Tick(f.lat.Max()),
			},
		}
		res.Flows = append(res.Flows, fr)
		if f.lastEnd > start && f.lastEnd-start > res.Elapsed {
			res.Elapsed = f.lastEnd - start
		}
	}
	return res, nil
}

// runBlockFlow paces random block transfers: sleep to each op's
// scheduled arrival, transfer, attribute completion-minus-arrival as
// the op latency (a transfer issued behind schedule keeps its queueing
// delay).
func runBlockFlow(t *kernel.Task, f *flowState, h *kernel.DiskHandle, start sim.Tick, buf uint64) {
	secSize := uint64(h.SectorSize)
	for _, op := range f.ops {
		target := start + op.At
		if now := t.Now(); now < target {
			t.Delay(target - now)
		}
		sectors := (uint64(op.Len) + secSize - 1) / secSize
		if err := h.Transfer(t, op.Kind == OpWrite, op.Addr, uint32(sectors), buf); err != nil {
			f.drop()
			continue
		}
		f.observe(target, t.Now(), op.Len)
	}
}

// runTxFlow paces descriptor-ring transmits the same way.
func runTxFlow(t *kernel.Task, f *flowState, h *kernel.NICHandle, start sim.Tick, window uint64, entries int) {
	ringAddr, bufAddr := window, window+(1<<20)
	kernel.SetupNICTxRing(t, h, ringAddr, entries)
	tail := uint32(0)
	for _, op := range f.ops {
		target := start + op.At
		if now := t.Now(); now < target {
			t.Delay(target - now)
		}
		tail = kernel.SendNICFrame(t, h, ringAddr, entries, tail, bufAddr, op.Len)
		f.observe(target, t.Now(), op.Len)
	}
}

// armRxFlow schedules the device-side frame arrivals and hooks
// delivery accounting. The driver-side ring programming and reaping
// live in the task RunNICRx runs.
func armRxFlow(sys *topo.System, f *flowState, inst *topo.NICInst, start sim.Tick) {
	nic := inst.Dev
	nic.OnReceive = func(length int) {
		target := f.pending[0]
		f.pending = f.pending[1:]
		f.observe(target, sys.Eng.Now(), length)
	}
	nic.OnRxDiscard = func(int) {
		f.pending = f.pending[1:]
		f.drop()
	}
	evName := "wl." + f.endpoint + ".arrival"
	for _, op := range f.ops {
		op := op
		target := start + op.At
		sys.Eng.ScheduleAt(evName, target, 0, func() {
			if nic.InjectRxFrame(op.Len) {
				f.pending = append(f.pending, target)
			} else {
				f.drop()
			}
		})
	}
}

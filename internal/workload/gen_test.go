package workload

import (
	"strings"
	"testing"

	"pciesim/internal/sim"
)

func testFlows(arrival ArrivalKind) []FlowSpec {
	return []FlowSpec{
		{Endpoint: "nic", Op: OpRx, Arrival: arrival, Ops: 200,
			Len: 1500, MeanGap: 10 * sim.Microsecond, Seed: 3},
		{Endpoint: "disk0", Op: OpRead, Arrival: arrival, Ops: 100,
			Len: 4096, MeanGap: 20 * sim.Microsecond, Seed: 4},
	}
}

// TestSynthesizeDeterministic: materialization is a pure function of
// the flow specs — repeated calls yield byte-identical traces.
func TestSynthesizeDeterministic(t *testing.T) {
	for _, arrival := range []ArrivalKind{ArrivalPoisson, ArrivalBursty} {
		var first string
		for i := 0; i < 3; i++ {
			tr, err := Synthesize(testFlows(arrival))
			if err != nil {
				t.Fatal(err)
			}
			enc := tr.EncodeString()
			if i == 0 {
				first = enc
				continue
			}
			if enc != first {
				t.Fatalf("%v: synthesis %d differs from the first", arrival, i)
			}
		}
	}
}

// TestSynthesizeSeedSensitivity: a different seed must move the Poisson
// arrivals (otherwise the seed is dead weight).
func TestSynthesizeSeedSensitivity(t *testing.T) {
	a := testFlows(ArrivalPoisson)
	b := testFlows(ArrivalPoisson)
	b[0].Seed++
	ta, err := Synthesize(a)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Synthesize(b)
	if err != nil {
		t.Fatal(err)
	}
	if ta.EncodeString() == tb.EncodeString() {
		t.Fatal("changing the seed did not change the Poisson schedule")
	}
}

// TestEqualOfferedLoad: at the same MeanGap the bursty generator must
// offer the same mean rate as Poisson — its whole point is moving
// variance, not load. The last arrival of n ops sits near (n-1)*gap.
func TestEqualOfferedLoad(t *testing.T) {
	const ops, gap = 400, 10 * sim.Microsecond
	span := func(arrival ArrivalKind) sim.Tick {
		tr, err := Synthesize([]FlowSpec{{
			Endpoint: "nic", Op: OpRx, Arrival: arrival,
			Ops: ops, Len: 1500, MeanGap: gap, Seed: 9,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Ops[len(tr.Ops)-1].At
	}
	ideal := sim.Tick(ops-1) * gap
	for _, arrival := range []ArrivalKind{ArrivalPoisson, ArrivalBursty} {
		got := span(arrival)
		ratio := float64(got) / float64(ideal)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%v: schedule span %v is %.2fx the ideal %v (offered load drifted)",
				arrival, got, ratio, ideal)
		}
	}
}

func TestSynthesizeRejectsDuplicateEndpoints(t *testing.T) {
	flows := testFlows(ArrivalPoisson)
	flows[1].Endpoint = flows[0].Endpoint
	flows[1].Op = flows[0].Op
	if _, err := Synthesize(flows); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
}

// TestParseEngine: every advertised name parses back to itself, and an
// unknown name errors with the complete valid-name list.
func TestParseEngine(t *testing.T) {
	for _, name := range EngineNames() {
		e, err := ParseEngine(name)
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", name, err)
		}
		if got := e.String(); got != name {
			t.Fatalf("ParseEngine(%q).String() = %q", name, got)
		}
	}
	_, err := ParseEngine("warp-speed")
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	for _, name := range EngineNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("unknown-engine error %q omits valid name %q", err, name)
		}
	}
}

// Package workload is the pluggable traffic-engine layer: seeded
// synthetic generators (Poisson and bursty ON/OFF arrival processes)
// that materialize concrete operation schedules, a versioned replayable
// trace format so any synthetic run can be captured and re-fed
// byte-identically, and a contention-matrix runner that pins flows to
// the endpoints of an arbitrary topology and reports per-flow goodput
// and latency.
//
// The key design decision is that generation and execution are
// separate: a generator only *materializes* a Trace (absolute ticks,
// addresses, lengths), and the executor only ever runs a Trace. A
// captured synthetic run and its replay therefore drive the simulator
// with bit-identical inputs, so the stats dumps match byte-for-byte by
// construction.
package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pciesim/internal/sim"
)

// TraceVersion is the current trace format version; Parse accepts only
// this version.
const TraceVersion = 1

// traceMagic is the first token of the text form's header line.
const traceMagic = "pciesim-wltrace"

// maxTraceTick bounds trace timestamps to 63 bits so every tick is
// representable in both wire forms (the JSON form carries int64) and
// delta accumulation can never wrap sim.Tick's unsigned range.
const maxTraceTick = sim.Tick(1<<63 - 1)

// OpKind is the operation class of one trace record.
type OpKind int

// Operation kinds. Rx injects a frame into a NIC's receive ring, Tx
// transmits one through its descriptor ring, Read/Write are block
// transfers against a disk endpoint.
const (
	OpRx OpKind = iota
	OpTx
	OpRead
	OpWrite
)

// opNames maps kinds to their wire spelling, in OpKind order.
var opNames = [...]string{"rx", "tx", "read", "write"}

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// parseOpKind resolves a wire spelling.
func parseOpKind(s string) (OpKind, bool) {
	for i, n := range opNames {
		if s == n {
			return OpKind(i), true
		}
	}
	return 0, false
}

// Op is one scheduled operation: at tick At (relative to workload
// start) issue a Kind transfer of Len bytes against Endpoint. Addr is
// the sector LBA for block ops and unused (zero) for NIC ops.
type Op struct {
	Kind     OpKind
	At       sim.Tick
	Endpoint string
	Addr     uint64
	Len      int
}

// Trace is a materialized operation schedule. Ops are sorted by At
// (ties keep file/generation order).
type Trace struct {
	Version int
	Ops     []Op
}

// jsonTrace is the JSON wire form.
type jsonTrace struct {
	Version int      `json:"version"`
	Ops     []jsonOp `json:"ops"`
}

type jsonOp struct {
	Op       string `json:"op"`
	At       int64  `json:"at"`
	Endpoint string `json:"endpoint"`
	Addr     uint64 `json:"addr"`
	Len      int    `json:"len"`
}

// validate checks the invariants both parsers and Synthesize must
// guarantee: known kinds, positive lengths, space-free endpoint names,
// non-negative ticks in global order.
func (tr *Trace) validate() error {
	if tr.Version != TraceVersion {
		return fmt.Errorf("workload: unsupported trace version %d (have %d)", tr.Version, TraceVersion)
	}
	var prev sim.Tick
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if int(op.Kind) >= len(opNames) || op.Kind < 0 {
			return fmt.Errorf("workload: op %d: unknown kind %d", i, int(op.Kind))
		}
		if op.Endpoint == "" || strings.ContainsAny(op.Endpoint, " \t\n\r#") {
			return fmt.Errorf("workload: op %d: bad endpoint %q", i, op.Endpoint)
		}
		if op.Len <= 0 {
			return fmt.Errorf("workload: op %d: length %d must be positive", i, op.Len)
		}
		if op.At > maxTraceTick {
			return fmt.Errorf("workload: op %d: tick %d exceeds the format's 63-bit range", i, op.At)
		}
		if op.At < prev {
			return fmt.Errorf("workload: op %d: tick %d goes backwards (previous %d)",
				i, op.At, prev)
		}
		prev = op.At
	}
	return nil
}

// Parse reads a trace in either wire form: the line-based text format
// (header "pciesim-wltrace v1", then one "<op> @tick|+delta <endpoint>
// <addr> <len>" line per record, # comments) or, when the input starts
// with "{", the JSON form. It validates structure and ordering, so a
// parsed trace is always safe to Encode and to execute.
func Parse(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if first[0] == '{' {
		return parseJSON(br)
	}
	return parseText(br)
}

// ParseString is Parse over an in-memory trace.
func ParseString(s string) (*Trace, error) { return Parse(strings.NewReader(s)) }

func parseJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jt); err != nil {
		return nil, fmt.Errorf("workload: bad JSON trace: %v", err)
	}
	tr := &Trace{Version: jt.Version, Ops: make([]Op, 0, len(jt.Ops))}
	for i, jo := range jt.Ops {
		kind, ok := parseOpKind(jo.Op)
		if !ok {
			return nil, fmt.Errorf("workload: op %d: unknown op %q", i, jo.Op)
		}
		tr.Ops = append(tr.Ops, Op{
			Kind: kind, At: sim.Tick(jo.At), Endpoint: jo.Endpoint,
			Addr: jo.Addr, Len: jo.Len,
		})
	}
	if err := tr.validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

func parseText(r *bufio.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	headerSeen := false
	tr := &Trace{Version: TraceVersion}
	var prev sim.Tick
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if !headerSeen {
			if len(fields) != 2 || fields[0] != traceMagic {
				return nil, fmt.Errorf("workload: line %d: missing %q header", lineNo, traceMagic)
			}
			v, err := strconv.Atoi(strings.TrimPrefix(fields[1], "v"))
			if err != nil || v != TraceVersion {
				return nil, fmt.Errorf("workload: line %d: unsupported trace version %q", lineNo, fields[1])
			}
			headerSeen = true
			continue
		}
		if len(fields) != 5 {
			return nil, fmt.Errorf("workload: line %d: want 5 fields (op time endpoint addr len), have %d",
				lineNo, len(fields))
		}
		kind, ok := parseOpKind(fields[0])
		if !ok {
			return nil, fmt.Errorf("workload: line %d: unknown op %q", lineNo, fields[0])
		}
		at, err := parseTime(fields[1], prev)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %v", lineNo, err)
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[3], "0x"), addrBase(fields[3]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad addr %q", lineNo, fields[3])
		}
		length, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad length %q", lineNo, fields[4])
		}
		tr.Ops = append(tr.Ops, Op{Kind: kind, At: at, Endpoint: fields[2], Addr: addr, Len: length})
		prev = at
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %v", err)
	}
	if !headerSeen {
		return nil, fmt.Errorf("workload: empty trace (no %q header)", traceMagic)
	}
	if err := tr.validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// parseTime parses the time field: "@N" is an absolute tick, "+N" a
// delta from the previous record's tick.
func parseTime(s string, prev sim.Tick) (sim.Tick, error) {
	if len(s) < 2 {
		return 0, fmt.Errorf("bad time %q (want @tick or +delta)", s)
	}
	n, err := strconv.ParseUint(s[1:], 10, 63)
	if err != nil {
		return 0, fmt.Errorf("bad time %q: %v", s, err)
	}
	switch s[0] {
	case '@':
		return sim.Tick(n), nil
	case '+':
		if sim.Tick(n) > maxTraceTick-prev {
			return 0, fmt.Errorf("bad time %q: delta overflows the 63-bit tick range", s)
		}
		return prev + sim.Tick(n), nil
	}
	return 0, fmt.Errorf("bad time %q (want @tick or +delta)", s)
}

func addrBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

// Encode writes the canonical text form: absolute @ticks, decimal
// addresses, one op per line. Parse(Encode(tr)) reproduces tr exactly.
func (tr *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s v%d\n", traceMagic, TraceVersion)
	for i := range tr.Ops {
		op := &tr.Ops[i]
		fmt.Fprintf(bw, "%s @%d %s %d %d\n", op.Kind, uint64(op.At), op.Endpoint, op.Addr, op.Len)
	}
	return bw.Flush()
}

// EncodeString returns the canonical text form.
func (tr *Trace) EncodeString() string {
	var sb strings.Builder
	tr.Encode(&sb)
	return sb.String()
}

// EncodeJSON writes the JSON wire form.
func (tr *Trace) EncodeJSON(w io.Writer) error {
	jt := jsonTrace{Version: tr.Version, Ops: make([]jsonOp, 0, len(tr.Ops))}
	for i := range tr.Ops {
		op := &tr.Ops[i]
		jt.Ops = append(jt.Ops, jsonOp{
			Op: op.Kind.String(), At: int64(op.At), Endpoint: op.Endpoint,
			Addr: op.Addr, Len: op.Len,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jt)
}

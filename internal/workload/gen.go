package workload

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pciesim/internal/sim"
)

// ArrivalKind selects the inter-arrival process of a synthetic flow.
type ArrivalKind int

// Arrival processes. Poisson draws exponential gaps from the flow's
// seed; Bursty is a deterministic ON/OFF train — BurstLen back-to-back
// ops spaced BurstGap apart, then silence until the next burst — with
// the burst period fixed at BurstLen*MeanGap so its offered load is
// exactly the Poisson flow's at the same MeanGap.
const (
	ArrivalPoisson ArrivalKind = iota
	ArrivalBursty
)

var arrivalNames = [...]string{"poisson", "bursty"}

// String implements fmt.Stringer.
func (k ArrivalKind) String() string {
	if int(k) < len(arrivalNames) {
		return arrivalNames[k]
	}
	return fmt.Sprintf("ArrivalKind(%d)", int(k))
}

// FlowSpec describes one synthetic flow to materialize.
type FlowSpec struct {
	// Endpoint names the topology node the flow drives (a disk for
	// Read/Write ops, a NIC for Rx/Tx).
	Endpoint string
	// Op is the operation kind every record of this flow carries.
	Op OpKind
	// Arrival selects the inter-arrival process.
	Arrival ArrivalKind
	// Ops is the record count.
	Ops int
	// Len is bytes per op (frame length for NIC ops, request bytes for
	// block ops).
	Len int
	// MeanGap is the mean inter-arrival time; 1/MeanGap is the offered
	// op rate.
	MeanGap sim.Tick
	// BurstLen and BurstGap shape ArrivalBursty: BurstLen ops per
	// burst, BurstGap apart. Defaults: 16 and MeanGap/8.
	BurstLen int
	BurstGap sim.Tick
	// Seed seeds the flow's private RNG (gap draws, block addresses).
	Seed uint64
	// AddrSectors bounds random block addresses: LBAs are drawn
	// uniformly from [0, AddrSectors). Zero defaults to 1<<20.
	AddrSectors uint64
}

// Engine is a named generator preset: an (arrival, op) pair, the unit
// the CLI's -workload flag selects.
type Engine struct {
	Arrival ArrivalKind
	Op      OpKind
}

// String renders the engine's CLI name ("poisson-rx").
func (e Engine) String() string { return e.Arrival.String() + "-" + e.Op.String() }

// EngineNames lists the valid -workload engine names, in a stable
// order.
func EngineNames() []string {
	var out []string
	for _, a := range arrivalNames {
		for _, o := range opNames {
			out = append(out, a+"-"+o)
		}
	}
	return out
}

// ParseEngine resolves "<arrival>-<op>" ("poisson-rx", "bursty-read").
// Unknown names error with the full valid-name list.
func ParseEngine(s string) (Engine, error) {
	arrival, op, ok := strings.Cut(s, "-")
	if ok {
		for ai, an := range arrivalNames {
			if arrival != an {
				continue
			}
			if k, found := parseOpKind(op); found {
				return Engine{Arrival: ArrivalKind(ai), Op: k}, nil
			}
		}
	}
	return Engine{}, fmt.Errorf("workload: unknown engine %q (valid engines: %s)",
		s, strings.Join(EngineNames(), ", "))
}

// Synthesize materializes the flows into one merged Trace: every gap
// and address is drawn here, once, so the executor (and any replay of
// the encoded trace) runs from identical inputs. The result is
// deterministic in the specs alone — same specs, same bytes, at any
// worker count.
func Synthesize(flows []FlowSpec) (*Trace, error) {
	tr := &Trace{Version: TraceVersion}
	seen := map[string]OpKind{}
	for i, f := range flows {
		if f.Endpoint == "" {
			return nil, fmt.Errorf("workload: flow %d: endpoint required", i)
		}
		if prev, dup := seen[f.Endpoint]; dup {
			return nil, fmt.Errorf("workload: flow %d: endpoint %q already carries a %v flow",
				i, f.Endpoint, prev)
		}
		seen[f.Endpoint] = f.Op
		ops, err := f.materialize()
		if err != nil {
			return nil, fmt.Errorf("workload: flow %d (%s): %v", i, f.Endpoint, err)
		}
		tr.Ops = append(tr.Ops, ops...)
	}
	// Merge to global tick order; stable sort keeps flow-spec order on
	// ties, so the merge itself is deterministic.
	sort.SliceStable(tr.Ops, func(a, b int) bool { return tr.Ops[a].At < tr.Ops[b].At })
	if err := tr.validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// materialize draws one flow's schedule.
func (f FlowSpec) materialize() ([]Op, error) {
	if f.Ops <= 0 {
		return nil, fmt.Errorf("ops must be positive")
	}
	if f.Len <= 0 {
		return nil, fmt.Errorf("length must be positive")
	}
	if f.MeanGap <= 0 {
		return nil, fmt.Errorf("mean gap must be positive")
	}
	burstLen := f.BurstLen
	if burstLen <= 0 {
		burstLen = 16
	}
	burstGap := f.BurstGap
	if burstGap == 0 {
		burstGap = f.MeanGap / 8
	}
	if f.Arrival == ArrivalBursty && sim.Tick(burstLen-1)*burstGap >= sim.Tick(burstLen)*f.MeanGap {
		return nil, fmt.Errorf("burst of %d x %v does not fit a %v mean gap", burstLen, burstGap, f.MeanGap)
	}
	addrSectors := f.AddrSectors
	if addrSectors == 0 {
		addrSectors = 1 << 20
	}
	rnd := sim.NewRand(f.Seed)
	ops := make([]Op, 0, f.Ops)
	var at sim.Tick
	for i := 0; i < f.Ops; i++ {
		switch f.Arrival {
		case ArrivalPoisson:
			// Exponential gap with mean MeanGap; 1-u is in (0,1] so the
			// log argument never hits zero.
			u := rnd.Float64()
			at += sim.Tick(-math.Log(1-u) * float64(f.MeanGap))
		case ArrivalBursty:
			// Deterministic ON/OFF train: op i of burst k arrives at
			// k*BurstLen*MeanGap + i*BurstGap.
			burst, pos := i/burstLen, i%burstLen
			at = sim.Tick(burst)*sim.Tick(burstLen)*f.MeanGap + sim.Tick(pos)*burstGap
		default:
			return nil, fmt.Errorf("unknown arrival process %v", f.Arrival)
		}
		op := Op{Kind: f.Op, At: at, Endpoint: f.Endpoint, Len: f.Len}
		if f.Op == OpRead || f.Op == OpWrite {
			op.Addr = rnd.Uint64() % addrSectors
		}
		ops = append(ops, op)
	}
	return ops, nil
}

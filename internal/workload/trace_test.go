package workload

import (
	"strings"
	"testing"
)

// sampleText is a well-formed trace exercising both time forms,
// comments, and every op kind.
const sampleText = `pciesim-wltrace v1
# NIC receive burst, then block ops
rx @0 nic 0 1500
rx +1500 nic 0 1500
tx @5000 nic 4096 1500
read @10000 disk0 8192 4096
write +2500 disk0 16384 4096
`

func TestParseEncodeRoundTrip(t *testing.T) {
	tr, err := ParseString(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != 5 {
		t.Fatalf("got %d ops, want 5", len(tr.Ops))
	}
	if tr.Ops[1].At != 1500 {
		t.Fatalf("delta form: got At=%d, want 1500", tr.Ops[1].At)
	}
	if tr.Ops[4].At != 12500 {
		t.Fatalf("delta after absolute: got At=%d, want 12500", tr.Ops[4].At)
	}
	enc := tr.EncodeString()
	tr2, err := ParseString(enc)
	if err != nil {
		t.Fatalf("re-parse of canonical encoding: %v", err)
	}
	if tr2.EncodeString() != enc {
		t.Fatal("canonical encoding is not a fixed point")
	}
}

func TestParseJSONRoundTrip(t *testing.T) {
	tr, err := ParseString(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tr.EncodeJSON(&b); err != nil {
		t.Fatal(err)
	}
	tr2, err := ParseString(b.String())
	if err != nil {
		t.Fatalf("JSON re-parse: %v", err)
	}
	if tr2.EncodeString() != tr.EncodeString() {
		t.Fatal("JSON round trip changed the trace")
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"missing header", "rx @0 nic 0 1500\n"},
		{"bad version", "pciesim-wltrace v9\nrx @0 nic 0 1500\n"},
		{"unknown op", "pciesim-wltrace v1\nfoo @0 nic 0 1500\n"},
		{"zero length", "pciesim-wltrace v1\nrx @0 nic 0 0\n"},
		{"time regression", "pciesim-wltrace v1\nrx @100 nic 0 1500\nrx @50 nic 0 1500\n"},
		{"field count", "pciesim-wltrace v1\nrx @0 nic 0\n"},
		{"bare tick", "pciesim-wltrace v1\nrx 0 nic 0 1500\n"},
		{"bad json", "{\"version\":1,\"ops\":[{\"op\":\"zap\",\"at\":0,\"endpoint\":\"nic\",\"len\":1}]}"},
	}
	for _, tc := range cases {
		if _, err := ParseString(tc.in); err == nil {
			t.Errorf("%s: parse accepted %q", tc.name, tc.in)
		}
	}
}

// FuzzWorkloadTrace hammers the trace codec with hostile input: any
// input that parses must encode canonically and re-parse to the same
// canonical form, and nothing may panic.
func FuzzWorkloadTrace(f *testing.F) {
	f.Add(sampleText)
	f.Add("pciesim-wltrace v1\n")
	f.Add("pciesim-wltrace v1\n# only comments\n")
	f.Add("pciesim-wltrace v1\nrx @0 nic 18446744073709551615 1\n")
	f.Add("{\"version\":1,\"ops\":[{\"op\":\"read\",\"at\":7,\"endpoint\":\"disk0\",\"addr\":512,\"len\":4096}]}")
	f.Add("pciesim-wltrace v1\nwrite +9223372036854775807 d 0 1\nwrite +1 d 0 1\n")
	f.Add("{")
	f.Add("pciesim-wltrace")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ParseString(s)
		if err != nil {
			return // rejecting hostile input is fine; panicking is not
		}
		enc := tr.EncodeString()
		tr2, err := ParseString(enc)
		if err != nil {
			t.Fatalf("canonical encoding failed to re-parse: %v\ninput: %q\nencoded: %q", err, s, enc)
		}
		if got := tr2.EncodeString(); got != enc {
			t.Fatalf("encode/parse/encode not a fixed point:\nfirst:  %q\nsecond: %q", enc, got)
		}
	})
}

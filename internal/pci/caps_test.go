package pci

import "testing"

// buildNICSpace replicates the paper's 8254x-pcie capability layout:
// capability pointer → PM → MSI → PCIe → MSI-X (§IV).
func buildNICSpace() *ConfigSpace {
	c := NewType0Space("nic", Ident{VendorID: VendorIntel, DeviceID: Device82574L, InterruptPin: 1})
	AddPowerManagementCap(c)
	AddMSICap(c)
	AddPCIeCap(c, PCIeCapConfig{PortType: PCIePortEndpoint, LinkSpeed: LinkSpeedGen2, LinkWidth: 1})
	AddMSIXCap(c, 5)
	return c
}

func TestCapabilityChainOrder(t *testing.T) {
	c := buildNICSpace()
	got := CapabilityChain(c)
	want := []uint8{CapIDPowerManagement, CapIDMSI, CapIDPCIExpress, CapIDMSIX}
	if len(got) != len(want) {
		t.Fatalf("chain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain = %v, want %v", got, want)
		}
	}
}

func TestCapabilityListBitSet(t *testing.T) {
	c := buildNICSpace()
	if c.ConfigRead(RegStatus, 2)&StatusCapList == 0 {
		t.Error("status bit 4 (capability list) must be set")
	}
	if c.ConfigRead(RegCapPtr, 1) == 0 {
		t.Error("capability pointer must be set")
	}
}

func TestFindCapability(t *testing.T) {
	c := buildNICSpace()
	if off := FindCapability(c, CapIDPCIExpress); off == 0 {
		t.Error("PCIe capability not found")
	} else if c.ConfigRead(off, 1) != CapIDPCIExpress {
		t.Error("returned offset does not hold the PCIe cap ID")
	}
	if FindCapability(c, 0x42) != 0 {
		t.Error("absent capability must return 0")
	}
	empty := NewType0Space("bare", Ident{VendorID: 1, DeviceID: 2})
	if FindCapability(empty, CapIDMSI) != 0 {
		t.Error("device without a chain must return 0")
	}
	if CapabilityChain(empty) != nil {
		t.Error("device without a chain must return nil")
	}
}

func TestMSIDisabledEnableBitStuckAtZero(t *testing.T) {
	c := buildNICSpace()
	off := FindCapability(c, CapIDMSI)
	// The driver tries to enable MSI: bit 0 of message control.
	c.ConfigWrite(off+2, 2, 0x0001)
	if got := c.ConfigRead(off+2, 2); got&1 != 0 {
		t.Errorf("MSI enable stuck: control = %#x — the paper disables MSI so the "+
			"driver falls back to legacy interrupts", got)
	}
	// Address/data remain programmable.
	c.ConfigWrite(off+4, 4, 0xfee00000)
	if got := c.ConfigRead(off+4, 4); got != 0xfee00000 {
		t.Errorf("MSI address not writable: %#x", got)
	}
}

func TestMSIXDisabled(t *testing.T) {
	c := buildNICSpace()
	off := FindCapability(c, CapIDMSIX)
	c.ConfigWrite(off+2, 2, 0x8000) // try to set enable (bit 15)
	if got := c.ConfigRead(off+2, 2); got&0x8000 != 0 {
		t.Errorf("MSI-X enable stuck: %#x", got)
	}
	if got := c.ConfigRead(off+2, 2) & 0x7ff; got != 4 {
		t.Errorf("MSI-X table size field = %d, want 4 (N-1 for 5 vectors)", got)
	}
}

func TestPMCapabilityInert(t *testing.T) {
	c := buildNICSpace()
	off := FindCapability(c, CapIDPowerManagement)
	c.ConfigWrite(off+4, 2, 0x0003) // try to enter D3
	if got := c.ConfigRead(off+4, 2) & 3; got != 0 {
		t.Errorf("power state moved to D%d; PM must be inert", got)
	}
}

func TestPCIeCapEndpointVsRootPort(t *testing.T) {
	ep := NewType0Space("ep", Ident{VendorID: 1, DeviceID: 2})
	epOff := AddPCIeCap(ep, PCIeCapConfig{PortType: PCIePortEndpoint, LinkSpeed: LinkSpeedGen2, LinkWidth: 4})
	pt, speed, width := ParsePCIeCap(ep, epOff)
	if pt != PCIePortEndpoint || speed != LinkSpeedGen2 || width != 4 {
		t.Errorf("endpoint cap = type %d speed %d width %d", pt, speed, width)
	}

	rp := NewType1Space("rp", Ident{VendorID: VendorIntel, DeviceID: DeviceWildcatPort0})
	rpOff := AddPCIeCap(rp, PCIeCapConfig{
		PortType: PCIePortRootPort, LinkSpeed: LinkSpeedGen3, LinkWidth: 8, SlotImplemented: true,
	})
	pt, speed, width = ParsePCIeCap(rp, rpOff)
	if pt != PCIePortRootPort || speed != LinkSpeedGen3 || width != 8 {
		t.Errorf("root port cap = type %d speed %d width %d", pt, speed, width)
	}
	// Slot implemented bit.
	if rp.ConfigRead(rpOff+2, 2)&(1<<8) == 0 {
		t.Error("slot implemented bit missing")
	}
	// Root ports implement the root control register region (C3).
	rp.ConfigWrite(rpOff+PCIeRootCtlOffset, 2, 0x1)
	if rp.ConfigRead(rpOff+PCIeRootCtlOffset, 2) != 0x1 {
		t.Error("root control must be writable on a root port")
	}
}

func TestSwitchPortTypes(t *testing.T) {
	up := NewType1Space("up", Ident{VendorID: VendorIntel})
	upOff := AddPCIeCap(up, PCIeCapConfig{PortType: PCIePortSwitchUpstream, LinkSpeed: LinkSpeedGen2, LinkWidth: 4})
	pt, _, _ := ParsePCIeCap(up, upOff)
	if pt != PCIePortSwitchUpstream {
		t.Errorf("upstream port type = %d", pt)
	}
	down := NewType1Space("down", Ident{VendorID: VendorIntel})
	dnOff := AddPCIeCap(down, PCIeCapConfig{PortType: PCIePortSwitchDownstream, LinkSpeed: LinkSpeedGen2, LinkWidth: 1, SlotImplemented: true})
	pt, _, _ = ParsePCIeCap(down, dnOff)
	if pt != PCIePortSwitchDownstream {
		t.Errorf("downstream port type = %d", pt)
	}
}

func TestExtendedCapabilityChain(t *testing.T) {
	c := buildNICSpace()
	AddExtendedCapability(c, ExtCapIDAER, 1, 0x48)
	AddExtendedCapability(c, ExtCapIDSerialNumber, 1, 0x0c)
	ids := WalkExtendedCapabilities(c)
	if len(ids) != 2 || ids[0] != ExtCapIDAER || ids[1] != ExtCapIDSerialNumber {
		t.Errorf("extended chain = %v", ids)
	}
}

func TestExtendedCapabilityAbsent(t *testing.T) {
	c := buildNICSpace()
	if ids := WalkExtendedCapabilities(c); ids != nil {
		t.Errorf("no R3 region expected, got %v", ids)
	}
}

func TestCapabilityOverflowPanics(t *testing.T) {
	c := NewType0Space("t", Ident{VendorID: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing the 256B capability region should panic")
		}
	}()
	for i := 0; i < 20; i++ {
		AddCapability(c, uint8(i+1), 16)
	}
}

package pci

import (
	"encoding/binary"
	"fmt"
)

// ConfigSpaceSize is the PCI-Express configuration space size per
// function: 4 KiB (a plain PCI function only architecturally defines the
// first 256 B — regions R1+R2 in the paper's Figure 4; R3 is the
// PCI-Express extended space).
const ConfigSpaceSize = 4096

// Standard configuration header register offsets (type 0 and type 1
// share the first 0x10 bytes).
const (
	RegVendorID   = 0x00 // 16-bit
	RegDeviceID   = 0x02 // 16-bit
	RegCommand    = 0x04 // 16-bit
	RegStatus     = 0x06 // 16-bit
	RegRevisionID = 0x08
	RegClassCode  = 0x09 // 24-bit
	RegCacheLine  = 0x0c
	RegLatTimer   = 0x0d
	RegHeaderType = 0x0e
	RegBIST       = 0x0f
	RegBAR0       = 0x10
	RegCapPtr     = 0x34
	RegIntLine    = 0x3c
	RegIntPin     = 0x3d
)

// Type 1 (PCI-to-PCI bridge) header registers, per the paper's Fig. 7.
const (
	RegPrimaryBus     = 0x18
	RegSecondaryBus   = 0x19
	RegSubordinateBus = 0x1a
	RegSecLatTimer    = 0x1b
	RegIOBase         = 0x1c
	RegIOLimit        = 0x1d
	RegSecStatus      = 0x1e // 16-bit
	RegMemBase        = 0x20 // 16-bit
	RegMemLimit       = 0x22 // 16-bit
	RegPrefBase       = 0x24 // 16-bit
	RegPrefLimit      = 0x26 // 16-bit
	RegPrefBaseUpper  = 0x28 // 32-bit
	RegPrefLimitUpper = 0x2c // 32-bit
	RegIOBaseUpper    = 0x30 // 16-bit
	RegIOLimitUpper   = 0x32 // 16-bit
	RegBridgeControl  = 0x3e // 16-bit
)

// Command register bits.
const (
	CmdIOEnable    = 1 << 0 // respond to I/O space accesses
	CmdMemEnable   = 1 << 1 // respond to memory space accesses
	CmdBusMaster   = 1 << 2 // may issue DMA (act as requestor)
	CmdIntxDisable = 1 << 10
)

// Status register bits.
const (
	StatusCapList = 1 << 4 // capability list present (paper: "All the
	// bits except the 4th bit are set to 0")
)

// Header types.
const (
	HeaderType0        = 0x00 // endpoint
	HeaderType1        = 0x01 // PCI-to-PCI bridge
	HeaderMultiFunc    = 0x80
	HeaderTypeTypeMask = 0x7f
)

// InvalidData is what a configuration read of a non-existent function
// returns: "a configuration response packet with its data field set to
// 1's represents an attempted access to a non-existent device" (§III).
const InvalidData = 0xffffffff

// ConfigAccessor is anything that exposes a configuration space: devices
// and the virtual PCI-to-PCI bridges of root complexes and switches.
type ConfigAccessor interface {
	ConfigRead(offset, size int) uint32
	ConfigWrite(offset, size int, value uint32)
}

// ConfigSpace is a 4 KiB configuration register file with per-bit write
// masks, BAR sizing semantics, and a write-notification hook. It
// implements ConfigAccessor.
type ConfigSpace struct {
	name    string
	data    [ConfigSpaceSize]byte
	wmask   [ConfigSpaceSize]byte
	w1cmask [ConfigSpaceSize]byte

	bars [6]*BAR
	caps capCursor

	// OnWrite, if set, is invoked after every configuration write; the
	// owning model uses it to react to programming (a bridge re-deriving
	// its routing windows, a device observing its command register).
	OnWrite func(offset, size int, value uint32)
}

// NewConfigSpace returns an all-zero, all-read-only space.
func NewConfigSpace(name string) *ConfigSpace {
	return &ConfigSpace{name: name}
}

// Name returns the diagnostic name.
func (c *ConfigSpace) Name() string { return c.name }

// --- initialization-time raw accessors (used by header builders) ---

// SetByte sets an initial register value without touching write masks.
func (c *ConfigSpace) SetByte(off int, v uint8) { c.data[off] = v }

// SetWord sets a 16-bit little-endian initial value.
func (c *ConfigSpace) SetWord(off int, v uint16) {
	binary.LittleEndian.PutUint16(c.data[off:], v)
}

// SetDword sets a 32-bit little-endian initial value.
func (c *ConfigSpace) SetDword(off int, v uint32) {
	binary.LittleEndian.PutUint32(c.data[off:], v)
}

// Byte returns the current raw value of a byte register.
func (c *ConfigSpace) Byte(off int) uint8 { return c.data[off] }

// Word returns the current raw value of a 16-bit register.
func (c *ConfigSpace) Word(off int) uint16 { return binary.LittleEndian.Uint16(c.data[off:]) }

// Dword returns the current raw value of a 32-bit register.
func (c *ConfigSpace) Dword(off int) uint32 { return binary.LittleEndian.Uint32(c.data[off:]) }

// MakeWritable marks [off, off+n) as fully software-writable.
func (c *ConfigSpace) MakeWritable(off, n int) {
	for i := 0; i < n; i++ {
		c.wmask[off+i] = 0xff
	}
}

// SetWriteMask sets the writable-bit mask for a single byte.
func (c *ConfigSpace) SetWriteMask(off int, mask uint8) { c.wmask[off] = mask }

// MakeW1C marks [off, off+n) as write-1-to-clear: software writing a 1
// clears the bit, writing 0 leaves it alone (the semantics of PCI
// status registers, including the AER status registers). W1C bits are
// set from the device side with SetByte/SetWord/SetDword.
func (c *ConfigSpace) MakeW1C(off, n int) {
	for i := 0; i < n; i++ {
		c.w1cmask[off+i] = 0xff
	}
}

// SetW1CMask sets the write-1-to-clear bit mask for a single byte.
func (c *ConfigSpace) SetW1CMask(off int, mask uint8) { c.w1cmask[off] = mask }

// AttachBAR installs a BAR at index 0..5 (base address registers live at
// 0x10 + 4*index). The BAR intercepts reads/writes of its dword.
func (c *ConfigSpace) AttachBAR(index int, b *BAR) {
	if index < 0 || index > 5 {
		panic(fmt.Sprintf("pci: BAR index %d out of range", index))
	}
	c.bars[index] = b
}

// BARAt returns the BAR installed at index, or nil.
func (c *ConfigSpace) BARAt(index int) *BAR { return c.bars[index] }

func (c *ConfigSpace) barForOffset(off int) (*BAR, bool) {
	if off < RegBAR0 || off >= RegBAR0+24 {
		return nil, false
	}
	idx := (off - RegBAR0) / 4
	b := c.bars[idx]
	return b, b != nil
}

// ConfigRead implements ConfigAccessor. size must be 1, 2 or 4 and the
// access must not cross a dword boundary (per the PCI specification).
func (c *ConfigSpace) ConfigRead(offset, size int) uint32 {
	c.checkAccess(offset, size)
	if b, ok := c.barForOffset(offset &^ 3); ok {
		word := b.Read()
		shift := uint(offset&3) * 8
		return (word >> shift) & sizeMask(size)
	}
	var v uint32
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint32(c.data[offset+i])
	}
	return v
}

// ConfigWrite implements ConfigAccessor, honoring per-bit write masks
// and BAR sizing semantics.
func (c *ConfigSpace) ConfigWrite(offset, size int, value uint32) {
	c.checkAccess(offset, size)
	if b, ok := c.barForOffset(offset &^ 3); ok {
		// Sub-dword BAR writes are rare; merge into the full register.
		shift := uint(offset&3) * 8
		mask := sizeMask(size) << shift
		merged := (b.Read() &^ mask) | ((value << shift) & mask)
		b.Write(merged)
	} else {
		for i := 0; i < size; i++ {
			m := c.wmask[offset+i]
			nb := uint8(value >> (8 * uint(i)))
			b := c.data[offset+i] &^ (nb & c.w1cmask[offset+i])
			c.data[offset+i] = (b &^ m) | (nb & m)
		}
	}
	if c.OnWrite != nil {
		c.OnWrite(offset, size, value)
	}
}

func (c *ConfigSpace) checkAccess(offset, size int) {
	if size != 1 && size != 2 && size != 4 {
		panic(fmt.Sprintf("pci %s: config access size %d", c.name, size))
	}
	if offset < 0 || offset+size > ConfigSpaceSize {
		panic(fmt.Sprintf("pci %s: config access at %#x+%d out of range", c.name, offset, size))
	}
	if offset/4 != (offset+size-1)/4 {
		panic(fmt.Sprintf("pci %s: config access at %#x+%d crosses a dword", c.name, offset, size))
	}
}

func sizeMask(size int) uint32 {
	switch size {
	case 1:
		return 0xff
	case 2:
		return 0xffff
	default:
		return 0xffffffff
	}
}

// BAR models one base address register. Writing all-ones and reading
// back reveals the size (the classic BIOS sizing handshake); writing an
// address programs the decoder.
type BAR struct {
	// Size is the window size in bytes; it must be a power of two.
	// Size 0 means the BAR is unimplemented and reads as hardwired 0
	// (the paper's VP2Ps: "Set to 0 to indicate that the VP2P does not
	// implement memory-mapped registers of its own").
	Size uint64
	// IsIO marks an I/O-space BAR (bit 0 set in the register).
	IsIO bool

	addr uint64
}

// NewMemBAR returns a 32-bit non-prefetchable memory BAR of the given
// power-of-two size.
func NewMemBAR(size uint64) *BAR {
	checkBARSize(size)
	return &BAR{Size: size}
}

// NewIOBAR returns an I/O-space BAR of the given power-of-two size.
func NewIOBAR(size uint64) *BAR {
	checkBARSize(size)
	return &BAR{Size: size, IsIO: true}
}

func checkBARSize(size uint64) {
	if size != 0 && size&(size-1) != 0 {
		panic(fmt.Sprintf("pci: BAR size %#x not a power of two", size))
	}
}

func (b *BAR) flags() uint32 {
	if b.IsIO {
		return 0x1
	}
	return 0x0 // 32-bit, non-prefetchable memory
}

func (b *BAR) addrMask() uint32 {
	if b.IsIO {
		return ^uint32(3)
	}
	return ^uint32(0xf)
}

// Read returns the architectural register value.
func (b *BAR) Read() uint32 {
	if b.Size == 0 {
		return 0
	}
	return (uint32(b.addr) & b.addrMask()) | b.flags()
}

// Write stores an address into the BAR; address bits below the window
// size are hardwired to zero, which is what makes the sizing handshake
// (write 0xffffffff, read back ^(size-1)|flags) work.
func (b *BAR) Write(v uint32) {
	if b.Size == 0 {
		return
	}
	b.addr = uint64(v) & uint64(b.addrMask()) &^ (b.Size - 1)
}

// Addr returns the currently programmed base address.
func (b *BAR) Addr() uint64 { return b.addr }

// SetAddr programs the base address directly (used by enumeration
// software once it has chosen an assignment).
func (b *BAR) SetAddr(a uint64) { b.addr = a &^ (b.Size - 1) }

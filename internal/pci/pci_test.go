package pci

import (
	"testing"
	"testing/quick"
)

func TestBDFRoundTrip(t *testing.T) {
	f := func(bus, dev, fn uint8) bool {
		dev &= 0x1f
		fn &= 0x7
		bdf := NewBDF(bus, dev, fn)
		got, reg := BDFFromECAM(bdf.ECAMOffset() + 0x40)
		return got == bdf && reg == 0x40
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBDFValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("device 32 should panic")
		}
	}()
	NewBDF(0, 32, 0)
}

func TestBDFString(t *testing.T) {
	if got := NewBDF(2, 3, 1).String(); got != "02:03.1" {
		t.Errorf("String = %q", got)
	}
}

func TestConfigSpaceReadWriteSizes(t *testing.T) {
	c := NewConfigSpace("t")
	c.MakeWritable(0x40, 4)
	c.ConfigWrite(0x40, 4, 0xdeadbeef)
	if got := c.ConfigRead(0x40, 4); got != 0xdeadbeef {
		t.Errorf("dword read = %#x", got)
	}
	if got := c.ConfigRead(0x40, 2); got != 0xbeef {
		t.Errorf("word read = %#x", got)
	}
	if got := c.ConfigRead(0x42, 2); got != 0xdead {
		t.Errorf("high word read = %#x", got)
	}
	if got := c.ConfigRead(0x43, 1); got != 0xde {
		t.Errorf("byte read = %#x", got)
	}
	c.ConfigWrite(0x41, 1, 0x55)
	if got := c.ConfigRead(0x40, 4); got != 0xdead55ef {
		t.Errorf("after byte write = %#x", got)
	}
}

func TestConfigSpaceWriteMaskEnforced(t *testing.T) {
	c := NewConfigSpace("t")
	c.SetDword(0x40, 0x11223344)
	// Only the low byte's top nibble is writable.
	c.SetWriteMask(0x40, 0xf0)
	c.ConfigWrite(0x40, 4, 0xffffffff)
	if got := c.ConfigRead(0x40, 4); got != 0x112233f4 {
		t.Errorf("masked write result = %#x, want 0x112233f4", got)
	}
}

func TestConfigSpaceCrossDwordPanics(t *testing.T) {
	c := NewConfigSpace("t")
	defer func() {
		if recover() == nil {
			t.Fatal("cross-dword access should panic")
		}
	}()
	c.ConfigRead(0x42, 4)
}

func TestConfigSpaceBadSizePanics(t *testing.T) {
	c := NewConfigSpace("t")
	defer func() {
		if recover() == nil {
			t.Fatal("3-byte access should panic")
		}
	}()
	c.ConfigRead(0x40, 3)
}

// Property: writes are idempotent — writing the same value twice leaves
// the register identical to writing it once, for any mask.
func TestConfigWriteIdempotent(t *testing.T) {
	f := func(initial, value uint32, mask uint8) bool {
		c := NewConfigSpace("p")
		c.SetDword(0x40, initial)
		for i := 0; i < 4; i++ {
			c.SetWriteMask(0x40+i, mask)
		}
		c.ConfigWrite(0x40, 4, value)
		once := c.ConfigRead(0x40, 4)
		c.ConfigWrite(0x40, 4, value)
		return c.ConfigRead(0x40, 4) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBARSizingHandshake(t *testing.T) {
	c := NewConfigSpace("t")
	c.AttachBAR(0, NewMemBAR(128*1024))
	// BIOS sizing: write all ones, read back.
	c.ConfigWrite(RegBAR0, 4, 0xffffffff)
	got := c.ConfigRead(RegBAR0, 4)
	if got != ^uint32(128*1024-1) {
		t.Errorf("sizing read = %#x, want %#x", got, ^uint32(128*1024-1))
	}
	// Program a base address; low bits stay zero.
	c.ConfigWrite(RegBAR0, 4, 0x40000000|0x7)
	if got := c.ConfigRead(RegBAR0, 4); got != 0x40000000 {
		t.Errorf("programmed BAR reads %#x", got)
	}
	if c.BARAt(0).Addr() != 0x40000000 {
		t.Errorf("BAR addr = %#x", c.BARAt(0).Addr())
	}
}

func TestIOBARFlags(t *testing.T) {
	c := NewConfigSpace("t")
	c.AttachBAR(1, NewIOBAR(256))
	c.ConfigWrite(RegBAR0+4, 4, 0xffffffff)
	got := c.ConfigRead(RegBAR0+4, 4)
	if got&1 != 1 {
		t.Error("I/O BAR must read with bit 0 set")
	}
	if got&^uint32(3) != ^uint32(255)&^uint32(3) {
		t.Errorf("I/O BAR size mask = %#x", got)
	}
}

func TestUnimplementedBARReadsZero(t *testing.T) {
	c := NewConfigSpace("t")
	c.AttachBAR(0, NewMemBAR(0))
	c.ConfigWrite(RegBAR0, 4, 0xffffffff)
	if got := c.ConfigRead(RegBAR0, 4); got != 0 {
		t.Errorf("unimplemented BAR reads %#x, want 0", got)
	}
}

func TestBARNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two BAR should panic")
		}
	}()
	NewMemBAR(100)
}

// Property: for any power-of-two size, the sizing handshake reports
// exactly that size (size = ~(mask & ~0xf) + 1 for memory BARs).
func TestBARSizingProperty(t *testing.T) {
	f := func(exp uint8) bool {
		size := uint64(16) << (exp % 16) // 16B .. 512KB
		b := NewMemBAR(size)
		b.Write(0xffffffff)
		mask := b.Read() &^ 0xf
		return uint64(^mask)+1 == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestType0HeaderLayout(t *testing.T) {
	c := NewType0Space("nic", Ident{
		VendorID:     VendorIntel,
		DeviceID:     Device82574L,
		ClassCode:    ClassNetworkEthernet,
		RevisionID:   3,
		InterruptPin: 1,
	})
	if got := c.ConfigRead(RegVendorID, 2); got != VendorIntel {
		t.Errorf("vendor = %#x", got)
	}
	if got := c.ConfigRead(RegDeviceID, 2); got != Device82574L {
		t.Errorf("device = %#x", got)
	}
	if got := c.ConfigRead(RegHeaderType, 1); got != HeaderType0 {
		t.Errorf("header type = %#x", got)
	}
	if got := c.ConfigRead(RegClassCode, 1) | c.ConfigRead(RegClassCode+1, 1)<<8 |
		c.ConfigRead(RegClassCode+2, 1)<<16; got != ClassNetworkEthernet {
		t.Errorf("class = %#x", got)
	}
	// Command register: bus-master bit is writable, reserved bits not.
	c.ConfigWrite(RegCommand, 2, 0xffff)
	cmd := c.ConfigRead(RegCommand, 2)
	if cmd&CmdBusMaster == 0 || cmd&CmdMemEnable == 0 {
		t.Errorf("command after enable = %#x", cmd)
	}
	if cmd&0x8 != 0 { // special cycles bit must stay clear
		t.Errorf("reserved command bits stuck: %#x", cmd)
	}
}

func TestType1HeaderBusNumbersWritable(t *testing.T) {
	c := NewType1Space("vp2p", Ident{VendorID: VendorIntel, DeviceID: DeviceWildcatPort0, ClassCode: ClassBridgePCI})
	if got := c.ConfigRead(RegHeaderType, 1); got != HeaderType1 {
		t.Fatalf("header type = %#x", got)
	}
	pri, sec, sub := BridgeBusNumbers(c)
	if pri != 0 || sec != 0 || sub != 0 {
		t.Fatal("bus numbers must initialize to 0 (§V-A)")
	}
	c.ConfigWrite(RegPrimaryBus, 1, 0)
	c.ConfigWrite(RegSecondaryBus, 1, 1)
	c.ConfigWrite(RegSubordinateBus, 1, 2)
	pri, sec, sub = BridgeBusNumbers(c)
	if pri != 0 || sec != 1 || sub != 2 {
		t.Errorf("bus numbers = %d/%d/%d", pri, sec, sub)
	}
}

func TestType1WindowsDecode(t *testing.T) {
	c := NewType1Space("vp2p", Ident{VendorID: VendorIntel, DeviceID: DeviceWildcatPort0})
	// Program a memory window 0x40000000..0x401fffff.
	c.ConfigWrite(RegMemBase, 2, 0x4000)
	c.ConfigWrite(RegMemLimit, 2, 0x4010)
	base, limit := BridgeMemWindow(c)
	if base != 0x40000000 || limit != 0x401fffff {
		t.Errorf("mem window = %#x..%#x", base, limit)
	}
	if !WindowEnabled(base, limit) {
		t.Error("window should decode as enabled")
	}
	// Program the 32-bit I/O window 0x2f000000..0x2f00ffff using the
	// upper registers, as the paper describes for the ARM platform.
	c.ConfigWrite(RegIOBase, 1, 0x00)
	c.ConfigWrite(RegIOLimit, 1, 0x00)
	c.ConfigWrite(RegIOBaseUpper, 2, 0x2f00)
	c.ConfigWrite(RegIOLimitUpper, 2, 0x2f00)
	iob, iol := BridgeIOWindow(c)
	if iob != 0x2f000000 || iol != 0x2f000fff {
		t.Errorf("io window = %#x..%#x", iob, iol)
	}
	// I/O capability nibble must read back 0x01 (32-bit addressing).
	if got := c.ConfigRead(RegIOBase, 1) & 0x0f; got != 0x01 {
		t.Errorf("I/O base capability nibble = %#x", got)
	}
}

func TestType1BARsUnimplemented(t *testing.T) {
	c := NewType1Space("vp2p", Ident{VendorID: VendorIntel})
	c.ConfigWrite(RegBAR0, 4, 0xffffffff)
	c.ConfigWrite(RegBAR0+4, 4, 0xffffffff)
	if c.ConfigRead(RegBAR0, 4) != 0 || c.ConfigRead(RegBAR0+4, 4) != 0 {
		t.Error("VP2P BARs must be hardwired zero (§V-A)")
	}
}

func TestClosedWindowDisabled(t *testing.T) {
	c := NewType1Space("vp2p", Ident{VendorID: VendorIntel})
	// Default state: base 0, limit reads 0xfffff — but base(0) <= limit
	// means "enabled" only if limit != 0... default limit decodes to
	// 0x000fffff with base 0, which hardware treats as a window; real
	// firmware closes windows by setting base > limit:
	c.ConfigWrite(RegMemBase, 2, 0xfff0)
	c.ConfigWrite(RegMemLimit, 2, 0x0000)
	base, limit := BridgeMemWindow(c)
	if WindowEnabled(base, limit) {
		t.Error("base > limit must decode as closed")
	}
}

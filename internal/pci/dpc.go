package pci

// Downstream Port Containment (DPC), PCI-Express extended capability
// 0x1D. A downstream port with DPC enabled reacts to a fatal error on
// its link (surprise-down, error containment trigger) by disabling the
// link and *containing* the failure: the port synthesizes error
// completions for in-flight non-posted requests and discards posted
// writes, so the failure never hangs the fabric above it. Software
// observes the trigger through the DPC Status register, services the
// sub-tree, and releases containment by clearing the sticky Trigger
// Status bit (write-1-to-clear).
//
// The capability models the registers a Linux-class DPC driver
// touches: the control word (trigger enable + interrupt enable), the
// status word (trigger status, trigger reason, interrupt status) and
// the error source ID. The containment data path itself lives in the
// owning port model (internal/pcie's router), which consults Enabled()
// and drives Trigger/OnRelease.

// Offsets within the DPC capability structure.
const (
	DPCCapOff    = 0x04 // DPC Capability register (16-bit, RO)
	DPCCtlOff    = 0x06 // DPC Control register (16-bit)
	DPCStatusOff = 0x08 // DPC Status register (16-bit)
	DPCSourceOff = 0x0a // DPC Error Source ID (16-bit, RO)
	dpcCapSize   = 0x0c
)

// DPC Control register bits.
const (
	// DPCCtlTriggerEnMask are the trigger-enable bits: 00 disabled, 01
	// enabled for fatal errors, 10 enabled for non-fatal and fatal.
	DPCCtlTriggerEnMask = 0x0003
	// DPCCtlIntEn enables the DPC interrupt on trigger.
	DPCCtlIntEn = 1 << 3
)

// DPC Status register bits.
const (
	// DPCStatusTrigger is the sticky containment bit; write-1-to-clear
	// releases containment.
	DPCStatusTrigger = 1 << 0
	// DPCStatusReasonMask holds the trigger reason (bits 2:1).
	DPCStatusReasonMask = 0x0006
	// DPCStatusInterrupt is the interrupt status bit (W1C).
	DPCStatusInterrupt = 1 << 3
)

// DPC trigger reasons (the value stored in DPCStatusReasonMask).
const (
	DPCReasonUnmasked uint16 = 0 // unmasked uncorrectable error
	DPCReasonNonFatal uint16 = 1 // ERR_NONFATAL received
	DPCReasonFatal    uint16 = 2 // ERR_FATAL received (surprise-down)
)

// DPC is the capability handle held by the owning port model. All
// methods are nil-safe so ports without DPC pay a single branch.
type DPC struct {
	cs  *ConfigSpace
	off int

	contained bool
	triggers  uint64
	releases  uint64

	// OnTrigger, if set, is invoked when containment engages, after
	// the status registers are latched — the port uses it to raise the
	// DPC interrupt toward software.
	OnTrigger func(reason uint16)
	// OnRelease, if set, is invoked when software clears the sticky
	// Trigger Status bit — the port uses it to exit containment.
	OnRelease func()
}

// AddDPC appends a DPC extended capability and returns its handle. The
// configuration-space write hook is chained, not replaced, so owners
// that already react to writes (bridge window caching) keep working.
func AddDPC(c *ConfigSpace) *DPC {
	off := AddExtendedCapability(c, ExtCapIDDPC, 1, dpcCapSize)
	c.SetWord(off+DPCCapOff, 0)
	c.SetWriteMask(off+DPCCtlOff, DPCCtlTriggerEnMask|DPCCtlIntEn)
	c.SetW1CMask(off+DPCStatusOff, uint8(DPCStatusTrigger|DPCStatusInterrupt))
	d := &DPC{cs: c, off: off}
	prev := c.OnWrite
	c.OnWrite = func(offset, size int, value uint32) {
		if prev != nil {
			prev(offset, size, value)
		}
		d.onWrite(offset, size)
	}
	return d
}

// Offset returns the capability's configuration-space offset.
func (d *DPC) Offset() int {
	if d == nil {
		return 0
	}
	return d.off
}

// Enabled reports whether software has armed DPC triggering.
func (d *DPC) Enabled() bool {
	if d == nil {
		return false
	}
	return d.cs.Word(d.off+DPCCtlOff)&DPCCtlTriggerEnMask != 0
}

// InterruptEnabled reports whether the DPC interrupt is armed.
func (d *DPC) InterruptEnabled() bool {
	if d == nil {
		return false
	}
	return d.cs.Word(d.off+DPCCtlOff)&DPCCtlIntEn != 0
}

// Contained reports whether the port is currently in containment.
func (d *DPC) Contained() bool { return d != nil && d.contained }

// Triggers returns how many times containment engaged.
func (d *DPC) Triggers() uint64 {
	if d == nil {
		return 0
	}
	return d.triggers
}

// Releases returns how many times software released containment.
func (d *DPC) Releases() uint64 {
	if d == nil {
		return 0
	}
	return d.releases
}

// Reason returns the latched trigger reason.
func (d *DPC) Reason() uint16 {
	if d == nil {
		return 0
	}
	return (d.cs.Word(d.off+DPCStatusOff) & DPCStatusReasonMask) >> 1
}

// Trigger engages containment: the sticky Trigger Status bit, the
// reason and the error source are latched, and the interrupt status
// bit is set if armed. Returns false (and does nothing) when DPC is
// absent, not enabled by software, or already triggered.
func (d *DPC) Trigger(reason uint16, source BDF) bool {
	if d == nil || !d.Enabled() || d.contained {
		return false
	}
	d.contained = true
	d.triggers++
	st := uint16(DPCStatusTrigger) | (reason<<1)&DPCStatusReasonMask
	if d.InterruptEnabled() {
		st |= DPCStatusInterrupt
	}
	d.cs.SetWord(d.off+DPCStatusOff, st)
	d.cs.SetWord(d.off+DPCSourceOff,
		uint16(source.Bus)<<8|uint16(source.Dev&0x1f)<<3|uint16(source.Func&0x7))
	if d.OnTrigger != nil {
		d.OnTrigger(reason)
	}
	return true
}

// onWrite watches configuration writes for the W1C release of the
// sticky Trigger Status bit.
func (d *DPC) onWrite(offset, size int) {
	if !d.contained {
		return
	}
	so := d.off + DPCStatusOff
	if offset > so || offset+size <= so {
		return // the low status byte holds both W1C bits
	}
	if d.cs.Word(so)&DPCStatusTrigger != 0 {
		return
	}
	d.contained = false
	d.releases++
	if d.OnRelease != nil {
		d.OnRelease()
	}
}

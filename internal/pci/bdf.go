// Package pci implements PCI/PCI-Express configuration machinery: the
// bus/device/function identity, ECAM configuration addressing, 4 KiB
// per-function configuration spaces with type-0 (endpoint) and type-1
// (bridge) headers, the PCI/PCI-Express capability chain, and the PCI
// host that routes configuration transactions to registered functions.
//
// This is the substrate §IV of the paper builds on: it is what lets the
// (modeled) enumeration software and device driver detect and configure
// PCI-Express devices "regardless of the physical layer organization".
package pci

import "fmt"

// BDF identifies a PCI function: bus (8 bits), device (5 bits),
// function (3 bits).
type BDF struct {
	Bus  uint8
	Dev  uint8 // 0..31
	Func uint8 // 0..7
}

// NewBDF constructs a BDF, panicking on out-of-range device/function
// numbers (they would alias another function's config space).
func NewBDF(bus, dev, fn uint8) BDF {
	if dev > 31 {
		panic(fmt.Sprintf("pci: device number %d out of range", dev))
	}
	if fn > 7 {
		panic(fmt.Sprintf("pci: function number %d out of range", fn))
	}
	return BDF{Bus: bus, Dev: dev, Func: fn}
}

// String formats as the conventional bb:dd.f.
func (b BDF) String() string { return fmt.Sprintf("%02x:%02x.%d", b.Bus, b.Dev, b.Func) }

// ECAMOffset returns the function's offset inside the ECAM window:
// bus<<20 | device<<15 | function<<12, giving each function 4 KiB of
// configuration space (§III: gem5's PCI host maps 256 MiB at
// 0x30000000 this way).
func (b BDF) ECAMOffset() uint64 {
	return uint64(b.Bus)<<20 | uint64(b.Dev)<<15 | uint64(b.Func)<<12
}

// BDFFromECAM decodes an offset inside the ECAM window back into the
// function identity and the register offset within its space.
func BDFFromECAM(off uint64) (BDF, int) {
	return BDF{
		Bus:  uint8(off >> 20),
		Dev:  uint8(off>>15) & 0x1f,
		Func: uint8(off>>12) & 0x7,
	}, int(off & 0xfff)
}

package pci

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
)

// HostConfig parameterizes the PCI host.
type HostConfig struct {
	// ECAMWindow is the configuration space window the host claims
	// (0x30000000 + 256 MiB on the modeled ARM platform).
	ECAMWindow mem.AddrRange
	// Latency is the config access service latency.
	Latency sim.Tick
}

// Host models gem5's PCI Host (§III): a functional host-to-PCI bridge
// that claims the entire ECAM window. Every PCI function in the system
// — endpoints and the virtual PCI-to-PCI bridges of the root complex
// and switches — registers its configuration space here under its BDF.
// Configuration requests are decoded and forwarded to the matching
// function; requests to absent functions complete with all-ones data,
// which is how enumeration software discovers emptiness.
type Host struct {
	eng  *sim.Engine
	name string
	cfg  HostConfig

	port  *mem.SlavePort
	respQ *mem.SendQueue

	devices map[BDF]ConfigAccessor

	// Stats.
	reads, writes, misses uint64
}

// NewHost creates a PCI host.
func NewHost(eng *sim.Engine, name string, cfg HostConfig) *Host {
	if !cfg.ECAMWindow.Valid() {
		panic("pci: host needs a valid ECAM window")
	}
	h := &Host{eng: eng, name: name, cfg: cfg, devices: make(map[BDF]ConfigAccessor)}
	h.port = mem.NewSlavePort(name+".pio", h)
	h.respQ = mem.NewSendQueue(eng, name+".respq", 0, func(p *mem.Packet) bool {
		return h.port.SendTimingResp(p)
	})
	return h
}

// Port returns the host's slave port (wired to the I/O bus).
func (h *Host) Port() *mem.SlavePort { return h.port }

// Window returns the claimed ECAM range.
func (h *Host) Window() mem.AddrRange { return h.cfg.ECAMWindow }

// Register binds a configuration space to a BDF. Registering the same
// BDF twice is a wiring bug and panics.
func (h *Host) Register(bdf BDF, dev ConfigAccessor) {
	if _, dup := h.devices[bdf]; dup {
		panic(fmt.Sprintf("pci %s: BDF %v registered twice", h.name, bdf))
	}
	h.devices[bdf] = dev
}

// Unregister removes a function from the ECAM decode — the electrical
// consequence of a surprise removal. Subsequent configuration reads of
// the BDF return all-ones and writes are dropped, exactly like any
// absent function. Unregistering an absent BDF is a no-op so removal
// paths can be idempotent.
func (h *Host) Unregister(bdf BDF) {
	delete(h.devices, bdf)
}

// Lookup returns the function registered at bdf, if any.
func (h *Host) Lookup(bdf BDF) (ConfigAccessor, bool) {
	d, ok := h.devices[bdf]
	return d, ok
}

// Functions lists all registered BDFs in ascending order — handy for
// lspci-style tools.
func (h *Host) Functions() []BDF {
	out := make([]BDF, 0, len(h.devices))
	for bdf := range h.devices {
		out = append(out, bdf)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Bus != b.Bus {
			return a.Bus < b.Bus
		}
		if a.Dev != b.Dev {
			return a.Dev < b.Dev
		}
		return a.Func < b.Func
	})
	return out
}

// RecvTimingReq implements mem.SlaveOwner: decode, access, respond.
func (h *Host) RecvTimingReq(_ *mem.SlavePort, pkt *mem.Packet) bool {
	if !h.cfg.ECAMWindow.Contains(pkt.Addr) {
		panic(fmt.Sprintf("pci %s: %v outside ECAM window %v", h.name, pkt, h.cfg.ECAMWindow))
	}
	bdf, reg := BDFFromECAM(h.cfg.ECAMWindow.Offset(pkt.Addr))
	dev, ok := h.devices[bdf]
	switch pkt.Cmd {
	case mem.ReadReq:
		h.reads++
		var v uint32
		if ok {
			v = dev.ConfigRead(reg, pkt.Size)
		} else {
			h.misses++
			v = InvalidData // all-ones: no such function
		}
		putValue(pkt, v)
	case mem.WriteReq:
		h.writes++
		if ok {
			dev.ConfigWrite(reg, pkt.Size, getValue(pkt))
		}
		// Writes to absent functions are silently dropped, as on
		// hardware.
	default:
		panic(fmt.Sprintf("pci %s: unexpected %v", h.name, pkt))
	}
	h.respQ.Push(pkt.MakeResponse(), h.eng.Now()+h.cfg.Latency)
	return true
}

// RecvRespRetry implements mem.SlaveOwner.
func (h *Host) RecvRespRetry(*mem.SlavePort) { h.respQ.RetryReceived() }

// AddrRanges implements mem.RangeProvider: the host claims the whole
// ECAM window.
func (h *Host) AddrRanges(*mem.SlavePort) mem.RangeList {
	return mem.RangeList{h.cfg.ECAMWindow}
}

// Stats returns (config reads, config writes, accesses to absent
// functions).
func (h *Host) Stats() (reads, writes, misses uint64) { return h.reads, h.writes, h.misses }

// ReadConfig performs an immediate (functional) configuration read,
// for tools and tests.
func (h *Host) ReadConfig(bdf BDF, reg, size int) uint32 {
	if dev, ok := h.devices[bdf]; ok {
		return dev.ConfigRead(reg, size)
	}
	return InvalidData & sizeMask(size)
}

// WriteConfig performs an immediate (functional) configuration write.
func (h *Host) WriteConfig(bdf BDF, reg, size int, v uint32) {
	if dev, ok := h.devices[bdf]; ok {
		dev.ConfigWrite(reg, size, v)
	}
}

// putValue stores a little-endian value into the packet's data buffer,
// allocating it when absent.
func putValue(pkt *mem.Packet, v uint32) {
	if pkt.Data == nil {
		pkt.Data = make([]byte, pkt.Size)
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	copy(pkt.Data, buf[:pkt.Size])
}

// getValue extracts the little-endian value a request packet carries.
func getValue(pkt *mem.Packet) uint32 {
	var buf [4]byte
	copy(buf[:pkt.Size], pkt.Data)
	return binary.LittleEndian.Uint32(buf[:])
}

// Value reads the little-endian payload of a completed read response.
func Value(pkt *mem.Packet) uint32 {
	return getValue(pkt)
}

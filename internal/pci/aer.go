package pci

// Advanced Error Reporting: the PCI-Express extended capability
// (region R3) through which a function latches link- and
// transaction-layer errors for software. The simulator's link and root
// complex report into it; the kernel's AER handler walks enumerated
// functions, reads the RW1C status registers, and clears them.

// AER register offsets relative to the capability header.
const (
	AERUncStatusOff  = 0x04 // Uncorrectable Error Status (RW1C)
	AERUncMaskOff    = 0x08 // Uncorrectable Error Mask
	AERUncSevOff     = 0x0c // Uncorrectable Error Severity
	AERCorrStatusOff = 0x10 // Correctable Error Status (RW1C)
	AERCorrMaskOff   = 0x14 // Correctable Error Mask
	AERCapCtlOff     = 0x18 // Advanced Error Capabilities & Control
	AERHeaderLogOff  = 0x1c // Header Log (4 dwords)

	// aerCapSize covers through the root-port registers so ports and
	// endpoints share one layout (matches the pre-existing placeholder).
	aerCapSize = 0x48
)

// Correctable Error Status register bits.
const (
	AERCorrReceiverError  uint32 = 1 << 0
	AERCorrBadTLP         uint32 = 1 << 6
	AERCorrBadDLLP        uint32 = 1 << 7
	AERCorrReplayRollover uint32 = 1 << 8
	AERCorrReplayTimeout  uint32 = 1 << 12
)

// Uncorrectable Error Status register bits.
const (
	AERUncDLProtocol        uint32 = 1 << 4
	AERUncSurpriseDown      uint32 = 1 << 5
	AERUncCompletionTimeout uint32 = 1 << 14
	AERUncUnsupportedReq    uint32 = 1 << 20
)

// aerBitNames maps status bits to the names the kernel log uses.
var aerCorrNames = []struct {
	bit  uint32
	name string
}{
	{AERCorrReceiverError, "ReceiverError"},
	{AERCorrBadTLP, "BadTLP"},
	{AERCorrBadDLLP, "BadDLLP"},
	{AERCorrReplayRollover, "ReplayNumRollover"},
	{AERCorrReplayTimeout, "ReplayTimerTimeout"},
}

var aerUncNames = []struct {
	bit  uint32
	name string
}{
	{AERUncDLProtocol, "DLProtocolError"},
	{AERUncSurpriseDown, "SurpriseDownError"},
	{AERUncCompletionTimeout, "CompletionTimeout"},
	{AERUncUnsupportedReq, "UnsupportedRequest"},
}

// AERCorrectableNames decodes correctable status bits to names.
func AERCorrectableNames(bits uint32) []string {
	var out []string
	for _, e := range aerCorrNames {
		if bits&e.bit != 0 {
			out = append(out, e.name)
		}
	}
	return out
}

// AERUncorrectableNames decodes uncorrectable status bits to names.
func AERUncorrectableNames(bits uint32) []string {
	var out []string
	for _, e := range aerUncNames {
		if bits&e.bit != 0 {
			out = append(out, e.name)
		}
	}
	return out
}

// AER is the device-side handle to an AER extended capability. Error
// sources (the link DLL, the root complex) latch status through it;
// software reads and clears the same registers through config space.
type AER struct {
	cs  *ConfigSpace
	off int

	// Totals survive software clearing the RW1C registers, for stats.
	corrTotal uint64
	uncTotal  uint64
}

// AddAER appends an AER extended capability to the configuration space
// and returns the handle the error paths report into.
func AddAER(c *ConfigSpace) *AER {
	off := AddExtendedCapability(c, ExtCapIDAER, 1, aerCapSize)
	c.MakeW1C(off+AERUncStatusOff, 4)
	c.MakeW1C(off+AERCorrStatusOff, 4)
	c.MakeWritable(off+AERUncMaskOff, 4)
	c.MakeWritable(off+AERUncSevOff, 4)
	c.MakeWritable(off+AERCorrMaskOff, 4)
	return &AER{cs: c, off: off}
}

// Offset returns the capability's offset within the config space.
func (a *AER) Offset() int { return a.off }

// ReportCorrectable latches correctable error status bits. Masking
// only suppresses signaling, never status — matching the spec. Nil-safe
// so components without AER cost nothing.
func (a *AER) ReportCorrectable(bits uint32) {
	if a == nil || bits == 0 {
		return
	}
	a.corrTotal++
	reg := a.off + AERCorrStatusOff
	a.cs.SetDword(reg, a.cs.Dword(reg)|bits)
}

// ReportUncorrectable latches uncorrectable error status bits.
func (a *AER) ReportUncorrectable(bits uint32) {
	if a == nil || bits == 0 {
		return
	}
	a.uncTotal++
	reg := a.off + AERUncStatusOff
	a.cs.SetDword(reg, a.cs.Dword(reg)|bits)
}

// ReportUncorrectableTLP latches uncorrectable error status bits and
// records the offending TLP's packet ID in the Header Log registers
// (the simulator's stand-in for the logged TLP header), so software
// reading the capability can name the exact packet. The log holds the
// first error's ID until software clears the status — first-error
// capture, like the spec's header log.
func (a *AER) ReportUncorrectableTLP(bits uint32, pktID uint64) {
	if a == nil || bits == 0 {
		return
	}
	logged := a.cs.Dword(a.off+AERUncStatusOff) != 0
	a.ReportUncorrectable(bits)
	if !logged && pktID != 0 {
		a.cs.SetDword(a.off+AERHeaderLogOff, uint32(pktID))
		a.cs.SetDword(a.off+AERHeaderLogOff+4, uint32(pktID>>32))
	}
}

// HeaderLogID returns the packet ID captured in the header log (0 if
// none was recorded).
func (a *AER) HeaderLogID() uint64 {
	if a == nil {
		return 0
	}
	return uint64(a.cs.Dword(a.off+AERHeaderLogOff)) |
		uint64(a.cs.Dword(a.off+AERHeaderLogOff+4))<<32
}

// CorrectableStatus returns the live correctable status register.
func (a *AER) CorrectableStatus() uint32 {
	if a == nil {
		return 0
	}
	return a.cs.Dword(a.off + AERCorrStatusOff)
}

// UncorrectableStatus returns the live uncorrectable status register.
func (a *AER) UncorrectableStatus() uint32 {
	if a == nil {
		return 0
	}
	return a.cs.Dword(a.off + AERUncStatusOff)
}

// Totals returns how many correctable and uncorrectable reports have
// been latched over the run, regardless of software clears.
func (a *AER) Totals() (correctable, uncorrectable uint64) {
	if a == nil {
		return 0, 0
	}
	return a.corrTotal, a.uncTotal
}

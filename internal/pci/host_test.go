package pci

import (
	"testing"

	"pciesim/internal/mem"
	"pciesim/internal/sim"
	"pciesim/internal/testdev"
)

const ecamBase = 0x30000000

func newHostRig() (*sim.Engine, *Host, *testdev.Requester) {
	eng := sim.NewEngine()
	h := NewHost(eng, "pcihost", HostConfig{
		ECAMWindow: mem.Range(ecamBase, 256<<20),
		Latency:    50 * sim.Nanosecond,
	})
	req := testdev.NewRequester(eng, "cpu")
	mem.Connect(req.Port(), h.Port())
	return eng, h, req
}

func TestHostRoutesConfigToRegisteredDevice(t *testing.T) {
	eng, h, req := newHostRig()
	nic := NewType0Space("nic", Ident{VendorID: VendorIntel, DeviceID: Device82574L})
	h.Register(NewBDF(1, 0, 0), nic)

	addr := uint64(ecamBase) + NewBDF(1, 0, 0).ECAMOffset() + RegVendorID
	buf := make([]byte, 4)
	req.ReadData(addr, buf)
	eng.Run()
	if got := Value(req.Completions[0].Pkt); got != uint32(Device82574L)<<16|VendorIntel {
		t.Errorf("vendor/device dword = %#x", got)
	}
}

func TestHostAbsentFunctionReadsAllOnes(t *testing.T) {
	eng, _, req := newHostRig()
	addr := uint64(ecamBase) + NewBDF(3, 7, 0).ECAMOffset()
	buf := make([]byte, 4)
	req.ReadData(addr, buf)
	eng.Run()
	if got := Value(req.Completions[0].Pkt); got != InvalidData {
		t.Errorf("absent function read = %#x, want all ones", got)
	}
}

func TestHostWriteReachesDevice(t *testing.T) {
	eng, h, req := newHostRig()
	nic := NewType0Space("nic", Ident{VendorID: VendorIntel, DeviceID: Device82574L})
	h.Register(NewBDF(0, 2, 0), nic)
	addr := uint64(ecamBase) + NewBDF(0, 2, 0).ECAMOffset() + RegCommand
	req.WriteData(addr, []byte{CmdMemEnable | CmdBusMaster, 0})
	eng.Run()
	if got := nic.ConfigRead(RegCommand, 2); got != CmdMemEnable|CmdBusMaster {
		t.Errorf("command after timing write = %#x", got)
	}
}

func TestHostWriteToAbsentFunctionCompletes(t *testing.T) {
	eng, _, req := newHostRig()
	addr := uint64(ecamBase) + NewBDF(9, 0, 0).ECAMOffset()
	req.WriteData(addr, []byte{1, 2, 3, 4})
	eng.Run()
	if len(req.Completions) != 1 {
		t.Fatal("write to absent function must still complete")
	}
}

func TestHostLatency(t *testing.T) {
	eng, h, req := newHostRig()
	h.Register(NewBDF(0, 0, 0), NewType0Space("d", Ident{VendorID: 1}))
	buf := make([]byte, 2)
	req.ReadData(ecamBase, buf)
	eng.Run()
	if got := req.Completions[0].Latency(); got != 50*sim.Nanosecond {
		t.Errorf("config latency %v, want 50ns", got)
	}
}

func TestHostDoubleRegisterPanics(t *testing.T) {
	_, h, _ := newHostRig()
	h.Register(NewBDF(0, 1, 0), NewConfigSpace("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate BDF should panic")
		}
	}()
	h.Register(NewBDF(0, 1, 0), NewConfigSpace("b"))
}

func TestHostFunctionsSorted(t *testing.T) {
	_, h, _ := newHostRig()
	h.Register(NewBDF(2, 0, 0), NewConfigSpace("c"))
	h.Register(NewBDF(0, 3, 1), NewConfigSpace("a2"))
	h.Register(NewBDF(0, 3, 0), NewConfigSpace("a"))
	h.Register(NewBDF(1, 0, 0), NewConfigSpace("b"))
	fns := h.Functions()
	want := []BDF{NewBDF(0, 3, 0), NewBDF(0, 3, 1), NewBDF(1, 0, 0), NewBDF(2, 0, 0)}
	for i := range want {
		if fns[i] != want[i] {
			t.Fatalf("Functions() = %v", fns)
		}
	}
}

func TestHostFunctionalAccess(t *testing.T) {
	_, h, _ := newHostRig()
	d := NewType0Space("d", Ident{VendorID: 0x1234, DeviceID: 0x5678})
	h.Register(NewBDF(4, 0, 0), d)
	if got := h.ReadConfig(NewBDF(4, 0, 0), RegVendorID, 2); got != 0x1234 {
		t.Errorf("functional read = %#x", got)
	}
	if got := h.ReadConfig(NewBDF(5, 0, 0), RegVendorID, 2); got != 0xffff {
		t.Errorf("functional read of absent = %#x, want 0xffff", got)
	}
	h.WriteConfig(NewBDF(4, 0, 0), RegIntLine, 1, 0x20)
	if got := h.ReadConfig(NewBDF(4, 0, 0), RegIntLine, 1); got != 0x20 {
		t.Errorf("functional write lost: %#x", got)
	}
	h.WriteConfig(NewBDF(5, 0, 0), RegIntLine, 1, 0x20) // must not panic
}

func TestHostStats(t *testing.T) {
	eng, h, req := newHostRig()
	h.Register(NewBDF(0, 0, 0), NewConfigSpace("d"))
	buf := make([]byte, 4)
	req.ReadData(ecamBase, buf)
	req.ReadData(ecamBase+uint64(NewBDF(8, 0, 0).ECAMOffset()), make([]byte, 4))
	req.WriteData(ecamBase+4, []byte{0, 0})
	eng.Run()
	r, w, m := h.Stats()
	if r != 2 || w != 1 || m != 1 {
		t.Errorf("stats = %d reads %d writes %d misses", r, w, m)
	}
}

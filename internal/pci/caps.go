package pci

import "fmt"

// Capability IDs (PCI/PCI-Express capability space, region R2).
const (
	CapIDPowerManagement = 0x01
	CapIDMSI             = 0x05
	CapIDPCIExpress      = 0x10
	CapIDMSIX            = 0x11
)

// Extended capability IDs (PCI-Express extended space, region R3).
const (
	ExtCapIDAER          = 0x0001
	ExtCapIDSerialNumber = 0x0003
	ExtCapIDDPC          = 0x001d
)

// PCI-Express device/port types, encoded in bits 7:4 of the PCI-Express
// Capabilities Register (the paper configures these to present VP2Ps as
// root ports or switch ports to the enumeration software).
const (
	PCIePortEndpoint         = 0x0
	PCIePortRootPort         = 0x4
	PCIePortSwitchUpstream   = 0x5
	PCIePortSwitchDownstream = 0x6
)

// Link speed codes in the Link Capabilities register.
const (
	LinkSpeedGen1 = 1 // 2.5 GT/s
	LinkSpeedGen2 = 2 // 5 GT/s
	LinkSpeedGen3 = 3 // 8 GT/s
)

// Offsets within the PCI-Express capability structure (paper Fig. 5).
const (
	PCIeCapRegOffset     = 0x00 // 16-bit, after the id/next header bytes at +2
	PCIeDevCapOffset     = 0x04
	PCIeDevCtlOffset     = 0x08
	PCIeDevStatusOffset  = 0x0a
	PCIeLinkCapOffset    = 0x0c
	PCIeLinkCtlOffset    = 0x10
	PCIeLinkStatusOffset = 0x12
	PCIeSlotCapOffset    = 0x14
	PCIeSlotCtlOffset    = 0x18
	PCIeSlotStatusOffset = 0x1a
	PCIeRootCtlOffset    = 0x1c
	PCIeRootStatusOffset = 0x20
	pcieCapSize          = 0x24
)

// Slot Capabilities register bits (hot-plug).
const (
	SlotCapHotPlugSurprise = 1 << 5 // device may be removed without notice
	SlotCapHotPlugCapable  = 1 << 6
)

// Slot Status register bits (hot-plug).
const (
	SlotStatusPDC   = 1 << 3 // Presence Detect Changed (W1C)
	SlotStatusPDS   = 1 << 6 // Presence Detect State (RO)
	SlotStatusDLLSC = 1 << 8 // Data Link Layer State Changed (W1C)
)

// SetSlotPresence updates a slot's Presence Detect State and latches
// Presence Detect Changed; capOff is the PCI-Express capability offset
// of a slot-implemented port.
func SetSlotPresence(c *ConfigSpace, capOff int, present bool) {
	st := c.Word(capOff + PCIeSlotStatusOffset)
	was := st&SlotStatusPDS != 0
	if present {
		st |= SlotStatusPDS
	} else {
		st &^= SlotStatusPDS
	}
	if was != present {
		st |= SlotStatusPDC
	}
	c.SetWord(capOff+PCIeSlotStatusOffset, st)
}

// SetSlotLinkStateChanged latches the Data Link Layer State Changed
// bit in a slot's status register.
func SetSlotLinkStateChanged(c *ConfigSpace, capOff int) {
	c.SetWord(capOff+PCIeSlotStatusOffset,
		c.Word(capOff+PCIeSlotStatusOffset)|SlotStatusDLLSC)
}

// SetLinkStatus rewrites the PCI-Express capability's Link Status
// current speed/width fields — the port model calls it after a link
// retrain changes the negotiated parameters.
func SetLinkStatus(c *ConfigSpace, capOff int, speed, width uint8) {
	c.SetWord(capOff+PCIeLinkStatusOffset, uint16(speed&0xf)|uint16(width&0x3f)<<4)
}

// capAllocBase is where capability structures are placed. 0x40 is the
// first free byte after the standard header; the paper's NIC places its
// chain here (PM → MSI → PCIe → MSI-X).
const capAllocBase = 0x40

// AddCapability appends a capability structure of the given byte size to
// the space's capability chain and returns its offset. The first
// capability sets the header's capability pointer and the status
// register's capability-list bit.
func AddCapability(c *ConfigSpace, id uint8, size int) int {
	if size < 2 {
		panic("pci: capability smaller than its own header")
	}
	cur := &c.caps
	if cur.nextFree == 0 {
		cur.nextFree = capAllocBase
	}
	off := (cur.nextFree + 3) &^ 3 // dword-align
	if off+size > 0x100 {
		panic(fmt.Sprintf("pci %s: capability chain overflows the 256B space", c.Name()))
	}
	c.SetByte(off, id)
	c.SetByte(off+1, 0)
	if cur.lastNext == 0 {
		c.SetByte(RegCapPtr, uint8(off))
		c.SetWord(RegStatus, c.Word(RegStatus)|StatusCapList)
	} else {
		c.SetByte(cur.lastNext, uint8(off))
	}
	cur.lastNext = off + 1
	cur.nextFree = off + size
	return off
}

// AddPowerManagementCap appends a PM capability. Per the paper the
// capability is present but inert: gem5 has no PM support, so the
// power-state bits are read-only and the device stays in D0.
func AddPowerManagementCap(c *ConfigSpace) int {
	off := AddCapability(c, CapIDPowerManagement, 8)
	c.SetWord(off+2, 0x0003) // PM spec version 1.2, no PME support
	// PMCSR at off+4 stays read-only zero: D0, PME disabled.
	return off
}

// AddMSICap appends an MSI capability whose enable bit is read-only
// zero — "we disable these capabilities by appropriately setting
// register values... the device driver is forced to register a legacy
// interrupt handler instead of MSI or MSI-X".
func AddMSICap(c *ConfigSpace) int {
	off := AddCapability(c, CapIDMSI, 14)
	c.SetWord(off+2, 0x0000) // message control: enable bit 0, read-only
	// Address/data registers writable so the driver can program them
	// even though the enable never sticks.
	c.MakeWritable(off+4, 8)
	c.SetWriteMask(off+2, 0x00)
	c.SetWriteMask(off+3, 0x00)
	return off
}

// AddMSICapRW appends an MSI capability whose enable bit software CAN
// set — the platform extension beyond the paper's gem5 baseline. The
// 32-bit message address lives at +4 and the 16-bit message data at +8.
func AddMSICapRW(c *ConfigSpace) int {
	off := AddMSICap(c)
	c.SetWriteMask(off+2, 0x01) // enable bit writable
	return off
}

// AddMSIXCap appends an MSI-X capability with its enable bit read-only
// zero, mirroring the MSI treatment.
func AddMSIXCap(c *ConfigSpace, tableSize uint16) int {
	off := AddCapability(c, CapIDMSIX, 12)
	c.SetWord(off+2, tableSize-1) // message control: table size N-1, enable RO 0
	c.SetDword(off+4, 0x0)        // table offset/BIR
	c.SetDword(off+8, 0x0)        // PBA offset/BIR
	return off
}

// PCIeCapConfig parameterizes the PCI-Express capability structure.
type PCIeCapConfig struct {
	PortType  uint8 // PCIePort*
	LinkSpeed uint8 // LinkSpeed*
	LinkWidth uint8 // number of lanes
	// SlotImplemented marks ports connected to a slot (region C2 in
	// Fig. 5 is only implemented by such ports).
	SlotImplemented bool
}

// AddPCIeCap appends the PCI-Express capability structure of Fig. 5.
// Every PCI-Express function implements region C1; ports attached to a
// slot add C2 (slot registers); root ports add C3 (root registers).
// Returns the capability's offset.
func AddPCIeCap(c *ConfigSpace, cfg PCIeCapConfig) int {
	size := PCIeSlotCapOffset // C1 only
	if cfg.SlotImplemented {
		size = PCIeRootCtlOffset // C1+C2
	}
	if cfg.PortType == PCIePortRootPort {
		size = pcieCapSize // C1+C2+C3
	}
	off := AddCapability(c, CapIDPCIExpress, size)

	// PCI-Express Capabilities Register: version 2, port type, slot.
	capReg := uint16(2) | uint16(cfg.PortType)<<4
	if cfg.SlotImplemented {
		capReg |= 1 << 8
	}
	c.SetWord(off+2, capReg)

	// Device Capabilities: max payload 128B (encoding 0).
	c.SetDword(off+PCIeDevCapOffset, 0)
	c.MakeWritable(off+PCIeDevCtlOffset, 2)

	// Link Capabilities: speed, width, port number 0.
	linkCap := uint32(cfg.LinkSpeed&0xf) | uint32(cfg.LinkWidth&0x3f)<<4
	c.SetDword(off+PCIeLinkCapOffset, linkCap)
	c.MakeWritable(off+PCIeLinkCtlOffset, 2)
	// Link Status: current speed and width mirror the capabilities.
	c.SetWord(off+PCIeLinkStatusOffset, uint16(cfg.LinkSpeed&0xf)|uint16(cfg.LinkWidth&0x3f)<<4)

	if size > PCIeSlotCapOffset {
		// Slots are surprise-hot-plug capable; PDC and DLLSC in the
		// status register are W1C, and Presence Detect State is set by
		// the port model when a device is seated.
		c.SetDword(off+PCIeSlotCapOffset, SlotCapHotPlugSurprise|SlotCapHotPlugCapable)
		c.MakeWritable(off+PCIeSlotCtlOffset, 2)
		c.SetW1CMask(off+PCIeSlotStatusOffset, uint8(SlotStatusPDC))
		c.SetW1CMask(off+PCIeSlotStatusOffset+1, uint8(SlotStatusDLLSC>>8))
	}
	if size > PCIeRootCtlOffset {
		c.MakeWritable(off+PCIeRootCtlOffset, 2)
	}
	return off
}

// ParsePCIeCap decodes the capability's port type, link speed and width
// from a configuration space, given the capability's offset.
func ParsePCIeCap(c *ConfigSpace, off int) (portType, speed, width uint8) {
	capReg := c.Word(off + 2)
	linkCap := c.Dword(off + PCIeLinkCapOffset)
	return uint8(capReg>>4) & 0xf, uint8(linkCap & 0xf), uint8(linkCap>>4) & 0x3f
}

// FindCapability walks the capability chain for the given ID and
// returns its offset, or 0 if absent. This is the walk device drivers
// perform.
func FindCapability(c ConfigAccessor, id uint8) int {
	status := c.ConfigRead(RegStatus, 2)
	if status&StatusCapList == 0 {
		return 0
	}
	ptr := int(c.ConfigRead(RegCapPtr, 1)) &^ 3
	for hops := 0; ptr >= capAllocBase && hops < 48; hops++ {
		if int(c.ConfigRead(ptr, 1)) == int(id) {
			return ptr
		}
		ptr = int(c.ConfigRead(ptr+1, 1)) &^ 3
	}
	return 0
}

// CapabilityChain returns the IDs in chain order, as a driver would see
// them.
func CapabilityChain(c ConfigAccessor) []uint8 {
	var ids []uint8
	status := c.ConfigRead(RegStatus, 2)
	if status&StatusCapList == 0 {
		return nil
	}
	ptr := int(c.ConfigRead(RegCapPtr, 1)) &^ 3
	for hops := 0; ptr >= capAllocBase && hops < 48; hops++ {
		ids = append(ids, uint8(c.ConfigRead(ptr, 1)))
		ptr = int(c.ConfigRead(ptr+1, 1)) &^ 3
	}
	return ids
}

// extCapBase is where PCI-Express extended capabilities begin: "a
// PCI-Express device can implement extended capability structures
// starting from offset 0x100 of the configuration space (R3)".
const extCapBase = 0x100

// AddExtendedCapability appends an extended capability header (16-bit
// ID, 4-bit version, 12-bit next pointer) plus size-4 body bytes and
// returns its offset.
func AddExtendedCapability(c *ConfigSpace, id uint16, version uint8, size int) int {
	if size < 4 {
		panic("pci: extended capability smaller than its header")
	}
	cur := &c.caps
	var off int
	if cur.extTail == 0 {
		off = extCapBase
	} else {
		prev := c.Dword(cur.extTail)
		// Place after the previous capability; patch its next pointer.
		off = (cur.nextFreeExt() + 3) &^ 3
		c.SetDword(cur.extTail, prev|uint32(off)<<20)
	}
	if off+size > ConfigSpaceSize {
		panic(fmt.Sprintf("pci %s: extended capability overflows the 4KB space", c.Name()))
	}
	c.SetDword(off, uint32(id)|uint32(version&0xf)<<16)
	cur.extTail = off
	cur.extSize = size
	return off
}

func (cur *capCursor) nextFreeExt() int { return cur.extTail + cur.extSize }

// capCursor tracks the capability allocation point and chain tails of a
// configuration space.
type capCursor struct {
	nextFree int
	lastNext int // offset of the "next capability pointer" byte to patch
	extTail  int // offset of the last extended capability header
	extSize  int // size of the last extended capability
}

// WalkExtendedCapabilities returns the extended capability IDs in chain
// order. A device without an R3 region (first dword zero) returns nil.
func WalkExtendedCapabilities(c ConfigAccessor) []uint16 {
	var ids []uint16
	off := extCapBase
	for hops := 0; off != 0 && hops < 64; hops++ {
		hdr := c.ConfigRead(off, 4)
		if hdr == 0 || hdr == InvalidData {
			break
		}
		ids = append(ids, uint16(hdr))
		off = int(hdr >> 20)
	}
	return ids
}

package pci

// Ident collects the identity registers shared by endpoint and bridge
// headers.
type Ident struct {
	VendorID   uint16
	DeviceID   uint16
	ClassCode  uint32 // 24-bit class/subclass/prog-if
	RevisionID uint8
	// InterruptPin is 0 for none, 1..4 for INTA..INTD.
	InterruptPin uint8
}

// Well-known identity values used by the reproduction (§IV, §V-A).
const (
	VendorIntel = 0x8086

	// Device82574L is the Intel 82574L GbE controller. The paper sets
	// the 8254x-pcie model's device ID to 0x10D3 "to invoke the probe
	// function of the e1000e driver".
	Device82574L = 0x10d3

	// DeviceWildcatPort0..2 are the Intel Wildcat Point chipset root
	// port IDs the paper programs into its three VP2Ps.
	DeviceWildcatPort0 = 0x9c90
	DeviceWildcatPort1 = 0x9c92
	DeviceWildcatPort2 = 0x9c94

	// ClassNetworkEthernet / ClassBridgePCI are standard class codes.
	ClassNetworkEthernet = 0x020000
	ClassBridgePCI       = 0x060400
	ClassStorageIDE      = 0x010180
	// ClassSystemOther marks the synthetic test endpoint.
	ClassSystemOther = 0x088000

	// DeviceTestDev identifies the synthetic test endpoint used by
	// arbitrary topologies as an inert BAR target.
	DeviceTestDev = 0x7e57
)

// NewType0Space builds an endpoint (header type 0) configuration space:
// region R1 of the paper's Figure 4, ready for capabilities (R2/R3) and
// BARs to be attached.
func NewType0Space(name string, id Ident) *ConfigSpace {
	c := NewConfigSpace(name)
	c.SetWord(RegVendorID, id.VendorID)
	c.SetWord(RegDeviceID, id.DeviceID)
	c.SetByte(RegRevisionID, id.RevisionID)
	c.SetByte(RegClassCode, uint8(id.ClassCode))
	c.SetByte(RegClassCode+1, uint8(id.ClassCode>>8))
	c.SetByte(RegClassCode+2, uint8(id.ClassCode>>16))
	c.SetByte(RegHeaderType, HeaderType0)
	c.SetByte(RegIntPin, id.InterruptPin)

	// Software-writable registers.
	c.SetWriteMask(RegCommand, uint8(CmdIOEnable|CmdMemEnable|CmdBusMaster))
	c.SetWriteMask(RegCommand+1, uint8(CmdIntxDisable>>8))
	c.MakeWritable(RegCacheLine, 1)
	c.MakeWritable(RegLatTimer, 1)
	c.MakeWritable(RegIntLine, 1)
	return c
}

// NewType1Space builds a PCI-to-PCI bridge (header type 1) configuration
// space laid out per the paper's Figure 7, with the bus number, I/O,
// memory and prefetchable window registers software-writable and
// initialized to zero as §V-A prescribes.
func NewType1Space(name string, id Ident) *ConfigSpace {
	c := NewConfigSpace(name)
	c.SetWord(RegVendorID, id.VendorID)
	c.SetWord(RegDeviceID, id.DeviceID)
	c.SetByte(RegRevisionID, id.RevisionID)
	c.SetByte(RegClassCode, uint8(id.ClassCode))
	c.SetByte(RegClassCode+1, uint8(id.ClassCode>>8))
	c.SetByte(RegClassCode+2, uint8(id.ClassCode>>16))
	c.SetByte(RegHeaderType, HeaderType1)
	c.SetByte(RegIntPin, id.InterruptPin)

	c.SetWriteMask(RegCommand, uint8(CmdIOEnable|CmdMemEnable|CmdBusMaster))
	c.SetWriteMask(RegCommand+1, uint8(CmdIntxDisable>>8))
	c.MakeWritable(RegCacheLine, 1)
	c.MakeWritable(RegIntLine, 1)

	// Bus number registers: "These are configured by software and we
	// initialize them to 0s."
	c.MakeWritable(RegPrimaryBus, 3)

	// I/O window. The ARM platform's PCI I/O window lives at
	// 0x2f000000, above 16 bits, so the upper registers are implemented
	// too ("we utilize both I/O Base Upper and I/O Limit Upper").
	c.MakeWritable(RegIOBase, 2)
	c.SetByte(RegIOBase, 0x01) // 32-bit I/O addressing supported
	c.SetByte(RegIOLimit, 0x01)
	c.SetWriteMask(RegIOBase, 0xf0) // low nibble is the capability field
	c.SetWriteMask(RegIOLimit, 0xf0)
	c.MakeWritable(RegIOBaseUpper, 4)

	// Memory (MMIO) window.
	c.MakeWritable(RegMemBase, 4)
	c.SetWriteMask(RegMemBase, 0xf0) // bits 3:0 read-only zero
	c.SetWriteMask(RegMemLimit+0, 0xf0)
	c.SetWriteMask(RegMemBase+1, 0xff)
	c.SetWriteMask(RegMemLimit+1, 0xff)

	// Prefetchable window (unused by the platform but implemented).
	c.MakeWritable(RegPrefBase, 4)
	c.SetWriteMask(RegPrefBase, 0xf0)
	c.SetWriteMask(RegPrefLimit, 0xf0)
	c.MakeWritable(RegPrefBaseUpper, 8)

	c.MakeWritable(RegBridgeControl, 2)

	// Type 1 headers only have BARs 0 and 1; the VP2Ps leave them
	// unimplemented (read as zero).
	c.AttachBAR(0, NewMemBAR(0))
	c.AttachBAR(1, NewMemBAR(0))
	return c
}

// BridgeBusNumbers reads the three bus number registers.
func BridgeBusNumbers(c *ConfigSpace) (primary, secondary, subordinate uint8) {
	return c.Byte(RegPrimaryBus), c.Byte(RegSecondaryBus), c.Byte(RegSubordinateBus)
}

// BridgeIOWindow decodes the bridge's I/O base/limit window, including
// the 32-bit upper registers, into an address range. The decoded base
// uses bits 15:12 from the base register and 31:16 from the upper
// register; the limit's low 12 bits read as 0xfff.
func BridgeIOWindow(c *ConfigSpace) (base, limit uint64) {
	base = uint64(c.Byte(RegIOBase)&0xf0)<<8 | uint64(c.Word(RegIOBaseUpper))<<16
	limit = uint64(c.Byte(RegIOLimit)&0xf0)<<8 | uint64(c.Word(RegIOLimitUpper))<<16 | 0xfff
	return base, limit
}

// BridgeMemWindow decodes the bridge's memory base/limit window. The
// registers hold bits 31:20; the limit's low 20 bits read as 0xfffff.
func BridgeMemWindow(c *ConfigSpace) (base, limit uint64) {
	base = uint64(c.Word(RegMemBase)&0xfff0) << 16
	limit = uint64(c.Word(RegMemLimit)&0xfff0)<<16 | 0xfffff
	return base, limit
}

// WindowEnabled reports whether a decoded base/limit pair describes a
// non-empty window (hardware treats base > limit as "closed").
func WindowEnabled(base, limit uint64) bool { return base <= limit && limit != 0 }

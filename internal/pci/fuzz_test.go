package pci

import "testing"

// fuzzSpace builds a realistically populated endpoint configuration
// space: header, BARs, the full capability chain, and the AER extended
// capability — every register class the decode paths distinguish.
func fuzzSpace() *ConfigSpace {
	c := NewType0Space("fuzz", Ident{
		VendorID:     VendorIntel,
		DeviceID:     Device82574L,
		ClassCode:    ClassNetworkEthernet,
		RevisionID:   0x01,
		InterruptPin: 1,
	})
	c.AttachBAR(0, NewMemBAR(128*1024))
	c.AttachBAR(2, NewIOBAR(32))
	AddPowerManagementCap(c)
	AddMSICapRW(c)
	AddPCIeCap(c, PCIeCapConfig{
		PortType: PCIePortEndpoint, LinkSpeed: LinkSpeedGen2, LinkWidth: 1,
	})
	AddMSIXCap(c, 5)
	AddAER(c)
	AddExtendedCapability(c, ExtCapIDSerialNumber, 1, 0x0c)
	return c
}

// FuzzConfigSpaceRead drives arbitrary (but contract-respecting)
// config-space accesses: any aligned 1/2/4-byte access anywhere in the
// 4 KiB space must not panic, reads must be stable, a dword read must
// decompose into its bytes, and a write must not break any of that.
func FuzzConfigSpaceRead(f *testing.F) {
	f.Add(uint16(RegVendorID), byte(2), uint32(0))
	f.Add(uint16(RegBAR0), byte(4), uint32(0xffffffff)) // BAR sizing probe
	f.Add(uint16(RegCommand), byte(2), uint32(CmdMemEnable|CmdBusMaster))
	f.Add(uint16(RegCapPtr), byte(1), uint32(0))
	f.Add(uint16(0x100), byte(4), uint32(0)) // extended space (AER header)
	f.Add(uint16(0xffc), byte(4), uint32(0xdeadbeef))
	f.Fuzz(func(t *testing.T, off uint16, sizeSel byte, wval uint32) {
		size := []int{1, 2, 4}[int(sizeSel)%3]
		// Clamp into the space and align so the access honors the
		// documented contract (in range, no dword crossing).
		offset := int(off) % ConfigSpaceSize
		offset &^= size - 1

		c := fuzzSpace()
		v1 := c.ConfigRead(offset, size)
		v2 := c.ConfigRead(offset, size)
		if v1 != v2 {
			t.Fatalf("read at %#x+%d not stable: %#x then %#x", offset, size, v1, v2)
		}
		if size == 4 {
			var composed uint32
			for i := 3; i >= 0; i-- {
				composed = composed<<8 | c.ConfigRead(offset+i, 1)
			}
			if composed != v1 {
				t.Fatalf("dword read at %#x = %#x, bytes compose to %#x", offset, v1, composed)
			}
		}
		// A masked write anywhere must leave the space consistent:
		// reads still stable and decomposable.
		c.ConfigWrite(offset, size, wval)
		w1 := c.ConfigRead(offset, size)
		w2 := c.ConfigRead(offset, size)
		if w1 != w2 {
			t.Fatalf("read-after-write at %#x+%d not stable: %#x then %#x", offset, size, w1, w2)
		}
	})
}

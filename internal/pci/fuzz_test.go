package pci

import "testing"

// fuzzSpace builds a realistically populated endpoint configuration
// space: header, BARs, the full capability chain, and the AER extended
// capability — every register class the decode paths distinguish.
func fuzzSpace() *ConfigSpace {
	c := NewType0Space("fuzz", Ident{
		VendorID:     VendorIntel,
		DeviceID:     Device82574L,
		ClassCode:    ClassNetworkEthernet,
		RevisionID:   0x01,
		InterruptPin: 1,
	})
	c.AttachBAR(0, NewMemBAR(128*1024))
	c.AttachBAR(2, NewIOBAR(32))
	AddPowerManagementCap(c)
	AddMSICapRW(c)
	AddPCIeCap(c, PCIeCapConfig{
		PortType: PCIePortEndpoint, LinkSpeed: LinkSpeedGen2, LinkWidth: 1,
	})
	AddMSIXCap(c, 5)
	AddAER(c)
	AddExtendedCapability(c, ExtCapIDSerialNumber, 1, 0x0c)
	return c
}

// fuzzPortSpace builds a downstream switch port the way the topology
// builder does: type-1 header, PCI-Express capability with slot
// registers, and the DPC extended capability — the exact surface the
// kernel recovery driver decodes.
func fuzzPortSpace() (*ConfigSpace, *DPC, int) {
	c := NewType1Space("fuzzport", Ident{
		VendorID:  VendorIntel,
		DeviceID:  DeviceWildcatPort0,
		ClassCode: ClassBridgePCI,
	})
	capOff := AddPCIeCap(c, PCIeCapConfig{
		PortType: PCIePortSwitchDownstream, LinkSpeed: LinkSpeedGen2, LinkWidth: 4,
		SlotImplemented: true,
	})
	d := AddDPC(c)
	return c, d, capOff
}

// FuzzDPCCapDecode round-trips the DPC and slot hot-plug registers
// through arbitrary config-space traffic: whatever software writes,
// the capability must stay decodable, trigger state must only change
// through the architected paths (Trigger and the W1C status clear),
// and presence detect must stay hardware-owned.
func FuzzDPCCapDecode(f *testing.F) {
	f.Add(uint16(0), byte(2), uint32(DPCCtlTriggerEnMask|DPCCtlIntEn), byte(2), false)
	f.Add(uint16(DPCStatusOff), byte(2), uint32(DPCStatusTrigger|DPCStatusInterrupt), byte(0), true)
	f.Add(uint16(DPCSourceOff), byte(4), uint32(0xffffffff), byte(1), false)
	f.Add(uint16(0x300), byte(1), uint32(0xff), byte(2), true)
	f.Fuzz(func(t *testing.T, off uint16, sizeSel byte, wval uint32, reasonSel byte, present bool) {
		c, d, capOff := fuzzPortSpace()
		// The extended-capability walk the kernel performs must land on
		// the handle's offset.
		dpcOff := 0
		for off, hops := extCapBase, 0; off != 0 && hops < 64; hops++ {
			hdr := c.ConfigRead(off, 4)
			if hdr == 0 || hdr == InvalidData {
				break
			}
			if uint16(hdr) == ExtCapIDDPC {
				dpcOff = off
				break
			}
			off = int(hdr >> 20)
		}
		if dpcOff == 0 || dpcOff != d.Offset() {
			t.Fatalf("DPC capability not findable: walk=%#x handle=%#x", dpcOff, d.Offset())
		}

		// Arm DPC the way the recovery driver does, then trigger.
		c.ConfigWrite(dpcOff+DPCCtlOff, 2, uint32(DPCCtlTriggerEnMask|DPCCtlIntEn))
		reason := uint16(reasonSel) % 3
		src := NewBDF(3, uint8(off)%32, uint8(sizeSel)%8)
		if !d.Trigger(reason, src) {
			t.Fatal("armed DPC must trigger")
		}
		if !d.Contained() || d.Reason() != reason {
			t.Fatalf("trigger did not latch: contained=%v reason=%d want %d",
				d.Contained(), d.Reason(), reason)
		}
		SetSlotPresence(c, capOff, present)

		// One arbitrary aligned write anywhere in the space.
		size := []int{1, 2, 4}[int(sizeSel)%3]
		offset := int(off) % ConfigSpaceSize
		offset &^= size - 1
		c.ConfigWrite(offset, size, wval)

		// The write may only have released containment by clearing the
		// sticky Trigger bit through the W1C path.
		trigBit := c.ConfigRead(dpcOff+DPCStatusOff, 2)&DPCStatusTrigger != 0
		if d.Contained() != trigBit {
			t.Fatalf("containment state %v disagrees with Trigger Status bit %v",
				d.Contained(), trigBit)
		}
		// Presence Detect State is hardware-owned: no software write
		// moves it.
		pds := c.ConfigRead(capOff+PCIeSlotStatusOffset, 2)&SlotStatusPDS != 0
		if pds != present {
			t.Fatalf("software write moved PDS to %v, hardware set %v", pds, present)
		}

		// The architected release always works: W1C both status bits.
		c.ConfigWrite(dpcOff+DPCStatusOff, 2, uint32(DPCStatusTrigger|DPCStatusInterrupt))
		if d.Contained() {
			t.Fatal("W1C of Trigger Status must release containment")
		}
		if d.Triggers() != 1 {
			t.Fatalf("triggers = %d, want exactly 1", d.Triggers())
		}
		// Reads stay stable after the dust settles.
		if a, b := c.ConfigRead(dpcOff+DPCCapOff, 4), c.ConfigRead(dpcOff+DPCCapOff, 4); a != b {
			t.Fatalf("DPC cap read not stable: %#x then %#x", a, b)
		}
	})
}

// FuzzConfigSpaceRead drives arbitrary (but contract-respecting)
// config-space accesses: any aligned 1/2/4-byte access anywhere in the
// 4 KiB space must not panic, reads must be stable, a dword read must
// decompose into its bytes, and a write must not break any of that.
func FuzzConfigSpaceRead(f *testing.F) {
	f.Add(uint16(RegVendorID), byte(2), uint32(0))
	f.Add(uint16(RegBAR0), byte(4), uint32(0xffffffff)) // BAR sizing probe
	f.Add(uint16(RegCommand), byte(2), uint32(CmdMemEnable|CmdBusMaster))
	f.Add(uint16(RegCapPtr), byte(1), uint32(0))
	f.Add(uint16(0x100), byte(4), uint32(0)) // extended space (AER header)
	f.Add(uint16(0xffc), byte(4), uint32(0xdeadbeef))
	f.Fuzz(func(t *testing.T, off uint16, sizeSel byte, wval uint32) {
		size := []int{1, 2, 4}[int(sizeSel)%3]
		// Clamp into the space and align so the access honors the
		// documented contract (in range, no dword crossing).
		offset := int(off) % ConfigSpaceSize
		offset &^= size - 1

		c := fuzzSpace()
		v1 := c.ConfigRead(offset, size)
		v2 := c.ConfigRead(offset, size)
		if v1 != v2 {
			t.Fatalf("read at %#x+%d not stable: %#x then %#x", offset, size, v1, v2)
		}
		if size == 4 {
			var composed uint32
			for i := 3; i >= 0; i-- {
				composed = composed<<8 | c.ConfigRead(offset+i, 1)
			}
			if composed != v1 {
				t.Fatalf("dword read at %#x = %#x, bytes compose to %#x", offset, v1, composed)
			}
		}
		// A masked write anywhere must leave the space consistent:
		// reads still stable and decomposable.
		c.ConfigWrite(offset, size, wval)
		w1 := c.ConfigRead(offset, size)
		w2 := c.ConfigRead(offset, size)
		if w1 != w2 {
			t.Fatalf("read-after-write at %#x+%d not stable: %#x then %#x", offset, size, w1, w2)
		}
	})
}

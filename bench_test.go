package pciesim

import (
	"fmt"
	"testing"
	"time"

	"pciesim/internal/topo"
)

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§VI). Each benchmark runs the corresponding
// experiment and reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced series next to the harness cost. The dd blocks
// run 64x scaled by default (see Options); cmd/ddbench regenerates the
// curves at any scale, including the paper's full 64-512 MiB blocks.

func benchOptions() Options {
	return Options{Scale: 64, BlockMB: []int{64, 128, 256, 512}}
}

// reportEventRate is the one place every engine benchmark reports its
// throughput metric, so the unit stays consistent across serial and
// parallel runs.
func reportEventRate(b *testing.B, events uint64) {
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

func reportSeries(b *testing.B, fig Figure) {
	for _, s := range fig.Series {
		p := s.Points[len(s.Points)-1]
		b.ReportMetric(p.Gbps, s.Label+"_Gbps")
		if p.ReplayPct > 0.05 {
			b.ReportMetric(p.ReplayPct, s.Label+"_replay%")
		}
	}
}

// BenchmarkFig9a regenerates Fig 9(a): dd throughput, physical
// reference vs simulated platform across switch latencies.
func BenchmarkFig9a(b *testing.B) {
	b.ReportAllocs()
	var fig Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = RunFig9a(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

// BenchmarkFig9b regenerates Fig 9(b): link width sweep.
func BenchmarkFig9b(b *testing.B) {
	b.ReportAllocs()
	var fig Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = RunFig9b(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

// BenchmarkFig9c regenerates Fig 9(c): replay buffer sweep at x8.
func BenchmarkFig9c(b *testing.B) {
	b.ReportAllocs()
	var fig Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = RunFig9c(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

// BenchmarkFig9d regenerates Fig 9(d): port buffer sweep at x8.
func BenchmarkFig9d(b *testing.B) {
	b.ReportAllocs()
	var fig Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = RunFig9d(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

// BenchmarkTableII regenerates Table II: MMIO read latency vs root
// complex latency.
func BenchmarkTableII(b *testing.B) {
	b.ReportAllocs()
	var rows []TableIIRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = RunTableII(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MMIOLatencyNs, fmt.Sprintf("rc%dns_mmio_ns", r.RCLatencyNs))
	}
}

// BenchmarkSimulatorEventRate measures the raw simulation speed of the
// full platform under the dd workload — the harness cost metric.
func BenchmarkSimulatorEventRate(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	var simSeconds float64
	for i := 0; i < b.N; i++ {
		s := New(DefaultConfig())
		if _, err := s.RunDD(1 << 20); err != nil {
			b.Fatal(err)
		}
		events += s.Eng.Fired()
		simSeconds += s.Eng.Now().Seconds()
	}
	reportEventRate(b, events)
	b.ReportMetric(simSeconds/b.Elapsed().Seconds(), "simsec/s")
}

// BenchmarkSimulatorEventRateParallel measures the conservative
// parallel engine against the serial baseline on a wide fabric: three
// x4 switches fanning out to 18 disks, all running dd concurrently.
// Each sub-benchmark is the same simulation at a different -par; the
// stats dumps are byte-identical across them (TestParallelStatsMatchSerial),
// so events/s is the only number that may move. Fired counts come
// from Engine.TotalFired — the root's own counter covers only its
// domain.
func BenchmarkSimulatorEventRateParallel(b *testing.B) {
	ts, err := ParseTopo("switch:x4(disk*6),switch:x4(disk*6),switch:x4(disk*6)")
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			b.ReportAllocs()
			opt := benchOptions()
			opt.Par = par
			cfg := opt.scaledTopoConfig()
			var events uint64
			for i := 0; i < b.N; i++ {
				sys, err := topo.Build(ts, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sys.RunDDAll(1 << 20); err != nil {
					b.Fatal(err)
				}
				events += sys.Eng.TotalFired()
			}
			reportEventRate(b, events)
		})
	}
}

// BenchmarkLinkSaturation measures a single link's modeled throughput
// under a saturating DMA write stream for each generation and width —
// the microbenchmark behind Table I's overhead accounting.
func BenchmarkLinkSaturation(b *testing.B) {
	for _, gen := range []Generation{Gen1, Gen2, Gen3} {
		for _, w := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%v_x%d", gen, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cfg := DefaultConfig()
					cfg.Gen = gen
					cfg.UplinkWidth = w
					cfg.DiskLinkWidth = w
					s := New(cfg)
					if _, err := s.RunDD(256 << 10); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationPostedWrites contrasts the paper's non-posted write
// model with the posted-write extension it names as future work.
func BenchmarkAblationPostedWrites(b *testing.B) {
	for _, posted := range []bool{false, true} {
		name := "nonposted"
		if posted {
			name = "posted"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var gbps float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.DD.StartupOverhead /= 64
				cfg.Disk.PostedWrites = posted
				s := New(cfg)
				res, err := s.RunDD(1 << 20)
				if err != nil {
					b.Fatal(err)
				}
				gbps = res.ThroughputGbps()
			}
			b.ReportMetric(gbps, "Gbps")
		})
	}
}

// BenchmarkObservabilityOverhead measures the cost of the stats and
// trace layers against the instrumented-but-idle baseline: "sampled"
// arms the periodic counter sampler, "tracemasked" installs a tracer
// with every category off (the guard cost), "traced" records every
// category, "spansarmed" turns on the per-segment latency attribution
// without a tracer (histogram observes only), and "profiled" arms the
// engine self-profiler. The first two are required to stay within
// noise (~5%) of the baseline, "spansarmed" within 10% (asserted by
// TestArmedSpanOverheadBudget); "traced" shows the price of full
// event capture.
func BenchmarkObservabilityOverhead(b *testing.B) {
	variants := []struct {
		name string
		arm  func(s *System)
	}{
		{"baseline", func(*System) {}},
		{"sampled", func(s *System) { s.Eng.SampleEvery(10 * Microsecond) }},
		{"tracemasked", func(s *System) { s.Eng.SetTracer(NewTracer(0)) }},
		{"traced", func(s *System) { s.Eng.SetTracer(NewTracer(TraceAll)) }},
		{"spansarmed", func(s *System) { s.Eng.ArmSpans() }},
		{"profiled", func(s *System) { s.Eng.Profile() }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.DD.StartupOverhead /= 64
				s := New(cfg)
				v.arm(s)
				if _, err := s.RunDD(1 << 20); err != nil {
					b.Fatal(err)
				}
				events += s.Eng.Fired()
			}
			reportEventRate(b, events)
		})
	}
}

// TestArmedSpanOverheadBudget asserts the span-attribution budget:
// arming spans (the BenchmarkSimulatorEventRate workload with
// ArmSpans on) must cost at most 10% of the bare event rate. Runs are
// interleaved and the fastest of several is compared on each side, so
// host scheduling noise cancels rather than accumulates.
func TestArmedSpanOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	run := func(armed bool) time.Duration {
		cfg := DefaultConfig()
		cfg.DD.StartupOverhead /= 64
		s := New(cfg)
		if armed {
			s.Eng.ArmSpans()
		}
		start := time.Now()
		if _, err := s.RunDD(1 << 20); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Warm both paths, then interleave timed runs.
	run(false)
	run(true)
	best := func(d, n time.Duration) time.Duration {
		if n < d {
			return n
		}
		return d
	}
	base, armed := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < 5; i++ {
		base = best(base, run(false))
		armed = best(armed, run(true))
	}
	if float64(armed) > float64(base)*1.10 {
		t.Errorf("armed span tracing costs %.1f%% (base %v, armed %v), budget is 10%%",
			(float64(armed)/float64(base)-1)*100, base, armed)
	}
}

// BenchmarkAblationErrorRate sweeps injected TLP corruption on the
// disk link, measuring the NAK/replay protocol's overhead curve.
func BenchmarkAblationErrorRate(b *testing.B) {
	for _, rate := range []float64{0, 0.001, 0.01, 0.05} {
		b.Run(fmt.Sprintf("err%.3f", rate), func(b *testing.B) {
			b.ReportAllocs()
			var gbps float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.DD.StartupOverhead /= 64
				cfg.DiskLinkErrorRate = rate
				cfg.Seed = 11
				s := New(cfg)
				res, err := s.RunDD(1 << 20)
				if err != nil {
					b.Fatal(err)
				}
				gbps = res.ThroughputGbps()
			}
			b.ReportMetric(gbps, "Gbps")
		})
	}
}

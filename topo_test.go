package pciesim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pciesim/internal/topo"
)

// TestTopoGoldenEnumeration pins the enumerated shape of every canned
// topology: bus/dev/fn assignment, BAR placement, and bridge windows,
// in lspci-style text under testdata/golden/topo. Regenerate with
// `go test -run TestTopoGoldenEnumeration -update` and review the diff
// like code — any enumeration regression is byte-visible here.
func TestTopoGoldenEnumeration(t *testing.T) {
	for _, name := range topo.CannedNames() {
		t.Run(name, func(t *testing.T) {
			sys, err := topo.Build(topo.Canned(name), topo.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := sys.DumpEnumeration(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", "topo", name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("enumeration dump differs from %s (-update after intentional changes)\n%s",
					path, firstDiff(buf.Bytes(), want))
			}
		})
	}
}

// TestTopoValidationMatchesGolden is the byte-for-byte conformance
// check of the topology builder: building the validation platform
// directly through internal/topo (bypassing the internal/system
// wrapper) and running the dd-baseline workload must reproduce the
// exact golden stats dump that the hardwired platform pinned — every
// counter, every histogram bucket, every tick.
func TestTopoValidationMatchesGolden(t *testing.T) {
	cfg := topo.DefaultConfig()
	cfg.DD.StartupOverhead /= 16
	sys, err := topo.Build(topo.Validation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunDD(4 << 20); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Eng.Stats().WriteJSON(&buf, uint64(sys.Eng.Now())); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "dd-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("topo-built validation platform diverges from the golden dd-baseline dump:\n%s",
			firstDiff(buf.Bytes(), want))
	}
}

// TestFanout8Fairness: eight disks contending for one x4 uplink must
// share it by backpressure, not starvation. Two documented bounds:
//
//   - Fairness: the per-disk completed-sector counts, sampled when the
//     first dd task finishes (while all eight were still contending),
//     stay within 1.30x of each other (max/min). Measured: ~1.04-1.06;
//     round-robin port arbitration plus identical workloads keeps the
//     spread small, and 1.30 leaves room for timing-level jitter from
//     future calibration changes without letting starvation through.
//   - Aggregate throughput: between 3x and 8x the single-disk-
//     under-the-same-switch baseline. The lower bound proves the
//     switch actually overlaps the eight flows (measured ~4.3x, where
//     the shared x4 uplink + DRAM drain saturate); the upper bound is
//     the no-contention ceiling.
func TestFanout8Fairness(t *testing.T) {
	cfg := topo.DefaultConfig()
	cfg.DD.StartupOverhead /= 16
	sys, err := topo.Build(topo.Fanout8(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunDDAll(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FairnessSpread(); got > 1.30 {
		t.Errorf("fairness spread %.3f exceeds the documented 1.30 bound (sectors at first exit: %v)",
			got, res.SectorsAtFirstExit)
	}
	for i, s := range res.SectorsAtFirstExit {
		if s == 0 {
			t.Errorf("disk %d completed no sectors while others ran: starvation", i)
		}
	}

	base, err := topo.Parse("switch:x4(disk)")
	if err != nil {
		t.Fatal(err)
	}
	bsys, err := topo.Build(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := bsys.RunDD(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	single := bres.ThroughputGbps()
	agg := res.AggregateThroughputGbps()
	if agg < 3*single || agg > 8*single {
		t.Errorf("aggregate %.3f Gb/s outside [3x, 8x] of single-disk baseline %.3f Gb/s", agg, single)
	}
}

// TestP2PTurnaroundLatency is the acceptance check for switch-level
// peer-to-peer routing: disk-to-NIC DMA under a shared switch must be
// measurably faster with turnaround at the switch than when forced to
// reflect off the root complex. Tolerance: the reflection path adds
// two extra link traversals plus RC processing per chunk, which at
// this calibration is >=2% of end-to-end command latency (measured:
// ~5%); the simulation is deterministic, so the margin is stable.
func TestP2PTurnaroundLatency(t *testing.T) {
	run := func(noP2P bool) (p50 float64, sys *topo.System) {
		cfg := topo.DefaultConfig()
		cfg.NoP2P = noP2P
		sys, err := topo.Build(topo.P2P(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.RunP2P(16, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res.CmdLat.P50.Seconds(), sys
	}
	turn, tsys := run(false)
	refl, rsys := run(true)

	// The routing counters prove which path the chunks took.
	if tsys.Turnarounds() == 0 || tsys.Reflections() != 0 {
		t.Errorf("turnaround run: %d turnarounds, %d reflections; want >0 and 0",
			tsys.Turnarounds(), tsys.Reflections())
	}
	if rsys.Turnarounds() != 0 || rsys.Reflections() == 0 {
		t.Errorf("reflection run: %d turnarounds, %d reflections; want 0 and >0",
			rsys.Turnarounds(), rsys.Reflections())
	}
	if turn >= refl {
		t.Fatalf("p50 with turnaround (%.3gs) not below reflection (%.3gs)", turn, refl)
	}
	if ratio := refl / turn; ratio < 1.02 {
		t.Errorf("reflection/turnaround p50 ratio %.4f below the stated 1.02 tolerance", ratio)
	}
}

package pciesim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// spanObsConfig is the faulted platform used by the span tests: the
// same corruption/drop rates and dead-link window as faultObsConfig,
// i.e. the worst case for begin/end bookkeeping (flushed queues,
// abandoned replays, timed-out completions).
func spanObsConfig(t *testing.T) Config {
	t.Helper()
	return faultObsConfig(t)
}

// TestSpanTraceBalanced pins the pair-at-completion contract: no
// matter how a faulted run mangles the packet flow, every recorded
// span begin has exactly one end — aborted segments emit nothing
// rather than an orphaned begin.
func TestSpanTraceBalanced(t *testing.T) {
	cfg := spanObsConfig(t)
	s := New(cfg)
	tr := NewTracer(TraceSpan)
	s.Eng.SetTracer(tr)
	s.Eng.ArmSpans()
	if _, err := s.RunDD(256 << 10); err != nil {
		t.Fatal(err)
	}
	s.Eng.Run()

	begins, ends := tr.SpanBalance()
	if begins == 0 {
		t.Fatal("armed span run recorded no spans")
	}
	if begins != ends {
		t.Fatalf("unbalanced spans: %d begins, %d ends", begins, ends)
	}

	// The Chrome dump must be well-formed JSON whose span events carry
	// the async-nestable phases and pair up by count.
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	var b, e int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "b":
			b++
		case "e":
			e++
		}
	}
	if b != begins || e != ends {
		t.Errorf("JSON phases b=%d e=%d, want %d/%d", b, e, begins, ends)
	}

	// The faulted link must actually exercise the interesting segments.
	for _, seg := range []string{"txq-wait", "wire", "replay-wait"} {
		found := false
		for _, ev := range doc.TraceEvents {
			if ev.Name == seg {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("trace records no %q spans", seg)
		}
	}
}

// TestMaskedSpanEmissionAllocFree pins the guard cost of a masked
// tracer at the emission sites: Span/Begin/End on a tracer without the
// span category must not allocate. (The full-run pin — an installed
// all-masked tracer adds zero allocations across the whole TLP path,
// span guards included — is TestTracingDisabledCostsNoAllocations.)
func TestMaskedSpanEmissionAllocFree(t *testing.T) {
	tr := NewTracer(TraceAll &^ TraceSpan)
	for _, probe := range []struct {
		name string
		fn   func()
	}{
		{"Span", func() { tr.Span(10, 20, "comp", "seg", 7, "") }},
		{"Begin", func() { tr.Begin(10, "comp", "seg", 7, "") }},
		{"End", func() { tr.End(20, "comp", "seg", 7, "") }},
	} {
		if allocs := testing.AllocsPerRun(100, probe.fn); allocs != 0 {
			t.Errorf("masked %s allocates %.0f objects per call, want 0", probe.name, allocs)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("masked tracer recorded %d events", tr.Len())
	}
}

// TestUnarmedSpansDumpIdentical proves the seg.* histograms stay out
// of the stats dump unless spans are armed: a run with a masked tracer
// installed dumps byte-identically to a bare run, and an armed run
// differs only by seg.* additions.
func TestUnarmedSpansDumpIdentical(t *testing.T) {
	dump := func(arm func(*System)) []byte {
		cfg := DefaultConfig()
		cfg.DD.StartupOverhead /= 64
		s := New(cfg)
		arm(s)
		if _, err := s.RunDD(256 << 10); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := s.Eng.Stats().WriteJSON(&b, uint64(s.Eng.Now())); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	bare := dump(func(*System) {})
	masked := dump(func(s *System) { s.Eng.SetTracer(NewTracer(TraceAll &^ TraceSpan)) })
	if !bytes.Equal(bare, masked) {
		t.Error("masked-tracer run dumps differently from a bare run")
	}
	if bytes.Contains(bare, []byte(`"seg.`)) {
		t.Error("unarmed dump contains seg.* histograms")
	}
	armed := dump(func(s *System) { s.Eng.ArmSpans() })
	if !bytes.Contains(armed, []byte(`"seg.wire"`)) {
		t.Error("armed dump missing seg.wire histogram")
	}
}

// TestProfilerCountsDeterministic runs the same faulted scenario twice
// with the self-profiler armed and requires the count-only table —
// the reproducible half of the profile — to be byte-identical.
func TestProfilerCountsDeterministic(t *testing.T) {
	table := func() ([]byte, uint64) {
		s := New(spanObsConfig(t))
		prof := s.Eng.Profile()
		if _, err := s.RunDD(256 << 10); err != nil {
			t.Fatal(err)
		}
		s.Eng.Run()
		var b bytes.Buffer
		if err := prof.WriteTable(&b, 0, false); err != nil {
			t.Fatal(err)
		}
		return b.Bytes(), s.Eng.Fired()
	}
	a, firedA := table()
	b, firedB := table()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed profiles differ:\n%s\nvs\n%s", a, b)
	}
	if firedA != firedB {
		t.Fatalf("fired counts differ: %d vs %d", firedA, firedB)
	}
	if !bytes.Contains(a, []byte("engine profile")) || !bytes.Contains(a, []byte("by component:")) {
		t.Errorf("profile table missing sections:\n%s", a)
	}
	if bytes.Contains(a, []byte("wall")) {
		t.Errorf("count-only table leaks wall-clock columns:\n%s", a)
	}
}

// TestFigLatShape is the acceptance assertion of the attribution
// tentpole: starving the completion credit pool must measurably shift
// attribution from wire time into fc-stall, and must cost throughput.
func TestFigLatShape(t *testing.T) {
	check := func(jobs int) LatFigure {
		fig, err := RunFigLat(Options{Scale: 64, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		return fig
	}
	fig := check(1)

	if fig.Baseline.Total == 0 || fig.Starved.Total == 0 {
		t.Fatalf("empty attribution: baseline=%d starved=%d", fig.Baseline.Total, fig.Starved.Total)
	}
	baseStall, starvedStall := fig.Baseline.Share("fc-stall"), fig.Starved.Share("fc-stall")
	if starvedStall < baseStall+0.01 {
		t.Errorf("starving credits must shift ≥1%% of attribution into fc-stall: base=%.4f starved=%.4f",
			baseStall, starvedStall)
	}
	if w := fig.Starved.Share("wire"); w >= fig.Baseline.Share("wire") {
		t.Errorf("wire share must shrink when stalls grow: base=%.4f starved=%.4f",
			fig.Baseline.Share("wire"), w)
	}
	if fig.Starved.Gbps >= fig.Baseline.Gbps {
		t.Errorf("starved run must lose throughput: base=%.3f starved=%.3f Gbps",
			fig.Baseline.Gbps, fig.Starved.Gbps)
	}

	// Attribution is a simulation artifact, so it is reproducible at any
	// worker count.
	par := check(2)
	if par.Baseline.Total != fig.Baseline.Total || par.Starved.Total != fig.Starved.Total {
		t.Errorf("attribution differs between jobs=1 and jobs=2: %d/%d vs %d/%d",
			fig.Baseline.Total, fig.Starved.Total, par.Baseline.Total, par.Starved.Total)
	}

	txt, csv := fig.Format(), fig.CSV()
	if !strings.Contains(txt, "fc-stall") || !strings.Contains(txt, "throughput:") {
		t.Errorf("Format output:\n%s", txt)
	}
	if !strings.HasPrefix(csv, "figure,segment,baseline_us,baseline_share,starved_us,starved_share\n") ||
		!strings.Contains(csv, "figlat,fc-stall,") {
		t.Errorf("CSV output:\n%s", csv)
	}
}

// TestStatsStreamNDJSON drives the streaming sink during a run and
// checks the wire format: one JSON object per line, monotonically
// increasing ticks, every registered series present in each snapshot.
func TestStatsStreamNDJSON(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DD.StartupOverhead /= 64
	s := New(cfg)
	s.Eng.SampleEvery(100 * Microsecond)
	var buf bytes.Buffer
	s.Eng.Stats().Sampler().StreamTo(&buf)
	if _, err := s.RunDD(256 << 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Eng.Stats().Sampler().StreamErr(); err != nil {
		t.Fatal(err)
	}

	var lastTick uint64
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var snap struct {
			Tick   uint64            `json:"tick"`
			Values map[string]uint64 `json:"values"`
		}
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines+1, err, sc.Text())
		}
		if lines > 0 && snap.Tick <= lastTick {
			t.Fatalf("ticks not increasing: %d after %d", snap.Tick, lastTick)
		}
		lastTick = snap.Tick
		if _, ok := snap.Values["disk.chunks"]; !ok {
			t.Fatalf("snapshot missing disk.chunks series: %s", sc.Text())
		}
		lines++
	}
	if lines < 2 {
		t.Fatalf("stream emitted %d snapshots, want several", lines)
	}
}

// TestStatsCSVSeriesRows pins the satellite fix: the sampler
// time-series lands in the CSV dump, one row per (series, sample).
func TestStatsCSVSeriesRows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DD.StartupOverhead /= 64
	s := New(cfg)
	s.Eng.SampleEvery(100 * Microsecond)
	if _, err := s.RunDD(256 << 10); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := s.Eng.Stats().WriteCSV(&b, uint64(s.Eng.Now())); err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "series,") {
			continue
		}
		rows++
		f := strings.Split(line, ",")
		if len(f) != 4 {
			t.Fatalf("malformed series row: %q", line)
		}
	}
	if rows == 0 {
		t.Fatal("CSV dump carries no series rows despite SampleEvery")
	}
	if !strings.Contains(b.String(), "series,disk.chunks,") {
		t.Error("CSV series rows missing disk.chunks")
	}
}

// TestParseTraceCategoriesUnknown pins the error UX: an unknown
// category must name itself and list every valid name.
func TestParseTraceCategoriesUnknown(t *testing.T) {
	_, err := ParseTraceCategories("tlp,bogus")
	if err == nil {
		t.Fatal("unknown category accepted")
	}
	msg := err.Error()
	for _, want := range []string{`"bogus"`, "valid names:", "span", "tlp", "all"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	names := TraceCategoryNames()
	if len(names) == 0 || names[len(names)-1] != "all" {
		t.Errorf("TraceCategoryNames() = %v, want category list ending in \"all\"", names)
	}
}

// TestEngineCountersRegistered pins the satellite: the engine's own
// internals surface in the stats registry next to the components.
func TestEngineCountersRegistered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DD.StartupOverhead /= 64
	s := New(cfg)
	if _, err := s.RunDD(256 << 10); err != nil {
		t.Fatal(err)
	}
	s.Eng.Run() // drain, so sim.pending must read zero
	r := s.Eng.Stats()
	fired, ok := r.CounterValue("sim.fired")
	if !ok || fired != s.Eng.Fired() {
		t.Errorf("sim.fired = %d (ok=%v), want %d", fired, ok, s.Eng.Fired())
	}
	if pending, ok := r.CounterValue("sim.pending"); !ok || pending != 0 {
		t.Errorf("sim.pending = %d (ok=%v), want 0 after drain", pending, ok)
	}
	if recycled, ok := r.CounterValue("sim.recycled"); !ok || recycled == 0 {
		t.Errorf("sim.recycled = %d (ok=%v), want nonzero", recycled, ok)
	}
}

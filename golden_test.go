package pciesim

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pciesim/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden stats dumps")

// goldenCases are the pinned full-platform runs. Each builds a system,
// drives a workload, and dumps the complete stats registry; the JSON is
// compared byte-for-byte against testdata/golden. The dump covers every
// instrumented component (fabric, cache, DRAM, kernel, pools), so any
// unintended behavioral drift — an event fired at a different tick, a
// packet taking a different path, a leak — shows up as a diff.
var goldenCases = []struct {
	name string
	run  func(domains int) (*System, error)
}{
	{"dd-baseline", func(domains int) (*System, error) {
		cfg := DefaultConfig()
		cfg.DD.StartupOverhead /= 16
		cfg.Domains = domains
		sys := New(cfg)
		_, err := sys.RunDD(4 << 20)
		return sys, err
	}},
	{"dd-faulted", func(domains int) (*System, error) {
		cfg := DefaultConfig()
		cfg.DD.StartupOverhead /= 16
		cfg.Domains = domains
		rates := FaultRates{TLPCorrupt: 1e-3, DLLPCorrupt: 1e-3, Drop: 5e-4}
		cfg.DiskLinkFault = &FaultPlan{
			Seed: 7,
			Up:   FaultProfile{Rates: rates},
			Down: FaultProfile{Rates: rates},
		}
		cfg.CompletionTimeout = 100 * Microsecond
		cfg.DiskCmdTimeout = 2 * Millisecond
		cfg.DiskDMATimeout = 500 * Microsecond
		sys := New(cfg)
		if _, err := sys.RunDD(4 << 20); err != nil {
			return nil, err
		}
		sys.Eng.Run() // drain stragglers, like the error sweep does
		return sys, nil
	}},
	{"sweep-x8", func(domains int) (*System, error) {
		// The congested Fig 9(b) point: x8 links overrun the DRAM drain
		// rate, so replays and timeouts are part of the pinned state.
		cfg := DefaultConfig()
		cfg.DD.StartupOverhead /= 16
		cfg.Domains = domains
		cfg.UplinkWidth = 8
		cfg.DiskLinkWidth = 8
		sys := New(cfg)
		_, err := sys.RunDD(4 << 20)
		return sys, err
	}},
}

// TestGoldenDumps pins the simulator's observable behavior: same
// binary, same config, same seed must reproduce the stats dump to the
// byte. Regenerate with `go test -run TestGoldenDumps -update` after an
// intentional behavior change, and review the diff like code.
func TestGoldenDumps(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := tc.run(0)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := sys.Eng.Stats().WriteJSON(&buf, uint64(sys.Eng.Now())); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("stats dump differs from %s (-update after intentional changes);\n got %d bytes, want %d\n%s",
					path, buf.Len(), len(want), firstDiff(buf.Bytes(), want))
			}
		})
	}
}

// TestGoldenDumpsParallel re-runs every golden case on the 4-domain
// conservative parallel engine and compares against the same pinned
// serial dumps: the parallel engine's contract is byte-identical
// observable behavior, so it gets no golden files of its own. (The
// faulted case pins the disk subtree and partitions the rest; the
// fallback path is part of what this pins down.)
func TestGoldenDumpsParallel(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := tc.run(4)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := sys.Eng.Stats().WriteJSON(&buf, uint64(sys.Eng.Now())); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", tc.name+".json")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run TestGoldenDumps with -update first)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("-par 4 stats dump differs from the serial golden %s;\n got %d bytes, want %d\n%s",
					path, buf.Len(), len(want), firstDiff(buf.Bytes(), want))
			}
		})
	}
}

// firstDiff locates the first divergent line for a readable failure.
func firstDiff(got, want []byte) string {
	g, w := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(g) && i < len(w); i++ {
		if !bytes.Equal(g[i], w[i]) {
			return fmt.Sprintf("first diff at line %d:\n got: %s\nwant: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("dumps diverge in length: %d vs %d lines", len(g), len(w))
}

// TestParallelEquivalence proves the tentpole's core claim: fanning a
// sweep across workers changes nothing observable. Every per-run stats
// dump and the assembled figure must be byte-identical between -jobs 1
// and -jobs 8.
func TestParallelEquivalence(t *testing.T) {
	sweep := func(jobs int) (Figure, map[string][]byte) {
		dumps := make(map[string][]byte)
		opt := Options{
			Scale:   256,
			BlockMB: []int{64, 128},
			Jobs:    jobs,
			ObserveDone: func(eng *sim.Engine, label string) error {
				var buf bytes.Buffer
				if err := eng.Stats().WriteJSON(&buf, uint64(eng.Now())); err != nil {
					return err
				}
				dumps[label] = buf.Bytes()
				return nil
			},
		}
		fig, err := RunFig9b(opt)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return fig, dumps
	}

	serialFig, serialDumps := sweep(1)
	parallelFig, parallelDumps := sweep(8)

	if !reflect.DeepEqual(serialFig, parallelFig) {
		t.Errorf("figure differs between jobs=1 and jobs=8:\n%v\n%v", serialFig, parallelFig)
	}
	if len(serialDumps) != len(parallelDumps) {
		t.Fatalf("run counts differ: %d vs %d", len(serialDumps), len(parallelDumps))
	}
	for label, want := range serialDumps {
		got, ok := parallelDumps[label]
		if !ok {
			t.Errorf("parallel sweep missing run %q", label)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("run %q: stats dump differs between jobs=1 and jobs=8", label)
		}
	}
}

// TestCampaignEquivalence: the Monte-Carlo campaign is deterministic in
// every field at any worker count.
func TestCampaignEquivalence(t *testing.T) {
	opt := Options{Scale: 256, BlockMB: []int{64}}
	serial := opt
	serial.Jobs = 1
	parallel := opt
	parallel.Jobs = 4
	a, err := RunFaultCampaign(4, 1e-3, serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaultCampaign(4, 1e-3, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("campaign results differ between jobs=1 and jobs=4:\n%+v\n%+v", a, b)
	}
}

// TestPacketPoolLeakCheck: a drained, fault-free run returns every
// pooled packet — Live() is the leak detector the pool exists for.
func TestPacketPoolLeakCheck(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DD.StartupOverhead /= 64
	sys := New(cfg)
	if _, err := sys.RunDD(1 << 20); err != nil {
		t.Fatal(err)
	}
	sys.Eng.Run() // drain everything in flight
	st := sys.PktPool.Stats()
	if live := st.Live(); live != 0 {
		t.Fatalf("packet pool leaked %d packets (allocs=%d reuses=%d releases=%d)",
			live, st.Allocs, st.Reuses, st.Releases)
	}
	if st.Reuses == 0 {
		t.Fatal("packet pool never reused a packet; pooling is not wired")
	}
	if rec := sys.Eng.Recycled(); rec == 0 {
		t.Fatal("event free list never recycled an event")
	}
}

package pciesim

import (
	"testing"
)

// Flow-control tests at the public-API level: the link-level credit
// machinery is covered in internal/pcie; these exercise the assembled
// platform where all three classes (posted MMIO writes, non-posted
// reads, DMA completions) share each link's pools.

// TestFCMinimalCreditsDeadlockFree is the ISSUE's deadlock-freedom
// criterion: with the smallest legal pool — one header credit per class
// on every link — a full dd write (DMA reads + completions + MMIO + the
// interrupt path) must still run to completion, and must keep doing so
// while the fault campaign corrupts and drops packets (forcing replays,
// which retransmit against already-consumed credits).
func TestFCMinimalCreditsDeadlockFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		rate float64
	}{
		{"clean", 0},
		{"faulted", 0.02},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Credits = CreditConfig{PostedHdr: 1, NonPostedHdr: 1, CplHdr: 1}
			cfg.Seed = 7
			if tc.rate > 0 {
				cfg.DiskLinkFault = faultPlanWithDrops(tc.rate)
				cfg.UplinkFault = faultPlanWithDrops(tc.rate)
			}
			s := New(cfg)
			res, err := s.RunDDWrite(256 << 10)
			if err != nil {
				t.Fatal(err)
			}
			if res.Bytes != 256<<10 || res.Errors != 0 {
				t.Fatalf("dd under minimal credits: %+v", res)
			}
			// The single-credit pools must have been the bottleneck, not
			// silently bypassed.
			if s.DiskLink.Up().Stats().FCStallsCpl == 0 {
				t.Error("one Cpl header credit must stall the completion stream")
			}
			// Reads exercise the posted direction the same way.
			if _, err := s.RunDD(128 << 10); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// faultPlanWithDrops builds a per-direction corruption+drop+UpdateFC-drop
// profile at the given rate.
func faultPlanWithDrops(rate float64) *FaultPlan {
	prof := FaultProfile{Rates: FaultRates{
		TLPCorrupt:   rate,
		DLLPCorrupt:  rate,
		Drop:         rate / 2,
		UpdateFCDrop: rate,
	}}
	return &FaultPlan{Up: prof, Down: prof}
}

// TestFCConfigThroughput sanity-checks the public credit plumbing: a
// generously-credited platform matches the legacy infinite-credit one
// within a small flow-control DLLP overhead.
func TestFCConfigThroughput(t *testing.T) {
	legacy := New(DefaultConfig())
	lres, err := legacy.RunDD(512 << 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Credits = UniformCredits(16)
	fc := New(cfg)
	fres, err := fc.RunDD(512 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := fres.ThroughputGbps() / lres.ThroughputGbps(); ratio < 0.85 || ratio > 1.001 {
		t.Errorf("credited/legacy throughput = %.3f, want just under 1 (DLLP overhead only)", ratio)
	}
	if fc.DiskLink.Up().Stats().UpdateFCTx == 0 {
		t.Error("credited link must return UpdateFC DLLPs")
	}
}

// storage-dd reproduces the paper's core validation workload (§VI-A)
// as a library user would: sweep dd block sizes on two disk-link
// widths and compare against the analytical physical reference.
package main

import (
	"fmt"
	"log"

	"pciesim"
	"pciesim/internal/sim"
)

func main() {
	blocks := []int{1, 2, 4, 8} // MiB; scaled-down stand-ins for 64-512 MiB
	phys := pciesim.DefaultPhysConfig()
	phys.StartupOverhead /= 64

	fmt.Printf("%-10s %12s %12s %12s\n", "block(MB)", "phys(Gb/s)", "x1(Gb/s)", "x4(Gb/s)")
	for _, mb := range blocks {
		row := []float64{phys.DDThroughputGbps(uint64(mb) << 20)}
		for _, width := range []int{1, 4} {
			cfg := pciesim.DefaultConfig()
			cfg.DiskLinkWidth = width
			// Keep the startup/block ratio matched to the full-size
			// experiment (see Options.Scale).
			cfg.DD.StartupOverhead /= 64
			sys := pciesim.New(cfg)
			res, err := sys.RunDD(uint64(mb) << 20)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, res.ThroughputGbps())
		}
		fmt.Printf("%-10d %12.3f %12.3f %12.3f\n", mb, row[0], row[1], row[2])
	}

	// The switch latency barely matters next to bandwidth — the
	// paper's Fig 9(a) point.
	fmt.Println("\nswitch latency sensitivity at 4MB, x1 disk link:")
	for _, ns := range []int{50, 100, 150} {
		cfg := pciesim.DefaultConfig()
		cfg.DD.StartupOverhead /= 64
		cfg.SwitchLatency = sim.Tick(ns) * sim.Nanosecond
		sys := pciesim.New(cfg)
		res, err := sys.RunDD(4 << 20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  switch=%3dns: %.3f Gb/s\n", ns, res.ThroughputGbps())
	}
}

// topology-sweep uses the model for what the paper's title promises —
// future system exploration: how does the I/O throughput of the same
// platform respond to PCI-Express generation and width, and where does
// the interconnect stop being the bottleneck?
package main

import (
	"fmt"
	"log"

	"pciesim"
)

func main() {
	const blockMB = 2
	fmt.Println("dd throughput (Gb/s) for the disk behind a switch, by link generation and width")
	fmt.Printf("%-8s", "")
	widths := []int{1, 2, 4, 8}
	for _, w := range widths {
		fmt.Printf("%10s", fmt.Sprintf("x%d", w))
	}
	fmt.Println()
	for _, gen := range []pciesim.Generation{pciesim.Gen1, pciesim.Gen2, pciesim.Gen3} {
		fmt.Printf("%-8v", gen)
		for _, w := range widths {
			cfg := pciesim.DefaultConfig()
			cfg.DD.StartupOverhead /= 64
			cfg.Gen = gen
			cfg.UplinkWidth = w
			cfg.DiskLinkWidth = w
			sys := pciesim.New(cfg)
			res, err := sys.RunDD(blockMB << 20)
			if err != nil {
				log.Fatal(err)
			}
			mark := ""
			if st := sys.Uplink.Down().Stats(); st.ReplayRate() > 0.05 {
				mark = "*" // double-digit replay: fabric congested
			}
			fmt.Printf("%9.2f%s", res.ThroughputGbps(), mark)
			if mark == "" {
				fmt.Print(" ")
			}
		}
		fmt.Println()
	}
	fmt.Println("\n* = >5% of upstream TLPs replayed: the link outruns the")
	fmt.Println("    platform's DMA drain and collapses into replay timeouts —")
	fmt.Println("    wider is not faster once buffers saturate (the paper's x8 lesson).")
}

// Quickstart: build the paper's validated platform, boot it (PCI
// enumeration + driver probes over the simulated fabric), and run one
// dd block read through root complex, switch and links.
package main

import (
	"fmt"
	"log"

	"pciesim"
)

func main() {
	// The calibrated baseline: Gen2 fabric, x4 root-port-to-switch
	// link, x1 switch-to-disk link, 150ns root complex and switch.
	cfg := pciesim.DefaultConfig()
	// The demo moves a 4 MiB block instead of the paper's 64 MiB;
	// scale dd's fixed startup cost to match (see Options.Scale).
	cfg.DD.StartupOverhead /= 16
	sys := pciesim.New(cfg)

	topo, err := sys.Boot()
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	fmt.Printf("enumerated %d PCI functions across %d buses\n", len(topo.All), topo.Buses)
	for _, d := range topo.Endpoints() {
		fmt.Printf("  endpoint %v [%04x:%04x], IRQ %d\n", d.BDF, d.VendorID, d.DeviceID, d.IRQ)
	}
	fmt.Printf("NIC driver bound with %v interrupts (MSI/MSI-X are disabled by the device)\n",
		sys.NICDriver.Handle.IntMode)

	// dd if=/dev/disk of=/dev/zero bs=4M count=1 iflag=direct
	res, err := sys.RunDD(4 << 20)
	if err != nil {
		log.Fatalf("dd: %v", err)
	}
	fmt.Printf("dd read: %v\n", res)

	st := sys.DiskLink.Down().Stats()
	fmt.Printf("disk link: %d TLPs sent, %d ACK DLLPs received, %d replays\n",
		st.TLPsTx, st.AcksRx, st.ReplaysTx)
	fmt.Printf("simulated %v of virtual time in %d events\n", sys.Eng.Now(), sys.Eng.Fired())
}

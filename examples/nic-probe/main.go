// nic-probe walks through §IV of the paper from the driver's point of
// view: the e1000e probe of the 8254x-pcie model (capability chain,
// MSI/MSI-X fallback to legacy INTx), the Table II MMIO latency probe,
// and a transmit through the descriptor ring — descriptor fetch and
// frame buffer fetch travel as DMA reads over the PCI-Express fabric.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"pciesim"
	"pciesim/internal/devices"
	"pciesim/internal/kernel"
)

func main() {
	sys := pciesim.New(pciesim.DefaultConfig())
	if _, err := sys.Boot(); err != nil {
		log.Fatal(err)
	}
	h := sys.NICDriver.Handle

	fmt.Printf("e1000e bound to %v\n", h.Dev.BDF)
	fmt.Printf("  BAR0 (register MMIO) at %#x\n", h.BAR0)
	fmt.Printf("  capability chain seen by the probe: %v (PM, MSI, PCIe, MSI-X)\n", h.Caps)
	fmt.Printf("  PCIe link from the capability: Gen%d x%d\n", h.LinkSpeed, h.LinkWidth)
	fmt.Printf("  interrupt mode after MSI/MSI-X attempts: %v\n", h.IntMode)

	// Table II style kernel-module probe: time a 4-byte register read.
	probe, err := sys.MMIOProbe(32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  STATUS register MMIO read latency: %v (avg of %d)\n", probe.Avg(), probe.Samples)

	// Transmit one frame: build a descriptor ring in DRAM, point the
	// NIC at it, ring the doorbell, and wait for the TX interrupt.
	const (
		ringBase = 0x9000_0000
		bufBase  = 0x9000_1000
		frameLen = 1500
	)
	desc := make([]byte, devices.NICDescSize)
	binary.LittleEndian.PutUint64(desc, bufBase)
	binary.LittleEndian.PutUint16(desc[8:], frameLen)
	sys.DRAM.WriteFunctional(ringBase, desc)

	txDone := kernel.NewWaiter("txdone")
	sys.NIC.OnTransmit = func(n int) { fmt.Printf("  NIC transmitted a %d-byte frame\n", n) }
	prev := sys.NIC.OnInterrupt
	sys.NIC.OnInterrupt = func() { prev(); txDone.Signal() }

	task := sys.CPU.Spawn("tx", 0, func(t *kernel.Task) {
		t.Write32(h.BAR0+devices.NICRegTDBAL, ringBase)
		t.Write32(h.BAR0+devices.NICRegTDBAH, 0)
		t.Write32(h.BAR0+devices.NICRegTDLEN, 8*devices.NICDescSize)
		t.Write32(h.BAR0+devices.NICRegIMS, devices.NICIntTxDone)
		start := t.Now()
		t.Write32(h.BAR0+devices.NICRegTDT, 1) // doorbell
		t.Wait(txDone)
		icr := t.Read32(h.BAR0 + devices.NICRegICR) // read-to-clear
		fmt.Printf("  TX complete in %v (ICR=%#x)\n", t.Now()-start, icr)
	})
	sys.Eng.Run()
	if !task.Done() {
		log.Fatal("tx task wedged")
	}
	tx, txBytes, _ := sys.NIC.Stats()
	fmt.Printf("  NIC stats: %d frame(s), %d bytes\n", tx, txBytes)
}

// Command pciesim boots the simulated platform once with the requested
// PCI-Express configuration, runs a dd block read, and reports the
// throughput together with the fabric's protocol statistics.
//
// Example:
//
//	pciesim -uplink 8 -disklink 8 -replaybuf 4 -portbuf 16 -block 8
package main

import (
	"flag"
	"fmt"
	"os"

	"pciesim"
	"pciesim/internal/sim"
)

func main() {
	gen := flag.Int("gen", 2, "PCI-Express generation for all links (1-3)")
	uplink := flag.Int("uplink", 4, "root-port to switch link width (lanes)")
	disklink := flag.Int("disklink", 1, "switch to disk link width (lanes)")
	replayBuf := flag.Int("replaybuf", 4, "link replay buffer size (TLPs)")
	portBuf := flag.Int("portbuf", 16, "switch/root port buffer size (packets)")
	switchLat := flag.Int("switchlat", 150, "switch latency (ns)")
	rcLat := flag.Int("rclat", 150, "root complex latency (ns)")
	blockMB := flag.Int("block", 4, "dd block size (MiB)")
	msi := flag.Bool("msi", false, "extend the platform with an MSI doorbell frame")
	posted := flag.Bool("posted", false, "use posted DMA writes (the paper's future-work ablation)")
	flag.Parse()

	cfg := pciesim.DefaultConfig()
	cfg.Gen = pciesim.Generation(*gen)
	cfg.UplinkWidth = *uplink
	cfg.DiskLinkWidth = *disklink
	cfg.ReplayBufferSize = *replayBuf
	cfg.PortBufferSize = *portBuf
	cfg.SwitchLatency = sim.Tick(*switchLat) * sim.Nanosecond
	cfg.RootComplexLatency = sim.Tick(*rcLat) * sim.Nanosecond
	// Scale the fixed dd startup with the block size so small test
	// blocks still report a steady-state-like number.
	cfg.DD.StartupOverhead = cfg.DD.StartupOverhead * sim.Tick(*blockMB) / 64
	cfg.EnableMSI = *msi
	cfg.Disk.PostedWrites = *posted

	s := pciesim.New(cfg)
	topo, err := s.Boot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: boot: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("booted: %d PCI functions on %d buses; NIC interrupts via %v\n",
		len(topo.All), topo.Buses, s.NICDriver.Handle.IntMode)

	res, err := s.RunDD(uint64(*blockMB) << 20)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: dd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dd: %v\n", res)
	fmt.Printf("simulated %v in %d events\n", s.Eng.Now(), s.Eng.Fired())

	fmt.Println("\nlink protocol statistics (upstream direction):")
	for _, l := range []struct {
		name  string
		stats pciesim.LinkStats
	}{
		{"disk->switch", s.DiskLink.Down().Stats()},
		{"switch->rootport", s.Uplink.Down().Stats()},
	} {
		st := l.stats
		fmt.Printf("  %-18s tlps=%d replays=%d (%.1f%%) timeouts=%d (%.1f%%) throttled=%d\n",
			l.name, st.TLPsTx, st.ReplaysTx, st.ReplayRate()*100,
			st.Timeouts, st.TimeoutRate()*100, st.Throttled)
	}
}

// Command pciesim boots the simulated platform once with the requested
// PCI-Express configuration, runs a dd block read, and reports the
// throughput together with the fabric's protocol statistics.
//
// Example:
//
//	pciesim -uplink 8 -disklink 8 -replaybuf 4 -portbuf 16 -block 8
//
// Fault injection arms a deterministic FaultPlan on the disk link and
// the containment machinery that keeps a faulted run terminating:
//
//	pciesim -errrate 0.01 -dllprate 0.01 -droprate 0.005 -faultseed 7
//	pciesim -downat 14000 -downdur 0 -cto 100
//
// Flow control: -credits arms VC0 credit-based flow control on every
// link ("8" advertises 8 header credits per class, "ch=2" caps only
// completion headers; the default is the legacy infinite-credit link):
//
//	pciesim -credits 8
//	pciesim -credits ph=16,ch=2
//
// Observability: -stats prints the counter/histogram summary, -stats-out
// dumps it as JSON (or CSV), and -trace records per-packet lifecycle
// events — `-trace trace.json` writes a Chrome trace openable in
// Perfetto, with the "span" category adding per-TLP duration tracks
// (queue wait, credit stalls, wire time, completion turnaround).
// -stats-stream emits sampler snapshots as NDJSON while the run is
// going, and -prof prints the engine self-profile (per-event fire
// counts and wall-clock) after the run:
//
//	pciesim -stats -trace trace.json -prof
//	pciesim -stats-out stats.json -stats-interval 100
//	pciesim -stats-stream stream.ndjson
//
// Robustness: -hotplug yanks the disk mid-transfer (arming Downstream
// Port Containment and the kernel recovery driver), -dpc arms DPC
// containment by itself, and -degrade arms adaptive link degradation
// (sustained link errors downtrain the link; upgrade retrains climb
// back with exponential backoff):
//
//	pciesim -hotplug at=1500,reinsert=500
//	pciesim -hotplug at=1500            (permanent removal; slot abandoned)
//	pciesim -errrate 0.02 -degrade
//
// Monte-Carlo campaigns: -campaign runs the dd workload K times across
// -jobs workers and reports the outcome distribution. kind=fault (the
// default) stochastically corrupts the disk link, one RNG seed per
// run; kind=hotplug yanks the disk on K deterministic schedules, every
// fourth one permanent:
//
//	pciesim -campaign seeds=32 -jobs -1
//	pciesim -campaign kind=fault,seeds=64,rate=1e-2 -jobs 4
//	pciesim -campaign kind=hotplug,seeds=16
//
// Workload engines: -workload replaces the dd run with a seeded
// synthetic traffic engine (arrival process × op kind) fanned across
// every matching endpoint of the topology (-topo, default
// "validation"); -wl-capture writes the materialized schedule as a
// replayable trace, and -trace-in re-executes a captured trace —
// byte-identically, so a capture run and its replay produce the same
// -stats-out dump:
//
//	pciesim -workload bursty-rx -wl-capture wl.trace -stats-out a.json
//	pciesim -trace-in wl.trace -stats-out b.json   (cmp a.json b.json)
//	pciesim -workload poisson-read -topo "switch:x4(disk*4)" -wl-ops 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"pciesim"
	"pciesim/internal/obscli"
	"pciesim/internal/sim"
)

// campaignKinds lists the valid -campaign kind= values.
var campaignKinds = []string{"fault", "hotplug"}

// parseCampaign parses "-campaign [kind=fault|hotplug,]seeds=K[,rate=R]".
func parseCampaign(spec string) (kind string, seeds int, rate float64, err error) {
	kind = "fault"
	rate = 1e-3
	rateSet := false
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", 0, 0, fmt.Errorf("campaign: %q is not key=value (want kind=, seeds=, rate=)", kv)
		}
		switch k {
		case "kind":
			valid := false
			for _, known := range campaignKinds {
				if v == known {
					valid = true
				}
			}
			if !valid {
				return "", 0, 0, fmt.Errorf("campaign: unknown kind %q (valid kinds: %s)",
					v, strings.Join(campaignKinds, ", "))
			}
			kind = v
		case "seeds":
			seeds, err = strconv.Atoi(v)
			if err != nil || seeds <= 0 {
				return "", 0, 0, fmt.Errorf("campaign: seeds=%q must be a positive integer", v)
			}
		case "rate":
			rate, err = strconv.ParseFloat(v, 64)
			if err != nil || rate < 0 || rate > 1 {
				return "", 0, 0, fmt.Errorf("campaign: rate=%q must be a probability", v)
			}
			rateSet = true
		default:
			return "", 0, 0, fmt.Errorf("campaign: unknown key %q (want kind=, seeds=, rate=)", k)
		}
	}
	if seeds == 0 {
		return "", 0, 0, fmt.Errorf("campaign: seeds=K is required")
	}
	if kind == "hotplug" && rateSet {
		return "", 0, 0, fmt.Errorf("campaign: rate= only applies to kind=fault (hotplug schedules are deterministic)")
	}
	return kind, seeds, rate, nil
}

// parseHotplug parses "-hotplug at=US[,reinsert=US]" (microseconds of
// simulated time; no reinsert means the removal is permanent).
func parseHotplug(spec string) (pciesim.FaultHotplug, error) {
	var h pciesim.FaultHotplug
	seen := false
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return h, fmt.Errorf("hotplug: %q is not key=value (want at=, reinsert=)", kv)
		}
		switch k {
		case "at":
			us, err := strconv.Atoi(v)
			if err != nil || us < 0 {
				return h, fmt.Errorf("hotplug: at=%q must be a non-negative integer (us)", v)
			}
			h.RemoveAt = sim.Tick(us) * sim.Microsecond
			seen = true
		case "reinsert":
			us, err := strconv.Atoi(v)
			if err != nil || us <= 0 {
				return h, fmt.Errorf("hotplug: reinsert=%q must be a positive integer (us)", v)
			}
			h.ReinsertAfter = sim.Tick(us) * sim.Microsecond
		default:
			return h, fmt.Errorf("hotplug: unknown key %q (want at=, reinsert=)", k)
		}
	}
	if !seen {
		return h, fmt.Errorf("hotplug: at=US is required")
	}
	return h, nil
}

func main() {
	gen := flag.Int("gen", 2, "PCI-Express generation for all links (1-3)")
	uplink := flag.Int("uplink", 4, "root-port to switch link width (lanes)")
	disklink := flag.Int("disklink", 1, "switch to disk link width (lanes)")
	replayBuf := flag.Int("replaybuf", 4, "link replay buffer size (TLPs)")
	portBuf := flag.Int("portbuf", 16, "switch/root port buffer size (packets)")
	switchLat := flag.Int("switchlat", 150, "switch latency (ns)")
	rcLat := flag.Int("rclat", 150, "root complex latency (ns)")
	blockMB := flag.Int("block", 4, "dd block size (MiB)")
	msi := flag.Bool("msi", false, "extend the platform with an MSI doorbell frame")
	posted := flag.Bool("posted", false, "use posted DMA writes (the paper's future-work ablation)")
	errRate := flag.Float64("errrate", 0, "disk-link per-TLP corruption probability")
	dllpRate := flag.Float64("dllprate", 0, "disk-link per-DLLP (ACK/NAK) corruption probability")
	dropRate := flag.Float64("droprate", 0, "disk-link per-packet wire-drop probability")
	faultSeed := flag.Uint64("faultseed", 1, "fault-injection RNG seed (runs replay bit-identically)")
	downAt := flag.Int("downat", -1, "surprise link-down start (us of simulated time; -1 disables)")
	downDur := flag.Int("downdur", 0, "link-down window length (us; 0 = down for good)")
	retrain := flag.Int("retrain", 20, "retrain latency after a finite down window (us)")
	cto := flag.Int("cto", 100, "root-complex completion timeout when faults are armed (us; 0 disables)")
	hotplugSpec := flag.String("hotplug", "", "surprise-remove the disk: at=US[,reinsert=US] (arms DPC containment and the kernel recovery driver)")
	dpc := flag.Bool("dpc", false, "arm Downstream Port Containment on every port plus the kernel DPC/hot-plug recovery driver")
	degrade := flag.Bool("degrade", false, "arm adaptive link degradation: sustained link errors downtrain width/generation, upgrade retrains back off exponentially")
	campaignSpec := flag.String("campaign", "", "Monte-Carlo campaign: [kind=fault|hotplug,]seeds=K[,rate=R] dd runs (fault: distinct RNG seeds; hotplug: deterministic removal schedules)")
	jobs := flag.Int("jobs", 1, "parallel campaign runs (-1 = one per CPU); output is identical at any value")
	par := flag.Int("par", 0, "timing domains for the conservative parallel engine (0 or 1 = serial); output is identical at any value")
	creditSpec := flag.String("credits", "", "VC0 flow-control credits per link: empty/\"inf\" = legacy infinite, N = uniform, or k=v pairs (ph,pd,nh,nd,ch,cd)")
	topoSpec := flag.String("topo", "", "arbitrary topology: a canned scenario (validation, fanout8, p2p) or a spec like \"switch:x4(disk*8)\"")
	workloadSpec := flag.String("workload", "", "run a synthetic workload engine instead of dd: arrival-op (e.g. poisson-rx, bursty-read), fanned across every matching endpoint of the topology")
	traceIn := flag.String("trace-in", "", "replay a captured workload trace file instead of running dd")
	wlCapture := flag.String("wl-capture", "", "with -workload: write the materialized schedule to this file as a replayable trace")
	wlOps := flag.Int("wl-ops", 300, "with -workload: operations per flow")
	wlGap := flag.Int("wl-gap", 12, "with -workload: mean inter-arrival gap per flow (us)")
	wlLen := flag.Int("wl-len", 0, "with -workload: bytes per operation (0 = 1500 for rx/tx frames, 4096 for read/write)")
	wlBurst := flag.Int("wl-burst", 16, "with -workload bursty-*: operations per burst")
	wlSeed := flag.Uint64("wl-seed", 1, "with -workload: RNG seed (flow i uses seed+i; runs replay bit-identically)")
	p2p := flag.Bool("p2p", false, "with -topo: run the peer-to-peer DMA workload instead of dd")
	reflect := flag.Bool("reflect", false, "with -topo: disable switch-level P2P turnaround (peer traffic reflects off the root complex)")
	dumpTopo := flag.Bool("dump-topo", false, "with -topo: print the lspci-style enumeration dump and exit")
	var obs obscli.Flags
	obs.Register(flag.CommandLine)
	flag.Parse()

	credits, err := pciesim.ParseCredits(*creditSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
		os.Exit(2)
	}

	if *workloadSpec != "" || *traceIn != "" {
		if *workloadSpec != "" && *traceIn != "" {
			fmt.Fprintf(os.Stderr, "pciesim: -workload and -trace-in are mutually exclusive\n")
			os.Exit(2)
		}
		if *wlCapture != "" && *workloadSpec == "" {
			fmt.Fprintf(os.Stderr, "pciesim: -wl-capture requires -workload (a replayed trace is already a file)\n")
			os.Exit(2)
		}
		wl := wlOptions{
			engine: *workloadSpec, traceIn: *traceIn, capture: *wlCapture,
			ops: *wlOps, gapUs: *wlGap, length: *wlLen, burst: *wlBurst, seed: *wlSeed,
		}
		runWorkload(*topoSpec, *gen, *par, credits, wl, obs)
		return
	}

	if *topoSpec != "" {
		runTopo(*topoSpec, *blockMB, *gen, *par, credits, *p2p, *reflect, *dumpTopo, obs)
		return
	}

	if *campaignSpec != "" {
		kind, seeds, rate, err := parseCampaign(*campaignSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
			os.Exit(2)
		}
		runCampaign(kind, seeds, rate, *jobs, *par, *blockMB, obs)
		return
	}

	cfg := pciesim.DefaultConfig()
	cfg.Gen = pciesim.Generation(*gen)
	cfg.UplinkWidth = *uplink
	cfg.DiskLinkWidth = *disklink
	cfg.ReplayBufferSize = *replayBuf
	cfg.PortBufferSize = *portBuf
	cfg.SwitchLatency = sim.Tick(*switchLat) * sim.Nanosecond
	cfg.RootComplexLatency = sim.Tick(*rcLat) * sim.Nanosecond
	// Scale the fixed dd startup with the block size so small test
	// blocks still report a steady-state-like number.
	cfg.DD.StartupOverhead = cfg.DD.StartupOverhead * sim.Tick(*blockMB) / 64
	cfg.EnableMSI = *msi
	cfg.Disk.PostedWrites = *posted
	cfg.Credits = credits
	cfg.Domains = *par

	for _, r := range []struct {
		name string
		v    float64
	}{{"-errrate", *errRate}, {"-dllprate", *dllpRate}, {"-droprate", *dropRate}} {
		if r.v < 0 || r.v > 1 {
			fmt.Fprintf(os.Stderr, "pciesim: %s %v: probability must be in [0,1]\n", r.name, r.v)
			os.Exit(2)
		}
	}
	plan := &pciesim.FaultPlan{Seed: *faultSeed}
	if *errRate > 0 || *dllpRate > 0 || *dropRate > 0 {
		rates := pciesim.FaultRates{TLPCorrupt: *errRate, DLLPCorrupt: *dllpRate, Drop: *dropRate}
		plan.Up = pciesim.FaultProfile{Rates: rates}
		plan.Down = pciesim.FaultProfile{Rates: rates}
	}
	if *downAt >= 0 {
		plan.Windows = []pciesim.FaultWindow{{
			At:       sim.Tick(*downAt) * sim.Microsecond,
			Duration: sim.Tick(*downDur) * sim.Microsecond,
		}}
		plan.RetrainLatency = sim.Tick(*retrain) * sim.Microsecond
	}
	if *hotplugSpec != "" {
		h, err := parseHotplug(*hotplugSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
			os.Exit(2)
		}
		plan.Hotplugs = []pciesim.FaultHotplug{h}
		// A yanked card needs the full containment stack to keep the
		// run terminating: DPC plus the recovery driver.
		*dpc = true
	}
	cfg.EnableDPC = *dpc
	if *degrade {
		deg := pciesim.DefaultDegradeConfig()
		cfg.Degrade = &deg
	}
	faulted := len(plan.Windows) > 0 || len(plan.Hotplugs) > 0 ||
		*errRate > 0 || *dllpRate > 0 || *dropRate > 0
	if faulted {
		cfg.DiskLinkFault = plan
		// Arm the containment timeouts so a dead link degrades the
		// run instead of hanging it.
		cfg.CompletionTimeout = sim.Tick(*cto) * sim.Microsecond
		cfg.DiskCmdTimeout = 2 * sim.Millisecond
		cfg.DiskDMATimeout = 500 * sim.Microsecond
	}

	s := pciesim.New(cfg)
	if err := obs.Arm(s.Eng); err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
		os.Exit(2)
	}
	topo, err := s.Boot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: boot: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("booted: %d PCI functions on %d buses; NIC interrupts via %v\n",
		len(topo.All), topo.Buses, s.NICDriver.Handle.IntMode)

	res, err := s.RunDD(uint64(*blockMB) << 20)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: dd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dd: %v\n", res)
	fmt.Printf("simulated %v in %d events\n", s.Eng.Now(), s.Eng.TotalFired())

	fmt.Println("\nlink protocol statistics (upstream direction):")
	for _, l := range []struct {
		name  string
		stats pciesim.LinkStats
	}{
		{"disk->switch", s.DiskLink.Down().Stats()},
		{"switch->rootport", s.Uplink.Down().Stats()},
	} {
		st := l.stats
		fmt.Printf("  %-18s tlps=%d replays=%d (%.1f%%) timeouts=%d (%.1f%%) throttled=%d\n",
			l.name, st.TLPsTx, st.ReplaysTx, st.ReplayRate()*100,
			st.Timeouts, st.TimeoutRate()*100, st.Throttled)
		if credits.Finite() {
			fmt.Printf("  %-18s updatefc=%d stalls p/np/cpl=%d/%d/%d\n",
				"", st.UpdateFCTx, st.FCStallsP, st.FCStallsNP, st.FCStallsCpl)
		}
	}

	fmt.Println("\nerror containment:")
	for _, l := range s.LinkErrors() {
		total := l.Up.CRCErrors + l.Down.CRCErrors + l.Up.BadDLLPs + l.Down.BadDLLPs +
			l.Up.Dropped + l.Down.Dropped + l.Retrains
		if total == 0 && !l.Dead {
			continue
		}
		fmt.Printf("  %-10s crc=%d badDLLPs=%d dropped=%d retrains=%d dead=%v\n",
			l.Name, l.Up.CRCErrors+l.Down.CRCErrors, l.Up.BadDLLPs+l.Down.BadDLLPs,
			l.Up.Dropped+l.Down.Dropped, l.Retrains, l.Dead)
	}
	ctoFired, ctoLate := s.RC.CompletionTimeouts()
	fmt.Printf("  root complex: completion timeouts=%d late completions dropped=%d\n", ctoFired, ctoLate)
	if cfg.EnableDPC {
		s.Eng.Run() // drain recovery polling before reading the outcome
		triggers, recovered, abandoned := s.Recovery.Counts()
		fmt.Printf("  dpc: triggers=%d recovered=%d abandoned=%d; disk removals=%d reinserts=%d\n",
			triggers, recovered, abandoned, s.DiskLink.Removals(), s.DiskLink.Reinserts())
	}
	if cfg.Degrade != nil {
		fmt.Printf("  degrade: downtrains=%d uptrains=%d level=%d (%v x%d)\n",
			s.DiskLink.Downtrains(), s.DiskLink.Uptrains(), s.DiskLink.DegradeLevel(),
			s.DiskLink.CurrentGen(), s.DiskLink.CurrentWidth())
	}
	if res.Errors > 0 {
		fmt.Printf("  dd: %d of %d requests errored\n", res.Errors, res.Requests)
	}
	recs, err := s.ScanAER()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: AER scan: %v\n", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Println("  AER: no errors logged")
	}
	for _, r := range recs {
		fmt.Printf("  %v\n", r)
	}

	if err := obs.Finish(s.Eng); err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
		os.Exit(1)
	}
}

// runTopo builds an arbitrary topology from a canned scenario name or
// a spec string and runs dd on every disk (or the P2P workload).
func runTopo(spec string, blockMB, gen, par int, credits pciesim.CreditConfig, p2p, reflect, dump bool, obs obscli.Flags) {
	ts := pciesim.CannedTopo(spec)
	if ts == nil {
		var err error
		ts, err = pciesim.ParseTopo(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
			os.Exit(2)
		}
	}
	cfg := pciesim.DefaultTopoConfig()
	cfg.Gen = pciesim.Generation(gen)
	cfg.Credits = credits
	cfg.NoP2P = reflect
	cfg.Domains = par
	cfg.DD.StartupOverhead = cfg.DD.StartupOverhead * sim.Tick(blockMB) / 64
	s, err := pciesim.BuildTopo(ts, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
		os.Exit(2)
	}
	if err := obs.Arm(s.Eng); err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
		os.Exit(2)
	}
	if dump {
		if err := s.DumpEnumeration(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	tp, err := s.Boot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: boot: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("booted %s: %d PCI functions on %d buses (%d disks, %d nics, %d testdevs)\n",
		s.Spec.Name, len(tp.All), tp.Buses, len(s.Disks), len(s.NICs), len(s.TestDevs))

	switch {
	case p2p:
		res, err := s.RunP2P(64, 4)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pciesim: p2p: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("p2p: %v\n", res)
		fmt.Printf("routing: %d switch turnarounds, %d rc reflections\n",
			s.Turnarounds(), s.Reflections())
	default:
		res, err := s.RunDDAll(uint64(blockMB) << 20)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pciesim: dd: %v\n", err)
			os.Exit(1)
		}
		for i, d := range res.PerDisk {
			fmt.Printf("dd[%s]: %v\n", s.Disks[i].Name, d)
		}
		fmt.Printf("aggregate: %.3f Gb/s, fairness spread %.3f (sectors at first exit: %v)\n",
			res.AggregateThroughputGbps(), res.FairnessSpread(), res.SectorsAtFirstExit)
	}
	fmt.Printf("simulated %v in %d events\n", s.Eng.Now(), s.Eng.TotalFired())

	fmt.Println("\nerror containment:")
	quiet := true
	for _, l := range s.LinkErrors() {
		total := l.Up.CRCErrors + l.Down.CRCErrors + l.Up.BadDLLPs + l.Down.BadDLLPs +
			l.Up.Dropped + l.Down.Dropped + l.Retrains
		if total == 0 && !l.Dead {
			continue
		}
		quiet = false
		fmt.Printf("  %-10s crc=%d badDLLPs=%d dropped=%d retrains=%d dead=%v\n",
			l.Name, l.Up.CRCErrors+l.Down.CRCErrors, l.Up.BadDLLPs+l.Down.BadDLLPs,
			l.Up.Dropped+l.Down.Dropped, l.Retrains, l.Dead)
	}
	if quiet {
		fmt.Println("  all links clean")
	}
	if err := obs.Finish(s.Eng); err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
		os.Exit(1)
	}
}

// wlOptions bundles the -workload / -trace-in flag values.
type wlOptions struct {
	engine  string // synthetic engine name ("" when replaying)
	traceIn string // trace file to replay ("" when synthesizing)
	capture string // file to write the materialized trace to
	ops     int
	gapUs   int
	length  int
	burst   int
	seed    uint64
}

// runWorkload executes a synthetic workload engine or a captured trace
// against a topology platform (default "validation"). Synthesis and
// replay share this single path, so capturing a run and re-feeding the
// trace produces a byte-identical stats dump.
func runWorkload(topoSpec string, gen, par int, credits pciesim.CreditConfig, wl wlOptions, obs obscli.Flags) {
	if topoSpec == "" {
		topoSpec = "validation"
	}
	ts := pciesim.CannedTopo(topoSpec)
	if ts == nil {
		var err error
		ts, err = pciesim.ParseTopo(topoSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
			os.Exit(2)
		}
	}
	cfg := pciesim.DefaultTopoConfig()
	cfg.Gen = pciesim.Generation(gen)
	cfg.Credits = credits
	cfg.EnableMSI = true // workload NIC flows exercise the MSI path
	cfg.Domains = par
	s, err := pciesim.BuildTopo(ts, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
		os.Exit(2)
	}
	if err := obs.Arm(s.Eng); err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
		os.Exit(2)
	}

	var tr *pciesim.WorkloadTrace
	if wl.traceIn != "" {
		f, err := os.Open(wl.traceIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
			os.Exit(2)
		}
		tr, err = pciesim.ParseWorkloadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pciesim: %s: %v\n", wl.traceIn, err)
			os.Exit(2)
		}
		fmt.Printf("replaying %s: %d ops\n", wl.traceIn, len(tr.Ops))
	} else {
		eng, err := pciesim.ParseWorkloadEngine(wl.engine)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
			os.Exit(2)
		}
		// Fan the engine across every endpoint its op kind can drive:
		// rx/tx over the NICs, read/write over the disks.
		var endpoints []string
		length := wl.length
		if eng.Op == pciesim.WorkloadOpRx || eng.Op == pciesim.WorkloadOpTx {
			for _, n := range s.NICs {
				endpoints = append(endpoints, n.Name)
			}
			if length == 0 {
				length = 1500
			}
		} else {
			for _, d := range s.Disks {
				endpoints = append(endpoints, d.Name)
			}
			if length == 0 {
				length = 4096
			}
		}
		if len(endpoints) == 0 {
			fmt.Fprintf(os.Stderr, "pciesim: topology %q has no endpoint for workload %s\n",
				topoSpec, wl.engine)
			os.Exit(2)
		}
		flows := make([]pciesim.WorkloadFlowSpec, len(endpoints))
		for i := range flows {
			flows[i] = pciesim.WorkloadFlowSpec{
				Endpoint: endpoints[i],
				Op:       eng.Op,
				Arrival:  eng.Arrival,
				Ops:      wl.ops,
				Len:      length,
				MeanGap:  sim.Tick(wl.gapUs) * sim.Microsecond,
				BurstLen: wl.burst,
				Seed:     wl.seed + uint64(i),
			}
		}
		tr, err = pciesim.SynthesizeWorkload(flows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("workload %s: %d ops across %d flows\n", wl.engine, len(tr.Ops), len(flows))
		if wl.capture != "" {
			f, err := os.Create(wl.capture)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
				os.Exit(2)
			}
			if err := tr.Encode(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "pciesim: %s: %v\n", wl.capture, err)
				os.Exit(2)
			}
			fmt.Printf("captured trace to %s\n", wl.capture)
		}
	}

	res, err := pciesim.RunWorkload(s, tr, pciesim.WorkloadRunConfig{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: workload: %v\n", err)
		os.Exit(1)
	}
	s.Eng.Run() // drain stragglers so the stats dump is a fixed point
	for _, f := range res.Flows {
		fmt.Printf("wl %v\n", f)
	}
	agg := 0.0
	for _, f := range res.Flows {
		agg += f.GoodputGbps()
	}
	fmt.Printf("aggregate: %.3f Gb/s, fairness spread %.3f\n", agg, res.FairnessSpread())
	fmt.Printf("simulated %v in %d events\n", s.Eng.Now(), s.Eng.TotalFired())
	if err := obs.Finish(s.Eng); err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
		os.Exit(1)
	}
}

// runCampaign runs a Monte-Carlo campaign (stochastic faults or
// surprise hot-plug) and prints the per-seed table plus the outcome
// distribution.
func runCampaign(kind string, seeds int, rate float64, jobs, par, blockMB int, obs obscli.Flags) {
	// Scale 16 with a pre-scaling block of 16x the requested size keeps
	// the simulated block at blockMB MiB while dividing dd's fixed
	// startup overhead, like the single-run path's proportional scaling.
	opt := pciesim.Options{Scale: 16, BlockMB: []int{blockMB * 16}, Jobs: jobs, Par: par}
	if obs.Active() {
		var mu sync.Mutex
		armed := make(map[*sim.Engine]*obscli.Flags)
		opt.Observe = func(eng *sim.Engine, label string) error {
			f := obs.ForRun(label)
			if err := f.Arm(eng); err != nil {
				return err
			}
			mu.Lock()
			armed[eng] = f
			mu.Unlock()
			return nil
		}
		opt.ObserveDone = func(eng *sim.Engine, label string) error {
			mu.Lock()
			f := armed[eng]
			delete(armed, eng)
			mu.Unlock()
			if f.Stats {
				fmt.Printf("--- stats: %s ---\n", label)
			}
			return f.Finish(eng)
		}
	}
	if kind == "hotplug" {
		res, err := pciesim.RunHotplugCampaign(seeds, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.Format())
		return
	}
	res, err := pciesim.RunFaultCampaign(seeds, rate, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pciesim: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Format())
}
